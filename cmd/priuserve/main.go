// Command priuserve runs the PrIU deletion service over HTTP.
//
// Usage:
//
//	priuserve -addr :8080 -workers 0
//
// Endpoints:
//
//	POST /v1/train     register data + hyperparameters, train with capture
//	POST /v1/delete    incrementally remove training samples from a session,
//	                   or a {"batch": [...]} of removals across sessions
//	                   executed concurrently on the worker pool
//	GET  /v1/model/ID  fetch a session's current parameters
//	GET  /v1/sessions  list sessions
//	GET  /v1/stats     per-shard and per-session counters
//
// -workers sets the kernel worker-pool parallelism (0 = GOMAXPROCS); the
// session store itself is hash-sharded and needs no tuning.
package main

import (
	"flag"
	"log"
	"net/http"

	"repro/internal/par"
	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "kernel worker-pool size (0 = GOMAXPROCS)")
	flag.Parse()
	par.SetWorkers(*workers)
	srv := service.NewServer()
	log.Printf("priuserve listening on %s (%d workers)", *addr, par.Workers())
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		log.Fatal(err)
	}
}
