// Command priuserve runs the PrIU deletion service over HTTP.
//
// Usage:
//
//	priuserve -addr :8080 -workers 0 -max-sessions 0 -max-bytes 0
//
// Endpoints (see priu/service for the full wire formats):
//
//	POST   /v1/train                   register data + hyperparameters
//	POST   /v1/delete                  incremental removal (single or batch)
//	GET    /v1/model/ID                fetch a session's current parameters
//	GET    /v1/sessions                list sessions
//	GET    /v1/stats                   per-shard and per-session counters
//	POST   /v2/sessions                train, or restore a streamed snapshot
//	GET    /v2/sessions/{id}           session metadata + parameters
//	DELETE /v2/sessions/{id}           drop a session
//	GET    /v2/sessions/{id}/snapshot  export a self-contained snapshot
//	POST   /v2/sessions/{id}/deletions NDJSON stream of removal batches
//	GET    /healthz                    load-balancer probe
//
// -workers sets the kernel worker-pool parallelism (0 = GOMAXPROCS).
// -max-sessions / -max-bytes bound the session store; when a registration
// exceeds a budget the least recently used sessions are evicted (reported
// in /v1/stats). 0 disables a budget.
package main

import (
	"flag"
	"log"
	"net/http"

	"repro/priu"
	"repro/priu/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "kernel worker-pool size (0 = GOMAXPROCS)")
	maxSessions := flag.Int("max-sessions", 0, "max resident sessions before LRU eviction (0 = unbounded)")
	maxBytes := flag.Int64("max-bytes", 0, "max resident session bytes (data + provenance) before LRU eviction (0 = unbounded)")
	maxBatch := flag.Int("max-batch", 0, "max removals per v2 deletion batch (0 = default)")
	flag.Parse()
	priu.SetWorkers(*workers)
	srv := service.NewServer(
		service.WithMaxSessions(*maxSessions),
		service.WithMaxBytes(*maxBytes),
		service.WithMaxRemovalsPerBatch(*maxBatch),
	)
	log.Printf("priuserve %s listening on %s (%d workers, max-sessions=%d, max-bytes=%d)",
		priu.Version, *addr, priu.Workers(), *maxSessions, *maxBytes)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		log.Fatal(err)
	}
}
