// Command priuserve runs the PrIU deletion service over HTTP.
//
// Usage:
//
//	priuserve -addr :8080 -workers 0 -max-sessions 0 -max-bytes 0 \
//	          -store-dir /var/lib/priu -spill -spill-max-bytes 0 \
//	          -spill-queue 256 -spill-workers 1 \
//	          -spill-gc-age 1h -spill-gc-interval 1m \
//	          -drain-timeout 15s \
//	          -whatif-workers 0 -whatif-limit 8 \
//	          -auth required -auth-keys /etc/priu/keys.json \
//	          -blob http://blob:8090 \
//	          -node http://a:8080 -peers http://a:8080,http://b:8080 \
//	          -probe-interval 3s \
//	          -admin-addr 127.0.0.1:9090 -slow-op-ms 250
//
// Endpoints (see priu/service for the full wire formats; the v1 rows are
// deprecated and carry Deprecation/Sunset headers pointing at /v2/meta):
//
//	POST   /v1/train                   register data + hyperparameters (deprecated)
//	POST   /v1/delete                  incremental removal (deprecated)
//	GET    /v1/model/ID                fetch a session's current parameters (deprecated)
//	GET    /v1/sessions                list the caller's sessions (deprecated)
//	GET    /v1/stats                   per-shard, per-session and per-tier counters (deprecated)
//	POST   /v2/sessions                train (dense or CSR), or restore a snapshot
//	GET    /v2/sessions                list the caller's sessions (paginated: ?limit=&cursor=)
//	GET    /v2/sessions/{id}           session metadata + parameters
//	DELETE /v2/sessions/{id}           drop a session (and its spill file)
//	GET    /v2/sessions/{id}/snapshot  export a self-contained snapshot
//	POST   /v2/sessions/{id}/deletions NDJSON stream of removal batches
//	POST   /v2/sessions/{id}/whatif    evaluate candidate deletion sets without committing
//	GET    /v2/meta                    version, features and limits descriptor
//	GET    /v2/tenants/self/stats      the calling tenant's counters
//	GET    /healthz                    load-balancer probe (never authenticated)
//
// -auth-keys names a JSON tenant key file (see service.TenantConfig):
// "Authorization: Bearer" keys resolve to tenants, each with its own session
// namespace, session/byte quota and deletion-stream rate limit. The file is
// re-read on SIGHUP, so keys rotate and limits change without a restart.
// -auth selects the mode: "off" ignores keys, "optional" (default) honors
// keys but admits anonymous callers, "required" rejects everything without a
// valid key (401) except /healthz.
//
// -workers sets the kernel worker-pool parallelism (0 = GOMAXPROCS).
// -max-sessions / -max-bytes bound the resident tier; when a registration
// exceeds a budget the least recently used sessions are evicted (reported in
// /v1/stats). 0 disables a budget.
//
// -store-dir enables the tiered session store: evicted sessions spill to the
// directory as priu session snapshots and lazily restore on the next touch,
// SIGTERM/SIGINT snapshots every dirty resident session before exit, and a
// restarted server re-indexes the directory — so a kill/restart loses no
// session, model or deletion log. -spill=false keeps evictions dropping (the
// pre-tiered behavior) while retaining shutdown/restart durability.
// -drain-timeout bounds how long shutdown waits for in-flight requests
// before snapshotting; the shutdown then stops the write-behind queue,
// flushes its backlog, and only then drains stragglers, so everything the
// queue accepted reaches disk exactly once.
//
// The spill tier is managed by a lifecycle manager:
//
//   - write-behind: a background queue (-spill-queue deep, -spill-workers
//     wide) snapshots sessions eagerly as they are registered and mutated,
//     so LRU evictions usually just drop the resident copy instead of
//     paying snapshot IO on the evicting request's goroutine. A full queue
//     falls back to the synchronous spill — never a lost session.
//   - disk budget: -spill-max-bytes bounds the spill directory; when a new
//     spill would exceed it, least-recently-used spill files are evicted
//     (warm backups of dirty resident sessions first, then cold sessions —
//     whose drop is counted as a disk_eviction in /v1/stats).
//   - GC: every -spill-gc-interval, orphaned session files and stale temp
//     files older than -spill-gc-age are removed and the spill_dir_bytes
//     gauge is refreshed from the directory.
//
// Per-tenant "max_spill_bytes" caps in the -auth-keys file bound each
// tenant's share of the spill volume: spills over the cap are rejected (the
// eviction drops the session) and a tenant at its cap receives HTTP 507
// spill_quota on new registrations until it deletes sessions.
//
// The what-if plane (POST /v2/sessions/{id}/whatif) evaluates candidate
// deletion sets against a session's provenance without committing anything.
// -whatif-workers bounds the parallelism of one batch's prefix-tree
// evaluation (0 = GOMAXPROCS); -whatif-limit caps concurrent what-if
// requests per tenant (0 = unlimited), the excess receiving a typed 429.
//
// Fleet flags (see priu/service's "Distributed operation" and cmd/priublob):
//
//   - -blob URL slots a shared blob tier (a priublob server) under the spill
//     directory: spills are pushed write-behind into the blob store and the
//     local spill dir becomes a read-through cache, so a node's disk can be
//     lost without losing sessions. Requires -store-dir; a blob store that
//     is unreachable at boot fails startup rather than serving a degraded
//     view.
//   - -node URL is this replica's public base URL; -peers is the static
//     comma-separated member list (every replica passes the same list,
//     itself included). Together they enable fleet routing: rendezvous-hash
//     placement over session IDs, 307 redirects / transparent stream
//     proxying to owners, and peer handoff through the blob tier when
//     membership changes. A fleet should share one -blob store — without it
//     a dead node's sessions are unreachable until it returns.
//   - -probe-interval sets the peer liveness-probe cadence: unresponsive
//     peers are demoted from the placement ring (their keys re-home to
//     survivors) and re-admitted when probes succeed again.
//
// Observability (see the README's "Observability" section):
//
//   - -admin-addr boots a second, operator-only listener serving GET /metrics
//     (Prometheus text exposition), GET /v2/debug/traces[/{id}] (recent
//     request span trees) and /debug/pprof/*. The admin surface is never
//     tenant-authenticated — bind it to localhost or an internal interface,
//     never the tenant port.
//   - Every request carries an X-Priu-Trace ID (minted at ingress when the
//     client sends none) that follows the request through fleet redirects and
//     proxied streams; traces slower than -slow-op-ms land in the log with
//     their hottest span. -slow-op-ms <= 0 disables the slow-op log.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/par"
	"repro/priu"
	"repro/priu/cluster"
	"repro/priu/obs"
	"repro/priu/service"
	"repro/priu/store"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "kernel worker-pool size (0 = GOMAXPROCS)")
	maxSessions := flag.Int("max-sessions", 0, "max resident sessions before LRU eviction (0 = unbounded)")
	maxBytes := flag.Int64("max-bytes", 0, "max resident session bytes (data + provenance) before LRU eviction (0 = unbounded)")
	maxBatch := flag.Int("max-batch", 0, "max removals per v2 deletion batch (0 = default)")
	storeDir := flag.String("store-dir", "", "spill directory for the tiered session store (empty = memory only)")
	spill := flag.Bool("spill", true, "with -store-dir: spill evicted sessions to disk instead of dropping them")
	spillMaxBytes := flag.Int64("spill-max-bytes", 0, "disk budget for the spill directory; LRU spill files are evicted to stay under it (0 = unbounded)")
	spillQueue := flag.Int("spill-queue", 256, "write-behind queue depth for eager background snapshots (0 = synchronous spills only)")
	spillWorkers := flag.Int("spill-workers", 1, "background snapshot workers draining the write-behind queue")
	spillGCAge := flag.Duration("spill-gc-age", time.Hour, "age before an orphaned spill-directory file is garbage-collected")
	spillGCInterval := flag.Duration("spill-gc-interval", time.Minute, "period of the spill-directory GC sweep (0 = disabled)")
	spillCoalesce := flag.Int("spill-coalesce", 1, "debounce background spills until a session accumulates this many updates (1 = spill eagerly)")
	spillQuiet := flag.Duration("spill-quiet", 50*time.Millisecond, "with -spill-coalesce > 1: spill a debounced session after this much quiet time even below the update threshold")
	spillCompact := flag.Int("spill-compact", 8, "fold a session's delta chain into a new base once it holds this many segments (<= 0 disables compaction)")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "max wait for in-flight requests before the shutdown snapshot")
	whatifWorkers := flag.Int("whatif-workers", 0, "parallel evaluators per what-if batch (0 = GOMAXPROCS)")
	whatifLimit := flag.Int("whatif-limit", 8, "max concurrent what-if requests per tenant (0 = unlimited)")
	authMode := flag.String("auth", "optional", "API-key auth mode: off | optional | required")
	authKeys := flag.String("auth-keys", "", "JSON tenant key file (hot-reloaded on SIGHUP)")
	blob := flag.String("blob", "", "shared blob spill tier: a priublob base URL (http://...) or a local directory; requires -store-dir")
	node := flag.String("node", "", "this replica's advertised base URL (required with -peers)")
	peers := flag.String("peers", "", "comma-separated advertised base URLs of every fleet replica (enables consistent-hash routing)")
	probeInterval := flag.Duration("probe-interval", 3*time.Second, "fleet liveness-probe period (0 = probe only on request failures)")
	adminAddr := flag.String("admin-addr", "", "operator listener for /metrics, /v2/debug/traces and /debug/pprof (empty = disabled; never expose to tenants)")
	slowOpMs := flag.Int("slow-op-ms", 250, "log traces slower than this many milliseconds with their hottest span (<=0 = disabled)")
	parMinWork := flag.Int("par-minwork", 0, "pin the per-chunk parallel work cutoff (0 = measure at startup; "+par.EnvMinWork+" also pins)")
	flag.Parse()
	priu.SetWorkers(*workers)
	if *parMinWork > 0 {
		par.SetCutoffs(*parMinWork, *parMinWork)
	} else {
		cal := par.Calibrate()
		log.Printf("priuserve: par cutoffs compute=%d mem=%d (dispatch %.0fns, pinned=%v)",
			cal.Compute, cal.Mem, cal.DispatchNs, cal.Pinned)
	}

	reg := obs.NewRegistry()
	tracer := obs.NewTracer(0)
	tracer.SetSlowOp(time.Duration(*slowOpMs) * time.Millisecond)

	mode, err := service.ParseAuthMode(*authMode)
	if err != nil {
		log.Fatalf("priuserve: %v", err)
	}
	var keyring *service.Keyring
	if *authKeys != "" {
		keyring, err = service.LoadKeyring(*authKeys)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("priuserve: loaded %d tenant key(s) from %s", keyring.Len(), *authKeys)
	}
	if mode == service.AuthRequired && keyring == nil {
		log.Fatal("priuserve: -auth required needs -auth-keys")
	}

	memOpts := []store.MemoryOption{store.WithMaxSessions(*maxSessions), store.WithMaxBytes(*maxBytes)}
	if keyring != nil {
		memOpts = append(memOpts, store.WithTenantLimits(keyring.Limits))
	}
	mem := store.NewMemory(memOpts...)
	var st store.Store = mem
	if *blob != "" && *storeDir == "" {
		log.Fatal("priuserve: -blob needs -store-dir (the local spill directory is the blob tier's cache)")
	}
	if *storeDir != "" {
		tieredOpts := []store.TieredOption{
			store.WithSpillOnEvict(*spill),
			store.WithSpillMaxBytes(*spillMaxBytes),
			store.WithWriteBehind(*spillQueue, *spillWorkers),
			store.WithSpillCoalesce(*spillCoalesce, *spillQuiet),
			store.WithCompaction(*spillCompact),
			store.WithSpillGC(*spillGCAge, *spillGCInterval),
			store.WithMetrics(store.NewTierMetrics(reg)),
		}
		if *blob != "" {
			var bs store.BlobStore
			if strings.HasPrefix(*blob, "http://") || strings.HasPrefix(*blob, "https://") {
				bs = store.NewHTTPBlob(*blob, nil)
			} else {
				fsb, err := store.NewFSBlob(*blob)
				if err != nil {
					log.Fatal(err)
				}
				bs = fsb
			}
			tieredOpts = append(tieredOpts, store.WithBlobStore(bs))
		}
		tiered, err := store.NewTiered(*storeDir, mem, tieredOpts...)
		if err != nil {
			log.Fatal(err)
		}
		st = tiered
	}
	srvOpts := []service.ServerOption{
		service.WithStore(st),
		service.WithMaxSessions(*maxSessions),
		service.WithMaxBytes(*maxBytes),
		service.WithMaxRemovalsPerBatch(*maxBatch),
		service.WithWhatIfWorkers(*whatifWorkers),
		service.WithWhatIfLimit(*whatifLimit),
		service.WithAuth(mode, keyring),
		service.WithObservability(reg, tracer),
	}
	var member *cluster.Membership
	if *peers != "" {
		if *node == "" {
			log.Fatal("priuserve: -peers needs -node (this replica's advertised base URL)")
		}
		if *blob == "" {
			log.Print("priuserve: WARNING: -peers without -blob — sessions cannot hand off across replicas; a node loss loses its sessions")
		}
		var list []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(strings.TrimRight(p, "/")); p != "" {
				list = append(list, p)
			}
		}
		var err error
		member, err = cluster.New(cluster.Config{
			Self:          strings.TrimRight(*node, "/"),
			Peers:         list,
			ProbeInterval: *probeInterval,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer member.Close()
		srvOpts = append(srvOpts, service.WithCluster(member))
	}
	srv := service.NewServer(srvOpts...)
	if member != nil {
		log.Printf("priuserve: fleet member %s of %d replicas (ring v%d)", member.Self(), len(member.Peers()), member.Ring().Version())
	}
	if n := st.Stats().Spilled; n > 0 {
		log.Printf("priuserve: re-indexed %d spilled session(s) from %s", n, *storeDir)
	}

	// SIGHUP hot-reloads the tenant key file: rotated keys and changed
	// quotas/rate limits apply to the next request, no restart or dropped
	// session required. A bad file keeps the previous keyring.
	if keyring != nil {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				if err := keyring.Reload(); err != nil {
					log.Printf("priuserve: SIGHUP reload failed (keeping previous keys): %v", err)
					continue
				}
				log.Printf("priuserve: reloaded %d tenant key(s) from %s", keyring.Len(), *authKeys)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	var admin *http.Server
	if *adminAddr != "" {
		admin = &http.Server{Addr: *adminAddr, Handler: srv.AdminHandler()}
		go func() {
			if err := admin.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				errc <- err
			}
		}()
		log.Printf("priuserve: admin listener on %s (/metrics, /v2/debug/traces, /debug/pprof) — keep this off the tenant network", *adminAddr)
	}
	log.Printf("priuserve %s listening on %s (%d workers, max-sessions=%d, max-bytes=%d, store-dir=%q)",
		priu.Version, *addr, priu.Workers(), *maxSessions, *maxBytes, *storeDir)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	// SIGTERM drain: stop accepting, let in-flight requests settle, then
	// snapshot every dirty resident session so the next boot loses nothing.
	sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("priuserve: shutdown: %v", err)
	}
	if admin != nil {
		if err := admin.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Printf("priuserve: admin shutdown: %v", err)
		}
	}
	if err := st.Close(); err != nil {
		log.Printf("priuserve: draining session store: %v", err)
	}
	log.Printf("priuserve: shutdown complete")
}
