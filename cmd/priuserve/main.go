// Command priuserve runs the PrIU deletion service over HTTP.
//
// Usage:
//
//	priuserve -addr :8080
//
// Endpoints:
//
//	POST /v1/train     register data + hyperparameters, train with capture
//	POST /v1/delete    incrementally remove training samples from a session
//	GET  /v1/model/ID  fetch a session's current parameters
//	GET  /v1/sessions  list sessions
package main

import (
	"flag"
	"log"
	"net/http"

	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()
	srv := service.NewServer()
	log.Printf("priuserve listening on %s", *addr)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		log.Fatal(err)
	}
}
