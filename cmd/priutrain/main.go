// Command priutrain demonstrates the full PrIU workflow from the command
// line: generate (or simulate) a training set, train the initial model while
// capturing provenance, delete a subset of samples, and compare the
// incremental update against retraining from scratch.
//
// Usage:
//
//	priutrain -workload higgs -rate 0.01
//	priutrain -workload sgemm-original -rate 0.001 -method PrIU-opt
//
// With -server the same workflow runs against a remote priuserve through the
// priu/client SDK instead of in-process: the workload's data is uploaded to
// POST /v2/sessions, the removals stream over the full-duplex NDJSON
// deletions endpoint (digest-verified, with automatic retry when the
// tenant's rate limit throttles a batch), and the session round-trips
// through snapshot export + restore to prove the provenance survived:
//
//	priutrain -server http://localhost:8080 -api-key ak_live_acme \
//	          -workload sgemm-original -scale 0.05 -rate 0.01
//
// With -whatif (remote only) the workflow previews deletions before
// committing: the removal pick is expanded into overlapping candidate sets,
// evaluated in one POST /v2/sessions/{id}/whatif batch (the server shares
// work between sets through a prefix tree — the cache-hit count is printed),
// and then the first candidate is actually committed and its digest checked
// against the what-if prediction:
//
//	priutrain -server http://localhost:8080 -whatif \
//	          -workload sgemm-original -scale 0.05 -rate 0.01
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"

	"repro/internal/par"
	"repro/priu"
	"repro/priu/bench"
	"repro/priu/client"
	"repro/priu/service"
)

func main() {
	var (
		workload = flag.String("workload", "sgemm-original", "workload id (see priubench -list workloads in README)")
		rate     = flag.Float64("rate", 0.01, "deletion rate in (0,1)")
		method   = flag.String("method", "PrIU", "update method: PrIU | PrIU-opt")
		scale    = flag.Float64("scale", 0.25, "workload scale factor in (0,1]")
		server   = flag.String("server", "", "priuserve base URL; when set, run the workflow remotely through priu/client")
		apiKey   = flag.String("api-key", "", "tenant API key for -server (Authorization: Bearer)")
		whatif   = flag.Bool("whatif", false, "with -server: preview the removal through /v2 what-if before committing it")

		parMinWork = flag.Int("par-minwork", 0, "pin the per-chunk parallel work cutoff (0 = measure at startup; "+par.EnvMinWork+" also pins)")
	)
	flag.Parse()
	if *parMinWork > 0 {
		par.SetCutoffs(*parMinWork, *parMinWork)
	} else {
		par.Calibrate()
	}

	wl, err := bench.WorkloadByID(*workload)
	if err != nil {
		fmt.Fprintf(os.Stderr, "priutrain: %v\navailable workloads:\n", err)
		for id := range bench.Workloads {
			fmt.Fprintf(os.Stderr, "  %s\n", id)
		}
		os.Exit(2)
	}
	m := bench.Method(*method)
	if m != bench.MethodPrIU && m != bench.MethodPrIUOpt {
		fmt.Fprintf(os.Stderr, "priutrain: method must be PrIU or PrIU-opt\n")
		os.Exit(2)
	}

	if *server != "" {
		run := runRemote
		if *whatif {
			run = runRemoteWhatIf
		}
		if err := run(*server, *apiKey, wl.Scale(*scale), m, *rate); err != nil {
			fmt.Fprintf(os.Stderr, "priutrain: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *whatif {
		fmt.Fprintf(os.Stderr, "priutrain: -whatif requires -server\n")
		os.Exit(2)
	}

	fmt.Printf("preparing %s (scale %.2f): generating data, training, capturing provenance...\n", wl.ID, *scale)
	p, err := bench.Prepare(wl.Scale(*scale))
	if err != nil {
		fmt.Fprintf(os.Stderr, "priutrain: prepare: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("offline phase done in %.2fs (n=%d, provenance cached)\n", p.CaptureTime().Seconds(), p.N())

	removed := p.PickRemoval(*rate, 7)
	fmt.Printf("deleting %d samples (%.3g%% of training set)\n", len(removed), 100**rate)

	base, baseDt, err := p.RunUpdate(bench.MethodBaseL, removed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "priutrain: BaseL: %v\n", err)
		os.Exit(1)
	}
	upd, dt, err := p.RunUpdate(m, removed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "priutrain: %s: %v\n", m, err)
		os.Exit(1)
	}
	cmp, err := priu.Compare(upd, base)
	if err != nil {
		fmt.Fprintf(os.Stderr, "priutrain: compare: %v\n", err)
		os.Exit(1)
	}
	baseMetric, _ := p.Evaluate(base)
	updMetric, _ := p.Evaluate(upd)

	fmt.Printf("\n%-14s %12s %12s\n", "", "BaseL", string(m))
	fmt.Printf("%-14s %12.3f %12.3f\n", "update (ms)", baseDt.Seconds()*1000, dt.Seconds()*1000)
	fmt.Printf("%-14s %12.4g %12.4g\n", "valid metric", baseMetric, updMetric)
	fmt.Printf("\nspeed-up: %.2fx   model closeness: %s\n",
		baseDt.Seconds()/dt.Seconds(), cmp)
}

// remoteCreateRequest builds the POST /v2/sessions body for a workload: the
// generated training set (dense rows or the CSR triple) plus the workload's
// hyperparameters.
func remoteCreateRequest(wl bench.Workload, family string) (service.CreateSessionRequest, int, error) {
	req := service.CreateSessionRequest{
		Family:     family,
		Eta:        wl.Cfg.Eta,
		Lambda:     wl.Cfg.Lambda,
		BatchSize:  wl.Cfg.BatchSize,
		Iterations: wl.Cfg.Iterations,
		Seed:       wl.Cfg.Seed,
	}
	dense, sp, err := wl.Generate()
	if err != nil {
		return req, 0, fmt.Errorf("generating workload data: %w", err)
	}
	if sp != nil {
		n := sp.N()
		req.Cols = sp.M()
		req.Labels = sp.Y
		req.Indptr = make([]int, 1, n+1)
		for i := 0; i < n; i++ {
			cols, vals := sp.X.Row(i)
			req.Indices = append(req.Indices, cols...)
			req.Values = append(req.Values, vals...)
			req.Indptr = append(req.Indptr, len(req.Values))
		}
		return req, n, nil
	}
	n := dense.N()
	if wl.Cfg.BatchSize > n {
		req.BatchSize = n
	}
	req.Classes = dense.Classes
	req.Labels = dense.Y
	req.Features = make([][]float64, n)
	for i := 0; i < n; i++ {
		req.Features[i] = dense.X.Row(i)
	}
	return req, n, nil
}

// runRemote drives the train → stream-deletions → snapshot → restore
// workflow against a live priuserve through the client SDK.
func runRemote(server, apiKey string, wl bench.Workload, m bench.Method, rate float64) error {
	family, err := wl.Family()
	if err != nil {
		return err
	}
	if m == bench.MethodPrIUOpt {
		family += "-opt"
	}
	if _, ok := priu.Lookup(family); !ok {
		return fmt.Errorf("family %q is not registered (method %s on workload %s)", family, m, wl.ID)
	}
	ctx := context.Background()
	cl := client.New(server, client.WithAPIKey(apiKey))
	if h, err := cl.Health(ctx); err != nil {
		return fmt.Errorf("probing %s: %w", server, err)
	} else {
		fmt.Printf("priuserve %s at %s (%d workers)\n", h.Version, server, h.Workers)
	}

	req, n, err := remoteCreateRequest(wl, family)
	if err != nil {
		return err
	}
	fmt.Printf("uploading %s (n=%d) and capturing provenance server-side...\n", wl.ID, n)
	start := time.Now()
	sr, err := cl.CreateSession(ctx, req)
	if err != nil {
		return fmt.Errorf("creating session: %w", err)
	}
	fmt.Printf("session %s trained in %.2fs (provenance %.1f MB, snapshottable=%v)\n",
		sr.SessionID, time.Since(start).Seconds(), float64(sr.FootprintBytes)/(1<<20), sr.Snapshottable)

	// Deterministic removal pick, split into streaming batches.
	k := int(float64(n) * rate)
	if k < 1 {
		k = 1
	}
	removed := rand.New(rand.NewSource(7)).Perm(n)[:k]
	batches := splitBatches(removed, 4)
	fmt.Printf("streaming %d removals in %d batches (digest-verified)...\n", k, len(batches))
	st, err := cl.StreamDeletions(ctx, sr.SessionID, client.StreamVerifyDigests())
	if err != nil {
		return err
	}
	defer st.Close()
	var lastDigest string
	for _, b := range batches {
		res, err := st.SendWait(b) // waits out tenant rate limits
		if err != nil {
			return fmt.Errorf("streaming deletions: %w", err)
		}
		fmt.Printf("  batch %d: removed %d (total %d) in %.1fms, digest %s\n",
			res.Batch, res.Removed, res.TotalDeleted, res.UpdateSeconds*1000, res.Digest)
		lastDigest = res.Digest
	}

	// Snapshot round trip: export, restore as a second session, and check
	// the restored model picks up exactly where the original left off.
	var snap bytes.Buffer
	if _, err := cl.SnapshotTo(ctx, sr.SessionID, &snap); err != nil {
		return fmt.Errorf("exporting snapshot: %w", err)
	}
	restored, err := cl.RestoreSnapshot(ctx, &snap)
	if err != nil {
		return fmt.Errorf("restoring snapshot: %w", err)
	}
	if got := service.ParamDigest(restored.Parameters); got != lastDigest {
		return fmt.Errorf("restored session digest %s does not match original %s", got, lastDigest)
	}
	fmt.Printf("snapshot round trip ok: %s restored as %s with matching digest %s\n",
		sr.SessionID, restored.SessionID, lastDigest)

	for _, id := range []string{sr.SessionID, restored.SessionID} {
		if err := cl.DeleteSession(ctx, id); err != nil {
			return fmt.Errorf("deleting session %s: %w", id, err)
		}
	}
	if apiKey != "" {
		ts, err := cl.TenantStats(ctx)
		if err != nil {
			return fmt.Errorf("fetching tenant stats: %w", err)
		}
		fmt.Printf("tenant %q: %d trains, %d rows deleted, %d rate-limited, %d quota rejections\n",
			ts.Tenant, ts.Trains, ts.RowsDeleted, ts.RateLimited, ts.QuotaRejections)
	}
	return nil
}

// runRemoteWhatIf drives the preview-then-commit workflow: train remotely,
// evaluate overlapping candidate deletion sets through the what-if endpoint
// (no state committed), then actually commit one candidate and verify the
// server's committed digest matches the what-if prediction bit for bit.
func runRemoteWhatIf(server, apiKey string, wl bench.Workload, m bench.Method, rate float64) error {
	family, err := wl.Family()
	if err != nil {
		return err
	}
	if m == bench.MethodPrIUOpt {
		family += "-opt"
	}
	if _, ok := priu.Lookup(family); !ok {
		return fmt.Errorf("family %q is not registered (method %s on workload %s)", family, m, wl.ID)
	}
	ctx := context.Background()
	cl := client.New(server, client.WithAPIKey(apiKey))
	if h, err := cl.Health(ctx); err != nil {
		return fmt.Errorf("probing %s: %w", server, err)
	} else {
		fmt.Printf("priuserve %s at %s (%d workers)\n", h.Version, server, h.Workers)
	}

	req, n, err := remoteCreateRequest(wl, family)
	if err != nil {
		return err
	}
	fmt.Printf("uploading %s (n=%d) and capturing provenance server-side...\n", wl.ID, n)
	sr, err := cl.CreateSession(ctx, req)
	if err != nil {
		return fmt.Errorf("creating session: %w", err)
	}
	defer cl.DeleteSession(ctx, sr.SessionID)

	// Overlapping candidates over one deterministic pick, ascending so the
	// committed batch below applies removals in the same order the what-if
	// plane evaluates them: a half-size prefix, the full set (reusing the
	// prefix in the server's tree), and the prefix again (pure cache hit).
	k := int(float64(n) * rate)
	if k < 2 {
		k = 2
	}
	full := rand.New(rand.NewSource(7)).Perm(n)[:k]
	sort.Ints(full)
	half := full[:k/2]
	sets := [][]int{half, full, half}
	fmt.Printf("previewing %d candidate deletion sets (%d/%d/%d rows) without committing...\n",
		len(sets), len(half), len(full), len(half))
	rep, err := cl.WhatIf(ctx, sr.SessionID, sets)
	if err != nil {
		return fmt.Errorf("what-if batch: %w", err)
	}
	for i, oc := range rep.Outcomes {
		if oc.Err != nil {
			return fmt.Errorf("what-if set %d: %w", i, oc.Err)
		}
		fmt.Printf("  set %d: %d rows → digest %s (l2 %.3g, %d sign flips) in %.1fms\n",
			i, oc.Result.RowsRemoved, oc.Result.Digest,
			oc.Result.Delta.L2Distance, oc.Result.Delta.SignFlips, oc.Result.EvalSeconds*1000)
	}
	fmt.Printf("what-if summary: %d sets, %d evaluated, %d prefix-tree cache hits, incremental=%v\n",
		rep.Summary.Sets, rep.Summary.Evaluated, rep.Summary.CacheHits, rep.Summary.Incremental)
	if rep.Summary.CacheHits == 0 {
		return fmt.Errorf("overlapping candidate sets produced no prefix-tree cache hits")
	}
	if d0, d2 := rep.Outcomes[0].Result.Digest, rep.Outcomes[2].Result.Digest; d0 != d2 {
		return fmt.Errorf("duplicate candidate digests diverged: %s vs %s", d0, d2)
	}

	// Commit the full candidate as one batch and hold the server to its
	// prediction.
	st, err := cl.StreamDeletions(ctx, sr.SessionID)
	if err != nil {
		return err
	}
	defer st.Close()
	res, err := st.SendWait(full)
	if err != nil {
		return fmt.Errorf("committing previewed set: %w", err)
	}
	want := rep.Outcomes[1].Result.Digest
	if res.Digest != want {
		return fmt.Errorf("committed digest %s does not match what-if prediction %s", res.Digest, want)
	}
	fmt.Printf("whatif commit verified: committed %d rows, digest %s matches the preview\n",
		res.TotalDeleted, res.Digest)
	return nil
}

// splitBatches partitions a removal set into up to k non-empty batches.
func splitBatches(removed []int, k int) [][]int {
	if k > len(removed) {
		k = len(removed)
	}
	out := make([][]int, 0, k)
	for i := 0; i < k; i++ {
		lo, hi := i*len(removed)/k, (i+1)*len(removed)/k
		if lo < hi {
			out = append(out, removed[lo:hi])
		}
	}
	return out
}
