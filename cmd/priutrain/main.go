// Command priutrain demonstrates the full PrIU workflow from the command
// line: generate (or simulate) a training set, train the initial model while
// capturing provenance, delete a subset of samples, and compare the
// incremental update against retraining from scratch.
//
// Usage:
//
//	priutrain -workload higgs -rate 0.01
//	priutrain -workload sgemm-original -rate 0.001 -method PrIU-opt
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/priu"
	"repro/priu/bench"
)

func main() {
	var (
		workload = flag.String("workload", "sgemm-original", "workload id (see priubench -list workloads in README)")
		rate     = flag.Float64("rate", 0.01, "deletion rate in (0,1)")
		method   = flag.String("method", "PrIU", "update method: PrIU | PrIU-opt")
		scale    = flag.Float64("scale", 0.25, "workload scale factor in (0,1]")
	)
	flag.Parse()

	wl, err := bench.WorkloadByID(*workload)
	if err != nil {
		fmt.Fprintf(os.Stderr, "priutrain: %v\navailable workloads:\n", err)
		for id := range bench.Workloads {
			fmt.Fprintf(os.Stderr, "  %s\n", id)
		}
		os.Exit(2)
	}
	m := bench.Method(*method)
	if m != bench.MethodPrIU && m != bench.MethodPrIUOpt {
		fmt.Fprintf(os.Stderr, "priutrain: method must be PrIU or PrIU-opt\n")
		os.Exit(2)
	}

	fmt.Printf("preparing %s (scale %.2f): generating data, training, capturing provenance...\n", wl.ID, *scale)
	p, err := bench.Prepare(wl.Scale(*scale))
	if err != nil {
		fmt.Fprintf(os.Stderr, "priutrain: prepare: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("offline phase done in %.2fs (n=%d, provenance cached)\n", p.CaptureTime().Seconds(), p.N())

	removed := p.PickRemoval(*rate, 7)
	fmt.Printf("deleting %d samples (%.3g%% of training set)\n", len(removed), 100**rate)

	base, baseDt, err := p.RunUpdate(bench.MethodBaseL, removed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "priutrain: BaseL: %v\n", err)
		os.Exit(1)
	}
	upd, dt, err := p.RunUpdate(m, removed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "priutrain: %s: %v\n", m, err)
		os.Exit(1)
	}
	cmp, err := priu.Compare(upd, base)
	if err != nil {
		fmt.Fprintf(os.Stderr, "priutrain: compare: %v\n", err)
		os.Exit(1)
	}
	baseMetric, _ := p.Evaluate(base)
	updMetric, _ := p.Evaluate(upd)

	fmt.Printf("\n%-14s %12s %12s\n", "", "BaseL", string(m))
	fmt.Printf("%-14s %12.3f %12.3f\n", "update (ms)", baseDt.Seconds()*1000, dt.Seconds()*1000)
	fmt.Printf("%-14s %12.4g %12.4g\n", "valid metric", baseMetric, updMetric)
	fmt.Printf("\nspeed-up: %.2fx   model closeness: %s\n",
		baseDt.Seconds()/dt.Seconds(), cmp)
}
