// Command benchguard turns `go test -bench` output into a per-commit JSON
// artifact and gates CI on speedup regressions.
//
// The parallel-kernel benchmarks (bench_parallel_test.go) self-measure a
// 1-worker baseline and report a custom "speedup" metric per benchmark.
// benchguard extracts those metrics, writes them as JSON
// (BENCH_<sha>.json in CI, archived per commit), and compares them against a
// committed baseline: a benchmark whose speedup falls more than -tolerance
// (default 20%) below its baseline value fails the run.
//
// Usage:
//
//	go test -bench=. -benchtime=1x -run='^$' ./... | tee bench.out
//	benchguard -in bench.out -json BENCH_$(git rev-parse --short HEAD).json \
//	           -baseline BENCH_BASELINE.json
//	benchguard -in bench.out -json BENCH_BASELINE.json   # refresh baseline
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Report is the archived benchmark artifact.
type Report struct {
	Commit    string             `json:"commit,omitempty"`
	Generated string             `json:"generated"`
	Speedups  map[string]float64 `json:"speedups"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+(.*)$`)

// parseSpeedups extracts every benchmark's "speedup" metric from go test
// -bench output. Benchmarks without the metric are ignored.
func parseSpeedups(r io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := m[1]
		fields := strings.Fields(m[2])
		// Metrics are (value, unit) pairs after the iteration count.
		for i := 0; i+1 < len(fields); i += 2 {
			if fields[i+1] != "speedup" {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("parsing speedup of %s: %w", name, err)
			}
			// Strip the -N GOMAXPROCS suffix so runs on hosts with
			// different core counts compare under one key.
			if idx := strings.LastIndex(name, "-"); idx > 0 {
				if _, err := strconv.Atoi(name[idx+1:]); err == nil {
					name = name[:idx]
				}
			}
			out[name] = v
		}
	}
	return out, sc.Err()
}

func main() {
	var (
		in        = flag.String("in", "", "bench output file (default stdin)")
		jsonOut   = flag.String("json", "", "write the parsed speedups as JSON to this path")
		baseline  = flag.String("baseline", "", "baseline JSON to compare against (omit to skip the gate)")
		tolerance = flag.Float64("tolerance", 0.2, "allowed fractional speedup regression vs baseline")
		commit    = flag.String("commit", "", "commit SHA recorded in the JSON artifact")
	)
	flag.Parse()

	var src io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal("opening input: %v", err)
		}
		defer f.Close()
		src = f
	}
	speedups, err := parseSpeedups(src)
	if err != nil {
		fatal("parsing bench output: %v", err)
	}
	if len(speedups) == 0 {
		fatal("no speedup metrics found in bench output")
	}
	fmt.Printf("benchguard: parsed %d speedup metrics\n", len(speedups))

	if *jsonOut != "" {
		rep := Report{
			Commit:    *commit,
			Generated: time.Now().UTC().Format(time.RFC3339),
			Speedups:  speedups,
		}
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal("encoding report: %v", err)
		}
		if err := os.WriteFile(*jsonOut, append(buf, '\n'), 0o644); err != nil {
			fatal("writing %s: %v", *jsonOut, err)
		}
		fmt.Printf("benchguard: wrote %s\n", *jsonOut)
	}

	if *baseline == "" {
		return
	}
	buf, err := os.ReadFile(*baseline)
	if err != nil {
		fatal("reading baseline: %v", err)
	}
	var base Report
	if err := json.Unmarshal(buf, &base); err != nil {
		fatal("decoding baseline: %v", err)
	}
	names := make([]string, 0, len(base.Speedups))
	for name := range base.Speedups {
		names = append(names, name)
	}
	sort.Strings(names)
	var regressions []string
	for _, name := range names {
		want := base.Speedups[name]
		got, ok := speedups[name]
		if !ok {
			fmt.Printf("benchguard: WARNING: baseline benchmark %s missing from this run\n", name)
			continue
		}
		floor := (1 - *tolerance) * want
		status := "ok"
		if got < floor {
			status = "REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: speedup %.3f < floor %.3f (baseline %.3f)", name, got, floor, want))
		}
		fmt.Printf("benchguard: %-40s baseline %6.3f  now %6.3f  [%s]\n", name, want, got, status)
	}
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "benchguard: %d speedup regression(s) beyond %.0f%%:\n",
			len(regressions), *tolerance*100)
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "  %s\n", r)
		}
		os.Exit(1)
	}
	fmt.Println("benchguard: no speedup regressions")
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchguard: "+format+"\n", args...)
	os.Exit(2)
}
