// Command covergate computes statement coverage from a Go cover profile and
// fails when it drops below a floor — the regression gate behind `make
// cover`. The floors are watermarks: set just under the measured coverage of
// the packages they guard, so a PR that deletes tests (or lands significant
// untested code) fails CI, while normal fluctuation passes.
//
// Usage:
//
//	go test -coverprofile=store.out ./priu/store
//	covergate -profile store.out -min 80 -name priu/store
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// parseProfile sums covered and total statement counts from a cover profile
// (mode line followed by "file:start,end numStmt count" records).
func parseProfile(path string) (covered, total int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "mode:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return 0, 0, fmt.Errorf("malformed profile line %q", line)
		}
		stmts, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("parsing statement count of %q: %w", line, err)
		}
		count, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("parsing hit count of %q: %w", line, err)
		}
		total += stmts
		if count > 0 {
			covered += stmts
		}
	}
	return covered, total, sc.Err()
}

func main() {
	var (
		profile = flag.String("profile", "", "cover profile to evaluate")
		min     = flag.Float64("min", 0, "minimum statement coverage percent")
		name    = flag.String("name", "", "label printed for this gate (defaults to the profile path)")
	)
	flag.Parse()
	if *profile == "" {
		fmt.Fprintln(os.Stderr, "covergate: -profile is required")
		os.Exit(2)
	}
	label := *name
	if label == "" {
		label = *profile
	}
	covered, total, err := parseProfile(*profile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "covergate: %v\n", err)
		os.Exit(2)
	}
	if total == 0 {
		fmt.Fprintf(os.Stderr, "covergate: %s: profile covers no statements\n", label)
		os.Exit(2)
	}
	pct := 100 * float64(covered) / float64(total)
	status := "ok"
	if pct < *min {
		status = "BELOW FLOOR"
	}
	fmt.Printf("covergate: %-20s %6.1f%% of %d statements (floor %.1f%%) [%s]\n",
		label, pct, total, *min, status)
	if pct < *min {
		os.Exit(1)
	}
}
