// Command priublob runs the shared blob tier of a priuserve fleet: a small
// HTTP object server over a directory, speaking the store.BlobStore wire
// protocol (see store.HTTPBlob).
//
// Usage:
//
//	priublob -addr :8090 -dir /var/lib/priublob
//
// Endpoints:
//
//	PUT    /blob?key=K     store the request body under K
//	GET    /blob?key=K     fetch K (404 when absent)
//	DELETE /blob?key=K     remove K (idempotent)
//	GET    /blobs?prefix=P list stored objects
//	GET    /healthz        liveness probe
//
// Objects are written temp-file + rename, so concurrent readers (and a crash
// mid-put) never observe a torn object. Keys are opaque strings — priuserve
// replicas use session storage IDs — escaped into flat file names.
//
// Point every replica's -blob flag at this server and the local spill
// directories become read-through/write-behind caches of it: any replica can
// restore any session, which is what lets the fleet survive a node loss.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"repro/priu/store"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	dir := flag.String("dir", "", "object directory (required)")
	flag.Parse()
	if *dir == "" {
		log.Fatal("priublob: -dir is required")
	}
	bs, err := store.NewFSBlob(*dir)
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	hs := &http.Server{Addr: *addr, Handler: store.BlobHandler(bs)}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("priublob listening on %s (dir=%s)", *addr, *dir)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("priublob: shutdown: %v", err)
	}
	log.Printf("priublob: shutdown complete")
}
