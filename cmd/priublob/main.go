// Command priublob runs the shared blob tier of a priuserve fleet: a small
// HTTP object server over a directory, speaking the store.BlobStore wire
// protocol (see store.HTTPBlob).
//
// Usage:
//
//	priublob -addr :8090 -dir /var/lib/priublob -admin-addr 127.0.0.1:9091
//
// Endpoints:
//
//	PUT    /blob?key=K     store the request body under K
//	GET    /blob?key=K     fetch K (404 when absent)
//	DELETE /blob?key=K     remove K (idempotent)
//	GET    /blobs?prefix=P list stored objects
//	GET    /healthz        liveness probe
//
// Objects are written temp-file + rename, so concurrent readers (and a crash
// mid-put) never observe a torn object. Keys are opaque strings — priuserve
// replicas use session storage IDs — escaped into flat file names.
//
// Point every replica's -blob flag at this server and the local spill
// directories become read-through/write-behind caches of it: any replica can
// restore any session, which is what lets the fleet survive a node loss.
//
// -admin-addr boots a second, operator-only listener serving GET /metrics
// (request counts and latency by method and status) and /debug/pprof/*. Bind
// it to localhost or an internal interface, never the data port.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"repro/priu/obs"
	"repro/priu/store"
)

// statusWriter captures the response status for the request metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// instrument counts every blob request by method and status and records its
// latency by method.
func instrument(reg *obs.Registry, next http.Handler) http.Handler {
	reqs := reg.CounterVec("priu_blobserver_requests_total",
		"Blob server requests by method and status code.", "method", "code")
	secs := reg.HistogramVec("priu_blobserver_request_seconds",
		"Blob server request duration by method.", nil, "method")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r)
		secs.With(r.Method).Observe(time.Since(start).Seconds())
		reqs.With(r.Method, strconv.Itoa(sw.status)).Inc()
	})
}

func adminHandler(reg *obs.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", reg.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	dir := flag.String("dir", "", "object directory (required)")
	adminAddr := flag.String("admin-addr", "", "operator listener for /metrics and /debug/pprof (empty = disabled; never expose publicly)")
	flag.Parse()
	if *dir == "" {
		log.Fatal("priublob: -dir is required")
	}
	bs, err := store.NewFSBlob(*dir)
	if err != nil {
		log.Fatal(err)
	}
	reg := obs.NewRegistry()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	hs := &http.Server{Addr: *addr, Handler: instrument(reg, store.BlobHandler(bs))}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	var admin *http.Server
	if *adminAddr != "" {
		admin = &http.Server{Addr: *adminAddr, Handler: adminHandler(reg)}
		go func() {
			if err := admin.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				errc <- err
			}
		}()
		log.Printf("priublob: admin listener on %s (/metrics, /debug/pprof)", *adminAddr)
	}
	log.Printf("priublob listening on %s (dir=%s)", *addr, *dir)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("priublob: shutdown: %v", err)
	}
	if admin != nil {
		if err := admin.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Printf("priublob: admin shutdown: %v", err)
		}
	}
	log.Printf("priublob: shutdown complete")
}
