// Command priubench runs the reproduction experiments for the PrIU paper's
// tables and figures.
//
// Usage:
//
//	priubench -list
//	priubench -exp fig1a [-scale 0.5]
//	priubench -exp all   [-scale 0.25]
//
// Each experiment prints paper-style rows (deletion-rate sweeps of update
// times, memory tables, accuracy/similarity tables). scale ∈ (0,1] shrinks
// the workloads proportionally for quicker runs; EXPERIMENTS.md records the
// scale used for the committed results.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/par"
	"repro/priu/bench"
)

func main() {
	var (
		exp        = flag.String("exp", "", "experiment id to run (or \"all\")")
		scale      = flag.Float64("scale", 1.0, "workload scale factor in (0,1]")
		list       = flag.Bool("list", false, "list available experiments")
		parMinWork = flag.Int("par-minwork", 0, "pin the per-chunk parallel work cutoff (0 = measure at startup; "+par.EnvMinWork+" also pins)")
	)
	flag.Parse()
	if *parMinWork > 0 {
		par.SetCutoffs(*parMinWork, *parMinWork)
	} else {
		par.Calibrate()
	}

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, id := range bench.IDs() {
			fmt.Printf("  %-18s %s\n", id, bench.Registry[id].Description)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}
	if *scale <= 0 || *scale > 1 {
		fmt.Fprintf(os.Stderr, "priubench: scale %v out of (0,1]\n", *scale)
		os.Exit(2)
	}
	ids := []string{*exp}
	if *exp == "all" {
		ids = bench.IDs()
	}
	for _, id := range ids {
		e, ok := bench.Registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "priubench: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		fmt.Printf("== %s: %s ==\n", e.ID, e.Description)
		if err := e.Run(os.Stdout, *scale); err != nil {
			fmt.Fprintf(os.Stderr, "priubench: %s failed: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}
