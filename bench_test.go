package repro

// Benchmark harness: one testing.B family per table and figure of the
// paper's evaluation section (Sec 6). Workloads are prepared once per
// process (offline capture is excluded from timings, matching the paper's
// protocol) and each benchmark times one update operation. Run with:
//
//	go test -bench=. -benchmem
//
// Speed-ups vs BaseL appear as the ratio of the corresponding benchmark
// times; cmd/priubench prints them directly.

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/mat"
	"repro/priu/bench"
)

// benchScale shrinks the harness workloads so the full suite completes in
// minutes; EXPERIMENTS.md records results from the same configurations.
const benchScale = 0.35

var (
	preparedMu sync.Mutex
	prepared   = map[string]*bench.Prepared{}
)

func getPrepared(b *testing.B, id string) *bench.Prepared {
	b.Helper()
	preparedMu.Lock()
	defer preparedMu.Unlock()
	if p, ok := prepared[id]; ok {
		return p
	}
	w, err := bench.WorkloadByID(id)
	if err != nil {
		b.Fatal(err)
	}
	p, err := bench.Prepare(w.Scale(benchScale))
	if err != nil {
		b.Fatal(err)
	}
	prepared[id] = p
	return p
}

// benchUpdate times one method at one deletion rate on one workload.
func benchUpdate(b *testing.B, id string, m bench.Method, rate float64) {
	p := getPrepared(b, id)
	removed := p.PickRemoval(rate, 12345)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := p.RunUpdate(m, removed); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(removed)), "removed")
}

// sweepMethods runs sub-benchmarks for every applicable method at the given
// deletion rates — the shape of one figure panel.
func sweepMethods(b *testing.B, id string, rates []float64) {
	p := getPrepared(b, id)
	for _, rate := range rates {
		for _, m := range p.Methods() {
			b.Run(fmt.Sprintf("rate=%g/%s", rate, m), func(b *testing.B) {
				benchUpdate(b, id, m, rate)
			})
		}
	}
}

var figRates = []float64{0.001, 0.01, 0.1}

// Figure 1: update time for linear regression (SGEMM original/extended).
func BenchmarkFig1aSGEMMOriginal(b *testing.B) { sweepMethods(b, "sgemm-original", figRates) }
func BenchmarkFig1bSGEMMExtended(b *testing.B) { sweepMethods(b, "sgemm-extended", figRates) }

// Figure 2: update time for (multinomial) logistic regression over Cov with
// varying batch size and iteration count.
func BenchmarkFig2aCovSmall(b *testing.B)  { sweepMethods(b, "cov-small", figRates) }
func BenchmarkFig2bCovLarge1(b *testing.B) { sweepMethods(b, "cov-large1", figRates) }
func BenchmarkFig2cCovLarge2(b *testing.B) { sweepMethods(b, "cov-large2", figRates) }

// Figure 3: update time across feature-space sizes (Heartbeat vs HIGGS) and
// the extreme cases (sparse RCV1, large-m cifar10).
func BenchmarkFig3aHeartbeat(b *testing.B) { sweepMethods(b, "heartbeat", figRates) }
func BenchmarkFig3bHIGGS(b *testing.B)     { sweepMethods(b, "higgs", figRates) }
func BenchmarkFig3cRCV1(b *testing.B) {
	for _, m := range []bench.Method{bench.MethodBaseL, bench.MethodPrIU} {
		b.Run(string(m), func(b *testing.B) { benchUpdate(b, "rcv1", m, 0.001) })
	}
}
func BenchmarkFig3cCifar10(b *testing.B) {
	for _, m := range []bench.Method{bench.MethodBaseL, bench.MethodPrIU} {
		b.Run(string(m), func(b *testing.B) { benchUpdate(b, "cifar10", m, 0.001) })
	}
}

// Figure 4: repetitive removal of 10 different subsets (extended datasets).
// One benchmark iteration performs all ten updates, so the BaseL/PrIU-opt
// time ratio is the figure's speed-up.
func BenchmarkFig4Repetitive(b *testing.B) {
	for _, id := range []string{"cov-extended", "higgs-extended", "heartbeat-extended"} {
		p := getPrepared(b, id)
		for _, m := range []bench.Method{bench.MethodBaseL, bench.MethodPrIUOpt} {
			b.Run(fmt.Sprintf("%s/%s", id, m), func(b *testing.B) {
				subsets := make([][]int, 10)
				for s := range subsets {
					subsets[s] = p.PickRemoval(0.001, int64(100+s))
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for _, removed := range subsets {
						if _, _, err := p.RunUpdate(m, removed); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		}
	}
}

// Table 1: dataset characteristics — benches the synthetic generators.
func BenchmarkTable1Datasets(b *testing.B) {
	for _, id := range []string{"sgemm-original", "higgs", "cov-small", "rcv1"} {
		b.Run(id, func(b *testing.B) {
			w, err := bench.WorkloadByID(id)
			if err != nil {
				b.Fatal(err)
			}
			w = w.Scale(0.1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := w.Generate(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Table 3: memory consumption — reports provenance-cache MB per method.
func BenchmarkTable3Memory(b *testing.B) {
	for _, id := range []string{"sgemm-original", "higgs", "cov-small"} {
		p := getPrepared(b, id)
		for _, m := range []bench.Method{bench.MethodBaseL, bench.MethodPrIU, bench.MethodPrIUOpt} {
			b.Run(fmt.Sprintf("%s/%s", id, m), func(b *testing.B) {
				var bytes int64
				for i := 0; i < b.N; i++ {
					bytes = p.FootprintBytes(m)
				}
				b.ReportMetric(float64(bytes)/(1<<20), "MB")
			})
		}
	}
}

// Table 4: accuracy/distance/similarity at deletion rate 0.2 — runs the
// comparison pipeline (update + evaluate + compare) end to end.
func BenchmarkTable4Accuracy(b *testing.B) {
	for _, id := range []string{"higgs", "sgemm-original"} {
		p := getPrepared(b, id)
		removed := p.PickRemoval(0.2, 777)
		base, _, err := p.RunUpdate(bench.MethodBaseL, removed)
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range []bench.Method{bench.MethodPrIUOpt, bench.MethodINFL} {
			b.Run(fmt.Sprintf("%s/%s", id, m), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					upd, _, err := p.RunUpdate(m, removed)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := p.Evaluate(upd); err != nil {
						b.Fatal(err)
					}
					_ = base
				}
			})
		}
	}
}

// Ablation (assoc): the matrix-vector associativity trick of Sec 5.1 —
// applying the removed-samples term as ΔXᵀ(ΔX·w) (two mat-vecs, O(ΔB·m))
// instead of forming ΔXᵀΔX and multiplying (O(ΔB·m² + m²)).
func BenchmarkAblationAssoc(b *testing.B) {
	const m, dB = 256, 32
	rng := benchRand(1)
	dx := mat.NewDense(dB, m)
	for i := range dx.Data() {
		dx.Data()[i] = rng.NormFloat64()
	}
	w := make([]float64, m)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	b.Run("assoc-two-matvecs", func(b *testing.B) {
		tmp := make([]float64, dB)
		out := make([]float64, m)
		for i := 0; i < b.N; i++ {
			dx.MulVecInto(tmp, w)
			dx.MulVecTInto(out, tmp)
		}
	})
	b.Run("explicit-gram", func(b *testing.B) {
		out := make([]float64, m)
		for i := 0; i < b.N; i++ {
			g := dx.Gram()
			g.MulVecInto(out, w)
		}
	})
}

func benchRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Ablation: the experiment runners themselves (SVD rank / ts / Δx sweeps)
// end to end at small scale.
func BenchmarkAblations(b *testing.B) {
	for _, id := range []string{"ablation-svdrank", "ablation-ts", "ablation-dx"} {
		b.Run(id, func(b *testing.B) {
			e := bench.Registry[id]
			for i := 0; i < b.N; i++ {
				if err := e.Run(io.Discard, 0.05); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
