package priu

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/par"
)

// TestCaptureDeterministicAcrossWorkers locks in the contract behind the
// parallel capture/update paths: with the par cutoffs pinned, training,
// provenance capture, snapshot serialization and incremental updates produce
// bitwise-identical results at any worker count. Tiny cutoffs force every
// parallel kernel to engage even at test sizes.
func TestCaptureDeterministicAcrossWorkers(t *testing.T) {
	pc, pm := par.Cutoffs()
	par.SetCutoffs(64, 64)
	t.Cleanup(func() { par.SetCutoffs(pc, pm) })

	sds, err := GenerateSparseBinary("t-det-sparse", 200, 40, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	removed := []int{3, 17, 42, 99, 140}

	families := []string{
		FamilyLinear, FamilyLinearOpt, FamilyLogistic, FamilyLogisticOpt,
		FamilyMultinomial, FamilyMultinomialOpt, FamilySparseLogistic,
	}
	for _, fam := range families {
		fam := fam
		t.Run(fam, func(t *testing.T) {
			var ds TrainingSet
			if fam == FamilySparseLogistic {
				ds = sds
			} else {
				ds = denseSet(t, fam)
			}
			modes := []struct {
				name string
				opt  Option
			}{
				{"full", WithFullCaches()},
				{"svd", WithSVD(0.01)},
			}
			if fam == FamilySparseLogistic {
				// The sparse path caches coefficients only; cache mode is moot.
				modes = modes[:1]
			}
			for _, mode := range modes {
				type capture struct {
					model, updated []float64
					snap           []byte
				}
				run := func() capture {
					opts := append(testOpts(), mode.opt)
					u, err := Train(fam, ds, opts...)
					if err != nil {
						t.Fatalf("Train(%s/%s): %v", fam, mode.name, err)
					}
					var snap bytes.Buffer
					if err := WriteSnapshot(&snap, fam, ds, u); err != nil {
						t.Fatalf("WriteSnapshot(%s/%s): %v", fam, mode.name, err)
					}
					upd, err := u.Update(removed)
					if err != nil {
						t.Fatalf("Update(%s/%s): %v", fam, mode.name, err)
					}
					c := capture{snap: snap.Bytes()}
					c.model = append(c.model, u.Model().W.Data()...)
					c.updated = append(c.updated, upd.W.Data()...)
					return c
				}
				prev := SetWorkers(1)
				base := run()
				for _, w := range []int{2, 8} {
					SetWorkers(w)
					got := run()
					for i, v := range base.model {
						if math.Float64bits(v) != math.Float64bits(got.model[i]) {
							t.Fatalf("%s/%s: model differs at workers=%d (param %d: %v vs %v)",
								fam, mode.name, w, i, v, got.model[i])
						}
					}
					for i, v := range base.updated {
						if math.Float64bits(v) != math.Float64bits(got.updated[i]) {
							t.Fatalf("%s/%s: updated model differs at workers=%d (param %d: %v vs %v)",
								fam, mode.name, w, i, v, got.updated[i])
						}
					}
					if !bytes.Equal(base.snap, got.snap) {
						t.Fatalf("%s/%s: snapshot bytes differ at workers=%d", fam, mode.name, w)
					}
				}
				SetWorkers(prev)
			}
		})
	}
}
