package service

import (
	"encoding/json"
	"net/http"
	"testing"
)

func TestV2Meta(t *testing.T) {
	ts := newTestServerOpts(t, WithMaxSessions(5), WithWhatIfWorkers(3), WithWhatIfLimit(2))
	resp, err := http.Get(ts.URL + "/v2/meta")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("meta status %d", resp.StatusCode)
	}
	var meta MetaResponse
	if err := json.NewDecoder(resp.Body).Decode(&meta); err != nil {
		t.Fatal(err)
	}
	if meta.Version == "" || len(meta.Families) == 0 {
		t.Fatalf("bad meta %+v", meta)
	}
	if meta.Features.AuthMode != "off" || meta.Features.Spill || !meta.Features.WhatIf {
		t.Fatalf("features %+v, want auth off / no spill / whatif on", meta.Features)
	}
	if meta.Limits.MaxSessions != 5 || meta.Limits.WhatIfWorkers != 3 || meta.Limits.WhatIfConcurrent != 2 {
		t.Fatalf("limits %+v", meta.Limits)
	}
	if meta.Limits.MaxRemovalsPerBatch <= 0 {
		t.Fatal("max_removals_per_batch must be positive")
	}
	if !meta.V1.Deprecated || meta.V1.Sunset == "" {
		t.Fatalf("v1 schedule %+v", meta.V1)
	}
}

// TestV1DeprecationHeaders: every v1 response carries the deprecation trio;
// v2 responses carry none of it.
func TestV1DeprecationHeaders(t *testing.T) {
	ts := newTestServerOpts(t)
	for _, path := range []string{"/v1/sessions", "/v1/stats"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.Header.Get("Deprecation") != "true" {
			t.Fatalf("%s: missing Deprecation header", path)
		}
		if resp.Header.Get("Sunset") != v1Sunset {
			t.Fatalf("%s: Sunset = %q, want %q", path, resp.Header.Get("Sunset"), v1Sunset)
		}
		if link := resp.Header.Get("Link"); link != `</v2/meta>; rel="successor-version"` {
			t.Fatalf("%s: Link = %q", path, link)
		}
	}
	resp, err := http.Get(ts.URL + "/v2/sessions")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("Deprecation") != "" || resp.Header.Get("Sunset") != "" {
		t.Fatal("v2 responses must not carry deprecation headers")
	}
}

// TestV2SessionListPagination walks a 5-session listing in pages of 2 and
// checks stable order, cursor resumption and terminal next_cursor.
func TestV2SessionListPagination(t *testing.T) {
	ts := newTestServerOpts(t)
	want := make([]string, 0, 5)
	for i := 0; i < 5; i++ {
		sr := v2Create(t, ts.URL, v2CreateBody(t, "linear", 40, 3, int64(i+1)))
		want = append(want, sr.SessionID)
	}

	listPage := func(query string) SessionListResponse {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v2/sessions" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("list %q status %d", query, resp.StatusCode)
		}
		var page SessionListResponse
		if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
			t.Fatal(err)
		}
		return page
	}

	// Unpaged: everything, no next_cursor, ascending ID order.
	full := listPage("")
	if len(full.Sessions) != 5 || full.NextCursor != "" {
		t.Fatalf("unpaged listing: %d rows, cursor %q", len(full.Sessions), full.NextCursor)
	}
	for i, si := range full.Sessions {
		if si.SessionID != want[i] {
			t.Fatalf("row %d = %s, want %s (stable order)", i, si.SessionID, want[i])
		}
	}

	// Paged walk: 2 + 2 + 1.
	var got []string
	cursor := ""
	pages := 0
	for {
		q := "?limit=2"
		if cursor != "" {
			q += "&cursor=" + cursor
		}
		page := listPage(q)
		if len(page.Sessions) > 2 {
			t.Fatalf("page of %d rows exceeds limit 2", len(page.Sessions))
		}
		for _, si := range page.Sessions {
			got = append(got, si.SessionID)
		}
		pages++
		if page.NextCursor == "" {
			break
		}
		cursor = page.NextCursor
	}
	if pages != 3 || len(got) != 5 {
		t.Fatalf("walked %d pages / %d rows, want 3 / 5", pages, len(got))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("paged row %d = %s, want %s", i, got[i], want[i])
		}
	}

	// A cursor past the end yields an empty terminal page.
	tail := listPage("?limit=2&cursor=" + want[4])
	if len(tail.Sessions) != 0 || tail.NextCursor != "" {
		t.Fatalf("past-the-end page: %+v", tail)
	}

	// Invalid limit: typed 400.
	resp, err := http.Get(ts.URL + "/v2/sessions?limit=zero")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad limit status %d", resp.StatusCode)
	}
	if env := decodeEnvelope(t, resp.Body); env.Error.Code != ErrCodeBadRequest {
		t.Fatalf("bad limit code %q", env.Error.Code)
	}
}

// TestV1SessionsPagination: /v1/sessions keeps its bare-array shape for
// existing callers and switches to the envelope only when the caller passes
// paging parameters.
func TestV1SessionsPagination(t *testing.T) {
	ts := newTestServerOpts(t)
	for i := 0; i < 3; i++ {
		v2Create(t, ts.URL, v2CreateBody(t, "linear", 40, 3, int64(i+1)))
	}

	// Bare array without paging parameters (the pre-pagination wire shape).
	resp, err := http.Get(ts.URL + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	var bare []struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&bare); err != nil {
		t.Fatalf("v1 unpaged listing is no longer a bare array: %v", err)
	}
	resp.Body.Close()
	if len(bare) != 3 {
		t.Fatalf("v1 listing has %d rows, want 3", len(bare))
	}

	// Envelope with ?limit=.
	resp, err = http.Get(ts.URL + "/v1/sessions?limit=2")
	if err != nil {
		t.Fatal(err)
	}
	var page struct {
		Sessions []struct {
			ID string `json:"id"`
		} `json:"sessions"`
		NextCursor string `json:"next_cursor"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(page.Sessions) != 2 || page.NextCursor != page.Sessions[1].ID {
		t.Fatalf("v1 page %+v", page)
	}

	// Second page completes the walk.
	resp, err = http.Get(ts.URL + "/v1/sessions?limit=2&cursor=" + page.NextCursor)
	if err != nil {
		t.Fatal(err)
	}
	var page2 struct {
		Sessions []struct {
			ID string `json:"id"`
		} `json:"sessions"`
		NextCursor string `json:"next_cursor"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&page2); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(page2.Sessions) != 1 || page2.NextCursor != "" {
		t.Fatalf("v1 second page %+v", page2)
	}

	// Invalid limit: flat v1 400.
	resp, err = http.Get(ts.URL + "/v1/sessions?limit=-4")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad v1 limit status %d", resp.StatusCode)
	}
}
