package service

import (
	"net/http"
	"net/http/pprof"
	"strconv"

	"repro/priu/obs"
)

// AdminHandler returns the operator surface: Prometheus exposition at
// /metrics, per-request trace trees at /v2/debug/traces[/{id}], and pprof.
// It must be served on a separate operator-only listener (-admin-addr), never
// mounted on the tenant port: nothing here is tenant-authenticated, traces
// leak cross-tenant request shapes, and pprof exposes heap contents.
func (s *Server) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", s.obsReg.Handler())
	mux.HandleFunc("GET /v2/debug/traces", s.handleTraces)
	mux.HandleFunc("GET /v2/debug/traces/{id}", s.handleTraceByID)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// handleTraces lists recently completed traces, newest first (?limit=N,
// default 50).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	limit := 50
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeV2Error(w, http.StatusBadRequest, ErrCodeBadRequest, "invalid limit %q", v)
			return
		}
		limit = n
	}
	writeJSON(w, struct {
		Traces []obs.TraceSummary `json:"traces"`
	}{Traces: s.tracer.Recent(limit)})
}

// handleTraceByID serves this node's span tree for one trace ID. In a fleet
// the same ID fetched from each replica stitches the cross-node picture; the
// node field says whose tree this is.
func (s *Server) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	tv, ok := s.tracer.Lookup(id)
	if !ok {
		writeV2Error(w, http.StatusNotFound, ErrCodeNotFound, "unknown trace %q", id)
		return
	}
	if s.cluster != nil {
		tv.Node = s.cluster.Self()
	}
	writeJSON(w, tv)
}
