// Package service exposes PrIU as a versioned HTTP deletion service: a
// data-cleaning pipeline (the integration point the paper's introduction
// describes) trains and registers models, then issues deletion requests and
// receives updated parameters without retraining. Sessions hold a
// priu.Updater — the service never touches concrete engine types, so any
// registered family (including externally registered ones) is servable.
//
// Session storage lives behind the priu/store.Store interface: the default
// is the hash-sharded in-memory LRU tier, and cmd/priuserve wires in the
// tiered store (-store-dir) that spills evicted sessions to disk as priu
// session snapshots, lazily restores them on the next touch, and snapshots
// dirty sessions on shutdown — so an LRU budget is a cache boundary and a
// restart loses nothing. The handlers only ever Get/Put/Delete sessions; a
// mutator that finds its session copy was evicted mid-flight re-fetches,
// which transparently restores the session (deletion log replayed) from the
// spill directory.
//
// Two API generations are mounted side by side:
//
//	v1 (deprecated: every response carries Deprecation/Sunset headers and a
//	successor-version link to /v2/meta; wire formats unchanged until sunset)
//	  POST /v1/train     register data + hyperparameters, train with capture
//	  POST /v1/delete    incrementally remove samples (single session or batch)
//	  GET  /v1/model/ID  fetch a session's current parameters
//	  GET  /v1/sessions  list sessions (?limit=&cursor= opts into pagination)
//	  GET  /v1/stats     per-shard, per-session and per-tier counters
//
//	v2 (REST routing, typed {"error":{"code","message"}} envelopes, snapshots,
//	CSR uploads, streaming deletions, what-if previews — see v2.go, whatif.go)
//	  POST   /v2/sessions                train (dense or CSR), or restore a snapshot
//	  GET    /v2/sessions                paginated listing ({"sessions","next_cursor"})
//	  GET    /v2/sessions/{id}           session metadata + parameters
//	  DELETE /v2/sessions/{id}           drop a session (and its spill file)
//	  GET    /v2/sessions/{id}/snapshot  stream a self-contained snapshot
//	  POST   /v2/sessions/{id}/deletions NDJSON stream of removal batches
//	  POST   /v2/sessions/{id}/whatif    evaluate candidate deletion sets without committing
//	  GET    /v2/tenants/self/stats      the calling tenant's counters
//	  GET    /v2/meta                    version, enabled features, limits
//
//	GET /healthz           load-balancer probe (version, uptime, tiers)
//
// Both generations are tenant-aware (see auth.go): WithAuth installs an
// API-key middleware that resolves "Authorization: Bearer" keys to tenants.
// A tenant's sessions live in its own store namespace, its session/byte
// quota is enforced at registration (typed 429), and its deletion streams
// are rate-limited by a token bucket over removed rows. Unauthenticated
// callers (AuthOff, or AuthOptional without a key) are the anonymous tenant,
// whose wire behavior is exactly the pre-tenant service.
//
// # Distributed operation
//
// WithCluster (see fleet.go) turns one server into a fleet member. Placement
// is a pure function of the alive member set: priu/cluster rendezvous-hashes
// session storage IDs, so every node computes the same owner with no
// coordination, and the fleet middleware routes accordingly — non-owner
// nodes answer session reads with a 307 to the owner, transparently proxy
// the streaming routes (deletions, what-if) so clients keep one connection,
// and scatter-gather v1 batch deletes across owners. A forwarded request
// carries a hop header so routing can never loop. Session creation is always
// local: IDs are minted with a per-node suffix until one rendezvous-hashes
// to the creating node, so a new session's home is the node that trained it.
//
// Durability under node loss belongs to the store, not the routing layer:
// replicas share a blob tier (store.WithBlobStore), every spill is certified
// into it write-behind, and a membership change triggers peer handoff — the
// nodes that lost ownership push those sessions to the blob tier and forget
// them locally (store.Tiered.ReleaseUnowned), and the new owner lazily
// restores on first touch, deletion log replayed, bitwise-identical. When a
// peer is unreachable the proxy answers a typed 502 peer_unavailable and
// demotes it immediately; liveness probes re-admit it later. When the
// resident tier is pinned full, registration answers a typed 503
// resident_pressure with a Retry-After header rather than queueing.
// GET /v2/meta advertises features.fleet/features.blob and a cluster block
// (node, peers, alive set, ring version) so clients can discover the
// topology.
//
// # Observability
//
// Every server carries a priu/obs metrics registry and tracer (obs.go;
// WithObservability shares them with the embedding process). The registry is
// the single source of truth for the service's counters — /v1/stats,
// /healthz and /v2/tenants/self/stats read the same cells the Prometheus
// scrape does — and AdminHandler serves the operator surface: GET /metrics
// (text exposition), GET /v2/debug/traces[/{id}] (recent per-request span
// trees) and /debug/pprof. The admin handler is deliberately
// unauthenticated and must only be mounted on an operator-only listener
// (cmd/priuserve -admin-addr), never the tenant port. Requests run under an
// X-Priu-Trace ID minted at ingress (or adopted from the client), propagated
// across fleet redirects and proxied streams, and echoed on the response;
// traces exceeding the tracer's slow-op threshold are logged with their
// hottest span.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/mat"
	"repro/internal/metrics"
	"repro/internal/par"
	"repro/priu"
	"repro/priu/cluster"
	"repro/priu/obs"
	"repro/priu/store"
)

// Session aliases the store's session record: the service adds wire formats
// and request accounting on top, storage placement belongs to priu/store.
type Session = store.Session

// numShards mirrors the store's shard count for the /v1/stats layout.
const numShards = store.NumShards

// defaultMaxRemovalsPerBatch bounds one v2 deletion batch; oversize batches
// are rejected with a typed error instead of stalling the update pool.
const defaultMaxRemovalsPerBatch = 1 << 20

// reqCounters are one shard's HTTP request counters (the store owns session
// placement and eviction counters; the service owns request accounting).
// The cells are registry counters — same atomic increment, and /metrics reads
// the identical values /v1/stats reports.
type reqCounters struct {
	trains       *obs.Counter
	deletes      *obs.Counter
	deleteErrors *obs.Counter
}

// tenantCounters are one tenant's HTTP request counters (storage placement
// counters live in the store; these are request-side). Pre-resolved children
// of the per-tenant registry families (see tenantVecs in obs.go).
type tenantCounters struct {
	trains          *obs.Counter
	deletes         *obs.Counter
	deleteErrors    *obs.Counter
	rowsDeleted     *obs.Counter
	rateLimited     *obs.Counter
	quotaRejections *obs.Counter
	// What-if plane: completed streams, evaluated sets, in-flight streams
	// (the concurrency-limit gauge) and limit rejections.
	whatifs       *obs.Counter
	whatifSets    *obs.Counter
	whatifActive  *obs.Gauge
	whatifLimited *obs.Counter
}

// Server is the HTTP deletion service. The zero value is not usable; call
// NewServer.
type Server struct {
	st     store.Store
	reqs   [numShards]reqCounters
	nextID atomic.Int64
	start  time.Time

	// Auth: mode plus the key→tenant resolver (nil keyring = no keys known).
	authMode AuthMode
	keyring  *Keyring
	// tenantReqs maps tenant name → *tenantCounters.
	tenantReqs sync.Map

	// Budgets used when no explicit store is injected (and echoed by
	// /healthz).
	maxSessions int
	maxBytes    int64

	// maxRemovals bounds one v2 deletion batch.
	maxRemovals int

	// What-if plane (see whatif.go): per-batch evaluation fan-out, the
	// per-tenant concurrent-stream cap, and the service-wide gauges.
	whatifWorkers   int
	whatifLimit     int
	whatifs         *obs.Counter
	whatifSets      *obs.Counter
	whatifCacheHits *obs.Counter

	// Fleet (see fleet.go): replica membership, this node's session-ID
	// suffix, routing counters and the one-at-a-time handoff latch.
	cluster        *cluster.Membership
	nodeSuffix     string
	fleetRedirects *obs.Counter
	fleetProxied   *obs.Counter
	fleetHandoffs  *obs.Counter
	fleetReleased  *obs.Counter
	handoffActive  atomic.Bool
	handoffRerun   atomic.Bool

	// Observability (see obs.go): the metrics registry, the request tracer,
	// the per-tenant metric families and the pre-resolved service handles.
	obsReg            *obs.Registry
	tracer            *obs.Tracer
	tenantVecs        tenantVecs
	httpReqs          *obs.CounterVec
	httpSeconds       *obs.HistogramVec
	captureSeconds    *obs.Histogram
	updateSeconds     *obs.Histogram
	deletionRows      *obs.Counter
	streamSeconds     *obs.Histogram
	snapshotSeconds   *obs.Histogram
	whatifPlanSeconds *obs.Histogram
	whatifEvalSeconds *obs.Histogram
}

// tc returns (creating if needed) a tenant's request counters.
func (s *Server) tc(name string) *tenantCounters {
	if v, ok := s.tenantReqs.Load(name); ok {
		return v.(*tenantCounters)
	}
	v, _ := s.tenantReqs.LoadOrStore(name, s.newTenantCounters(name))
	return v.(*tenantCounters)
}

// ServerOption configures NewServer.
type ServerOption func(*Server)

// WithMaxSessions bounds the number of resident sessions; the least recently
// used session is evicted when a registration exceeds the budget (0 =
// unbounded). Ignored when WithStore injects a pre-built store.
func WithMaxSessions(n int) ServerOption { return func(s *Server) { s.maxSessions = n } }

// WithMaxBytes bounds resident session memory (training data + provenance,
// as charged by priu.Updater.FootprintBytes); least recently used sessions
// are evicted when a registration exceeds the budget (0 = unbounded).
// Ignored when WithStore injects a pre-built store.
func WithMaxBytes(b int64) ServerOption { return func(s *Server) { s.maxBytes = b } }

// WithMaxRemovalsPerBatch bounds the size of one v2 deletion batch.
func WithMaxRemovalsPerBatch(n int) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.maxRemovals = n
		}
	}
}

// WithStore serves sessions from a pre-built store (e.g. store.NewTiered for
// the spill-to-disk tier). Without it, NewServer builds an in-memory store
// from the WithMaxSessions/WithMaxBytes budgets. An injected store should be
// built with store.WithTenantLimits(keyring.Limits) when WithAuth is used,
// so tenant quotas are enforced atomically at registration.
func WithStore(st store.Store) ServerOption { return func(s *Server) { s.st = st } }

// WithAuth installs API-key authentication: keys resolve to tenants through
// the keyring (nil = no keys known, which with AuthRequired rejects
// everything but /healthz). See AuthMode for the modes.
func WithAuth(mode AuthMode, k *Keyring) ServerOption {
	return func(s *Server) {
		s.authMode = mode
		s.keyring = k
	}
}

// NewServer returns a deletion service. With an injected tiered store the
// server picks up every session a previous process spilled: IDs continue
// after the highest one found, and cold sessions restore on first touch.
func NewServer(opts ...ServerOption) *Server {
	s := &Server{start: time.Now(), maxRemovals: defaultMaxRemovalsPerBatch, whatifLimit: defaultWhatIfLimit}
	for _, opt := range opts {
		opt(s)
	}
	if s.st == nil {
		memOpts := []store.MemoryOption{store.WithMaxSessions(s.maxSessions), store.WithMaxBytes(s.maxBytes)}
		if s.keyring != nil {
			memOpts = append(memOpts, store.WithTenantLimits(s.keyring.Limits))
		}
		s.st = store.NewMemory(memOpts...)
	}
	s.initObs()
	s.seedNextID()
	if s.cluster != nil {
		s.nodeSuffix = nodeSuffix(s.cluster.Self())
		s.cluster.SetOnChange(func(*cluster.Ring) { s.handoff() })
	}
	return s
}

// Store returns the session store the server was built on (the shutdown path
// closes it to drain dirty sessions).
func (s *Server) Store() store.Store { return s.st }

// seedNextID advances the ID counter past every session already in the store
// (resident or spilled), so a restarted server never reissues an ID. The
// counter is global across tenants; a session's storage ID is the wire ID
// prefixed with its tenant's namespace.
func (s *Server) seedNextID() {
	max := int64(0)
	scan := func(id string) {
		var n int64
		if _, err := fmt.Sscanf(store.LocalID(id), "sess-%d", &n); err == nil && n > max {
			max = n
		}
	}
	s.st.Range(func(sess *Session) bool {
		scan(sess.ID)
		return true
	})
	for _, sp := range s.st.Stats().SpilledSessions {
		scan(sp.ID)
	}
	s.nextID.Store(max)
}

// sessionIDLess orders generated "sess-N" IDs numerically (shorter numeric
// suffix first) so listings don't interleave sess-10 between sess-1 and
// sess-2 once the store passes nine sessions.
func sessionIDLess(a, b string) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	return a < b
}

// validWireID rejects empty IDs and IDs that could escape the caller's
// tenant namespace (a "/" in a client-supplied ID would address another
// tenant's storage key).
func validWireID(id string) bool { return id != "" && !strings.Contains(id, "/") }

// TrainRequest registers a training job. Features is row-major n×m.
type TrainRequest struct {
	Kind       string      `json:"kind"` // linear | logistic | multinomial
	Features   [][]float64 `json:"features"`
	Labels     []float64   `json:"labels"`
	Classes    int         `json:"classes,omitempty"`
	Eta        float64     `json:"eta"`
	Lambda     float64     `json:"lambda"`
	BatchSize  int         `json:"batch_size"`
	Iterations int         `json:"iterations"`
	Seed       int64       `json:"seed"`
}

// TrainResponse reports the new session.
type TrainResponse struct {
	SessionID      string    `json:"session_id"`
	Parameters     []float64 `json:"parameters"`
	ProvenanceMB   float64   `json:"provenance_mb"`
	CaptureSeconds float64   `json:"capture_seconds"`
}

// DeleteItem is one session's removal set within a batched delete.
type DeleteItem struct {
	SessionID string `json:"session_id"`
	Removed   []int  `json:"removed"`
}

// DeleteRequest removes training samples. Either the single-session fields
// (SessionID + Removed) or Batch must be set, not both. Batch items for
// different sessions execute concurrently.
type DeleteRequest struct {
	SessionID string       `json:"session_id,omitempty"`
	Removed   []int        `json:"removed,omitempty"`
	Batch     []DeleteItem `json:"batch,omitempty"`
}

// DeleteResponse reports the incrementally updated model.
type DeleteResponse struct {
	SessionID     string    `json:"session_id"`
	Parameters    []float64 `json:"parameters"`
	UpdateSeconds float64   `json:"update_seconds"`
	TotalDeleted  int       `json:"total_deleted"`
	CosineVsPrev  float64   `json:"cosine_vs_previous"`
}

// BatchDeleteResult is one item's outcome within a batched delete: either the
// update result or the item's error.
type BatchDeleteResult struct {
	SessionID string          `json:"session_id"`
	Error     string          `json:"error,omitempty"`
	Result    *DeleteResponse `json:"result,omitempty"`
}

// BatchDeleteResponse reports all outcomes of a batched delete, in request
// order. Per-item failures do not fail the batch.
type BatchDeleteResponse struct {
	Results []BatchDeleteResult `json:"results"`
}

// ModelResponse reports a session's current model.
type ModelResponse struct {
	SessionID    string    `json:"session_id"`
	Kind         string    `json:"kind"`
	Parameters   []float64 `json:"parameters"`
	TotalDeleted int       `json:"total_deleted"`
}

// SessionStats is one session's counters within /v1/stats.
type SessionStats struct {
	SessionID         string    `json:"session_id"`
	Kind              string    `json:"kind"`
	CreatedAt         time.Time `json:"created_at"`
	Updates           int64     `json:"updates"`
	TotalDeleted      int       `json:"total_deleted"`
	LastUpdateSeconds float64   `json:"last_update_seconds"`
}

// ShardStats is one shard's counters within /v1/stats. Evictions counts only
// budget (LRU) evictions; explicit DELETEs are reported separately.
type ShardStats struct {
	Shard           int            `json:"shard"`
	Sessions        int            `json:"sessions"`
	Trains          int64          `json:"trains"`
	Deletes         int64          `json:"deletes"`
	DeleteErrors    int64          `json:"delete_errors"`
	Evictions       int64          `json:"evictions"`
	ExplicitDeletes int64          `json:"explicit_deletes"`
	SessionStats    []SessionStats `json:"session_stats,omitempty"`
}

// StatsResponse is the /v1/stats payload. Sessions/ResidentBytes describe the
// in-memory tier; Spilled/SpilledBytes/Spills/Restores describe the disk tier
// (zero without -store-dir).
type StatsResponse struct {
	UptimeSeconds   float64 `json:"uptime_seconds"`
	Workers         int     `json:"workers"`
	Sessions        int     `json:"sessions"`
	Trains          int64   `json:"trains"`
	Deletes         int64   `json:"deletes"`
	DeleteErrors    int64   `json:"delete_errors"`
	Evictions       int64   `json:"evictions"`
	ExplicitDeletes int64   `json:"explicit_deletes"`
	ResidentBytes   int64   `json:"resident_bytes"`
	Spilled         int     `json:"spilled"`
	SpilledBytes    int64   `json:"spilled_bytes"`
	Spills          int64   `json:"spills"`
	Restores        int64   `json:"restores"`
	SpillDirBytes   int64   `json:"spill_dir_bytes,omitempty"`
	SpillMaxBytes   int64   `json:"spill_max_bytes,omitempty"`
	// Lifecycle-manager counters: write-behind spills (subset of Spills
	// performed off the request path), the queue's current backlog and its
	// backpressure drops, disk-budget file evictions that dropped cold
	// sessions, and age-based GC removals of orphaned files.
	WriteBehindSpills int64 `json:"write_behind_spills,omitempty"`
	SpillQueueDepth   int   `json:"spill_queue_depth,omitempty"`
	SpillQueueFull    int64 `json:"spill_queue_full,omitempty"`
	DiskEvictions     int64 `json:"disk_evictions,omitempty"`
	GCRemovals        int64 `json:"gc_removals,omitempty"`
	// Log-structured tier counters: spills that wrote an O(batch) delta
	// segment (subset of Spills), chain folds into a new base, delta
	// segments currently on disk, publishes discarded because a newer cut
	// won the chain race, and deletion tombstones awaiting their blob or
	// local-file removal.
	DeltaSpills       int64 `json:"delta_spills,omitempty"`
	Compactions       int64 `json:"compactions,omitempty"`
	DeltaSegments     int   `json:"delta_segments,omitempty"`
	StaleSpills       int64 `json:"stale_spills,omitempty"`
	PendingTombstones int   `json:"pending_tombstones,omitempty"`
	// What-if plane gauges: streams served, candidate sets evaluated, and
	// prefix-tree cache hits (shared-prefix rows the planners did not
	// re-apply).
	WhatIfs         int64 `json:"whatifs,omitempty"`
	WhatIfSets      int64 `json:"whatif_sets,omitempty"`
	WhatIfCacheHits int64 `json:"whatif_cache_hits,omitempty"`
	// Blob tier (zero without -blob): sessions with a certified copy in the
	// shared tier and their bytes there, plus the operation/error counters
	// and cache demotions (local spill files dropped because the blob copy
	// makes them redundant).
	BlobSessions  int   `json:"blob_sessions,omitempty"`
	BlobBytes     int64 `json:"blob_bytes,omitempty"`
	BlobPuts      int64 `json:"blob_puts,omitempty"`
	BlobGets      int64 `json:"blob_gets,omitempty"`
	BlobDeletes   int64 `json:"blob_deletes,omitempty"`
	BlobErrors    int64 `json:"blob_errors,omitempty"`
	BlobDemotions int64 `json:"blob_demotions,omitempty"`
	// Fleet (zero without -peers): this node's advertised URL, the current
	// placement-ring epoch and alive members, and the routing/handoff
	// counters.
	Node           string   `json:"node,omitempty"`
	RingVersion    uint64   `json:"ring_version,omitempty"`
	FleetAlive     []string `json:"fleet_alive,omitempty"`
	FleetRedirects int64    `json:"fleet_redirects,omitempty"`
	FleetProxied   int64    `json:"fleet_proxied,omitempty"`
	FleetHandoffs  int64    `json:"fleet_handoffs,omitempty"`
	FleetReleased  int64    `json:"fleet_released,omitempty"`

	Shards []ShardStats `json:"shards"`
}

// HealthResponse is the /healthz payload for load-balancer probes.
type HealthResponse struct {
	Version       string  `json:"version"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Workers       int     `json:"workers"`
	Shards        int     `json:"shards"`
	Sessions      int     `json:"sessions"`
	ResidentBytes int64   `json:"resident_bytes"`
	MaxSessions   int     `json:"max_sessions,omitempty"`
	MaxBytes      int64   `json:"max_bytes,omitempty"`
	Spilled       int     `json:"spilled,omitempty"`
	SpilledBytes  int64   `json:"spilled_bytes,omitempty"`
	Restores      int64   `json:"restores,omitempty"`
	// SpillDirBytes is the on-disk size of the spill directory (indexed
	// files plus scanned orphans) — the disk-growth gauge, maintained
	// incrementally by the lifecycle manager rather than walked per probe.
	SpillDirBytes int64 `json:"spill_dir_bytes,omitempty"`
	// SpillMaxBytes echoes the -spill-max-bytes disk budget (0 = unbounded).
	SpillMaxBytes int64 `json:"spill_max_bytes,omitempty"`
	// SpillQueueDepth is the write-behind queue's current backlog;
	// DiskEvictions counts cold sessions dropped by the disk budget.
	SpillQueueDepth int   `json:"spill_queue_depth,omitempty"`
	DiskEvictions   int64 `json:"disk_evictions,omitempty"`
	// Tenants counts distinct tenants with stored sessions.
	Tenants int `json:"tenants,omitempty"`
	// Blob tier (when -blob is set): sessions certified into the shared
	// tier and their bytes there.
	BlobSessions int   `json:"blob_sessions,omitempty"`
	BlobBytes    int64 `json:"blob_bytes,omitempty"`
	// Fleet (when -peers is set): this node's advertised URL, the number of
	// alive members and the placement-ring epoch — enough for a probe to
	// tell a healthy fleet from a split one.
	Node        string `json:"node,omitempty"`
	FleetAlive  int    `json:"fleet_alive,omitempty"`
	RingVersion uint64 `json:"ring_version,omitempty"`
}

// Handler returns the service's HTTP routes — the v1 surface (deprecated;
// every response carries Deprecation/Sunset headers pointing at /v2/meta),
// the v2 REST surface and the health probe — wrapped in the
// tenant-resolution middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/train", deprecateV1(s.handleTrain))
	mux.HandleFunc("/v1/delete", deprecateV1(s.handleDelete))
	mux.HandleFunc("/v1/model/", deprecateV1(s.handleModel))
	mux.HandleFunc("/v1/sessions", deprecateV1(s.handleSessions))
	mux.HandleFunc("/v1/stats", deprecateV1(s.handleStats))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mountV2(mux)
	// Middleware order, outside in: observability first (every request gets a
	// trace ID and a latency sample, even rejected ones), then auth (fleet
	// routing needs the resolved tenant to compute storage IDs), then
	// ownership routing (a request for a session owned elsewhere must not
	// touch the local store).
	return s.withObs(s.withAuth(s.withFleet(mux)))
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleTrain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req TrainRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	d, err := datasetFromRequest(req.Kind, req.Features, req.Labels, req.Classes)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	cfg := priu.Config{
		Eta: req.Eta, Lambda: req.Lambda,
		BatchSize: req.BatchSize, Iterations: req.Iterations, Seed: req.Seed,
	}
	ten := tenantFor(r)
	if qe := s.admitSession(ten); qe != nil {
		s.tc(ten.Name).quotaRejections.Add(1)
		status, _ := quotaHTTP(qe)
		writeError(w, status, "%v", qe)
		return
	}
	start := time.Now()
	_, span := obs.StartSpan(r.Context(), "capture")
	upd, err := priu.TrainConfig(req.Kind, d, cfg)
	span.End()
	s.captureSeconds.Observe(time.Since(start).Seconds())
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sess, err := s.addSession(ten, req.Kind, d, upd, nil, nil)
	if err != nil {
		// The store's atomic check caught a rejection that raced past the
		// admission pre-check (quota), or the resident tier is pinned solid
		// (transient pressure, 503 + Retry-After).
		s.failRegistration(w, ten, err)
		return
	}
	// Put published the session; IDs are guessable, so a concurrent delete
	// could already be mutating it — read the model under its lock.
	sess.Mu.Lock()
	params := sess.Model.Vec()
	sess.Mu.Unlock()
	writeJSON(w, TrainResponse{
		SessionID:      store.LocalID(sess.ID),
		Parameters:     params,
		ProvenanceMB:   float64(upd.FootprintBytes()) / (1 << 20),
		CaptureSeconds: time.Since(start).Seconds(),
	})
}

// admitSession is the cheap pre-training quota check: it rejects before the
// expensive capture when the tenant is already at its session quota (or over
// its byte or spill-byte quota). The authoritative, race-free check is the
// store's at Put.
func (s *Server) admitSession(ten *Tenant) *store.QuotaError {
	if ten.MaxSessions <= 0 && ten.MaxBytes <= 0 && ten.MaxSpillBytes <= 0 {
		return nil
	}
	u := s.st.TenantUsage(ten.Name)
	if ten.MaxSessions > 0 && u.Sessions()+1 > ten.MaxSessions {
		return &store.QuotaError{
			Tenant: ten.Name, Dimension: "sessions",
			Used: int64(u.Sessions() + 1), Limit: int64(ten.MaxSessions),
		}
	}
	if ten.MaxBytes > 0 && u.Bytes() >= ten.MaxBytes {
		return &store.QuotaError{
			Tenant: ten.Name, Dimension: "bytes",
			Used: u.Bytes(), Limit: ten.MaxBytes,
		}
	}
	if ten.MaxSpillBytes > 0 && u.SpillFileBytes >= ten.MaxSpillBytes {
		return &store.QuotaError{
			Tenant: ten.Name, Dimension: store.DimensionSpillBytes,
			Used: u.SpillFileBytes, Limit: ten.MaxSpillBytes,
		}
	}
	return nil
}

// quotaHTTP maps a quota rejection to its HTTP status and v2 error code: the
// spill-byte cap is a disk condition (507 spill_quota), every other
// dimension a 429 insufficient_quota.
func quotaHTTP(err error) (int, string) {
	var qe *store.QuotaError
	if errors.As(err, &qe) && qe.Dimension == store.DimensionSpillBytes {
		return http.StatusInsufficientStorage, ErrCodeSpillQuota
	}
	return http.StatusTooManyRequests, ErrCodeQuota
}

// registrationHTTP maps a failed store registration to its HTTP status, v2
// error code, and Retry-After seconds (0 = no header). Resident pressure —
// budget exhausted with every evictable session pinned — is transient
// backpressure (503 + Retry-After), not a quota violation: the caller should
// retry once an export or what-if stream releases its pin.
func registrationHTTP(err error) (status int, code string, retryAfter int) {
	var pe *store.PressureError
	if errors.As(err, &pe) {
		return http.StatusServiceUnavailable, ErrCodeResidentPressure, 1
	}
	status, code = quotaHTTP(err)
	return status, code, 0
}

// failRegistration reports an addSession error in the v1 wire shape.
func (s *Server) failRegistration(w http.ResponseWriter, ten *Tenant, err error) {
	status, _, retry := registrationHTTP(err)
	if retry > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retry))
	} else {
		s.tc(ten.Name).quotaRejections.Add(1)
	}
	writeError(w, status, "%v", err)
}

// failRegistrationV2 reports an addSession error as a typed v2 envelope.
func (s *Server) failRegistrationV2(w http.ResponseWriter, ten *Tenant, err error) {
	status, code, retry := registrationHTTP(err)
	if retry > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retry))
	} else {
		s.tc(ten.Name).quotaRejections.Add(1)
	}
	writeV2Error(w, status, code, "%v", err)
}

// addSession registers an updater under a fresh session ID in the tenant's
// namespace; the store enforces the tenant quota atomically and its eviction
// budget. A non-empty deleted log (snapshot restore) comes with the model
// that already reflects it.
func (s *Server) addSession(ten *Tenant, kind string, ds priu.TrainingSet, upd priu.Updater, deleted []int, model *priu.Model) (*Session, error) {
	id := s.newSessionID(ten)
	sess := store.NewSession(id, kind, ds, upd, model, deleted)
	if err := s.st.Put(sess); err != nil {
		return nil, err
	}
	s.reqs[store.ShardIndex(id)].trains.Add(1)
	s.tc(ten.Name).trains.Add(1)
	return sess, nil
}

// datasetFromRequest builds the dense dataset for a JSON training request.
// The family name decides the task; sparse families use the v2 CSR shape.
func datasetFromRequest(family string, features [][]float64, labels []float64, classes int) (*dataset.Dataset, error) {
	n := len(features)
	if n == 0 {
		return nil, fmt.Errorf("empty feature matrix")
	}
	m := len(features[0])
	if m == 0 {
		return nil, fmt.Errorf("zero-width feature matrix")
	}
	if len(labels) != n {
		return nil, fmt.Errorf("%d labels for %d rows", len(labels), n)
	}
	x := make([]float64, 0, n*m)
	for i, row := range features {
		if len(row) != m {
			return nil, fmt.Errorf("row %d has %d features, want %d", i, len(row), m)
		}
		x = append(x, row...)
	}
	task, err := taskForFamily(family)
	if err != nil {
		return nil, err
	}
	switch task {
	case dataset.Regression:
		classes = 0
	case dataset.BinaryClassification:
		classes = 2
	}
	d := &dataset.Dataset{
		Name:    "api",
		Task:    task,
		Classes: classes,
		X:       mat.NewDenseData(n, m, x),
		Y:       labels,
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// taskForFamily resolves a family's label task from the priu registry, so
// externally registered families are servable without service changes.
func taskForFamily(family string) (dataset.Task, error) {
	f, ok := priu.Lookup(family)
	if !ok {
		return 0, fmt.Errorf("unknown kind %q", family)
	}
	if f.Sparse {
		return 0, fmt.Errorf("family %q trains on sparse input; POST /v2/sessions with a CSR body or restore a snapshot", family)
	}
	return f.Task, nil
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req DeleteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if req.SessionID == "" && len(req.Removed) == 0 && len(req.Batch) == 0 {
		writeError(w, http.StatusBadRequest, "empty delete request: set session_id/removed or batch")
		return
	}
	ten := tenantFor(r)
	if len(req.Batch) > 0 {
		if req.SessionID != "" || len(req.Removed) > 0 {
			writeError(w, http.StatusBadRequest, "set either session_id/removed or batch, not both")
			return
		}
		s.handleBatchDelete(w, r, ten, req.Batch)
		return
	}
	resp, status, err := s.deleteOne(r.Context(), ten, req.SessionID, req.Removed)
	if err != nil {
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, resp)
}

// handleBatchDelete executes the items concurrently on the shared worker
// pool. Items targeting the same session serialize on that session's mutex;
// everything else proceeds independently. Results keep request order.
func (s *Server) handleBatchDelete(w http.ResponseWriter, r *http.Request, ten *Tenant, batch []DeleteItem) {
	results := make([]BatchDeleteResult, len(batch))
	ctx := r.Context()
	par.For(len(batch), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			item := batch[i]
			results[i].SessionID = item.SessionID
			resp, _, err := s.deleteOne(ctx, ten, item.SessionID, item.Removed)
			if err != nil {
				results[i].Error = err.Error()
				continue
			}
			results[i].Result = &resp
		}
	})
	writeJSON(w, BatchDeleteResponse{Results: results})
}

// deleteOne applies one session's cumulative deletion and returns the
// response, or the HTTP status to report and the error. The wire session ID
// is resolved inside the caller's tenant namespace. If the session copy it
// fetched was evicted before the lock was won, it re-fetches — which, on a
// tiered store, restores the session from its spill file (deletion log
// replayed) — so an eviction mid-request never loses an honored deletion.
func (s *Server) deleteOne(ctx context.Context, ten *Tenant, sessionID string, removed []int) (DeleteResponse, int, error) {
	storeID := ten.storeID(sessionID)
	rq := &s.reqs[store.ShardIndex(storeID)]
	tq := s.tc(ten.Name)
	rq.deletes.Add(1)
	tq.deletes.Add(1)
	if !validWireID(sessionID) {
		rq.deleteErrors.Add(1)
		tq.deleteErrors.Add(1)
		return DeleteResponse{}, http.StatusNotFound, fmt.Errorf("unknown session %q", sessionID)
	}
	for {
		sess, ok := s.st.Get(storeID)
		if !ok {
			rq.deleteErrors.Add(1)
			tq.deleteErrors.Add(1)
			return DeleteResponse{}, http.StatusNotFound, fmt.Errorf("unknown session %q", sessionID)
		}
		if len(removed) == 0 {
			rq.deleteErrors.Add(1)
			tq.deleteErrors.Add(1)
			return DeleteResponse{}, http.StatusBadRequest, fmt.Errorf("empty removal set")
		}
		resp, err, retry := func() (DeleteResponse, error, bool) {
			sess.Mu.Lock()
			defer sess.Mu.Unlock()
			if sess.GoneLocked() {
				return DeleteResponse{}, nil, true
			}
			r, e := s.applyDeletionLocked(ctx, sess, removed)
			return r, e, false
		}()
		if retry {
			continue // evicted between Get and Lock; re-fetch (and restore)
		}
		if err != nil {
			rq.deleteErrors.Add(1)
			tq.deleteErrors.Add(1)
			status := http.StatusBadRequest
			if errors.Is(err, errInternal) {
				status = http.StatusInternalServerError
			}
			return DeleteResponse{}, status, err
		}
		tq.rowsDeleted.Add(int64(len(removed)))
		return resp, http.StatusOK, nil
	}
}

// errInternal marks server-side invariant failures (as opposed to invalid
// client input), which v1 reports as 500.
var errInternal = errors.New("internal error")

// applyDeletionLocked extends the session's cumulative removal log, runs the
// incremental update and swaps in the new model. Callers hold sess.Mu and
// have checked GoneLocked.
func (s *Server) applyDeletionLocked(ctx context.Context, sess *Session, removed []int) (DeleteResponse, error) {
	sess.Touch()
	// Deletions are cumulative within a session.
	all := append(append([]int(nil), sess.Deleted...), removed...)
	start := time.Now()
	_, span := obs.StartSpan(ctx, "update")
	updated, err := sess.Upd.Update(all)
	span.End()
	dt := time.Since(start)
	s.updateSeconds.Observe(dt.Seconds())
	if err != nil {
		return DeleteResponse{}, err
	}
	s.deletionRows.Add(int64(len(removed)))
	cmp, err := metrics.Compare(updated, sess.Model)
	if err != nil {
		// The updated model disagreeing in shape with the cached one is a
		// server-side invariant failure, not bad client input.
		return DeleteResponse{}, fmt.Errorf("%w: comparing models: %v", errInternal, err)
	}
	sess.Deleted = all
	sess.Model = updated
	sess.Updates++
	sess.LastUpdateSeconds = dt.Seconds()
	sess.MarkDirtyLocked()
	return DeleteResponse{
		SessionID:     store.LocalID(sess.ID),
		Parameters:    updated.Vec(),
		UpdateSeconds: dt.Seconds(),
		TotalDeleted:  len(all),
		CosineVsPrev:  cmp.Cosine,
	}, nil
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/model/")
	ten := tenantFor(r)
	var (
		sess *Session
		ok   bool
	)
	if validWireID(id) {
		sess, ok = s.st.Get(ten.storeID(id))
	}
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session %q", id)
		return
	}
	sess.Mu.Lock()
	defer sess.Mu.Unlock()
	writeJSON(w, ModelResponse{
		SessionID:    store.LocalID(sess.ID),
		Kind:         sess.Kind,
		Parameters:   sess.Model.Vec(),
		TotalDeleted: len(sess.Deleted),
	})
}

func (s *Server) handleSessions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	ten := tenantFor(r)
	type row struct {
		ID        string    `json:"id"`
		Kind      string    `json:"kind"`
		CreatedAt time.Time `json:"created_at"`
		Spilled   bool      `json:"spilled,omitempty"`
	}
	p, err := parsePageParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Listings are tenant-scoped (a caller sees only its own namespace) and
	// include spilled sessions, which are still servable: they restore on
	// touch.
	out := make([]row, 0)
	for _, si := range s.listSessions(ten) {
		out = append(out, row{ID: si.SessionID, Kind: si.Family, CreatedAt: si.CreatedAt, Spilled: si.Spilled})
	}
	if !p.paged {
		// The pre-pagination wire shape, unchanged for existing callers.
		writeJSON(w, out)
		return
	}
	lo, hi, next := pageWindow(len(out), func(i int) string { return out[i].ID }, p)
	writeJSON(w, struct {
		Sessions   []row  `json:"sessions"`
		NextCursor string `json:"next_cursor,omitempty"`
	}{Sessions: out[lo:hi], NextCursor: next})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	st := s.st.Stats()
	resp := StatsResponse{
		UptimeSeconds:     time.Since(s.start).Seconds(),
		Workers:           par.Workers(),
		Sessions:          st.Resident,
		Evictions:         st.BudgetEvictions,
		ExplicitDeletes:   st.ExplicitDeletes,
		ResidentBytes:     st.ResidentBytes,
		Spilled:           st.Spilled,
		SpilledBytes:      st.SpilledBytes,
		Spills:            st.Spills,
		Restores:          st.Restores,
		SpillDirBytes:     st.SpillDirBytes,
		SpillMaxBytes:     st.SpillMaxBytes,
		WriteBehindSpills: st.WriteBehindSpills,
		SpillQueueDepth:   st.SpillQueueDepth,
		SpillQueueFull:    st.SpillQueueFull,
		DiskEvictions:     st.DiskEvictions,
		GCRemovals:        st.GCRemovals,
		DeltaSpills:       st.DeltaSpills,
		Compactions:       st.Compactions,
		DeltaSegments:     st.DeltaSegments,
		StaleSpills:       st.StaleSpills,
		PendingTombstones: st.PendingTombstones,
		WhatIfs:           s.whatifs.Value(),
		WhatIfSets:        s.whatifSets.Value(),
		WhatIfCacheHits:   s.whatifCacheHits.Value(),
		BlobSessions:      st.BlobSessions,
		BlobBytes:         st.BlobBytes,
		BlobPuts:          st.BlobPuts,
		BlobGets:          st.BlobGets,
		BlobDeletes:       st.BlobDeletes,
		BlobErrors:        st.BlobErrors,
		BlobDemotions:     st.BlobDemotions,
	}
	if s.cluster != nil {
		ring := s.cluster.Ring()
		resp.Node = s.cluster.Self()
		resp.RingVersion = ring.Version()
		resp.FleetAlive = ring.Nodes()
		resp.FleetRedirects = s.fleetRedirects.Value()
		resp.FleetProxied = s.fleetProxied.Value()
		resp.FleetHandoffs = s.fleetHandoffs.Value()
		resp.FleetReleased = s.fleetReleased.Value()
	}
	ten := tenantFor(r)
	perShard := make([][]SessionStats, numShards)
	// Global counters are service-wide; the per-session rows are scoped to
	// the caller's tenant so one tenant cannot enumerate another's sessions.
	s.st.Range(func(sess *Session) bool {
		if store.TenantOf(sess.ID) != ten.Name {
			return true
		}
		sess.Mu.Lock()
		ss := SessionStats{
			SessionID:         store.LocalID(sess.ID),
			Kind:              sess.Kind,
			CreatedAt:         sess.CreatedAt,
			Updates:           sess.Updates,
			TotalDeleted:      len(sess.Deleted),
			LastUpdateSeconds: sess.LastUpdateSeconds,
		}
		sess.Mu.Unlock()
		i := store.ShardIndex(sess.ID)
		perShard[i] = append(perShard[i], ss)
		return true
	})
	for i := 0; i < numShards; i++ {
		rq := &s.reqs[i]
		ss := ShardStats{
			Shard:           i,
			Sessions:        st.Shards[i].Sessions,
			Trains:          rq.trains.Value(),
			Deletes:         rq.deletes.Value(),
			DeleteErrors:    rq.deleteErrors.Value(),
			Evictions:       st.Shards[i].BudgetEvictions,
			ExplicitDeletes: st.Shards[i].ExplicitDeletes,
			SessionStats:    perShard[i],
		}
		sort.Slice(ss.SessionStats, func(a, b int) bool {
			return sessionIDLess(ss.SessionStats[a].SessionID, ss.SessionStats[b].SessionID)
		})
		resp.Trains += ss.Trains
		resp.Deletes += ss.Deletes
		resp.DeleteErrors += ss.DeleteErrors
		resp.Shards = append(resp.Shards, ss)
	}
	writeJSON(w, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.st.Stats()
	resp := HealthResponse{
		Version:         priu.Version,
		UptimeSeconds:   time.Since(s.start).Seconds(),
		Workers:         par.Workers(),
		Shards:          numShards,
		Sessions:        st.Resident,
		ResidentBytes:   st.ResidentBytes,
		MaxSessions:     s.maxSessions,
		MaxBytes:        s.maxBytes,
		Spilled:         st.Spilled,
		SpilledBytes:    st.SpilledBytes,
		Restores:        st.Restores,
		SpillDirBytes:   st.SpillDirBytes,
		SpillMaxBytes:   st.SpillMaxBytes,
		SpillQueueDepth: st.SpillQueueDepth,
		DiskEvictions:   st.DiskEvictions,
		Tenants:         tenantsWithData(st),
		BlobSessions:    st.BlobSessions,
		BlobBytes:       st.BlobBytes,
	}
	if s.cluster != nil {
		ring := s.cluster.Ring()
		resp.Node = s.cluster.Self()
		resp.FleetAlive = len(ring.Nodes())
		resp.RingVersion = ring.Version()
	}
	writeJSON(w, resp)
}
