// Package service exposes PrIU as a versioned HTTP deletion service: a
// data-cleaning pipeline (the integration point the paper's introduction
// describes) trains and registers models, then issues deletion requests and
// receives updated parameters without retraining. Sessions hold a
// priu.Updater — the service never touches concrete engine types, so any
// registered family (including externally registered ones) is servable.
//
// The session store is hash-sharded: each shard owns an independent mutex and
// session map plus its own atomic request counters, so traffic on different
// sessions never contends on a global lock. An optional LRU eviction budget
// (max sessions / max resident provenance bytes) bounds store growth;
// evictions are reported in /v1/stats.
//
// Two API generations are mounted side by side:
//
//	v1 (stable, unchanged wire format)
//	  POST /v1/train     register data + hyperparameters, train with capture
//	  POST /v1/delete    incrementally remove samples (single session or batch)
//	  GET  /v1/model/ID  fetch a session's current parameters
//	  GET  /v1/sessions  list sessions
//	  GET  /v1/stats     per-shard and per-session counters
//
//	v2 (REST routing, typed {"error":{"code","message"}} envelopes, snapshots,
//	streaming deletions — see v2.go)
//	  POST   /v2/sessions                train, or restore from a snapshot
//	  GET    /v2/sessions/{id}           session metadata + parameters
//	  DELETE /v2/sessions/{id}           drop a session
//	  GET    /v2/sessions/{id}/snapshot  stream a self-contained snapshot
//	  POST   /v2/sessions/{id}/deletions NDJSON stream of removal batches
//
//	GET /healthz           load-balancer probe (version, uptime, workers)
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/mat"
	"repro/internal/metrics"
	"repro/internal/par"
	"repro/priu"
)

// Session is one registered model with its captured provenance.
type Session struct {
	ID        string
	Kind      string // priu family name ("linear", "logistic", ...)
	CreatedAt time.Time

	mu      sync.Mutex
	ds      priu.TrainingSet
	upd     priu.Updater
	model   *priu.Model // current model (after the latest deletion)
	deleted []int       // cumulative deletion log

	// footprint is the session's resident-memory charge (training data +
	// provenance), fixed at registration.
	footprint int64
	// lastUsed is a unix-nano timestamp of the latest access (LRU clock).
	lastUsed atomic.Int64

	// Counters (guarded by mu) surfaced by /v1/stats.
	updates           int64
	lastUpdateSeconds float64
}

// touch advances the session's LRU clock.
func (sess *Session) touch() { sess.lastUsed.Store(time.Now().UnixNano()) }

// numShards is the session-store shard count. Shard selection hashes the
// session ID, so concurrent requests to different sessions rarely share a
// lock; 16 shards keep contention negligible well past hundreds of
// concurrent streams while the per-shard memory overhead stays trivial.
const numShards = 16

// shard is one lock domain of the session store.
type shard struct {
	mu       sync.RWMutex
	sessions map[string]*Session

	// Request counters: lock-free so the hot paths never take the shard
	// lock just to bump a metric.
	trains       atomic.Int64
	deletes      atomic.Int64
	deleteErrors atomic.Int64
	evictions    atomic.Int64
}

// defaultMaxRemovalsPerBatch bounds one v2 deletion batch; oversize batches
// are rejected with a typed error instead of stalling the update pool.
const defaultMaxRemovalsPerBatch = 1 << 20

// Server is the HTTP deletion service. The zero value is not usable; call
// NewServer.
type Server struct {
	shards [numShards]shard
	nextID atomic.Int64
	start  time.Time

	// Eviction budgets (0 = unbounded) and accounting.
	maxSessions int
	maxBytes    int64
	curBytes    atomic.Int64

	// maxRemovals bounds one v2 deletion batch.
	maxRemovals int
}

// ServerOption configures NewServer.
type ServerOption func(*Server)

// WithMaxSessions bounds the number of resident sessions; the least recently
// used session is evicted when a registration exceeds the budget (0 =
// unbounded).
func WithMaxSessions(n int) ServerOption { return func(s *Server) { s.maxSessions = n } }

// WithMaxBytes bounds resident session memory (training data + provenance,
// as charged by priu.Updater.FootprintBytes); least recently used sessions
// are evicted when a registration exceeds the budget (0 = unbounded).
func WithMaxBytes(b int64) ServerOption { return func(s *Server) { s.maxBytes = b } }

// WithMaxRemovalsPerBatch bounds the size of one v2 deletion batch.
func WithMaxRemovalsPerBatch(n int) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.maxRemovals = n
		}
	}
}

// NewServer returns an empty deletion service.
func NewServer(opts ...ServerOption) *Server {
	s := &Server{start: time.Now(), maxRemovals: defaultMaxRemovalsPerBatch}
	for i := range s.shards {
		s.shards[i].sessions = make(map[string]*Session)
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// sessionIDLess orders generated "sess-N" IDs numerically (shorter numeric
// suffix first) so listings don't interleave sess-10 between sess-1 and
// sess-2 once the store passes nine sessions.
func sessionIDLess(a, b string) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	return a < b
}

// shardFor maps a session ID to its shard.
func (s *Server) shardFor(id string) *shard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(id))
	return &s.shards[h.Sum32()%numShards]
}

// TrainRequest registers a training job. Features is row-major n×m.
type TrainRequest struct {
	Kind       string      `json:"kind"` // linear | logistic | multinomial
	Features   [][]float64 `json:"features"`
	Labels     []float64   `json:"labels"`
	Classes    int         `json:"classes,omitempty"`
	Eta        float64     `json:"eta"`
	Lambda     float64     `json:"lambda"`
	BatchSize  int         `json:"batch_size"`
	Iterations int         `json:"iterations"`
	Seed       int64       `json:"seed"`
}

// TrainResponse reports the new session.
type TrainResponse struct {
	SessionID      string    `json:"session_id"`
	Parameters     []float64 `json:"parameters"`
	ProvenanceMB   float64   `json:"provenance_mb"`
	CaptureSeconds float64   `json:"capture_seconds"`
}

// DeleteItem is one session's removal set within a batched delete.
type DeleteItem struct {
	SessionID string `json:"session_id"`
	Removed   []int  `json:"removed"`
}

// DeleteRequest removes training samples. Either the single-session fields
// (SessionID + Removed) or Batch must be set, not both. Batch items for
// different sessions execute concurrently.
type DeleteRequest struct {
	SessionID string       `json:"session_id,omitempty"`
	Removed   []int        `json:"removed,omitempty"`
	Batch     []DeleteItem `json:"batch,omitempty"`
}

// DeleteResponse reports the incrementally updated model.
type DeleteResponse struct {
	SessionID     string    `json:"session_id"`
	Parameters    []float64 `json:"parameters"`
	UpdateSeconds float64   `json:"update_seconds"`
	TotalDeleted  int       `json:"total_deleted"`
	CosineVsPrev  float64   `json:"cosine_vs_previous"`
}

// BatchDeleteResult is one item's outcome within a batched delete: either the
// update result or the item's error.
type BatchDeleteResult struct {
	SessionID string          `json:"session_id"`
	Error     string          `json:"error,omitempty"`
	Result    *DeleteResponse `json:"result,omitempty"`
}

// BatchDeleteResponse reports all outcomes of a batched delete, in request
// order. Per-item failures do not fail the batch.
type BatchDeleteResponse struct {
	Results []BatchDeleteResult `json:"results"`
}

// ModelResponse reports a session's current model.
type ModelResponse struct {
	SessionID    string    `json:"session_id"`
	Kind         string    `json:"kind"`
	Parameters   []float64 `json:"parameters"`
	TotalDeleted int       `json:"total_deleted"`
}

// SessionStats is one session's counters within /v1/stats.
type SessionStats struct {
	SessionID         string    `json:"session_id"`
	Kind              string    `json:"kind"`
	CreatedAt         time.Time `json:"created_at"`
	Updates           int64     `json:"updates"`
	TotalDeleted      int       `json:"total_deleted"`
	LastUpdateSeconds float64   `json:"last_update_seconds"`
}

// ShardStats is one shard's counters within /v1/stats.
type ShardStats struct {
	Shard        int            `json:"shard"`
	Sessions     int            `json:"sessions"`
	Trains       int64          `json:"trains"`
	Deletes      int64          `json:"deletes"`
	DeleteErrors int64          `json:"delete_errors"`
	Evictions    int64          `json:"evictions"`
	SessionStats []SessionStats `json:"session_stats,omitempty"`
}

// StatsResponse is the /v1/stats payload.
type StatsResponse struct {
	UptimeSeconds float64      `json:"uptime_seconds"`
	Workers       int          `json:"workers"`
	Sessions      int          `json:"sessions"`
	Trains        int64        `json:"trains"`
	Deletes       int64        `json:"deletes"`
	DeleteErrors  int64        `json:"delete_errors"`
	Evictions     int64        `json:"evictions"`
	ResidentBytes int64        `json:"resident_bytes"`
	Shards        []ShardStats `json:"shards"`
}

// HealthResponse is the /healthz payload for load-balancer probes.
type HealthResponse struct {
	Version       string  `json:"version"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Workers       int     `json:"workers"`
	Shards        int     `json:"shards"`
	Sessions      int     `json:"sessions"`
	ResidentBytes int64   `json:"resident_bytes"`
	MaxSessions   int     `json:"max_sessions,omitempty"`
	MaxBytes      int64   `json:"max_bytes,omitempty"`
}

// Handler returns the service's HTTP routes: the unchanged v1 surface, the
// v2 REST surface, and the health probe.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/train", s.handleTrain)
	mux.HandleFunc("/v1/delete", s.handleDelete)
	mux.HandleFunc("/v1/model/", s.handleModel)
	mux.HandleFunc("/v1/sessions", s.handleSessions)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mountV2(mux)
	return mux
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleTrain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req TrainRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	d, err := datasetFromRequest(req.Kind, req.Features, req.Labels, req.Classes)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	cfg := priu.Config{
		Eta: req.Eta, Lambda: req.Lambda,
		BatchSize: req.BatchSize, Iterations: req.Iterations, Seed: req.Seed,
	}
	start := time.Now()
	upd, err := priu.TrainConfig(req.Kind, d, cfg)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sess := s.addSession(req.Kind, d, upd, nil, nil)
	writeJSON(w, TrainResponse{
		SessionID:      sess.ID,
		Parameters:     sess.model.Vec(),
		ProvenanceMB:   float64(upd.FootprintBytes()) / (1 << 20),
		CaptureSeconds: time.Since(start).Seconds(),
	})
}

// addSession registers an updater under a fresh session ID and enforces the
// eviction budget. A non-empty deleted log (snapshot restore) comes with the
// model that already reflects it.
func (s *Server) addSession(kind string, ds priu.TrainingSet, upd priu.Updater, deleted []int, model *priu.Model) *Session {
	if model == nil {
		model = upd.Model()
	}
	sess := &Session{
		ID:        fmt.Sprintf("sess-%d", s.nextID.Add(1)),
		Kind:      kind,
		CreatedAt: time.Now(),
		ds:        ds,
		upd:       upd,
		model:     model,
		deleted:   deleted,
		footprint: trainingSetBytes(ds) + upd.FootprintBytes(),
	}
	sess.touch()
	sh := s.shardFor(sess.ID)
	sh.mu.Lock()
	sh.sessions[sess.ID] = sess
	sh.mu.Unlock()
	sh.trains.Add(1)
	s.curBytes.Add(sess.footprint)
	s.enforceBudget(sess.ID)
	return sess
}

// trainingSetBytes charges a training set's resident memory for eviction
// accounting.
func trainingSetBytes(ds priu.TrainingSet) int64 {
	switch d := ds.(type) {
	case *dataset.Dataset:
		return int64(d.N())*int64(d.M())*8 + int64(d.N())*8
	case *dataset.SparseDataset:
		return d.X.FootprintBytes() + int64(d.N())*8
	default:
		return 0
	}
}

// sessionCount returns the number of resident sessions.
func (s *Server) sessionCount() int {
	total := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		total += len(sh.sessions)
		sh.mu.RUnlock()
	}
	return total
}

// enforceBudget evicts least-recently-used sessions until the store is back
// under the session-count and byte budgets. The session named keepID (the
// one that triggered enforcement) is never evicted, so a single oversized
// registration still lands.
func (s *Server) enforceBudget(keepID string) {
	if s.maxSessions <= 0 && s.maxBytes <= 0 {
		return
	}
	for {
		over := (s.maxSessions > 0 && s.sessionCount() > s.maxSessions) ||
			(s.maxBytes > 0 && s.curBytes.Load() > s.maxBytes)
		if !over {
			return
		}
		victim, vShard := s.lruSession(keepID)
		if victim == nil {
			return // nothing evictable left
		}
		vShard.mu.Lock()
		// Re-check under the lock: a concurrent evictor may have won.
		if _, still := vShard.sessions[victim.ID]; !still {
			vShard.mu.Unlock()
			continue
		}
		delete(vShard.sessions, victim.ID)
		vShard.mu.Unlock()
		vShard.evictions.Add(1)
		s.curBytes.Add(-victim.footprint)
	}
}

// lruSession scans every shard for the least recently used session other
// than keepID.
func (s *Server) lruSession(keepID string) (*Session, *shard) {
	var (
		victim *Session
		vShard *shard
		oldest int64
	)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, sess := range sh.sessions {
			if sess.ID == keepID {
				continue
			}
			if lu := sess.lastUsed.Load(); victim == nil || lu < oldest {
				victim, vShard, oldest = sess, sh, lu
			}
		}
		sh.mu.RUnlock()
	}
	return victim, vShard
}

// removeSession drops a session by ID (v2 DELETE), returning whether it
// existed.
func (s *Server) removeSession(id string) bool {
	sh := s.shardFor(id)
	sh.mu.Lock()
	sess, ok := sh.sessions[id]
	if ok {
		delete(sh.sessions, id)
	}
	sh.mu.Unlock()
	if ok {
		s.curBytes.Add(-sess.footprint)
	}
	return ok
}

// datasetFromRequest builds the dense dataset for a JSON training request.
// The family name decides the task; the sparse family needs snapshot restore.
func datasetFromRequest(family string, features [][]float64, labels []float64, classes int) (*dataset.Dataset, error) {
	n := len(features)
	if n == 0 {
		return nil, fmt.Errorf("empty feature matrix")
	}
	m := len(features[0])
	if m == 0 {
		return nil, fmt.Errorf("zero-width feature matrix")
	}
	if len(labels) != n {
		return nil, fmt.Errorf("%d labels for %d rows", len(labels), n)
	}
	x := make([]float64, 0, n*m)
	for i, row := range features {
		if len(row) != m {
			return nil, fmt.Errorf("row %d has %d features, want %d", i, len(row), m)
		}
		x = append(x, row...)
	}
	task, err := taskForFamily(family)
	if err != nil {
		return nil, err
	}
	switch task {
	case dataset.Regression:
		classes = 0
	case dataset.BinaryClassification:
		classes = 2
	}
	d := &dataset.Dataset{
		Name:    "api",
		Task:    task,
		Classes: classes,
		X:       mat.NewDenseData(n, m, x),
		Y:       labels,
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// taskForFamily resolves a family's label task from the priu registry, so
// externally registered families are servable without service changes.
func taskForFamily(family string) (dataset.Task, error) {
	f, ok := priu.Lookup(family)
	if !ok {
		return 0, fmt.Errorf("unknown kind %q", family)
	}
	if f.Sparse {
		return 0, fmt.Errorf("family %q trains on sparse input; create its sessions by restoring a snapshot", family)
	}
	return f.Task, nil
}

func (s *Server) session(id string) (*Session, bool) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	sess, ok := sh.sessions[id]
	return sess, ok
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req DeleteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if req.SessionID == "" && len(req.Removed) == 0 && len(req.Batch) == 0 {
		writeError(w, http.StatusBadRequest, "empty delete request: set session_id/removed or batch")
		return
	}
	if len(req.Batch) > 0 {
		if req.SessionID != "" || len(req.Removed) > 0 {
			writeError(w, http.StatusBadRequest, "set either session_id/removed or batch, not both")
			return
		}
		s.handleBatchDelete(w, req.Batch)
		return
	}
	resp, status, err := s.deleteOne(req.SessionID, req.Removed)
	if err != nil {
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, resp)
}

// handleBatchDelete executes the items concurrently on the shared worker
// pool. Items targeting the same session serialize on that session's mutex;
// everything else proceeds independently. Results keep request order.
func (s *Server) handleBatchDelete(w http.ResponseWriter, batch []DeleteItem) {
	results := make([]BatchDeleteResult, len(batch))
	par.For(len(batch), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			item := batch[i]
			results[i].SessionID = item.SessionID
			resp, _, err := s.deleteOne(item.SessionID, item.Removed)
			if err != nil {
				results[i].Error = err.Error()
				continue
			}
			results[i].Result = &resp
		}
	})
	writeJSON(w, BatchDeleteResponse{Results: results})
}

// deleteOne applies one session's cumulative deletion and returns the
// response, or the HTTP status to report and the error.
func (s *Server) deleteOne(sessionID string, removed []int) (DeleteResponse, int, error) {
	sh := s.shardFor(sessionID)
	sh.deletes.Add(1)
	sess, ok := s.session(sessionID)
	if !ok {
		sh.deleteErrors.Add(1)
		return DeleteResponse{}, http.StatusNotFound, fmt.Errorf("unknown session %q", sessionID)
	}
	if len(removed) == 0 {
		sh.deleteErrors.Add(1)
		return DeleteResponse{}, http.StatusBadRequest, fmt.Errorf("empty removal set")
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	resp, err := sess.applyDeletion(removed)
	if err != nil {
		sh.deleteErrors.Add(1)
		status := http.StatusBadRequest
		if errors.Is(err, errInternal) {
			status = http.StatusInternalServerError
		}
		return DeleteResponse{}, status, err
	}
	return resp, http.StatusOK, nil
}

// errInternal marks server-side invariant failures (as opposed to invalid
// client input), which v1 reports as 500.
var errInternal = errors.New("internal error")

// applyDeletion extends the session's cumulative removal log, runs the
// incremental update and swaps in the new model. Callers hold sess.mu.
func (sess *Session) applyDeletion(removed []int) (DeleteResponse, error) {
	sess.touch()
	// Deletions are cumulative within a session.
	all := append(append([]int(nil), sess.deleted...), removed...)
	start := time.Now()
	updated, err := sess.upd.Update(all)
	if err != nil {
		return DeleteResponse{}, err
	}
	dt := time.Since(start)
	cmp, err := metrics.Compare(updated, sess.model)
	if err != nil {
		// The updated model disagreeing in shape with the cached one is a
		// server-side invariant failure, not bad client input.
		return DeleteResponse{}, fmt.Errorf("%w: comparing models: %v", errInternal, err)
	}
	sess.deleted = all
	sess.model = updated
	sess.updates++
	sess.lastUpdateSeconds = dt.Seconds()
	return DeleteResponse{
		SessionID:     sess.ID,
		Parameters:    updated.Vec(),
		UpdateSeconds: dt.Seconds(),
		TotalDeleted:  len(all),
		CosineVsPrev:  cmp.Cosine,
	}, nil
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/model/")
	sess, ok := s.session(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session %q", id)
		return
	}
	sess.touch()
	sess.mu.Lock()
	defer sess.mu.Unlock()
	writeJSON(w, ModelResponse{
		SessionID:    sess.ID,
		Kind:         sess.Kind,
		Parameters:   sess.model.Vec(),
		TotalDeleted: len(sess.deleted),
	})
}

func (s *Server) handleSessions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	type row struct {
		ID        string    `json:"id"`
		Kind      string    `json:"kind"`
		CreatedAt time.Time `json:"created_at"`
	}
	var out []row
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, sess := range sh.sessions {
			out = append(out, row{ID: sess.ID, Kind: sess.Kind, CreatedAt: sess.CreatedAt})
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return sessionIDLess(out[i].ID, out[j].ID) })
	if out == nil {
		out = []row{}
	}
	writeJSON(w, out)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	resp := StatsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Workers:       par.Workers(),
		ResidentBytes: s.curBytes.Load(),
	}
	for i := range s.shards {
		sh := &s.shards[i]
		ss := ShardStats{
			Shard:        i,
			Trains:       sh.trains.Load(),
			Deletes:      sh.deletes.Load(),
			DeleteErrors: sh.deleteErrors.Load(),
			Evictions:    sh.evictions.Load(),
		}
		sh.mu.RLock()
		ss.Sessions = len(sh.sessions)
		sessions := make([]*Session, 0, len(sh.sessions))
		for _, sess := range sh.sessions {
			sessions = append(sessions, sess)
		}
		sh.mu.RUnlock()
		for _, sess := range sessions {
			sess.mu.Lock()
			ss.SessionStats = append(ss.SessionStats, SessionStats{
				SessionID:         sess.ID,
				Kind:              sess.Kind,
				CreatedAt:         sess.CreatedAt,
				Updates:           sess.updates,
				TotalDeleted:      len(sess.deleted),
				LastUpdateSeconds: sess.lastUpdateSeconds,
			})
			sess.mu.Unlock()
		}
		sort.Slice(ss.SessionStats, func(a, b int) bool {
			return sessionIDLess(ss.SessionStats[a].SessionID, ss.SessionStats[b].SessionID)
		})
		resp.Sessions += ss.Sessions
		resp.Trains += ss.Trains
		resp.Deletes += ss.Deletes
		resp.DeleteErrors += ss.DeleteErrors
		resp.Evictions += ss.Evictions
		resp.Shards = append(resp.Shards, ss)
	}
	writeJSON(w, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, HealthResponse{
		Version:       priu.Version,
		UptimeSeconds: time.Since(s.start).Seconds(),
		Workers:       par.Workers(),
		Shards:        numShards,
		Sessions:      s.sessionCount(),
		ResidentBytes: s.curBytes.Load(),
		MaxSessions:   s.maxSessions,
		MaxBytes:      s.maxBytes,
	})
}
