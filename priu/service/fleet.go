package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/http/httputil"
	"net/url"
	"strings"
	"sync"

	"repro/priu/cluster"
	"repro/priu/obs"
	"repro/priu/store"
)

// The fleet layer: N priuserve replicas share a blob spill tier
// (store.WithBlobStore) and agree on session placement through rendezvous
// hashing over (tenant-namespaced) session IDs. Each replica serves the
// sessions it owns and routes everything else to the owner — a 307 redirect
// for body-less requests, a transparent streaming proxy for the NDJSON
// deletion and what-if streams (whose piped request bodies cannot be
// replayed through a redirect), and a scatter-gather split for v1 batch
// deletes that mix owners. Session IDs minted by a fleet member carry a
// node-derived suffix so concurrently-creating replicas never collide, and a
// membership change triggers a handoff: sessions this node no longer owns are
// certified into the blob tier and forgotten locally, for the new owner to
// restore lazily on first touch.

// fleetHopHeader marks a request already forwarded once by a fleet member.
// The receiver serves it locally no matter what its own ring says, so two
// nodes that briefly disagree on the alive set degrade to one extra hop
// instead of a redirect loop.
const fleetHopHeader = "X-Priu-Fleet-Hop"

// WithCluster joins the server to a replica fleet: requests for sessions
// owned by other members are routed to them, session IDs are minted
// fleet-unique, and membership changes hand non-owned sessions off through
// the shared blob tier. The store should be a tiered store built with
// store.WithBlobStore so any replica can restore any session.
func WithCluster(m *cluster.Membership) ServerOption {
	return func(s *Server) { s.cluster = m }
}

// nodeSuffix derives the 4-hex-digit session-ID suffix from a node's
// advertised URL, so IDs minted by different replicas never collide even
// when their counters agree.
func nodeSuffix(addr string) string {
	h := fnv.New32a()
	h.Write([]byte(addr))
	return fmt.Sprintf("%04x", h.Sum32()&0xffff)
}

// newSessionID mints the storage ID for a new session. A fleet member loops
// until it draws an ID it owns, so a session is always created on its owner
// and no cross-node create forwarding is needed; with N replicas the loop
// terminates in N expected draws.
func (s *Server) newSessionID(ten *Tenant) string {
	if s.cluster == nil {
		return ten.storeID(fmt.Sprintf("sess-%d", s.nextID.Add(1)))
	}
	var id string
	for i := 0; i < 4096; i++ {
		id = ten.storeID(fmt.Sprintf("sess-%d-%s", s.nextID.Add(1), s.nodeSuffix))
		if _, self := s.cluster.Owner(id); self {
			return id
		}
	}
	// 4096 consecutive foreign draws cannot happen on a healthy ring; keep
	// the last ID and serve it locally — the next handoff migrates it.
	return id
}

// fleetSessionRoute extracts the wire session ID a request addresses, and
// whether the route streams its request body (and so must be proxied rather
// than redirected). Routes that address no single session return "".
func fleetSessionRoute(r *http.Request) (wireID string, stream bool) {
	if rest, ok := strings.CutPrefix(r.URL.Path, "/v2/sessions/"); ok {
		id, sub, _ := strings.Cut(rest, "/")
		return id, sub == "deletions" || sub == "whatif"
	}
	if rest, ok := strings.CutPrefix(r.URL.Path, "/v1/model/"); ok {
		return rest, false
	}
	return "", false
}

// withFleet wraps the route mux with ownership routing. It runs inside the
// auth middleware (tenant resolution decides the storage ID being placed)
// and outside the mux (routing must happen before a local handler touches
// the store, or a read-through would adopt a session this node doesn't own).
func (s *Server) withFleet(next http.Handler) http.Handler {
	if s.cluster == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(fleetHopHeader) != "" {
			next.ServeHTTP(w, r) // single-hop guard: never forward twice
			return
		}
		wireID, stream := fleetSessionRoute(r)
		if wireID == "" {
			if r.URL.Path == "/v1/delete" && r.Method == http.MethodPost {
				s.fleetV1Delete(w, r, next)
				return
			}
			// Creation, listings, stats, meta, health: always local.
			next.ServeHTTP(w, r)
			return
		}
		owner, self := s.cluster.Owner(tenantFor(r).storeID(wireID))
		if self {
			next.ServeHTTP(w, r)
			return
		}
		if stream {
			s.proxyTo(w, r, owner)
			return
		}
		// Body-less (or replayable) request: hand the client the owner's
		// address and let it re-issue. Go clients follow 307 transparently.
		s.fleetRedirects.Add(1)
		w.Header().Set("Location", owner+r.URL.RequestURI())
		w.WriteHeader(http.StatusTemporaryRedirect)
	})
}

// proxyTo streams a request to the owning peer and its response back,
// flushing every write so NDJSON result lines reach the client as the owner
// emits them. A transport-level failure demotes the peer immediately
// (failover does not wait for the next probe) and reports a typed 502.
func (s *Server) proxyTo(w http.ResponseWriter, r *http.Request, owner string) {
	target, err := url.Parse(owner)
	if err != nil {
		writeV2Error(w, http.StatusBadGateway, ErrCodePeerUnavailable,
			"session owner %q is not a valid peer URL: %v", owner, err)
		return
	}
	s.fleetProxied.Add(1)
	// The deletions stream is full-duplex: the owner answers each batch
	// while the client is still streaming the next, so the inbound side
	// must allow concurrent body reads and response writes too.
	_ = http.NewResponseController(w).EnableFullDuplex()
	rp := &httputil.ReverseProxy{
		Rewrite: func(pr *httputil.ProxyRequest) {
			pr.SetURL(target)
			pr.Out.Header.Set(fleetHopHeader, s.cluster.Self())
			// The trace ID minted by withObs rides on the inbound headers, so
			// the owner's span tree lands under the same X-Priu-Trace ID.
		},
		ModifyResponse: func(resp *http.Response) error {
			// withObs already put the trace ID on the client response; drop the
			// peer's echo so the header is not duplicated.
			resp.Header.Del(obs.TraceHeader)
			return nil
		},
		FlushInterval: -1,
		ErrorHandler: func(w http.ResponseWriter, r *http.Request, err error) {
			s.cluster.ReportFailure(owner)
			writeV2Error(w, http.StatusBadGateway, ErrCodePeerUnavailable,
				"forwarding to session owner %s: %v", owner, err)
		},
	}
	rp.ServeHTTP(w, r)
}

// fleetV1Delete routes POST /v1/delete, whose body (not the path) names the
// target sessions. Single-session requests go to their owner whole; batch
// requests are split per owner and the per-item results merged back in
// request order, so one request may fan out across the fleet. Item failures
// (including an unreachable owner) stay per-item, as in the local batch path.
func (s *Server) fleetV1Delete(w http.ResponseWriter, r *http.Request, next http.Handler) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<28))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading request: %v", err)
		return
	}
	var req DeleteRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	ten := tenantFor(r)
	if len(req.Batch) == 0 {
		if req.SessionID != "" {
			if owner, self := s.cluster.Owner(ten.storeID(req.SessionID)); !self {
				s.forwardV1Delete(w, r, owner, body)
				return
			}
		}
		r.Body = io.NopCloser(bytes.NewReader(body))
		next.ServeHTTP(w, r)
		return
	}
	if req.SessionID != "" || len(req.Removed) > 0 {
		writeError(w, http.StatusBadRequest, "set either session_id/removed or batch, not both")
		return
	}
	// Scatter: group item indices by owning node ("" = this one).
	groups := map[string][]int{}
	for i, item := range req.Batch {
		owner, self := s.cluster.Owner(ten.storeID(item.SessionID))
		if self {
			owner = ""
		}
		groups[owner] = append(groups[owner], i)
	}
	results := make([]BatchDeleteResult, len(req.Batch))
	var wg sync.WaitGroup
	for owner, idxs := range groups {
		if owner == "" {
			continue
		}
		wg.Add(1)
		go func(owner string, idxs []int) {
			defer wg.Done()
			sub := make([]DeleteItem, len(idxs))
			for j, i := range idxs {
				sub[j] = req.Batch[i]
			}
			part, err := s.peerV1Delete(r, owner, DeleteRequest{Batch: sub})
			for j, i := range idxs {
				switch {
				case err != nil:
					s.cluster.ReportFailure(owner)
					results[i] = BatchDeleteResult{
						SessionID: req.Batch[i].SessionID,
						Error:     fmt.Sprintf("session owner %s unavailable: %v", owner, err),
					}
				case j < len(part):
					results[i] = part[j]
				default:
					results[i] = BatchDeleteResult{
						SessionID: req.Batch[i].SessionID,
						Error:     fmt.Sprintf("session owner %s returned a short batch response", owner),
					}
				}
			}
		}(owner, idxs)
	}
	if idxs := groups[""]; len(idxs) > 0 {
		for _, i := range idxs {
			item := req.Batch[i]
			results[i].SessionID = item.SessionID
			resp, _, err := s.deleteOne(r.Context(), ten, item.SessionID, item.Removed)
			if err != nil {
				results[i].Error = err.Error()
				continue
			}
			results[i].Result = &resp
		}
	}
	wg.Wait()
	writeJSON(w, BatchDeleteResponse{Results: results})
}

// forwardV1Delete re-issues a whole single-session /v1/delete at the owner
// and copies the response back verbatim.
func (s *Server) forwardV1Delete(w http.ResponseWriter, r *http.Request, owner string, body []byte) {
	s.fleetProxied.Add(1)
	resp, err := s.peerDo(r, owner, body)
	if err != nil {
		s.cluster.ReportFailure(owner)
		writeError(w, http.StatusBadGateway, "forwarding to session owner %s: %v", owner, err)
		return
	}
	defer resp.Body.Close()
	w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// peerV1Delete executes a /v1/delete sub-batch at a peer and decodes its
// per-item results.
func (s *Server) peerV1Delete(r *http.Request, owner string, req DeleteRequest) ([]BatchDeleteResult, error) {
	buf, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	s.fleetProxied.Add(1)
	resp, err := s.peerDo(r, owner, buf)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("peer answered %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var out BatchDeleteResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out.Results, nil
}

// peerDo posts a JSON /v1/delete body to a peer, carrying the caller's
// credentials and the single-hop guard.
func (s *Server) peerDo(r *http.Request, owner string, body []byte) (*http.Response, error) {
	freq, err := http.NewRequestWithContext(r.Context(), http.MethodPost, owner+"/v1/delete", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	freq.Header.Set("Content-Type", "application/json")
	freq.Header.Set(fleetHopHeader, s.cluster.Self())
	if a := r.Header.Get("Authorization"); a != "" {
		freq.Header.Set("Authorization", a)
	}
	if id := r.Header.Get(obs.TraceHeader); id != "" {
		freq.Header.Set(obs.TraceHeader, id) // scatter-gather legs share the trace
	}
	return http.DefaultClient.Do(freq)
}

// handoff reacts to a membership change: locally-held sessions whose owner
// is now another node are certified into the shared blob tier and forgotten
// here, so the new owner's first touch restores them (deletion log intact).
// One release runs at a time; a change arriving mid-release queues exactly
// one re-run, so the final ring always gets a pass.
func (s *Server) handoff() {
	tb, ok := s.st.(*store.Tiered)
	if !ok || s.cluster == nil {
		return
	}
	if !s.handoffActive.CompareAndSwap(false, true) {
		s.handoffRerun.Store(true)
		return
	}
	go func() {
		defer s.handoffActive.Store(false)
		for {
			s.fleetHandoffs.Add(1)
			n, err := tb.ReleaseUnowned(func(id string) bool {
				_, self := s.cluster.Owner(id)
				return self
			})
			s.fleetReleased.Add(int64(n))
			// A per-session release failure keeps that session local and
			// served here until the next membership change retries; the
			// error is visible as blob_errors in /v1/stats.
			_ = err
			if !s.handoffRerun.CompareAndSwap(true, false) {
				return
			}
		}
	}()
}
