package service

import (
	"context"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"repro/priu/store"
)

// Multi-tenant authentication: callers present an API key as
// "Authorization: Bearer <key>"; the keyring resolves it to a Tenant, which
// the middleware threads through the request context. Every session a tenant
// creates lives in its own store namespace (store IDs are "tenant/sess-N"),
// so tenants cannot see, list, delete or snapshot each other's sessions, and
// the tenant's quota (max sessions / bytes) and deletion-stream rate limit
// ride on the same record. The key file is JSON and hot-reloadable (SIGHUP
// in cmd/priuserve), and key comparison is constant-time over SHA-256
// digests.

// AuthMode selects how strictly the service requires API keys.
type AuthMode int

const (
	// AuthOff ignores Authorization headers entirely: every caller is the
	// anonymous tenant. The pre-tenant behavior.
	AuthOff AuthMode = iota
	// AuthOptional resolves presented keys to tenants and rejects unknown
	// keys, but callers without a key proceed as the anonymous tenant.
	AuthOptional
	// AuthRequired rejects every request without a valid key (401), on /v1
	// and /v2 alike. /healthz stays open for load-balancer probes.
	AuthRequired
)

// ParseAuthMode maps the -auth flag value to an AuthMode.
func ParseAuthMode(s string) (AuthMode, error) {
	switch s {
	case "off":
		return AuthOff, nil
	case "", "optional":
		return AuthOptional, nil
	case "required":
		return AuthRequired, nil
	default:
		return 0, fmt.Errorf("unknown auth mode %q (off|optional|required)", s)
	}
}

// TenantConfig is one tenant's record in the -auth-keys file:
//
//	{"tenants": [{"name": "acme", "key": "ak_...", "max_sessions": 100,
//	              "max_bytes": 1073741824, "deletion_rows_per_sec": 1000,
//	              "burst": 2000}]}
//
// Zero-valued limits are unlimited. Burst defaults to one second's worth of
// rows (at least 1) when a rate is set.
type TenantConfig struct {
	Name string `json:"name"`
	// Key is the plaintext API key. Prefer KeySHA256: plaintext entries
	// still resolve but are warned about at load, since anyone who reads
	// the key file can impersonate the tenant.
	Key string `json:"key,omitempty"`
	// KeySHA256 is the at-rest form: the lowercase hex SHA-256 of the API
	// key (64 characters). Exactly one of Key and KeySHA256 must be set.
	KeySHA256   string `json:"key_sha256,omitempty"`
	MaxSessions int    `json:"max_sessions,omitempty"`
	MaxBytes    int64  `json:"max_bytes,omitempty"`
	// MaxSpillBytes caps the tenant's spill-file bytes on disk: spills over
	// the cap are rejected (their eviction drops the session) and a tenant
	// at the cap gets 507 spill_quota on new registrations.
	MaxSpillBytes      int64   `json:"max_spill_bytes,omitempty"`
	DeletionRowsPerSec float64 `json:"deletion_rows_per_sec,omitempty"`
	Burst              float64 `json:"burst,omitempty"`
}

// Tenant is one resolved API-key principal. The zero value is the anonymous
// tenant: empty name, no quota, no rate limit.
type Tenant struct {
	Name               string
	MaxSessions        int
	MaxBytes           int64
	MaxSpillBytes      int64
	DeletionRowsPerSec float64
	Burst              float64

	keyHash [sha256.Size]byte
	bucket  *tokenBucket // nil = unlimited
}

// anonTenant is the principal of unauthenticated callers (AuthOff/AuthOptional).
var anonTenant = &Tenant{}

// Authenticated reports whether the tenant was resolved from an API key.
func (t *Tenant) Authenticated() bool { return t.Name != "" }

// storeID maps a wire session ID into the tenant's storage namespace.
func (t *Tenant) storeID(wireID string) string {
	if t.Name == "" {
		return wireID
	}
	return t.Name + "/" + wireID
}

// takeRows charges n deletion rows against the tenant's token bucket. When
// the bucket lacks the tokens it reports how long until the batch would fit
// (and charges nothing).
func (t *Tenant) takeRows(n int) (time.Duration, bool) {
	if t.bucket == nil {
		return 0, true
	}
	return t.bucket.take(float64(n))
}

// streamWait reports how long until one deletion row would be admitted,
// without charging anything — the stream-open probe.
func (t *Tenant) streamWait() time.Duration {
	if t.bucket == nil {
		return 0
	}
	return t.bucket.peek(1)
}

// tokenBucket is a standard refill-on-demand token bucket.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time
}

func newTokenBucket(rate, burst float64) *tokenBucket {
	if burst <= 0 {
		burst = rate
	}
	if burst < 1 {
		burst = 1
	}
	return &tokenBucket{rate: rate, burst: burst, tokens: burst, last: time.Now()}
}

// refillLocked advances the bucket to now. Callers hold mu.
func (b *tokenBucket) refillLocked(now time.Time) {
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
}

// take removes n tokens if available; otherwise it charges nothing and
// reports how long until n tokens will have accumulated. A request larger
// than the bucket can never pass: the caller distinguishes that case via
// Capacity.
func (b *tokenBucket) take(n float64) (time.Duration, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(time.Now())
	if n <= b.tokens {
		b.tokens -= n
		return 0, true
	}
	return time.Duration((n - b.tokens) / b.rate * float64(time.Second)), false
}

// peek reports how long until n tokens are available, charging nothing.
func (b *tokenBucket) peek(n float64) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(time.Now())
	if n <= b.tokens {
		return 0
	}
	return time.Duration((n - b.tokens) / b.rate * float64(time.Second))
}

// Capacity returns the bucket size of the tenant's deletion-row limiter (0 =
// unlimited) — the largest batch that can ever be admitted at once.
func (t *Tenant) Capacity() float64 {
	if t.bucket == nil {
		return 0
	}
	return t.bucket.burst
}

// Keyring resolves API keys to tenants. It is safe for concurrent use and
// hot-reloadable: Reload re-reads the file it was loaded from, and tenants
// whose rate configuration is unchanged keep their live token buckets.
type Keyring struct {
	path string

	mu      sync.RWMutex
	tenants []*Tenant
}

// LoadKeyring reads and validates a tenant key file.
func LoadKeyring(path string) (*Keyring, error) {
	k := &Keyring{path: path}
	if err := k.Reload(); err != nil {
		return nil, err
	}
	return k, nil
}

// Reload re-reads the key file. On any error the previous keyring state is
// kept, so a bad edit plus SIGHUP cannot lock every tenant out.
func (k *Keyring) Reload() error {
	raw, err := os.ReadFile(k.path)
	if err != nil {
		return fmt.Errorf("service: reading key file: %w", err)
	}
	var file struct {
		Tenants []TenantConfig `json:"tenants"`
	}
	if err := json.Unmarshal(raw, &file); err != nil {
		return fmt.Errorf("service: parsing key file %s: %w", k.path, err)
	}
	names := map[string]bool{}
	hashes := map[[sha256.Size]byte]bool{}
	tenants := make([]*Tenant, 0, len(file.Tenants))
	var plaintext []string
	for i, tc := range file.Tenants {
		if tc.Name == "" {
			return fmt.Errorf("service: key file tenant %d: name is required", i)
		}
		if strings.ContainsAny(tc.Name, "/ \t\n") {
			return fmt.Errorf("service: tenant name %q may not contain '/' or whitespace", tc.Name)
		}
		if names[tc.Name] {
			return fmt.Errorf("service: tenant %q appears twice in the key file", tc.Name)
		}
		names[tc.Name] = true
		var h [sha256.Size]byte
		switch {
		case tc.Key != "" && tc.KeySHA256 != "":
			return fmt.Errorf("service: tenant %q sets both key and key_sha256; pick one", tc.Name)
		case tc.KeySHA256 != "":
			raw, err := hex.DecodeString(strings.ToLower(tc.KeySHA256))
			if err != nil || len(raw) != sha256.Size {
				return fmt.Errorf("service: tenant %q: key_sha256 must be 64 hex characters (the SHA-256 of the key)", tc.Name)
			}
			copy(h[:], raw)
		case tc.Key != "":
			h = sha256.Sum256([]byte(tc.Key))
			plaintext = append(plaintext, tc.Name)
		default:
			return fmt.Errorf("service: tenant %q: key or key_sha256 is required", tc.Name)
		}
		if hashes[h] {
			return fmt.Errorf("service: tenant %q reuses another tenant's key", tc.Name)
		}
		hashes[h] = true
		if tc.MaxSessions < 0 || tc.MaxBytes < 0 || tc.MaxSpillBytes < 0 || tc.DeletionRowsPerSec < 0 || tc.Burst < 0 {
			return fmt.Errorf("service: tenant %q has negative limits", tc.Name)
		}
		t := &Tenant{
			Name:               tc.Name,
			MaxSessions:        tc.MaxSessions,
			MaxBytes:           tc.MaxBytes,
			MaxSpillBytes:      tc.MaxSpillBytes,
			DeletionRowsPerSec: tc.DeletionRowsPerSec,
			Burst:              tc.Burst,
			keyHash:            h,
		}
		if t.DeletionRowsPerSec > 0 {
			t.bucket = newTokenBucket(t.DeletionRowsPerSec, t.Burst)
		}
		tenants = append(tenants, t)
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	// Keep live bucket state across reloads for tenants whose rate config is
	// unchanged, so a SIGHUP cannot be used to reset a drained bucket.
	for _, old := range k.tenants {
		if old.bucket == nil {
			continue
		}
		for _, t := range tenants {
			if t.Name == old.Name && t.DeletionRowsPerSec == old.DeletionRowsPerSec && t.Burst == old.Burst {
				t.bucket = old.bucket
			}
		}
	}
	k.tenants = tenants
	// Resolution only ever compares digests, so plaintext entries buy
	// nothing but exposure; nudge operators toward the hashed form.
	for _, name := range plaintext {
		log.Printf("service: tenant %q stores a plaintext api key in %s; replace \"key\" with \"key_sha256\" (hex SHA-256 of the key)", name, k.path)
	}
	return nil
}

// Resolve maps a presented API key to its tenant. Comparison is constant
// time per entry over SHA-256 digests, and every entry is scanned even after
// a match.
func (k *Keyring) Resolve(key string) (*Tenant, bool) {
	h := sha256.Sum256([]byte(key))
	k.mu.RLock()
	defer k.mu.RUnlock()
	var found *Tenant
	for _, t := range k.tenants {
		if subtle.ConstantTimeCompare(h[:], t.keyHash[:]) == 1 {
			found = t
		}
	}
	return found, found != nil
}

// Len returns the number of registered tenants.
func (k *Keyring) Len() int {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return len(k.tenants)
}

// Limits adapts the keyring to the store's per-tenant quota hook. Tenants
// removed from the key file keep their sessions but fall back to unlimited
// (they can no longer authenticate to create more anyway).
func (k *Keyring) Limits(tenant string) store.TenantLimits {
	k.mu.RLock()
	defer k.mu.RUnlock()
	for _, t := range k.tenants {
		if t.Name == tenant {
			return store.TenantLimits{
				MaxSessions:   t.MaxSessions,
				MaxBytes:      t.MaxBytes,
				MaxSpillBytes: t.MaxSpillBytes,
			}
		}
	}
	return store.TenantLimits{}
}

// tenantCtxKey keys the resolved tenant in the request context.
type tenantCtxKey struct{}

// tenantFor returns the request's resolved tenant (never nil).
func tenantFor(r *http.Request) *Tenant {
	if t, ok := r.Context().Value(tenantCtxKey{}).(*Tenant); ok {
		return t
	}
	return anonTenant
}

// bearerKey extracts the Authorization: Bearer credential.
func bearerKey(r *http.Request) (string, bool) {
	h := r.Header.Get("Authorization")
	if h == "" {
		return "", false
	}
	const prefix = "Bearer "
	if len(h) <= len(prefix) || !strings.EqualFold(h[:len(prefix)], prefix) {
		return "", false
	}
	return h[len(prefix):], true
}

// writeUnauthorized reports a 401 in the API generation's native error shape:
// a typed envelope on /v2, the flat v1 string otherwise.
func writeUnauthorized(w http.ResponseWriter, r *http.Request, format string, args ...any) {
	w.Header().Set("WWW-Authenticate", `Bearer realm="priu"`)
	if strings.HasPrefix(r.URL.Path, "/v2/") {
		writeV2Error(w, http.StatusUnauthorized, ErrCodeUnauthorized, format, args...)
		return
	}
	writeError(w, http.StatusUnauthorized, format, args...)
}

// withAuth wraps the route mux with tenant resolution. /healthz bypasses
// auth in every mode: load balancers probe it without credentials.
func (s *Server) withAuth(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ten := anonTenant
		if s.authMode != AuthOff && r.URL.Path != "/healthz" {
			key, present := bearerKey(r)
			switch {
			case present:
				if s.keyring == nil {
					writeUnauthorized(w, r, "api keys are not configured on this server")
					return
				}
				t, ok := s.keyring.Resolve(key)
				if !ok {
					writeUnauthorized(w, r, "unknown api key")
					return
				}
				ten = t
			case s.authMode == AuthRequired:
				writeUnauthorized(w, r, "missing api key: send Authorization: Bearer <key>")
				return
			}
		}
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), tenantCtxKey{}, ten)))
	})
}
