package service

import (
	"encoding/json"
	"net/http"
	"sync"
	"testing"

	"repro/internal/par"
)

// TestConcurrentTrainDeleteModel hammers the sharded store from many
// goroutines — trains, single deletes, batched deletes, model fetches and
// stats reads interleaved across independent sessions — and must pass under
// -race. The kernel pool is forced above one worker so the parallel code
// paths are exercised even on single-core runners.
func TestConcurrentTrainDeleteModel(t *testing.T) {
	prev := par.SetWorkers(4)
	defer par.SetWorkers(prev)

	ts := newTestServer(t)
	kinds := []string{"linear", "logistic", "multinomial"}

	// Phase 1: concurrent training across kinds.
	const perKind = 3
	ids := make([]string, len(kinds)*perKind)
	var wg sync.WaitGroup
	for ki, kind := range kinds {
		for r := 0; r < perKind; r++ {
			wg.Add(1)
			go func(slot int, kind string, seed int64) {
				defer wg.Done()
				var tr TrainResponse
				resp := postJSON(t, ts.URL+"/v1/train", trainBody(t, kind, 80, 4, seed), &tr)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("train %s status %d", kind, resp.StatusCode)
					return
				}
				ids[slot] = tr.SessionID
			}(ki*perKind+r, kind, int64(100+ki*perKind+r))
		}
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Phase 2: concurrent single deletes, model fetches and stats reads,
	// plus repeat deletes targeting the same session to contend on its lock.
	for round := 0; round < 3; round++ {
		for _, id := range ids {
			wg.Add(3)
			go func(id string, round int) {
				defer wg.Done()
				var dr DeleteResponse
				resp := postJSON(t, ts.URL+"/v1/delete",
					DeleteRequest{SessionID: id, Removed: []int{round*5 + 1, round*5 + 2}}, &dr)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("delete %s round %d status %d", id, round, resp.StatusCode)
				}
			}(id, round)
			go func(id string) {
				defer wg.Done()
				resp, err := http.Get(ts.URL + "/v1/model/" + id)
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("model %s status %d", id, resp.StatusCode)
				}
			}(id)
			go func() {
				defer wg.Done()
				resp, err := http.Get(ts.URL + "/v1/stats")
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
			}()
		}
		wg.Wait()
	}
	if t.Failed() {
		t.FailNow()
	}

	// Phase 3: one batched delete spanning every session concurrently, with
	// one bogus item that must fail without failing the batch.
	batch := make([]DeleteItem, 0, len(ids)+1)
	for _, id := range ids {
		batch = append(batch, DeleteItem{SessionID: id, Removed: []int{40, 41}})
	}
	batch = append(batch, DeleteItem{SessionID: "sess-nope", Removed: []int{1}})
	var br BatchDeleteResponse
	resp := postJSON(t, ts.URL+"/v1/delete", DeleteRequest{Batch: batch}, &br)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch delete status %d", resp.StatusCode)
	}
	if len(br.Results) != len(batch) {
		t.Fatalf("batch results = %d, want %d", len(br.Results), len(batch))
	}
	for i, res := range br.Results[:len(ids)] {
		if res.Error != "" || res.Result == nil {
			t.Fatalf("batch item %d failed: %+v", i, res)
		}
		// 3 rounds × 2 + batch 2 = 8 cumulative deletions.
		if res.Result.TotalDeleted != 8 {
			t.Fatalf("batch item %d total deleted = %d, want 8", i, res.Result.TotalDeleted)
		}
	}
	if last := br.Results[len(ids)]; last.Error == "" || last.Result != nil {
		t.Fatalf("bogus batch item should fail, got %+v", last)
	}

	// Final stats must add up across shards.
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsResponse
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if stats.Sessions != len(ids) {
		t.Fatalf("stats sessions = %d, want %d", stats.Sessions, len(ids))
	}
	if stats.Trains != int64(len(ids)) {
		t.Fatalf("stats trains = %d, want %d", stats.Trains, len(ids))
	}
	wantDeletes := int64(len(ids)*3 + len(batch))
	if stats.Deletes != wantDeletes {
		t.Fatalf("stats deletes = %d, want %d", stats.Deletes, wantDeletes)
	}
	if stats.DeleteErrors != 1 {
		t.Fatalf("stats delete errors = %d, want 1", stats.DeleteErrors)
	}
	if len(stats.Shards) != numShards {
		t.Fatalf("stats shards = %d, want %d", len(stats.Shards), numShards)
	}
	var shardSessions int
	var perSession int64
	for _, sh := range stats.Shards {
		shardSessions += sh.Sessions
		for _, ss := range sh.SessionStats {
			if ss.Updates < 4 || ss.TotalDeleted != 8 {
				t.Fatalf("session stats %+v", ss)
			}
			perSession++
		}
	}
	if shardSessions != len(ids) || perSession != int64(len(ids)) {
		t.Fatalf("shard session totals %d/%d, want %d", shardSessions, perSession, len(ids))
	}
}
