package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"testing"

	"repro/priu/store"
)

// TestSpillQuota507 covers the typed spill-cap rejection end to end: a
// tenant whose on-disk spill usage reaches its max_spill_bytes cap gets 507
// Insufficient Storage with the spill_quota code on v2 (and the flat 507 on
// v1) until it deletes sessions.
func TestSpillQuota507(t *testing.T) {
	dir := t.TempDir()
	keyPath := writeKeyFile(t, TenantConfig{Name: "alice", Key: "ak_alice", MaxSpillBytes: 1 << 30})
	kr, err := LoadKeyring(keyPath)
	if err != nil {
		t.Fatal(err)
	}
	mem := store.NewMemory(store.WithMaxSessions(1), store.WithTenantLimits(kr.Limits))
	tiered, err := store.NewTiered(dir, mem)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = tiered.Close() })
	ts := newTestServerOpts(t, WithStore(tiered), WithAuth(AuthRequired, kr))

	do := func(method, path string, body any) *http.Response {
		t.Helper()
		var buf bytes.Buffer
		if body != nil {
			if err := json.NewEncoder(&buf).Encode(body); err != nil {
				t.Fatal(err)
			}
		}
		req, err := http.NewRequest(method, ts.URL+path, &buf)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Authorization", "Bearer ak_alice")
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Two sessions under a max-1 resident budget: the first spills, the
	// second's eager snapshot becomes a warm backup. Under the huge cap both
	// are admitted.
	for seed := int64(1); seed <= 2; seed++ {
		resp := do(http.MethodPost, "/v2/sessions", v2CreateBody(t, "linear", 60, 3, seed))
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create %d status %d", seed, resp.StatusCode)
		}
		resp.Body.Close()
	}
	tiered.Flush()

	resp := do(http.MethodGet, "/v2/tenants/self/stats", nil)
	var tsr TenantStatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&tsr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if tsr.SpillFileBytes <= 0 {
		t.Fatalf("tenant spill usage %d, want > 0 after a spill", tsr.SpillFileBytes)
	}
	if tsr.MaxSpillBytes != 1<<30 {
		t.Fatalf("tenant stats cap %d, want the configured 1<<30", tsr.MaxSpillBytes)
	}

	// Hot-reload the key file with the cap at the tenant's current usage:
	// the next registration is a disk condition, not a rate one.
	buf, err := json.Marshal(map[string]any{"tenants": []TenantConfig{
		{Name: "alice", Key: "ak_alice", MaxSpillBytes: tsr.SpillFileBytes},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(keyPath, buf, 0o600); err != nil {
		t.Fatal(err)
	}
	if err := kr.Reload(); err != nil {
		t.Fatal(err)
	}

	resp = do(http.MethodPost, "/v2/sessions", v2CreateBody(t, "linear", 60, 3, 3))
	if resp.StatusCode != http.StatusInsufficientStorage {
		t.Fatalf("v2 create at the spill cap: status %d, want 507", resp.StatusCode)
	}
	var env ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if env.Error.Code != ErrCodeSpillQuota {
		t.Fatalf("v2 error code %q, want %q", env.Error.Code, ErrCodeSpillQuota)
	}

	// v1 reports the same condition in its flat error shape.
	resp = do(http.MethodPost, "/v1/train", trainBody(t, "linear", 60, 3, 4))
	if resp.StatusCode != http.StatusInsufficientStorage {
		t.Fatalf("v1 train at the spill cap: status %d, want 507", resp.StatusCode)
	}
	var flat map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&flat); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if flat["error"] == "" {
		t.Fatal("v1 507 must keep the flat error shape")
	}

	// Deleting a session frees disk; registrations are admitted again.
	resp = do(http.MethodDelete, "/v2/sessions/sess-1", nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp = do(http.MethodPost, "/v2/sessions", v2CreateBody(t, "linear", 60, 3, 5))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create after freeing disk: status %d, want 201", resp.StatusCode)
	}
	resp.Body.Close()
}
