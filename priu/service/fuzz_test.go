package service

import (
	"encoding/json"
	"testing"

	"repro/priu"
)

// FuzzCSRUpload hammers the sparse-upload validator with arbitrary JSON
// bodies: sparseDatasetFromRequest must never panic (no index out of range
// on hostile indptr/indices) and every dataset it accepts must be coherent
// with the request. Seed corpus in testdata/fuzz/FuzzCSRUpload.
func FuzzCSRUpload(f *testing.F) {
	add := func(v any) {
		buf, err := json.Marshal(v)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	// A valid 3-row CSR body.
	add(CreateSessionRequest{
		Family: "sparse-logistic", Cols: 5,
		Indptr: []int{0, 2, 3, 4}, Indices: []int{0, 3, 1, 4},
		Values: []float64{1, -2, 0.5, 3}, Labels: []float64{1, -1, 1},
	})
	// Classic hostile shapes.
	add(CreateSessionRequest{Family: "sparse-logistic", Cols: 5,
		Indptr: []int{0, 4, 2}, Indices: []int{0, 1}, Values: []float64{1, 2}, Labels: []float64{1, -1}})
	add(CreateSessionRequest{Family: "sparse-logistic", Cols: -1,
		Indptr: []int{0, 1}, Indices: []int{9}, Values: []float64{1}, Labels: []float64{1}})
	add(CreateSessionRequest{Family: "sparse-logistic", Cols: 2,
		Indptr: []int{0, 1}, Indices: []int{-7}, Values: []float64{1}, Labels: []float64{1}})
	f.Add([]byte(`{"family":"sparse-logistic","indptr":[0,9007199254740993]}`))
	f.Add([]byte(`{nope`))

	sparseFam, ok := priu.Lookup("sparse-logistic")
	if !ok {
		f.Fatal("sparse-logistic family not registered")
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var req CreateSessionRequest
		if err := json.Unmarshal(data, &req); err != nil {
			return
		}
		// Bound the work per input so the fuzzer explores shapes, not sizes.
		if len(req.Indptr) > 1<<12 || len(req.Indices) > 1<<12 ||
			len(req.Values) > 1<<12 || len(req.Labels) > 1<<12 {
			return
		}
		d, err := sparseDatasetFromRequest(sparseFam, &req)
		if err != nil {
			return // rejected: fine, as long as it didn't panic
		}
		rows, cols := d.X.Dims()
		if rows != len(req.Indptr)-1 || cols != req.Cols {
			t.Fatalf("accepted CSR with drifted dims %dx%d (indptr %d, cols %d)",
				rows, cols, len(req.Indptr), req.Cols)
		}
		if len(d.Y) != rows {
			t.Fatalf("accepted %d labels for %d rows", len(d.Y), rows)
		}
	})
}
