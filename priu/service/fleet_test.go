package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/priu/cluster"
	"repro/priu/store"
)

// testFleet is an in-process replica fleet: each node is a full Server over
// its own Tiered store, all sharing one FSBlob, joined by Memberships whose
// probes consult the test's liveness switchboard.
type testFleet struct {
	urls    []string
	servers []*Server
	members []*cluster.Membership
	stores  []*store.Tiered

	mu sync.Mutex
	up map[string]bool
}

func (f *testFleet) setUp(url string, up bool) {
	f.mu.Lock()
	f.up[url] = up
	f.mu.Unlock()
}

func (f *testFleet) probe(_ context.Context, addr string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.up[addr]
}

// newTestFleet boots n replicas. The httptest listeners start before the
// servers exist (the member list needs their URLs), so each delegates through
// an atomically-swapped handler.
func newTestFleet(t *testing.T, n int, probeInterval time.Duration) *testFleet {
	t.Helper()
	bs, err := store.NewFSBlob(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	f := &testFleet{up: map[string]bool{}}
	handlers := make([]atomic.Value, n)
	for i := 0; i < n; i++ {
		h := &handlers[i]
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			h.Load().(http.Handler).ServeHTTP(w, r)
		}))
		t.Cleanup(ts.Close)
		f.urls = append(f.urls, ts.URL)
		f.up[ts.URL] = true
	}
	for i := 0; i < n; i++ {
		ti, err := store.NewTiered(t.TempDir(), store.NewMemory(), store.WithBlobStore(bs))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ti.Close() })
		m, err := cluster.New(cluster.Config{
			Self: f.urls[i], Peers: f.urls,
			ProbeInterval: probeInterval, Probe: f.probe,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(m.Close)
		srv := NewServer(WithStore(ti), WithCluster(m))
		handlers[i].Store(srv.Handler())
		f.servers = append(f.servers, srv)
		f.members = append(f.members, m)
		f.stores = append(f.stores, ti)
	}
	return f
}

// noRedirect returns the last response instead of following 307s, so tests
// can observe the fleet's routing decisions directly.
var noRedirect = &http.Client{
	CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse },
}

var fleetIDPattern = regexp.MustCompile(`^sess-\d+-[0-9a-f]{4}$`)

func TestFleetCreateAndCrossNodeRead(t *testing.T) {
	f := newTestFleet(t, 3, 0)
	sr := v2Create(t, f.urls[0], v2CreateBody(t, "linear", 80, 4, 1))

	// Fleet members mint node-suffixed IDs they themselves own.
	if !fleetIDPattern.MatchString(sr.SessionID) {
		t.Fatalf("fleet session ID %q lacks the node suffix", sr.SessionID)
	}
	if _, self := f.members[0].Owner(sr.SessionID); !self {
		t.Fatalf("creating node does not own freshly minted %q", sr.SessionID)
	}

	// The session created via node 0 is readable through EVERY node: a
	// redirect-following client sees plain 200s.
	for i := 1; i < len(f.urls); i++ {
		resp, err := http.Get(f.urls[i] + "/v2/sessions/" + sr.SessionID)
		if err != nil {
			t.Fatal(err)
		}
		var got SessionResponse
		if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || got.SessionID != sr.SessionID {
			t.Fatalf("node %d read: status %d, session %q", i, resp.StatusCode, got.SessionID)
		}
	}

	// Under the hood that read is a 307 to the owner.
	resp, err := noRedirect.Get(f.urls[1] + "/v2/sessions/" + sr.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("non-owner answered %d, want 307", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != f.urls[0]+"/v2/sessions/"+sr.SessionID {
		t.Fatalf("redirect Location = %q", loc)
	}
	if f.servers[1].fleetRedirects.Value() == 0 {
		t.Fatal("redirect not counted")
	}

	// A request already forwarded once is served locally no matter what the
	// ring says — the single-hop loop guard.
	req, _ := http.NewRequest(http.MethodGet, f.urls[1]+"/v2/sessions/"+sr.SessionID, nil)
	req.Header.Set(fleetHopHeader, "test")
	hresp, err := noRedirect.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode == http.StatusTemporaryRedirect {
		t.Fatal("hop-marked request was forwarded a second time")
	}
}

func TestFleetDeletionStreamProxiedToOwner(t *testing.T) {
	f := newTestFleet(t, 2, 0)
	sr := v2Create(t, f.urls[0], v2CreateBody(t, "logistic", 120, 4, 7))

	// Stream deletions through the NON-owner. The piped NDJSON body cannot
	// replay through a redirect, so node 1 must proxy it to node 0, flushing
	// result lines as the owner emits them.
	lines := streamBatches(t, f.urls[1]+"/v2/sessions/"+sr.SessionID+"/deletions", []string{
		`{"remove":[1,2,3]}`,
		`{"remove":[10]}`,
	})
	var last DeletionResult
	if err := json.Unmarshal([]byte(lines[1]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Batch != 2 || last.TotalDeleted != 4 {
		t.Fatalf("streamed result %+v", last)
	}
	if f.servers[1].fleetProxied.Value() == 0 {
		t.Fatal("stream was not proxied")
	}

	// The owner holds the applied state.
	resp, err := http.Get(f.urls[0] + "/v2/sessions/" + sr.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got SessionResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.TotalDeleted != 4 {
		t.Fatalf("owner shows %d deletions, want 4", got.TotalDeleted)
	}
}

func TestFleetV1DeleteScatterGather(t *testing.T) {
	f := newTestFleet(t, 2, 0)
	srA := v2Create(t, f.urls[0], v2CreateBody(t, "linear", 80, 4, 1))
	srB := v2Create(t, f.urls[1], v2CreateBody(t, "linear", 80, 4, 2))

	// One batch mixing a local session, a peer-owned session, and a miss:
	// node 0 splits it per owner and merges results in request order.
	var out BatchDeleteResponse
	resp := postJSON(t, f.urls[0]+"/v1/delete", DeleteRequest{Batch: []DeleteItem{
		{SessionID: srA.SessionID, Removed: []int{1}},
		{SessionID: srB.SessionID, Removed: []int{2, 3}},
		{SessionID: "sess-nope", Removed: []int{4}},
	}}, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	if len(out.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(out.Results))
	}
	for i, id := range []string{srA.SessionID, srB.SessionID} {
		r := out.Results[i]
		if r.SessionID != id || r.Error != "" || r.Result == nil {
			t.Fatalf("result %d = %+v", i, r)
		}
	}
	if out.Results[1].Result.TotalDeleted != 2 {
		t.Fatalf("peer-owned item applied %d deletions, want 2", out.Results[1].Result.TotalDeleted)
	}
	if out.Results[2].Error == "" {
		t.Fatal("missing session did not error per-item")
	}

	// A single-session v1 delete addressed to the wrong node forwards whole.
	var dr DeleteResponse
	resp2 := postJSON(t, f.urls[0]+"/v1/delete", DeleteRequest{SessionID: srB.SessionID, Removed: []int{7}}, &dr)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("forwarded single delete status %d", resp2.StatusCode)
	}
	if dr.SessionID != srB.SessionID || dr.TotalDeleted != 3 {
		t.Fatalf("forwarded delete response %+v", dr)
	}
}

func TestFleetMetaAndStatsExposeCluster(t *testing.T) {
	f := newTestFleet(t, 2, 0)
	resp, err := http.Get(f.urls[0] + "/v2/meta")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var mr MetaResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	if !mr.Features.Fleet || !mr.Features.Blob {
		t.Fatalf("features = %+v, want fleet and blob advertised", mr.Features)
	}
	if mr.Cluster == nil {
		t.Fatal("meta lacks the cluster block")
	}
	if mr.Cluster.Node != f.urls[0] || len(mr.Cluster.Peers) != 2 ||
		len(mr.Cluster.Alive) != 2 || mr.Cluster.RingVersion == 0 {
		t.Fatalf("cluster block = %+v", mr.Cluster)
	}

	sresp, err := http.Get(f.urls[1] + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Node != f.urls[1] || len(st.FleetAlive) != 2 {
		t.Fatalf("stats fleet block: node=%q alive=%v", st.Node, st.FleetAlive)
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestFleetHandoffOnMembershipChange(t *testing.T) {
	f := newTestFleet(t, 2, 50*time.Millisecond)
	a, b := f.urls[0], f.urls[1]
	full := cluster.NewRing(1, f.urls)

	// Partition: node B sees A dead, so B owns the whole key space and
	// accepts every session it mints.
	f.setUp(a, false)
	f.members[1].ReportFailure(a)

	// Create sessions through B until at least one belongs to A under the
	// full ring — the session that must migrate when the partition heals.
	var moved, stays string
	for i := 0; i < 32 && (moved == "" || stays == ""); i++ {
		id := v2Create(t, b, v2CreateBody(t, "linear", 60, 4, int64(i+1))).SessionID
		if owner, _ := full.Owner(id); owner == a {
			moved = id
		} else {
			stays = id
		}
	}
	if moved == "" || stays == "" {
		t.Fatal("32 draws never split across both nodes; the ring is broken")
	}

	// Heal the partition. B's prober revives A, the ring change fires the
	// handoff, and B drains the sessions it no longer owns to the blob tier.
	f.setUp(a, true)
	waitFor(t, "handoff release", func() bool { return f.servers[1].fleetReleased.Value() > 0 })
	if f.servers[1].fleetHandoffs.Value() == 0 {
		t.Fatal("membership change never triggered a handoff")
	}

	// B now redirects for the migrated session instead of serving it...
	resp, err := noRedirect.Get(b + "/v2/sessions/" + moved)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("post-handoff read via old owner: %d, want 307", resp.StatusCode)
	}
	// ...while A restores it lazily from the blob tier on first touch.
	aresp, err := http.Get(a + "/v2/sessions/" + moved)
	if err != nil {
		t.Fatal(err)
	}
	defer aresp.Body.Close()
	var got SessionResponse
	if err := json.NewDecoder(aresp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if aresp.StatusCode != http.StatusOK || got.SessionID != moved || len(got.Parameters) == 0 {
		t.Fatalf("new owner read: status %d, %+v", aresp.StatusCode, got)
	}
	// Sessions B still owns never moved.
	sresp, err := noRedirect.Get(b + "/v2/sessions/" + stays)
	if err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("B-owned session after handoff: %d, want 200", sresp.StatusCode)
	}
}

func TestCreateUnderResidentPressureIs503(t *testing.T) {
	// Size the resident budget off a probe session so exactly one fits.
	probeTS := newTestServerOpts(t)
	probe := v2Create(t, probeTS.URL, v2CreateBody(t, "linear", 80, 4, 1))
	if probe.FootprintBytes <= 0 {
		t.Fatal("probe session has no footprint")
	}

	mem := store.NewMemory(store.WithMaxBytes(probe.FootprintBytes + probe.FootprintBytes/2))
	ts := newTestServerOpts(t, WithStore(mem))
	first := v2Create(t, ts.URL, v2CreateBody(t, "linear", 80, 4, 1))

	// Pin the only resident session, as an in-flight snapshot export or
	// what-if stream would.
	sess, ok := mem.Get(first.SessionID)
	if !ok {
		t.Fatal("created session not resident")
	}
	sess.Pin()

	// The budget is exhausted and every evictable session is pinned: the
	// registration is transient backpressure, not a quota violation.
	body, err := json.Marshal(v2CreateBody(t, "linear", 80, 4, 2))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v2/sessions", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("pinned-solid create status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q, want 1", ra)
	}
	if env := decodeEnvelope(t, resp.Body); env.Error.Code != ErrCodeResidentPressure {
		t.Fatalf("error code %q, want %q", env.Error.Code, ErrCodeResidentPressure)
	}
	resp.Body.Close()

	// The v1 path reports the same backpressure in its flat shape.
	v1resp := postJSON(t, ts.URL+"/v1/train", trainBody(t, "linear", 80, 4, 3), nil)
	if v1resp.StatusCode != http.StatusServiceUnavailable || v1resp.Header.Get("Retry-After") != "1" {
		t.Fatalf("v1 train status %d (Retry-After %q)", v1resp.StatusCode, v1resp.Header.Get("Retry-After"))
	}

	// Releasing the pin releases the pressure.
	sess.Unpin()
	second := v2Create(t, ts.URL, v2CreateBody(t, "linear", 80, 4, 2))
	if second.SessionID == "" {
		t.Fatal("create after unpin failed")
	}
}
