package service

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"mime"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/sparse"
	"repro/priu"
	"repro/priu/obs"
	"repro/priu/store"
)

// The v2 API surface: REST session routing built directly on priu.Updater,
// typed {"error":{"code","message"}} envelopes, snapshot import/export, CSR
// uploads for sparse families, tenant-scoped listings and stats, and a
// streaming deletions endpoint that applies NDJSON removal batches on one
// connection and streams back per-batch parameter digests. Every route
// answers unknown methods with a typed 405 envelope carrying an Allow
// header.

// v2 error codes.
const (
	// ErrCodeBadRequest marks malformed JSON or invalid request shapes.
	ErrCodeBadRequest = "bad_request"
	// ErrCodeNotFound marks unknown sessions or routes.
	ErrCodeNotFound = "not_found"
	// ErrCodeMethodNotAllowed marks a known route called with an unsupported
	// HTTP method; the Allow header lists the supported ones.
	ErrCodeMethodNotAllowed = "method_not_allowed"
	// ErrCodeUnauthorized marks a missing or unknown API key.
	ErrCodeUnauthorized = "unauthorized"
	// ErrCodeQuota marks a registration rejected because the tenant is at
	// its session or byte quota.
	ErrCodeQuota = "insufficient_quota"
	// ErrCodeSpillQuota marks a registration rejected because the tenant
	// sits at its spill-byte cap: its disk-tier usage must shrink (delete
	// sessions) before the store takes on more state. Reported as HTTP 507
	// Insufficient Storage — a disk condition, not a request-rate one.
	ErrCodeSpillQuota = "spill_quota"
	// ErrCodeRateLimited marks a deletion batch rejected by the tenant's
	// rate limit; retry_after_seconds (and, on HTTP 429 responses, the
	// Retry-After header) say when to retry.
	ErrCodeRateLimited = "rate_limited"
	// ErrCodeInvalidRemovals marks empty, duplicate or out-of-range removal
	// indices.
	ErrCodeInvalidRemovals = "invalid_removals"
	// ErrCodeBatchTooLarge marks a removal batch above the server's limit
	// (or above the tenant's rate-limit burst, which no wait could admit).
	ErrCodeBatchTooLarge = "batch_too_large"
	// ErrCodeCaptureFailed marks a failed train/capture.
	ErrCodeCaptureFailed = "capture_failed"
	// ErrCodeSnapshotUnsupported marks families without snapshot support.
	ErrCodeSnapshotUnsupported = "snapshot_unsupported"
	// ErrCodeUpdateFailed marks a failed incremental update.
	ErrCodeUpdateFailed = "update_failed"
	// ErrCodeResidentPressure marks a registration rejected because the
	// resident tier's budget is exhausted and every evictable session is
	// pinned (exports or what-if streams in flight). Transient: retry after
	// the Retry-After header.
	ErrCodeResidentPressure = "resident_pressure"
	// ErrCodePeerUnavailable marks a fleet request whose owning replica did
	// not answer; the membership layer demotes the peer and the next attempt
	// lands on the new owner.
	ErrCodePeerUnavailable = "peer_unavailable"
)

// APIError is the typed error payload of every v2 failure.
type APIError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// RetryAfterSeconds accompanies rate_limited errors: how long until the
	// rejected batch would be admitted.
	RetryAfterSeconds float64 `json:"retry_after_seconds,omitempty"`
}

// ErrorEnvelope wraps an APIError as the v2 wire format.
type ErrorEnvelope struct {
	Error APIError `json:"error"`
}

func writeV2Error(w http.ResponseWriter, status int, code, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(ErrorEnvelope{Error: APIError{
		Code:    code,
		Message: fmt.Sprintf(format, args...),
	}})
}

// CreateSessionRequest is the JSON body of POST /v2/sessions. Dense families
// take Features/Labels; sparse families take the CSR triple
// Indptr/Indices/Values plus Cols and Labels. Alternatively the endpoint
// accepts Content-Type: application/octet-stream with a priu snapshot
// (GET /v2/sessions/{id}/snapshot output) as the body.
type CreateSessionRequest struct {
	Family   string      `json:"family"`
	Features [][]float64 `json:"features,omitempty"`
	Labels   []float64   `json:"labels"`
	Classes  int         `json:"classes,omitempty"`
	// CSR upload (sparse families): row pointers (len n+1), column indices
	// and values (len nnz each), and the feature-space width.
	Indptr  []int     `json:"indptr,omitempty"`
	Indices []int     `json:"indices,omitempty"`
	Values  []float64 `json:"values,omitempty"`
	Cols    int       `json:"cols,omitempty"`

	Eta        float64 `json:"eta"`
	Lambda     float64 `json:"lambda"`
	BatchSize  int     `json:"batch_size"`
	Iterations int     `json:"iterations"`
	Seed       int64   `json:"seed"`
	// Mode selects the provenance-cache representation: "auto" (default),
	// "full" or "svd".
	Mode string `json:"mode,omitempty"`
	// Epsilon is the SVD coverage threshold (0 = default).
	Epsilon float64 `json:"epsilon,omitempty"`
}

// SessionResponse describes a session in v2 responses.
type SessionResponse struct {
	SessionID       string    `json:"session_id"`
	Family          string    `json:"family"`
	CreatedAt       time.Time `json:"created_at"`
	Parameters      []float64 `json:"parameters"`
	TotalDeleted    int       `json:"total_deleted"`
	FootprintBytes  int64     `json:"footprint_bytes"`
	Snapshottable   bool      `json:"snapshottable"`
	CaptureSeconds  float64   `json:"capture_seconds,omitempty"`
	RestoredFromSnp bool      `json:"restored_from_snapshot,omitempty"`
}

// DeletionBatch is one NDJSON line of POST /v2/sessions/{id}/deletions.
type DeletionBatch struct {
	Remove []int `json:"remove"`
	// Parameters requests the full updated parameter vector in this batch's
	// result line (the digest is always present). The ?parameters=all query
	// flag requests them on every batch.
	Parameters bool `json:"parameters,omitempty"`
}

// DeletionResult is the NDJSON response line for one applied batch.
type DeletionResult struct {
	Batch         int     `json:"batch"`
	Removed       int     `json:"removed"`
	TotalDeleted  int     `json:"total_deleted"`
	UpdateSeconds float64 `json:"update_seconds"`
	// Digest is an FNV-1a hash of the updated parameter vector — enough for
	// a streaming client to detect convergence/changes without shipping the
	// full parameters every batch.
	Digest       string  `json:"digest"`
	CosineVsPrev float64 `json:"cosine_vs_previous"`
	// Parameters is only populated when the batch sets "parameters":true or
	// the stream was opened with ?parameters=all.
	Parameters []float64 `json:"parameters,omitempty"`
}

// routeV2 registers one v2 path with an explicit method table, so every
// route answers unsupported methods with the typed 405 envelope and an Allow
// header instead of falling through to a 404.
func routeV2(mux *http.ServeMux, pattern string, methods map[string]http.HandlerFunc) {
	allowed := make([]string, 0, len(methods))
	for m := range methods {
		allowed = append(allowed, m)
	}
	sort.Strings(allowed)
	allow := strings.Join(allowed, ", ")
	mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		h, ok := methods[r.Method]
		if !ok && r.Method == http.MethodHead {
			// HEAD rides on GET (net/http discards the body), matching the
			// ServeMux method-pattern behavior this dispatch replaced.
			h, ok = methods[http.MethodGet]
		}
		if ok {
			h(w, r)
			return
		}
		w.Header().Set("Allow", allow)
		writeV2Error(w, http.StatusMethodNotAllowed, ErrCodeMethodNotAllowed,
			"method %s not allowed on %s (allowed: %s)", r.Method, r.URL.Path, allow)
	})
}

// mountV2 registers the v2 REST routes on the mux.
func (s *Server) mountV2(mux *http.ServeMux) {
	routeV2(mux, "/v2/sessions", map[string]http.HandlerFunc{
		http.MethodPost: s.handleV2CreateSession,
		http.MethodGet:  s.handleV2ListSessions,
	})
	routeV2(mux, "/v2/sessions/{id}", map[string]http.HandlerFunc{
		http.MethodGet:    s.handleV2GetSession,
		http.MethodDelete: s.handleV2DeleteSession,
	})
	routeV2(mux, "/v2/sessions/{id}/snapshot", map[string]http.HandlerFunc{
		http.MethodGet: s.handleV2Snapshot,
	})
	routeV2(mux, "/v2/sessions/{id}/deletions", map[string]http.HandlerFunc{
		http.MethodPost: s.handleV2Deletions,
	})
	routeV2(mux, "/v2/sessions/{id}/whatif", map[string]http.HandlerFunc{
		http.MethodPost: s.handleV2WhatIf,
	})
	routeV2(mux, "/v2/tenants/self/stats", map[string]http.HandlerFunc{
		http.MethodGet: s.handleV2TenantStats,
	})
	routeV2(mux, "/v2/meta", map[string]http.HandlerFunc{
		http.MethodGet: s.handleV2Meta,
	})
	mux.HandleFunc("/v2/", func(w http.ResponseWriter, r *http.Request) {
		writeV2Error(w, http.StatusNotFound, ErrCodeNotFound, "no such v2 route %s %s", r.Method, r.URL.Path)
	})
}

// v2Session resolves a wire session ID inside the caller's namespace.
func (s *Server) v2Session(r *http.Request) (*Session, string, bool) {
	id := r.PathValue("id")
	if !validWireID(id) {
		return nil, id, false
	}
	sess, ok := s.st.Get(tenantFor(r).storeID(id))
	return sess, id, ok
}

func (s *Server) handleV2CreateSession(w http.ResponseWriter, r *http.Request) {
	if mt, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type")); mt == "application/octet-stream" {
		s.handleV2Restore(w, r)
		return
	}
	var req CreateSessionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeV2Error(w, http.StatusBadRequest, ErrCodeBadRequest, "decoding request: %v", err)
		return
	}
	if req.Family == "" {
		writeV2Error(w, http.StatusBadRequest, ErrCodeBadRequest, "family is required (one of %v)", priu.Families())
		return
	}
	f, ok := priu.Lookup(req.Family)
	if !ok {
		writeV2Error(w, http.StatusBadRequest, ErrCodeBadRequest, "unknown family %q (registered: %v)", req.Family, priu.Families())
		return
	}
	var (
		d   priu.TrainingSet
		err error
	)
	if f.Sparse {
		d, err = sparseDatasetFromRequest(f, &req)
	} else {
		if len(req.Indptr) > 0 || len(req.Values) > 0 {
			err = fmt.Errorf("family %q trains on dense input; send features, not a CSR triple", req.Family)
		} else {
			d, err = datasetFromRequest(req.Family, req.Features, req.Labels, req.Classes)
		}
	}
	if err != nil {
		writeV2Error(w, http.StatusBadRequest, ErrCodeBadRequest, "%v", err)
		return
	}
	mode, err := parseMode(req.Mode)
	if err != nil {
		writeV2Error(w, http.StatusBadRequest, ErrCodeBadRequest, "%v", err)
		return
	}
	cfg := priu.Config{
		Eta: req.Eta, Lambda: req.Lambda,
		BatchSize: req.BatchSize, Iterations: req.Iterations, Seed: req.Seed,
		Mode: mode, Epsilon: req.Epsilon,
	}
	ten := tenantFor(r)
	if qe := s.admitSession(ten); qe != nil {
		s.tc(ten.Name).quotaRejections.Add(1)
		status, code := quotaHTTP(qe)
		writeV2Error(w, status, code, "%v", qe)
		return
	}
	start := time.Now()
	_, span := obs.StartSpan(r.Context(), "capture")
	upd, err := priu.TrainConfig(req.Family, d, cfg)
	span.End()
	s.captureSeconds.Observe(time.Since(start).Seconds())
	if err != nil {
		writeV2Error(w, http.StatusBadRequest, ErrCodeCaptureFailed, "%v", err)
		return
	}
	sess, err := s.addSession(ten, req.Family, d, upd, nil, nil)
	if err != nil {
		s.failRegistrationV2(w, ten, err)
		return
	}
	w.WriteHeader(http.StatusCreated)
	writeJSON(w, s.v2SessionResponse(sess, time.Since(start).Seconds(), false))
}

// sparseDatasetFromRequest builds the CSR dataset for a sparse-family
// training request from the indptr/indices/values triple.
func sparseDatasetFromRequest(f priu.Family, req *CreateSessionRequest) (*dataset.SparseDataset, error) {
	if len(req.Features) > 0 {
		return nil, fmt.Errorf("family %q trains on sparse input; send indptr/indices/values, not dense features", f.Name)
	}
	if len(req.Indptr) < 2 {
		return nil, fmt.Errorf("family %q needs a CSR body: indptr (len n+1), indices, values, cols and labels", f.Name)
	}
	n := len(req.Indptr) - 1
	if req.Cols <= 0 {
		return nil, fmt.Errorf("cols must be positive, got %d", req.Cols)
	}
	if len(req.Labels) != n {
		return nil, fmt.Errorf("%d labels for %d CSR rows", len(req.Labels), n)
	}
	if req.Indptr[0] != 0 {
		return nil, fmt.Errorf("indptr[0] must be 0, got %d", req.Indptr[0])
	}
	nnz := len(req.Values)
	if len(req.Indices) != nnz {
		return nil, fmt.Errorf("%d indices for %d values", len(req.Indices), nnz)
	}
	if req.Indptr[n] != nnz {
		return nil, fmt.Errorf("indptr[%d] = %d does not match %d stored values", n, req.Indptr[n], nnz)
	}
	trips := make([]sparse.Triplet, 0, nnz)
	for i := 0; i < n; i++ {
		lo, hi := req.Indptr[i], req.Indptr[i+1]
		if lo > hi || hi > nnz {
			return nil, fmt.Errorf("indptr is not monotonic at row %d (%d > %d)", i, lo, hi)
		}
		for k := lo; k < hi; k++ {
			trips = append(trips, sparse.Triplet{Row: i, Col: req.Indices[k], Val: req.Values[k]})
		}
	}
	x, err := sparse.NewCSR(n, req.Cols, trips)
	if err != nil {
		return nil, err
	}
	classes := req.Classes
	if f.Task == dataset.BinaryClassification {
		classes = 2
		for i, y := range req.Labels {
			if y != 1 && y != -1 {
				return nil, fmt.Errorf("label %d is %v, want ±1", i, y)
			}
		}
	}
	return &dataset.SparseDataset{
		Name:    "api",
		Task:    f.Task,
		Classes: classes,
		X:       x,
		Y:       req.Labels,
	}, nil
}

// parseMode maps the wire cache-mode name to the library value.
func parseMode(mode string) (priu.CacheMode, error) {
	switch mode {
	case "", "auto":
		return priu.ModeAuto, nil
	case "full":
		return priu.ModeFull, nil
	case "svd":
		return priu.ModeSVD, nil
	default:
		return 0, fmt.Errorf("unknown cache mode %q (auto|full|svd)", mode)
	}
}

// handleV2Restore creates a session from a streamed snapshot, replaying the
// snapshot's deletion log so already-honored deletions stay deleted.
func (s *Server) handleV2Restore(w http.ResponseWriter, r *http.Request) {
	ten := tenantFor(r)
	if qe := s.admitSession(ten); qe != nil {
		s.tc(ten.Name).quotaRejections.Add(1)
		status, code := quotaHTTP(qe)
		writeV2Error(w, status, code, "%v", qe)
		return
	}
	family, ds, upd, deleted, err := priu.ReadSessionSnapshot(r.Body)
	if err != nil {
		writeV2Error(w, http.StatusBadRequest, ErrCodeBadRequest, "restoring snapshot: %v", err)
		return
	}
	var model *priu.Model
	if len(deleted) > 0 {
		model, err = upd.Update(deleted)
		if err != nil {
			writeV2Error(w, http.StatusBadRequest, ErrCodeBadRequest, "replaying snapshot deletion log: %v", err)
			return
		}
	}
	sess, err := s.addSession(ten, family, ds, upd, deleted, model)
	if err != nil {
		s.failRegistrationV2(w, ten, err)
		return
	}
	w.WriteHeader(http.StatusCreated)
	writeJSON(w, s.v2SessionResponse(sess, 0, true))
}

// v2SessionResponse snapshots a session's public state. Callers must not
// hold sess.Mu.
func (s *Server) v2SessionResponse(sess *Session, captureSeconds float64, restored bool) SessionResponse {
	snapshottable := store.Spillable(sess.Kind, sess.Upd)
	sess.Mu.Lock()
	defer sess.Mu.Unlock()
	return SessionResponse{
		SessionID:       store.LocalID(sess.ID),
		Family:          sess.Kind,
		CreatedAt:       sess.CreatedAt,
		Parameters:      sess.Model.Vec(),
		TotalDeleted:    len(sess.Deleted),
		FootprintBytes:  sess.Footprint(),
		Snapshottable:   snapshottable,
		CaptureSeconds:  captureSeconds,
		RestoredFromSnp: restored,
	}
}

func (s *Server) handleV2GetSession(w http.ResponseWriter, r *http.Request) {
	sess, id, ok := s.v2Session(r)
	if !ok {
		writeV2Error(w, http.StatusNotFound, ErrCodeNotFound, "unknown session %q", id)
		return
	}
	writeJSON(w, s.v2SessionResponse(sess, 0, false))
}

// SessionInfo is one row of the GET /v2/sessions listing.
type SessionInfo struct {
	SessionID string    `json:"session_id"`
	Family    string    `json:"family"`
	CreatedAt time.Time `json:"created_at"`
	// Spilled marks sessions currently only in the disk tier (they restore
	// transparently on the next touch).
	Spilled bool `json:"spilled,omitempty"`
}

// SessionListResponse is the GET /v2/sessions envelope. NextCursor, when
// set, resumes the listing after the last returned session (pass it back as
// ?cursor=); an absent NextCursor means the listing is complete.
type SessionListResponse struct {
	Sessions   []SessionInfo `json:"sessions"`
	NextCursor string        `json:"next_cursor,omitempty"`
}

// pageParams are the ?limit= / ?cursor= listing parameters shared by the v1
// and v2 session listings.
type pageParams struct {
	limit  int
	cursor string
	// paged reports whether any paging parameter was present — the v1
	// listing only switches to the envelope shape when the caller opts in.
	paged bool
}

// parsePageParams reads the paging query parameters.
func parsePageParams(r *http.Request) (pageParams, error) {
	q := r.URL.Query()
	var p pageParams
	if q.Has("limit") {
		p.paged = true
		n, err := strconv.Atoi(q.Get("limit"))
		if err != nil || n <= 0 {
			return p, fmt.Errorf("limit must be a positive integer, got %q", q.Get("limit"))
		}
		p.limit = n
	}
	if q.Has("cursor") {
		p.paged = true
		p.cursor = q.Get("cursor")
	}
	return p, nil
}

// pageWindow computes the [lo,hi) window of a listing already sorted by
// sessionIDLess, resuming strictly after the cursor, plus the next cursor
// ("" when nothing follows). The cursor is an ID, not an offset, so pages
// stay stable while sessions are created or deleted between requests.
func pageWindow(n int, idAt func(i int) string, p pageParams) (int, int, string) {
	lo := 0
	if p.cursor != "" {
		lo = sort.Search(n, func(i int) bool { return sessionIDLess(p.cursor, idAt(i)) })
	}
	hi := n
	if p.limit > 0 && lo+p.limit < n {
		hi = lo + p.limit
	}
	next := ""
	if hi < n && hi > lo {
		next = idAt(hi - 1)
	}
	return lo, hi, next
}

// listSessions builds the caller's full sorted session listing (resident and
// spilled rows merged).
func (s *Server) listSessions(ten *Tenant) []SessionInfo {
	out := []SessionInfo{}
	seen := map[string]bool{}
	s.st.Range(func(sess *Session) bool {
		if store.TenantOf(sess.ID) != ten.Name {
			return true
		}
		out = append(out, SessionInfo{SessionID: store.LocalID(sess.ID), Family: sess.Kind, CreatedAt: sess.CreatedAt})
		seen[sess.ID] = true
		return true
	})
	for _, sp := range s.st.Stats().SpilledSessions {
		if store.TenantOf(sp.ID) == ten.Name && !seen[sp.ID] {
			out = append(out, SessionInfo{SessionID: store.LocalID(sp.ID), Family: sp.Kind, CreatedAt: sp.CreatedAt, Spilled: true})
		}
	}
	sort.Slice(out, func(i, j int) bool { return sessionIDLess(out[i].SessionID, out[j].SessionID) })
	return out
}

func (s *Server) handleV2ListSessions(w http.ResponseWriter, r *http.Request) {
	p, err := parsePageParams(r)
	if err != nil {
		writeV2Error(w, http.StatusBadRequest, ErrCodeBadRequest, "%v", err)
		return
	}
	out := s.listSessions(tenantFor(r))
	lo, hi, next := pageWindow(len(out), func(i int) string { return out[i].SessionID }, p)
	writeJSON(w, SessionListResponse{Sessions: out[lo:hi], NextCursor: next})
}

func (s *Server) handleV2DeleteSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !validWireID(id) || !s.st.Delete(tenantFor(r).storeID(id)) {
		writeV2Error(w, http.StatusNotFound, ErrCodeNotFound, "unknown session %q", id)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleV2Snapshot(w http.ResponseWriter, r *http.Request) {
	sess, id, ok := s.v2Session(r)
	if !ok {
		writeV2Error(w, http.StatusNotFound, ErrCodeNotFound, "unknown session %q", id)
		return
	}
	if !store.Spillable(sess.Kind, sess.Upd) {
		writeV2Error(w, http.StatusConflict, ErrCodeSnapshotUnsupported,
			"family %q does not support snapshots", sess.Kind)
		return
	}
	// Pin for the export duration: a slow download must not have its session
	// (or the session's spill file) evicted out from under the stream.
	sess.Pin()
	defer sess.Unpin()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Priu-Family", sess.Kind)
	// Provenance is immutable after capture, so only the deletion log needs
	// the session lock; the log rides along so a restored session keeps
	// honoring deletions applied here.
	sess.Mu.Lock()
	deleted := append([]int(nil), sess.Deleted...)
	sess.Mu.Unlock()
	start := time.Now()
	_, span := obs.StartSpan(r.Context(), "snapshot.serialize")
	err := priu.WriteSessionSnapshot(w, sess.Kind, sess.DS, sess.Upd, deleted)
	span.End()
	s.snapshotSeconds.Observe(time.Since(start).Seconds())
	if err != nil {
		// Headers are gone; the stream just terminates early. Log-free
		// minimal handling: the client sees a truncated stream and the
		// snapshot loader fails closed.
		return
	}
}

// applyV2Batch validates and applies one removal batch against the current
// authoritative copy of the session, re-fetching (which restores a spilled
// session) whenever the copy it locked was evicted concurrently. id is the
// storage ID; wireID is what error messages echo back to the caller.
func (s *Server) applyV2Batch(ctx context.Context, id, wireID string, removed []int) (DeleteResponse, *APIError, error) {
	for {
		sess, ok := s.st.Get(id)
		if !ok {
			return DeleteResponse{}, &APIError{
				Code:    ErrCodeNotFound,
				Message: fmt.Sprintf("unknown session %q", wireID),
			}, nil
		}
		// Validation and application happen under one lock acquisition so a
		// concurrent stream to the same session can't slip a duplicate
		// through between the check and the apply; the deferred unlock keeps
		// a panicking engine from wedging the session mutex.
		resp, apiErr, err, retry := func() (DeleteResponse, *APIError, error, bool) {
			sess.Mu.Lock()
			defer sess.Mu.Unlock()
			if sess.GoneLocked() {
				return DeleteResponse{}, nil, nil, true
			}
			if apiErr := s.validateBatchLocked(sess, removed); apiErr != nil {
				return DeleteResponse{}, apiErr, nil, false
			}
			r, e := s.applyDeletionLocked(ctx, sess, removed)
			return r, nil, e, false
		}()
		if retry {
			continue
		}
		return resp, apiErr, err
	}
}

// handleV2Deletions streams removal batches on one connection: each request
// NDJSON line {"remove":[...]} is validated, charged against the tenant's
// rate limit, applied cumulatively to the session, and answered with one
// NDJSON DeletionResult (or ErrorEnvelope) line, flushed immediately.
// Invalid or throttled batches report an error line and do not abort the
// stream — a throttled client waits retry_after_seconds and resends — while
// a malformed (non-JSON) line or a session that disappeared does.
func (s *Server) handleV2Deletions(w http.ResponseWriter, r *http.Request) {
	// Full-duplex from the very first write: even the early error responses
	// (404/429) must not wait for the server to drain an open-ended NDJSON
	// request body — a client that streams its first batch and then blocks
	// on the response would deadlock against the drain otherwise. Those
	// early errors also close the connection: the handler returns with the
	// streamed body unread, and a keep-alive reuse would race net/http's
	// leftover body read against the next request ("invalid concurrent
	// Body.Read" panics).
	rc := http.NewResponseController(w)
	_ = rc.EnableFullDuplex()
	earlyError := func(status int, headers map[string]string, code, format string, args ...any) {
		w.Header().Set("Connection", "close")
		for k, v := range headers {
			w.Header().Set(k, v)
		}
		writeV2Error(w, status, code, format, args...)
	}
	ten := tenantFor(r)
	wireID := r.PathValue("id")
	if !validWireID(wireID) {
		earlyError(http.StatusNotFound, nil, ErrCodeNotFound, "unknown session %q", wireID)
		return
	}
	id := ten.storeID(wireID)
	if _, ok := s.st.Get(id); !ok {
		earlyError(http.StatusNotFound, nil, ErrCodeNotFound, "unknown session %q", wireID)
		return
	}
	// An already-exhausted bucket rejects the stream at open with a plain
	// HTTP 429 + Retry-After, so a throttled client doesn't even hold a
	// connection; once streaming, throttling is reported per batch.
	if wait := ten.streamWait(); wait > 0 {
		s.tc(ten.Name).rateLimited.Add(1)
		earlyError(http.StatusTooManyRequests,
			map[string]string{"Retry-After": strconv.Itoa(int(wait.Seconds()) + 1)},
			ErrCodeRateLimited,
			"tenant %q is over its deletion rate limit (%.4g rows/s); retry in %.2fs",
			ten.Name, ten.DeletionRowsPerSec, wait.Seconds())
		return
	}
	paramMode := r.URL.Query().Get("parameters")
	streamStart := time.Now()
	defer func() { s.streamSeconds.Observe(time.Since(streamStart).Seconds()) }()
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flush := func() { _ = rc.Flush() }
	rq := &s.reqs[store.ShardIndex(id)]
	tq := s.tc(ten.Name)
	dec := json.NewDecoder(r.Body)
	for batchNo := 1; ; batchNo++ {
		var batch DeletionBatch
		if err := dec.Decode(&batch); err != nil {
			if errors.Is(err, io.EOF) {
				return
			}
			rq.deleteErrors.Add(1)
			tq.deleteErrors.Add(1)
			_ = enc.Encode(ErrorEnvelope{Error: APIError{
				Code:    ErrCodeBadRequest,
				Message: fmt.Sprintf("batch %d: malformed JSON: %v", batchNo, err),
			}})
			flush()
			return // cannot resync a corrupt stream
		}
		// Rate limiting precedes validation: a removal batch charges its row
		// count whether or not it turns out valid, so a tenant cannot probe
		// for free. A batch the bucket can never hold is a size error, not a
		// wait; a throttled batch charges nothing and says when to retry.
		if burst := ten.Capacity(); burst > 0 && float64(len(batch.Remove)) > burst {
			tq.deleteErrors.Add(1)
			_ = enc.Encode(ErrorEnvelope{Error: APIError{
				Code: ErrCodeBatchTooLarge,
				Message: fmt.Sprintf("batch %d: %d removals exceed tenant %q's rate-limit burst of %.0f rows",
					batchNo, len(batch.Remove), ten.Name, burst),
			}})
			flush()
			continue
		}
		if wait, ok := ten.takeRows(len(batch.Remove)); !ok {
			tq.rateLimited.Add(1)
			_ = enc.Encode(ErrorEnvelope{Error: APIError{
				Code: ErrCodeRateLimited,
				Message: fmt.Sprintf("batch %d: tenant %q is over its deletion rate limit (%.4g rows/s)",
					batchNo, ten.Name, ten.DeletionRowsPerSec),
				RetryAfterSeconds: wait.Seconds(),
			}})
			flush()
			continue
		}
		rq.deletes.Add(1)
		tq.deletes.Add(1)
		resp, apiErr, err := s.applyV2Batch(r.Context(), id, wireID, batch.Remove)
		if apiErr != nil {
			rq.deleteErrors.Add(1)
			tq.deleteErrors.Add(1)
			_ = enc.Encode(ErrorEnvelope{Error: *apiErr})
			flush()
			if apiErr.Code == ErrCodeNotFound {
				return // the session is gone; later batches cannot succeed
			}
			continue
		}
		if err != nil {
			rq.deleteErrors.Add(1)
			tq.deleteErrors.Add(1)
			_ = enc.Encode(ErrorEnvelope{Error: APIError{
				Code:    ErrCodeUpdateFailed,
				Message: fmt.Sprintf("batch %d: %v", batchNo, err),
			}})
			flush()
			continue
		}
		tq.rowsDeleted.Add(int64(len(batch.Remove)))
		result := DeletionResult{
			Batch:         batchNo,
			Removed:       len(batch.Remove),
			TotalDeleted:  resp.TotalDeleted,
			UpdateSeconds: resp.UpdateSeconds,
			Digest:        ParamDigest(resp.Parameters),
			CosineVsPrev:  resp.CosineVsPrev,
		}
		if paramMode == "all" || batch.Parameters {
			result.Parameters = resp.Parameters
		}
		_ = enc.Encode(result)
		flush()
	}
}

// TenantStatsResponse is the GET /v2/tenants/self/stats payload: the calling
// tenant's storage usage, configured limits and request counters.
type TenantStatsResponse struct {
	Tenant        string `json:"tenant"`
	Authenticated bool   `json:"authenticated"`

	ResidentSessions int   `json:"resident_sessions"`
	ResidentBytes    int64 `json:"resident_bytes"`
	SpilledSessions  int   `json:"spilled_sessions"`
	SpilledBytes     int64 `json:"spilled_bytes"`
	// SpillFileBytes is the tenant's actual on-disk spill-file usage — the
	// quantity its max_spill_bytes cap is checked against.
	SpillFileBytes int64 `json:"spill_file_bytes,omitempty"`

	MaxSessions        int     `json:"max_sessions,omitempty"`
	MaxBytes           int64   `json:"max_bytes,omitempty"`
	MaxSpillBytes      int64   `json:"max_spill_bytes,omitempty"`
	DeletionRowsPerSec float64 `json:"deletion_rows_per_sec,omitempty"`
	Burst              float64 `json:"burst,omitempty"`

	Trains          int64 `json:"trains"`
	Deletes         int64 `json:"deletes"`
	DeleteErrors    int64 `json:"delete_errors"`
	RowsDeleted     int64 `json:"rows_deleted"`
	RateLimited     int64 `json:"rate_limited"`
	QuotaRejections int64 `json:"quota_rejections"`
	BudgetEvictions int64 `json:"budget_evictions"`
	ExplicitDeletes int64 `json:"explicit_deletes"`
	// DiskEvictions counts the tenant's cold sessions dropped by the global
	// disk budget.
	DiskEvictions int64 `json:"disk_evictions,omitempty"`
	// What-if plane: streams served, candidate sets evaluated, streams
	// currently in flight, and concurrency-limit rejections.
	WhatIfs       int64 `json:"whatifs,omitempty"`
	WhatIfSets    int64 `json:"whatif_sets,omitempty"`
	WhatIfActive  int64 `json:"whatif_active,omitempty"`
	WhatIfLimited int64 `json:"whatif_limited,omitempty"`
}

func (s *Server) handleV2TenantStats(w http.ResponseWriter, r *http.Request) {
	ten := tenantFor(r)
	u := s.st.TenantUsage(ten.Name)
	st := s.st.Stats().Tenants[ten.Name]
	tq := s.tc(ten.Name)
	writeJSON(w, TenantStatsResponse{
		Tenant:             ten.Name,
		Authenticated:      ten.Authenticated(),
		ResidentSessions:   u.Resident,
		ResidentBytes:      u.ResidentBytes,
		SpilledSessions:    u.Spilled,
		SpilledBytes:       u.SpilledBytes,
		SpillFileBytes:     u.SpillFileBytes,
		MaxSessions:        ten.MaxSessions,
		MaxBytes:           ten.MaxBytes,
		MaxSpillBytes:      ten.MaxSpillBytes,
		DeletionRowsPerSec: ten.DeletionRowsPerSec,
		Burst:              ten.Capacity(),
		Trains:             tq.trains.Value(),
		Deletes:            tq.deletes.Value(),
		DeleteErrors:       tq.deleteErrors.Value(),
		RowsDeleted:        tq.rowsDeleted.Value(),
		RateLimited:        tq.rateLimited.Value(),
		QuotaRejections:    tq.quotaRejections.Value(),
		BudgetEvictions:    st.BudgetEvictions,
		ExplicitDeletes:    st.ExplicitDeletes,
		DiskEvictions:      st.DiskEvictions,
		WhatIfs:            tq.whatifs.Value(),
		WhatIfSets:         tq.whatifSets.Value(),
		WhatIfActive:       tq.whatifActive.Value(),
		WhatIfLimited:      tq.whatifLimited.Value(),
	})
}

// validateBatchLocked checks one removal batch against the session's bounds
// and cumulative deletion log. Callers hold sess.Mu.
func (s *Server) validateBatchLocked(sess *Session, removed []int) *APIError {
	if len(removed) == 0 {
		return &APIError{Code: ErrCodeInvalidRemovals, Message: "empty removal set"}
	}
	if len(removed) > s.maxRemovals {
		return &APIError{
			Code:    ErrCodeBatchTooLarge,
			Message: fmt.Sprintf("batch of %d removals exceeds the limit of %d", len(removed), s.maxRemovals),
		}
	}
	n := sess.DS.N()
	seen := make(map[int]bool, len(sess.Deleted)+len(removed))
	for _, i := range sess.Deleted {
		seen[i] = true
	}
	for _, i := range removed {
		if i < 0 || i >= n {
			return &APIError{
				Code:    ErrCodeInvalidRemovals,
				Message: fmt.Sprintf("removal index %d out of range [0,%d)", i, n),
			}
		}
		if seen[i] {
			return &APIError{
				Code:    ErrCodeInvalidRemovals,
				Message: fmt.Sprintf("removal index %d is duplicated or already deleted", i),
			}
		}
		seen[i] = true
	}
	return nil
}

// ParamDigest hashes a parameter vector (FNV-1a over the float bits) into a
// short hex token for streaming responses. Exported so clients (priu/client)
// can verify returned parameters against the digest the server computed.
func ParamDigest(params []float64) string {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range params {
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (8 * i))
		}
		_, _ = h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}
