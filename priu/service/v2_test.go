package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newTestServerOpts(t *testing.T, opts ...ServerOption) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(NewServer(opts...).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// v2CreateBody adapts the v1 train-body generator to the v2 create shape.
func v2CreateBody(t *testing.T, family string, n, m int, seed int64) CreateSessionRequest {
	t.Helper()
	kind := family
	if strings.HasSuffix(family, "-opt") {
		kind = strings.TrimSuffix(family, "-opt")
	}
	tb := trainBody(t, kind, n, m, seed)
	return CreateSessionRequest{
		Family: family, Features: tb.Features, Labels: tb.Labels, Classes: tb.Classes,
		Eta: tb.Eta, Lambda: tb.Lambda, BatchSize: tb.BatchSize,
		Iterations: tb.Iterations, Seed: tb.Seed,
	}
}

func v2Create(t *testing.T, baseURL string, req CreateSessionRequest) SessionResponse {
	t.Helper()
	buf, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/v2/sessions", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create session status %d", resp.StatusCode)
	}
	var sr SessionResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return sr
}

func decodeEnvelope(t *testing.T, r io.Reader) ErrorEnvelope {
	t.Helper()
	var env ErrorEnvelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		t.Fatalf("decoding error envelope: %v", err)
	}
	return env
}

func TestV2SessionLifecycle(t *testing.T) {
	ts := newTestServerOpts(t)
	sr := v2Create(t, ts.URL, v2CreateBody(t, "linear", 80, 4, 3))
	if sr.Family != "linear" || len(sr.Parameters) != 4 || !sr.Snapshottable {
		t.Fatalf("bad create response %+v", sr)
	}

	resp, err := http.Get(ts.URL + "/v2/sessions/" + sr.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	var got SessionResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got.SessionID != sr.SessionID || got.FootprintBytes <= 0 {
		t.Fatalf("bad get response %+v", got)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v2/sessions/"+sr.SessionID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d", dresp.StatusCode)
	}

	gresp, err := http.Get(ts.URL + "/v2/sessions/" + sr.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	defer gresp.Body.Close()
	if gresp.StatusCode != http.StatusNotFound {
		t.Fatalf("get after delete status %d", gresp.StatusCode)
	}
	if env := decodeEnvelope(t, gresp.Body); env.Error.Code != ErrCodeNotFound {
		t.Fatalf("error code %q, want %q", env.Error.Code, ErrCodeNotFound)
	}
}

func TestV2ErrorEnvelopes(t *testing.T) {
	ts := newTestServerOpts(t)

	// Malformed JSON body.
	resp, err := http.Post(ts.URL+"/v2/sessions", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON status %d", resp.StatusCode)
	}
	if env := decodeEnvelope(t, resp.Body); env.Error.Code != ErrCodeBadRequest || env.Error.Message == "" {
		t.Fatalf("malformed JSON envelope %+v", env)
	}
	resp.Body.Close()

	// Unknown family.
	body := v2CreateBody(t, "linear", 40, 3, 5)
	body.Family = "quantum"
	resp = postJSON(t, ts.URL+"/v2/sessions", body, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown family status %d", resp.StatusCode)
	}

	// Unknown session on every /v2 session route.
	for _, probe := range []struct{ method, path string }{
		{http.MethodGet, "/v2/sessions/nope"},
		{http.MethodDelete, "/v2/sessions/nope"},
		{http.MethodGet, "/v2/sessions/nope/snapshot"},
		{http.MethodPost, "/v2/sessions/nope/deletions"},
	} {
		req, _ := http.NewRequest(probe.method, ts.URL+probe.path, strings.NewReader("{}"))
		presp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if presp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s %s status %d, want 404", probe.method, probe.path, presp.StatusCode)
		}
		if env := decodeEnvelope(t, presp.Body); env.Error.Code != ErrCodeNotFound {
			t.Fatalf("%s %s error code %q", probe.method, probe.path, env.Error.Code)
		}
		presp.Body.Close()
	}

	// Unknown v2 route.
	rresp, err := http.Get(ts.URL + "/v2/frobnicate")
	if err != nil {
		t.Fatal(err)
	}
	if rresp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown route status %d", rresp.StatusCode)
	}
	if env := decodeEnvelope(t, rresp.Body); env.Error.Code != ErrCodeNotFound {
		t.Fatalf("unknown route code %q", env.Error.Code)
	}
	rresp.Body.Close()

	// v1 keeps its flat string error shape — the envelope is v2-only.
	v1resp := postJSON(t, ts.URL+"/v1/delete", DeleteRequest{SessionID: "nope", Removed: []int{1}}, nil)
	if v1resp.StatusCode != http.StatusNotFound {
		t.Fatalf("v1 unknown session status %d", v1resp.StatusCode)
	}
	v1resp2, err := http.Post(ts.URL+"/v1/delete", "application/json",
		strings.NewReader(`{"session_id":"nope","removed":[1]}`))
	if err != nil {
		t.Fatal(err)
	}
	var flat map[string]any
	if err := json.NewDecoder(v1resp2.Body).Decode(&flat); err != nil {
		t.Fatal(err)
	}
	v1resp2.Body.Close()
	if _, isString := flat["error"].(string); !isString {
		t.Fatalf("v1 error shape changed: %v", flat)
	}
}

// streamBatches drives POST /v2/sessions/{id}/deletions over one connection,
// writing each batch only after the previous response line arrived.
func streamBatches(t *testing.T, url string, batches []string) []string {
	t.Helper()
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, url, pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	type result struct {
		resp *http.Response
		err  error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		done <- result{resp, err}
	}()
	if _, err := io.WriteString(pw, batches[0]+"\n"); err != nil {
		t.Fatal(err)
	}
	res := <-done
	if res.err != nil {
		t.Fatal(res.err)
	}
	defer res.resp.Body.Close()
	if res.resp.StatusCode != http.StatusOK {
		t.Fatalf("deletions stream status %d", res.resp.StatusCode)
	}
	reader := bufio.NewReader(res.resp.Body)
	var lines []string
	for i := range batches {
		line, err := reader.ReadString('\n')
		if err != nil {
			t.Fatalf("reading response line %d: %v", i+1, err)
		}
		lines = append(lines, strings.TrimSpace(line))
		if i+1 < len(batches) {
			if _, err := io.WriteString(pw, batches[i+1]+"\n"); err != nil {
				t.Fatal(err)
			}
		}
	}
	pw.Close()
	return lines
}

func TestV2StreamingDeletions(t *testing.T) {
	ts := newTestServerOpts(t, WithMaxRemovalsPerBatch(5))
	sr := v2Create(t, ts.URL, v2CreateBody(t, "logistic", 120, 4, 7))
	url := ts.URL + "/v2/sessions/" + sr.SessionID + "/deletions"

	// Three valid batches plus one duplicate and one oversize, all on one
	// connection, each answered before the next is sent.
	lines := streamBatches(t, url, []string{
		`{"remove":[1,2,3]}`,
		`{"remove":[10,11]}`,
		`{"remove":[2]}`,                 // already deleted → invalid_removals
		`{"remove":[20,21,22,23,24,25]}`, // 6 > limit 5 → batch_too_large
		`{"remove":[30],"parameters":true}`,
	})
	if len(lines) != 5 {
		t.Fatalf("got %d response lines, want 5", len(lines))
	}

	var r1, r2, r5 DeletionResult
	if err := json.Unmarshal([]byte(lines[0]), &r1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &r2); err != nil {
		t.Fatal(err)
	}
	if r1.Batch != 1 || r1.TotalDeleted != 3 || r1.Digest == "" {
		t.Fatalf("batch 1 result %+v", r1)
	}
	if r2.Batch != 2 || r2.TotalDeleted != 5 {
		t.Fatalf("batch 2 result %+v", r2)
	}
	if r1.Digest == r2.Digest {
		t.Fatal("digests should change across batches")
	}

	var env ErrorEnvelope
	if err := json.Unmarshal([]byte(lines[2]), &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != ErrCodeInvalidRemovals {
		t.Fatalf("duplicate removal code %q", env.Error.Code)
	}
	if err := json.Unmarshal([]byte(lines[3]), &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != ErrCodeBatchTooLarge {
		t.Fatalf("oversize batch code %q", env.Error.Code)
	}

	// The stream survived both errors: batch 5 applied on the same
	// connection, with the cumulative log intact.
	if err := json.Unmarshal([]byte(lines[4]), &r5); err != nil {
		t.Fatal(err)
	}
	if r5.Batch != 5 || r5.TotalDeleted != 6 {
		t.Fatalf("batch 5 result %+v", r5)
	}
	if len(r5.Parameters) != 4 {
		t.Fatalf("batch 5 with parameters:true returned %d parameters", len(r5.Parameters))
	}
	if len(r1.Parameters) != 0 {
		t.Fatalf("batch 1 should not include parameters, got %d", len(r1.Parameters))
	}

	// Empty and out-of-range batches also produce typed errors.
	lines = streamBatches(t, url, []string{`{"remove":[]}`, `{"remove":[999]}`})
	for i, wantCode := range []string{ErrCodeInvalidRemovals, ErrCodeInvalidRemovals} {
		if err := json.Unmarshal([]byte(lines[i]), &env); err != nil {
			t.Fatal(err)
		}
		if env.Error.Code != wantCode {
			t.Fatalf("line %d code %q, want %q", i, env.Error.Code, wantCode)
		}
	}

	// A malformed line terminates the stream with a bad_request envelope.
	lines = streamBatches(t, url, []string{`{"remove": nope}`})
	if err := json.Unmarshal([]byte(lines[0]), &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != ErrCodeBadRequest {
		t.Fatalf("malformed line code %q", env.Error.Code)
	}
}

func TestV2SnapshotRoundTrip(t *testing.T) {
	tsA := newTestServerOpts(t)
	tsB := newTestServerOpts(t)
	sr := v2Create(t, tsA.URL, v2CreateBody(t, "multinomial", 90, 4, 13))

	// Apply a deletion before snapshotting: the log must ride along so the
	// restored session keeps honoring it.
	preLines := streamBatches(t, tsA.URL+"/v2/sessions/"+sr.SessionID+"/deletions", []string{`{"remove":[7,8]}`})
	var pre DeletionResult
	if err := json.Unmarshal([]byte(preLines[0]), &pre); err != nil {
		t.Fatal(err)
	}

	// Export a snapshot of the captured provenance.
	snapResp, err := http.Get(tsA.URL + "/v2/sessions/" + sr.SessionID + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	if snapResp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status %d", snapResp.StatusCode)
	}
	if got := snapResp.Header.Get("X-Priu-Family"); got != "multinomial" {
		t.Fatalf("snapshot family header %q", got)
	}
	snap, err := io.ReadAll(snapResp.Body)
	snapResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) == 0 {
		t.Fatal("empty snapshot")
	}

	// Restore on a fresh server.
	restResp, err := http.Post(tsB.URL+"/v2/sessions", "application/octet-stream", bytes.NewReader(snap))
	if err != nil {
		t.Fatal(err)
	}
	var restored SessionResponse
	if err := json.NewDecoder(restResp.Body).Decode(&restored); err != nil {
		t.Fatal(err)
	}
	restResp.Body.Close()
	if restResp.StatusCode != http.StatusCreated {
		t.Fatalf("restore status %d", restResp.StatusCode)
	}
	if restored.Family != "multinomial" || !restored.RestoredFromSnp {
		t.Fatalf("restore response %+v", restored)
	}
	if restored.TotalDeleted != 2 {
		t.Fatalf("restored session lost the deletion log: total_deleted = %d, want 2", restored.TotalDeleted)
	}
	if got := ParamDigest(restored.Parameters); got != pre.Digest {
		t.Fatalf("restored parameters digest %s, want post-deletion %s", got, pre.Digest)
	}

	// The restored session must produce the same further update as the
	// original (cumulative on top of the replayed log).
	removal := `{"remove":[3,17,42]}`
	lineA := streamBatches(t, tsA.URL+"/v2/sessions/"+sr.SessionID+"/deletions", []string{removal})
	lineB := streamBatches(t, tsB.URL+"/v2/sessions/"+restored.SessionID+"/deletions", []string{removal})
	var ra, rb DeletionResult
	if err := json.Unmarshal([]byte(lineA[0]), &ra); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lineB[0]), &rb); err != nil {
		t.Fatal(err)
	}
	if ra.Digest != rb.Digest {
		t.Fatalf("restored update digest %s differs from original %s", rb.Digest, ra.Digest)
	}

	// A corrupted snapshot fails closed (header/structure corruption; float
	// payload bits are covered by the dataset fingerprint, not a checksum).
	bad := append([]byte(nil), snap...)
	bad[2] ^= 0xff
	badResp, err := http.Post(tsB.URL+"/v2/sessions", "application/octet-stream", bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	defer badResp.Body.Close()
	if badResp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt snapshot status %d", badResp.StatusCode)
	}
}

func TestSessionEviction(t *testing.T) {
	ts := newTestServerOpts(t, WithMaxSessions(2))
	var ids []string
	for i := 0; i < 2; i++ {
		var tr TrainResponse
		postJSON(t, ts.URL+"/v1/train", trainBody(t, "linear", 50, 3, int64(20+i)), &tr)
		ids = append(ids, tr.SessionID)
	}
	// Touch the first session so the second becomes the LRU victim.
	mresp, err := http.Get(ts.URL + "/v1/model/" + ids[0])
	if err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()

	var tr3 TrainResponse
	postJSON(t, ts.URL+"/v1/train", trainBody(t, "linear", 50, 3, 23), &tr3)

	if resp, _ := http.Get(ts.URL + "/v1/model/" + ids[1]); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("LRU session %s should be evicted, got status %d", ids[1], resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	for _, id := range []string{ids[0], tr3.SessionID} {
		resp, err := http.Get(ts.URL + "/v1/model/" + id)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("session %s should survive eviction, got %d", id, resp.StatusCode)
		}
	}

	var stats StatsResponse
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if stats.Evictions != 1 {
		t.Fatalf("stats evictions = %d, want 1", stats.Evictions)
	}
	if stats.Sessions != 2 {
		t.Fatalf("stats sessions = %d, want 2", stats.Sessions)
	}
	if stats.ResidentBytes <= 0 {
		t.Fatalf("resident bytes = %d", stats.ResidentBytes)
	}
}

func TestByteBudgetEviction(t *testing.T) {
	// A 1-byte budget forces every registration to evict all predecessors
	// (the newest session itself is never evicted).
	ts := newTestServerOpts(t, WithMaxBytes(1))
	for i := 0; i < 3; i++ {
		var tr TrainResponse
		resp := postJSON(t, ts.URL+"/v1/train", trainBody(t, "linear", 40, 3, int64(30+i)), &tr)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("train %d status %d", i, resp.StatusCode)
		}
	}
	var stats StatsResponse
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if stats.Sessions != 1 {
		t.Fatalf("sessions = %d, want 1", stats.Sessions)
	}
	if stats.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2", stats.Evictions)
	}
}

func TestHealthz(t *testing.T) {
	ts := newTestServerOpts(t, WithMaxSessions(100))
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Version == "" || h.Workers < 1 || h.Shards != numShards || h.MaxSessions != 100 {
		t.Fatalf("health response %+v", h)
	}
}

func TestV2OptFamiliesServable(t *testing.T) {
	// The registry makes the PrIU-opt families servable with zero service
	// code, and since their eigen state persists (rebuilt on load) they are
	// snapshottable like the base families: export one, restore it on a
	// fresh server, and check the further update digests agree.
	ts := newTestServerOpts(t)
	sr := v2Create(t, ts.URL, v2CreateBody(t, "linear-opt", 60, 3, 17))
	if !sr.Snapshottable {
		t.Fatal("linear-opt should be snapshottable")
	}
	line := streamBatches(t, ts.URL+"/v2/sessions/"+sr.SessionID+"/deletions", []string{`{"remove":[2,4]}`})
	var dr DeletionResult
	if err := json.Unmarshal([]byte(line[0]), &dr); err != nil {
		t.Fatal(err)
	}
	if dr.TotalDeleted != 2 {
		t.Fatalf("opt-family deletion result %+v", dr)
	}

	snapResp, err := http.Get(ts.URL + "/v2/sessions/" + sr.SessionID + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	if snapResp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot of linear-opt status %d, want 200", snapResp.StatusCode)
	}
	snap, err := io.ReadAll(snapResp.Body)
	snapResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}

	tsB := newTestServerOpts(t)
	restResp, err := http.Post(tsB.URL+"/v2/sessions", "application/octet-stream", bytes.NewReader(snap))
	if err != nil {
		t.Fatal(err)
	}
	var restored SessionResponse
	if err := json.NewDecoder(restResp.Body).Decode(&restored); err != nil {
		t.Fatal(err)
	}
	restResp.Body.Close()
	if restResp.StatusCode != http.StatusCreated || restored.Family != "linear-opt" {
		t.Fatalf("restore status %d response %+v", restResp.StatusCode, restored)
	}
	if restored.TotalDeleted != 2 {
		t.Fatalf("restored opt session lost the deletion log: total_deleted = %d", restored.TotalDeleted)
	}
	removal := `{"remove":[7,9]}`
	lineA := streamBatches(t, ts.URL+"/v2/sessions/"+sr.SessionID+"/deletions", []string{removal})
	lineB := streamBatches(t, tsB.URL+"/v2/sessions/"+restored.SessionID+"/deletions", []string{removal})
	var ra, rb DeletionResult
	if err := json.Unmarshal([]byte(lineA[0]), &ra); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lineB[0]), &rb); err != nil {
		t.Fatal(err)
	}
	if ra.Digest != rb.Digest {
		t.Fatalf("restored opt update digest %s differs from original %s", rb.Digest, ra.Digest)
	}
}

func TestV2SparseCSRUpload(t *testing.T) {
	// A sparse-logistic session created from a CSR JSON body (no pre-built
	// snapshot) must train, serve deletions, and export a snapshot.
	ts := newTestServerOpts(t)
	const cols = 30
	sr := v2Create(t, ts.URL, csrCreateBody(t, 60, cols, 42))
	if sr.Family != "sparse-logistic" || len(sr.Parameters) != cols || !sr.Snapshottable {
		t.Fatalf("bad CSR create response %+v", sr)
	}

	line := streamBatches(t, ts.URL+"/v2/sessions/"+sr.SessionID+"/deletions", []string{`{"remove":[3,11]}`})
	var dr DeletionResult
	if err := json.Unmarshal([]byte(line[0]), &dr); err != nil {
		t.Fatal(err)
	}
	if dr.TotalDeleted != 2 {
		t.Fatalf("CSR session deletion result %+v", dr)
	}

	// Malformed CSR shapes get typed errors.
	bad := []CreateSessionRequest{
		{Family: "sparse-logistic"}, // no CSR body
		{Family: "sparse-logistic", Cols: cols, Indptr: []int{0, 2}, Indices: []int{1}, Values: []float64{1, 2}, Labels: []float64{1}},           // indices/values mismatch
		{Family: "sparse-logistic", Cols: cols, Indptr: []int{0, 2, 1}, Indices: []int{1, 2}, Values: []float64{1, 2}, Labels: []float64{1, -1}}, // non-monotonic indptr
		{Family: "sparse-logistic", Cols: 0, Indptr: []int{0, 1}, Indices: []int{0}, Values: []float64{1}, Labels: []float64{1}},                 // zero cols
		{Family: "sparse-logistic", Cols: cols, Indptr: []int{0, 1}, Indices: []int{cols + 5}, Values: []float64{1}, Labels: []float64{1}},       // out-of-range column
		{Family: "linear", Indptr: []int{0, 1}, Indices: []int{0}, Values: []float64{1}, Labels: []float64{1}},                                   // CSR body for a dense family
	}
	for i, b := range bad {
		resp := postJSON(t, ts.URL+"/v2/sessions", b, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad CSR case %d: status %d, want 400", i, resp.StatusCode)
		}
	}
}
