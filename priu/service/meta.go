package service

import (
	"net/http"

	"repro/priu"
	"repro/priu/store"
)

// GET /v2/meta: server capability discovery — version, registered model
// families, which optional features this deployment enables (auth mode,
// disk spill tier, what-if plane) and the request limits a client should
// shape its traffic to. Clients probe it once instead of feature-detecting
// endpoint by endpoint; the v1 Deprecation/Sunset headers point here.

// String renders the auth mode for /v2/meta.
func (m AuthMode) String() string {
	switch m {
	case AuthOptional:
		return "optional"
	case AuthRequired:
		return "required"
	default:
		return "off"
	}
}

// v1Sunset is the advertised retirement date of the /v1 surface (an RFC 9110
// HTTP-date, carried in the Sunset header of every v1 response).
const v1Sunset = "Thu, 01 Jul 2027 00:00:00 GMT"

// deprecateV1 marks a v1 response as deprecated: Deprecation (RFC 9745),
// Sunset (RFC 8594) and a successor-version link to the v2 discovery
// endpoint. The v1 bodies are unchanged — existing callers keep working
// until the sunset date.
func deprecateV1(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Sunset", v1Sunset)
		w.Header().Set("Link", `</v2/meta>; rel="successor-version"`)
		h(w, r)
	}
}

// MetaFeatures reports which optional subsystems the deployment enables.
type MetaFeatures struct {
	// AuthMode is "off", "optional" or "required".
	AuthMode string `json:"auth_mode"`
	// Spill reports whether evicted sessions survive in a disk tier
	// (-store-dir) instead of being dropped.
	Spill bool `json:"spill"`
	// WhatIf reports the what-if query plane
	// (POST /v2/sessions/{id}/whatif).
	WhatIf bool `json:"whatif"`
	// Blob reports a shared blob spill tier (-blob): any replica can
	// restore any spilled session.
	Blob bool `json:"blob"`
	// Fleet reports replica-fleet routing (-peers): requests for sessions
	// owned elsewhere are redirected or proxied to the owner.
	Fleet bool `json:"fleet"`
}

// MetaLimits reports the request limits callers should shape traffic to.
type MetaLimits struct {
	MaxSessions         int   `json:"max_sessions,omitempty"`
	MaxBytes            int64 `json:"max_bytes,omitempty"`
	MaxRemovalsPerBatch int   `json:"max_removals_per_batch"`
	// WhatIfWorkers is the per-batch what-if evaluation fan-out (0 = the
	// shared worker-pool width).
	WhatIfWorkers int `json:"whatif_workers,omitempty"`
	// WhatIfConcurrent caps one tenant's concurrent what-if streams (0 =
	// uncapped).
	WhatIfConcurrent int `json:"whatif_concurrent_per_tenant,omitempty"`
}

// MetaV1 describes the deprecated v1 surface's retirement schedule.
type MetaV1 struct {
	Deprecated bool   `json:"deprecated"`
	Sunset     string `json:"sunset"`
}

// MetaCluster describes the fleet this node belongs to: its own advertised
// URL, the configured member list, the members it currently believes alive,
// and the placement-ring epoch. Clients use Node/Peers to route
// session-affine traffic and RingVersion to detect membership churn.
type MetaCluster struct {
	Node        string   `json:"node"`
	Peers       []string `json:"peers"`
	Alive       []string `json:"alive"`
	RingVersion uint64   `json:"ring_version"`
}

// MetaResponse is the GET /v2/meta payload.
type MetaResponse struct {
	Version  string       `json:"version"`
	Families []string     `json:"families"`
	Features MetaFeatures `json:"features"`
	Limits   MetaLimits   `json:"limits"`
	// Cluster is only present on fleet members (-peers).
	Cluster *MetaCluster `json:"cluster,omitempty"`
	V1      MetaV1       `json:"v1"`
}

func (s *Server) handleV2Meta(w http.ResponseWriter, r *http.Request) {
	_, tiered := s.st.(*store.Tiered)
	resp := MetaResponse{
		Version:  priu.Version,
		Families: priu.Families(),
		Features: MetaFeatures{
			AuthMode: s.authMode.String(),
			Spill:    tiered,
			WhatIf:   true,
			Blob:     s.st.Stats().BlobTier,
			Fleet:    s.cluster != nil,
		},
		Limits: MetaLimits{
			MaxSessions:         s.maxSessions,
			MaxBytes:            s.maxBytes,
			MaxRemovalsPerBatch: s.maxRemovals,
			WhatIfWorkers:       s.whatifWorkers,
			WhatIfConcurrent:    s.whatifLimit,
		},
		V1: MetaV1{Deprecated: true, Sunset: v1Sunset},
	}
	if s.cluster != nil {
		ring := s.cluster.Ring()
		resp.Cluster = &MetaCluster{
			Node:        s.cluster.Self(),
			Peers:       s.cluster.Peers(),
			Alive:       ring.Nodes(),
			RingVersion: ring.Version(),
		}
	}
	writeJSON(w, resp)
}
