package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"testing"
)

// whatifLine is the union of every NDJSON line shape a what-if stream can
// produce: a per-set result, a per-set error envelope, or the trailing
// summary (their JSON fields do not overlap).
type whatifLine struct {
	Error *APIError `json:"error"`

	Set          int       `json:"set"`
	RowsRemoved  int       `json:"rows_removed"`
	TotalDeleted int       `json:"total_deleted"`
	EvalSeconds  float64   `json:"eval_seconds"`
	Digest       string    `json:"digest"`
	Parameters   []float64 `json:"parameters"`

	Summary     bool  `json:"summary"`
	Sets        int   `json:"sets"`
	Evaluated   int   `json:"evaluated"`
	Errors      int   `json:"errors"`
	CacheHits   int64 `json:"cache_hits"`
	Incremental bool  `json:"incremental"`
}

// whatifBatch POSTs one JSON what-if batch and decodes the full NDJSON
// response: per-set lines in request order, then the summary.
func whatifBatch(t *testing.T, baseURL, sessionID string, req WhatIfRequest) ([]whatifLine, whatifLine) {
	t.Helper()
	buf, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/v2/sessions/"+sessionID+"/whatif", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("whatif status %d", resp.StatusCode)
	}
	var lines []whatifLine
	dec := json.NewDecoder(resp.Body)
	for {
		var ln whatifLine
		if err := dec.Decode(&ln); err != nil {
			if err == io.EOF {
				break
			}
			t.Fatal(err)
		}
		lines = append(lines, ln)
	}
	if len(lines) != len(req.Sets)+1 {
		t.Fatalf("got %d lines for %d sets (want sets+summary)", len(lines), len(req.Sets))
	}
	last := lines[len(lines)-1]
	if !last.Summary {
		t.Fatalf("last line is not the summary: %+v", last)
	}
	return lines[:len(lines)-1], last
}

// v1Delete commits one removal batch through /v1/delete and returns the
// updated parameters.
func v1Delete(t *testing.T, baseURL, sessionID string, removed []int) []float64 {
	t.Helper()
	body, _ := json.Marshal(DeleteRequest{SessionID: sessionID, Removed: removed})
	resp, err := http.Post(baseURL+"/v1/delete", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("v1 delete status %d", resp.StatusCode)
	}
	var dr DeleteResponse
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		t.Fatal(err)
	}
	return dr.Parameters
}

func getSession(t *testing.T, baseURL, id string) SessionResponse {
	t.Helper()
	resp, err := http.Get(baseURL + "/v2/sessions/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get session status %d", resp.StatusCode)
	}
	var sr SessionResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return sr
}

// TestV2WhatIfBatchBitwise: a what-if batch's digests are bitwise-identical
// to actually committing the same sets on identically trained sessions, the
// shared-prefix planner reports cache hits, and the live session is
// untouched.
func TestV2WhatIfBatchBitwise(t *testing.T) {
	ts := newTestServerOpts(t)
	body := v2CreateBody(t, "linear-opt", 120, 5, 3)
	sr := v2Create(t, ts.URL, body)
	liveDigest := ParamDigest(sr.Parameters)

	sets := [][]int{
		{3, 17, 42},
		{3, 17, 42, 60}, // extends the first: full prefix reuse
		{3, 17, 55},     // diverges after {3, 17}
		{3, 17, 42},     // duplicate: memoized
	}
	results, summary := whatifBatch(t, ts.URL, sr.SessionID, WhatIfRequest{Sets: sets})
	if !summary.Incremental {
		t.Fatal("linear-opt should evaluate on the incremental cursor")
	}
	if summary.Evaluated != 4 || summary.Errors != 0 {
		t.Fatalf("summary %+v, want 4 evaluated / 0 errors", summary)
	}
	if summary.CacheHits < 8 {
		t.Fatalf("cache hits = %d, want >= 8 (shared prefixes reused)", summary.CacheHits)
	}
	if results[0].Digest != results[3].Digest {
		t.Fatal("duplicate set produced a different digest")
	}
	for i, r := range results {
		if r.RowsRemoved != len(sets[i]) || r.TotalDeleted != len(sets[i]) {
			t.Fatalf("set %d: rows_removed=%d total_deleted=%d, want %d", i, r.RowsRemoved, r.TotalDeleted, len(sets[i]))
		}
	}

	// Commit each distinct set on a separate, identically trained session:
	// the committed parameters must hash to the what-if digest exactly.
	for _, i := range []int{0, 1, 2} {
		clone := v2Create(t, ts.URL, body)
		committed := v1Delete(t, ts.URL, clone.SessionID, sets[i])
		if got := ParamDigest(committed); got != results[i].Digest {
			t.Fatalf("set %d: committed digest %s != what-if digest %s", i, got, results[i].Digest)
		}
	}

	// The live session is untouched: no deletions recorded, parameters
	// bit-for-bit what training produced.
	after := getSession(t, ts.URL, sr.SessionID)
	if after.TotalDeleted != 0 {
		t.Fatalf("live session total_deleted = %d after what-ifs, want 0", after.TotalDeleted)
	}
	if got := ParamDigest(after.Parameters); got != liveDigest {
		t.Fatalf("live parameters changed: %s != %s", got, liveDigest)
	}

	// Stats gauges moved.
	st := getStats(t, ts.URL)
	if st.WhatIfs < 1 || st.WhatIfSets < 4 || st.WhatIfCacheHits < 8 {
		t.Fatalf("whatif gauges %d/%d/%d, want >=1/>=4/>=8", st.WhatIfs, st.WhatIfSets, st.WhatIfCacheHits)
	}
}

func getStats(t *testing.T, baseURL string) StatsResponse {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestV2WhatIfOnTopOfCommittedDeletions: candidates evaluate on top of the
// session's committed log, matching a clone that commits the sorted union as
// one batch.
func TestV2WhatIfOnTopOfCommittedDeletions(t *testing.T) {
	ts := newTestServerOpts(t)
	body := v2CreateBody(t, "linear-opt", 100, 4, 9)
	sr := v2Create(t, ts.URL, body)
	v1Delete(t, ts.URL, sr.SessionID, []int{0, 1, 2})

	results, _ := whatifBatch(t, ts.URL, sr.SessionID, WhatIfRequest{Sets: [][]int{{7, 30}}})
	if results[0].Error != nil {
		t.Fatalf("whatif error: %+v", results[0].Error)
	}
	if results[0].TotalDeleted != 5 {
		t.Fatalf("total_deleted = %d, want 5 (3 committed + 2 candidate)", results[0].TotalDeleted)
	}
	clone := v2Create(t, ts.URL, body)
	committed := v1Delete(t, ts.URL, clone.SessionID, []int{0, 1, 2, 7, 30})
	if got := ParamDigest(committed); got != results[0].Digest {
		t.Fatalf("committed-union digest %s != what-if digest %s", got, results[0].Digest)
	}
	if after := getSession(t, ts.URL, sr.SessionID); after.TotalDeleted != 3 {
		t.Fatalf("live log grew to %d, want 3", after.TotalDeleted)
	}
}

// TestV2WhatIfErrorPaths: unknown sessions, malformed bodies, and invalid
// sets (empty, duplicate, out-of-range, already-deleted) report typed errors;
// per-set errors do not abort the stream.
func TestV2WhatIfErrorPaths(t *testing.T) {
	ts := newTestServerOpts(t)

	// Unknown session: typed 404 before any streaming.
	resp, err := http.Post(ts.URL+"/v2/sessions/nope/whatif", "application/json", strings.NewReader(`{"sets":[[1]]}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown session status %d", resp.StatusCode)
	}
	if env := decodeEnvelope(t, resp.Body); env.Error.Code != ErrCodeNotFound {
		t.Fatalf("error code %q, want %q", env.Error.Code, ErrCodeNotFound)
	}
	resp.Body.Close()

	sr := v2Create(t, ts.URL, v2CreateBody(t, "linear", 60, 3, 4))
	v1Delete(t, ts.URL, sr.SessionID, []int{9})

	// Malformed body: typed 400.
	resp, err = http.Post(ts.URL+"/v2/sessions/"+sr.SessionID+"/whatif", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body status %d", resp.StatusCode)
	}
	if env := decodeEnvelope(t, resp.Body); env.Error.Code != ErrCodeBadRequest {
		t.Fatalf("error code %q, want %q", env.Error.Code, ErrCodeBadRequest)
	}
	resp.Body.Close()

	// No sets at all: typed 400.
	resp, err = http.Post(ts.URL+"/v2/sessions/"+sr.SessionID+"/whatif", "application/json", strings.NewReader(`{"sets":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("no-sets status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Invalid sets report per-set errors; the valid set still evaluates.
	results, summary := whatifBatch(t, ts.URL, sr.SessionID, WhatIfRequest{Sets: [][]int{
		{},       // empty
		{5, 5},   // duplicate within the set
		{100000}, // out of range
		{9},      // already committed
		{3, 7},   // valid
	}})
	for i, wantCode := range []string{ErrCodeInvalidRemovals, ErrCodeInvalidRemovals, ErrCodeInvalidRemovals, ErrCodeInvalidRemovals, ""} {
		if wantCode == "" {
			if results[i].Error != nil {
				t.Fatalf("set %d: unexpected error %+v", i, results[i].Error)
			}
			continue
		}
		if results[i].Error == nil || results[i].Error.Code != wantCode {
			t.Fatalf("set %d: error %+v, want code %q", i, results[i].Error, wantCode)
		}
	}
	if summary.Evaluated != 1 || summary.Errors != 4 {
		t.Fatalf("summary %+v, want 1 evaluated / 4 errors", summary)
	}

	// Wrong method: typed 405 with Allow.
	gresp, err := http.Get(ts.URL + "/v2/sessions/" + sr.SessionID + "/whatif")
	if err != nil {
		t.Fatal(err)
	}
	defer gresp.Body.Close()
	if gresp.StatusCode != http.StatusMethodNotAllowed || gresp.Header.Get("Allow") != "POST" {
		t.Fatalf("GET whatif: status %d allow %q", gresp.StatusCode, gresp.Header.Get("Allow"))
	}
}

// TestV2WhatIfStreamingAndGone: NDJSON mode answers set by set on one
// connection, keeps the prefix tree across lines, and terminates with a typed
// "gone" line when the session is deleted mid-stream.
func TestV2WhatIfStreamingAndGone(t *testing.T) {
	ts := newTestServerOpts(t)
	sr := v2Create(t, ts.URL, v2CreateBody(t, "linear-opt", 90, 4, 5))

	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v2/sessions/"+sr.SessionID+"/whatif", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	type opened struct {
		resp *http.Response
		err  error
	}
	done := make(chan opened, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		done <- opened{resp, err}
	}()
	if _, err := io.WriteString(pw, `{"remove":[2,8]}`+"\n"); err != nil {
		t.Fatal(err)
	}
	open := <-done
	if open.err != nil {
		t.Fatal(open.err)
	}
	defer open.resp.Body.Close()
	if open.resp.StatusCode != http.StatusOK {
		t.Fatalf("whatif stream status %d", open.resp.StatusCode)
	}
	br := bufio.NewReader(open.resp.Body)
	readLine := func() whatifLine {
		t.Helper()
		raw, err := br.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		var ln whatifLine
		if err := json.Unmarshal([]byte(raw), &ln); err != nil {
			t.Fatal(err)
		}
		return ln
	}
	first := readLine()
	if first.Error != nil || first.Digest == "" {
		t.Fatalf("first set: %+v", first)
	}
	// A second overlapping set on the same connection reuses the tree.
	if _, err := io.WriteString(pw, `{"remove":[2,8,20]}`+"\n"); err != nil {
		t.Fatal(err)
	}
	second := readLine()
	if second.Error != nil || second.TotalDeleted != 3 {
		t.Fatalf("second set: %+v", second)
	}

	// Delete the session out from under the stream: the next set reports the
	// typed "gone" code and the stream ends with the summary.
	dreq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v2/sessions/"+sr.SessionID, nil)
	dresp, err := http.DefaultClient.Do(dreq)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("mid-stream delete status %d", dresp.StatusCode)
	}
	if _, err := io.WriteString(pw, `{"remove":[30]}`+"\n"); err != nil {
		t.Fatal(err)
	}
	goneLine := readLine()
	if goneLine.Error == nil || goneLine.Error.Code != ErrCodeGone {
		t.Fatalf("after delete: %+v, want code %q", goneLine, ErrCodeGone)
	}
	summary := readLine()
	if !summary.Summary || summary.CacheHits < 2 {
		t.Fatalf("summary %+v, want summary line with >=2 cache hits", summary)
	}
	pw.Close()
}

// TestV2WhatIfConcurrencyLimit: a tenant over its concurrent-what-if cap gets
// a typed 429 and can proceed once the in-flight stream finishes.
func TestV2WhatIfConcurrencyLimit(t *testing.T) {
	ts := newTestServerOpts(t, WithWhatIfLimit(1))
	sr := v2Create(t, ts.URL, v2CreateBody(t, "linear", 60, 3, 6))

	// Hold one NDJSON stream open (it occupies the tenant's single slot for
	// the whole connection).
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v2/sessions/"+sr.SessionID+"/whatif", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	type opened struct {
		resp *http.Response
		err  error
	}
	done := make(chan opened, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		done <- opened{resp, err}
	}()
	if _, err := io.WriteString(pw, `{"remove":[1]}`+"\n"); err != nil {
		t.Fatal(err)
	}
	open := <-done
	if open.err != nil {
		t.Fatal(open.err)
	}
	if open.resp.StatusCode != http.StatusOK {
		t.Fatalf("first stream status %d", open.resp.StatusCode)
	}
	br := bufio.NewReader(open.resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatal(err)
	}

	// A second what-if while the first is open: typed 429.
	resp, err := http.Post(ts.URL+"/v2/sessions/"+sr.SessionID+"/whatif", "application/json", strings.NewReader(`{"sets":[[2]]}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("over-limit response missing Retry-After")
	}
	if env := decodeEnvelope(t, resp.Body); env.Error.Code != ErrCodeWhatIfLimited {
		t.Fatalf("error code %q, want %q", env.Error.Code, ErrCodeWhatIfLimited)
	}
	resp.Body.Close()

	// Release the slot; the next what-if is admitted.
	pw.Close()
	io.Copy(io.Discard, br)
	open.resp.Body.Close()
	if _, summary := whatifBatch(t, ts.URL, sr.SessionID, WhatIfRequest{Sets: [][]int{{2}}}); summary.Evaluated != 1 {
		t.Fatalf("post-release summary %+v", summary)
	}

	st := tenantStats(t, ts.URL)
	if st.WhatIfLimited < 1 {
		t.Fatalf("whatif_limited = %d, want >= 1", st.WhatIfLimited)
	}
}

func tenantStats(t *testing.T, baseURL string) TenantStatsResponse {
	t.Helper()
	resp, err := http.Get(baseURL + "/v2/tenants/self/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st TenantStatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestV2WhatIfPropertyLiveUntouched is the randomized property test: 100
// what-if evaluations from concurrent streams leave the live session's
// parameters, digest and deletion log bit-for-bit unchanged, and a spot-check
// set matches committing the same union on a snapshot-cloned session.
func TestV2WhatIfPropertyLiveUntouched(t *testing.T) {
	ts := newTestServerOpts(t)
	sr := v2Create(t, ts.URL, v2CreateBody(t, "linear-opt", 100, 4, 11))
	// A committed baseline with the lowest ids keeps the cumulative log
	// ascending, so union digests are comparable against one-batch commits.
	v1Delete(t, ts.URL, sr.SessionID, []int{0, 1, 2})
	before := getSession(t, ts.URL, sr.SessionID)
	beforeDigest := ParamDigest(before.Parameters)

	// Clone the session through the snapshot plane before the what-ifs: the
	// clone's committed log replays to the same state.
	snap, err := http.Get(ts.URL + "/v2/sessions/" + sr.SessionID + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(snap.Body)
	snap.Body.Close()
	if err != nil || snap.StatusCode != http.StatusOK {
		t.Fatalf("snapshot export: status %d err %v", snap.StatusCode, err)
	}
	rresp, err := http.Post(ts.URL+"/v2/sessions", "application/octet-stream", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var clone SessionResponse
	if err := json.NewDecoder(rresp.Body).Decode(&clone); err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()

	const (
		goroutines = 4
		perG       = 25
	)
	type sample struct {
		candidate []int
		digest    string
	}
	samples := make([]sample, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 100))
			for k := 0; k < perG; k++ {
				picked := map[int]bool{}
				for len(picked) < 1+rng.Intn(3) {
					picked[3+rng.Intn(97)] = true // ids above the committed log
				}
				candidate := make([]int, 0, len(picked))
				for id := range picked {
					candidate = append(candidate, id)
				}
				sort.Ints(candidate)
				body, _ := json.Marshal(WhatIfRequest{Sets: [][]int{candidate}})
				resp, err := http.Post(ts.URL+"/v2/sessions/"+sr.SessionID+"/whatif", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				dec := json.NewDecoder(resp.Body)
				var res, summary whatifLine
				if err := dec.Decode(&res); err != nil {
					t.Error(err)
					resp.Body.Close()
					return
				}
				_ = dec.Decode(&summary)
				resp.Body.Close()
				if res.Error != nil {
					t.Errorf("goroutine %d set %v: %+v", g, candidate, res.Error)
					return
				}
				samples[g] = sample{candidate, res.Digest}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Live session: parameters and log bit-for-bit unchanged after 100
	// what-ifs.
	after := getSession(t, ts.URL, sr.SessionID)
	if after.TotalDeleted != before.TotalDeleted {
		t.Fatalf("deletion log moved: %d -> %d", before.TotalDeleted, after.TotalDeleted)
	}
	if got := ParamDigest(after.Parameters); got != beforeDigest {
		t.Fatalf("live parameters changed under what-ifs: %s != %s", got, beforeDigest)
	}

	// Spot-check: committing one sampled candidate on the clone reproduces
	// the what-if digest exactly.
	s := samples[0]
	committed := v1Delete(t, ts.URL, clone.SessionID, s.candidate)
	if got := ParamDigest(committed); got != s.digest {
		t.Fatalf("clone-committed digest %s != what-if digest %s for %v", got, s.digest, s.candidate)
	}
}

// TestV2WhatIfFallbackFamily: a family without the incremental capability
// still answers what-ifs (pure replay), flagged in the summary.
func TestV2WhatIfFallbackFamily(t *testing.T) {
	ts := newTestServerOpts(t)
	body := v2CreateBody(t, "logistic", 80, 4, 7)
	sr := v2Create(t, ts.URL, body)
	results, summary := whatifBatch(t, ts.URL, sr.SessionID, WhatIfRequest{Sets: [][]int{{4, 40}}})
	if summary.Incremental {
		t.Fatal("base logistic should report the replay fallback")
	}
	clone := v2Create(t, ts.URL, body)
	committed := v1Delete(t, ts.URL, clone.SessionID, []int{4, 40})
	if got := ParamDigest(committed); got != results[0].Digest {
		t.Fatalf("replay digest %s != committed %s", got, results[0].Digest)
	}
}
