package service

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/priu/store"
)

// newTieredServer boots a server on a tiered store over dir, returning the
// test server and the store (whose Close is the SIGTERM drain). The default
// lifecycle applies: the write-behind queue snapshots sessions eagerly in
// the background, so the crash suite exercises the async path. Close is
// idempotent, so tests may also drain explicitly mid-test.
func newTieredServer(t *testing.T, dir string, opts ...ServerOption) (*httptest.Server, store.Store) {
	t.Helper()
	ti, err := store.NewTiered(dir, store.NewMemory())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ti.Close() })
	srv := NewServer(append(opts, WithStore(ti))...)
	ts := httptest.NewServer(srv.Handler())
	return ts, ti
}

// csrCreateBody builds a deterministic sparse-logistic CSR create request.
func csrCreateBody(t *testing.T, n, cols int, seed int64) CreateSessionRequest {
	t.Helper()
	req := CreateSessionRequest{
		Family: "sparse-logistic", Cols: cols,
		Eta: 0.05, Lambda: 0.01, BatchSize: 15, Iterations: 30, Seed: seed,
	}
	rng := rand.New(rand.NewSource(seed))
	truth := make([]float64, cols)
	for j := range truth {
		truth[j] = rng.NormFloat64()
	}
	req.Indptr = append(req.Indptr, 0)
	for i := 0; i < n; i++ {
		var dot float64
		for k := 0; k < 4; k++ {
			col := (i*4 + k*7) % cols
			val := rng.NormFloat64()
			req.Indices = append(req.Indices, col)
			req.Values = append(req.Values, val)
			dot += val * truth[col]
		}
		req.Indptr = append(req.Indptr, len(req.Values))
		if dot >= 0 {
			req.Labels = append(req.Labels, 1)
		} else {
			req.Labels = append(req.Labels, -1)
		}
	}
	return req
}

func getModel(t *testing.T, baseURL, id string) (ModelResponse, int) {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/model/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var mr ModelResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
			t.Fatal(err)
		}
	}
	return mr, resp.StatusCode
}

// TestCrashRestartDurability is the acceptance check of the tiered store:
// train sessions of all seven engine families, delete rows, hard-stop the
// server (the store's Close is exactly what the SIGTERM handler runs — no
// graceful HTTP drain), boot a fresh server on the same directory, and
// require every model bitwise-identical and every honored deletion still
// deleted.
func TestCrashRestartDurability(t *testing.T) {
	dir := t.TempDir()
	tsA, stA := newTieredServer(t, dir)

	families := []string{
		"linear", "logistic", "multinomial",
		"linear-opt", "logistic-opt", "multinomial-opt",
	}
	type tracked struct {
		id      string
		kind    string
		params  []float64
		deleted int
	}
	var sessions []tracked
	for i, family := range families {
		sr := v2Create(t, tsA.URL, v2CreateBody(t, family, 80, 4, int64(60+i)))
		sessions = append(sessions, tracked{id: sr.SessionID, kind: family})
	}
	// Sparse-logistic arrives through the CSR upload path.
	sr := v2Create(t, tsA.URL, csrCreateBody(t, 60, 30, 77))
	sessions = append(sessions, tracked{id: sr.SessionID, kind: "sparse-logistic"})

	// Mid-traffic: interleaved deletions across every session.
	var wg sync.WaitGroup
	for i := range sessions {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var dr DeleteResponse
			resp := postJSON(t, tsA.URL+"/v1/delete",
				DeleteRequest{SessionID: sessions[i].id, Removed: []int{2, 7}}, &dr)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("%s delete status %d", sessions[i].kind, resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for i := range sessions {
		mr, code := getModel(t, tsA.URL, sessions[i].id)
		if code != http.StatusOK {
			t.Fatalf("%s model status %d", sessions[i].kind, code)
		}
		sessions[i].params = mr.Parameters
		sessions[i].deleted = mr.TotalDeleted
	}

	// Hard stop: the SIGTERM drain snapshots dirty residents, then the
	// process dies without any HTTP-level goodbye.
	if err := stA.Close(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	tsA.Close()

	// A fresh process on the same directory must serve everything.
	tsB, stB := newTieredServer(t, dir)
	defer tsB.Close()
	defer stB.Close()

	for _, want := range sessions {
		mr, code := getModel(t, tsB.URL, want.id)
		if code != http.StatusOK {
			t.Fatalf("%s (%s) not servable after restart: status %d", want.id, want.kind, code)
		}
		if mr.Kind != want.kind {
			t.Fatalf("%s family %q after restart, want %q", want.id, mr.Kind, want.kind)
		}
		if mr.TotalDeleted != want.deleted {
			t.Fatalf("%s lost deletions: %d, want %d", want.id, mr.TotalDeleted, want.deleted)
		}
		if len(mr.Parameters) != len(want.params) {
			t.Fatalf("%s parameter count %d, want %d", want.id, len(mr.Parameters), len(want.params))
		}
		for j := range want.params {
			if mr.Parameters[j] != want.params[j] {
				t.Fatalf("%s (%s) parameter %d differs after restart: %v vs %v",
					want.id, want.kind, j, mr.Parameters[j], want.params[j])
			}
		}
		// The honored deletions are still in the log: re-deleting one of
		// them is rejected as already deleted.
		line := streamBatches(t, tsB.URL+"/v2/sessions/"+want.id+"/deletions", []string{`{"remove":[2]}`})
		var env ErrorEnvelope
		if err := json.Unmarshal([]byte(line[0]), &env); err != nil {
			t.Fatal(err)
		}
		if env.Error.Code != ErrCodeInvalidRemovals {
			t.Fatalf("%s re-delete of honored row gave %q, want %q", want.id, env.Error.Code, ErrCodeInvalidRemovals)
		}
	}

	// New registrations must not collide with restored IDs.
	var tr TrainResponse
	resp := postJSON(t, tsB.URL+"/v1/train", trainBody(t, "linear", 50, 3, 99), &tr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart train status %d", resp.StatusCode)
	}
	for _, s := range sessions {
		if s.id == tr.SessionID {
			t.Fatalf("restarted server reissued session ID %s", tr.SessionID)
		}
	}

	// Restored-session counters survived and the restart is visible in stats.
	var stats StatsResponse
	sresp, err := http.Get(tsB.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if stats.Restores != int64(len(sessions)) {
		t.Fatalf("restores = %d, want %d", stats.Restores, len(sessions))
	}
}

// TestEvictTouchRestoreUnderLoad exercises the spill→touch→restore path over
// HTTP with a tight budget and concurrent touches of cold sessions (run with
// -race): deletions applied before an eviction must survive the round trip,
// and the restored session must keep serving deletions.
func TestEvictTouchRestoreUnderLoad(t *testing.T) {
	dir := t.TempDir()
	// Two sessions under a max-1 budget ping-pong between tiers. The service
	// option path configures the default store, so build the budgeted memory
	// tier directly.
	ti, err := store.NewTiered(dir, store.NewMemory(store.WithMaxSessions(1)))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ti.Close() })
	ts2 := httptest.NewServer(NewServer(WithStore(ti)).Handler())
	defer ts2.Close()

	var ids []string
	for i := 0; i < 2; i++ {
		var tr TrainResponse
		resp := postJSON(t, ts2.URL+"/v1/train", trainBody(t, "linear", 60, 3, int64(80+i)), &tr)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("train %d status %d", i, resp.StatusCode)
		}
		ids = append(ids, tr.SessionID)
	}

	// Alternate deletions between the two sessions: every request forces an
	// evict+spill of one and a restore of the other, concurrently.
	var wg sync.WaitGroup
	for round := 0; round < 4; round++ {
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func(id string, round int) {
				defer wg.Done()
				var dr DeleteResponse
				resp := postJSON(t, ts2.URL+"/v1/delete",
					DeleteRequest{SessionID: id, Removed: []int{round*3 + 1, round*3 + 2}}, &dr)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("delete %s round %d status %d", id, round, resp.StatusCode)
				}
			}(ids[g], round)
		}
		wg.Wait()
		if t.Failed() {
			t.FailNow()
		}
	}

	// Both sessions still reachable with their full cumulative logs.
	for _, id := range ids {
		mr, code := getModel(t, ts2.URL, id)
		if code != http.StatusOK {
			t.Fatalf("session %s unreachable: %d", id, code)
		}
		if mr.TotalDeleted != 8 {
			t.Fatalf("session %s lost deletions across tier moves: %d, want 8", id, mr.TotalDeleted)
		}
	}
	stats := ti.Stats()
	if stats.Spills == 0 || stats.Restores == 0 {
		t.Fatalf("tier traffic never happened: %+v", stats)
	}
}
