package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/priu/obs"
)

// adminPair boots one server with both its tenant handler and its admin
// (operator) handler on separate listeners, as priuserve -admin-addr does.
func adminPair(t *testing.T, opts ...ServerOption) (*Server, *httptest.Server, *httptest.Server) {
	t.Helper()
	srv := NewServer(opts...)
	main := httptest.NewServer(srv.Handler())
	t.Cleanup(main.Close)
	admin := httptest.NewServer(srv.AdminHandler())
	t.Cleanup(admin.Close)
	return srv, main, admin
}

func scrape(t *testing.T, adminURL string) string {
	t.Helper()
	resp, err := http.Get(adminURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("/metrics Content-Type = %q, want %q", ct, obs.ContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestMetricsEndToEnd drives a train/delete/what-if workload through the
// tenant surface and asserts the admin scrape shows it: the registry is fed
// by the same counters the JSON surfaces report.
func TestMetricsEndToEnd(t *testing.T) {
	_, main, admin := adminPair(t)
	sr := v2Create(t, main.URL, v2CreateBody(t, "linear", 80, 4, 1))

	var dr DeleteResponse
	if resp := postJSON(t, main.URL+"/v1/delete", DeleteRequest{SessionID: sr.SessionID, Removed: []int{1, 2, 3}}, &dr); resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	results, _ := whatifBatch(t, main.URL, sr.SessionID, WhatIfRequest{Sets: [][]int{{5, 6}}})
	if len(results) != 1 {
		t.Fatalf("what-if batch returned %d results", len(results))
	}

	text := scrape(t, admin.URL)
	for _, want := range []string{
		// Service families with observed values.
		`priu_http_requests_total{gen="v2",route="/v2/sessions",code="201"} 1`,
		`priu_http_requests_total{gen="v1",route="/v1/delete",code="200"} 1`,
		"priu_deletion_rows_total 3",
		"priu_capture_seconds_count 1",
		"priu_update_seconds_count 1",
		"priu_whatif_streams_total 1",
		"priu_whatif_sets_total 1",
		`priu_tenant_rows_deleted_total{tenant=""} 3`,
		// Subsystem families present even when idle (store/blob/par/cluster).
		"priu_store_resident_sessions 1",
		"priu_store_spills_total 0",
		"priu_blob_puts_total 0",
		"# TYPE priu_par_dispatches_total counter",
		"priu_cluster_alive 0",
		"# TYPE priu_http_request_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("scrape missing %q in:\n%s", want, text)
		}
	}
}

// TestTraceEndpoints checks the trace contract on one node: the response
// echoes the request's (or a minted) X-Priu-Trace ID, and the admin surface
// serves that trace's span tree with the capture span recorded.
func TestTraceEndpoints(t *testing.T) {
	_, main, admin := adminPair(t)

	body, err := json.Marshal(v2CreateBody(t, "linear", 80, 4, 1))
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodPost, main.URL+"/v2/sessions", strings.NewReader(string(body)))
	req.Header.Set("Content-Type", "application/json")
	const id = "deadbeefcafe0001"
	req.Header.Set(obs.TraceHeader, id)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(obs.TraceHeader); got != id {
		t.Fatalf("response trace header %q, want the adopted %q", got, id)
	}

	// A garbage client ID is replaced with a minted one, never adopted.
	req2, _ := http.NewRequest(http.MethodGet, main.URL+"/healthz", nil)
	req2.Header.Set(obs.TraceHeader, "nope!")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	minted := resp2.Header.Get(obs.TraceHeader)
	if minted == "nope!" || !obs.ValidTraceID(minted) {
		t.Fatalf("invalid client trace ID handled as %q", minted)
	}

	tresp, err := http.Get(admin.URL + "/v2/debug/traces/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("trace fetch status %d", tresp.StatusCode)
	}
	var tv obs.TraceView
	if err := json.NewDecoder(tresp.Body).Decode(&tv); err != nil {
		t.Fatal(err)
	}
	if tv.TraceID != id || len(tv.Spans) != 1 {
		t.Fatalf("trace view %+v", tv)
	}
	if tv.Spans[0].Name != "POST /v2/sessions" || !hasSpanNamed(tv.Spans, "capture") {
		t.Fatalf("span tree lacks the capture span: %+v", tv.Spans)
	}

	lresp, err := http.Get(admin.URL + "/v2/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	var listing struct {
		Traces []obs.TraceSummary `json:"traces"`
	}
	if err := json.NewDecoder(lresp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Traces) < 2 {
		t.Fatalf("trace listing has %d rows, want at least the two requests", len(listing.Traces))
	}
}

func hasSpanNamed(views []obs.SpanView, name string) bool {
	for _, v := range views {
		if v.Name == name || hasSpanNamed(v.Children, name) {
			return true
		}
	}
	return false
}

// TestFleetTraceStitching is the cross-replica trace contract: a deletion
// stream sent to a NON-owner replica is proxied to the owner, and afterwards
// the same trace ID is resolvable on both nodes — the proxying node holds the
// ingress root, the owner holds the span tree with the actual update.
func TestFleetTraceStitching(t *testing.T) {
	f := newTestFleet(t, 3, 0)
	sr := v2Create(t, f.urls[0], v2CreateBody(t, "logistic", 120, 4, 7))

	// Creation always lands on the owner, so node 0 owns the session; stream
	// the deletion through a different replica to force the proxy hop.
	if _, self := f.members[0].Owner(sr.SessionID); !self {
		t.Fatalf("creating node does not own %q", sr.SessionID)
	}
	const id = "feedface00112233"
	req, _ := http.NewRequest(http.MethodPost,
		f.urls[1]+"/v2/sessions/"+sr.SessionID+"/deletions",
		strings.NewReader(`{"remove":[1,2,3]}`+"\n"))
	req.Header.Set("Content-Type", "application/x-ndjson")
	req.Header.Set(obs.TraceHeader, id)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxied stream status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Values(obs.TraceHeader); len(got) != 1 || got[0] != id {
		t.Fatalf("proxied response trace header = %v, want exactly one %q", got, id)
	}

	_, ownerTracer := f.servers[0].Observability()
	_, proxyTracer := f.servers[1].Observability()
	ownerView, ok := ownerTracer.Lookup(id)
	if !ok {
		t.Fatalf("owner has no trace %q", id)
	}
	if !hasSpanNamed(ownerView.Spans, "update") {
		t.Fatalf("owner trace lacks the update span: %+v", ownerView.Spans)
	}
	proxyView, ok := proxyTracer.Lookup(id)
	if !ok {
		t.Fatalf("proxying node has no trace %q", id)
	}
	if len(proxyView.Spans) == 0 || !strings.Contains(proxyView.Spans[0].Name, "/deletions") {
		t.Fatalf("proxy trace root %+v", proxyView.Spans)
	}
	// A bystander replica never saw the request.
	_, bystander := f.servers[2].Observability()
	if _, ok := bystander.Lookup(id); ok {
		t.Fatal("replica that never touched the request recorded its trace")
	}
}

func TestRouteLabel(t *testing.T) {
	cases := []struct {
		path, gen, route string
	}{
		{"/healthz", "health", "/healthz"},
		{"/v1/train", "v1", "/v1/train"},
		{"/v1/model/sess-7", "v1", "/v1/model/{id}"},
		{"/v2/sessions", "v2", "/v2/sessions"},
		{"/v2/sessions/sess-9", "v2", "/v2/sessions/{id}"},
		{"/v2/sessions/sess-9/deletions", "v2", "/v2/sessions/{id}/deletions"},
		{"/v2/sessions/sess-9/whatif", "v2", "/v2/sessions/{id}/whatif"},
		{"/v2/meta", "v2", "/v2/meta"},
		{"/v2/nope/deep", "v2", "other"},
		{"/favicon.ico", "other", "other"},
	}
	for _, c := range cases {
		r := httptest.NewRequest(http.MethodGet, c.path, nil)
		gen, route := routeLabel(r)
		if gen != c.gen || route != c.route {
			t.Errorf("routeLabel(%q) = (%q,%q), want (%q,%q)", c.path, gen, route, c.gen, c.route)
		}
	}
}
