package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/priu/store"
)

// writeKeyFile writes a tenant key file and returns its path.
func writeKeyFile(t *testing.T, tenants ...TenantConfig) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "keys.json")
	buf, err := json.Marshal(map[string]any{"tenants": tenants})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf, 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

// newAuthServer builds an authenticated test server whose store enforces the
// keyring's tenant limits (exactly how cmd/priuserve wires it).
func newAuthServer(t *testing.T, mode AuthMode, opts []ServerOption, tenants ...TenantConfig) (*httptest.Server, *Keyring) {
	t.Helper()
	kr, err := LoadKeyring(writeKeyFile(t, tenants...))
	if err != nil {
		t.Fatal(err)
	}
	opts = append(opts, WithAuth(mode, kr))
	ts := httptest.NewServer(NewServer(opts...).Handler())
	t.Cleanup(ts.Close)
	return ts, kr
}

// doAuthed sends a request with an optional bearer key.
func doAuthed(t *testing.T, method, url, key string, body io.Reader, contentType string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// v2CreateAs creates a session with a key and returns the response.
func v2CreateAs(t *testing.T, baseURL, key string, req CreateSessionRequest) (SessionResponse, *http.Response) {
	t.Helper()
	buf, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp := doAuthed(t, http.MethodPost, baseURL+"/v2/sessions", key, strings.NewReader(string(buf)), "application/json")
	defer resp.Body.Close()
	var sr SessionResponse
	if resp.StatusCode == http.StatusCreated {
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
	}
	return sr, resp
}

func TestAuthRequiredRejectsMissingAndUnknownKeys(t *testing.T) {
	ts, _ := newAuthServer(t, AuthRequired, nil,
		TenantConfig{Name: "alice", Key: "ak_alice"})

	// Every /v2 route rejects a missing key with the typed 401 envelope.
	for _, probe := range []struct{ method, path string }{
		{http.MethodPost, "/v2/sessions"},
		{http.MethodGet, "/v2/sessions"},
		{http.MethodGet, "/v2/sessions/sess-1"},
		{http.MethodDelete, "/v2/sessions/sess-1"},
		{http.MethodGet, "/v2/sessions/sess-1/snapshot"},
		{http.MethodPost, "/v2/sessions/sess-1/deletions"},
		{http.MethodGet, "/v2/tenants/self/stats"},
	} {
		resp := doAuthed(t, probe.method, ts.URL+probe.path, "", strings.NewReader("{}"), "application/json")
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("%s %s without key: status %d, want 401", probe.method, probe.path, resp.StatusCode)
		}
		if got := resp.Header.Get("WWW-Authenticate"); !strings.HasPrefix(got, "Bearer") {
			t.Fatalf("%s %s WWW-Authenticate = %q", probe.method, probe.path, got)
		}
		env := decodeEnvelope(t, resp.Body)
		resp.Body.Close()
		if env.Error.Code != ErrCodeUnauthorized {
			t.Fatalf("%s %s error code %q, want %q", probe.method, probe.path, env.Error.Code, ErrCodeUnauthorized)
		}
	}

	// Unknown keys are rejected too.
	resp := doAuthed(t, http.MethodGet, ts.URL+"/v2/sessions", "ak_wrong", nil, "")
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unknown key status %d, want 401", resp.StatusCode)
	}
	resp.Body.Close()

	// v1 is governed by the same mode, in its flat error shape.
	resp = doAuthed(t, http.MethodGet, ts.URL+"/v1/sessions", "", nil, "")
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("v1 without key status %d, want 401", resp.StatusCode)
	}
	var flat map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&flat); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, isString := flat["error"].(string); !isString {
		t.Fatalf("v1 401 shape %v, want flat string error", flat)
	}

	// /healthz stays open for load balancers.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d under auth=required", hresp.StatusCode)
	}

	// A valid key proceeds.
	resp = doAuthed(t, http.MethodGet, ts.URL+"/v2/sessions", "ak_alice", nil, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid key status %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestAuthOptionalAdmitsAnonymousRejectsBadKeys(t *testing.T) {
	ts, _ := newAuthServer(t, AuthOptional, nil, TenantConfig{Name: "alice", Key: "ak_alice"})
	// Anonymous callers work (wire-compatible v1).
	var tr TrainResponse
	resp := postJSON(t, ts.URL+"/v1/train", trainBody(t, "linear", 50, 3, 1), &tr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("anonymous v1 train status %d", resp.StatusCode)
	}
	// A presented-but-unknown key is still rejected (no silent fallback).
	bresp := doAuthed(t, http.MethodGet, ts.URL+"/v2/sessions", "ak_bogus", nil, "")
	if bresp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("bogus key under optional: status %d, want 401", bresp.StatusCode)
	}
	bresp.Body.Close()
}

func TestTenantIsolation(t *testing.T) {
	ts, _ := newAuthServer(t, AuthRequired, nil,
		TenantConfig{Name: "alice", Key: "ak_alice"},
		TenantConfig{Name: "bob", Key: "ak_bob"})

	sr, resp := v2CreateAs(t, ts.URL, "ak_alice", v2CreateBody(t, "linear", 60, 3, 5))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("alice create status %d", resp.StatusCode)
	}

	// Bob cannot see, snapshot, stream to, or delete alice's session.
	for _, probe := range []struct{ method, path string }{
		{http.MethodGet, "/v2/sessions/" + sr.SessionID},
		{http.MethodGet, "/v2/sessions/" + sr.SessionID + "/snapshot"},
		{http.MethodPost, "/v2/sessions/" + sr.SessionID + "/deletions"},
		{http.MethodDelete, "/v2/sessions/" + sr.SessionID},
	} {
		bresp := doAuthed(t, probe.method, ts.URL+probe.path, "ak_bob", strings.NewReader(`{"remove":[1]}`), "application/x-ndjson")
		if bresp.StatusCode != http.StatusNotFound {
			t.Fatalf("bob %s %s: status %d, want 404", probe.method, probe.path, bresp.StatusCode)
		}
		bresp.Body.Close()
	}
	// Bob cannot smuggle a namespace separator through a v1 path or body.
	mresp := doAuthed(t, http.MethodGet, ts.URL+"/v1/model/alice/"+sr.SessionID, "ak_bob", nil, "")
	if mresp.StatusCode != http.StatusNotFound {
		t.Fatalf("bob cross-namespace v1 model: status %d, want 404", mresp.StatusCode)
	}
	mresp.Body.Close()
	dresp := doAuthed(t, http.MethodPost, ts.URL+"/v1/delete", "ak_bob",
		strings.NewReader(fmt.Sprintf(`{"session_id":"alice/%s","removed":[1]}`, sr.SessionID)), "application/json")
	if dresp.StatusCode != http.StatusNotFound {
		t.Fatalf("bob cross-namespace v1 delete: status %d, want 404", dresp.StatusCode)
	}
	dresp.Body.Close()

	// Listings are scoped: bob sees nothing, alice sees her session.
	for _, c := range []struct {
		key  string
		want int
	}{{"ak_bob", 0}, {"ak_alice", 1}} {
		lresp := doAuthed(t, http.MethodGet, ts.URL+"/v2/sessions", c.key, nil, "")
		var page SessionListResponse
		if err := json.NewDecoder(lresp.Body).Decode(&page); err != nil {
			t.Fatal(err)
		}
		lresp.Body.Close()
		if len(page.Sessions) != c.want {
			t.Fatalf("%s sees %d sessions, want %d", c.key, len(page.Sessions), c.want)
		}
	}

	// Both tenants can reuse the same wire ID space without collisions:
	// alice's sess-N and bob's sess-M are distinct storage keys.
	brS, bresp := v2CreateAs(t, ts.URL, "ak_bob", v2CreateBody(t, "linear", 60, 3, 6))
	if bresp.StatusCode != http.StatusCreated {
		t.Fatalf("bob create status %d", bresp.StatusCode)
	}
	// Alice's view of bob's ID is not found.
	aresp := doAuthed(t, http.MethodGet, ts.URL+"/v2/sessions/"+brS.SessionID, "ak_alice", nil, "")
	if aresp.StatusCode != http.StatusNotFound {
		t.Fatalf("alice GET bob's session: status %d, want 404", aresp.StatusCode)
	}
	aresp.Body.Close()

	// Alice deletes her own session fine.
	delResp := doAuthed(t, http.MethodDelete, ts.URL+"/v2/sessions/"+sr.SessionID, "ak_alice", nil, "")
	if delResp.StatusCode != http.StatusNoContent {
		t.Fatalf("alice delete own session: status %d", delResp.StatusCode)
	}
	delResp.Body.Close()
}

func TestV2MethodNotAllowed(t *testing.T) {
	ts := newTestServerOpts(t)
	cases := []struct {
		method, path, wantAllow string
	}{
		{http.MethodPut, "/v2/sessions", "GET, POST"},
		{http.MethodPatch, "/v2/sessions/sess-1", "DELETE, GET"},
		{http.MethodPost, "/v2/sessions/sess-1/snapshot", "GET"},
		{http.MethodGet, "/v2/sessions/sess-1/deletions", "POST"},
		{http.MethodDelete, "/v2/tenants/self/stats", "GET"},
	}
	for _, c := range cases {
		req, _ := http.NewRequest(c.method, ts.URL+c.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("%s %s: status %d, want 405", c.method, c.path, resp.StatusCode)
		}
		if got := resp.Header.Get("Allow"); got != c.wantAllow {
			t.Fatalf("%s %s: Allow %q, want %q", c.method, c.path, got, c.wantAllow)
		}
		env := decodeEnvelope(t, resp.Body)
		resp.Body.Close()
		if env.Error.Code != ErrCodeMethodNotAllowed {
			t.Fatalf("%s %s: error code %q, want %q", c.method, c.path, env.Error.Code, ErrCodeMethodNotAllowed)
		}
	}

	// HEAD rides on GET (as the previous ServeMux method patterns allowed):
	// probes against GET routes must not start returning 405.
	hreq, _ := http.NewRequest(http.MethodHead, ts.URL+"/v2/sessions", nil)
	hresp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("HEAD /v2/sessions: status %d, want 200", hresp.StatusCode)
	}
}

func TestTenantQuota(t *testing.T) {
	ts, _ := newAuthServer(t, AuthRequired, nil,
		TenantConfig{Name: "alice", Key: "ak_alice", MaxSessions: 2},
		TenantConfig{Name: "bob", Key: "ak_bob"})

	var ids []string
	for i := 0; i < 2; i++ {
		sr, resp := v2CreateAs(t, ts.URL, "ak_alice", v2CreateBody(t, "linear", 50, 3, int64(10+i)))
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("alice create %d status %d", i, resp.StatusCode)
		}
		ids = append(ids, sr.SessionID)
	}
	// The third create is a typed 429, and nothing was evicted to make room.
	_, resp := v2CreateAs(t, ts.URL, "ak_alice", v2CreateBody(t, "linear", 50, 3, 12))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota create status %d, want 429", resp.StatusCode)
	}
	for _, id := range ids {
		gr := doAuthed(t, http.MethodGet, ts.URL+"/v2/sessions/"+id, "ak_alice", nil, "")
		if gr.StatusCode != http.StatusOK {
			t.Fatalf("session %s lost after quota rejection: status %d", id, gr.StatusCode)
		}
		gr.Body.Close()
	}
	// Another tenant proceeds while alice is at quota.
	if _, bresp := v2CreateAs(t, ts.URL, "ak_bob", v2CreateBody(t, "linear", 50, 3, 13)); bresp.StatusCode != http.StatusCreated {
		t.Fatalf("bob create while alice at quota: status %d", bresp.StatusCode)
	}
	// v1 trains hit the same quota (flat 429).
	trResp := doAuthed(t, http.MethodPost, ts.URL+"/v1/train", "ak_alice",
		jsonBody(t, trainBody(t, "linear", 50, 3, 14)), "application/json")
	if trResp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("v1 over-quota train status %d, want 429", trResp.StatusCode)
	}
	trResp.Body.Close()
	// Deleting a session frees quota.
	delResp := doAuthed(t, http.MethodDelete, ts.URL+"/v2/sessions/"+ids[0], "ak_alice", nil, "")
	delResp.Body.Close()
	if _, cresp := v2CreateAs(t, ts.URL, "ak_alice", v2CreateBody(t, "linear", 50, 3, 15)); cresp.StatusCode != http.StatusCreated {
		t.Fatalf("create after freeing quota: status %d", cresp.StatusCode)
	}

	// The envelope carried the typed code.
	_, resp2 := v2CreateAs(t, ts.URL, "ak_alice", v2CreateBody(t, "linear", 50, 3, 16))
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("re-probe status %d", resp2.StatusCode)
	}
}

// jsonBody marshals a value for doAuthed.
func jsonBody(t *testing.T, v any) io.Reader {
	t.Helper()
	buf, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return strings.NewReader(string(buf))
}

func TestTenantQuotaEnvelopeCode(t *testing.T) {
	ts, _ := newAuthServer(t, AuthRequired, nil,
		TenantConfig{Name: "alice", Key: "ak_alice", MaxSessions: 1})
	if _, resp := v2CreateAs(t, ts.URL, "ak_alice", v2CreateBody(t, "linear", 50, 3, 1)); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d", resp.StatusCode)
	}
	buf, _ := json.Marshal(v2CreateBody(t, "linear", 50, 3, 2))
	resp := doAuthed(t, http.MethodPost, ts.URL+"/v2/sessions", "ak_alice", strings.NewReader(string(buf)), "application/json")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if env := decodeEnvelope(t, resp.Body); env.Error.Code != ErrCodeQuota {
		t.Fatalf("error code %q, want %q", env.Error.Code, ErrCodeQuota)
	}
}

// TestConcurrentTenantQuotaIsolation registers sessions from two tenants in
// parallel: neither tenant may exceed its own quota, and no tenant's
// registrations may evict the other's residents (there is no global budget,
// so evictions must stay zero). Run under -race.
func TestConcurrentTenantQuotaIsolation(t *testing.T) {
	const quota = 3
	ts, _ := newAuthServer(t, AuthRequired, nil,
		TenantConfig{Name: "alice", Key: "ak_alice", MaxSessions: quota},
		TenantConfig{Name: "bob", Key: "ak_bob", MaxSessions: quota})

	keys := []string{"ak_alice", "ak_bob"}
	const attempts = 8
	created := make([][]string, 2)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for ti := range keys {
		for a := 0; a < attempts; a++ {
			wg.Add(1)
			go func(ti, a int) {
				defer wg.Done()
				sr, resp := v2CreateAs(t, ts.URL, keys[ti], v2CreateBody(t, "linear", 40, 3, int64(ti*100+a)))
				switch resp.StatusCode {
				case http.StatusCreated:
					mu.Lock()
					created[ti] = append(created[ti], sr.SessionID)
					mu.Unlock()
				case http.StatusTooManyRequests:
					// expected past the quota
				default:
					t.Errorf("tenant %d create %d: unexpected status %d", ti, a, resp.StatusCode)
				}
			}(ti, a)
		}
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for ti, key := range keys {
		if len(created[ti]) != quota {
			t.Fatalf("tenant %d created %d sessions, want exactly %d", ti, len(created[ti]), quota)
		}
		// Every successful registration is still alive: the other tenant's
		// traffic never evicted it.
		for _, id := range created[ti] {
			gr := doAuthed(t, http.MethodGet, ts.URL+"/v2/sessions/"+id, key, nil, "")
			if gr.StatusCode != http.StatusOK {
				t.Fatalf("tenant %d session %s: status %d, want 200", ti, id, gr.StatusCode)
			}
			gr.Body.Close()
		}
	}
	// No budget evictions anywhere (quota rejects, never evicts).
	var stats StatsResponse
	sresp := doAuthed(t, http.MethodGet, ts.URL+"/v1/stats", "ak_alice", nil, "")
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if stats.Evictions != 0 {
		t.Fatalf("quota enforcement evicted %d sessions; quotas must reject instead", stats.Evictions)
	}
	if stats.Sessions != 2*quota {
		t.Fatalf("resident sessions %d, want %d", stats.Sessions, 2*quota)
	}
}

// streamBatchesAs is streamBatches with an API key.
func streamBatchesAs(t *testing.T, url, key string, batches []string) []string {
	t.Helper()
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, url, pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	type result struct {
		resp *http.Response
		err  error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		done <- result{resp, err}
	}()
	if _, err := io.WriteString(pw, batches[0]+"\n"); err != nil {
		t.Fatal(err)
	}
	res := <-done
	if res.err != nil {
		t.Fatal(res.err)
	}
	defer res.resp.Body.Close()
	if res.resp.StatusCode != http.StatusOK {
		t.Fatalf("deletions stream status %d", res.resp.StatusCode)
	}
	reader := newLineReader(res.resp.Body)
	var lines []string
	for i := range batches {
		line, err := reader()
		if err != nil {
			t.Fatalf("reading response line %d: %v", i+1, err)
		}
		lines = append(lines, line)
		if i+1 < len(batches) {
			if _, err := io.WriteString(pw, batches[i+1]+"\n"); err != nil {
				t.Fatal(err)
			}
		}
	}
	pw.Close()
	return lines
}

// newLineReader returns a closure reading one trimmed NDJSON line per call.
func newLineReader(r io.Reader) func() (string, error) {
	br := bufio.NewReader(r)
	return func() (string, error) {
		line, err := br.ReadString('\n')
		if err != nil {
			return "", err
		}
		return strings.TrimSpace(line), nil
	}
}

// TestTenantRateLimitStreamResumes drives a throttled deletions stream: a
// batch over the remaining tokens gets a typed rate_limited line with
// retry_after_seconds, and resending the same batch after waiting succeeds —
// the stream itself survives the throttle.
func TestTenantRateLimitStreamResumes(t *testing.T) {
	// 20 rows/s with a burst of 4: the first 4-row batch drains the bucket;
	// the next needs 150ms of refill — slow enough that local HTTP round
	// trips (~1ms) cannot race the bucket back to full.
	ts, _ := newAuthServer(t, AuthRequired, nil,
		TenantConfig{Name: "alice", Key: "ak_alice", DeletionRowsPerSec: 20, Burst: 4})
	sr, resp := v2CreateAs(t, ts.URL, "ak_alice", v2CreateBody(t, "linear", 120, 4, 7))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d", resp.StatusCode)
	}
	url := ts.URL + "/v2/sessions/" + sr.SessionID + "/deletions"

	lines := streamBatchesAs(t, url, "ak_alice", []string{
		`{"remove":[1,2,3,4]}`, // drains the burst
		`{"remove":[5,6,7]}`,   // throttled: needs refill
	})
	var r1 DeletionResult
	if err := json.Unmarshal([]byte(lines[0]), &r1); err != nil {
		t.Fatal(err)
	}
	if r1.TotalDeleted != 4 {
		t.Fatalf("batch 1 %+v", r1)
	}
	var env ErrorEnvelope
	if err := json.Unmarshal([]byte(lines[1]), &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != ErrCodeRateLimited {
		t.Fatalf("throttled batch code %q, want %q", env.Error.Code, ErrCodeRateLimited)
	}
	if env.Error.RetryAfterSeconds <= 0 {
		t.Fatalf("throttled batch retry_after_seconds = %v, want > 0", env.Error.RetryAfterSeconds)
	}

	// Wait out the advertised Retry-After plus refill slack, then resume on
	// a fresh stream: the same batch must now be admitted.
	time.Sleep(time.Duration(env.Error.RetryAfterSeconds*float64(time.Second)) + 50*time.Millisecond)
	lines = streamBatchesAs(t, url, "ak_alice", []string{`{"remove":[5,6,7]}`})
	var r2 DeletionResult
	if err := json.Unmarshal([]byte(lines[0]), &r2); err != nil {
		t.Fatal(err)
	}
	if r2.TotalDeleted != 7 {
		t.Fatalf("resumed batch %+v, want total_deleted 7", r2)
	}

	// A batch larger than the burst can never pass: typed batch_too_large.
	lines = streamBatchesAs(t, url, "ak_alice", []string{`{"remove":[10,11,12,13,14]}`})
	if err := json.Unmarshal([]byte(lines[0]), &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != ErrCodeBatchTooLarge {
		t.Fatalf("over-burst batch code %q, want %q", env.Error.Code, ErrCodeBatchTooLarge)
	}

	// An exhausted bucket rejects the stream open with HTTP 429 + Retry-After.
	time.Sleep(250 * time.Millisecond) // refill to the full burst first
	drain := streamBatchesAs(t, url, "ak_alice", []string{`{"remove":[20,21,22,23]}`})
	var r3 DeletionResult
	if err := json.Unmarshal([]byte(drain[0]), &r3); err != nil || r3.Removed != 4 {
		t.Fatalf("drain batch %v %v", drain[0], err)
	}
	oresp := doAuthed(t, http.MethodPost, url, "ak_alice", strings.NewReader(""), "application/x-ndjson")
	defer oresp.Body.Close()
	if oresp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("exhausted-bucket open status %d, want 429", oresp.StatusCode)
	}
	if oresp.Header.Get("Retry-After") == "" {
		t.Fatal("429 open missing Retry-After header")
	}
	if env := decodeEnvelope(t, oresp.Body); env.Error.Code != ErrCodeRateLimited {
		t.Fatalf("429 open code %q", env.Error.Code)
	}
}

func TestTenantStatsEndpoint(t *testing.T) {
	ts, _ := newAuthServer(t, AuthRequired, nil,
		TenantConfig{Name: "alice", Key: "ak_alice", MaxSessions: 5, DeletionRowsPerSec: 1000})
	sr, resp := v2CreateAs(t, ts.URL, "ak_alice", v2CreateBody(t, "linear", 80, 4, 3))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d", resp.StatusCode)
	}
	lines := streamBatchesAs(t, ts.URL+"/v2/sessions/"+sr.SessionID+"/deletions", "ak_alice",
		[]string{`{"remove":[1,2,3]}`})
	var dr DeletionResult
	if err := json.Unmarshal([]byte(lines[0]), &dr); err != nil {
		t.Fatal(err)
	}

	stResp := doAuthed(t, http.MethodGet, ts.URL+"/v2/tenants/self/stats", "ak_alice", nil, "")
	defer stResp.Body.Close()
	if stResp.StatusCode != http.StatusOK {
		t.Fatalf("tenant stats status %d", stResp.StatusCode)
	}
	var tsr TenantStatsResponse
	if err := json.NewDecoder(stResp.Body).Decode(&tsr); err != nil {
		t.Fatal(err)
	}
	if tsr.Tenant != "alice" || !tsr.Authenticated {
		t.Fatalf("tenant stats identity %+v", tsr)
	}
	if tsr.ResidentSessions != 1 || tsr.ResidentBytes <= 0 {
		t.Fatalf("tenant stats usage %+v", tsr)
	}
	if tsr.Trains != 1 || tsr.Deletes != 1 || tsr.RowsDeleted != 3 {
		t.Fatalf("tenant stats counters %+v", tsr)
	}
	if tsr.MaxSessions != 5 || tsr.DeletionRowsPerSec != 1000 {
		t.Fatalf("tenant stats limits %+v", tsr)
	}
}

// TestV2ExplicitDeleteUnlinksSpillFile is the spill-file hygiene check over
// the API: DELETE /v2/sessions/{id} of a spilled session removes its file,
// and the /healthz spill_dir_bytes gauge reflects the reclaimed disk.
func TestV2ExplicitDeleteUnlinksSpillFile(t *testing.T) {
	dir := t.TempDir()
	mem := store.NewMemory(store.WithMaxSessions(1))
	tiered, err := store.NewTiered(dir, mem)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = tiered.Close() })
	ts := newTestServerOpts(t, WithStore(tiered))

	sr := v2Create(t, ts.URL, v2CreateBody(t, "linear", 60, 3, 1))
	sr2 := v2Create(t, ts.URL, v2CreateBody(t, "linear", 60, 3, 2)) // evicts + spills sr
	tiered.Flush()                                                  // settle the write-behind queue (sr2's warm backup)

	var h HealthResponse
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(hresp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if h.Spilled != 1 || h.SpillDirBytes <= 0 {
		t.Fatalf("healthz before delete: spilled=%d spill_dir_bytes=%d", h.Spilled, h.SpillDirBytes)
	}

	// Delete both sessions: the spilled one and the resident one (whose
	// eager write-behind snapshot is a warm backup on disk) — explicit
	// deletes must reclaim every file either way.
	for _, id := range []string{sr.SessionID, sr2.SessionID} {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v2/sessions/"+id, nil)
		dresp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		dresp.Body.Close()
		if dresp.StatusCode != http.StatusNoContent {
			t.Fatalf("delete session %s status %d", id, dresp.StatusCode)
		}
	}
	tiered.Flush()

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("spill dir still holds %d file(s) after explicit delete", len(entries))
	}
	hresp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var after HealthResponse // fresh: omitempty-zero fields must not inherit h's
	if err := json.NewDecoder(hresp.Body).Decode(&after); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if after.SpillDirBytes != 0 || after.Spilled != 0 {
		t.Fatalf("healthz after delete: spilled=%d spill_dir_bytes=%d, want 0/0", after.Spilled, after.SpillDirBytes)
	}
}

func TestKeyringReloadRotatesKeys(t *testing.T) {
	path := writeKeyFile(t, TenantConfig{Name: "alice", Key: "ak_old"})
	kr, err := LoadKeyring(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := kr.Resolve("ak_old"); !ok {
		t.Fatal("initial key should resolve")
	}
	buf, _ := json.Marshal(map[string]any{"tenants": []TenantConfig{
		{Name: "alice", Key: "ak_new"}, {Name: "carol", Key: "ak_carol"},
	}})
	if err := os.WriteFile(path, buf, 0o600); err != nil {
		t.Fatal(err)
	}
	if err := kr.Reload(); err != nil {
		t.Fatal(err)
	}
	if _, ok := kr.Resolve("ak_old"); ok {
		t.Fatal("rotated key must stop resolving")
	}
	ten, ok := kr.Resolve("ak_new")
	if !ok || ten.Name != "alice" {
		t.Fatalf("new key resolve: %v %v", ten, ok)
	}
	if _, ok := kr.Resolve("ak_carol"); !ok {
		t.Fatal("added tenant should resolve")
	}
	if kr.Len() != 2 {
		t.Fatalf("len %d, want 2", kr.Len())
	}

	// A broken edit keeps the previous keyring.
	if err := os.WriteFile(path, []byte("{nope"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := kr.Reload(); err == nil {
		t.Fatal("reload of a broken file should error")
	}
	if _, ok := kr.Resolve("ak_new"); !ok {
		t.Fatal("broken reload must keep the previous keys")
	}

	// Validation: duplicate names, reused keys, bad tenant names.
	for _, bad := range []string{
		`{"tenants":[{"name":"x","key":"k"},{"name":"x","key":"k2"}]}`,
		`{"tenants":[{"name":"x","key":"k"},{"name":"y","key":"k"}]}`,
		`{"tenants":[{"name":"a/b","key":"k"}]}`,
		`{"tenants":[{"name":"","key":"k"}]}`,
		`{"tenants":[{"name":"x","key":""}]}`,
		`{"tenants":[{"name":"x","key":"k","max_sessions":-1}]}`,
	} {
		if err := os.WriteFile(path, []byte(bad), 0o600); err != nil {
			t.Fatal(err)
		}
		if err := kr.Reload(); err == nil {
			t.Fatalf("reload accepted invalid key file %s", bad)
		}
	}
}
