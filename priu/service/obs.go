package service

import (
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/par"
	"repro/priu/obs"
	"repro/priu/store"
)

// Observability integration: every Server owns an obs.Registry (the single
// source of truth for every gauge the JSON surfaces also report) and an
// obs.Tracer (per-request span trees, stitched across the fleet by the
// X-Priu-Trace header). The request-side counters the server used to keep as
// raw atomics are registry counters now — same atomic hot path, one extra
// pointer indirection — so /v1/stats, /healthz and /metrics can never drift
// apart: they read the same cells.

// WithObservability injects a pre-built registry and tracer (cmd/priuserve
// shares the registry with the store's tier histograms; tests inspect both).
// Either may be nil; NewServer fills the gaps with fresh instances.
func WithObservability(reg *obs.Registry, tr *obs.Tracer) ServerOption {
	return func(s *Server) {
		s.obsReg = reg
		s.tracer = tr
	}
}

// Observability returns the server's metrics registry and tracer — the admin
// listener serves them, tests inspect them.
func (s *Server) Observability() (*obs.Registry, *obs.Tracer) { return s.obsReg, s.tracer }

// tenantVecs are the per-tenant metric families; tc() resolves one tenant's
// children out of them (idempotent, so the tenantReqs LoadOrStore race is
// harmless — both racers resolve the same underlying cells).
type tenantVecs struct {
	trains          *obs.CounterVec
	deletes         *obs.CounterVec
	deleteErrors    *obs.CounterVec
	rowsDeleted     *obs.CounterVec
	rateLimited     *obs.CounterVec
	quotaRejections *obs.CounterVec
	whatifs         *obs.CounterVec
	whatifSets      *obs.CounterVec
	whatifActive    *obs.GaugeVec
	whatifLimited   *obs.CounterVec
}

// newTenantCounters resolves one tenant's pre-resolved metric handles.
func (s *Server) newTenantCounters(name string) *tenantCounters {
	v := &s.tenantVecs
	return &tenantCounters{
		trains:          v.trains.With(name),
		deletes:         v.deletes.With(name),
		deleteErrors:    v.deleteErrors.With(name),
		rowsDeleted:     v.rowsDeleted.With(name),
		rateLimited:     v.rateLimited.With(name),
		quotaRejections: v.quotaRejections.With(name),
		whatifs:         v.whatifs.With(name),
		whatifSets:      v.whatifSets.With(name),
		whatifActive:    v.whatifActive.With(name),
		whatifLimited:   v.whatifLimited.With(name),
	}
}

// initObs builds (or adopts) the registry and tracer and registers every
// metric family the service owns, plus func-backed families over the
// subsystems that keep their own atomics (store Stats(), the par pool,
// cluster membership). Called once from NewServer after the store exists.
func (s *Server) initObs() {
	if s.obsReg == nil {
		s.obsReg = obs.NewRegistry()
	}
	if s.tracer == nil {
		s.tracer = obs.NewTracer(0)
	}
	reg := s.obsReg

	// HTTP surface.
	s.httpReqs = reg.CounterVec("priu_http_requests_total",
		"HTTP requests by API generation, normalized route and status code.",
		"gen", "route", "code")
	s.httpSeconds = reg.HistogramVec("priu_http_request_seconds",
		"HTTP request latency by API generation and normalized route.",
		nil, "gen", "route")

	// Deletion plane.
	s.captureSeconds = reg.Histogram("priu_capture_seconds",
		"Training-with-capture duration per registered session.", nil)
	s.updateSeconds = reg.Histogram("priu_update_seconds",
		"Incremental deletion-update duration per applied batch.", nil)
	s.deletionRows = reg.Counter("priu_deletion_rows_total",
		"Training rows removed by applied deletions, all tenants.")
	s.streamSeconds = reg.Histogram("priu_deletion_stream_seconds",
		"Lifetime of one NDJSON deletion stream, connect to disconnect.",
		[]float64{0.01, 0.1, 1, 10, 60, 300, 1800})
	s.snapshotSeconds = reg.Histogram("priu_snapshot_serialize_seconds",
		"Session snapshot serialization duration.", nil)

	// What-if plane.
	s.whatifs = reg.Counter("priu_whatif_streams_total",
		"Completed what-if preview streams.")
	s.whatifSets = reg.Counter("priu_whatif_sets_total",
		"Candidate deletion sets evaluated by the what-if plane.")
	s.whatifCacheHits = reg.Counter("priu_whatif_cache_hits_total",
		"Prefix-tree cache hits: shared-prefix rows the planners did not re-apply.")
	s.whatifPlanSeconds = reg.Histogram("priu_whatif_plan_seconds",
		"What-if planner construction duration per stream.", nil)
	s.whatifEvalSeconds = reg.Histogram("priu_whatif_eval_seconds",
		"What-if candidate-set evaluation duration, per set.", nil)

	// Fleet routing.
	s.fleetRedirects = reg.Counter("priu_fleet_redirects_total",
		"Session requests answered with a 307 to the owning replica.")
	s.fleetProxied = reg.Counter("priu_fleet_proxied_total",
		"Session requests transparently proxied to the owning replica.")
	s.fleetHandoffs = reg.Counter("priu_fleet_handoffs_total",
		"Peer-handoff passes run after membership changes.")
	s.fleetReleased = reg.Counter("priu_fleet_released_total",
		"Sessions released to the blob tier by peer handoff.")

	// Per-shard request counters (the /v1/stats shard breakdown).
	shardTrains := reg.CounterVec("priu_shard_trains_total",
		"Session registrations by store shard.", "shard")
	shardDeletes := reg.CounterVec("priu_shard_deletes_total",
		"Deletion requests by store shard.", "shard")
	shardDeleteErrors := reg.CounterVec("priu_shard_delete_errors_total",
		"Failed deletion requests by store shard.", "shard")
	for i := range s.reqs {
		sh := strconv.Itoa(i)
		s.reqs[i] = reqCounters{
			trains:       shardTrains.With(sh),
			deletes:      shardDeletes.With(sh),
			deleteErrors: shardDeleteErrors.With(sh),
		}
	}

	// Per-tenant request counters ("" is the anonymous tenant).
	s.tenantVecs = tenantVecs{
		trains: reg.CounterVec("priu_tenant_trains_total",
			"Session registrations by tenant.", "tenant"),
		deletes: reg.CounterVec("priu_tenant_deletes_total",
			"Deletion requests by tenant.", "tenant"),
		deleteErrors: reg.CounterVec("priu_tenant_delete_errors_total",
			"Failed deletion requests by tenant.", "tenant"),
		rowsDeleted: reg.CounterVec("priu_tenant_rows_deleted_total",
			"Training rows removed by tenant.", "tenant"),
		rateLimited: reg.CounterVec("priu_tenant_rate_limited_total",
			"Deletion batches delayed or rejected by the tenant rate limit.", "tenant"),
		quotaRejections: reg.CounterVec("priu_tenant_quota_rejections_total",
			"Registrations rejected by tenant quota.", "tenant"),
		whatifs: reg.CounterVec("priu_tenant_whatif_streams_total",
			"Completed what-if streams by tenant.", "tenant"),
		whatifSets: reg.CounterVec("priu_tenant_whatif_sets_total",
			"What-if candidate sets evaluated by tenant.", "tenant"),
		whatifActive: reg.GaugeVec("priu_tenant_whatif_active",
			"In-flight what-if streams by tenant (the concurrency-limit gauge).", "tenant"),
		whatifLimited: reg.CounterVec("priu_tenant_whatif_limited_total",
			"What-if streams rejected by the per-tenant concurrency limit.", "tenant"),
	}

	// Store tiers, read from Stats() at scrape time. One scrape coalesces all
	// of these into a single Stats() call (see cachedStats).
	stats := s.cachedStats()
	reg.GaugeFunc("priu_store_resident_sessions",
		"Sessions in the in-memory tier.", func() int64 { return int64(stats().Resident) })
	reg.GaugeFunc("priu_store_resident_bytes",
		"Bytes held by the in-memory tier.", func() int64 { return stats().ResidentBytes })
	reg.CounterFunc("priu_store_budget_evictions_total",
		"Sessions evicted by the resident LRU budget.", func() int64 { return stats().BudgetEvictions })
	reg.CounterFunc("priu_store_explicit_deletes_total",
		"Sessions dropped by client DELETE.", func() int64 { return stats().ExplicitDeletes })
	reg.GaugeFunc("priu_store_spilled_sessions",
		"Sessions resident only in the disk tier.", func() int64 { return int64(stats().Spilled) })
	reg.GaugeFunc("priu_store_spilled_bytes",
		"Approximate resident footprint of disk-tier-only sessions.", func() int64 { return stats().SpilledBytes })
	reg.CounterFunc("priu_store_spills_total",
		"Session snapshots spilled to disk.", func() int64 { return stats().Spills })
	reg.CounterFunc("priu_store_restores_total",
		"Sessions restored from a colder tier.", func() int64 { return stats().Restores })
	reg.GaugeFunc("priu_store_spill_dir_bytes",
		"On-disk size of the spill directory.", func() int64 { return stats().SpillDirBytes })
	reg.CounterFunc("priu_store_write_behind_spills_total",
		"Spills performed by the write-behind queue (subset of spills).", func() int64 { return stats().WriteBehindSpills })
	reg.GaugeFunc("priu_store_spill_queue_depth",
		"Write-behind queue backlog (pending + in-flight snapshots).", func() int64 { return int64(stats().SpillQueueDepth) })
	reg.CounterFunc("priu_store_spill_queue_full_total",
		"Write-behind enqueues dropped by backpressure.", func() int64 { return stats().SpillQueueFull })
	reg.CounterFunc("priu_store_disk_evictions_total",
		"Disk-only sessions dropped by the spill-directory budget.", func() int64 { return stats().DiskEvictions })
	reg.CounterFunc("priu_store_gc_removals_total",
		"Orphaned spill files removed by the age-based GC.", func() int64 { return stats().GCRemovals })
	reg.CounterFunc("priu_store_delta_spills_total",
		"Spills that wrote an O(batch) delta segment (subset of spills).", func() int64 { return stats().DeltaSpills })
	reg.CounterFunc("priu_store_compactions_total",
		"Delta chains folded into a new base file.", func() int64 { return stats().Compactions })
	reg.GaugeFunc("priu_store_delta_segments",
		"Delta segments currently on disk across all chains.", func() int64 { return int64(stats().DeltaSegments) })
	reg.CounterFunc("priu_store_stale_spills_total",
		"Publishes discarded because a newer cut won the chain race.", func() int64 { return stats().StaleSpills })
	reg.GaugeFunc("priu_store_pending_tombstones",
		"Deletion tombstones awaiting local-file or blob removal.", func() int64 { return int64(stats().PendingTombstones) })
	reg.GaugeFunc("priu_store_tenants",
		"Distinct named tenants with stored sessions.", func() int64 { return int64(tenantsWithData(stats())) })

	// Blob tier (all zero without -blob).
	reg.GaugeFunc("priu_blob_sessions",
		"Sessions with a certified copy in the shared blob tier.", func() int64 { return int64(stats().BlobSessions) })
	reg.GaugeFunc("priu_blob_bytes",
		"Bytes held in the shared blob tier.", func() int64 { return stats().BlobBytes })
	reg.CounterFunc("priu_blob_puts_total",
		"Completed blob uploads.", func() int64 { return stats().BlobPuts })
	reg.CounterFunc("priu_blob_gets_total",
		"Completed blob fetches.", func() int64 { return stats().BlobGets })
	reg.CounterFunc("priu_blob_deletes_total",
		"Completed blob deletes.", func() int64 { return stats().BlobDeletes })
	reg.CounterFunc("priu_blob_errors_total",
		"Failed blob operations.", func() int64 { return stats().BlobErrors })
	reg.CounterFunc("priu_blob_demotions_total",
		"Local spill files dropped in favor of their blob copies.", func() int64 { return stats().BlobDemotions })

	// par pool (process-global: the pool is shared across servers).
	reg.CounterFunc("priu_par_dispatches_total",
		"Helper closures accepted by the shared worker pool.", func() int64 { return par.Stats().Dispatches })
	reg.CounterFunc("priu_par_inline_total",
		"Helper shares run inline because the pool was saturated.", func() int64 { return par.Stats().Inline })

	// Cluster membership (all zero outside a fleet).
	reg.CounterFunc("priu_cluster_probes_total",
		"Peer liveness probes issued.", func() int64 {
			if s.cluster == nil {
				return 0
			}
			return s.cluster.Counters().Probes
		})
	reg.CounterFunc("priu_cluster_probe_failures_total",
		"Peer liveness probes that found the peer unreachable.", func() int64 {
			if s.cluster == nil {
				return 0
			}
			return s.cluster.Counters().ProbeFailures
		})
	reg.CounterFunc("priu_cluster_ring_changes_total",
		"Placement-ring rebuilds (alive-set transitions).", func() int64 {
			if s.cluster == nil {
				return 0
			}
			return s.cluster.Counters().RingChanges
		})
	reg.GaugeFunc("priu_cluster_alive",
		"Alive fleet members, as observed by this node.", func() int64 {
			if s.cluster == nil {
				return 0
			}
			return int64(len(s.cluster.Alive()))
		})
	reg.GaugeFunc("priu_cluster_ring_version",
		"Current placement-ring epoch.", func() int64 {
			if s.cluster == nil {
				return 0
			}
			return int64(s.cluster.Ring().Version())
		})
}

// cachedStats returns a store.Stats reader for the func-backed store metrics:
// the ~25 families of one /metrics scrape are read within microseconds of
// each other, so a short-lived snapshot turns a scrape into a single Stats()
// walk and keeps every family coherent (all from the same point in time).
// The JSON surfaces (/v1/stats, /healthz) call Stats() directly — they were
// already one call each.
func (s *Server) cachedStats() func() store.Stats {
	var (
		mu   sync.Mutex
		at   time.Time
		snap store.Stats
	)
	return func() store.Stats {
		mu.Lock()
		defer mu.Unlock()
		if at.IsZero() || time.Since(at) > 100*time.Millisecond {
			snap = s.st.Stats()
			at = time.Now()
		}
		return snap
	}
}

// tenantsWithData counts distinct named tenants with stored sessions — the
// one implementation behind the /healthz field and the priu_store_tenants
// gauge (previously computed by separate hand-rolled loops).
func tenantsWithData(st store.Stats) int {
	n := 0
	for name, ts := range st.Tenants {
		if name != "" && ts.Resident+ts.Spilled > 0 {
			n++
		}
	}
	return n
}

// routeLabel normalizes a request path to a bounded (generation, route) label
// pair: path parameters collapse to {id} so metric cardinality is fixed no
// matter how many sessions exist.
func routeLabel(r *http.Request) (gen, route string) {
	p := r.URL.Path
	switch {
	case p == "/healthz":
		return "health", "/healthz"
	case strings.HasPrefix(p, "/v1/model/"):
		return "v1", "/v1/model/{id}"
	case p == "/v1/train" || p == "/v1/delete" || p == "/v1/sessions" || p == "/v1/stats":
		return "v1", p
	case strings.HasPrefix(p, "/v1/"):
		return "v1", "other"
	case p == "/v2/sessions" || p == "/v2/meta" || p == "/v2/tenants/self/stats":
		return "v2", p
	case strings.HasPrefix(p, "/v2/sessions/"):
		rest := strings.TrimPrefix(p, "/v2/sessions/")
		if _, sub, ok := strings.Cut(rest, "/"); ok {
			switch sub {
			case "snapshot", "deletions", "whatif":
				return "v2", "/v2/sessions/{id}/" + sub
			}
			return "v2", "other"
		}
		return "v2", "/v2/sessions/{id}"
	case strings.HasPrefix(p, "/v2/"):
		return "v2", "other"
	}
	return "other", "other"
}

// obsWriter captures the response status for the request counter. Unwrap
// keeps http.NewResponseController working through the wrapper (the NDJSON
// streams need Flush and full-duplex).
type obsWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *obsWriter) WriteHeader(code int) {
	if !w.wrote {
		w.status = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *obsWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

func (w *obsWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// withObs is the outermost middleware: it adopts (or mints) the request's
// trace ID, opens the root span, and records latency and status. The trace
// ID is written back onto r.Header so everything downstream that re-issues
// the request — the fleet reverse proxy, peerDo — forwards it for free, and
// onto the response so clients (and the SDK's *APIError) can quote it.
func (s *Server) withObs(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gen, route := routeLabel(r)
		id := r.Header.Get(obs.TraceHeader)
		if !obs.ValidTraceID(id) {
			id = obs.NewTraceID()
		}
		r.Header.Set(obs.TraceHeader, id)
		w.Header().Set(obs.TraceHeader, id)
		ctx, root := s.tracer.StartRoot(r.Context(), id, r.Method+" "+route)
		ow := &obsWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(ow, r.WithContext(ctx))
		root.End()
		s.httpSeconds.With(gen, route).Observe(time.Since(start).Seconds())
		s.httpReqs.With(gen, route, strconv.Itoa(ow.status)).Inc()
	})
}
