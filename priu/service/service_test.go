package service

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(NewServer().Handler())
	t.Cleanup(ts.Close)
	return ts
}

func trainBody(t *testing.T, kind string, n, m int, seed int64) TrainRequest {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	features := make([][]float64, n)
	labels := make([]float64, n)
	truth := make([]float64, m)
	for j := range truth {
		truth[j] = rng.NormFloat64()
	}
	for i := range features {
		row := make([]float64, m)
		var dot float64
		for j := range row {
			row[j] = rng.NormFloat64()
			dot += row[j] * truth[j]
		}
		features[i] = row
		switch kind {
		case "linear":
			labels[i] = dot + 0.05*rng.NormFloat64()
		case "logistic":
			if dot >= 0 {
				labels[i] = 1
			} else {
				labels[i] = -1
			}
		case "multinomial":
			labels[i] = float64(rng.Intn(3))
		}
	}
	req := TrainRequest{
		Kind: kind, Features: features, Labels: labels,
		Eta: 0.01, Lambda: 0.05, BatchSize: 20, Iterations: 50, Seed: 1,
	}
	if kind == "multinomial" {
		req.Classes = 3
	}
	return req
}

func postJSON(t *testing.T, url string, body any, out any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

func TestTrainDeleteFetchRoundTrip(t *testing.T) {
	ts := newTestServer(t)
	for _, kind := range []string{"linear", "logistic", "multinomial"} {
		var tr TrainResponse
		resp := postJSON(t, ts.URL+"/v1/train", trainBody(t, kind, 100, 4, 7), &tr)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s train status %d", kind, resp.StatusCode)
		}
		if tr.SessionID == "" || len(tr.Parameters) == 0 || tr.ProvenanceMB <= 0 {
			t.Fatalf("%s bad train response %+v", kind, tr)
		}

		var dr DeleteResponse
		resp = postJSON(t, ts.URL+"/v1/delete", DeleteRequest{SessionID: tr.SessionID, Removed: []int{1, 5, 9}}, &dr)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s delete status %d", kind, resp.StatusCode)
		}
		if dr.TotalDeleted != 3 || dr.CosineVsPrev < 0.9 {
			t.Fatalf("%s bad delete response %+v", kind, dr)
		}

		// Cumulative second deletion.
		resp = postJSON(t, ts.URL+"/v1/delete", DeleteRequest{SessionID: tr.SessionID, Removed: []int{20}}, &dr)
		if resp.StatusCode != http.StatusOK || dr.TotalDeleted != 4 {
			t.Fatalf("%s cumulative delete: status %d resp %+v", kind, resp.StatusCode, dr)
		}

		// Fetch current model.
		mresp, err := http.Get(ts.URL + "/v1/model/" + tr.SessionID)
		if err != nil {
			t.Fatal(err)
		}
		var mr ModelResponse
		if err := json.NewDecoder(mresp.Body).Decode(&mr); err != nil {
			t.Fatal(err)
		}
		mresp.Body.Close()
		if mr.Kind != kind || mr.TotalDeleted != 4 {
			t.Fatalf("%s model response %+v", kind, mr)
		}
	}

	// Session list includes all three.
	lresp, err := http.Get(ts.URL + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	var sessions []map[string]any
	if err := json.NewDecoder(lresp.Body).Decode(&sessions); err != nil {
		t.Fatal(err)
	}
	lresp.Body.Close()
	if len(sessions) != 3 {
		t.Fatalf("sessions = %d", len(sessions))
	}
}

func TestTrainValidation(t *testing.T) {
	ts := newTestServer(t)
	cases := []TrainRequest{
		{},             // empty
		{Kind: "nope"}, // bad kind
		{Kind: "linear", Features: [][]float64{{1, 2}}, Labels: []float64{1, 2}}, // label mismatch
		{Kind: "linear", Features: [][]float64{{1, 2}, {1}}, Labels: []float64{1, 2},
			Eta: 0.1, Lambda: 0, BatchSize: 1, Iterations: 1}, // ragged rows
		{Kind: "logistic", Features: [][]float64{{1}, {2}}, Labels: []float64{1, 0.5},
			Eta: 0.1, Lambda: 0, BatchSize: 1, Iterations: 1}, // bad binary label
	}
	for i, c := range cases {
		resp := postJSON(t, ts.URL+"/v1/train", c, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("case %d: status %d, want 400", i, resp.StatusCode)
		}
	}
	// Wrong method.
	resp, err := http.Get(ts.URL + "/v1/train")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/train status %d", resp.StatusCode)
	}
}

func TestDeleteValidation(t *testing.T) {
	ts := newTestServer(t)
	var tr TrainResponse
	postJSON(t, ts.URL+"/v1/train", trainBody(t, "linear", 60, 3, 9), &tr)

	// Unknown session.
	resp := postJSON(t, ts.URL+"/v1/delete", DeleteRequest{SessionID: "nope", Removed: []int{1}}, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown session status %d", resp.StatusCode)
	}
	// Empty removal.
	resp = postJSON(t, ts.URL+"/v1/delete", DeleteRequest{SessionID: tr.SessionID}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty removal status %d", resp.StatusCode)
	}
	// Out-of-range removal.
	resp = postJSON(t, ts.URL+"/v1/delete", DeleteRequest{SessionID: tr.SessionID, Removed: []int{999}}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range removal status %d", resp.StatusCode)
	}
	// Unknown model id.
	mresp, err := http.Get(ts.URL + "/v1/model/nope")
	if err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model status %d", mresp.StatusCode)
	}
}

func TestDeleteMatchesDirectPrIU(t *testing.T) {
	// The service's delete result must equal calling the library directly.
	ts := newTestServer(t)
	body := trainBody(t, "linear", 80, 3, 11)
	var tr TrainResponse
	postJSON(t, ts.URL+"/v1/train", body, &tr)
	var dr DeleteResponse
	postJSON(t, ts.URL+"/v1/delete", DeleteRequest{SessionID: tr.SessionID, Removed: []int{2, 40}}, &dr)
	if len(dr.Parameters) != 3 {
		t.Fatalf("parameters %v", dr.Parameters)
	}
	// Parameter shift should be small but the response well-formed.
	if dr.UpdateSeconds < 0 {
		t.Fatal("negative update time")
	}
}
