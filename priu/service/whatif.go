package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"sort"
	"time"

	"repro/internal/metrics"
	"repro/priu"
	"repro/priu/obs"
)

// The what-if query plane: POST /v2/sessions/{id}/whatif evaluates candidate
// deletion sets against a session's provenance capture WITHOUT committing
// anything — the session's durable state (model, parameters, deletion log)
// is never touched. Candidates arrive either as one JSON body
// {"sets":[[...],...]} or as NDJSON lines {"remove":[...]}; each set is
// answered with one NDJSON WhatIfSetResult line (parameter digest, metric
// deltas vs the live model, eval time), and the stream ends with a
// WhatIfSummary line carrying the prefix-tree cache-hit count.
//
// All sets on one connection share a priu.WhatIfPlanner, so overlapping
// candidates pay for their common prefix once: the shared prefix is applied
// to a scratch cursor and forked where sets diverge (incrementally for the
// PrIU-opt families, by pure replay for the rest). Batch-mode sets fan out
// on the internal/par pool, bounded by the -whatif-workers knob; each tenant
// is limited to a configurable number of concurrent what-if streams (typed
// 429).

// Additional v2 error codes introduced by the what-if plane.
const (
	// ErrCodeGone marks a session that was deleted while a what-if stream
	// against it was in flight; the stream terminates after this line.
	ErrCodeGone = "gone"
	// ErrCodeWhatIfLimited marks a what-if request rejected because the
	// tenant already has its maximum number of concurrent what-if
	// evaluations in flight (HTTP 429; retry after one completes).
	ErrCodeWhatIfLimited = "whatif_limited"
)

// defaultWhatIfLimit is the per-tenant cap on concurrent what-if streams.
const defaultWhatIfLimit = 8

// WithWhatIfWorkers bounds how many candidate sets of one what-if batch
// evaluate concurrently (0 = the shared worker-pool width).
func WithWhatIfWorkers(n int) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.whatifWorkers = n
		}
	}
}

// WithWhatIfLimit caps each tenant's concurrent what-if streams; requests
// over the cap get a typed 429 (whatif_limited). 0 removes the cap.
func WithWhatIfLimit(n int) ServerOption { return func(s *Server) { s.whatifLimit = n } }

// WhatIfRequest is the JSON body of POST /v2/sessions/{id}/whatif (batch
// mode). Each inner slice is one candidate deletion set, evaluated on top of
// the session's already-committed deletions.
type WhatIfRequest struct {
	Sets [][]int `json:"sets"`
	// Parameters requests the hypothetical parameter vector on every result
	// line (the digest is always present).
	Parameters bool `json:"parameters,omitempty"`
}

// WhatIfSet is one NDJSON request line of the streaming mode
// (Content-Type: application/x-ndjson).
type WhatIfSet struct {
	Remove     []int `json:"remove"`
	Parameters bool  `json:"parameters,omitempty"`
}

// WhatIfDelta is the metric delta between a hypothetical model and the
// session's live model (see internal/metrics.Comparison).
type WhatIfDelta struct {
	L2Distance   float64 `json:"l2_distance"`
	Cosine       float64 `json:"cosine"`
	SignFlips    int     `json:"sign_flips"`
	MaxRelChange float64 `json:"max_rel_change"`
}

// WhatIfSetResult is the NDJSON response line for one evaluated candidate
// set. Digest is the same FNV-1a parameter digest the deletions stream
// reports, so a what-if can be compared bit-for-bit against a later commit.
type WhatIfSetResult struct {
	Set          int         `json:"set"`
	RowsRemoved  int         `json:"rows_removed"`
	TotalDeleted int         `json:"total_deleted"`
	EvalSeconds  float64     `json:"eval_seconds"`
	Digest       string      `json:"digest"`
	Delta        WhatIfDelta `json:"delta_vs_live"`
	// Parameters is only populated on request (WhatIfRequest.Parameters,
	// the per-line flag, or ?parameters=all).
	Parameters []float64 `json:"parameters,omitempty"`
}

// WhatIfSummary is the trailing NDJSON line of every what-if stream.
type WhatIfSummary struct {
	Summary   bool `json:"summary"`
	Sets      int  `json:"sets"`
	Evaluated int  `json:"evaluated"`
	Errors    int  `json:"errors"`
	// CacheHits counts prefix-tree edges reused across the sets — the
	// shared-prefix work the planner saved, in applied-row units.
	CacheHits int64 `json:"cache_hits"`
	// Incremental reports whether the session's family evaluated on the
	// incremental what-if cursor (vs pure replay).
	Incremental bool `json:"incremental"`
}

// whatifEvaluator carries one stream's immutable evaluation context: the
// session state snapshotted at stream open. Later committed deletions do not
// shift the baseline mid-stream.
type whatifEvaluator struct {
	planner   *priu.WhatIfPlanner
	committed []int        // sorted committed deletion log at open
	live      *priu.Model  // live model at open (delta baseline)
	inSet     map[int]bool // committed membership for validation
	n         int          // training-set rows
	maxRem    int
}

// validate checks one candidate set and returns its sorted union with the
// committed log (the id path the planner walks), or the typed error line.
func (e *whatifEvaluator) validate(candidate []int) ([]int, *APIError) {
	if len(candidate) == 0 {
		return nil, &APIError{Code: ErrCodeInvalidRemovals, Message: "empty what-if set"}
	}
	if len(candidate) > e.maxRem {
		return nil, &APIError{
			Code:    ErrCodeBatchTooLarge,
			Message: fmt.Sprintf("what-if set of %d removals exceeds the limit of %d", len(candidate), e.maxRem),
		}
	}
	seen := make(map[int]bool, len(candidate))
	for _, i := range candidate {
		if i < 0 || i >= e.n {
			return nil, &APIError{
				Code:    ErrCodeInvalidRemovals,
				Message: fmt.Sprintf("removal index %d out of range [0,%d)", i, e.n),
			}
		}
		if seen[i] || e.inSet[i] {
			return nil, &APIError{
				Code:    ErrCodeInvalidRemovals,
				Message: fmt.Sprintf("removal index %d is duplicated or already deleted", i),
			}
		}
		seen[i] = true
	}
	union := make([]int, 0, len(e.committed)+len(candidate))
	union = append(union, e.committed...)
	union = append(union, candidate...)
	sort.Ints(union)
	return union, nil
}

// result shapes one evaluated union into its wire line.
func (e *whatifEvaluator) result(setNo int, candidate, union []int, r priu.WhatIfResult, params bool) (WhatIfSetResult, *APIError) {
	if r.Err != nil {
		return WhatIfSetResult{}, &APIError{
			Code:    ErrCodeUpdateFailed,
			Message: fmt.Sprintf("set %d: %v", setNo, r.Err),
		}
	}
	cmp, err := metrics.Compare(r.Model, e.live)
	if err != nil {
		return WhatIfSetResult{}, &APIError{
			Code:    ErrCodeUpdateFailed,
			Message: fmt.Sprintf("set %d: comparing models: %v", setNo, err),
		}
	}
	out := WhatIfSetResult{
		Set:          setNo,
		RowsRemoved:  len(candidate),
		TotalDeleted: len(union),
		EvalSeconds:  r.Seconds,
		Digest:       ParamDigest(r.Model.Vec()),
		Delta: WhatIfDelta{
			L2Distance:   cmp.L2Distance,
			Cosine:       cmp.Cosine,
			SignFlips:    cmp.SignFlips,
			MaxRelChange: cmp.MaxRelMagnitudeChange,
		},
	}
	if params {
		out.Parameters = r.Model.Vec()
	}
	return out, nil
}

// handleV2WhatIf evaluates candidate deletion sets against a session without
// committing them. The session is pinned in the resident tier for the whole
// stream (the evictors leave pinned sessions and their spill files alone), so
// a long evaluation can never have its provenance dropped underneath it.
func (s *Server) handleV2WhatIf(w http.ResponseWriter, r *http.Request) {
	// Same full-duplex posture as the deletions stream: early errors must not
	// wait for an open-ended NDJSON request body to drain, and they close the
	// connection so a keep-alive reuse cannot race the unread body.
	rc := http.NewResponseController(w)
	_ = rc.EnableFullDuplex()
	earlyError := func(status int, headers map[string]string, code, format string, args ...any) {
		w.Header().Set("Connection", "close")
		for k, v := range headers {
			w.Header().Set(k, v)
		}
		writeV2Error(w, status, code, format, args...)
	}
	ten := tenantFor(r)
	tq := s.tc(ten.Name)
	wireID := r.PathValue("id")
	if !validWireID(wireID) {
		earlyError(http.StatusNotFound, nil, ErrCodeNotFound, "unknown session %q", wireID)
		return
	}
	id := ten.storeID(wireID)
	sess, ok := s.st.Get(id)
	if !ok {
		earlyError(http.StatusNotFound, nil, ErrCodeNotFound, "unknown session %q", wireID)
		return
	}
	if inFlight := tq.whatifActive.Add(1); s.whatifLimit > 0 && inFlight > int64(s.whatifLimit) {
		tq.whatifActive.Add(-1)
		tq.whatifLimited.Add(1)
		earlyError(http.StatusTooManyRequests,
			map[string]string{"Retry-After": "1"},
			ErrCodeWhatIfLimited,
			"tenant %q already has %d what-if evaluations in flight (limit %d)",
			ten.Name, inFlight-1, s.whatifLimit)
		return
	}
	defer tq.whatifActive.Add(-1)

	// Pin for the stream duration: budget eviction skips pinned sessions and
	// the disk-budget evictor skips resident sessions' spill files, so both
	// the in-memory provenance and its backing file survive a slow reader.
	sess.Pin()
	defer sess.Unpin()

	// Snapshot the state the whole stream evaluates against. The updater and
	// its provenance are immutable after capture; only the log and model need
	// the lock.
	sess.Mu.Lock()
	if sess.GoneLocked() {
		sess.Mu.Unlock()
		earlyError(http.StatusNotFound, nil, ErrCodeNotFound, "unknown session %q", wireID)
		return
	}
	sess.Touch()
	committed := append([]int(nil), sess.Deleted...)
	upd, live := sess.Upd, sess.Model
	rows := sess.DS.N()
	sess.Mu.Unlock()
	sort.Ints(committed)

	planStart := time.Now()
	_, planSpan := obs.StartSpan(r.Context(), "whatif.plan")
	planner, err := priu.NewWhatIfPlanner(upd)
	planSpan.End()
	s.whatifPlanSeconds.Observe(time.Since(planStart).Seconds())
	if err != nil {
		earlyError(http.StatusInternalServerError, nil, ErrCodeUpdateFailed,
			"building what-if planner: %v", err)
		return
	}
	ev := &whatifEvaluator{
		planner:   planner,
		committed: committed,
		live:      live,
		inSet:     make(map[int]bool, len(committed)),
		n:         rows,
		maxRem:    s.maxRemovals,
	}
	for _, i := range committed {
		ev.inSet[i] = true
	}

	s.whatifs.Add(1)
	tq.whatifs.Add(1)
	allParams := r.URL.Query().Get("parameters") == "all"
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flush := func() { _ = rc.Flush() }
	sets, evaluated, errCount := 0, 0, 0
	countSet := func() { sets++; s.whatifSets.Add(1); tq.whatifSets.Add(1) }
	writeErrLine := func(ae APIError) {
		errCount++
		_ = enc.Encode(ErrorEnvelope{Error: ae})
		flush()
	}
	writeResult := func(res WhatIfSetResult) {
		evaluated++
		s.whatifEvalSeconds.Observe(res.EvalSeconds)
		_ = enc.Encode(res)
		flush()
	}
	summary := func() {
		hits := planner.CacheHits()
		s.whatifCacheHits.Add(hits)
		_ = enc.Encode(WhatIfSummary{
			Summary: true, Sets: sets, Evaluated: evaluated, Errors: errCount,
			CacheHits: hits, Incremental: planner.Incremental(),
		})
		flush()
	}

	// sessionGone re-checks the store so a mid-stream DELETE is honored: the
	// client's instruction to forget the data wins over an open evaluation.
	sessionGone := func() bool {
		cur, ok := s.st.Get(id)
		if !ok {
			return true
		}
		cur.Mu.Lock()
		defer cur.Mu.Unlock()
		return cur.GoneLocked()
	}

	if mt, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type")); mt == "application/x-ndjson" {
		// Streaming mode: one candidate set per request line, answered in
		// lockstep; the planner (and its prefix tree) persists across lines.
		dec := json.NewDecoder(r.Body)
		for lineNo := 1; ; lineNo++ {
			var set WhatIfSet
			if err := dec.Decode(&set); err != nil {
				if errors.Is(err, io.EOF) {
					summary()
					return
				}
				writeErrLine(APIError{
					Code:    ErrCodeBadRequest,
					Message: fmt.Sprintf("set %d: malformed JSON: %v", lineNo, err),
				})
				summary()
				return // cannot resync a corrupt stream
			}
			countSet()
			if sessionGone() {
				writeErrLine(APIError{
					Code:    ErrCodeGone,
					Message: fmt.Sprintf("session %q was deleted during the what-if stream", wireID),
				})
				summary()
				return
			}
			union, apiErr := ev.validate(set.Remove)
			if apiErr != nil {
				writeErrLine(*apiErr)
				continue
			}
			_, evalSpan := obs.StartSpan(r.Context(), "whatif.eval")
			res := planner.EvalBatch([][]int{union}, 1)[0]
			evalSpan.End()
			line, apiErr := ev.result(sets, set.Remove, union, res, allParams || set.Parameters)
			if apiErr != nil {
				writeErrLine(*apiErr)
				continue
			}
			writeResult(line)
		}
	}

	// Batch mode: one JSON body, all sets planned on the shared prefix tree
	// and evaluated concurrently, results streamed back in request order.
	var req WhatIfRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		earlyError(http.StatusBadRequest, nil, ErrCodeBadRequest, "decoding request: %v", err)
		return
	}
	if len(req.Sets) == 0 {
		earlyError(http.StatusBadRequest, nil, ErrCodeBadRequest, "sets is required (send at least one candidate deletion set)")
		return
	}
	unions := make([][]int, len(req.Sets))
	setErrs := make([]*APIError, len(req.Sets))
	var valid [][]int
	for i, candidate := range req.Sets {
		union, apiErr := ev.validate(candidate)
		if apiErr != nil {
			setErrs[i] = apiErr
			continue
		}
		unions[i] = union
		valid = append(valid, union)
	}
	if sessionGone() {
		earlyError(http.StatusNotFound, nil, ErrCodeGone,
			"session %q was deleted before the what-if batch ran", wireID)
		return
	}
	_, evalSpan := obs.StartSpan(r.Context(), "whatif.eval")
	results := planner.EvalBatch(valid, s.whatifWorkers)
	evalSpan.End()
	next := 0
	for i, candidate := range req.Sets {
		countSet()
		if setErrs[i] != nil {
			writeErrLine(*setErrs[i])
			continue
		}
		res := results[next]
		next++
		line, apiErr := ev.result(sets, candidate, unions[i], res, req.Parameters || allParams)
		if apiErr != nil {
			writeErrLine(*apiErr)
			continue
		}
		writeResult(line)
	}
	summary()
}
