// Package priu is the public entry point of the repository: a uniform,
// importable facade over the PrIU provenance-based incremental model-update
// engines (Wu, Tannen, Davidson; SIGMOD 2020) implemented under internal/.
//
// The paper frames incremental updating as one abstraction — capture
// provenance once during training, then apply any deletion cheaply — and this
// package exposes exactly that shape:
//
//	u, err := priu.Train("linear", ds, priu.WithIterations(500))
//	updated, err := u.Update([]int{3, 17, 256}) // model without those samples
//
// Every model family (linear, logistic, multinomial, sparse-logistic, plus
// their PrIU-opt variants) implements Updater; optional capabilities —
// snapshot persistence, the linearized companion model, truncation /
// early-termination introspection — are discovered with interface assertions
// (Snapshotter, Linearized, Truncated, EarlyTerminated).
//
// Families are registered by name in a registry (Register / Families), so
// services, CLIs and benchmarks dispatch on strings instead of type-switching
// over concrete engine types. priu/service builds the versioned HTTP deletion
// service (v1 + v2 with snapshots and streaming deletions) on this interface,
// and priu/bench builds the paper's experiment harness on it.
package priu

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/gbm"
	"repro/internal/par"
)

// Version identifies the library and service API generation.
const Version = "2.0.0"

// Model is the trained parameter container shared by every family: a 1×m
// weight vector for regression and binary classification, q×m for
// multinomial. It is an alias of the internal trainer's model type, so values
// returned by Updater methods interoperate with all priu helpers.
type Model = gbm.Model

// TrainingSet is the minimal view of a training input: both dense
// (*priu.Dataset) and sparse (*priu.SparseDataset) datasets satisfy it.
// Families type-assert to the concrete representation they support.
type TrainingSet interface {
	// N returns the number of samples.
	N() int
	// M returns the number of features.
	M() int
}

// Updater is the unified interface of the paper's contribution: state
// captured during training that can propagate any later deletion to the
// model parameters without retraining.
type Updater interface {
	// Update returns the model that training without the removed samples
	// would (approximately) produce. The removal set is cumulative-free:
	// indices are into the original training set, and each call is
	// independent of previous calls.
	Update(removed []int) (*Model, error)
	// Model returns the initial model trained during capture.
	Model() *Model
	// FootprintBytes reports the memory held by the captured provenance.
	FootprintBytes() int64
}

// Snapshotter is the optional persistence capability: updaters that can
// serialize their captured provenance. The stream excludes the training data;
// restore it with ReadFrom (same family, same dataset) or bundle data and
// provenance together with WriteSnapshot/ReadSnapshot.
type Snapshotter interface {
	Updater
	WriteTo(w io.Writer) (int64, error)
}

// Linearized is the optional capability of families trained with the
// paper's linearized update rule (Sec 4.2): they carry the companion model
// w_L, which Theorem 4 bounds to within O((Δx)²) of the exact one.
type Linearized interface {
	LinearizedModel() *Model
}

// Truncated is the optional capability of families whose provenance matrices
// are stored as truncated SVD factors (Theorems 6/8).
type Truncated interface {
	// MaxRank returns the largest truncation rank across iterations
	// (m when full matrices are stored).
	MaxRank() int
}

// EarlyTerminated is the optional capability of the PrIU-opt families that
// stop provenance tracking early (Sec 5.4).
type EarlyTerminated interface {
	// Ts returns the iteration at which provenance tracking stopped.
	Ts() int
}

// Family is one registered model family: how to capture provenance on a
// training set, how to restore a persisted capture, and how to retrain from
// scratch (the BaseL reference the paper compares against).
type Family struct {
	// Name is the registry key ("linear", "logistic", ...).
	Name string
	// Task labels what the family expects in the dataset's Y column, so
	// services can build datasets for any registered family without
	// hardcoding names. The zero value is Regression.
	Task Task
	// Sparse marks families that train on *SparseDataset (CSR) input.
	Sparse bool
	// Capture trains the initial model while capturing provenance.
	Capture func(ds TrainingSet, cfg Config) (Updater, error)
	// Restore rebuilds an updater from a WriteTo stream and the original
	// training set. Nil when the family is not snapshottable.
	Restore func(r io.Reader, ds TrainingSet) (Updater, error)
	// Retrain trains from scratch without the removed samples, replaying
	// the same deterministic batch schedule capture used.
	Retrain func(ds TrainingSet, cfg Config, removed []int) (*Model, error)
	// Retrainer returns a prepared retrainer with the deletion-independent
	// setup (e.g. the batch schedule) prebuilt, so repeated baseline runs
	// don't pay it per call. Nil falls back to Retrain.
	Retrainer func(ds TrainingSet, cfg Config) (func(removed []int) (*Model, error), error)
}

var (
	familiesMu sync.RWMutex
	families   = map[string]Family{}
)

// Register adds a family to the registry. It panics on an empty name, a nil
// Capture, or a duplicate registration — registration is a package-init-time
// act and misuse is a programming error.
func Register(name string, f Family) {
	if name == "" || f.Capture == nil {
		panic("priu: Register requires a name and a Capture function")
	}
	familiesMu.Lock()
	defer familiesMu.Unlock()
	if _, dup := families[name]; dup {
		panic(fmt.Sprintf("priu: family %q registered twice", name))
	}
	f.Name = name
	families[name] = f
}

// Lookup returns the named family.
func Lookup(name string) (Family, bool) {
	familiesMu.RLock()
	defer familiesMu.RUnlock()
	f, ok := families[name]
	return f, ok
}

// Families lists the registered family names in sorted order.
func Families() []string {
	familiesMu.RLock()
	defer familiesMu.RUnlock()
	out := make([]string, 0, len(families))
	for name := range families {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Train captures provenance for the named family on the training set,
// starting from the package defaults and applying the given options.
func Train(family string, ds TrainingSet, opts ...Option) (Updater, error) {
	cfg := defaultConfig(ds)
	for _, opt := range opts {
		opt(&cfg)
	}
	return TrainConfig(family, ds, cfg)
}

// TrainConfig is Train with a fully explicit configuration: no defaulting is
// applied, so zero-valued hyperparameters fail validation exactly as the
// underlying trainers specify. Services that forward user-supplied configs
// verbatim use this entry point.
func TrainConfig(family string, ds TrainingSet, cfg Config) (Updater, error) {
	f, ok := Lookup(family)
	if !ok {
		return nil, fmt.Errorf("priu: unknown family %q (registered: %v)", family, Families())
	}
	if cfg.Workers != 0 {
		par.SetWorkers(cfg.Workers)
	}
	return f.Capture(ds, cfg)
}

// Retrain trains the named family's model from scratch without the removed
// samples — the BaseL reference of Sec 6.2. It replays the same deterministic
// batch schedule as Train with the same configuration.
func Retrain(family string, ds TrainingSet, removed []int, opts ...Option) (*Model, error) {
	cfg := defaultConfig(ds)
	for _, opt := range opts {
		opt(&cfg)
	}
	return RetrainConfig(family, ds, cfg, removed)
}

// RetrainConfig is Retrain with a fully explicit configuration.
func RetrainConfig(family string, ds TrainingSet, cfg Config, removed []int) (*Model, error) {
	f, ok := Lookup(family)
	if !ok {
		return nil, fmt.Errorf("priu: unknown family %q (registered: %v)", family, Families())
	}
	if f.Retrain == nil {
		return nil, fmt.Errorf("priu: family %q has no retrain baseline", family)
	}
	return f.Retrain(ds, cfg, removed)
}

// NewRetrainer returns a from-scratch retrainer with its deterministic batch
// schedule prebuilt. Benchmarks time only the returned closure, matching the
// paper's protocol of excluding deletion-independent setup from BaseL times.
func NewRetrainer(family string, ds TrainingSet, cfg Config) (func(removed []int) (*Model, error), error) {
	f, ok := Lookup(family)
	if !ok {
		return nil, fmt.Errorf("priu: unknown family %q (registered: %v)", family, Families())
	}
	if f.Retrainer != nil {
		return f.Retrainer(ds, cfg)
	}
	if f.Retrain == nil {
		return nil, fmt.Errorf("priu: family %q has no retrain baseline", family)
	}
	return func(removed []int) (*Model, error) { return f.Retrain(ds, cfg, removed) }, nil
}

// ReadFrom restores an updater from a Snapshotter.WriteTo stream. The family
// and the original training set must match the capture: the stream carries a
// dataset fingerprint that is verified on load.
func ReadFrom(family string, r io.Reader, ds TrainingSet) (Updater, error) {
	f, ok := Lookup(family)
	if !ok {
		return nil, fmt.Errorf("priu: unknown family %q (registered: %v)", family, Families())
	}
	if f.Restore == nil {
		return nil, fmt.Errorf("priu: family %q is not snapshottable", family)
	}
	return f.Restore(r, ds)
}

// SetWorkers sets the shared kernel worker-pool size (0 restores the
// GOMAXPROCS default) and returns the resulting size. One knob controls every
// parallel kernel in the library.
func SetWorkers(n int) int { return par.SetWorkers(n) }

// Workers returns the current worker-pool size.
func Workers() int { return par.Workers() }
