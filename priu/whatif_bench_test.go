package priu

import (
	"testing"
	"time"
)

// BenchmarkWhatIfBatch measures the what-if planner's shared-prefix tree
// against the naive alternative — k independent incremental replays, one per
// candidate set. The candidates share a long common prefix (the realistic
// "variations on one deletion request" shape), which the planner applies once
// and forks, so the reported "speedup" metric is the planner's win over
// evaluating each set from scratch. Gated by benchguard via
// BENCH_BASELINE.json.
func BenchmarkWhatIfBatch(b *testing.B) {
	prev := Workers()
	SetWorkers(1) // 1-core floor: the speedup must come from sharing, not parallelism
	b.Cleanup(func() { SetWorkers(prev) })

	// 48 features: every candidate set (28 rows) stays under Δn < m, the
	// regime the opt families answer incrementally.
	d, err := GenerateRegression("b-whatif", 400, 48, 0.1, 3)
	if err != nil {
		b.Fatal(err)
	}
	u, err := Train(FamilyLinearOpt, d,
		WithEta(5e-3), WithLambda(0.05), WithBatchSize(50),
		WithIterations(25), WithSeed(11), WithLinearizerCells(50_000))
	if err != nil {
		b.Fatal(err)
	}

	// 8 candidate sets: a 24-row shared prefix plus a distinct 4-row tail
	// each, ascending so every set walks the same trie path first.
	const k, prefixLen, tailLen = 8, 24, 4
	prefix := make([]int, prefixLen)
	for i := range prefix {
		prefix[i] = i * 3 // 0, 3, ..., 69
	}
	sets := make([][]int, k)
	for s := range sets {
		set := make([]int, 0, prefixLen+tailLen)
		set = append(set, prefix...)
		for j := 0; j < tailLen; j++ {
			set = append(set, 100+s*tailLen+j)
		}
		sets[s] = set
	}

	// Baseline: each set evaluated independently — exactly what k separate
	// what-if calls (or a planner-less server) would cost.
	const reps = 3
	start := time.Now()
	for r := 0; r < reps; r++ {
		for _, set := range sets {
			if _, err := u.Update(set); err != nil {
				b.Fatal(err)
			}
		}
	}
	baselineNs := time.Since(start).Nanoseconds() / reps

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := NewWhatIfPlanner(u)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range p.EvalBatch(sets, 1) {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
	b.StopTimer()
	perOp := b.Elapsed().Nanoseconds() / int64(b.N)
	if perOp > 0 {
		b.ReportMetric(float64(baselineNs)/float64(perOp), "speedup")
	}
}
