package priu

import (
	"bytes"
	"strings"
	"testing"
)

// testWorkers forces a single worker so parallel-kernel merge order cannot
// introduce run-to-run float differences; restored on cleanup.
func testWorkers(t *testing.T) {
	t.Helper()
	prev := Workers()
	SetWorkers(1)
	t.Cleanup(func() { SetWorkers(prev) })
}

func denseSet(t *testing.T, family string) *Dataset {
	t.Helper()
	var (
		d   *Dataset
		err error
	)
	switch family {
	case FamilyLinear, FamilyLinearOpt:
		d, err = GenerateRegression("t-lin", 150, 8, 0.1, 3)
	case FamilyLogistic, FamilyLogisticOpt:
		d, err = GenerateBinary("t-log", 150, 8, 0.8, 4)
	case FamilyMultinomial, FamilyMultinomialOpt:
		d, err = GenerateMulticlass("t-mult", 180, 8, 3, 1.5, 5)
	default:
		t.Fatalf("no dense dataset for family %q", family)
	}
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func testOpts() []Option {
	return []Option{
		WithEta(5e-3), WithLambda(0.05), WithBatchSize(30),
		WithIterations(25), WithSeed(11), WithLinearizerCells(50_000),
	}
}

func TestFamiliesRegistered(t *testing.T) {
	want := []string{
		FamilyLinear, FamilyLinearOpt, FamilyLogistic, FamilyLogisticOpt,
		FamilyMultinomial, FamilyMultinomialOpt, FamilySparseLogistic,
	}
	got := Families()
	for _, name := range want {
		found := false
		for _, g := range got {
			if g == name {
				found = true
			}
		}
		if !found {
			t.Errorf("family %q not registered (got %v)", name, got)
		}
	}
}

func TestTrainAllFamilies(t *testing.T) {
	testWorkers(t)
	for _, fam := range []string{
		FamilyLinear, FamilyLinearOpt, FamilyLogistic, FamilyLogisticOpt,
		FamilyMultinomial, FamilyMultinomialOpt,
	} {
		u, err := Train(fam, denseSet(t, fam), testOpts()...)
		if err != nil {
			t.Fatalf("Train(%s): %v", fam, err)
		}
		if u.Model() == nil {
			t.Fatalf("Train(%s): nil initial model", fam)
		}
		if u.FootprintBytes() <= 0 {
			t.Fatalf("Train(%s): non-positive footprint", fam)
		}
		upd, err := u.Update([]int{1, 5, 9})
		if err != nil {
			t.Fatalf("Update(%s): %v", fam, err)
		}
		if len(upd.Vec()) == 0 {
			t.Fatalf("Update(%s): empty parameters", fam)
		}
	}
	sp, err := GenerateSparseBinary("t-sp", 200, 500, 12, 9)
	if err != nil {
		t.Fatal(err)
	}
	u, err := Train(FamilySparseLogistic, sp, testOpts()...)
	if err != nil {
		t.Fatalf("Train(sparse-logistic): %v", err)
	}
	if _, err := u.Update([]int{0, 3}); err != nil {
		t.Fatalf("Update(sparse-logistic): %v", err)
	}
}

func TestTrainConfigRejectsZeroHyperparameters(t *testing.T) {
	d := denseSet(t, FamilyLinear)
	// TrainConfig applies no defaults: a zero eta must fail validation, the
	// behavior services rely on when forwarding user configs verbatim.
	if _, err := TrainConfig(FamilyLinear, d, Config{Lambda: 0.1, BatchSize: 10, Iterations: 5, Seed: 1}); err == nil {
		t.Fatal("TrainConfig with zero eta should fail")
	}
	if _, err := Train("no-such-family", d); err == nil || !strings.Contains(err.Error(), "unknown family") {
		t.Fatalf("unknown family error missing, got %v", err)
	}
	if _, err := Train(FamilySparseLogistic, d); err == nil {
		t.Fatal("sparse family should reject dense dataset")
	}
}

func TestCapabilities(t *testing.T) {
	testWorkers(t)
	logi, err := Train(FamilyLogistic, denseSet(t, FamilyLogistic), testOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := logi.(Linearized); !ok {
		t.Error("logistic updater should implement Linearized")
	}
	if _, ok := logi.(Truncated); !ok {
		t.Error("logistic updater should implement Truncated")
	}
	if _, ok := logi.(Snapshotter); !ok {
		t.Error("logistic updater should implement Snapshotter")
	}
	opt, err := Train(FamilyLogisticOpt, denseSet(t, FamilyLogisticOpt), testOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	et, ok := opt.(EarlyTerminated)
	if !ok {
		t.Fatal("logistic-opt updater should implement EarlyTerminated")
	}
	if ts := et.Ts(); ts < 1 || ts > 25 {
		t.Errorf("Ts() = %d out of range", ts)
	}
	lin, err := Train(FamilyLinearOpt, denseSet(t, FamilyLinearOpt), testOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := lin.(Snapshotter); !ok {
		t.Error("linear-opt updater should implement Snapshotter")
	}
	if _, ok := opt.(Snapshotter); !ok {
		t.Error("logistic-opt updater should implement Snapshotter")
	}
}

// TestSnapshotRoundTrip is the acceptance check: all seven families survive
// WriteTo → ReadFrom (via the full WriteSnapshot envelope) with
// bitwise-identical Update output on a fixed removal set — the opt families
// rebuild their eigenbases on load and must still agree to the last bit.
func TestSnapshotRoundTrip(t *testing.T) {
	testWorkers(t)
	removal := []int{2, 7, 19, 42}
	cases := []struct {
		family string
		ds     TrainingSet
	}{
		{FamilyLinear, denseSet(t, FamilyLinear)},
		{FamilyLogistic, denseSet(t, FamilyLogistic)},
		{FamilyMultinomial, denseSet(t, FamilyMultinomial)},
		{FamilyLinearOpt, denseSet(t, FamilyLinearOpt)},
		{FamilyLogisticOpt, denseSet(t, FamilyLogisticOpt)},
		{FamilyMultinomialOpt, denseSet(t, FamilyMultinomialOpt)},
	}
	sp, err := GenerateSparseBinary("t-snap-sp", 200, 400, 10, 21)
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, struct {
		family string
		ds     TrainingSet
	}{FamilySparseLogistic, sp})

	for _, tc := range cases {
		opts := append(testOpts(), WithFullCaches())
		u, err := Train(tc.family, tc.ds, opts...)
		if err != nil {
			t.Fatalf("%s: train: %v", tc.family, err)
		}
		var buf bytes.Buffer
		if err := WriteSnapshot(&buf, tc.family, tc.ds, u); err != nil {
			t.Fatalf("%s: WriteSnapshot: %v", tc.family, err)
		}
		fam2, ds2, u2, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: ReadSnapshot: %v", tc.family, err)
		}
		if fam2 != tc.family {
			t.Fatalf("restored family %q, want %q", fam2, tc.family)
		}
		if ds2.N() != tc.ds.N() || ds2.M() != tc.ds.M() {
			t.Fatalf("%s: restored dataset %dx%d, want %dx%d",
				tc.family, ds2.N(), ds2.M(), tc.ds.N(), tc.ds.M())
		}
		want, err := u.Update(removal)
		if err != nil {
			t.Fatalf("%s: original update: %v", tc.family, err)
		}
		got, err := u2.Update(removal)
		if err != nil {
			t.Fatalf("%s: restored update: %v", tc.family, err)
		}
		wv, gv := want.Vec(), got.Vec()
		if len(wv) != len(gv) {
			t.Fatalf("%s: parameter count %d vs %d", tc.family, len(gv), len(wv))
		}
		for i := range wv {
			if wv[i] != gv[i] {
				t.Fatalf("%s: parameter %d differs after round-trip: %v vs %v",
					tc.family, i, gv[i], wv[i])
			}
		}
	}
}

func TestReadFromRejectsWrongDataset(t *testing.T) {
	testWorkers(t)
	d := denseSet(t, FamilyLinear)
	u, err := Train(FamilyLinear, d, testOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := u.(Snapshotter).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	other, err := GenerateRegression("t-other", 150, 8, 0.1, 99)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrom(FamilyLinear, bytes.NewReader(buf.Bytes()), other); err == nil {
		t.Fatal("ReadFrom should reject a fingerprint mismatch")
	}
	if _, err := ReadFrom(FamilyLinearOpt, bytes.NewReader(buf.Bytes()), d); err == nil {
		t.Fatal("ReadFrom should reject a non-snapshottable family")
	}
}

func TestRetrainMatchesCaptureSchedule(t *testing.T) {
	testWorkers(t)
	d := denseSet(t, FamilyLinear)
	u, err := Train(FamilyLinear, d, testOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	// Retraining with an empty removal set replays the identical schedule, so
	// it must reproduce the capture-time initial model exactly.
	re, err := Retrain(FamilyLinear, d, nil, testOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	uv, rv := u.Model().Vec(), re.Vec()
	for i := range uv {
		if uv[i] != rv[i] {
			t.Fatalf("retrain diverges from capture at parameter %d: %v vs %v", i, rv[i], uv[i])
		}
	}
}
