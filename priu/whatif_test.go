package priu

import (
	"testing"
)

func bitwiseEqual(a, b *Model) bool {
	av, bv := a.Vec(), b.Vec()
	if len(av) != len(bv) {
		return false
	}
	for i := range av {
		if av[i] != bv[i] {
			return false
		}
	}
	return true
}

func TestWhatIfPlannerIncrementalBitwise(t *testing.T) {
	testWorkers(t)
	u, err := Train(FamilyLinearOpt, denseSet(t, FamilyLinearOpt), testOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewWhatIfPlanner(u)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Incremental() {
		t.Fatal("linear-opt should plan incrementally")
	}
	sets := [][]int{
		{3, 17, 42},
		{3, 17, 42, 60}, // extends the first: full prefix reuse
		{3, 17, 55},     // diverges after {3, 17}
		{3, 17, 42},     // duplicate: memoized leaf
		{90, 95},        // disjoint
		{},              // empty set = current model
	}
	results := p.EvalBatch(sets, 2)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("set %d: %v", i, r.Err)
		}
		want, err := u.Update(sets[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bitwiseEqual(r.Model, want) {
			t.Fatalf("set %d: planner result differs from Update", i)
		}
	}
	if results[0].Model != results[3].Model {
		t.Fatal("duplicate set should return the memoized model")
	}
	// Shared prefixes were reused: {3,17,42} (3 hits) + {3,17} (2 hits) +
	// the duplicate's full walk (3 hits) = 8.
	if p.CacheHits() < 8 {
		t.Fatalf("cache hits = %d, want >= 8", p.CacheHits())
	}
}

func TestWhatIfPlannerFallbackFamily(t *testing.T) {
	testWorkers(t)
	// Base linear has no WhatIfer capability: the planner must fall back to
	// pure replay with identical results.
	u, err := Train(FamilyLinear, denseSet(t, FamilyLinear), testOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewWhatIfPlanner(u)
	if err != nil {
		t.Fatal(err)
	}
	if p.Incremental() {
		t.Fatal("base linear should use the replay fallback")
	}
	for _, ids := range [][]int{{2, 9}, {2, 9, 30}, nil} {
		got, err := p.Eval(ids)
		if err != nil {
			t.Fatal(err)
		}
		want, err := u.Update(ids)
		if err != nil {
			t.Fatal(err)
		}
		if !bitwiseEqual(got, want) {
			t.Fatalf("replay fallback differs from Update for %v", ids)
		}
	}
}

func TestWhatIfPlannerNodeCap(t *testing.T) {
	testWorkers(t)
	u, err := Train(FamilyLinearOpt, denseSet(t, FamilyLinearOpt), testOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewWhatIfPlanner(u)
	if err != nil {
		t.Fatal(err)
	}
	p.MaxNodes = 3 // root + 2 retained nodes
	sets := [][]int{{1, 2}, {1, 3, 5}, {4, 6}}
	results := p.EvalBatch(sets, 1)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("set %d: %v", i, r.Err)
		}
		want, err := u.Update(sets[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bitwiseEqual(r.Model, want) {
			t.Fatalf("set %d: capped planner result differs from Update", i)
		}
	}
	if p.Nodes() > 3 {
		t.Fatalf("retained nodes = %d, want <= cap 3", p.Nodes())
	}
}

func TestWhatIfPlannerRejectsBadSets(t *testing.T) {
	testWorkers(t)
	u, err := Train(FamilyLinearOpt, denseSet(t, FamilyLinearOpt), testOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewWhatIfPlanner(u)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][]int{{5, 5}, {9, 3}, {-1}, {100000}} {
		if _, err := p.Eval(bad); err == nil {
			t.Fatalf("set %v should be rejected", bad)
		}
	}
	// The trie still works after rejections.
	got, err := p.Eval([]int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	want, err := u.Update([]int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !bitwiseEqual(got, want) {
		t.Fatal("post-rejection eval differs from Update")
	}
}
