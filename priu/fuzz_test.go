package priu

import (
	"bytes"
	"testing"
)

// fuzzSeedSnapshot builds one small valid session snapshot (the happy-path
// seed the mutator perturbs).
func fuzzSeedSnapshot(f *testing.F, family string, deleted []int) []byte {
	f.Helper()
	d, err := GenerateRegression("fuzz", 20, 3, 0.05, 1)
	if err != nil {
		f.Fatal(err)
	}
	u, err := Train(family, d,
		WithEta(0.01), WithLambda(0.05), WithBatchSize(10),
		WithIterations(5), WithSeed(1), WithFullCaches())
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSessionSnapshot(&buf, family, d, u, deleted); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadSessionSnapshot hammers the session-snapshot decoder with mutated
// streams: it must never panic or over-allocate, and whatever it accepts
// must be a coherent session (registered family, non-nil training set and
// updater, every deletion-log index in range). Seed corpus in
// testdata/fuzz/FuzzReadSessionSnapshot.
func FuzzReadSessionSnapshot(f *testing.F) {
	valid := fuzzSeedSnapshot(f, "linear", []int{2, 7})
	f.Add(valid)
	f.Add(valid[:len(valid)/2])  // truncated mid-provenance
	f.Add(valid[:16])            // truncated mid-header
	f.Add([]byte("PRSNgarbage")) // magic then junk
	f.Add([]byte{})              // empty
	corrupted := append([]byte(nil), valid...)
	corrupted[7] ^= 0xff // flip a version/length byte
	f.Add(corrupted)

	f.Fuzz(func(t *testing.T, data []byte) {
		family, ds, u, deleted, err := ReadSessionSnapshot(bytes.NewReader(data))
		if err != nil {
			return // rejected: fine, as long as it didn't panic
		}
		if ds == nil || u == nil {
			t.Fatalf("accepted snapshot with nil parts: ds=%v u=%v", ds, u)
		}
		if _, ok := Lookup(family); !ok {
			t.Fatalf("accepted snapshot of unregistered family %q", family)
		}
		n := ds.N()
		for _, idx := range deleted {
			if idx < 0 || idx >= n {
				t.Fatalf("accepted out-of-range deletion index %d (n=%d)", idx, n)
			}
		}
	})
}
