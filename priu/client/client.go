// Package client is the typed Go SDK for the PrIU deletion service's /v2
// API: session CRUD, snapshot export/restore streaming, the full-duplex
// NDJSON deletions stream (with server-digest verification), and tenant
// stats — all authenticated with the same "Authorization: Bearer" API keys
// priu/service resolves to tenants.
//
//	cl := client.New("http://localhost:8080", client.WithAPIKey(key))
//	sr, err := cl.CreateSession(ctx, service.CreateSessionRequest{...})
//	st, err := cl.StreamDeletions(ctx, sr.SessionID, client.StreamVerifyDigests())
//	res, err := st.Send([]int{3, 17, 256})
//
// Wire types are shared with repro/priu/service, so the SDK can never drift
// from the server's formats. Every non-2xx response is decoded into
// *APIError, carrying the typed v2 error code and, for rate-limited calls,
// the server's Retry-After.
package client

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/priu/obs"
	"repro/priu/service"
)

// Client talks to one priu deletion service — or, with WithPeers, to a
// replica fleet. It is safe for concurrent use.
type Client struct {
	base      string
	peers     []string
	retries   int
	key       string
	hc        *http.Client
	placement *placement
}

// Option configures New.
type Option func(*Client)

// WithAPIKey authenticates every request with the tenant API key.
func WithAPIKey(key string) Option { return func(c *Client) { c.key = key } }

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles). The default follows the fleet's 307 ownership
// redirects with the API key re-attached (Go strips Authorization across
// hosts); a substituted client is used as-is.
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithPeers supplies the other replicas of a priuserve fleet. Requests that
// fail at the transport level — or with a transient 502 peer_unavailable /
// 503 resident_pressure — are retried against the next replica with jittered
// backoff, so a node loss costs a retry, not an error. Streams
// (StreamDeletions, Snapshot bodies in flight) are not replayed.
func WithPeers(urls ...string) Option {
	return func(c *Client) {
		for _, u := range urls {
			c.peers = append(c.peers, strings.TrimRight(u, "/"))
		}
	}
}

// WithRetries sets the total attempt count for retryable requests (default:
// one attempt per configured base URL, twice around the fleet).
func WithRetries(n int) Option { return func(c *Client) { c.retries = n } }

// New returns a client for the service at baseURL (e.g. "http://host:8080").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(baseURL, "/")}
	for _, opt := range opts {
		opt(c)
	}
	if c.hc == nil {
		// A fleet member answers requests for sessions it doesn't own with
		// a 307 to the owner. net/http drops Authorization when following a
		// redirect to a different host, so the default client re-attaches it
		// (fleet peers share one trust domain — the same key file).
		c.hc = &http.Client{CheckRedirect: func(req *http.Request, via []*http.Request) error {
			if len(via) >= 10 {
				return fmt.Errorf("client: stopped after 10 redirects")
			}
			if c.key != "" {
				req.Header.Set("Authorization", "Bearer "+c.key)
			}
			// A fleet 307 means our cached placement (if any) pointed at a
			// non-owner; refresh the ring before the next request.
			if c.placement != nil {
				c.placement.markStale()
			}
			return nil
		}}
	}
	return c
}

// APIError is a non-2xx service response: the HTTP status, the typed v2
// error code ("not_found", "insufficient_quota", "rate_limited", ...) and
// message, and — when the server sent one — how long to wait before
// retrying. Errors returned mid-stream by DeletionStream.Send carry a zero
// Status (the stream itself is still HTTP 200).
type APIError struct {
	Status     int
	Code       string
	Message    string
	RetryAfter time.Duration
	// TraceID is the X-Priu-Trace ID the failing request ran under; quote it
	// when reporting — operators can pull the request's span tree from the
	// server's /v2/debug/traces/{id} admin endpoint.
	TraceID string
}

func (e *APIError) Error() string {
	msg := e.Message
	if msg == "" {
		msg = "request failed"
	}
	if e.Status != 0 {
		msg = fmt.Sprintf("%s (http %d)", msg, e.Status)
	}
	if e.Code != "" {
		return fmt.Sprintf("priu: %s: %s", e.Code, msg)
	}
	return "priu: " + msg
}

// IsRateLimited reports whether err is a rate-limit rejection; callers
// should wait RetryAfter and resend.
func IsRateLimited(err error) bool {
	ae, ok := err.(*APIError)
	return ok && ae.Code == service.ErrCodeRateLimited
}

// IsQuota reports whether err is a tenant-quota rejection.
func IsQuota(err error) bool {
	ae, ok := err.(*APIError)
	return ok && ae.Code == service.ErrCodeQuota
}

// IsSpillQuota reports whether err is a spill-byte-cap rejection (HTTP 507):
// the tenant's on-disk spill usage must shrink — delete sessions — before
// new registrations are admitted.
func IsSpillQuota(err error) bool {
	ae, ok := err.(*APIError)
	return ok && ae.Code == service.ErrCodeSpillQuota
}

// IsNotFound reports whether err is an unknown-session (or route) error.
func IsNotFound(err error) bool {
	ae, ok := err.(*APIError)
	return ok && ae.Code == service.ErrCodeNotFound
}

// IsResidentPressure reports whether err is a transient 503: the server's
// resident tier is at budget with every evictable session pinned. Wait
// RetryAfter and resend (the fleet-aware retry loop does this itself).
func IsResidentPressure(err error) bool {
	ae, ok := err.(*APIError)
	return ok && ae.Code == service.ErrCodeResidentPressure
}

// IsPeerUnavailable reports whether err is a fleet forward that failed
// because the session's owning replica did not answer; retrying reaches the
// failed-over owner.
func IsPeerUnavailable(err error) bool {
	ae, ok := err.(*APIError)
	return ok && ae.Code == service.ErrCodePeerUnavailable
}

// decodeError turns a non-2xx response into *APIError. It understands both
// the v2 envelope and v1's flat {"error": "..."} shape.
func decodeError(resp *http.Response) *APIError {
	ae := &APIError{Status: resp.StatusCode, TraceID: resp.Header.Get(obs.TraceHeader)}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil {
			ae.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	var env struct {
		Error json.RawMessage `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err == nil && len(env.Error) > 0 {
		var typed service.APIError
		if err := json.Unmarshal(env.Error, &typed); err == nil && typed.Code != "" {
			ae.Code, ae.Message = typed.Code, typed.Message
			if typed.RetryAfterSeconds > 0 {
				ae.RetryAfter = time.Duration(typed.RetryAfterSeconds * float64(time.Second))
			}
			return ae
		}
		var flat string
		if err := json.Unmarshal(env.Error, &flat); err == nil {
			ae.Message = flat
			return ae
		}
	}
	ae.Message = strings.TrimSpace(string(body))
	return ae
}

// streamAPIError maps an NDJSON error line into *APIError (Status 0: the
// stream is still 200).
func streamAPIError(e service.APIError) *APIError {
	return &APIError{
		Code:       e.Code,
		Message:    e.Message,
		RetryAfter: time.Duration(e.RetryAfterSeconds * float64(time.Second)),
	}
}

// newRequest builds an authenticated request for a service path.
func (c *Client) newRequest(ctx context.Context, method, path string, body io.Reader) (*http.Request, error) {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return nil, err
	}
	if c.key != "" {
		req.Header.Set("Authorization", "Bearer "+c.key)
	}
	return req, nil
}

// retarget points a cloned request at another replica's base URL.
func retarget(req *http.Request, base string) error {
	u, err := url.Parse(base)
	if err != nil {
		return fmt.Errorf("client: bad replica URL %q: %w", base, err)
	}
	req.URL.Scheme = u.Scheme
	req.URL.Host = u.Host
	req.Host = ""
	return nil
}

// doRetry executes a request, retrying transport errors and transient
// rejections (502 peer_unavailable, 503 resident_pressure) across the
// configured replica set with jittered backoff — honoring a server
// Retry-After when one was sent. Requests whose bodies cannot be replayed
// (GetBody unset on a non-nil body) are executed exactly once.
func (c *Client) doRetry(req *http.Request) (*http.Response, error) {
	bases := c.orderBases(req.Context(), req.URL.Path)
	attempts := c.retries
	if attempts <= 0 {
		attempts = 2 * len(bases)
	}
	if attempts == 1 || (req.Body != nil && req.GetBody == nil) {
		// Single-shot requests still benefit from placement: aim the one
		// attempt at the likely owner.
		if bases[0] != c.base {
			if err := retarget(req, bases[0]); err != nil {
				return nil, err
			}
		}
		return c.hc.Do(req)
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		r2 := req.Clone(req.Context())
		if err := retarget(r2, bases[i%len(bases)]); err != nil {
			return nil, err
		}
		if req.GetBody != nil {
			body, err := req.GetBody()
			if err != nil {
				return nil, err
			}
			r2.Body = body
		}
		resp, err := c.hc.Do(r2)
		retryAfter := time.Duration(0)
		switch {
		case err != nil:
			lastErr = err
		case resp.StatusCode == http.StatusBadGateway || resp.StatusCode == http.StatusServiceUnavailable:
			ae := decodeError(resp)
			resp.Body.Close()
			lastErr, retryAfter = ae, ae.RetryAfter
		default:
			return resp, nil
		}
		if i == attempts-1 {
			break
		}
		// Jittered exponential backoff, 25–75ms doubling per round, capped
		// at 1s; a server-sent Retry-After (capped at 2s) wins when longer.
		wait := time.Duration(float64(50*time.Millisecond) * float64(int(1)<<uint(i%8)) * (0.5 + rand.Float64()*0.5))
		if wait > time.Second {
			wait = time.Second
		}
		if retryAfter > wait {
			wait = min(retryAfter, 2*time.Second)
		}
		select {
		case <-time.After(wait):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	return nil, lastErr
}

// doJSON executes a request and decodes a 2xx JSON response into out.
func (c *Client) doJSON(req *http.Request, out any) error {
	resp, err := c.doRetry(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return decodeError(resp)
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// CreateSession trains a new session (dense features or a CSR triple; see
// service.CreateSessionRequest) and returns its metadata and initial
// parameters.
func (c *Client) CreateSession(ctx context.Context, req service.CreateSessionRequest) (*service.SessionResponse, error) {
	buf, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := c.newRequest(ctx, http.MethodPost, "/v2/sessions", strings.NewReader(string(buf)))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	var sr service.SessionResponse
	if err := c.doJSON(hreq, &sr); err != nil {
		return nil, err
	}
	return &sr, nil
}

// GetSession fetches a session's metadata and current parameters.
func (c *Client) GetSession(ctx context.Context, id string) (*service.SessionResponse, error) {
	req, err := c.newRequest(ctx, http.MethodGet, "/v2/sessions/"+id, nil)
	if err != nil {
		return nil, err
	}
	var sr service.SessionResponse
	if err := c.doJSON(req, &sr); err != nil {
		return nil, err
	}
	return &sr, nil
}

// ListSessionsPage fetches one page of the calling tenant's sessions.
// limit <= 0 asks for everything in one page; cursor resumes after the last
// session ID of the previous page. NextCursor is empty on the final page.
func (c *Client) ListSessionsPage(ctx context.Context, limit int, cursor string) (*service.SessionListResponse, error) {
	path := "/v2/sessions"
	q := url.Values{}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	if cursor != "" {
		q.Set("cursor", cursor)
	}
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	req, err := c.newRequest(ctx, http.MethodGet, path, nil)
	if err != nil {
		return nil, err
	}
	var page service.SessionListResponse
	if err := c.doJSON(req, &page); err != nil {
		return nil, err
	}
	return &page, nil
}

// ListSessions lists all of the calling tenant's sessions (resident and
// spilled), transparently following pagination cursors.
func (c *Client) ListSessions(ctx context.Context) ([]service.SessionInfo, error) {
	var out []service.SessionInfo
	it := c.Sessions(ctx, 0)
	for it.Next() {
		out = append(out, it.Session())
	}
	return out, it.Err()
}

// Sessions returns an iterator over the tenant's sessions that fetches pages
// of pageSize lazily (pageSize <= 0 uses one unpaged request). Typical use:
//
//	it := cl.Sessions(ctx, 100)
//	for it.Next() {
//		si := it.Session()
//		...
//	}
//	if err := it.Err(); err != nil { ... }
func (c *Client) Sessions(ctx context.Context, pageSize int) *SessionIterator {
	return &SessionIterator{c: c, ctx: ctx, pageSize: pageSize}
}

// SessionIterator walks a paginated session listing. It is not safe for
// concurrent use.
type SessionIterator struct {
	c        *Client
	ctx      context.Context
	pageSize int
	page     []service.SessionInfo
	idx      int
	cursor   string
	done     bool
	err      error
}

// Next advances to the next session, fetching the next page when the current
// one is exhausted. It returns false at the end of the listing or on error.
func (it *SessionIterator) Next() bool {
	if it.err != nil {
		return false
	}
	if it.idx+1 < len(it.page) {
		it.idx++
		return true
	}
	if it.done && it.page != nil {
		return false
	}
	page, err := it.c.ListSessionsPage(it.ctx, it.pageSize, it.cursor)
	if err != nil {
		it.err = err
		return false
	}
	it.page, it.idx = page.Sessions, 0
	it.cursor = page.NextCursor
	it.done = page.NextCursor == ""
	if len(it.page) == 0 {
		if it.done {
			return false
		}
		return it.Next()
	}
	return true
}

// Session returns the current session; valid only after a true Next.
func (it *SessionIterator) Session() service.SessionInfo { return it.page[it.idx] }

// Err returns the first error the iterator hit, if any.
func (it *SessionIterator) Err() error { return it.err }

// DeleteSession drops a session in every storage tier.
func (c *Client) DeleteSession(ctx context.Context, id string) error {
	req, err := c.newRequest(ctx, http.MethodDelete, "/v2/sessions/"+id, nil)
	if err != nil {
		return err
	}
	return c.doJSON(req, nil)
}

// Snapshot streams a session's self-contained snapshot (family + training
// data + deletion log + provenance). The caller must Close the reader.
func (c *Client) Snapshot(ctx context.Context, id string) (io.ReadCloser, error) {
	req, err := c.newRequest(ctx, http.MethodGet, "/v2/sessions/"+id+"/snapshot", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.doRetry(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, decodeError(resp)
	}
	return resp.Body, nil
}

// SnapshotTo streams a session's snapshot into w, returning the byte count.
func (c *Client) SnapshotTo(ctx context.Context, id string, w io.Writer) (int64, error) {
	rc, err := c.Snapshot(ctx, id)
	if err != nil {
		return 0, err
	}
	defer rc.Close()
	return io.Copy(w, rc)
}

// RestoreSnapshot creates a session from snapshot bytes (a Snapshot stream,
// possibly from another server), replaying its deletion log so honored
// deletions stay deleted.
func (c *Client) RestoreSnapshot(ctx context.Context, snapshot io.Reader) (*service.SessionResponse, error) {
	req, err := c.newRequest(ctx, http.MethodPost, "/v2/sessions", snapshot)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	var sr service.SessionResponse
	if err := c.doJSON(req, &sr); err != nil {
		return nil, err
	}
	return &sr, nil
}

// TenantStats fetches the calling tenant's usage, limits and counters.
func (c *Client) TenantStats(ctx context.Context) (*service.TenantStatsResponse, error) {
	req, err := c.newRequest(ctx, http.MethodGet, "/v2/tenants/self/stats", nil)
	if err != nil {
		return nil, err
	}
	var ts service.TenantStatsResponse
	if err := c.doJSON(req, &ts); err != nil {
		return nil, err
	}
	return &ts, nil
}

// Meta fetches the server's capability descriptor: version, trainable
// families, feature flags (auth mode, spill tier, what-if plane) and
// effective limits.
func (c *Client) Meta(ctx context.Context) (*service.MetaResponse, error) {
	req, err := c.newRequest(ctx, http.MethodGet, "/v2/meta", nil)
	if err != nil {
		return nil, err
	}
	var m service.MetaResponse
	if err := c.doJSON(req, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// Health fetches the unauthenticated load-balancer probe.
func (c *Client) Health(ctx context.Context) (*service.HealthResponse, error) {
	req, err := c.newRequest(ctx, http.MethodGet, "/healthz", nil)
	if err != nil {
		return nil, err
	}
	var h service.HealthResponse
	if err := c.doJSON(req, &h); err != nil {
		return nil, err
	}
	return &h, nil
}
