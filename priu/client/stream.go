package client

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/priu/obs"
	"repro/priu/service"
)

// StreamOption configures StreamDeletions.
type StreamOption func(*DeletionStream)

// StreamAllParameters asks the server for the full updated parameter vector
// on every batch (the digest is always present).
func StreamAllParameters() StreamOption { return func(st *DeletionStream) { st.allParams = true } }

// StreamVerifyDigests requests parameters with every batch and verifies them
// against the server-computed digest, failing the Send on any mismatch. This
// is the end-to-end integrity check: the digest is an FNV-1a hash over the
// exact float bits of the updated model.
func StreamVerifyDigests() StreamOption { return func(st *DeletionStream) { st.verify = true } }

// DeletionStream is one full-duplex NDJSON connection to
// POST /v2/sessions/{id}/deletions: each Send writes one removal batch and
// reads the server's result line for it. It is not safe for concurrent use —
// the protocol is strictly request/response per batch on one connection.
type DeletionStream struct {
	ctx       context.Context
	pw        *io.PipeWriter
	enc       *json.Encoder
	respCh    chan streamOpen
	br        *bufio.Reader
	resp      *http.Response
	allParams bool
	verify    bool
	err       error // sticky: the stream is unusable once set
}

type streamOpen struct {
	resp *http.Response
	err  error
}

// StreamDeletions opens the deletions stream for a session. The connection
// is established lazily: the server sends its response headers with the
// first batch's result, so open errors (unknown session, missing key, an
// exhausted rate limit) surface on the first Send.
func (c *Client) StreamDeletions(ctx context.Context, id string, opts ...StreamOption) (*DeletionStream, error) {
	st := &DeletionStream{ctx: ctx, respCh: make(chan streamOpen, 1)}
	for _, opt := range opts {
		opt(st)
	}
	pr, pw := io.Pipe()
	st.pw = pw
	st.enc = json.NewEncoder(pw)
	path := "/v2/sessions/" + id + "/deletions"
	if st.allParams || st.verify {
		path += "?parameters=all"
	}
	req, err := c.newRequest(ctx, http.MethodPost, path, pr)
	if err != nil {
		return nil, err
	}
	// A stream body cannot be replayed, so it gets exactly one target; with
	// placement on, aim it at the session's likely owner to skip the fleet's
	// transparent proxy hop.
	if bases := c.orderBases(ctx, "/v2/sessions/"+id); bases[0] != c.base {
		if err := retarget(req, bases[0]); err != nil {
			return nil, err
		}
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	go func() {
		resp, err := c.hc.Do(req)
		st.respCh <- streamOpen{resp, err}
	}()
	return st, nil
}

// Send writes one removal batch and reads its result line. A *APIError with
// code "rate_limited" (or "invalid_removals", "batch_too_large", ...) leaves
// the stream open — wait RetryAfter and resend — while transport errors,
// malformed-stream errors and "not_found" are sticky.
func (st *DeletionStream) Send(remove []int) (*service.DeletionResult, error) {
	if st.err != nil {
		return nil, st.err
	}
	batch := service.DeletionBatch{Remove: remove}
	if err := st.enc.Encode(batch); err != nil {
		st.err = fmt.Errorf("client: writing batch: %w", err)
		return nil, st.err
	}
	if st.br == nil {
		// First batch: the response (headers included) arrives only now.
		select {
		case open := <-st.respCh:
			if open.err != nil {
				st.err = open.err
				return nil, st.err
			}
			if open.resp.StatusCode != http.StatusOK {
				st.err = decodeError(open.resp)
				open.resp.Body.Close()
				return nil, st.err
			}
			st.resp = open.resp
			st.br = bufio.NewReader(open.resp.Body)
		case <-st.ctx.Done():
			st.err = st.ctx.Err()
			return nil, st.err
		}
	}
	line, err := st.br.ReadBytes('\n')
	if err != nil {
		st.err = fmt.Errorf("client: reading result line: %w", err)
		return nil, st.err
	}
	// A result line is either a DeletionResult or an error envelope.
	var probe struct {
		Error *service.APIError `json:"error"`
		service.DeletionResult
	}
	if err := json.Unmarshal(line, &probe); err != nil {
		st.err = fmt.Errorf("client: malformed result line: %w", err)
		return nil, st.err
	}
	if probe.Error != nil {
		ae := streamAPIError(*probe.Error)
		ae.TraceID = st.resp.Header.Get(obs.TraceHeader)
		if ae.Code == service.ErrCodeNotFound || ae.Code == service.ErrCodeBadRequest {
			// The server terminates the stream after these.
			st.err = ae
		}
		return nil, ae
	}
	res := probe.DeletionResult
	if st.verify {
		if len(res.Parameters) == 0 {
			st.err = fmt.Errorf("client: digest verification requested but batch %d returned no parameters", res.Batch)
			return nil, st.err
		}
		if got := service.ParamDigest(res.Parameters); got != res.Digest {
			st.err = fmt.Errorf("client: batch %d parameter digest mismatch: computed %s, server sent %s",
				res.Batch, got, res.Digest)
			return nil, st.err
		}
	}
	return &res, nil
}

// SendWait is Send, but when a batch is rate-limited mid-stream it sleeps
// the server's Retry-After (bounded by the context) and resends until
// admitted. A rate-limited rejection at stream open (HTTP 429) is NOT
// retried — the server refused the connection, so the error is sticky and
// the caller must wait and open a fresh stream.
func (st *DeletionStream) SendWait(remove []int) (*service.DeletionResult, error) {
	for {
		res, err := st.Send(remove)
		if err == nil || !IsRateLimited(err) || st.err != nil {
			return res, err
		}
		wait := err.(*APIError).RetryAfter
		if wait <= 0 {
			wait = 100 * time.Millisecond
		}
		select {
		case <-time.After(wait):
		case <-st.ctx.Done():
			return nil, st.ctx.Err()
		}
	}
}

// Close shuts the request side down and releases the connection. It is safe
// after errors and safe to call twice.
func (st *DeletionStream) Close() error {
	_ = st.pw.Close()
	if st.resp == nil {
		// The open goroutine may still deliver a response; reap it without
		// blocking on a server that never answered.
		select {
		case open := <-st.respCh:
			if open.resp != nil {
				open.resp.Body.Close()
			}
		default:
		}
		return nil
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(st.resp.Body, 1<<20))
	return st.resp.Body.Close()
}
