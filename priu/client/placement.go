package client

import (
	"context"
	"strings"
	"sync"

	"repro/priu/cluster"
)

// WithPlacement turns on client-side owner routing for session-affine
// requests. The client fetches the fleet's placement ring from /v2/meta (and
// the caller's tenant name from /v2/tenants/self/stats when authenticated),
// computes each session's likely owner with the same rendezvous hash the
// servers use, and sends the request there first — skipping the 307
// redirect/proxy hop on the common path. Placement is advisory: when the ring
// is stale or the owner unreachable the fleet's own routing still answers
// correctly, and a followed redirect marks the cached ring stale so the next
// request refreshes it (picking up ring_version changes).
//
// No-op against a non-fleet server (/v2/meta carries no cluster block).
func WithPlacement() Option { return func(c *Client) { c.placement = &placement{} } }

// placement caches one placement epoch: the ring built from /v2/meta's alive
// list and the tenant namespace prefix sessions are stored under.
type placement struct {
	mu      sync.Mutex
	loaded  bool
	ring    *cluster.Ring // nil once loaded = not a fleet
	version uint64
	tenant  string
	haveTen bool
}

// markStale forces a ring refresh on the next owner computation. Called when
// a followed redirect proves the cached placement wrong.
func (p *placement) markStale() {
	p.mu.Lock()
	p.loaded = false
	p.mu.Unlock()
}

// owner returns the advertised base URL of the replica that owns wireID, or
// ok=false when placement cannot help (no fleet, refresh failed, empty ring).
func (p *placement) owner(ctx context.Context, c *Client, wireID string) (string, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.loaded {
		// Meta and tenant-stats paths are not session-affine, so these
		// client calls cannot re-enter owner().
		m, err := c.Meta(ctx)
		if err != nil {
			return "", false // transparent fallback; retry the refresh next time
		}
		if m.Cluster == nil {
			p.ring, p.loaded = nil, true
			return "", false
		}
		p.ring = cluster.NewRing(m.Cluster.RingVersion, m.Cluster.Alive)
		p.version = m.Cluster.RingVersion
		if c.key != "" && !p.haveTen {
			ts, err := c.TenantStats(ctx)
			if err != nil {
				p.ring = nil
				return "", false
			}
			p.tenant, p.haveTen = ts.Tenant, true
		}
		p.loaded = true
	}
	if p.ring == nil {
		return "", false
	}
	// Servers place sessions by storage ID: tenant-namespaced for
	// authenticated callers, the bare wire ID for anonymous ones.
	key := wireID
	if p.tenant != "" {
		key = p.tenant + "/" + wireID
	}
	return p.ring.Owner(key)
}

// sessionWireID extracts the session ID from a session-affine /v2 path
// ("/v2/sessions/{id}" and its subresources); "" for everything else,
// including creation and listing.
func sessionWireID(path string) string {
	const prefix = "/v2/sessions/"
	if !strings.HasPrefix(path, prefix) {
		return ""
	}
	id := path[len(prefix):]
	if i := strings.IndexByte(id, '/'); i >= 0 {
		id = id[:i]
	}
	return id
}

// orderBases returns the replica try-order for a request path: the configured
// bases, with the computed owner moved (or inserted) first when placement is
// on and the path names a session.
func (c *Client) orderBases(ctx context.Context, path string) []string {
	bases := append([]string{c.base}, c.peers...)
	if c.placement == nil {
		return bases
	}
	id := sessionWireID(path)
	if id == "" {
		return bases
	}
	owner, ok := c.placement.owner(ctx, c, id)
	if !ok {
		return bases
	}
	ordered := make([]string, 0, len(bases)+1)
	ordered = append(ordered, owner)
	for _, b := range bases {
		if b != owner {
			ordered = append(ordered, b)
		}
	}
	return ordered
}
