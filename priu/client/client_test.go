package client

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/priu/service"
	"repro/priu/store"
)

// newServer spins an in-process service with optional auth/tenants.
func newServer(t *testing.T, opts ...service.ServerOption) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(service.NewServer(opts...).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// authedServer builds a keyring-backed server with -auth=required semantics.
func authedServer(t *testing.T, tenants ...service.TenantConfig) *httptest.Server {
	t.Helper()
	path := filepath.Join(t.TempDir(), "keys.json")
	buf, err := json.Marshal(map[string]any{"tenants": tenants})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf, 0o600); err != nil {
		t.Fatal(err)
	}
	kr, err := service.LoadKeyring(path)
	if err != nil {
		t.Fatal(err)
	}
	return newServer(t, service.WithAuth(service.AuthRequired, kr))
}

// denseRequest builds a small deterministic linear training request.
func denseRequest(t *testing.T, n, m int, seed int64) service.CreateSessionRequest {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	truth := make([]float64, m)
	for j := range truth {
		truth[j] = rng.NormFloat64()
	}
	features := make([][]float64, n)
	labels := make([]float64, n)
	for i := range features {
		row := make([]float64, m)
		var dot float64
		for j := range row {
			row[j] = rng.NormFloat64()
			dot += row[j] * truth[j]
		}
		features[i] = row
		labels[i] = dot + 0.05*rng.NormFloat64()
	}
	return service.CreateSessionRequest{
		Family: "linear", Features: features, Labels: labels,
		Eta: 0.01, Lambda: 0.05, BatchSize: 20, Iterations: 40, Seed: 1,
	}
}

func TestClientSessionLifecycle(t *testing.T) {
	ts := newServer(t)
	cl := New(ts.URL)
	ctx := context.Background()

	h, err := cl.Health(ctx)
	if err != nil || h.Version == "" {
		t.Fatalf("health: %v %+v", err, h)
	}

	sr, err := cl.CreateSession(ctx, denseRequest(t, 80, 4, 3))
	if err != nil {
		t.Fatal(err)
	}
	if sr.Family != "linear" || len(sr.Parameters) != 4 {
		t.Fatalf("create response %+v", sr)
	}

	got, err := cl.GetSession(ctx, sr.SessionID)
	if err != nil || got.SessionID != sr.SessionID {
		t.Fatalf("get: %v %+v", err, got)
	}

	rows, err := cl.ListSessions(ctx)
	if err != nil || len(rows) != 1 || rows[0].SessionID != sr.SessionID {
		t.Fatalf("list: %v %+v", err, rows)
	}

	stats, err := cl.TenantStats(ctx)
	if err != nil || stats.Trains != 1 || stats.Authenticated {
		t.Fatalf("tenant stats: %v %+v", err, stats)
	}

	if err := cl.DeleteSession(ctx, sr.SessionID); err != nil {
		t.Fatal(err)
	}
	_, err = cl.GetSession(ctx, sr.SessionID)
	if !IsNotFound(err) {
		t.Fatalf("get after delete: %v, want not_found APIError", err)
	}
	ae := err.(*APIError)
	if ae.Status != 404 || ae.Code != service.ErrCodeNotFound {
		t.Fatalf("APIError %+v", ae)
	}
}

func TestClientStreamingDeletionsWithDigestVerification(t *testing.T) {
	ts := newServer(t)
	cl := New(ts.URL)
	ctx := context.Background()
	sr, err := cl.CreateSession(ctx, denseRequest(t, 120, 4, 7))
	if err != nil {
		t.Fatal(err)
	}

	st, err := cl.StreamDeletions(ctx, sr.SessionID, StreamVerifyDigests())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	total := 0
	for i, batch := range [][]int{{1, 2, 3}, {10, 11}, {42}} {
		res, err := st.Send(batch)
		if err != nil {
			t.Fatalf("batch %d: %v", i+1, err)
		}
		total += len(batch)
		if res.Batch != i+1 || res.TotalDeleted != total {
			t.Fatalf("batch %d result %+v", i+1, res)
		}
		if len(res.Parameters) != 4 || res.Digest == "" {
			t.Fatalf("batch %d missing verified parameters: %+v", i+1, res)
		}
	}

	// Validation errors are typed and leave the stream usable.
	_, err = st.Send([]int{1}) // duplicate
	ae, ok := err.(*APIError)
	if !ok || ae.Code != service.ErrCodeInvalidRemovals {
		t.Fatalf("duplicate removal error %v", err)
	}
	res, err := st.Send([]int{55})
	if err != nil || res.TotalDeleted != total+1 {
		t.Fatalf("stream did not survive validation error: %v %+v", err, res)
	}
}

func TestClientStreamUnknownSession(t *testing.T) {
	ts := newServer(t)
	cl := New(ts.URL)
	st, err := cl.StreamDeletions(context.Background(), "nope")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	_, err = st.Send([]int{1})
	if !IsNotFound(err) {
		t.Fatalf("stream to unknown session: %v, want not_found", err)
	}
	// The error is sticky.
	if _, err2 := st.Send([]int{2}); err2 == nil {
		t.Fatal("send after stream death should fail")
	}
}

func TestClientSnapshotRoundTrip(t *testing.T) {
	tsA := newServer(t)
	tsB := newServer(t)
	ctx := context.Background()
	clA, clB := New(tsA.URL), New(tsB.URL)

	sr, err := clA.CreateSession(ctx, denseRequest(t, 90, 4, 13))
	if err != nil {
		t.Fatal(err)
	}
	st, err := clA.StreamDeletions(ctx, sr.SessionID, StreamVerifyDigests())
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Send([]int{7, 8})
	if err != nil {
		t.Fatal(err)
	}
	st.Close()

	var snap bytes.Buffer
	n, err := clA.SnapshotTo(ctx, sr.SessionID, &snap)
	if err != nil || n <= 0 {
		t.Fatalf("snapshot: %v (%d bytes)", err, n)
	}
	restored, err := clB.RestoreSnapshot(ctx, &snap)
	if err != nil {
		t.Fatal(err)
	}
	if restored.TotalDeleted != 2 || !restored.RestoredFromSnp {
		t.Fatalf("restored %+v", restored)
	}
	if got := service.ParamDigest(restored.Parameters); got != res.Digest {
		t.Fatalf("restored digest %s, want %s", got, res.Digest)
	}
}

func TestClientAuthAndQuotaErrors(t *testing.T) {
	ts := authedServer(t,
		service.TenantConfig{Name: "alice", Key: "ak_alice", MaxSessions: 1},
		service.TenantConfig{Name: "bob", Key: "ak_bob"})
	ctx := context.Background()

	// Missing and wrong keys are typed 401s.
	for _, cl := range []*Client{New(ts.URL), New(ts.URL, WithAPIKey("ak_wrong"))} {
		_, err := cl.ListSessions(ctx)
		ae, ok := err.(*APIError)
		if !ok || ae.Status != 401 || ae.Code != service.ErrCodeUnauthorized {
			t.Fatalf("unauthenticated list: %v", err)
		}
	}

	alice := New(ts.URL, WithAPIKey("ak_alice"))
	sr, err := alice.CreateSession(ctx, denseRequest(t, 60, 3, 1))
	if err != nil {
		t.Fatal(err)
	}
	_, err = alice.CreateSession(ctx, denseRequest(t, 60, 3, 2))
	if !IsQuota(err) {
		t.Fatalf("over-quota create: %v, want insufficient_quota", err)
	}
	if ae := err.(*APIError); ae.Status != 429 {
		t.Fatalf("quota status %d, want 429", ae.Status)
	}

	// Tenants are isolated through the SDK too.
	bob := New(ts.URL, WithAPIKey("ak_bob"))
	if _, err := bob.GetSession(ctx, sr.SessionID); !IsNotFound(err) {
		t.Fatalf("bob sees alice's session: %v", err)
	}
	rows, err := bob.ListSessions(ctx)
	if err != nil || len(rows) != 0 {
		t.Fatalf("bob's list: %v %+v", err, rows)
	}

	stats, err := alice.TenantStats(ctx)
	if err != nil || stats.Tenant != "alice" || !stats.Authenticated || stats.QuotaRejections != 1 {
		t.Fatalf("alice stats: %v %+v", err, stats)
	}
}

func TestClientSendWaitRidesOutRateLimit(t *testing.T) {
	ts := authedServer(t,
		service.TenantConfig{Name: "alice", Key: "ak_alice", DeletionRowsPerSec: 40, Burst: 4})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	cl := New(ts.URL, WithAPIKey("ak_alice"))
	sr, err := cl.CreateSession(ctx, denseRequest(t, 120, 4, 7))
	if err != nil {
		t.Fatal(err)
	}
	st, err := cl.StreamDeletions(ctx, sr.SessionID, StreamVerifyDigests())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// 3 batches × 4 rows against a 4-row burst at 40 rows/s: SendWait must
	// absorb the rate_limited rejections and land every batch.
	total := 0
	for i, batch := range [][]int{{1, 2, 3, 4}, {5, 6, 7, 8}, {9, 10, 11, 12}} {
		res, err := st.SendWait(batch)
		if err != nil {
			t.Fatalf("batch %d: %v", i+1, err)
		}
		total += len(batch)
		if res.TotalDeleted != total {
			t.Fatalf("batch %d result %+v", i+1, res)
		}
	}
	stats, err := cl.TenantStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RateLimited == 0 {
		t.Fatal("expected at least one rate_limited rejection")
	}
	if stats.RowsDeleted != int64(total) {
		t.Fatalf("rows deleted %d, want %d", stats.RowsDeleted, total)
	}
}

func TestClientSendWaitDoesNotSpinOnOpen429(t *testing.T) {
	// A stream rejected at open with HTTP 429 is dead — SendWait must
	// surface the error instead of sleeping and retrying the corpse forever.
	ts := authedServer(t,
		service.TenantConfig{Name: "alice", Key: "ak_alice", DeletionRowsPerSec: 2, Burst: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	cl := New(ts.URL, WithAPIKey("ak_alice"))
	sr, err := cl.CreateSession(ctx, denseRequest(t, 60, 3, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Drain the 1-row bucket on a first stream.
	st1, err := cl.StreamDeletions(ctx, sr.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st1.Send([]int{1}); err != nil {
		t.Fatal(err)
	}
	st1.Close()
	// Open a second stream immediately: the server rejects it with 429.
	st2, err := cl.StreamDeletions(ctx, sr.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	done := make(chan error, 1)
	go func() {
		_, err := st2.SendWait([]int{2})
		done <- err
	}()
	select {
	case err := <-done:
		if !IsRateLimited(err) {
			t.Fatalf("open-429 SendWait error %v, want rate_limited APIError", err)
		}
		if err.(*APIError).Status != 429 {
			t.Fatalf("open-429 status %d, want 429", err.(*APIError).Status)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("SendWait spun on a dead (open-429) stream instead of returning")
	}
}

func TestClientQuotaCountsSpilledSessions(t *testing.T) {
	// A spilled session still belongs to the tenant: with a tiered store and
	// a resident budget of 1, a quota of 2 fills up even though only one
	// session is in memory.
	dir := t.TempDir()
	path := filepath.Join(t.TempDir(), "keys.json")
	buf, _ := json.Marshal(map[string]any{"tenants": []service.TenantConfig{
		{Name: "alice", Key: "ak_alice", MaxSessions: 2},
	}})
	if err := os.WriteFile(path, buf, 0o600); err != nil {
		t.Fatal(err)
	}
	kr, err := service.LoadKeyring(path)
	if err != nil {
		t.Fatal(err)
	}
	mem := store.NewMemory(store.WithMaxSessions(1), store.WithTenantLimits(kr.Limits))
	tiered, err := store.NewTiered(dir, mem)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = tiered.Close() })
	ts := newServer(t, service.WithStore(tiered), service.WithAuth(service.AuthRequired, kr))
	cl := New(ts.URL, WithAPIKey("ak_alice"))
	ctx := context.Background()

	a, err := cl.CreateSession(ctx, denseRequest(t, 60, 3, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.CreateSession(ctx, denseRequest(t, 60, 3, 2)); err != nil {
		t.Fatal(err) // spills a
	}
	if _, err := cl.CreateSession(ctx, denseRequest(t, 60, 3, 3)); !IsQuota(err) {
		t.Fatalf("third create with one spilled: %v, want insufficient_quota", err)
	}
	stats, err := cl.TenantStats(ctx)
	if err != nil || stats.SpilledSessions != 1 || stats.ResidentSessions != 1 {
		t.Fatalf("stats %v %+v", err, stats)
	}
	// The spilled session is still fully servable.
	got, err := cl.GetSession(ctx, a.SessionID)
	if err != nil || got.SessionID != a.SessionID {
		t.Fatalf("spilled session get: %v %+v", err, got)
	}
}

// TestIsSpillQuota: a 507 spill_quota envelope decodes into *APIError and is
// recognized by the predicate (and only by it).
func TestIsSpillQuota(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInsufficientStorage)
		_, _ = io.WriteString(w, `{"error":{"code":"spill_quota","message":"tenant over its spill-byte cap"}}`)
	}))
	defer ts.Close()
	cl := New(ts.URL)
	_, err := cl.CreateSession(context.Background(), service.CreateSessionRequest{Family: "linear"})
	if !IsSpillQuota(err) {
		t.Fatalf("IsSpillQuota(%v) = false, want true", err)
	}
	if IsQuota(err) || IsRateLimited(err) || IsNotFound(err) {
		t.Fatalf("507 spill_quota matched an unrelated predicate: %v", err)
	}
	ae, ok := err.(*APIError)
	if !ok || ae.Status != http.StatusInsufficientStorage || ae.Code != service.ErrCodeSpillQuota {
		t.Fatalf("decoded error %+v", err)
	}
}
