package client

import (
	"context"
	"testing"

	"repro/priu/service"
)

// optRequest is denseRequest retargeted at the optimized linear family, so
// the server answers what-ifs incrementally instead of by replay.
func optRequest(t *testing.T, n, m int, seed int64) service.CreateSessionRequest {
	t.Helper()
	req := denseRequest(t, n, m, seed)
	req.Family = "linear-opt"
	return req
}

func TestClientWhatIfBatch(t *testing.T) {
	ts := newServer(t)
	cl := New(ts.URL)
	ctx := context.Background()
	sr, err := cl.CreateSession(ctx, optRequest(t, 100, 4, 3))
	if err != nil {
		t.Fatal(err)
	}

	// Overlapping candidates: prefix, superset, duplicate prefix — plus one
	// invalid set mixed in. The invalid set must come back as a typed error
	// without poisoning its neighbors.
	sets := [][]int{{3, 17}, {3, 17, 42}, {3, 17}, {9, 9}}
	rep, err := cl.WhatIf(ctx, sr.SessionID, sets, WhatIfAllParameters())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Outcomes) != 4 {
		t.Fatalf("outcomes %d, want 4", len(rep.Outcomes))
	}
	for i := 0; i < 3; i++ {
		oc := rep.Outcomes[i]
		if oc.Err != nil || oc.Result == nil {
			t.Fatalf("set %d: %+v", i, oc)
		}
		if oc.Result.Set != i+1 || oc.Result.RowsRemoved != len(sets[i]) || oc.Result.TotalDeleted != len(sets[i]) {
			t.Fatalf("set %d result %+v", i, oc.Result)
		}
		if oc.Result.Digest == "" || len(oc.Result.Parameters) != 4 {
			t.Fatalf("set %d missing digest/parameters: %+v", i, oc.Result)
		}
		if got := service.ParamDigest(oc.Result.Parameters); got != oc.Result.Digest {
			t.Fatalf("set %d digest %s does not cover parameters (%s)", i, oc.Result.Digest, got)
		}
	}
	if d0, d2 := rep.Outcomes[0].Result.Digest, rep.Outcomes[2].Result.Digest; d0 != d2 {
		t.Fatalf("duplicate sets diverged: %s vs %s", d0, d2)
	}
	bad := rep.Outcomes[3]
	if bad.Err == nil || bad.Err.Code != service.ErrCodeInvalidRemovals {
		t.Fatalf("invalid set outcome %+v", bad)
	}
	if rep.Summary.Sets != 4 || rep.Summary.Evaluated != 3 || rep.Summary.Errors != 1 {
		t.Fatalf("summary %+v", rep.Summary)
	}
	if !rep.Summary.Incremental || rep.Summary.CacheHits == 0 {
		t.Fatalf("summary %+v, want incremental with cache hits", rep.Summary)
	}

	// Nothing was committed.
	got, err := cl.GetSession(ctx, sr.SessionID)
	if err != nil || got.TotalDeleted != 0 {
		t.Fatalf("live session after what-ifs: %v %+v", err, got)
	}

	// Unknown session: typed 404 before any stream starts.
	if _, err := cl.WhatIf(ctx, "nope", [][]int{{1}}); !IsNotFound(err) {
		t.Fatalf("what-if on unknown session: %v", err)
	}
}

func TestClientWhatIfStream(t *testing.T) {
	ts := newServer(t)
	cl := New(ts.URL)
	ctx := context.Background()
	sr, err := cl.CreateSession(ctx, optRequest(t, 100, 4, 5))
	if err != nil {
		t.Fatal(err)
	}

	st, err := cl.StreamWhatIf(ctx, sr.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := st.Eval([]int{2, 8})
	if err != nil || r1.RowsRemoved != 2 {
		t.Fatalf("eval 1: %v %+v", err, r1)
	}
	// Validation errors leave the stream usable.
	if _, err := st.Eval([]int{2, 2}); err == nil || err.(*APIError).Code != service.ErrCodeInvalidRemovals {
		t.Fatalf("duplicate-row eval: %v", err)
	}
	r2, err := st.Eval([]int{2, 8, 20})
	if err != nil || r2.TotalDeleted != 3 {
		t.Fatalf("eval 2 after validation error: %v %+v", err, r2)
	}
	sum, err := st.Close()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Sets != 3 || sum.Evaluated != 2 || sum.Errors != 1 || sum.CacheHits == 0 {
		t.Fatalf("stream summary %+v", sum)
	}
	// Close twice is safe and idempotent.
	if again, err := st.Close(); err != nil || again.Sets != 3 {
		t.Fatalf("second close: %v %+v", err, again)
	}
}

func TestClientWhatIfGoneAndLimited(t *testing.T) {
	ts := newServer(t, service.WithWhatIfLimit(1))
	cl := New(ts.URL)
	ctx := context.Background()
	sr, err := cl.CreateSession(ctx, optRequest(t, 80, 3, 9))
	if err != nil {
		t.Fatal(err)
	}

	// Hold the tenant's only what-if slot open on a stream...
	st, err := cl.StreamWhatIf(ctx, sr.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Eval([]int{1}); err != nil {
		t.Fatal(err)
	}
	// ...so a second request is rejected with the typed 429.
	_, err = cl.WhatIf(ctx, sr.SessionID, [][]int{{2}})
	if !IsWhatIfLimited(err) {
		t.Fatalf("over-limit what-if: %v, want whatif_limited", err)
	}
	if ae := err.(*APIError); ae.Status != 429 || ae.RetryAfter <= 0 {
		t.Fatalf("whatif_limited envelope %+v", ae)
	}

	// Deleting the session under the open stream turns the next Eval into a
	// sticky typed "gone".
	if err := cl.DeleteSession(ctx, sr.SessionID); err != nil {
		t.Fatal(err)
	}
	_, err = st.Eval([]int{3})
	if !IsGone(err) {
		t.Fatalf("eval after delete: %v, want gone", err)
	}
	if _, err := st.Eval([]int{4}); !IsGone(err) {
		t.Fatalf("gone must be sticky, got %v", err)
	}
	if _, err := st.Close(); !IsGone(err) {
		t.Fatalf("close after gone: %v", err)
	}
}

func TestClientSessionPagination(t *testing.T) {
	ts := newServer(t)
	cl := New(ts.URL)
	ctx := context.Background()
	want := make(map[string]bool)
	for i := 0; i < 5; i++ {
		sr, err := cl.CreateSession(ctx, denseRequest(t, 40, 3, int64(i+1)))
		if err != nil {
			t.Fatal(err)
		}
		want[sr.SessionID] = true
	}

	// One explicit page.
	page, err := cl.ListSessionsPage(ctx, 2, "")
	if err != nil || len(page.Sessions) != 2 || page.NextCursor == "" {
		t.Fatalf("first page: %v %+v", err, page)
	}

	// The iterator walks every page exactly once.
	it := cl.Sessions(ctx, 2)
	var seen []string
	for it.Next() {
		seen = append(seen, it.Session().SessionID)
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 5 {
		t.Fatalf("iterator saw %d sessions, want 5", len(seen))
	}
	uniq := make(map[string]bool)
	for _, id := range seen {
		if uniq[id] {
			t.Fatalf("iterator repeated session %s", id)
		}
		uniq[id] = true
		if !want[id] {
			t.Fatalf("iterator surfaced unknown session %s", id)
		}
	}

	// ListSessions auto-paginates to the same set.
	rows, err := cl.ListSessions(ctx)
	if err != nil || len(rows) != 5 {
		t.Fatalf("ListSessions: %v (%d rows)", err, len(rows))
	}

	// Meta round-trips through the SDK too.
	meta, err := cl.Meta(ctx)
	if err != nil || !meta.Features.WhatIf || meta.Version == "" {
		t.Fatalf("meta: %v %+v", err, meta)
	}
}
