package client

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/priu/service"
)

// TestAuthSmoke is the end-to-end acceptance run behind `make auth-smoke`:
// it builds the real priuserve, priutrain and examples/client binaries,
// starts an authenticated server (-auth required) with per-tenant quotas and
// rate limits, and drives it through the client SDK and both CLIs — 401 on
// missing/unknown keys, 200 round trips, 429 on quota and rate limits, and a
// SIGHUP key rotation.
func TestAuthSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("auth smoke builds and execs real binaries; skipped in -short")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	bin := t.TempDir()
	build := func(name, pkg string) string {
		path := filepath.Join(bin, name)
		cmd := exec.Command("go", "build", "-o", path, pkg)
		cmd.Dir = root
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
		return path
	}
	serveBin := build("priuserve", "./cmd/priuserve")
	trainBin := build("priutrain", "./cmd/priutrain")
	exampleBin := build("example-client", "./examples/client")

	// Tenant key file: alice has a tight session quota and a slow deletion
	// stream; bob is unconstrained.
	keyPath := filepath.Join(t.TempDir(), "keys.json")
	writeKeys := func(tenants ...service.TenantConfig) {
		t.Helper()
		buf, err := json.Marshal(map[string]any{"tenants": tenants})
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(keyPath, buf, 0o600); err != nil {
			t.Fatal(err)
		}
	}
	alice := service.TenantConfig{Name: "alice", Key: "ak_alice", MaxSessions: 2, DeletionRowsPerSec: 20, Burst: 4}
	bob := service.TenantConfig{Name: "bob", Key: "ak_bob"}
	writeKeys(alice, bob)

	// Pick a free port, then hand it to the server.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	srv := exec.Command(serveBin, "-addr", addr, "-auth", "required", "-auth-keys", keyPath)
	var srvLog strings.Builder
	srv.Stdout, srv.Stderr = &srvLog, &srvLog
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if srv.Process != nil {
			_ = srv.Process.Signal(syscall.SIGTERM)
			done := make(chan struct{})
			go func() { _ = srv.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				_ = srv.Process.Kill()
			}
		}
		if t.Failed() {
			t.Logf("priuserve log:\n%s", srvLog.String())
		}
	}()

	base := "http://" + addr
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()

	// Wait for the server to come up (healthz needs no key even with
	// -auth required).
	probe := New(base)
	deadline := time.Now().Add(15 * time.Second)
	for {
		if _, err := probe.Health(ctx); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("priuserve never became healthy:\n%s", srvLog.String())
		}
		time.Sleep(50 * time.Millisecond)
	}

	// 401 paths: no key, then an unknown key.
	if _, err := probe.ListSessions(ctx); err == nil || err.(*APIError).Status != 401 {
		t.Fatalf("missing key: %v, want 401", err)
	}
	if _, err := New(base, WithAPIKey("ak_nope")).ListSessions(ctx); err == nil || err.(*APIError).Status != 401 {
		t.Fatalf("unknown key: %v, want 401", err)
	}

	// 200 path through the SDK: create, stream with rate-limit waits,
	// snapshot round trip, cleanup.
	cl := New(base, WithAPIKey("ak_alice"))
	sr, err := cl.CreateSession(ctx, denseRequest(t, 100, 4, 5))
	if err != nil {
		t.Fatalf("alice create: %v", err)
	}
	st, err := cl.StreamDeletions(ctx, sr.SessionID, StreamVerifyDigests())
	if err != nil {
		t.Fatal(err)
	}
	// Two 4-row batches against a 4-row burst at 20 rows/s: the second is
	// throttled (typed rate_limited with retry-after) and must succeed after
	// waiting — the resume-after-Retry-After path.
	if _, err := st.SendWait([]int{1, 2, 3, 4}); err != nil {
		t.Fatalf("batch 1: %v", err)
	}
	if _, err := st.Send([]int{5, 6, 7, 8}); !IsRateLimited(err) {
		t.Fatalf("batch 2 should be throttled, got %v", err)
	}
	res, err := st.SendWait([]int{5, 6, 7, 8})
	if err != nil || res.TotalDeleted != 8 {
		t.Fatalf("throttled batch after Retry-After: %v %+v", err, res)
	}
	st.Close()

	// 429 quota path: alice's second session fills her quota, the third is
	// rejected, and bob is unaffected.
	if _, err := cl.CreateSession(ctx, denseRequest(t, 60, 3, 6)); err != nil {
		t.Fatalf("alice second create: %v", err)
	}
	if _, err := cl.CreateSession(ctx, denseRequest(t, 60, 3, 7)); !IsQuota(err) {
		t.Fatalf("alice third create: %v, want insufficient_quota", err)
	}
	stats, err := cl.TenantStats(ctx)
	if err != nil || stats.Tenant != "alice" || stats.QuotaRejections < 1 || stats.RateLimited < 1 {
		t.Fatalf("alice stats: %v %+v", err, stats)
	}

	// The example client completes its whole round trip as bob.
	example := exec.Command(exampleBin, "-addr", base, "-key", "ak_bob")
	if out, err := example.CombinedOutput(); err != nil {
		t.Fatalf("examples/client: %v\n%s", err, out)
	} else if !strings.Contains(string(out), "matching digest") {
		t.Fatalf("examples/client output missing snapshot verification:\n%s", out)
	}

	// priutrain runs its remote train → stream → snapshot workflow as bob.
	train := exec.Command(trainBin, "-server", base, "-api-key", "ak_bob",
		"-workload", "sgemm-original", "-scale", "0.02", "-rate", "0.02")
	if out, err := train.CombinedOutput(); err != nil {
		t.Fatalf("priutrain -server: %v\n%s", err, out)
	} else if !strings.Contains(string(out), "snapshot round trip ok") {
		t.Fatalf("priutrain output missing snapshot round trip:\n%s", out)
	}

	// SIGHUP hot reload: add carol, rotate alice's key.
	carol := service.TenantConfig{Name: "carol", Key: "ak_carol"}
	alice.Key = "ak_alice_v2"
	writeKeys(alice, bob, carol)
	if err := srv.Process.Signal(syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	reloaded := false
	for wait := time.Now().Add(10 * time.Second); time.Now().Before(wait); {
		if _, err := New(base, WithAPIKey("ak_carol")).ListSessions(ctx); err == nil {
			reloaded = true
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !reloaded {
		t.Fatalf("SIGHUP did not pick up the new tenant:\n%s", srvLog.String())
	}
	if _, err := New(base, WithAPIKey("ak_alice")).ListSessions(ctx); err == nil || err.(*APIError).Status != 401 {
		t.Fatalf("rotated key still resolves: %v", err)
	}
	rotated := New(base, WithAPIKey("ak_alice_v2"))
	rows, err := rotated.ListSessions(ctx)
	if err != nil || len(rows) != 2 {
		t.Fatalf("alice with rotated key: %v (%d sessions, want her 2)", err, len(rows))
	}
	fmt.Println("auth-smoke: 401/429/200 paths, SIGHUP rotation and CLI round trips all verified")
}
