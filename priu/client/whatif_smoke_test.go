package client

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/priu/service"
)

// TestWhatIfSmoke is the end-to-end acceptance run behind `make whatif-smoke`:
// it builds and starts the real priuserve, previews overlapping candidate
// deletion sets through the SDK's what-if batch (asserting the server's
// prefix tree actually shared work between them), then commits one candidate
// on a snapshot clone and checks the committed digest is bitwise identical to
// the what-if prediction — with the live session untouched throughout.
// Finally priutrain's -whatif mode runs the same preview-then-commit loop
// from the CLI.
func TestWhatIfSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("whatif smoke builds and execs real binaries; skipped in -short")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	bin := t.TempDir()
	build := func(name, pkg string) string {
		path := filepath.Join(bin, name)
		cmd := exec.Command("go", "build", "-o", path, pkg)
		cmd.Dir = root
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
		return path
	}
	serveBin := build("priuserve", "./cmd/priuserve")
	trainBin := build("priutrain", "./cmd/priutrain")

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	srv := exec.Command(serveBin, "-addr", addr, "-whatif-workers", "2", "-whatif-limit", "4")
	var srvLog strings.Builder
	srv.Stdout, srv.Stderr = &srvLog, &srvLog
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if srv.Process != nil {
			_ = srv.Process.Signal(syscall.SIGTERM)
			done := make(chan struct{})
			go func() { _ = srv.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				_ = srv.Process.Kill()
			}
		}
		if t.Failed() {
			t.Logf("priuserve log:\n%s", srvLog.String())
		}
	}()

	base := "http://" + addr
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	cl := New(base)
	deadline := time.Now().Add(15 * time.Second)
	for {
		if _, err := cl.Health(ctx); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("priuserve never became healthy:\n%s", srvLog.String())
		}
		time.Sleep(50 * time.Millisecond)
	}

	// The meta descriptor advertises the what-if plane and the flag values.
	meta, err := cl.Meta(ctx)
	if err != nil || !meta.Features.WhatIf {
		t.Fatalf("meta: %v %+v", err, meta)
	}
	if meta.Limits.WhatIfWorkers != 2 || meta.Limits.WhatIfConcurrent != 4 {
		t.Fatalf("meta limits %+v do not reflect the flags", meta.Limits)
	}

	// Preview overlapping candidates on an optimized-family session.
	sr, err := cl.CreateSession(ctx, optRequest(t, 150, 5, 21))
	if err != nil {
		t.Fatal(err)
	}
	liveDigest := service.ParamDigest(sr.Parameters)
	sets := [][]int{{4, 33, 70}, {4, 33, 70, 101}, {4, 33, 90}, {4, 33, 70}}
	rep, err := cl.WhatIf(ctx, sr.SessionID, sets)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Summary.Evaluated != 4 || rep.Summary.Errors != 0 || !rep.Summary.Incremental {
		t.Fatalf("summary %+v", rep.Summary)
	}
	if rep.Summary.CacheHits == 0 {
		t.Fatal("overlapping sets produced no prefix-tree cache hits")
	}
	for i, oc := range rep.Outcomes {
		if oc.Err != nil {
			t.Fatalf("set %d: %v", i, oc.Err)
		}
	}
	if d0, d3 := rep.Outcomes[0].Result.Digest, rep.Outcomes[3].Result.Digest; d0 != d3 {
		t.Fatalf("duplicate candidate digests diverged: %s vs %s", d0, d3)
	}

	// Commit the superset candidate on a snapshot clone, in one ascending
	// batch — exactly the order the what-if plane evaluated it in — and hold
	// the server to its prediction.
	var snap bytes.Buffer
	if _, err := cl.SnapshotTo(ctx, sr.SessionID, &snap); err != nil {
		t.Fatal(err)
	}
	clone, err := cl.RestoreSnapshot(ctx, &snap)
	if err != nil {
		t.Fatal(err)
	}
	st, err := cl.StreamDeletions(ctx, clone.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.SendWait([]int{4, 33, 70, 101})
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	if want := rep.Outcomes[1].Result.Digest; res.Digest != want {
		t.Fatalf("committed digest %s != what-if prediction %s", res.Digest, want)
	}

	// The live session never moved.
	got, err := cl.GetSession(ctx, sr.SessionID)
	if err != nil || got.TotalDeleted != 0 {
		t.Fatalf("live session after previews: %v %+v", err, got)
	}
	if service.ParamDigest(got.Parameters) != liveDigest {
		t.Fatal("what-if previews mutated the live parameters")
	}

	// priutrain's preview-then-commit mode against the same server.
	train := exec.Command(trainBin, "-server", base, "-whatif",
		"-workload", "sgemm-original", "-method", "PrIU-opt", "-scale", "0.02", "-rate", "0.02")
	if out, err := train.CombinedOutput(); err != nil {
		t.Fatalf("priutrain -whatif: %v\n%s", err, out)
	} else if !strings.Contains(string(out), "whatif commit verified") {
		t.Fatalf("priutrain -whatif output missing commit verification:\n%s", out)
	}
	fmt.Println("whatif-smoke: prefix-tree sharing, digest-faithful previews and CLI round trip all verified")
}
