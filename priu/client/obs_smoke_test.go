package client

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/priu/obs"
)

// lockedLog is a race-free sink for a child process's combined output: the
// exec pipe goroutine writes while assertions read.
type lockedLog struct {
	mu sync.Mutex
	b  strings.Builder
}

func (l *lockedLog) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedLog) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// TestObsSmoke is the end-to-end acceptance run behind `make obs-smoke`: it
// builds the real priuserve, boots it with the operator listener
// (-admin-addr) and an aggressive slow-op threshold, drives a
// train/delete/what-if workload through the SDK, and asserts the admin
// surface reflects it — every metric family present and monotone across the
// workload, a request trace fetchable by ID, pprof served, the slow-op log
// firing, and none of it reachable on the tenant port.
func TestObsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("obs smoke builds and execs real binaries; skipped in -short")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	serveBin := filepath.Join(t.TempDir(), "priuserve")
	build := exec.Command("go", "build", "-o", serveBin, "./cmd/priuserve")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building priuserve: %v\n%s", err, out)
	}

	freePort := func() string {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := ln.Addr().String()
		ln.Close()
		return addr
	}
	addr, adminAddr := freePort(), freePort()
	srv := exec.Command(serveBin,
		"-addr", addr,
		"-admin-addr", adminAddr,
		"-slow-op-ms", "1", // everything is a slow op: the log path must fire
		"-store-dir", t.TempDir(),
	)
	srvLog := &lockedLog{}
	srv.Stdout, srv.Stderr = srvLog, srvLog
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if srv.Process != nil {
			_ = srv.Process.Signal(syscall.SIGTERM)
			done := make(chan struct{})
			go func() { _ = srv.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				_ = srv.Process.Kill()
			}
		}
		if t.Failed() {
			t.Logf("priuserve log:\n%s", srvLog.String())
		}
	}()

	base, adminBase := "http://"+addr, "http://"+adminAddr
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	cl := New(base)
	deadline := time.Now().Add(15 * time.Second)
	for {
		if _, err := cl.Health(ctx); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("priuserve never became healthy:\n%s", srvLog.String())
		}
		time.Sleep(50 * time.Millisecond)
	}

	scrape := func() map[string]float64 {
		t.Helper()
		resp, err := http.Get(adminBase + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/metrics status %d", resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		vals := map[string]float64{}
		for _, line := range strings.Split(string(body), "\n") {
			if strings.HasPrefix(line, "#") {
				continue
			}
			if f := strings.Fields(line); len(f) == 2 {
				name := f[0]
				if i := strings.IndexByte(name, '{'); i >= 0 {
					name = name[:i] // sum labeled children under the family+suffix
				}
				if v, err := strconv.ParseFloat(f[1], 64); err == nil {
					vals[name] += v
				}
			}
		}
		return vals
	}

	// Baseline scrape: every family from every layer must already be exposed
	// (zero-valued), not appear lazily after first use.
	before := scrape()
	for _, name := range []string{
		"priu_capture_seconds_count",
		"priu_deletion_rows_total",
		"priu_deletion_stream_seconds_count",
		"priu_whatif_streams_total",
		"priu_whatif_cache_hits_total",
		"priu_store_resident_sessions",
		"priu_store_spills_total",
		"priu_store_spill_seconds_count",
		"priu_store_spill_queue_depth",
		"priu_blob_puts_total",
		"priu_par_dispatches_total",
		"priu_cluster_probes_total",
	} {
		if _, ok := before[name]; !ok {
			t.Errorf("baseline scrape missing family %s", name)
		}
	}
	if t.Failed() {
		t.FailNow()
	}

	// Workload: train, stream two deletion batches, preview what-if sets with
	// an overlapping prefix (cache hits > 0).
	sr, err := cl.CreateSession(ctx, denseRequest(t, 200, 6, 11))
	if err != nil {
		t.Fatal(err)
	}
	st, err := cl.StreamDeletions(ctx, sr.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.SendWait([]int{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.SendWait([]int{4, 5}); err != nil {
		t.Fatal(err)
	}
	st.Close()
	if _, err := cl.WhatIf(ctx, sr.SessionID, [][]int{{10, 11}, {10, 11, 12}}); err != nil {
		t.Fatal(err)
	}

	after := scrape()
	monotone := []struct {
		name string
		min  float64
	}{
		{"priu_capture_seconds_count", 1},
		{"priu_deletion_rows_total", 5},
		{"priu_deletion_stream_seconds_count", 1},
		{"priu_update_seconds_count", 2},
		{"priu_whatif_streams_total", 1},
		{"priu_whatif_sets_total", 2},
		{"priu_whatif_cache_hits_total", 1},
		{"priu_http_requests_total", 3}, // create + deletions stream + what-if
	}
	for _, m := range monotone {
		if delta := after[m.name] - before[m.name]; delta < m.min {
			t.Errorf("%s moved %v across the workload, want >= %v", m.name, delta, m.min)
		}
	}

	// Trace plane: list recent traces, fetch one by ID, and check the span
	// tree is non-empty.
	lresp, err := http.Get(adminBase + "/v2/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Traces []obs.TraceSummary `json:"traces"`
	}
	if err := json.NewDecoder(lresp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	lresp.Body.Close()
	if len(listing.Traces) == 0 {
		t.Fatal("no traces recorded after the workload")
	}
	tresp, err := http.Get(adminBase + "/v2/debug/traces/" + listing.Traces[0].TraceID)
	if err != nil {
		t.Fatal(err)
	}
	var tv obs.TraceView
	if err := json.NewDecoder(tresp.Body).Decode(&tv); err != nil {
		t.Fatal(err)
	}
	tresp.Body.Close()
	if tv.TraceID != listing.Traces[0].TraceID || len(tv.Spans) == 0 {
		t.Fatalf("trace fetch returned %+v", tv)
	}

	// pprof is served on the admin listener.
	presp, err := http.Get(adminBase + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, presp.Body)
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", presp.StatusCode)
	}

	// The admin surface must NOT leak onto the tenant port.
	for _, path := range []string{"/metrics", "/debug/pprof/", "/v2/debug/traces"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("tenant port serves %s (status %d) — admin surface leaked", path, resp.StatusCode)
		}
	}

	// With -slow-op-ms 1, the structured slow-op log must have fired. The
	// child's pipe drains asynchronously, so poll briefly.
	slowDeadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(srvLog.String(), "slow-op trace=") {
		if time.Now().After(slowDeadline) {
			t.Fatalf("no slow-op line in the server log:\n%s", srvLog.String())
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Println("obs-smoke: metric families, trace plane, pprof, admin isolation and slow-op log all verified")
}
