package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/priu/service"
)

// IsWhatIfLimited reports whether err is a per-tenant concurrent-what-if
// rejection (HTTP 429, code "whatif_limited"); wait RetryAfter and retry.
func IsWhatIfLimited(err error) bool {
	ae, ok := err.(*APIError)
	return ok && ae.Code == service.ErrCodeWhatIfLimited
}

// IsGone reports whether err marks a session deleted out from under an
// in-flight what-if stream.
func IsGone(err error) bool {
	ae, ok := err.(*APIError)
	return ok && ae.Code == service.ErrCodeGone
}

// WhatIfOption configures WhatIf and StreamWhatIf.
type WhatIfOption func(*whatIfConfig)

type whatIfConfig struct {
	allParams bool
}

// WhatIfAllParameters asks the server for the full hypothetical parameter
// vector with every evaluated set (the digest is always present).
func WhatIfAllParameters() WhatIfOption { return func(c *whatIfConfig) { c.allParams = true } }

// WhatIfOutcome is one candidate set's evaluation: either Result (the set was
// evaluated) or Err (it failed validation or evaluation) is non-nil.
type WhatIfOutcome struct {
	Result *service.WhatIfSetResult
	Err    *APIError
}

// WhatIfReport is a completed what-if batch: per-set outcomes in request
// order plus the server's summary line (cache hits, incremental flag).
type WhatIfReport struct {
	Outcomes []WhatIfOutcome
	Summary  service.WhatIfSummary
}

// whatIfLine is the union of the three NDJSON line shapes the what-if
// endpoint emits: an error envelope, a per-set result, or the summary.
type whatIfLine struct {
	Error *service.APIError `json:"error"`
	service.WhatIfSetResult
	service.WhatIfSummary
}

// WhatIf evaluates a batch of candidate deletion sets against a session
// without committing anything: each set is answered with the hypothetical
// parameter digest and metric deltas versus the live model. Overlapping sets
// share work server-side through a prefix tree, so batching related
// candidates is much cheaper than separate calls.
func (c *Client) WhatIf(ctx context.Context, id string, sets [][]int, opts ...WhatIfOption) (*WhatIfReport, error) {
	var cfg whatIfConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	body, err := json.Marshal(service.WhatIfRequest{Sets: sets, Parameters: cfg.allParams})
	if err != nil {
		return nil, err
	}
	req, err := c.newRequest(ctx, http.MethodPost, "/v2/sessions/"+id+"/whatif", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	rep := &WhatIfReport{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		var line whatIfLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return nil, fmt.Errorf("client: malformed what-if line: %w", err)
		}
		switch {
		case line.Error != nil:
			rep.Outcomes = append(rep.Outcomes, WhatIfOutcome{Err: streamAPIError(*line.Error)})
		case line.Summary:
			rep.Summary = line.WhatIfSummary
		default:
			res := line.WhatIfSetResult
			rep.Outcomes = append(rep.Outcomes, WhatIfOutcome{Result: &res})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("client: reading what-if stream: %w", err)
	}
	if !rep.Summary.Summary {
		return nil, fmt.Errorf("client: what-if stream ended without a summary line")
	}
	return rep, nil
}

// WhatIfStream is one full-duplex NDJSON connection to
// POST /v2/sessions/{id}/whatif: each Eval submits one candidate deletion set
// and reads its hypothetical result. The server keeps the prefix tree alive
// across the connection, so later sets sharing a prefix with earlier ones are
// answered from cache. The stream holds one of the tenant's concurrent
// what-if slots until closed. Not safe for concurrent use.
type WhatIfStream struct {
	ctx     context.Context
	pw      *io.PipeWriter
	enc     *json.Encoder
	respCh  chan streamOpen
	br      *bufio.Reader
	resp    *http.Response
	summary *service.WhatIfSummary
	err     error // sticky: the stream is unusable once set
}

// StreamWhatIf opens an interactive what-if stream for a session. Like
// StreamDeletions, the connection is lazy — open errors (unknown session,
// "whatif_limited") surface on the first Eval.
func (c *Client) StreamWhatIf(ctx context.Context, id string, opts ...WhatIfOption) (*WhatIfStream, error) {
	var cfg whatIfConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	st := &WhatIfStream{ctx: ctx, respCh: make(chan streamOpen, 1)}
	pr, pw := io.Pipe()
	st.pw = pw
	st.enc = json.NewEncoder(pw)
	path := "/v2/sessions/" + id + "/whatif"
	if cfg.allParams {
		path += "?parameters=all"
	}
	req, err := c.newRequest(ctx, http.MethodPost, path, pr)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	go func() {
		resp, err := c.hc.Do(req)
		st.respCh <- streamOpen{resp, err}
	}()
	return st, nil
}

// Eval submits one candidate deletion set and reads its result. Validation
// errors ("invalid_removals", "batch_too_large") are typed and leave the
// stream usable; "gone" (session deleted mid-stream), transport errors and
// malformed lines are sticky.
func (st *WhatIfStream) Eval(remove []int) (*service.WhatIfSetResult, error) {
	if st.err != nil {
		return nil, st.err
	}
	if err := st.enc.Encode(service.WhatIfSet{Remove: remove}); err != nil {
		st.err = fmt.Errorf("client: writing what-if set: %w", err)
		return nil, st.err
	}
	if st.br == nil {
		select {
		case open := <-st.respCh:
			if open.err != nil {
				st.err = open.err
				return nil, st.err
			}
			if open.resp.StatusCode != http.StatusOK {
				st.err = decodeError(open.resp)
				open.resp.Body.Close()
				return nil, st.err
			}
			st.resp = open.resp
			st.br = bufio.NewReader(open.resp.Body)
		case <-st.ctx.Done():
			st.err = st.ctx.Err()
			return nil, st.err
		}
	}
	line, err := st.br.ReadBytes('\n')
	if err != nil {
		st.err = fmt.Errorf("client: reading what-if result line: %w", err)
		return nil, st.err
	}
	var probe whatIfLine
	if err := json.Unmarshal(line, &probe); err != nil {
		st.err = fmt.Errorf("client: malformed what-if result line: %w", err)
		return nil, st.err
	}
	if probe.Error != nil {
		ae := streamAPIError(*probe.Error)
		if ae.Code == service.ErrCodeGone || ae.Code == service.ErrCodeBadRequest {
			// The server terminates the stream after these.
			st.err = ae
		}
		return nil, ae
	}
	res := probe.WhatIfSetResult
	return &res, nil
}

// Close ends the stream and returns the server's summary line (sets seen,
// evaluations, prefix-tree cache hits) when the stream completed normally.
// Safe after errors and safe to call twice.
func (st *WhatIfStream) Close() (*service.WhatIfSummary, error) {
	_ = st.pw.Close()
	if st.summary != nil {
		return st.summary, nil
	}
	if st.resp == nil {
		select {
		case open := <-st.respCh:
			if open.resp != nil {
				open.resp.Body.Close()
			}
		default:
		}
		return nil, st.err
	}
	defer st.resp.Body.Close()
	if st.err == nil && st.br != nil {
		// The server answers EOF with its summary line.
		for {
			line, err := st.br.ReadBytes('\n')
			if len(bytes.TrimSpace(line)) > 0 {
				var probe whatIfLine
				if jerr := json.Unmarshal(line, &probe); jerr == nil && probe.Summary {
					st.summary = &probe.WhatIfSummary
					return st.summary, nil
				}
			}
			if err != nil {
				return nil, fmt.Errorf("client: what-if stream closed without a summary: %w", err)
			}
		}
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(st.resp.Body, 1<<20))
	return nil, st.err
}
