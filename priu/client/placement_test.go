package client

import (
	"context"
	"testing"
)

func TestSessionWireID(t *testing.T) {
	cases := []struct{ path, want string }{
		{"/v2/sessions/sess-7", "sess-7"},
		{"/v2/sessions/sess-7/deletions", "sess-7"},
		{"/v2/sessions/sess-7/whatif", "sess-7"},
		{"/v2/sessions/sess-7/snapshot", "sess-7"},
		{"/v2/sessions", ""},
		{"/v2/meta", ""},
		{"/v2/tenants/self/stats", ""},
		{"/healthz", ""},
	}
	for _, c := range cases {
		if got := sessionWireID(c.path); got != c.want {
			t.Errorf("sessionWireID(%q) = %q, want %q", c.path, got, c.want)
		}
	}
}

// TestPlacementNonFleetNoop: against a single server without a cluster block
// WithPlacement must degrade to plain routing — every call still works.
func TestPlacementNonFleetNoop(t *testing.T) {
	ts := newServer(t)
	cl := New(ts.URL, WithPlacement())
	ctx := context.Background()
	sr, err := cl.CreateSession(ctx, denseRequest(t, 60, 4, 3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.GetSession(ctx, sr.SessionID); err != nil {
		t.Fatalf("placement against non-fleet server broke reads: %v", err)
	}
	st, err := cl.StreamDeletions(ctx, sr.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if res, err := st.Send([]int{1, 2}); err != nil || res.TotalDeleted != 2 {
		t.Fatalf("placement against non-fleet server broke streams: %v", err)
	}
}
