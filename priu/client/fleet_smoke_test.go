package client

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/priu/service"
)

// TestFleetSmoke is the end-to-end acceptance run behind `make fleet-smoke`:
// it builds the real priuserve and priublob binaries, starts one blob server
// and three replicas wired into a fleet (-node/-peers/-blob), creates
// sessions through different nodes, verifies cross-node routing, streams
// deletions through non-owners, then SIGKILLs one replica and asserts every
// session — including the dead node's — is served by the survivors with
// bitwise-identical parameters, and that a pre-kill deletion stays deleted.
func TestFleetSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet smoke builds and execs real binaries; skipped in -short")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	bin := t.TempDir()
	build := func(name, pkg string) string {
		path := filepath.Join(bin, name)
		cmd := exec.Command("go", "build", "-o", path, pkg)
		cmd.Dir = root
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
		return path
	}
	serveBin := build("priuserve", "./cmd/priuserve")
	blobBin := build("priublob", "./cmd/priublob")

	freePort := func() string {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := ln.Addr().String()
		ln.Close()
		return addr
	}

	// One process group: blob server first, then the three replicas.
	type proc struct {
		cmd  *exec.Cmd
		log  *strings.Builder
		dead bool
	}
	var procs []*proc
	start := func(path string, args ...string) *proc {
		p := &proc{cmd: exec.Command(path, args...), log: &strings.Builder{}}
		p.cmd.Stdout, p.cmd.Stderr = p.log, p.log
		if err := p.cmd.Start(); err != nil {
			t.Fatal(err)
		}
		procs = append(procs, p)
		return p
	}
	defer func() {
		for _, p := range procs {
			if p.dead || p.cmd.Process == nil {
				continue
			}
			_ = p.cmd.Process.Signal(syscall.SIGTERM)
		}
		for _, p := range procs {
			if p.dead || p.cmd.Process == nil {
				continue
			}
			done := make(chan struct{})
			go func(p *proc) { _ = p.cmd.Wait(); close(done) }(p)
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				_ = p.cmd.Process.Kill()
			}
		}
		if t.Failed() {
			for i, p := range procs {
				t.Logf("process %d log:\n%s", i, p.log.String())
			}
		}
	}()

	blobAddr := freePort()
	start(blobBin, "-addr", blobAddr, "-dir", t.TempDir())
	// Replicas fail fast when the blob tier is unreachable at boot, so the
	// blob server must be up before they start.
	{
		deadline := time.Now().Add(15 * time.Second)
		for {
			res, err := http.Get("http://" + blobAddr + "/healthz")
			if err == nil {
				res.Body.Close()
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("blob server never became healthy: %v", err)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	const n = 3
	urls := make([]string, n)
	adminAddrs := make([]string, n)
	for i := range urls {
		urls[i] = "http://" + freePort()
		adminAddrs[i] = freePort()
	}
	peers := strings.Join(urls, ",")
	replicas := make([]*proc, n)
	for i := range urls {
		replicas[i] = start(serveBin,
			"-addr", strings.TrimPrefix(urls[i], "http://"),
			"-store-dir", t.TempDir(),
			"-blob", "http://"+blobAddr,
			"-node", urls[i],
			"-peers", peers,
			"-probe-interval", "250ms",
			"-admin-addr", adminAddrs[i],
		)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	waitHealthy := func(base string) {
		t.Helper()
		cl := New(base)
		deadline := time.Now().Add(15 * time.Second)
		for {
			if _, err := cl.Health(ctx); err == nil {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s never became healthy", base)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	for _, u := range urls {
		waitHealthy(u)
	}

	// The fleet advertises itself: features + full cluster block.
	meta, err := New(urls[0]).Meta(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !meta.Features.Fleet || !meta.Features.Blob || meta.Cluster == nil ||
		len(meta.Cluster.Peers) != n || len(meta.Cluster.Alive) != n {
		t.Fatalf("fleet meta: %+v (cluster %+v)", meta.Features, meta.Cluster)
	}

	// Create sessions round-robin across the replicas. Every operation after
	// the create deliberately goes through a DIFFERENT node, so each
	// lifecycle leg exercises the fleet routing.
	type tracked struct {
		id     string
		home   int // index of the creating (owning) replica
		params []float64
	}
	var sessions []tracked
	for k := 0; k < 6; k++ {
		home := k % n
		sr, err := New(urls[home]).CreateSession(ctx, denseRequest(t, 80, 4, int64(k+1)))
		if err != nil {
			t.Fatalf("create via node %d: %v", home, err)
		}
		// Cross-node read: the next node redirects to the owner.
		got, err := New(urls[(home+1)%n]).GetSession(ctx, sr.SessionID)
		if err != nil || got.SessionID != sr.SessionID {
			t.Fatalf("cross-node read of %s: %v", sr.SessionID, err)
		}
		// Cross-node deletion stream: proxied to the owner.
		st, err := New(urls[(home+2)%n]).StreamDeletions(ctx, sr.SessionID)
		if err != nil {
			t.Fatal(err)
		}
		if res, err := st.SendWait([]int{k + 1, k + 11}); err != nil || res.TotalDeleted != 2 {
			t.Fatalf("cross-node deletions for %s: %v", sr.SessionID, err)
		}
		st.Close()
		// Record the post-deletion parameters through a third path.
		fin, err := New(urls[(home+1)%n]).GetSession(ctx, sr.SessionID)
		if err != nil || fin.TotalDeleted != 2 {
			t.Fatalf("post-deletion read of %s: %v", sr.SessionID, err)
		}
		sessions = append(sessions, tracked{id: sr.SessionID, home: home, params: fin.Parameters})
	}

	// Placement-aware routing: a client that computes session owners from
	// /v2/meta's ring goes straight to the owner, so a sweep over every
	// session through "wrong" bases must not move the fleet's redirect
	// counter at all — while the same sweep without placement does.
	metricValue := func(adminAddr, name string) float64 {
		res, err := http.Get("http://" + adminAddr + "/metrics")
		if err != nil {
			t.Fatalf("scraping %s: %v", adminAddr, err)
		}
		defer res.Body.Close()
		buf := new(strings.Builder)
		if _, err := io.Copy(buf, res.Body); err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(buf.String(), "\n") {
			if f := strings.Fields(line); len(f) == 2 && f[0] == name {
				v, err := strconv.ParseFloat(f[1], 64)
				if err != nil {
					t.Fatalf("metric %s: bad value %q", name, f[1])
				}
				return v
			}
		}
		t.Fatalf("metric %s missing from %s scrape", name, adminAddr)
		return 0
	}
	fleetRedirects := func() (sum float64) {
		for _, a := range adminAddrs {
			sum += metricValue(a, "priu_fleet_redirects_total")
		}
		return sum
	}
	placed := New(urls[1], WithPeers(urls[0], urls[2]), WithPlacement())
	before := fleetRedirects()
	for _, s := range sessions {
		if _, err := placed.GetSession(ctx, s.id); err != nil {
			t.Fatalf("placement read of %s: %v", s.id, err)
		}
	}
	if after := fleetRedirects(); after != before {
		t.Fatalf("placement reads still redirected: fleet_redirects %v -> %v", before, after)
	}
	if _, err := New(urls[(sessions[0].home+1)%n]).GetSession(ctx, sessions[0].id); err != nil {
		t.Fatal(err)
	}
	if after := fleetRedirects(); after != before+1 {
		t.Fatalf("control read through a non-owner: fleet_redirects %v -> %v, want +1", before, after)
	}

	// A deletion issued before the kill must stay deleted after it: remove
	// one of the doomed node's sessions through a peer.
	var doomed []tracked
	var deletedID string
	for _, s := range sessions {
		if s.home != 0 {
			continue
		}
		if deletedID == "" {
			if err := New(urls[1]).DeleteSession(ctx, s.id); err != nil {
				t.Fatalf("pre-kill delete of %s: %v", s.id, err)
			}
			deletedID = s.id
			continue
		}
		doomed = append(doomed, s)
	}
	if deletedID == "" || len(doomed) == 0 {
		t.Fatalf("node 0 owns too few sessions to run the kill scenario: %+v", sessions)
	}

	// Wait until every replica has certified its current state into the blob
	// tier (write-behind queues drained, every resident session blob-backed)
	// — the durability condition under which a node loss is survivable.
	for i, u := range urls {
		cl := New(u)
		deadline := time.Now().Add(15 * time.Second)
		for {
			h, err := cl.Health(ctx)
			if err == nil && h.SpillQueueDepth == 0 && h.BlobSessions >= h.Sessions {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %d never certified its sessions into the blob tier: %+v (err %v)", i, h, err)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	// Kill replica 0 outright — no drain, no goodbye.
	if err := replicas[0].cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = replicas[0].cmd.Wait()
	replicas[0].dead = true

	// Every session is served by the survivors — the dead node's from the
	// blob tier — with parameters bitwise-identical to the pre-kill reads.
	// The survivor client fails over between the two remaining nodes.
	survivor := New(urls[1], WithPeers(urls[2]), WithRetries(4))
	waitGet := func(id string) *service.SessionResponse {
		t.Helper()
		deadline := time.Now().Add(20 * time.Second)
		for {
			sr, err := survivor.GetSession(ctx, id)
			if err == nil {
				return sr
			}
			if time.Now().After(deadline) {
				t.Fatalf("session %s unreachable after node kill: %v", id, err)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
	for _, s := range sessions {
		if s.id == deletedID {
			continue
		}
		got := waitGet(s.id)
		if len(got.Parameters) != len(s.params) {
			t.Fatalf("session %s: parameter count changed across node kill", s.id)
		}
		for j := range got.Parameters {
			if got.Parameters[j] != s.params[j] {
				t.Fatalf("session %s: parameter %d differs after node kill: %v vs %v",
					s.id, j, got.Parameters[j], s.params[j])
			}
		}
	}

	// The acknowledged deletion never resurrects through the blob tier.
	{
		deadline := time.Now().Add(20 * time.Second)
		for {
			_, err := survivor.GetSession(ctx, deletedID)
			if IsNotFound(err) {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("deleted session %s: want not_found from survivors, got %v", deletedID, err)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}

	// The degraded fleet still accepts new sessions and reflects the loss.
	post, err := survivor.CreateSession(ctx, denseRequest(t, 60, 4, 99))
	if err != nil {
		t.Fatalf("create on degraded fleet: %v", err)
	}
	if _, err := New(urls[2]).GetSession(ctx, post.SessionID); err != nil {
		t.Fatalf("cross-node read on degraded fleet: %v", err)
	}
	{
		deadline := time.Now().Add(10 * time.Second)
		for {
			h, err := New(urls[2]).Health(ctx)
			if err == nil && h.FleetAlive == n-1 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("survivor never demoted the killed node: %+v (err %v)", h, err)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
	fmt.Println("fleet-smoke: cross-node routing, streamed deletions, node kill and blob-tier recovery all verified")
}
