package priu

import (
	"fmt"
	"io"

	"repro/internal/binio"
	"repro/internal/dataset"
	"repro/internal/mat"
	"repro/internal/sparse"
)

// Session snapshots bundle everything needed to resurrect an updater in a
// fresh process: the family name, the training set, the cumulative deletion
// log (so a restored serving session keeps honoring applied deletions), and
// the family's provenance stream (Snapshotter.WriteTo). The provenance
// stream itself carries a dataset fingerprint, so a tampered bundle fails
// closed on load.
//
// Layout (little-endian): magic "PRSN", version, family string, dataset
// (dense or sparse), deletion log, then the provenance bytes to EOF.

const (
	snapshotMagic   = "PRSN"
	snapshotVersion = 1

	snapKindDense  = 0
	snapKindSparse = 1

	// maxSnapshotName bounds decoded name/family strings.
	maxSnapshotName = 1 << 20
)

// WriteSnapshot serializes a self-contained session snapshot with an empty
// deletion log. The updater must implement Snapshotter and the family must
// match the one that captured it (ReadSnapshot restores through the family
// registry).
func WriteSnapshot(w io.Writer, family string, ds TrainingSet, u Updater) error {
	return WriteSessionSnapshot(w, family, ds, u, nil)
}

// WriteSessionSnapshot is WriteSnapshot carrying a cumulative deletion log:
// a restored session replays it so already-honored deletions stay deleted.
func WriteSessionSnapshot(w io.Writer, family string, ds TrainingSet, u Updater, deleted []int) error {
	snap, ok := u.(Snapshotter)
	if !ok {
		return fmt.Errorf("priu: %T does not implement Snapshotter", u)
	}
	if f, found := Lookup(family); !found || f.Restore == nil {
		return fmt.Errorf("priu: family %q cannot be restored from a snapshot", family)
	}
	bw := binio.NewWriter(w)
	bw.Bytes([]byte(snapshotMagic))
	bw.U64(snapshotVersion)
	bw.Str(family)
	switch d := ds.(type) {
	case *dataset.Dataset:
		bw.U64(snapKindDense)
		bw.Str(d.Name)
		bw.U64(uint64(d.Task))
		bw.U64(uint64(d.Classes))
		bw.U64(uint64(d.N()))
		bw.U64(uint64(d.M()))
		for _, v := range d.X.Data() {
			bw.F64(v)
		}
		bw.Floats(d.Y)
	case *dataset.SparseDataset:
		rows, cols := d.X.Dims()
		bw.U64(snapKindSparse)
		bw.Str(d.Name)
		bw.U64(uint64(d.Task))
		bw.U64(uint64(d.Classes))
		bw.U64(uint64(rows))
		bw.U64(uint64(cols))
		for i := 0; i < rows; i++ {
			rcols, rvals := d.X.Row(i)
			bw.U64(uint64(len(rcols)))
			for k := range rcols {
				bw.U64(uint64(rcols[k]))
				bw.F64(rvals[k])
			}
		}
		bw.Floats(d.Y)
	default:
		return fmt.Errorf("priu: cannot snapshot training set of type %T", ds)
	}
	bw.U64(uint64(len(deleted)))
	for _, i := range deleted {
		bw.U64(uint64(i))
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	// The provenance stream goes last, unframed: it is self-delimiting.
	_, err := snap.WriteTo(w)
	return err
}

// ReadSnapshot restores a session snapshot: the family name, the
// reconstructed training set, and the restored updater. The deletion log is
// discarded; services that must keep honoring applied deletions use
// ReadSessionSnapshot.
func ReadSnapshot(r io.Reader) (family string, ds TrainingSet, u Updater, err error) {
	family, ds, u, _, err = ReadSessionSnapshot(r)
	return family, ds, u, err
}

// ReadSessionSnapshot restores a session snapshot including its cumulative
// deletion log.
func ReadSessionSnapshot(r io.Reader) (family string, ds TrainingSet, u Updater, deleted []int, err error) {
	br := binio.NewReader(r)
	if err := br.Magic(snapshotMagic); err != nil {
		return "", nil, nil, nil, fmt.Errorf("priu: %w", err)
	}
	if v := br.U64(); v != snapshotVersion {
		return "", nil, nil, nil, fmt.Errorf("priu: unsupported snapshot version %d", v)
	}
	family = br.Str(maxSnapshotName)
	kind := br.U64()
	if br.Err != nil {
		return "", nil, nil, nil, br.Err
	}
	switch kind {
	case snapKindDense:
		name := br.Str(maxSnapshotName)
		task := dataset.Task(br.U64())
		classes := int(br.U64())
		n := int(br.U64())
		m := int(br.U64())
		if br.Err != nil {
			return "", nil, nil, nil, br.Err
		}
		if n <= 0 || m <= 0 || int64(n)*int64(m) > binio.MaxElems {
			return "", nil, nil, nil, fmt.Errorf("priu: corrupt snapshot dims %dx%d", n, m)
		}
		data := br.FloatsN(int64(n) * int64(m))
		y := br.Floats()
		if br.Err != nil {
			return "", nil, nil, nil, br.Err
		}
		d := &dataset.Dataset{Name: name, Task: task, Classes: classes, X: mat.NewDenseData(n, m, data), Y: y}
		if err := d.Validate(); err != nil {
			return "", nil, nil, nil, fmt.Errorf("priu: snapshot dataset invalid: %w", err)
		}
		ds = d
	case snapKindSparse:
		name := br.Str(maxSnapshotName)
		task := dataset.Task(br.U64())
		classes := int(br.U64())
		rows := int(br.U64())
		cols := int(br.U64())
		if br.Err != nil {
			return "", nil, nil, nil, br.Err
		}
		if rows <= 0 || cols <= 0 || rows > binio.MaxElems || cols > binio.MaxElems {
			return "", nil, nil, nil, fmt.Errorf("priu: corrupt snapshot dims %dx%d", rows, cols)
		}
		var trips []sparse.Triplet
		for i := 0; i < rows; i++ {
			nnz := int(br.U64())
			if br.Err != nil {
				return "", nil, nil, nil, br.Err
			}
			if nnz < 0 || nnz > cols {
				return "", nil, nil, nil, fmt.Errorf("priu: corrupt snapshot row nnz %d", nnz)
			}
			for k := 0; k < nnz; k++ {
				col := int(br.U64())
				val := br.F64()
				trips = append(trips, sparse.Triplet{Row: i, Col: col, Val: val})
			}
		}
		y := br.Floats()
		if br.Err != nil {
			return "", nil, nil, nil, br.Err
		}
		x, err := sparse.NewCSR(rows, cols, trips)
		if err != nil {
			return "", nil, nil, nil, fmt.Errorf("priu: snapshot matrix invalid: %w", err)
		}
		// SparseDataset has no Validate; check the label column here so a
		// corrupt snapshot cannot produce a dataset that panics on Update.
		if len(y) != rows {
			return "", nil, nil, nil, fmt.Errorf("priu: snapshot has %d labels for %d rows", len(y), rows)
		}
		ds = &dataset.SparseDataset{Name: name, Task: task, Classes: classes, X: x, Y: y}
	default:
		return "", nil, nil, nil, fmt.Errorf("priu: unknown snapshot dataset kind %d", kind)
	}
	nDel := br.U64()
	if br.Err != nil || nDel > binio.MaxElems {
		br.Fail("priu: corrupt deletion-log length %d", nDel)
		return "", nil, nil, nil, br.Err
	}
	n := ds.N()
	for i := uint64(0); i < nDel; i++ {
		idx := br.U64()
		if br.Err != nil {
			return "", nil, nil, nil, br.Err
		}
		if idx >= uint64(n) {
			return "", nil, nil, nil, fmt.Errorf("priu: deletion-log index %d out of range [0,%d)", idx, n)
		}
		deleted = append(deleted, int(idx))
	}
	u, err = ReadFrom(family, br.R, ds)
	if err != nil {
		return "", nil, nil, nil, err
	}
	return family, ds, u, deleted, nil
}
