package obs

import (
	"bufio"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4): one HELP and TYPE line
// per family, then one sample line per child (or per histogram bucket), with
// families sorted by name and children by label-value tuple so scrapes are
// deterministic and the golden test is byte-stable.

// ContentType is the Content-Type of the text exposition format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteText writes every registered family in Prometheus text format.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	fams := make([]*family, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.fams[name])
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		f.write(bw)
	}
	return bw.Flush()
}

// Handler serves the exposition at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		_ = r.WriteText(w)
	})
}

func (f *family) write(w *bufio.Writer) {
	w.WriteString("# HELP ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(escapeHelp(f.help))
	w.WriteString("\n# TYPE ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(f.typ)
	w.WriteByte('\n')

	f.mu.Lock()
	fn := f.fn
	keys := append([]string(nil), f.order...)
	sort.Strings(keys)
	children := make([]*child, 0, len(keys))
	for _, k := range keys {
		children = append(children, f.children[k])
	}
	f.mu.Unlock()

	if fn != nil {
		w.WriteString(f.name)
		w.WriteByte(' ')
		w.WriteString(strconv.FormatInt(fn(), 10))
		w.WriteByte('\n')
		return
	}
	for _, ch := range children {
		switch f.typ {
		case typeCounter:
			writeSampleInt(w, f.name, f.labels, ch.values, "", "", ch.c.Value())
		case typeGauge:
			writeSampleInt(w, f.name, f.labels, ch.values, "", "", ch.g.Value())
		case typeHistogram:
			// Buckets are cumulative: each le line includes every smaller
			// bucket's count, ending at the +Inf bucket == _count.
			cum := int64(0)
			for i, b := range ch.h.bounds {
				cum += ch.h.counts[i].Load()
				writeSampleInt(w, f.name+"_bucket", f.labels, ch.values, "le", formatFloat(b), cum)
			}
			cum += ch.h.counts[len(ch.h.bounds)].Load()
			writeSampleInt(w, f.name+"_bucket", f.labels, ch.values, "le", "+Inf", cum)
			writeSampleFloat(w, f.name+"_sum", f.labels, ch.values, ch.h.Sum())
			writeSampleInt(w, f.name+"_count", f.labels, ch.values, "", "", ch.h.Count())
		}
	}
}

// writeLabels writes the {k="v",...} block, appending one extra pair (the
// histogram le label) when extraKey is non-empty.
func writeLabels(w *bufio.Writer, labels, values []string, extraKey, extraVal string) {
	if len(labels) == 0 && extraKey == "" {
		return
	}
	w.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			w.WriteByte(',')
		}
		w.WriteString(l)
		w.WriteString(`="`)
		w.WriteString(escapeLabel(values[i]))
		w.WriteByte('"')
	}
	if extraKey != "" {
		if len(labels) > 0 {
			w.WriteByte(',')
		}
		w.WriteString(extraKey)
		w.WriteString(`="`)
		w.WriteString(extraVal)
		w.WriteByte('"')
	}
	w.WriteByte('}')
}

func writeSampleInt(w *bufio.Writer, name string, labels, values []string, extraKey, extraVal string, v int64) {
	w.WriteString(name)
	writeLabels(w, labels, values, extraKey, extraVal)
	w.WriteByte(' ')
	w.WriteString(strconv.FormatInt(v, 10))
	w.WriteByte('\n')
}

func writeSampleFloat(w *bufio.Writer, name string, labels, values []string, v float64) {
	w.WriteString(name)
	writeLabels(w, labels, values, "", "")
	w.WriteByte(' ')
	w.WriteString(formatFloat(v))
	w.WriteByte('\n')
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value: backslash, double quote and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP line: backslash and newline (quotes are fine).
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}
