package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log"
	"sync"
	"sync/atomic"
	"time"
)

// Request tracing: a trace is one logical request (a deletion stream, a
// what-if batch, a session read) identified by the X-Priu-Trace header the
// service mints at ingress and propagates through fleet redirects, proxied
// streams and scatter-gather fan-out. Each node records its own span tree
// for the shared ID in a ring buffer, so stitching a cross-replica request
// means fetching the same ID from each node's /v2/debug/traces/{id}.
// Timings are monotonic (time.Since on a time.Time anchor); there are no
// external dependencies and an un-traced context makes every span call a
// no-op, so library code can instrument unconditionally.

// TraceHeader is the HTTP header carrying the fleet-wide trace ID.
const TraceHeader = "X-Priu-Trace"

// DefaultSlowOp is the default slow-operation log threshold.
const DefaultSlowOp = 250 * time.Millisecond

// NewTraceID mints a 16-hex-character random trace ID.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; a zero ID keeps
		// tracing functional (uniqueness is a debugging nicety, not a
		// correctness requirement).
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// ValidTraceID reports whether a client-supplied trace ID is acceptable to
// adopt: 8–64 hex-ish characters, so a hostile header cannot stuff logs.
func ValidTraceID(id string) bool {
	if len(id) < 8 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f' || 'A' <= c && c <= 'F' || c == '-') {
			return false
		}
	}
	return true
}

// Span is one timed operation within a trace. A nil *Span is a valid no-op
// receiver, so handlers can instrument without checking whether the request
// is traced.
type Span struct {
	tr     *trace
	idx    int
	parent int // index into tr.spans; -1 for a root
	name   string
	start  time.Time
	durNs  atomic.Int64 // -1 while open
}

// End closes the span, recording its duration. Safe on nil receivers and
// idempotent (the first End wins). Ending a root span completes the trace:
// it is committed to the tracer's ring buffer and, when over the slow-op
// threshold, logged.
func (s *Span) End() {
	if s == nil {
		return
	}
	if !s.durNs.CompareAndSwap(-1, maxInt64(time.Since(s.start).Nanoseconds(), 0)) {
		return
	}
	if s.parent == -1 {
		s.tr.tracer.complete(s.tr)
	}
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// trace accumulates one node-local span tree.
type trace struct {
	tracer *Tracer
	id     string
	start  time.Time
	wall   time.Time

	mu    sync.Mutex
	spans []*Span
}

func (t *trace) addSpan(name string, parent int) *Span {
	s := &Span{tr: t, parent: parent, name: name, start: time.Now()}
	s.durNs.Store(-1)
	t.mu.Lock()
	s.idx = len(t.spans)
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// spanCtxKey carries the current *Span through a request context.
type spanCtxKey struct{}

// StartSpan opens a child span under the context's current span and returns
// the derived context. Without a traced context it returns (ctx, nil): the
// nil span's End is a no-op, so instrumentation never needs a guard.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent, ok := ctx.Value(spanCtxKey{}).(*Span)
	if !ok || parent == nil {
		return ctx, nil
	}
	s := parent.tr.addSpan(name, parent.idx)
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// SpanView is one span in a serialized trace tree.
type SpanView struct {
	Name       string     `json:"name"`
	StartUs    int64      `json:"start_us"` // offset from trace start
	DurationUs int64      `json:"duration_us,omitempty"`
	Open       bool       `json:"open,omitempty"` // span had not ended at serialization
	Children   []SpanView `json:"children,omitempty"`
}

// TraceView is the JSON shape of GET /v2/debug/traces/{id}: this node's span
// tree for one trace ID.
type TraceView struct {
	TraceID    string     `json:"trace_id"`
	Node       string     `json:"node,omitempty"`
	Start      time.Time  `json:"start"`
	DurationUs int64      `json:"duration_us"`
	Spans      []SpanView `json:"spans"`
}

// TraceSummary is one row of the GET /v2/debug/traces listing.
type TraceSummary struct {
	TraceID    string    `json:"trace_id"`
	Root       string    `json:"root"`
	Start      time.Time `json:"start"`
	DurationUs int64     `json:"duration_us"`
}

// Tracer owns a node's completed-trace ring buffer and the slow-op log.
// The zero value is unusable; call NewTracer.
type Tracer struct {
	slowNs atomic.Int64
	logf   atomic.Pointer[func(format string, args ...any)]

	mu   sync.Mutex
	ring []*trace // fixed-capacity ring of completed traces
	next int
	byID map[string]*trace
}

// NewTracer returns a tracer retaining the last ringSize completed traces
// (<=0 uses 256) with the DefaultSlowOp threshold.
func NewTracer(ringSize int) *Tracer {
	if ringSize <= 0 {
		ringSize = 256
	}
	t := &Tracer{
		ring: make([]*trace, ringSize),
		byID: make(map[string]*trace, ringSize),
	}
	t.slowNs.Store(int64(DefaultSlowOp))
	return t
}

// SetSlowOp sets the slow-op threshold; completed traces at or over it are
// logged. Zero or negative disables the slow-op log.
func (t *Tracer) SetSlowOp(d time.Duration) { t.slowNs.Store(int64(d)) }

// SetLogf replaces the slow-op sink (default log.Printf) — tests hook this.
func (t *Tracer) SetLogf(fn func(format string, args ...any)) { t.logf.Store(&fn) }

// StartRoot begins a trace's root span on this node under the given ID and
// returns the derived context. Every subsequent StartSpan under the context
// lands in this trace.
func (t *Tracer) StartRoot(ctx context.Context, id, name string) (context.Context, *Span) {
	tr := &trace{tracer: t, id: id, start: time.Now(), wall: time.Now()}
	s := tr.addSpan(name, -1)
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// complete commits a finished trace to the ring (evicting the oldest) and
// emits the slow-op log line when the root exceeded the threshold.
func (t *Tracer) complete(tr *trace) {
	t.mu.Lock()
	if old := t.ring[t.next]; old != nil && t.byID[old.id] == old {
		delete(t.byID, old.id)
	}
	t.ring[t.next] = tr
	t.byID[tr.id] = tr
	t.next = (t.next + 1) % len(t.ring)
	t.mu.Unlock()

	slow := t.slowNs.Load()
	root := tr.spans[0]
	dur := root.durNs.Load()
	if slow <= 0 || dur < slow {
		return
	}
	logf := log.Printf
	if p := t.logf.Load(); p != nil {
		logf = *p
	}
	tr.mu.Lock()
	n := len(tr.spans)
	var hot *Span
	for _, s := range tr.spans[1:] {
		if d := s.durNs.Load(); d >= 0 && (hot == nil || d > hot.durNs.Load()) {
			hot = s
		}
	}
	tr.mu.Unlock()
	if hot != nil {
		logf("slow-op trace=%s op=%q dur=%s spans=%d hottest=%q hottest_dur=%s",
			tr.id, root.name, time.Duration(dur), n, hot.name, time.Duration(hot.durNs.Load()))
		return
	}
	logf("slow-op trace=%s op=%q dur=%s spans=%d", tr.id, root.name, time.Duration(dur), n)
}

// Lookup returns this node's span tree for a completed trace ID.
func (t *Tracer) Lookup(id string) (TraceView, bool) {
	t.mu.Lock()
	tr, ok := t.byID[id]
	t.mu.Unlock()
	if !ok {
		return TraceView{}, false
	}
	return tr.view(), true
}

// Recent lists the most recently completed traces, newest first, up to n
// (<=0 = the whole ring).
func (t *Tracer) Recent(n int) []TraceSummary {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n <= 0 || n > len(t.ring) {
		n = len(t.ring)
	}
	out := make([]TraceSummary, 0, n)
	for i := 1; i <= len(t.ring) && len(out) < n; i++ {
		tr := t.ring[(t.next-i+len(t.ring))%len(t.ring)]
		if tr == nil {
			continue
		}
		root := tr.spans[0]
		out = append(out, TraceSummary{
			TraceID: tr.id, Root: root.name, Start: tr.wall,
			DurationUs: root.durNs.Load() / 1e3,
		})
	}
	return out
}

// view serializes the span tree (children in start order).
func (tr *trace) view() TraceView {
	tr.mu.Lock()
	spans := append([]*Span(nil), tr.spans...)
	tr.mu.Unlock()
	kids := make([][]int, len(spans))
	var roots []int
	for i, s := range spans {
		if s.parent == -1 {
			roots = append(roots, i)
			continue
		}
		kids[s.parent] = append(kids[s.parent], i)
	}
	var build func(i int) SpanView
	build = func(i int) SpanView {
		s := spans[i]
		v := SpanView{
			Name:    s.name,
			StartUs: s.start.Sub(tr.start).Microseconds(),
		}
		if d := s.durNs.Load(); d >= 0 {
			v.DurationUs = d / 1e3
		} else {
			v.Open = true
		}
		for _, k := range kids[i] {
			v.Children = append(v.Children, build(k))
		}
		return v
	}
	out := TraceView{TraceID: tr.id, Start: tr.wall}
	for _, r := range roots {
		out.Spans = append(out.Spans, build(r))
	}
	if len(out.Spans) > 0 {
		out.DurationUs = out.Spans[0].DurationUs
	}
	return out
}
