package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestExpositionGolden pins the full text exposition byte-for-byte: family
// sorting, label ordering and escaping, histogram bucket cumulativity and
// the _sum/_count suffix lines.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()

	r.Counter("zeta_total", "sorted last despite being registered first").Add(3)
	r.Gauge("alpha_gauge", "plain gauge").Set(-7)

	cv := r.CounterVec("requests_total", "labeled counter", "route", "code")
	cv.With("/v2/sessions", "200").Add(5)
	cv.With("/v2/sessions", "404").Inc()
	cv.With(`/odd"path\x`+"\n", "200").Inc()

	h := r.Histogram("latency_seconds", "histogram with backslash \\ and\nnewline in help", []float64{0.1, 0.5, 1})
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(0.3)
	h.Observe(0.75)
	h.Observe(9) // +Inf bucket

	r.GaugeFunc("fn_gauge", "func-backed gauge", func() int64 { return 42 })

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP alpha_gauge plain gauge
# TYPE alpha_gauge gauge
alpha_gauge -7
# HELP fn_gauge func-backed gauge
# TYPE fn_gauge gauge
fn_gauge 42
# HELP latency_seconds histogram with backslash \\ and\nnewline in help
# TYPE latency_seconds histogram
latency_seconds_bucket{le="0.1"} 2
latency_seconds_bucket{le="0.5"} 3
latency_seconds_bucket{le="1"} 4
latency_seconds_bucket{le="+Inf"} 5
latency_seconds_sum 10.15
latency_seconds_count 5
# HELP requests_total labeled counter
# TYPE requests_total counter
requests_total{route="/odd\"path\\x\n",code="200"} 1
requests_total{route="/v2/sessions",code="200"} 5
requests_total{route="/v2/sessions",code="404"} 1
# HELP zeta_total sorted last despite being registered first
# TYPE zeta_total counter
zeta_total 3
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestRegisterIdempotentAndConflict(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x")
	b := r.Counter("x_total", "x")
	if a != b {
		t.Fatal("same name+type should return the same counter")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("conflicting re-registration should panic")
			}
		}()
		r.Gauge("x_total", "x")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("conflicting label re-registration should panic")
			}
		}()
		r.CounterVec("x_total", "x", "route")
	}()
}

func TestHistogramSum(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "h", nil)
	for i := 0; i < 100; i++ {
		h.Observe(0.25)
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("count = %d, want 100", got)
	}
	if got := h.Sum(); got != 25 {
		t.Fatalf("sum = %v, want 25", got)
	}
}

// TestRegistryConcurrent hammers registration, increments and scrapes from
// many goroutines; run under -race.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("conc_total", "c", "shard")
	h := r.Histogram("conc_seconds", "h", nil)
	g := r.Gauge("conc_gauge", "g")

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			shard := string(rune('a' + w%4))
			c := cv.With(shard)
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i) / 1000)
				g.Add(1)
				if i%100 == 0 {
					// Concurrent re-registration must be safe and idempotent.
					r.CounterVec("conc_total", "c", "shard").With(shard)
				}
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var b strings.Builder
				if err := r.WriteText(&b); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	total := int64(0)
	for _, shard := range []string{"a", "b", "c", "d"} {
		total += cv.With(shard).Value()
	}
	if total != 8000 {
		t.Errorf("counter total = %d, want 8000", total)
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d, want 8000", h.Count())
	}
	if g.Value() != 8000 {
		t.Errorf("gauge = %d, want 8000", g.Value())
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "b")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_seconds", "b", nil)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(0.003)
		}
	})
}
