// Package obs is the dependency-free observability plane of the PrIU
// service: a metrics registry (counters, gauges, fixed-bucket histograms,
// with label support and atomic hot paths) exposed in Prometheus text
// format, plus a lightweight request tracer (see trace.go) whose span trees
// stitch a deletion across fleet replicas through the X-Priu-Trace header.
//
// Design points:
//
//   - Increments and observations are single atomic ops on pre-resolved
//     metric handles — no allocations, no locks — so instrumentation is safe
//     on the kernel-adjacent hot paths (deletion updates, par dispatch).
//   - Values are int64 for counters/gauges (everything the service counts is
//     integral) and float64 for histogram observations (durations in
//     seconds). Counter.Add returns the new value so existing atomic.Int64
//     call sites migrate without restructuring.
//   - CounterFunc/GaugeFunc adapt subsystems that already maintain their own
//     atomics (the store's Stats(), the par pool, cluster membership): the
//     registry reads them at scrape time, making it the single source of
//     truth without double-counting.
//   - A Registry is an instance, not a process global: each Server owns one,
//     so tests that build many servers in one process never share counters.
package obs

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric types, as exposed on the TYPE line.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// DefBuckets are the default latency buckets (seconds): half a millisecond
// through ten seconds, covering incremental updates (sub-ms) to full capture
// and slow spill restores.
var DefBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// Counter is a monotonically increasing metric. The zero value is unusable;
// obtain counters from a Registry (or a CounterVec child).
type Counter struct {
	v atomic.Int64
}

// Add increments the counter and returns the new value (matching
// atomic.Int64.Add, so migrated call sites keep their shape).
func (c *Counter) Add(delta int64) int64 { return c.v.Add(delta) }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge and returns the new value.
func (g *Gauge) Add(delta int64) int64 { return g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram. Buckets are cumulative on the wire
// (each le bucket counts all observations at or below its bound) but stored
// per-bucket internally so Observe touches exactly one bucket counter.
type Histogram struct {
	bounds []float64      // sorted upper bounds, exclusive of +Inf
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf overflow
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-add
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Linear scan: bucket lists are short (≤ ~15) and the common case exits
	// in the first few comparisons; a binary search buys nothing here.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// family is one registered metric name: its metadata and children (one per
// label-value tuple; a plain metric is the single child with no labels).
type family struct {
	name    string
	help    string
	typ     string
	labels  []string
	buckets []float64

	mu       sync.Mutex
	children map[string]*child
	order    []string // insertion-ordered keys, sorted at exposition

	fn func() int64 // func-backed counter/gauge (no children)
}

type child struct {
	values []string
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds metric families and writes them as Prometheus text
// exposition. All methods are safe for concurrent use.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// register resolves or creates a family, panicking on a conflicting
// re-registration (same name, different type or labels): that is always a
// programming error, and failing loud beats silently splitting a metric.
func (r *Registry) register(name, help, typ string, labels []string, buckets []float64) *family {
	if name == "" {
		panic("obs: metric name must not be empty")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.typ != typ || !equalLabels(f.labels, labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered with conflicting type or labels", name))
		}
		return f
	}
	f := &family{
		name: name, help: help, typ: typ,
		labels: append([]string(nil), labels...), buckets: buckets,
		children: make(map[string]*child),
	}
	r.fams[name] = f
	return f
}

func equalLabels(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// childFor resolves or creates one labeled child of a family.
func (f *family) childFor(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	if ch, ok := f.children[key]; ok {
		return ch
	}
	ch := &child{values: append([]string(nil), values...)}
	switch f.typ {
	case typeCounter:
		ch.c = &Counter{}
	case typeGauge:
		ch.g = &Gauge{}
	case typeHistogram:
		ch.h = &Histogram{bounds: f.buckets, counts: make([]atomic.Int64, len(f.buckets)+1)}
	}
	f.children[key] = ch
	f.order = append(f.order, key)
	return ch
}

// Counter registers (or returns) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, typeCounter, nil, nil).childFor(nil).c
}

// Gauge registers (or returns) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, typeGauge, nil, nil).childFor(nil).g
}

// Histogram registers (or returns) an unlabeled histogram. A nil buckets
// slice uses DefBuckets. Buckets must be sorted ascending.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	return r.register(name, help, typeHistogram, nil, buckets).childFor(nil).h
}

// CounterVec is a counter family with labels; resolve children with With.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, typeCounter, labels, nil)}
}

// With resolves the child for one label-value tuple. Resolution takes the
// family lock; hot paths should resolve once and hold the *Counter.
func (v *CounterVec) With(values ...string) *Counter { return v.f.childFor(values).c }

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, typeGauge, labels, nil)}
}

// With resolves the child for one label-value tuple.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.childFor(values).g }

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec registers a labeled histogram family (nil buckets =
// DefBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	return &HistogramVec{r.register(name, help, typeHistogram, labels, buckets)}
}

// With resolves the child for one label-value tuple.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.childFor(values).h }

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the adapter for subsystems that keep their own atomics. fn must be
// safe for concurrent use and monotonic.
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	f := r.register(name, help, typeCounter, nil, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// GaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	f := r.register(name, help, typeGauge, nil, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}
