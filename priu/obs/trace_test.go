package obs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceIDs(t *testing.T) {
	id := NewTraceID()
	if len(id) != 16 || !ValidTraceID(id) {
		t.Fatalf("NewTraceID() = %q, want 16 valid hex chars", id)
	}
	if NewTraceID() == id {
		t.Error("two trace IDs should differ")
	}
	for _, bad := range []string{"", "short", strings.Repeat("a", 65), "zzzzzzzzzz", "abc def12345"} {
		if ValidTraceID(bad) {
			t.Errorf("ValidTraceID(%q) = true, want false", bad)
		}
	}
	if !ValidTraceID("DEADBEEF-0123") {
		t.Error("hex with dashes should be valid")
	}
}

func TestSpanTree(t *testing.T) {
	tr := NewTracer(4)
	tr.SetSlowOp(0) // disable logging

	ctx, root := tr.StartRoot(context.Background(), "abcdef0123456789", "v2.deletions")
	ctx2, capture := StartSpan(ctx, "capture")
	_, inner := StartSpan(ctx2, "fsync")
	inner.End()
	capture.End()
	_, sib := StartSpan(ctx, "update")
	sib.End()
	root.End()

	v, ok := tr.Lookup("abcdef0123456789")
	if !ok {
		t.Fatal("completed trace not found")
	}
	if len(v.Spans) != 1 || v.Spans[0].Name != "v2.deletions" {
		t.Fatalf("want one root span v2.deletions, got %+v", v.Spans)
	}
	kids := v.Spans[0].Children
	if len(kids) != 2 || kids[0].Name != "capture" || kids[1].Name != "update" {
		t.Fatalf("want children [capture update], got %+v", kids)
	}
	if len(kids[0].Children) != 1 || kids[0].Children[0].Name != "fsync" {
		t.Fatalf("capture should have one fsync child, got %+v", kids[0].Children)
	}
	if v.Spans[0].Open {
		t.Error("ended root should not be open")
	}
}

func TestStartSpanNoTrace(t *testing.T) {
	ctx, s := StartSpan(context.Background(), "orphan")
	if s != nil {
		t.Fatal("StartSpan without a trace should return a nil span")
	}
	s.End() // must not panic
	if ctx == nil {
		t.Fatal("ctx must be returned unchanged")
	}
}

func TestRingEviction(t *testing.T) {
	tr := NewTracer(2)
	tr.SetSlowOp(0)
	for i := 0; i < 3; i++ {
		_, root := tr.StartRoot(context.Background(), fmt.Sprintf("trace%03d-%03d", i, i), "op")
		root.End()
	}
	if _, ok := tr.Lookup("trace000-000"); ok {
		t.Error("oldest trace should have been evicted from a ring of 2")
	}
	if _, ok := tr.Lookup("trace002-002"); !ok {
		t.Error("newest trace should be present")
	}
	recent := tr.Recent(0)
	if len(recent) != 2 || recent[0].TraceID != "trace002-002" || recent[1].TraceID != "trace001-001" {
		t.Errorf("Recent = %+v, want newest-first [trace002, trace001]", recent)
	}
}

func TestSlowOpLog(t *testing.T) {
	tr := NewTracer(4)
	tr.SetSlowOp(time.Nanosecond)
	var mu sync.Mutex
	var lines []string
	tr.SetLogf(func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	})

	ctx, root := tr.StartRoot(context.Background(), "feedfacefeedface", "v2.whatif")
	_, child := StartSpan(ctx, "whatif.eval")
	time.Sleep(time.Millisecond)
	child.End()
	root.End()

	mu.Lock()
	defer mu.Unlock()
	if len(lines) != 1 {
		t.Fatalf("want one slow-op line, got %d: %v", len(lines), lines)
	}
	if !strings.Contains(lines[0], "slow-op trace=feedfacefeedface") ||
		!strings.Contains(lines[0], `op="v2.whatif"`) ||
		!strings.Contains(lines[0], `hottest="whatif.eval"`) {
		t.Errorf("slow-op line missing fields: %s", lines[0])
	}

	// Under the threshold: no log.
	tr.SetSlowOp(time.Hour)
	_, fast := tr.StartRoot(context.Background(), "0123456789abcdef", "v2.meta")
	fast.End()
	if len(lines) != 1 {
		t.Errorf("fast trace should not log, got %v", lines)
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tr := NewTracer(4)
	tr.SetSlowOp(0)
	_, root := tr.StartRoot(context.Background(), "cafebabecafebabe", "op")
	root.End()
	root.End() // second End must not re-complete or panic
	if got := len(tr.Recent(0)); got != 1 {
		t.Fatalf("double End committed the trace %d times", got)
	}
}

// TestTracerConcurrent exercises concurrent span creation, completion and
// lookups; run under -race.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(16)
	tr.SetSlowOp(0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := fmt.Sprintf("%08d%08d", w, i)
				ctx, root := tr.StartRoot(context.Background(), id, "op")
				var inner sync.WaitGroup
				for j := 0; j < 4; j++ {
					inner.Add(1)
					go func() {
						defer inner.Done()
						_, s := StartSpan(ctx, "leaf")
						s.End()
					}()
				}
				inner.Wait()
				root.End()
				tr.Lookup(id)
				tr.Recent(4)
			}
		}(w)
	}
	wg.Wait()
}
