package priu

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/par"
)

// What-if planning: evaluate a batch of candidate deletion sets against one
// updater without committing anything, sharing the work of common prefixes.
//
// A WhatIfPlanner lays the candidate sets out as a prefix tree over removal
// ids: every trie node holds a forkable WhatIfState with that id-prefix
// already applied, so two sets sharing a prefix pay for it once — the second
// set walks the existing nodes (counted as cache hits) and only forks where
// it diverges. The idiom follows streaming query planners (plan once, reuse
// across a batch); here the "plan" is the partially-applied updater state.

// WhatIfState is the forkable what-if cursor capability (see
// internal/core): Apply folds removed ids in strictly ascending order, Fork
// branches an independent copy, Eval returns the model Update would produce
// for the applied set without mutating the updater.
type WhatIfState = core.WhatIfState

// WhatIfer is the optional capability of updaters that can answer what-if
// queries incrementally. The PrIU-opt families implement it; for every other
// family the planner falls back to pure replay (Update is a pure function of
// the removal set for all built-in families, so evaluating a candidate set
// never touches the updater's state — the moral equivalent of
// snapshot-restore-into-scratch without the IO).
type WhatIfer interface {
	WhatIf() (WhatIfState, error)
}

// DefaultWhatIfMaxNodes caps the retained prefix-tree size. Sets planned
// past the cap still evaluate correctly; their divergent suffix states are
// just not retained for reuse.
const DefaultWhatIfMaxNodes = 1 << 15

// WhatIfResult is one candidate set's evaluation. Seconds is the time the
// set's tail evaluation took when it ran (memoized duplicates report the
// original evaluation's cost).
type WhatIfResult struct {
	Model   *Model
	Err     error
	Seconds float64
}

type whatifNode struct {
	state    WhatIfState
	children map[int]*whatifNode
	model    *Model
	err      error
	secs     float64
	done     bool
}

// WhatIfPlanner plans candidate deletion sets as a shared prefix tree over
// one updater. Planning (Eval / EvalBatch calls) must happen from a single
// goroutine; EvalBatch fans the per-leaf evaluations out internally.
type WhatIfPlanner struct {
	root  *whatifNode
	nodes int
	// MaxNodes bounds the retained tree (default DefaultWhatIfMaxNodes);
	// adjust before the first Eval.
	MaxNodes    int
	hits        int64
	incremental bool
}

// NewWhatIfPlanner builds a planner over the updater: incremental when the
// updater implements WhatIfer, pure-replay otherwise. An updater whose
// WhatIf capability fails to initialize (e.g. a provenance mode the
// incremental cursor does not cover) degrades to replay rather than erroring
// — the results are identical either way.
func NewWhatIfPlanner(u Updater) (*WhatIfPlanner, error) {
	var (
		st  WhatIfState
		inc bool
	)
	if wi, ok := u.(WhatIfer); ok {
		if s, err := wi.WhatIf(); err == nil {
			st, inc = s, true
		}
	}
	if st == nil {
		st = &replayWhatIf{upd: u}
	}
	return &WhatIfPlanner{
		root:        &whatifNode{state: st},
		nodes:       1,
		MaxNodes:    DefaultWhatIfMaxNodes,
		incremental: inc,
	}, nil
}

// Incremental reports whether the planner runs on a WhatIfer capability (vs
// pure replay).
func (p *WhatIfPlanner) Incremental() bool { return p.incremental }

// CacheHits returns how many prefix-tree edges were reused across the sets
// planned so far — the work the sharing saved, in applied-id units.
func (p *WhatIfPlanner) CacheHits() int64 { return p.hits }

// Nodes returns the retained tree size (including the root).
func (p *WhatIfPlanner) Nodes() int { return p.nodes }

// leaf walks/extends the trie to the node holding exactly ids (which must be
// strictly ascending and duplicate-free). Past MaxNodes the remaining suffix
// is applied onto a transient fork that is not retained.
func (p *WhatIfPlanner) leaf(ids []int) (*whatifNode, error) {
	cur := p.root
	for i, id := range ids {
		if child, ok := cur.children[id]; ok {
			p.hits++
			cur = child
			continue
		}
		if p.nodes >= p.MaxNodes {
			st := cur.state.Fork()
			if err := st.Apply(ids[i:]); err != nil {
				return nil, err
			}
			return &whatifNode{state: st}, nil
		}
		st := cur.state.Fork()
		if err := st.Apply([]int{id}); err != nil {
			return nil, err
		}
		child := &whatifNode{state: st}
		if cur.children == nil {
			cur.children = make(map[int]*whatifNode)
		}
		cur.children[id] = child
		p.nodes++
		cur = child
	}
	return cur, nil
}

// evalNode evaluates a node once, memoizing the model on the node so a later
// identical set returns it without recomputation.
func evalNode(n *whatifNode) (*Model, error) {
	if !n.done {
		start := time.Now()
		n.model, n.err = n.state.Eval()
		n.secs = time.Since(start).Seconds()
		n.done = true
	}
	return n.model, n.err
}

// Eval evaluates one candidate set (ids strictly ascending, no duplicates)
// against the planner's updater.
func (p *WhatIfPlanner) Eval(ids []int) (*Model, error) {
	n, err := p.leaf(ids)
	if err != nil {
		return nil, err
	}
	return evalNode(n)
}

// EvalBatch plans all sets, then evaluates the distinct unevaluated leaves
// concurrently on the shared worker pool with at most workers evaluators
// (workers ≤ 1 evaluates serially). Results align with sets.
func (p *WhatIfPlanner) EvalBatch(sets [][]int, workers int) []WhatIfResult {
	out := make([]WhatIfResult, len(sets))
	leaves := make([]*whatifNode, len(sets))
	var todo []*whatifNode
	seen := make(map[*whatifNode]bool)
	for i, ids := range sets {
		n, err := p.leaf(ids)
		if err != nil {
			out[i].Err = err
			continue
		}
		leaves[i] = n
		if !n.done && !seen[n] {
			seen[n] = true
			todo = append(todo, n)
		}
	}
	if len(todo) > 0 {
		if workers <= 0 {
			workers = par.Workers()
		}
		grain := (len(todo) + workers - 1) / workers
		par.For(len(todo), grain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				start := time.Now()
				todo[i].model, todo[i].err = todo[i].state.Eval()
				todo[i].secs = time.Since(start).Seconds()
				todo[i].done = true
			}
		})
	}
	for i, n := range leaves {
		if n == nil {
			continue
		}
		out[i].Model, out[i].Err = evalNode(n)
		out[i].Seconds = n.secs
	}
	return out
}

// replayWhatIf is the fallback cursor for families without the WhatIfer
// capability: it only accumulates the id set and evaluates with one pure
// Update call, so a shared prefix saves no model work (only duplicate sets
// are memoized) but the semantics are identical.
type replayWhatIf struct {
	upd Updater
	ids []int
}

func (s *replayWhatIf) Apply(ids []int) error {
	last := -1
	if len(s.ids) > 0 {
		last = s.ids[len(s.ids)-1]
	}
	for _, id := range ids {
		if id < 0 {
			return fmt.Errorf("priu: whatif id %d out of range", id)
		}
		if id <= last {
			return fmt.Errorf("priu: whatif ids must be strictly ascending (%d after %d)", id, last)
		}
		last = id
	}
	s.ids = append(s.ids, ids...)
	return nil
}

func (s *replayWhatIf) Fork() WhatIfState {
	return &replayWhatIf{upd: s.upd, ids: append([]int(nil), s.ids...)}
}

func (s *replayWhatIf) Eval() (*Model, error) { return s.upd.Update(s.ids) }
