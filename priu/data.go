package priu

import (
	"repro/internal/dataset"
	"repro/internal/metrics"
)

// Dataset is a dense training set (row-major features + labels). It is an
// alias of the internal representation, so every method — Split, Remove,
// InjectDirty, Standardize, ... — is available on values built here.
type Dataset = dataset.Dataset

// SparseDataset is the CSR training set used by the sparse-logistic family.
type SparseDataset = dataset.SparseDataset

// Task labels what a dataset's Y column means.
type Task = dataset.Task

// Task values.
const (
	// Regression marks continuous targets.
	Regression = dataset.Regression
	// BinaryClassification marks ±1 targets.
	BinaryClassification = dataset.BinaryClassification
	// MultiClassification marks 0..q−1 class targets.
	MultiClassification = dataset.MultiClassification
)

// GenerateRegression synthesizes an n×m regression dataset from a planted
// linear model with the given label-noise standard deviation.
func GenerateRegression(name string, n, m int, noise float64, seed int64) (*Dataset, error) {
	return dataset.GenerateRegression(name, n, m, noise, seed)
}

// GenerateBinary synthesizes an n×m ±1 classification dataset with the given
// class margin.
func GenerateBinary(name string, n, m int, margin float64, seed int64) (*Dataset, error) {
	return dataset.GenerateBinary(name, n, m, margin, seed)
}

// GenerateMulticlass synthesizes an n×m q-class dataset.
func GenerateMulticlass(name string, n, m, q int, margin float64, seed int64) (*Dataset, error) {
	return dataset.GenerateMulticlass(name, n, m, q, margin, seed)
}

// GenerateSparseBinary synthesizes an n×m CSR binary-classification dataset
// with about nnzPerRow stored entries per row (RCV1-style).
func GenerateSparseBinary(name string, n, m, nnzPerRow int, seed int64) (*SparseDataset, error) {
	return dataset.GenerateSparseBinary(name, n, m, nnzPerRow, seed)
}

// Comparison relates two models (cosine similarity, L2 distance, ...).
type Comparison = metrics.Comparison

// Compare relates two models parameter-wise.
func Compare(a, b *Model) (Comparison, error) { return metrics.Compare(a, b) }

// MSE returns a regression model's mean squared error on a dataset.
func MSE(model *Model, d *Dataset) (float64, error) { return metrics.MSE(model, d) }

// Accuracy returns a classification model's accuracy on a dense dataset.
func Accuracy(model *Model, d *Dataset) (float64, error) { return metrics.Accuracy(model, d) }

// AccuracySparse returns a binary model's accuracy on a sparse dataset.
func AccuracySparse(model *Model, d *SparseDataset) (float64, error) {
	return metrics.AccuracySparse(model, d)
}
