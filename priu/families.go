package priu

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/gbm"
	"repro/internal/interp"
)

// Built-in family names. PrIU families capture per-iteration provenance and
// replay the cheap linearized rule; the -opt variants add the Sec 5.2/5.4
// eigendecomposition optimizations for small feature spaces.
const (
	// FamilyLinear is PrIU for ridge linear regression (Sec 5.1).
	FamilyLinear = "linear"
	// FamilyLogistic is PrIU for binary logistic regression (Sec 4.2/5.3).
	FamilyLogistic = "logistic"
	// FamilyMultinomial is PrIU for multinomial logistic regression.
	FamilyMultinomial = "multinomial"
	// FamilySparseLogistic is PrIU's sparse-dataset logistic path (Sec 5.3).
	FamilySparseLogistic = "sparse-logistic"
	// FamilyLinearOpt is PrIU-opt for linear regression (Sec 5.2).
	FamilyLinearOpt = "linear-opt"
	// FamilyLogisticOpt is PrIU-opt for logistic regression (Sec 5.4).
	FamilyLogisticOpt = "logistic-opt"
	// FamilyMultinomialOpt is PrIU-opt for multinomial regression.
	FamilyMultinomialOpt = "multinomial-opt"
)

func init() {
	Register(FamilyLinear, Family{
		Task: Regression,
		Capture: func(ds TrainingSet, cfg Config) (Updater, error) {
			d, sched, err := densePrep(FamilyLinear, ds, cfg)
			if err != nil {
				return nil, err
			}
			return core.CaptureLinear(d, cfg.gbm(), sched, cfg.core())
		},
		Restore: func(r io.Reader, ds TrainingSet) (Updater, error) {
			d, err := denseOf(FamilyLinear, ds)
			if err != nil {
				return nil, err
			}
			return core.LoadLinearProvenance(r, d)
		},
		Retrain:   denseRetrain(FamilyLinear, gbm.TrainLinear),
		Retrainer: denseRetrainer(FamilyLinear, gbm.TrainLinear),
	})
	Register(FamilyLinearOpt, Family{
		Task: Regression,
		Capture: func(ds TrainingSet, cfg Config) (Updater, error) {
			d, err := denseOf(FamilyLinearOpt, ds)
			if err != nil {
				return nil, err
			}
			return core.NewLinearOpt(d, cfg.gbm())
		},
		Restore: func(r io.Reader, ds TrainingSet) (Updater, error) {
			d, err := denseOf(FamilyLinearOpt, ds)
			if err != nil {
				return nil, err
			}
			return core.LoadLinearOpt(r, d)
		},
		Retrain:   denseRetrain(FamilyLinearOpt, gbm.TrainLinear),
		Retrainer: denseRetrainer(FamilyLinearOpt, gbm.TrainLinear),
	})
	Register(FamilyLogistic, Family{
		Task: BinaryClassification,
		Capture: func(ds TrainingSet, cfg Config) (Updater, error) {
			d, sched, err := densePrep(FamilyLogistic, ds, cfg)
			if err != nil {
				return nil, err
			}
			lin, err := cfg.linearizer()
			if err != nil {
				return nil, err
			}
			return core.CaptureLogistic(d, cfg.gbm(), sched, lin, cfg.core())
		},
		Restore: func(r io.Reader, ds TrainingSet) (Updater, error) {
			d, err := denseOf(FamilyLogistic, ds)
			if err != nil {
				return nil, err
			}
			return core.LoadLogisticProvenance(r, d)
		},
		Retrain:   denseRetrain(FamilyLogistic, gbm.TrainLogistic),
		Retrainer: denseRetrainer(FamilyLogistic, gbm.TrainLogistic),
	})
	Register(FamilyLogisticOpt, Family{
		Task: BinaryClassification,
		Capture: func(ds TrainingSet, cfg Config) (Updater, error) {
			d, sched, err := densePrep(FamilyLogisticOpt, ds, cfg)
			if err != nil {
				return nil, err
			}
			lin, err := cfg.linearizer()
			if err != nil {
				return nil, err
			}
			return core.CaptureLogisticOpt(d, cfg.gbm(), sched, lin, cfg.core())
		},
		Restore: func(r io.Reader, ds TrainingSet) (Updater, error) {
			d, err := denseOf(FamilyLogisticOpt, ds)
			if err != nil {
				return nil, err
			}
			return core.LoadLogisticOpt(r, d)
		},
		Retrain:   denseRetrain(FamilyLogisticOpt, gbm.TrainLogistic),
		Retrainer: denseRetrainer(FamilyLogisticOpt, gbm.TrainLogistic),
	})
	Register(FamilyMultinomial, Family{
		Task: MultiClassification,
		Capture: func(ds TrainingSet, cfg Config) (Updater, error) {
			d, sched, err := densePrep(FamilyMultinomial, ds, cfg)
			if err != nil {
				return nil, err
			}
			return core.CaptureMultinomial(d, cfg.gbm(), sched, cfg.core())
		},
		Restore: func(r io.Reader, ds TrainingSet) (Updater, error) {
			d, err := denseOf(FamilyMultinomial, ds)
			if err != nil {
				return nil, err
			}
			return core.LoadMultinomialProvenance(r, d)
		},
		Retrain:   denseRetrain(FamilyMultinomial, gbm.TrainMultinomial),
		Retrainer: denseRetrainer(FamilyMultinomial, gbm.TrainMultinomial),
	})
	Register(FamilyMultinomialOpt, Family{
		Task: MultiClassification,
		Capture: func(ds TrainingSet, cfg Config) (Updater, error) {
			d, sched, err := densePrep(FamilyMultinomialOpt, ds, cfg)
			if err != nil {
				return nil, err
			}
			return core.CaptureMultinomialOpt(d, cfg.gbm(), sched, cfg.core())
		},
		Restore: func(r io.Reader, ds TrainingSet) (Updater, error) {
			d, err := denseOf(FamilyMultinomialOpt, ds)
			if err != nil {
				return nil, err
			}
			return core.LoadMultinomialOpt(r, d)
		},
		Retrain:   denseRetrain(FamilyMultinomialOpt, gbm.TrainMultinomial),
		Retrainer: denseRetrainer(FamilyMultinomialOpt, gbm.TrainMultinomial),
	})
	Register(FamilySparseLogistic, Family{
		Task:   BinaryClassification,
		Sparse: true,
		Capture: func(ds TrainingSet, cfg Config) (Updater, error) {
			d, err := sparseOf(FamilySparseLogistic, ds)
			if err != nil {
				return nil, err
			}
			sched, err := gbm.NewSchedule(d.N(), cfg.gbm())
			if err != nil {
				return nil, err
			}
			lin, err := cfg.linearizer()
			if err != nil {
				return nil, err
			}
			return core.CaptureLogisticSparse(d, cfg.gbm(), sched, lin)
		},
		Restore: func(r io.Reader, ds TrainingSet) (Updater, error) {
			d, err := sparseOf(FamilySparseLogistic, ds)
			if err != nil {
				return nil, err
			}
			return core.LoadSparseLogisticProvenance(r, d)
		},
		Retrain: func(ds TrainingSet, cfg Config, removed []int) (*Model, error) {
			d, err := sparseOf(FamilySparseLogistic, ds)
			if err != nil {
				return nil, err
			}
			sched, err := gbm.NewSchedule(d.N(), cfg.gbm())
			if err != nil {
				return nil, err
			}
			rm, err := gbm.RemovalSet(d.N(), removed)
			if err != nil {
				return nil, err
			}
			return gbm.TrainLogisticSparse(d, cfg.gbm(), sched, rm)
		},
		Retrainer: func(ds TrainingSet, cfg Config) (func([]int) (*Model, error), error) {
			d, err := sparseOf(FamilySparseLogistic, ds)
			if err != nil {
				return nil, err
			}
			sched, err := gbm.NewSchedule(d.N(), cfg.gbm())
			if err != nil {
				return nil, err
			}
			gcfg := cfg.gbm()
			return func(removed []int) (*Model, error) {
				rm, err := gbm.RemovalSet(d.N(), removed)
				if err != nil {
					return nil, err
				}
				return gbm.TrainLogisticSparse(d, gcfg, sched, rm)
			}, nil
		},
	})
}

// gbm converts the resolved Config to the trainer's hyperparameter set.
func (c Config) gbm() gbm.Config {
	return gbm.Config{
		Eta:        c.Eta,
		Lambda:     c.Lambda,
		BatchSize:  c.BatchSize,
		Iterations: c.Iterations,
		Seed:       c.Seed,
	}
}

// core converts the resolved Config to the capture options.
func (c Config) core() core.Options {
	return core.Options{
		Mode:                     c.Mode,
		Epsilon:                  c.Epsilon,
		EarlyTerminationFraction: c.EarlyTermination,
	}
}

// linearizer builds the sigmoid interpolation grid, nil meaning the capture
// default (the paper's 10⁶-cell grid).
func (c Config) linearizer() (*interp.Linearizer, error) {
	if c.LinearizerCells == 0 {
		return nil, nil
	}
	return interp.NewLinearizer(interp.F, interp.DefaultBound, c.LinearizerCells)
}

// denseOf asserts the dense training-set representation.
func denseOf(family string, ds TrainingSet) (*dataset.Dataset, error) {
	d, ok := ds.(*dataset.Dataset)
	if !ok {
		return nil, fmt.Errorf("priu: family %q requires a dense *priu.Dataset, got %T", family, ds)
	}
	return d, nil
}

// sparseOf asserts the sparse training-set representation.
func sparseOf(family string, ds TrainingSet) (*dataset.SparseDataset, error) {
	d, ok := ds.(*dataset.SparseDataset)
	if !ok {
		return nil, fmt.Errorf("priu: family %q requires a *priu.SparseDataset, got %T", family, ds)
	}
	return d, nil
}

// densePrep asserts a dense dataset and builds its batch schedule.
func densePrep(family string, ds TrainingSet, cfg Config) (*dataset.Dataset, *gbm.Schedule, error) {
	d, err := denseOf(family, ds)
	if err != nil {
		return nil, nil, err
	}
	sched, err := gbm.NewSchedule(d.N(), cfg.gbm())
	if err != nil {
		return nil, nil, err
	}
	return d, sched, nil
}

// denseRetrain adapts one of the gbm trainers into a Family.Retrain hook.
func denseRetrain(family string, train func(*dataset.Dataset, gbm.Config, *gbm.Schedule, map[int]bool) (*Model, error)) func(TrainingSet, Config, []int) (*Model, error) {
	return func(ds TrainingSet, cfg Config, removed []int) (*Model, error) {
		d, sched, err := densePrep(family, ds, cfg)
		if err != nil {
			return nil, err
		}
		rm, err := gbm.RemovalSet(d.N(), removed)
		if err != nil {
			return nil, err
		}
		return train(d, cfg.gbm(), sched, rm)
	}
}

// denseRetrainer is the prepared variant of denseRetrain: the schedule is
// built once, outside any caller's timed region.
func denseRetrainer(family string, train func(*dataset.Dataset, gbm.Config, *gbm.Schedule, map[int]bool) (*Model, error)) func(TrainingSet, Config) (func([]int) (*Model, error), error) {
	return func(ds TrainingSet, cfg Config) (func([]int) (*Model, error), error) {
		d, sched, err := densePrep(family, ds, cfg)
		if err != nil {
			return nil, err
		}
		gcfg := cfg.gbm()
		return func(removed []int) (*Model, error) {
			rm, err := gbm.RemovalSet(d.N(), removed)
			if err != nil {
				return nil, err
			}
			return train(d, gcfg, sched, rm)
		}, nil
	}
}
