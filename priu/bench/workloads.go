// Package bench is the experiment harness that regenerates every table and
// figure of the paper's Sec 6 on the synthetic dataset substitutes. Each
// experiment id (fig1a, fig2b, table3, ...) maps to a runner that prepares
// the workload, times the update phase of each method (BaseL retraining,
// PrIU, PrIU-opt, INFL, Closed-form) across the paper's deletion-rate sweep,
// and prints rows in the same shape the paper reports.
//
// Sizes are scaled down from the paper's server-scale runs so the whole
// suite executes offline on a laptop; the per-experiment scale factors are
// recorded in EXPERIMENTS.md. Only relative behaviour (who wins, by what
// factor, where crossovers fall) is expected to transfer.
package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/gbm"
)

// Kind classifies a workload by the model family it trains.
type Kind int

const (
	// KindLinear is ridge linear regression (SGEMM-style).
	KindLinear Kind = iota
	// KindBinary is binary logistic regression (HIGGS/RCV1-style).
	KindBinary
	// KindMulti is multinomial logistic regression (Cov/Heartbeat/cifar10).
	KindMulti
	// KindSparse is binary logistic regression over CSR data (RCV1).
	KindSparse
)

// Workload is one experiment configuration — the analogue of a row in the
// paper's Table 2, with the synthetic sample count and schema it runs on.
type Workload struct {
	ID     string
	Schema string // dataset.PaperSchemas name
	Kind   Kind
	// N is the synthetic training-set size (paper sizes are in the schema).
	N int
	// ExtraFeatures appends random features (the SGEMM (extended) device).
	ExtraFeatures int
	// NNZPerRow is the per-row density for sparse workloads.
	NNZPerRow int
	Cfg       gbm.Config
	Mode      core.CacheMode
	// Epsilon overrides the SVD coverage threshold (0 = package default).
	Epsilon float64
	Seed    int64
}

// Family returns the workload's base priu family name ("linear",
// "logistic", ...), so CLIs can address a workload's model family over the
// service API without duplicating the Kind mapping.
func (w Workload) Family() (string, error) { return familyForKind(w.Kind) }

// Workloads lists every configuration used by the experiments, mirroring
// Table 2's rows (hyperparameters kept; n and τ scaled as documented in
// EXPERIMENTS.md). Learning rates are adapted to the synthetic generators'
// scale where the paper's values (tuned to raw UCI feature ranges) would not
// converge.
var Workloads = map[string]Workload{
	"sgemm-original": {
		ID: "sgemm-original", Schema: "SGEMM", Kind: KindLinear, N: 12000,
		Cfg:  gbm.Config{Eta: 5e-3, Lambda: 0.1, BatchSize: 200, Iterations: 600, Seed: 101},
		Seed: 1,
	},
	"sgemm-extended": {
		ID: "sgemm-extended", Schema: "SGEMM", Kind: KindLinear, N: 6000, ExtraFeatures: 282,
		Cfg:  gbm.Config{Eta: 2e-3, Lambda: 0.1, BatchSize: 100, Iterations: 250, Seed: 102},
		Mode: core.ModeSVD,
		Seed: 2,
	},
	"cov-small": {
		ID: "cov-small", Schema: "Cov", Kind: KindMulti, N: 12000,
		Cfg:  gbm.Config{Eta: 1e-2, Lambda: 0.001, BatchSize: 200, Iterations: 400, Seed: 103},
		Seed: 3,
	},
	"cov-large1": {
		ID: "cov-large1", Schema: "Cov", Kind: KindMulti, N: 12000,
		Cfg:  gbm.Config{Eta: 1e-2, Lambda: 0.001, BatchSize: 2000, Iterations: 60, Seed: 104},
		Seed: 3,
	},
	"cov-large2": {
		ID: "cov-large2", Schema: "Cov", Kind: KindMulti, N: 12000,
		Cfg:  gbm.Config{Eta: 1e-2, Lambda: 0.001, BatchSize: 2000, Iterations: 180, Seed: 105},
		Seed: 3,
	},
	"higgs": {
		ID: "higgs", Schema: "HIGGS", Kind: KindBinary, N: 20000,
		Cfg:  gbm.Config{Eta: 1e-2, Lambda: 0.01, BatchSize: 1000, Iterations: 250, Seed: 106},
		Seed: 4,
	},
	// Heartbeat uses the paper's large-batch regime (their B=500 > m=188),
	// where the full m×m caches beat per-sample recomputation.
	"heartbeat": {
		ID: "heartbeat", Schema: "Heartbeat", Kind: KindMulti, N: 6000,
		Cfg:  gbm.Config{Eta: 5e-3, Lambda: 0.1, BatchSize: 600, Iterations: 80, Seed: 107},
		Seed: 5,
	},
	"rcv1": {
		ID: "rcv1", Schema: "RCV1", Kind: KindSparse, N: 2500, NNZPerRow: 60,
		Cfg:  gbm.Config{Eta: 0.05, Lambda: 0.5, BatchSize: 250, Iterations: 300, Seed: 108},
		Seed: 6,
	},
	"cifar10": {
		ID: "cifar10", Schema: "cifar10", Kind: KindMulti, N: 3000,
		Cfg:     gbm.Config{Eta: 1e-3, Lambda: 0.1, BatchSize: 128, Iterations: 50, Seed: 109},
		Mode:    core.ModeSVD,
		Epsilon: 0.05,
		Seed:    7,
	},
	// Extended variants for the repetitive-deletion experiment (Fig 4); the
	// paper concatenates copies to tens of millions of rows — we use the
	// same construction at laptop scale.
	"cov-extended": {
		ID: "cov-extended", Schema: "Cov", Kind: KindMulti, N: 8000,
		Cfg:  gbm.Config{Eta: 1e-2, Lambda: 0.001, BatchSize: 400, Iterations: 250, Seed: 110},
		Seed: 3,
	},
	"higgs-extended": {
		ID: "higgs-extended", Schema: "HIGGS", Kind: KindBinary, N: 30000,
		Cfg:  gbm.Config{Eta: 1e-2, Lambda: 0.01, BatchSize: 2000, Iterations: 300, Seed: 111},
		Seed: 4,
	},
	"heartbeat-extended": {
		ID: "heartbeat-extended", Schema: "Heartbeat", Kind: KindMulti, N: 8000,
		Cfg:  gbm.Config{Eta: 5e-3, Lambda: 0.1, BatchSize: 600, Iterations: 100, Seed: 112},
		Seed: 5,
	},
}

// WorkloadByID returns a registered workload.
func WorkloadByID(id string) (Workload, error) {
	w, ok := Workloads[id]
	if !ok {
		return Workload{}, fmt.Errorf("bench: unknown workload %q", id)
	}
	return w, nil
}

// Scale returns a copy of the workload with n and τ multiplied by s (0 < s ≤ 1),
// used by tests and quick runs.
func (w Workload) Scale(s float64) Workload {
	if s <= 0 || s > 1 {
		return w
	}
	out := w
	out.N = max(int(float64(w.N)*s), 4*w.Cfg.BatchSize/3+1)
	out.Cfg.Iterations = max(int(float64(w.Cfg.Iterations)*s), 10)
	if out.Cfg.BatchSize > out.N {
		out.Cfg.BatchSize = out.N
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Generate materializes the workload's training data.
func (w Workload) Generate() (*dataset.Dataset, *dataset.SparseDataset, error) {
	schema, err := dataset.SchemaByName(w.Schema)
	if err != nil {
		return nil, nil, err
	}
	if w.Kind == KindSparse {
		sp, err := dataset.GenerateSparseFromSchema(schema, w.N, w.NNZPerRow, w.Seed)
		return nil, sp, err
	}
	// cifar10 is simulated at reduced feature dimension so that provenance
	// caches fit in laptop memory; the scale factor is documented in
	// EXPERIMENTS.md (shape: it stays the largest dense feature space).
	if w.Schema == "cifar10" {
		d, err := dataset.GenerateMulticlass(schema.Name, w.N, 256, schema.Classes, 2.0, w.Seed)
		return d, nil, err
	}
	d, err := dataset.GenerateFromSchema(schema, w.N, w.Seed)
	if err != nil {
		return nil, nil, err
	}
	if w.ExtraFeatures > 0 {
		d, err = d.ExtendFeatures(w.ExtraFeatures, w.Seed+1000)
		if err != nil {
			return nil, nil, err
		}
	}
	return d, nil, nil
}

// DeletionRates is the sweep used by the update-time figures (the paper's
// 0.01%–20%).
var DeletionRates = []float64{0.0001, 0.001, 0.01, 0.05, 0.1, 0.2}
