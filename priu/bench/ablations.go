package bench

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/interp"
	"repro/internal/metrics"
	"repro/priu"
)

// permPrefix returns the first k entries of a seeded permutation of [0,n).
func permPrefix(n, k int, seed int64) []int {
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	out := make([]int, k)
	copy(out, perm[:k])
	return out
}

// Ablation experiments probe the design choices of Sec 5 that DESIGN.md
// calls out: the SVD coverage threshold ε (Theorems 6/8), PrIU-opt's early
// termination point ts (Theorem 9), and the interpolation grid Δx (Theorem 4).
// They introspect the captured state through priu's capability interfaces
// (Truncated, EarlyTerminated, Linearized) rather than concrete engine types.

// ablationConfig converts a workload's hyperparameters into a priu.Config.
func ablationConfig(wl Workload) priu.Config {
	return priu.Config{
		Eta: wl.Cfg.Eta, Lambda: wl.Cfg.Lambda, BatchSize: wl.Cfg.BatchSize,
		Iterations: wl.Cfg.Iterations, Seed: wl.Cfg.Seed,
		LinearizerCells: benchLinearizerCells,
	}
}

// runAblationSVDRank sweeps ε for the SVD-cached linear workload and reports
// the realized rank, update time and closeness to BaseL.
func runAblationSVDRank(w io.Writer, scale float64) error {
	wl, err := WorkloadByID("sgemm-extended")
	if err != nil {
		return err
	}
	wl = wl.Scale(scale)
	dense, _, err := wl.Generate()
	if err != nil {
		return err
	}
	train, _, err := dense.Split(0.9, wl.Seed+7)
	if err != nil {
		return err
	}
	cfg := ablationConfig(wl)
	removed := removalOf(train.N(), 0.01, wl.Seed+51)
	base, err := priu.RetrainConfig(priu.FamilyLinear, train, cfg, removed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-10s %8s %12s %12s\n", "epsilon", "maxRank", "distance", "cosine")
	for _, eps := range []float64{0.2, 0.1, 0.05, 0.01, 0.001} {
		epsCfg := cfg
		epsCfg.Mode = priu.ModeSVD
		epsCfg.Epsilon = eps
		u, err := priu.TrainConfig(priu.FamilyLinear, train, epsCfg)
		if err != nil {
			return err
		}
		upd, err := u.Update(removed)
		if err != nil {
			return err
		}
		cmp, err := metrics.Compare(upd, base)
		if err != nil {
			return err
		}
		trunc, ok := u.(priu.Truncated)
		if !ok {
			return fmt.Errorf("bench: linear updater lost the Truncated capability")
		}
		fmt.Fprintf(w, "%-10.3g %8d %12.4g %12.6f\n", eps, trunc.MaxRank(), cmp.L2Distance, cmp.Cosine)
	}
	return nil
}

// runAblationTs sweeps PrIU-opt's early-termination fraction for the HIGGS
// logistic workload (Theorem 9: deviation grows with τ−ts).
func runAblationTs(w io.Writer, scale float64) error {
	wl, err := WorkloadByID("higgs")
	if err != nil {
		return err
	}
	wl = wl.Scale(scale)
	dense, _, err := wl.Generate()
	if err != nil {
		return err
	}
	train, _, err := dense.Split(0.9, wl.Seed+7)
	if err != nil {
		return err
	}
	cfg := ablationConfig(wl)
	removed := removalOf(train.N(), 0.01, wl.Seed+52)
	base, err := priu.RetrainConfig(priu.FamilyLogistic, train, cfg, removed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-10s %8s %12s %12s\n", "ts/tau", "ts", "distance", "cosine")
	for _, frac := range []float64{0.3, 0.5, 0.7, 0.9, 1.0} {
		fracCfg := cfg
		fracCfg.EarlyTermination = frac
		u, err := priu.TrainConfig(priu.FamilyLogisticOpt, train, fracCfg)
		if err != nil {
			return err
		}
		upd, err := u.Update(removed)
		if err != nil {
			return err
		}
		cmp, err := metrics.Compare(upd, base)
		if err != nil {
			return err
		}
		et, ok := u.(priu.EarlyTerminated)
		if !ok {
			return fmt.Errorf("bench: logistic-opt updater lost the EarlyTerminated capability")
		}
		fmt.Fprintf(w, "%-10.2f %8d %12.4g %12.6f\n", frac, et.Ts(), cmp.L2Distance, cmp.Cosine)
	}
	return nil
}

// runAblationDx sweeps the interpolation grid resolution and reports the
// Lemma 9 bound plus the realized distance between the linearized and exact
// models (Theorem 4's O((Δx)²)).
func runAblationDx(w io.Writer, scale float64) error {
	wl, err := WorkloadByID("higgs")
	if err != nil {
		return err
	}
	wl = wl.Scale(scale * 0.5)
	dense, _, err := wl.Generate()
	if err != nil {
		return err
	}
	train, _, err := dense.Split(0.9, wl.Seed+7)
	if err != nil {
		return err
	}
	cfg := ablationConfig(wl)
	fmt.Fprintf(w, "%-10s %14s %14s\n", "cells", "lemma9.bound", "‖w−w_L‖")
	for _, cells := range []int{100, 1000, 10_000, 100_000} {
		// The grid's realized error bound comes from the interpolation layer
		// directly; the capture below uses an identical grid via the config.
		lin, err := interp.NewLinearizer(interp.F, interp.DefaultBound, cells)
		if err != nil {
			return err
		}
		cellCfg := cfg
		cellCfg.LinearizerCells = cells
		u, err := priu.TrainConfig(priu.FamilyLogistic, train, cellCfg)
		if err != nil {
			return err
		}
		linzed, ok := u.(priu.Linearized)
		if !ok {
			return fmt.Errorf("bench: logistic updater lost the Linearized capability")
		}
		cmp, err := metrics.Compare(linzed.LinearizedModel(), u.Model())
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-10d %14.4g %14.4g\n", cells, lin.MaxAbsError(), cmp.L2Distance)
	}
	return nil
}

// removalOf picks ⌈rate·n⌉ indices deterministically (shared helper for
// ablations that bypass Prepared).
func removalOf(n int, rate float64, seed int64) []int {
	k := int(rate * float64(n))
	if k < 1 {
		k = 1
	}
	if k >= n {
		k = n - 1
	}
	return permPrefix(n, k, seed)
}
