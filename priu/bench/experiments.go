package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/dataset"
	"repro/internal/metrics"
)

// Experiment is a runnable reproduction of one paper artifact.
type Experiment struct {
	ID          string
	Description string
	// Run executes the experiment at the given scale (0 < scale ≤ 1; 1 is
	// the harness default documented in EXPERIMENTS.md) and prints
	// paper-style rows to w.
	Run func(w io.Writer, scale float64) error
}

// Registry maps experiment ids to runners covering every table and figure of
// Sec 6 plus the ablations called out in DESIGN.md.
var Registry = map[string]Experiment{
	"table1": {ID: "table1", Description: "Table 1: dataset characteristics (simulated schemas)", Run: runTable1},
	"table2": {ID: "table2", Description: "Table 2: hyperparameters per workload", Run: runTable2},
	"fig1a":  {ID: "fig1a", Description: "Fig 1a: linear update time, SGEMM (original)", Run: sweepRunner("sgemm-original")},
	"fig1b":  {ID: "fig1b", Description: "Fig 1b: linear update time, SGEMM (extended)", Run: sweepRunner("sgemm-extended")},
	"fig2a":  {ID: "fig2a", Description: "Fig 2a: logistic update time, Cov (small)", Run: sweepRunner("cov-small")},
	"fig2b":  {ID: "fig2b", Description: "Fig 2b: logistic update time, Cov (large 1)", Run: sweepRunner("cov-large1")},
	"fig2c":  {ID: "fig2c", Description: "Fig 2c: logistic update time, Cov (large 2)", Run: sweepRunner("cov-large2")},
	"fig3a":  {ID: "fig3a", Description: "Fig 3a: logistic update time, Heartbeat", Run: sweepRunner("heartbeat")},
	"fig3b":  {ID: "fig3b", Description: "Fig 3b: logistic update time, HIGGS", Run: sweepRunner("higgs")},
	"fig3c":  {ID: "fig3c", Description: "Fig 3c: update time, RCV1 (sparse) and cifar10 (dense, large m)", Run: runFig3c},
	"fig4":   {ID: "fig4", Description: "Fig 4: repetitive removal of 10 subsets (extended datasets)", Run: runFig4},
	"table3": {ID: "table3", Description: "Table 3: memory consumption per method", Run: runTable3},
	"table4": {ID: "table4", Description: "Table 4: accuracy/distance/similarity at deletion rate 0.2", Run: runTable4},

	"ablation-svdrank": {ID: "ablation-svdrank", Description: "Ablation: SVD coverage ε vs accuracy and rank", Run: runAblationSVDRank},
	"ablation-ts":      {ID: "ablation-ts", Description: "Ablation: early-termination point ts vs accuracy", Run: runAblationTs},
	"ablation-dx":      {ID: "ablation-dx", Description: "Ablation: interpolation grid Δx vs linearization error", Run: runAblationDx},
}

// IDs returns the registered experiment ids in sorted order.
func IDs() []string {
	out := make([]string, 0, len(Registry))
	for id := range Registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// sweepRunner builds a Run function that prepares a workload and prints the
// update-time sweep — the shape of every line chart in Figs 1–3.
func sweepRunner(workloadID string) func(io.Writer, float64) error {
	return func(w io.Writer, scale float64) error {
		wl, err := WorkloadByID(workloadID)
		if err != nil {
			return err
		}
		p, err := Prepare(wl.Scale(scale))
		if err != nil {
			return err
		}
		return printSweep(w, p)
	}
}

func printSweep(w io.Writer, p *Prepared) error {
	results, err := p.Sweep(DeletionRates)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "# workload=%s n=%d m=%d B=%d iters=%d (capture %.2fs, offline)\n",
		p.W.ID, p.N(), featureCount(p), p.W.Cfg.BatchSize, p.W.Cfg.Iterations,
		p.CaptureTime().Seconds())
	fmt.Fprintf(w, "%-12s %-12s %10s %12s %10s %10s\n",
		"del.rate", "method", "removed", "update(ms)", "speedup", "metric")
	baseTimes := map[float64]time.Duration{}
	for _, r := range results {
		if r.Method == MethodBaseL {
			baseTimes[r.DeletionRate] = r.UpdateTime
		}
	}
	for _, r := range results {
		speed := "-"
		if r.Method != MethodBaseL {
			if bt, ok := baseTimes[r.DeletionRate]; ok && r.UpdateTime > 0 {
				speed = fmt.Sprintf("%.2fx", bt.Seconds()/r.UpdateTime.Seconds())
			}
		}
		fmt.Fprintf(w, "%-12.4g %-12s %10d %12.3f %10s %10.4g\n",
			r.DeletionRate, r.Method, r.Removed,
			float64(r.UpdateTime.Microseconds())/1000, speed, r.Metric)
	}
	return nil
}

func featureCount(p *Prepared) int {
	if p.Dense != nil {
		return p.Dense.M()
	}
	return p.Sp.M()
}

func runTable1(w io.Writer, scale float64) error {
	fmt.Fprintf(w, "%-12s %10s %8s %12s %12s %8s\n",
		"name", "#features", "#classes", "#samples", "paper n", "sparse")
	for _, s := range dataset.PaperSchemas {
		// Report the synthetic n used by the main workload on this schema.
		simN := 0
		for _, wl := range Workloads {
			if wl.Schema == s.Name && simN == 0 {
				simN = wl.Scale(scale).N
			}
		}
		fmt.Fprintf(w, "%-12s %10d %8d %12d %12d %8v\n",
			s.Name, s.Features, s.Classes, simN, s.PaperN, s.Sparse)
	}
	return nil
}

func runTable2(w io.Writer, scale float64) error {
	fmt.Fprintf(w, "%-20s %10s %8s %10s %10s %10s\n",
		"workload", "batch", "iters", "eta", "lambda", "n")
	ids := make([]string, 0, len(Workloads))
	for id := range Workloads {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		wl := Workloads[id].Scale(scale)
		fmt.Fprintf(w, "%-20s %10d %8d %10.2g %10.2g %10d\n",
			id, wl.Cfg.BatchSize, wl.Cfg.Iterations, wl.Cfg.Eta, wl.Cfg.Lambda, wl.N)
	}
	return nil
}

// runFig3c handles the paper's combined RCV1/cifar10 panel: deletion rate
// 0.1%, PrIU only vs BaseL.
func runFig3c(w io.Writer, scale float64) error {
	for _, id := range []string{"rcv1", "cifar10"} {
		wl, err := WorkloadByID(id)
		if err != nil {
			return err
		}
		p, err := Prepare(wl.Scale(scale))
		if err != nil {
			return err
		}
		removed := p.PickRemoval(0.001, wl.Seed+31)
		base, baseDt, err := p.RunUpdate(MethodBaseL, removed)
		if err != nil {
			return err
		}
		upd, dt, err := p.RunUpdate(MethodPrIU, removed)
		if err != nil {
			return err
		}
		cmp, err := metrics.Compare(upd, base)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-10s del=0.001 BaseL=%.3fms PrIU=%.3fms speedup=%.2fx cos=%.4f\n",
			id, baseDt.Seconds()*1000, dt.Seconds()*1000,
			baseDt.Seconds()/dt.Seconds(), cmp.Cosine)
	}
	return nil
}

// runFig4 reproduces the repetitive-deletion experiment: ten different
// subsets at ~0.1% each; BaseL retrains per subset while PrIU-opt reuses the
// one-time capture.
func runFig4(w io.Writer, scale float64) error {
	const subsets = 10
	for _, id := range []string{"cov-extended", "higgs-extended", "heartbeat-extended"} {
		wl, err := WorkloadByID(id)
		if err != nil {
			return err
		}
		p, err := Prepare(wl.Scale(scale))
		if err != nil {
			return err
		}
		method := MethodPrIUOpt
		var baseTotal, incTotal time.Duration
		for s := 0; s < subsets; s++ {
			removed := p.PickRemoval(0.001, wl.Seed+int64(100+s))
			_, baseDt, err := p.RunUpdate(MethodBaseL, removed)
			if err != nil {
				return err
			}
			_, dt, err := p.RunUpdate(method, removed)
			if err != nil {
				return err
			}
			baseTotal += baseDt
			incTotal += dt
		}
		fmt.Fprintf(w, "%-20s subsets=%d BaseL=%.2fs %s=%.2fs speedup=%.2fx\n",
			id, subsets, baseTotal.Seconds(), method, incTotal.Seconds(),
			baseTotal.Seconds()/incTotal.Seconds())
	}
	return nil
}

// runTable3 prints the provenance-cache memory per workload and method.
func runTable3(w io.Writer, scale float64) error {
	ids := []string{"cov-small", "cov-large1", "cov-large2", "higgs",
		"sgemm-original", "sgemm-extended", "heartbeat", "rcv1", "cifar10"}
	fmt.Fprintf(w, "%-16s %14s %14s %14s\n", "workload", "BaseL(MB)", "PrIU(MB)", "PrIU-opt(MB)")
	for _, id := range ids {
		wl, err := WorkloadByID(id)
		if err != nil {
			return err
		}
		p, err := Prepare(wl.Scale(scale))
		if err != nil {
			return err
		}
		mb := func(m Method) string {
			b := p.FootprintBytes(m)
			if b == 0 {
				return "-"
			}
			return fmt.Sprintf("%.2f", float64(b)/(1<<20))
		}
		fmt.Fprintf(w, "%-16s %14s %14s %14s\n", id, mb(MethodBaseL), mb(MethodPrIU), mb(MethodPrIUOpt))
	}
	return nil
}

// runTable4 reproduces the accuracy/distance/similarity comparison at the
// paper's highest deletion rate (20%).
func runTable4(w io.Writer, scale float64) error {
	ids := []string{"cov-small", "cov-large1", "cov-large2", "higgs",
		"heartbeat", "sgemm-original", "sgemm-extended"}
	fmt.Fprintf(w, "%-16s %-10s %12s %12s %12s %12s\n",
		"workload", "method", "BaseL.metric", "metric", "distance", "similarity")
	for _, id := range ids {
		wl, err := WorkloadByID(id)
		if err != nil {
			return err
		}
		p, err := Prepare(wl.Scale(scale))
		if err != nil {
			return err
		}
		removed := p.PickRemoval(0.2, wl.Seed+41)
		base, _, err := p.RunUpdate(MethodBaseL, removed)
		if err != nil {
			return err
		}
		baseMetric, err := p.Evaluate(base)
		if err != nil {
			return err
		}
		methods := []Method{MethodPrIUOpt, MethodINFL}
		if p.W.Kind == KindSparse {
			methods = []Method{MethodPrIU}
		}
		for _, m := range methods {
			upd, _, err := p.RunUpdate(m, removed)
			if err != nil {
				return err
			}
			metric, err := p.Evaluate(upd)
			if err != nil {
				return err
			}
			cmp, err := metrics.Compare(upd, base)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-16s %-10s %12.4g %12.4g %12.4g %12.4f\n",
				id, m, baseMetric, metric, cmp.L2Distance, cmp.Cosine)
		}
	}
	return nil
}
