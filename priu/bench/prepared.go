package bench

import (
	"fmt"
	"time"

	"repro/internal/closedform"
	"repro/internal/dataset"
	"repro/internal/gbm"
	"repro/internal/influence"
	"repro/internal/metrics"
	"repro/priu"
)

// Method names the update strategies compared in the experiments.
type Method string

// The methods of Sec 6.2.
const (
	MethodBaseL      Method = "BaseL"
	MethodPrIU       Method = "PrIU"
	MethodPrIUOpt    Method = "PrIU-opt"
	MethodINFL       Method = "INFL"
	MethodClosedForm Method = "Closed-form"
)

// Result is one timed update run.
type Result struct {
	Workload     string
	Method       Method
	DeletionRate float64
	Removed      int
	UpdateTime   time.Duration
	// Metric is validation MSE (linear) or validation accuracy
	// (classification) of the updated model.
	Metric float64
	// Comparison relates the updated model to the BaseL reference (zero
	// value for the BaseL rows themselves).
	Comparison metrics.Comparison
}

// benchLinearizerCells keeps workload preparation fast: a 100k-cell grid
// (error bound ~4·10⁻⁷, well inside every tolerance used here) instead of
// the paper's 10⁶-cell default, which interp's own tests exercise.
const benchLinearizerCells = 100_000

// Prepared holds a workload with its data generated, initial model trained
// and all offline provenance captured, ready for timed update runs. Every
// update strategy is held behind priu.Updater — the harness dispatches on
// Method names, never on concrete engine types.
type Prepared struct {
	W     Workload
	Dense *dataset.Dataset
	Valid *dataset.Dataset
	Sp    *dataset.SparseDataset
	Minit *gbm.Model

	baseFamily string
	cfg        priu.Config
	upds       map[Method]priu.Updater
	// baseRetrain is the BaseL retrainer with its schedule prebuilt, so
	// timed runs exclude deletion-independent setup (the paper's protocol).
	baseRetrain func(removed []int) (*gbm.Model, error)
	schedBytes  int64
	captureDt   time.Duration
}

// familyForKind maps a workload kind to its base priu family.
func familyForKind(k Kind) (string, error) {
	switch k {
	case KindLinear:
		return priu.FamilyLinear, nil
	case KindBinary:
		return priu.FamilyLogistic, nil
	case KindMulti:
		return priu.FamilyMultinomial, nil
	case KindSparse:
		return priu.FamilySparseLogistic, nil
	default:
		return "", fmt.Errorf("bench: unknown kind %d", k)
	}
}

// fixedModelUpdater adapts the comparison baselines (closed-form view,
// influence functions) — which expose Update/FootprintBytes but compute no
// initial model of their own — into priu.Updater.
type fixedModelUpdater struct {
	impl interface {
		Update(removed []int) (*gbm.Model, error)
		FootprintBytes() int64
	}
	model *gbm.Model
}

func (u fixedModelUpdater) Update(removed []int) (*gbm.Model, error) { return u.impl.Update(removed) }
func (u fixedModelUpdater) Model() *gbm.Model                        { return u.model }
func (u fixedModelUpdater) FootprintBytes() int64                    { return u.impl.FootprintBytes() }

// Prepare generates the data, trains the initial model and runs every
// offline capture the workload's methods need.
func Prepare(w Workload) (*Prepared, error) {
	start := time.Now()
	dense, sp, err := w.Generate()
	if err != nil {
		return nil, err
	}
	p := &Prepared{W: w, Sp: sp, upds: map[Method]priu.Updater{}}
	if dense != nil {
		train, valid, err := dense.Split(0.9, w.Seed+7)
		if err != nil {
			return nil, err
		}
		p.Dense, p.Valid = train, valid
	}
	n := w.N
	if p.Dense != nil {
		n = p.Dense.N()
	} else if sp != nil {
		n = sp.N()
	}
	cfg := w.Cfg
	if cfg.BatchSize > n {
		cfg.BatchSize = n
	}
	p.W.Cfg = cfg
	p.cfg = priu.Config{
		Eta: cfg.Eta, Lambda: cfg.Lambda, BatchSize: cfg.BatchSize,
		Iterations: cfg.Iterations, Seed: cfg.Seed,
		Mode: w.Mode, Epsilon: w.Epsilon,
		LinearizerCells: benchLinearizerCells,
	}
	p.baseFamily, err = familyForKind(w.Kind)
	if err != nil {
		return nil, err
	}
	sched, err := gbm.NewSchedule(n, cfg)
	if err != nil {
		return nil, err
	}
	p.schedBytes = sched.FootprintBytes()

	for _, m := range p.Methods() {
		switch m {
		case MethodBaseL:
			p.baseRetrain, err = priu.NewRetrainer(p.baseFamily, p.TrainingSet(), p.cfg)
			if err != nil {
				return nil, err
			}
		case MethodPrIU:
			u, err := priu.TrainConfig(p.baseFamily, p.TrainingSet(), p.cfg)
			if err != nil {
				return nil, err
			}
			p.upds[m] = u
			p.Minit = u.Model()
		case MethodPrIUOpt:
			u, err := priu.TrainConfig(p.baseFamily+"-opt", p.TrainingSet(), p.cfg)
			if err != nil {
				return nil, err
			}
			p.upds[m] = u
		case MethodClosedForm:
			view, err := closedform.NewView(p.Dense, cfg.Lambda)
			if err != nil {
				return nil, err
			}
			p.upds[m] = fixedModelUpdater{impl: view, model: p.Minit}
		case MethodINFL:
			infl, err := influence.NewCached(p.Dense, p.Minit, cfg.Lambda)
			if err != nil {
				return nil, err
			}
			p.upds[m] = fixedModelUpdater{impl: infl, model: p.Minit}
		}
	}
	p.captureDt = time.Since(start)
	return p, nil
}

// TrainingSet returns the workload's training input (dense or sparse).
func (p *Prepared) TrainingSet() priu.TrainingSet {
	if p.Dense != nil {
		return p.Dense
	}
	return p.Sp
}

// Updater returns the captured updater behind a method, if the method has
// offline state (BaseL does not).
func (p *Prepared) Updater(m Method) (priu.Updater, bool) {
	u, ok := p.upds[m]
	return u, ok
}

// CaptureTime reports how long preparation (data + training + provenance
// capture) took — the offline cost excluded from reported update times.
func (p *Prepared) CaptureTime() time.Duration { return p.captureDt }

// N returns the training-set size.
func (p *Prepared) N() int { return p.TrainingSet().N() }

// PickRemoval deterministically selects ⌈rate·n⌉ samples (at least 1),
// sharing the selection policy with the ablation runners (removalOf).
func (p *Prepared) PickRemoval(rate float64, seed int64) []int {
	return removalOf(p.N(), rate, seed)
}

// Methods returns the update strategies applicable to this workload, in
// presentation order.
func (p *Prepared) Methods() []Method {
	switch p.W.Kind {
	case KindLinear:
		return []Method{MethodBaseL, MethodPrIU, MethodPrIUOpt, MethodClosedForm, MethodINFL}
	case KindBinary:
		return []Method{MethodBaseL, MethodPrIU, MethodPrIUOpt, MethodINFL}
	case KindMulti:
		if p.Dense.M() >= 256 {
			// cifar10 regime: the paper runs only PrIU (no opt, no INFL) for
			// extremely large feature spaces.
			return []Method{MethodBaseL, MethodPrIU}
		}
		return []Method{MethodBaseL, MethodPrIU, MethodPrIUOpt, MethodINFL}
	case KindSparse:
		return []Method{MethodBaseL, MethodPrIU}
	}
	return nil
}

// RunUpdate executes one timed update with the given method and removal set.
func (p *Prepared) RunUpdate(m Method, removed []int) (*gbm.Model, time.Duration, error) {
	if m == MethodBaseL {
		start := time.Now()
		model, err := p.baseRetrain(removed)
		if err != nil {
			return nil, 0, err
		}
		return model, time.Since(start), nil
	}
	u, ok := p.upds[m]
	if !ok {
		return nil, 0, fmt.Errorf("bench: method %s not applicable to workload %s", m, p.W.ID)
	}
	start := time.Now()
	model, err := u.Update(removed)
	if err != nil {
		return nil, 0, err
	}
	return model, time.Since(start), nil
}

// Evaluate computes the validation metric of a model for this workload.
func (p *Prepared) Evaluate(model *gbm.Model) (float64, error) {
	switch p.W.Kind {
	case KindLinear:
		return metrics.MSE(model, p.Valid)
	case KindBinary, KindMulti:
		return metrics.Accuracy(model, p.Valid)
	case KindSparse:
		return metrics.AccuracySparse(model, p.Sp)
	}
	return 0, fmt.Errorf("bench: unknown kind")
}

// Sweep runs every applicable method across the deletion-rate sweep,
// comparing each updated model against the BaseL reference.
func (p *Prepared) Sweep(rates []float64) ([]Result, error) {
	var out []Result
	for ri, rate := range rates {
		removed := p.PickRemoval(rate, p.W.Seed+int64(1000*ri))
		base, baseDt, err := p.RunUpdate(MethodBaseL, removed)
		if err != nil {
			return nil, err
		}
		baseMetric, err := p.Evaluate(base)
		if err != nil {
			return nil, err
		}
		out = append(out, Result{
			Workload: p.W.ID, Method: MethodBaseL, DeletionRate: rate,
			Removed: len(removed), UpdateTime: baseDt, Metric: baseMetric,
		})
		for _, m := range p.Methods() {
			if m == MethodBaseL {
				continue
			}
			model, dt, err := p.RunUpdate(m, removed)
			if err != nil {
				return nil, err
			}
			metric, err := p.Evaluate(model)
			if err != nil {
				return nil, err
			}
			cmp, err := metrics.Compare(model, base)
			if err != nil {
				return nil, err
			}
			out = append(out, Result{
				Workload: p.W.ID, Method: m, DeletionRate: rate,
				Removed: len(removed), UpdateTime: dt, Metric: metric, Comparison: cmp,
			})
		}
	}
	return out, nil
}

// FootprintBytes reports provenance-cache memory per method for Table 3.
// BaseL's figure is the training data plus the batch schedule (what plain
// retraining keeps resident).
func (p *Prepared) FootprintBytes(m Method) int64 {
	var dataBytes int64
	if p.Dense != nil {
		dataBytes = int64(p.Dense.N())*int64(p.Dense.M())*8 + int64(p.Dense.N())*8
	} else {
		dataBytes = p.Sp.X.FootprintBytes() + int64(p.Sp.N())*8
	}
	base := dataBytes + p.schedBytes
	if m == MethodBaseL {
		return base
	}
	u, ok := p.upds[m]
	if !ok {
		return 0
	}
	return base + u.FootprintBytes()
}
