package bench

import (
	"bytes"
	"strings"
	"testing"
)

// tinyWorkload shrinks a registered workload far enough for unit tests.
func tinyWorkload(t *testing.T, id string) Workload {
	t.Helper()
	w, err := WorkloadByID(id)
	if err != nil {
		t.Fatal(err)
	}
	w.N = 400
	w.Cfg.Iterations = 30
	if w.Cfg.BatchSize > 100 {
		w.Cfg.BatchSize = 100
	}
	return w
}

func TestWorkloadRegistryComplete(t *testing.T) {
	want := []string{
		"sgemm-original", "sgemm-extended", "cov-small", "cov-large1",
		"cov-large2", "higgs", "heartbeat", "rcv1", "cifar10",
		"cov-extended", "higgs-extended", "heartbeat-extended",
	}
	for _, id := range want {
		if _, err := WorkloadByID(id); err != nil {
			t.Fatalf("missing workload %s: %v", id, err)
		}
	}
	if _, err := WorkloadByID("nope"); err == nil {
		t.Fatal("expected unknown-workload error")
	}
}

func TestExperimentRegistryCoversAllArtifacts(t *testing.T) {
	want := []string{
		"table1", "table2", "table3", "table4",
		"fig1a", "fig1b", "fig2a", "fig2b", "fig2c",
		"fig3a", "fig3b", "fig3c", "fig4",
		"ablation-svdrank", "ablation-ts", "ablation-dx",
	}
	for _, id := range want {
		e, ok := Registry[id]
		if !ok {
			t.Fatalf("missing experiment %s", id)
		}
		if e.Run == nil || e.Description == "" {
			t.Fatalf("experiment %s incomplete", id)
		}
	}
	if len(IDs()) != len(Registry) {
		t.Fatal("IDs() length mismatch")
	}
}

func TestScale(t *testing.T) {
	w, err := WorkloadByID("higgs")
	if err != nil {
		t.Fatal(err)
	}
	s := w.Scale(0.1)
	if s.N >= w.N || s.Cfg.Iterations >= w.Cfg.Iterations {
		t.Fatalf("Scale did not shrink: %+v", s)
	}
	if s.Cfg.BatchSize > s.N {
		t.Fatal("Scale left batch larger than n")
	}
	// Out-of-range scale is a no-op.
	if w.Scale(0).N != w.N || w.Scale(2).N != w.N {
		t.Fatal("Scale should ignore out-of-range factors")
	}
}

func TestPrepareAndSweepLinear(t *testing.T) {
	p, err := Prepare(tinyWorkload(t, "sgemm-original"))
	if err != nil {
		t.Fatal(err)
	}
	if p.CaptureTime() <= 0 {
		t.Fatal("capture time not recorded")
	}
	results, err := p.Sweep([]float64{0.01, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	// 5 methods × 2 rates.
	if len(results) != 10 {
		t.Fatalf("got %d results", len(results))
	}
	for _, r := range results {
		if r.UpdateTime <= 0 {
			t.Fatalf("non-positive update time for %s", r.Method)
		}
		if r.Method != MethodBaseL && r.Comparison.Coordinates == 0 {
			t.Fatalf("missing comparison for %s", r.Method)
		}
	}
	// PrIU must track BaseL closely at 1% deletion.
	for _, r := range results {
		if r.Method == MethodPrIU && r.DeletionRate == 0.01 && r.Comparison.Cosine < 0.99 {
			t.Fatalf("PrIU cosine %v at 1%% deletion", r.Comparison.Cosine)
		}
	}
}

func TestPrepareBinaryAndMultiAndSparse(t *testing.T) {
	for _, id := range []string{"higgs", "cov-small", "rcv1"} {
		w := tinyWorkload(t, id)
		p, err := Prepare(w)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		removed := p.PickRemoval(0.01, 1)
		if len(removed) < 1 {
			t.Fatalf("%s: empty removal", id)
		}
		base, _, err := p.RunUpdate(MethodBaseL, removed)
		if err != nil {
			t.Fatalf("%s BaseL: %v", id, err)
		}
		upd, _, err := p.RunUpdate(MethodPrIU, removed)
		if err != nil {
			t.Fatalf("%s PrIU: %v", id, err)
		}
		if base == nil || upd == nil {
			t.Fatalf("%s: nil models", id)
		}
		if _, err := p.Evaluate(upd); err != nil {
			t.Fatalf("%s Evaluate: %v", id, err)
		}
		if fp := p.FootprintBytes(MethodPrIU); fp <= p.FootprintBytes(MethodBaseL) {
			t.Fatalf("%s: PrIU footprint %d not above BaseL %d", id, fp, p.FootprintBytes(MethodBaseL))
		}
	}
}

func TestMethodsPerKind(t *testing.T) {
	lin, err := Prepare(tinyWorkload(t, "sgemm-original"))
	if err != nil {
		t.Fatal(err)
	}
	if got := lin.Methods(); len(got) != 5 {
		t.Fatalf("linear methods = %v", got)
	}
	sp, err := Prepare(tinyWorkload(t, "rcv1"))
	if err != nil {
		t.Fatal(err)
	}
	if got := sp.Methods(); len(got) != 2 {
		t.Fatalf("sparse methods = %v", got)
	}
	// Sparse workloads reject dense-only methods.
	if _, _, err := sp.RunUpdate(MethodINFL, []int{0}); err == nil {
		t.Fatal("expected method-not-applicable error")
	}
}

func TestRunTableExperiments(t *testing.T) {
	for _, id := range []string{"table1", "table2"} {
		var buf bytes.Buffer
		if err := Registry[id].Run(&buf, 0.05); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s produced no output", id)
		}
	}
	// Table 1 must list all six schemas.
	var buf bytes.Buffer
	if err := Registry["table1"].Run(&buf, 0.05); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"SGEMM", "Cov", "HIGGS", "RCV1", "Heartbeat", "cifar10"} {
		if !strings.Contains(buf.String(), name) {
			t.Fatalf("table1 missing %s:\n%s", name, buf.String())
		}
	}
}

func TestRunSweepExperimentSmall(t *testing.T) {
	var buf bytes.Buffer
	if err := Registry["fig1a"].Run(&buf, 0.03); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, m := range []string{"BaseL", "PrIU", "PrIU-opt", "Closed-form", "INFL"} {
		if !strings.Contains(out, m) {
			t.Fatalf("fig1a output missing %s:\n%s", m, out)
		}
	}
}

func TestDeletionRatesMatchPaperRange(t *testing.T) {
	if DeletionRates[0] != 0.0001 || DeletionRates[len(DeletionRates)-1] != 0.2 {
		t.Fatalf("DeletionRates = %v", DeletionRates)
	}
}

func TestPickRemovalBounds(t *testing.T) {
	p, err := Prepare(tinyWorkload(t, "sgemm-original"))
	if err != nil {
		t.Fatal(err)
	}
	r := p.PickRemoval(0.0000001, 1)
	if len(r) != 1 {
		t.Fatalf("tiny rate should remove 1, got %d", len(r))
	}
	r = p.PickRemoval(5, 1) // silly rate clamps to n-1
	if len(r) != p.N()-1 {
		t.Fatalf("huge rate should clamp to n-1, got %d", len(r))
	}
}
