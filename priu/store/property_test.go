package store

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/priu"
)

// The property/oracle suite: randomized Put/Touch/Get/Delete churn from
// several tenants against a plain-map oracle, with LRU evictions, the
// write-behind queue, disk-budget file evictions and GC sweeps racing
// underneath, punctuated by crash-restarts on the same directory. Run under
// -race.
//
// Invariants asserted:
//   - no session is ever in zero tiers: every oracle-live session Gets OK,
//     except those the disk budget dropped — and every such drop is
//     observable (the onDiskEvict hook fires before the miss is possible);
//   - the spill directory's maintained byte gauge never exceeds the budget,
//     sampled continuously during the churn;
//   - quota counters are exact at quiescence: per-tenant owned sessions
//     equal the oracle's live set;
//   - a crash-restart (drain + reboot) preserves exactly the live set.

// propOracle is one tenant's view of what the store must hold. dels counts
// the deletions each session has absorbed: surviving sessions must come
// back from any tier — delta chain, folded base, restart — with exactly
// that log length.
type propOracle struct {
	tenant string
	live   map[string]bool
	dels   map[string]int
	nextID int
	rng    *rand.Rand
}

func (o *propOracle) newID() string {
	o.nextID++
	return fmt.Sprintf("%s/sess-%04d", o.tenant, o.nextID)
}

func (o *propOracle) randLive() string {
	if len(o.live) == 0 {
		return ""
	}
	n := o.rng.Intn(len(o.live))
	for id := range o.live {
		if n == 0 {
			return id
		}
		n--
	}
	return ""
}

func TestStorePropertyOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized churn suite")
	}
	const (
		tenants     = 3
		rounds      = 4
		opsPerRound = 40
		maxSessions = 12 // per-tenant quota, never binding alone
	)
	fileSize := spillFileSize(t, "t0/sess-0000")
	budget := fileSize * 6 // tight: forces disk-budget file evictions

	// Shared read-only bases: one trained updater per tenant, reused across
	// its sessions (the suite never mutates models, so concurrent snapshot
	// writes of one updater are pure reads).
	type base struct {
		ds  priu.TrainingSet
		upd priu.Updater
	}
	bases := make([]base, tenants)
	for g := range bases {
		d, err := priu.GenerateRegression(fmt.Sprintf("prop-%d", g), 60, 4, 0.05, int64(g+1))
		if err != nil {
			t.Fatal(err)
		}
		u, err := priu.Train("linear", d,
			priu.WithEta(0.01), priu.WithLambda(0.05), priu.WithBatchSize(15),
			priu.WithIterations(20), priu.WithSeed(int64(g+1)), priu.WithFullCaches())
		if err != nil {
			t.Fatal(err)
		}
		bases[g] = base{d, u}
	}

	limits := limitsMap(map[string]TenantLimits{
		"t0": {MaxSessions: maxSessions},
		"t1": {MaxSessions: maxSessions},
		"t2": {MaxSessions: maxSessions},
	})
	dir := t.TempDir()
	// dropped records every by-design loss — disk-budget drops of cold
	// sessions and evictions whose spill the full disk rejected — before the
	// loss is observable, so the oracle can tell "lost, and accounted for"
	// from "silently vanished".
	var dropped sync.Map
	open := func() *Tiered {
		ti := newTestTiered(t, dir,
			NewMemory(WithMaxSessions(4), WithTenantLimits(limits)),
			WithSpillMaxBytes(budget),
			WithSpillGC(time.Hour, 5*time.Millisecond), // sweeps race restores
			// Aggressive LSM settings so the churn constantly cuts delta
			// segments, debounces them, and folds chains mid-flight.
			WithSpillCoalesce(2, 2*time.Millisecond),
			WithCompaction(2),
		)
		ti.onDiskEvict = func(id string) { dropped.Store(id, true) }
		ti.onEvictLost = func(id string) { dropped.Store(id, true) }
		return ti
	}
	ti := open()

	oracles := make([]*propOracle, tenants)
	for g := range oracles {
		oracles[g] = &propOracle{
			tenant: fmt.Sprintf("t%d", g),
			live:   map[string]bool{},
			dels:   map[string]int{},
			rng:    rand.New(rand.NewSource(int64(1000 + g))),
		}
	}

	isDropped := func(id string) bool { _, ok := dropped.Load(id); return ok }
	// pruneDropped removes disk-evicted sessions from an oracle's live set.
	pruneDropped := func(o *propOracle) {
		for id := range o.live {
			if isDropped(id) {
				delete(o.live, id)
			}
		}
	}

	for round := 0; round < rounds; round++ {
		// Budget monitor: the maintained gauge must never exceed the budget,
		// at any instant of the churn.
		var overBudget atomic.Int64
		stopMon := make(chan struct{})
		var monWG sync.WaitGroup
		monWG.Add(1)
		go func() {
			defer monWG.Done()
			for {
				select {
				case <-stopMon:
					return
				default:
				}
				if got := ti.Stats().SpillDirBytes; got > budget {
					overBudget.Store(got)
				}
				time.Sleep(time.Millisecond)
			}
		}()

		var wg sync.WaitGroup
		for g := 0; g < tenants; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				o := oracles[g]
				for op := 0; op < opsPerRound; op++ {
					switch o.rng.Intn(13) {
					case 10, 11, 12: // mutate: apply one more deletion
						id := o.randLive()
						if id == "" || o.dels[id] >= 30 {
							continue
						}
						sess, ok := ti.Get(id)
						if !ok {
							if !isDropped(id) {
								t.Errorf("live session %s vanished without a disk eviction", id)
							}
							delete(o.live, id)
							continue
						}
						sess.Mu.Lock()
						if sess.GoneLocked() {
							// Lost a race with an eviction between Get and
							// the lock — the service's retry path; skip.
							sess.Mu.Unlock()
							continue
						}
						next := len(sess.Deleted)
						if next != o.dels[id] {
							sess.Mu.Unlock()
							t.Errorf("session %s carries %d deletions, oracle says %d", id, next, o.dels[id])
							continue
						}
						all := append(append([]int(nil), sess.Deleted...), next)
						m, err := sess.Upd.Update(all)
						if err != nil {
							sess.Mu.Unlock()
							t.Errorf("update %s: %v", id, err)
							continue
						}
						sess.Deleted, sess.Model = all, m
						sess.Updates++
						sess.MarkDirtyLocked()
						sess.Mu.Unlock()
						o.dels[id] = next + 1
					case 0, 1, 2, 3: // put
						id := o.newID()
						sess := NewSession(id, "linear", bases[g].ds, bases[g].upd, nil, nil)
						err := ti.Put(sess)
						if err == nil {
							o.live[id] = true
						} else if _, ok := err.(*QuotaError); !ok {
							t.Errorf("Put(%s): unexpected error %v", id, err)
						}
					case 4, 5, 6, 7: // get + verify presence
						id := o.randLive()
						if id == "" {
							continue
						}
						if _, ok := ti.Get(id); !ok {
							if !isDropped(id) {
								t.Errorf("live session %s vanished without a disk eviction", id)
							}
							delete(o.live, id)
						}
					case 8: // touch
						id := o.randLive()
						if id == "" {
							continue
						}
						if !ti.Touch(id) {
							if !isDropped(id) {
								t.Errorf("live session %s untouchable without a disk eviction", id)
							}
							delete(o.live, id)
						}
					case 9: // delete
						id := o.randLive()
						if id == "" {
							continue
						}
						if !ti.Delete(id) && !isDropped(id) {
							t.Errorf("delete of live session %s reported missing", id)
						}
						delete(o.live, id)
					}
				}
			}(g)
		}
		wg.Wait()
		close(stopMon)
		monWG.Wait()
		if t.Failed() {
			t.FailNow()
		}
		if got := overBudget.Load(); got != 0 {
			t.Fatalf("round %d: spill dir reached %d bytes, budget %d", round, got, budget)
		}

		// Quiescence: flush the write-behind backlog, settle the oracle
		// against async disk evictions, then check the books exactly.
		ti.Flush()
		for _, o := range oracles {
			pruneDropped(o)
			u := ti.TenantUsage(o.tenant)
			if u.Sessions() != len(o.live) {
				t.Fatalf("round %d: tenant %s owns %d sessions, oracle says %d",
					round, o.tenant, u.Sessions(), len(o.live))
			}
			// No session in zero tiers: every oracle-live session is
			// reachable (a Get may trigger evictions whose spills disk-evict
			// others — tolerated exactly like during the churn), and carries
			// exactly the deletions the oracle applied — whether it comes
			// back resident, from a delta chain, or from a folded base.
			for id := range o.live {
				sess, ok := ti.Get(id)
				if !ok {
					if !isDropped(id) {
						t.Fatalf("round %d: live session %s unreachable at quiescence", round, id)
					}
					continue
				}
				if _, nDel, _ := sessionState(t, sess); nDel != o.dels[id] {
					t.Fatalf("round %d: session %s has %d deletions, oracle says %d",
						round, id, nDel, o.dels[id])
				}
			}
			pruneDropped(o)
		}
		if got := ti.Stats().SpillDirBytes; got > budget {
			t.Fatalf("round %d: %d spill-dir bytes over the %d budget at quiescence", round, got, budget)
		}

		// Crash-restart: drain, reboot on the same directory, and require
		// exactly the live set back.
		if err := ti.Close(); err != nil {
			t.Fatalf("round %d: drain: %v", round, err)
		}
		ti = open()
		for _, o := range oracles {
			// The drain itself can disk-evict cold sessions to fit dirty
			// stragglers; settle those before comparing the books.
			pruneDropped(o)
			u := ti.TenantUsage(o.tenant)
			if u.Sessions() != len(o.live) {
				t.Fatalf("round %d: after reboot tenant %s owns %d sessions, oracle says %d",
					round, o.tenant, u.Sessions(), len(o.live))
			}
			for id := range o.live {
				sess, ok := ti.Get(id)
				if !ok {
					if !isDropped(id) {
						t.Fatalf("round %d: session %s lost across restart", round, id)
					}
					continue
				}
				if _, nDel, _ := sessionState(t, sess); nDel != o.dels[id] {
					t.Fatalf("round %d: session %s restarted with %d deletions, oracle says %d",
						round, id, nDel, o.dels[id])
				}
			}
			pruneDropped(o)
		}
	}
}
