package store

import (
	"bytes"
	"fmt"
	"os"
	"time"
)

// Blob-tier wiring for Tiered: the local spill directory acts as a
// read-through/write-behind cache of a shared BlobStore. Every published
// spill lands in the blob tier as ONE spliced v2 object (blobPush folds the
// local base + delta chain on the way up — remote replicas never need our
// segment files), cold misses with no local file fall through to the blob
// tier (adopt), the boot scan reconciles the local cache against the shared
// tier newest-wins (syncBlob), and explicit deletes tombstone the blob key
// — durably, via the tombstone sidecar log (tombstone.go) — until its
// removal sticks, so an acknowledged deletion can never resurrect through
// the read-through path, even across a crash and reboot. ReleaseUnowned is
// the fleet handoff: it drains sessions this node no longer owns to the
// blob tier and forgets them locally, for the new owner to adopt lazily.

// WithBlobStore slots a shared blob tier under the spill directory. Spill
// chains are pushed to it after every local publish, sessions with no local
// copy restore from it, and the disk-budget evictor may demote blob-backed
// local chains (a cache drop, not a session loss).
func WithBlobStore(bs BlobStore) TieredOption {
	return func(t *Tiered) { t.blob = bs }
}

// isRemote reports whether the blob tier holds the session's current spill
// state (per this node's index).
func (t *Tiered) isRemote(id string) bool {
	t.mu.Lock()
	e := t.index[id]
	remote := e != nil && e.remote
	t.mu.Unlock()
	return remote
}

// blobPush uploads a session's published local spill state to the blob tier
// as one spliced v2 object. At most one push per session is in flight
// (concurrent callers skip — whoever owns the gate marks the entry remote on
// success), and the entry is only marked remote if its chain tip is still
// the one that was read, so a push racing a newer spill can never certify
// stale blob contents as current. Failures are counted and left for the GC
// sweep's heal pass.
func (t *Tiered) blobPush(id string) error {
	if t.blob == nil {
		return nil
	}
	t.mu.Lock()
	e := t.index[id]
	if e == nil || !e.local || e.remote {
		t.mu.Unlock()
		return nil
	}
	if t.blobPutting[id] {
		t.mu.Unlock()
		return fmt.Errorf("store: blob push of %s already in flight", id)
	}
	t.blobPutting[id] = true
	path := e.path
	segs := append([]deltaSeg(nil), e.deltas...)
	tipUpdates, tipLen := e.updates, e.logLen
	t.mu.Unlock()

	putStart := time.Now()
	err := t.faultAt("blob.put")
	if err == nil {
		if len(segs) == 0 {
			var f *os.File
			if f, err = os.Open(path); err == nil {
				err = t.blob.Put(id, f)
				f.Close()
			}
		} else {
			// Fold the chain into one object on the way up: remote readers
			// get a self-contained v2 file, never our segment layout.
			var buf bytes.Buffer
			if err = spliceChain(&buf, id, path, segs); err == nil {
				err = t.blob.Put(id, &buf)
			}
		}
	}
	t.mu.Lock()
	delete(t.blobPutting, id)
	if err == nil {
		if cur := t.index[id]; cur != nil && cur.local &&
			cur.updates == tipUpdates && cur.logLen == tipLen {
			// Same logical tip (compaction preserves it) → the object we
			// wrote is current, even if the file layout changed meanwhile.
			cur.remote = true
		}
		// A Delete that raced this push left a tombstone: the object we just
		// wrote must go; the GC retry loop owns making that stick.
		_, tomb := t.tombstones[id]
		t.mu.Unlock()
		t.blobPuts.Add(1)
		if m := t.metrics; m != nil {
			observeSince(m.BlobPutSeconds, putStart)
		}
		if tomb {
			t.blobRemove(id)
		}
		return nil
	}
	t.mu.Unlock()
	t.blobErrors.Add(1)
	return fmt.Errorf("store: pushing %s to blob tier: %w", id, err)
}

// scheduleHealPush re-pushes id's published chain to the blob tier from a
// background goroutine — the heal path for callers that still hold
// Session.Mu (the evictor's hook runs under the victim's lock and a shard
// lock) and so must not upload inline. blobPush's single-flight gate dedupes
// concurrent heals; when the lifecycle is already shutting down the push is
// skipped and the GC sweep / boot syncBlob heal pass remain the backstop.
func (t *Tiered) scheduleHealPush(id string) {
	if t.blob == nil {
		return
	}
	t.qmu.Lock()
	if t.qClosed {
		t.qmu.Unlock()
		return
	}
	t.wg.Add(1)
	t.qmu.Unlock()
	go func() {
		defer t.wg.Done()
		_ = t.blobPush(id)
	}()
}

// blobRemove deletes a session's blob object. The caller has normally
// tombstoned the id already (dropEntryFiles), so a failed or skipped delete
// stays pending durably: the read-through path refuses to adopt the key and
// the GC sweep retries the delete until it sticks — an acknowledged DELETE
// never resurrects from the shared tier, even after a crash. While a push
// for the same key is in flight the delete is deferred to the pusher's
// post-put tombstone check (and the GC).
func (t *Tiered) blobRemove(id string) {
	if t.blob == nil {
		return
	}
	t.mu.Lock()
	putting := t.blobPutting[id]
	t.mu.Unlock()
	if putting {
		return
	}
	err := t.faultAt("blob.delete")
	if err == nil {
		err = t.blob.Delete(id)
	}
	if err != nil && err != ErrBlobNotFound {
		t.blobErrors.Add(1)
		return // tombstone stays pending; the GC sweep retries
	}
	t.blobDeletes.Add(1)
	t.tombstoneResolve(id, tombBlob)
}

// adopt is the read-through miss path: the session has no local state at all
// (typically created by another replica, or handed off), so fetch its spill
// envelope from the blob tier, rebuild it, and account for it as if it had
// been spilled here. Returns (nil, nil) on a plain blob miss. Callers own the
// singleflight for id.
func (t *Tiered) adopt(id string) (*Session, error) {
	if err := t.faultAt("blob.get"); err != nil {
		return nil, err
	}
	getStart := time.Now()
	rc, size, err := t.blob.Get(id)
	if err == ErrBlobNotFound {
		return nil, nil
	}
	if err != nil {
		t.blobErrors.Add(1)
		return nil, err
	}
	defer rc.Close()
	t.blobGets.Add(1)
	if m := t.metrics; m != nil {
		observeSince(m.BlobGetSeconds, getStart)
	}
	sess, env, err := t.buildSession(id, rc, nil)
	if err != nil {
		return nil, err
	}
	if size < 0 {
		size = sess.footprint // streaming source of unknown length: approximate
	}
	// Publish the (remote-only) index entry and seed the tenant's cross-tier
	// ownership: this node has never accounted for the session. A Delete or a
	// concurrent publisher that got here first wins.
	t.mu.Lock()
	if t.tombstones[id] != nil {
		t.mu.Unlock()
		return nil, nil // an acknowledged delete owns this key
	}
	if _, dup := t.index[id]; dup {
		t.mu.Unlock()
		return nil, fmt.Errorf("store: adoption of %s raced a local publish", id)
	}
	t.index[id] = &spillEntry{
		remote: true, bytes: size, kind: sess.Kind, createdAt: sess.CreatedAt,
		charged: sess.footprint, spillCharged: size,
		updates: env.updates, logLen: env.logLen(), lastUsed: time.Now().UnixNano(),
	}
	t.mu.Unlock()
	ten := TenantOf(id)
	t.mem.adjustOwned(ten, 1, sess.footprint)
	t.mem.adjustSpill(ten, size)
	t.armWriteBehind(sess)
	t.restores.Add(1)
	t.mem.putRestored(sess)
	// Honor a Delete that raced the adoption (same discipline as restore).
	t.mu.Lock()
	_, still := t.index[id]
	t.mu.Unlock()
	if !still {
		t.mem.drop(id)
		return nil, nil
	}
	return sess, nil
}

// blobEnvelope reads just the spill-envelope header of a blob object.
func (t *Tiered) blobEnvelope(id string) (spillEnvelope, error) {
	var env spillEnvelope
	if err := t.faultAt("blob.get"); err != nil {
		return env, err
	}
	rc, _, err := t.blob.Get(id)
	if err != nil {
		return env, err
	}
	defer rc.Close()
	_, env, err = readSpillEnvelope(rc)
	return env, err
}

// syncBlob reconciles the freshly re-indexed local cache against the shared
// blob tier at boot, before the lifecycle manager starts (single-threaded;
// index access needs no locks — the tombstone helpers take their own).
// Newest wins, decided by the envelope's monotonic per-session update
// counter — the same dedupe rule the local reindex applies between
// duplicate files:
//
//   - objects of tombstoned sessions are DELETED, never adopted: the
//     tombstone records an acknowledged delete whose blob removal had not
//     stuck when this node went down;
//   - blob-only sessions become remote-only index entries (adopted lazily on
//     first touch);
//   - a blob version newer than the local chain means another replica
//     advanced the session while this node was down: the local chain is a
//     stale cache and is dropped;
//   - a local chain newer than (or absent from) the blob means this node
//     crashed before pushing: it is healed upward immediately.
//
// An unreachable blob tier fails the boot — a replica serving from a stale
// local cache would undo deletions other replicas honored.
func (t *Tiered) syncBlob() error {
	if t.blob == nil {
		return nil
	}
	infos, err := t.blob.List("")
	if err != nil {
		return fmt.Errorf("store: listing blob tier: %w", err)
	}
	for _, info := range infos {
		id := info.Key
		if t.tombstones[id] != nil {
			err := t.faultAt("blob.delete")
			if err == nil {
				err = t.blob.Delete(id)
			}
			if err == nil || err == ErrBlobNotFound {
				t.blobDeletes.Add(1)
				t.tombstoneResolve(id, tombBlob)
			} else {
				t.blobErrors.Add(1) // stays pending; the GC sweep retries
			}
			continue
		}
		env, err := t.blobEnvelope(id)
		if err != nil {
			continue // unreadable object: never certify it as anything
		}
		e := t.index[id]
		switch {
		case e == nil:
			t.index[id] = &spillEntry{
				remote: true, bytes: info.Size, kind: env.kind, createdAt: env.createdAt,
				charged: info.Size, spillCharged: info.Size,
				updates: env.updates, logLen: env.logLen(), lastUsed: info.ModTime.UnixNano(),
			}
		case env.updates > e.updates:
			// Another replica advanced the session past our local chain.
			for _, pb := range e.localPaths() {
				_ = os.Remove(pb.path)
			}
			t.diskBytes -= e.localBytes()
			e.path, e.local, e.deltas = "", false, nil
			e.remote = true
			e.bytes, e.charged, e.spillCharged = info.Size, info.Size, info.Size
			e.kind, e.createdAt = env.kind, env.createdAt
			e.updates, e.logLen = env.updates, env.logLen()
		default:
			// Local chain is the same version or newer; it stays
			// authoritative. Same version: the blob copy is current, keep the
			// cache marked. Newer: the heal pass below pushes it up.
			if env.updates == e.updates {
				e.remote = true
			}
		}
	}
	// Heal pass: local chains the blob tier has never seen (or holds an older
	// version of) push up now, so a node that crashed between publishing a
	// spill and pushing it never strands the only copy on its own disk.
	for id, e := range t.index {
		if e.local && !e.remote {
			_ = t.blobPush(id)
		}
	}
	return nil
}

// blobMaintain is the GC sweep's blob pass: retry the blob side of pending
// tombstones until the deletes stick, and re-push local spill chains whose
// upload previously failed.
func (t *Tiered) blobMaintain() {
	if t.blob == nil {
		return
	}
	t.mu.Lock()
	var dels []string
	for id, ts := range t.tombstones {
		if !ts.blobClean && !t.blobPutting[id] {
			dels = append(dels, id)
		}
	}
	var heal []string
	for id, e := range t.index {
		if e.local && !e.remote && t.tombstones[id] == nil {
			heal = append(heal, id)
		}
	}
	t.mu.Unlock()
	for _, id := range dels {
		err := t.faultAt("blob.delete")
		if err == nil {
			err = t.blob.Delete(id)
		}
		if err != nil && err != ErrBlobNotFound {
			t.blobErrors.Add(1)
			continue
		}
		t.blobDeletes.Add(1)
		t.tombstoneResolve(id, tombBlob)
	}
	for _, id := range heal {
		_ = t.blobPush(id)
	}
}

// ReleaseUnowned is the fleet handoff: for every session the provided
// ownership predicate disclaims, make sure the blob tier holds its current
// state, then forget it locally — resident copy, local cache chain, index
// entry and tenant accounting all released. The new owner adopts the session
// lazily from the blob tier on its first touch (the read-through path).
// Sessions whose state cannot be certified in the blob tier (push failures,
// unspillable families) are kept — a handoff never trades a reachable
// session for a maybe. Returns how many sessions were released and the first
// error encountered.
func (t *Tiered) ReleaseUnowned(owns func(id string) bool) (int, error) {
	if t.blob == nil {
		return 0, fmt.Errorf("store: ReleaseUnowned needs a blob tier")
	}
	released := 0
	var firstErr error
	record := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	// Pass 1: resident sessions. Spill (certifying the blob copy), then drop
	// the resident copy under the same discipline the evictor uses.
	t.mem.Range(func(sess *Session) bool {
		if owns(sess.ID) {
			return true
		}
		for attempt := 0; attempt < 3; attempt++ {
			sess.Mu.Lock()
			if sess.gone.Load() {
				sess.Mu.Unlock()
				return true // an evictor or deleter won
			}
			// needPush is ignored: the isRemote check below makes the same
			// direct push — deliberately under the lock, because the handoff
			// must certify the blob copy before releasing the session.
			if _, _, err := t.spillLocked(sess); err != nil {
				sess.Mu.Unlock()
				record(fmt.Errorf("store: handoff of %s: %w", sess.ID, err))
				return true
			}
			if !t.isRemote(sess.ID) {
				// The spill's push failed or is racing; one direct attempt.
				if err := t.blobPush(sess.ID); err != nil || !t.isRemote(sess.ID) {
					sess.Mu.Unlock()
					record(fmt.Errorf("store: handoff of %s: blob tier does not hold it", sess.ID))
					return true
				}
			}
			if sess.Dirty() {
				sess.Mu.Unlock()
				continue // mutated between spill and certification; re-spill
			}
			sess.gone.Store(true)
			sess.Mu.Unlock()
			sh := &t.mem.shards[ShardIndex(sess.ID)]
			sh.mu.Lock()
			if _, still := sh.sessions[sess.ID]; !still {
				sh.mu.Unlock()
				return true
			}
			delete(sh.sessions, sess.ID)
			sh.mu.Unlock()
			t.mem.curBytes.Add(-sess.footprint)
			t.mem.uncharge(sess, removalDrop, false)
			t.forgetLocal(sess.ID)
			released++
			return true
		}
		record(fmt.Errorf("store: handoff of %s: session kept mutating", sess.ID))
		return true
	})
	// Pass 2: cold index entries (local cache chains and remote markers for
	// sessions this node no longer owns).
	t.mu.Lock()
	var cold []string
	for id := range t.index {
		if owns(id) || t.mem.has(id) {
			continue
		}
		if _, restoring := t.flights[id]; restoring {
			continue
		}
		cold = append(cold, id)
	}
	t.mu.Unlock()
	for _, id := range cold {
		if !t.isRemote(id) {
			if err := t.blobPush(id); err != nil || !t.isRemote(id) {
				record(fmt.Errorf("store: handoff of %s: blob tier does not hold it", id))
				continue
			}
		}
		if t.forgetLocal(id) {
			released++
		}
	}
	return released, firstErr
}

// forgetLocal removes a session's index entry, local cache chain and tenant
// accounting without touching its blob object — the handoff's "it lives in
// the shared tier now" bookkeeping. No tombstone is written: the session
// still exists, it just lives elsewhere. Reports whether an entry was
// removed.
func (t *Tiered) forgetLocal(id string) bool {
	t.mu.Lock()
	e, ok := t.index[id]
	if !ok {
		t.mu.Unlock()
		return false
	}
	if _, restoring := t.flights[id]; restoring {
		t.mu.Unlock()
		return false // a reader is mid-restore; next ring change retries
	}
	delete(t.index, id)
	if e.local {
		t.diskBytes -= e.localBytes()
	}
	t.mu.Unlock()
	for _, pb := range e.localPaths() {
		t.removeSpillFile(pb.path, pb.bytes, "release.unlink")
	}
	ten := TenantOf(id)
	t.mem.adjustSpill(ten, -e.spillCharged)
	t.mem.adjustOwned(ten, -1, -e.charged)
	return true
}
