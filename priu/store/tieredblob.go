package store

import (
	"fmt"
	"os"
	"time"
)

// Blob-tier wiring for Tiered: the local spill directory acts as a
// read-through/write-behind cache of a shared BlobStore. Every published
// spill file is pushed up (blobPush), cold misses with no local file fall
// through to the blob tier (adopt), the boot scan reconciles the local cache
// against the shared tier newest-wins (syncBlob), and explicit deletes
// tombstone the blob key until its removal sticks — so an acknowledged
// deletion can never resurrect through the read-through path. ReleaseUnowned
// is the fleet handoff: it drains sessions this node no longer owns to the
// blob tier and forgets them locally, for the new owner to adopt lazily.

// WithBlobStore slots a shared blob tier under the spill directory. Spill
// files are pushed to it after every local publish, sessions with no local
// copy restore from it, and the disk-budget evictor may demote blob-backed
// local files (a cache drop, not a session loss).
func WithBlobStore(bs BlobStore) TieredOption {
	return func(t *Tiered) { t.blob = bs }
}

// isRemote reports whether the blob tier holds the session's current spill
// state (per this node's index).
func (t *Tiered) isRemote(id string) bool {
	t.mu.Lock()
	e := t.index[id]
	remote := e != nil && e.remote
	t.mu.Unlock()
	return remote
}

// blobPush uploads a session's published local spill file to the blob tier.
// At most one push per session is in flight (concurrent callers skip —
// whoever owns the gate marks the entry remote on success), and the entry is
// only marked remote if its file is still the one that was read, so a push
// racing a newer spill can never certify stale blob contents as current.
// Failures are counted and left for the GC sweep's heal pass.
func (t *Tiered) blobPush(id string) error {
	if t.blob == nil {
		return nil
	}
	t.mu.Lock()
	e := t.index[id]
	if e == nil || !e.local || e.remote {
		t.mu.Unlock()
		return nil
	}
	if t.blobPutting[id] {
		t.mu.Unlock()
		return fmt.Errorf("store: blob push of %s already in flight", id)
	}
	t.blobPutting[id] = true
	path := e.path
	t.mu.Unlock()

	putStart := time.Now()
	err := t.faultAt("blob.put")
	if err == nil {
		var f *os.File
		if f, err = os.Open(path); err == nil {
			err = t.blob.Put(id, f)
			f.Close()
		}
	}
	t.mu.Lock()
	delete(t.blobPutting, id)
	if err == nil {
		if cur := t.index[id]; cur != nil && cur.path == path {
			cur.remote = true
		}
		// A Delete that raced this push left a tombstone: the object we just
		// wrote must go; the GC retry loop owns making that stick.
		_, tomb := t.pendingBlobDel[id]
		t.mu.Unlock()
		t.blobPuts.Add(1)
		if m := t.metrics; m != nil {
			observeSince(m.BlobPutSeconds, putStart)
		}
		if tomb {
			t.blobRemove(id)
		}
		return nil
	}
	t.mu.Unlock()
	t.blobErrors.Add(1)
	return fmt.Errorf("store: pushing %s to blob tier: %w", id, err)
}

// blobRemove deletes a session's blob object. While a push for the same key
// is in flight — or when the delete fails — the key is tombstoned in
// pendingBlobDel: the read-through path refuses to adopt it and the GC sweep
// retries the delete until it sticks, so an acknowledged DELETE never
// resurrects from the shared tier.
func (t *Tiered) blobRemove(id string) {
	if t.blob == nil {
		return
	}
	t.mu.Lock()
	if t.blobPutting[id] {
		t.pendingBlobDel[id] = true
		t.mu.Unlock()
		return
	}
	t.pendingBlobDel[id] = true
	t.mu.Unlock()
	err := t.faultAt("blob.delete")
	if err == nil {
		err = t.blob.Delete(id)
	}
	if err != nil {
		t.blobErrors.Add(1)
		return // tombstone stays; the GC sweep retries
	}
	t.blobDeletes.Add(1)
	t.mu.Lock()
	if !t.blobPutting[id] {
		delete(t.pendingBlobDel, id)
	}
	t.mu.Unlock()
}

// adopt is the read-through miss path: the session has no local state at all
// (typically created by another replica, or handed off), so fetch its spill
// envelope from the blob tier, rebuild it, and account for it as if it had
// been spilled here. Returns (nil, nil) on a plain blob miss. Callers own the
// singleflight for id.
func (t *Tiered) adopt(id string) (*Session, error) {
	if err := t.faultAt("blob.get"); err != nil {
		return nil, err
	}
	getStart := time.Now()
	rc, size, err := t.blob.Get(id)
	if err == ErrBlobNotFound {
		return nil, nil
	}
	if err != nil {
		t.blobErrors.Add(1)
		return nil, err
	}
	defer rc.Close()
	t.blobGets.Add(1)
	if m := t.metrics; m != nil {
		observeSince(m.BlobGetSeconds, getStart)
	}
	sess, env, err := t.buildSession(id, rc)
	if err != nil {
		return nil, err
	}
	if size < 0 {
		size = sess.footprint // streaming source of unknown length: approximate
	}
	// Publish the (remote-only) index entry and seed the tenant's cross-tier
	// ownership: this node has never accounted for the session. A Delete or a
	// concurrent publisher that got here first wins.
	t.mu.Lock()
	if t.pendingBlobDel[id] {
		t.mu.Unlock()
		return nil, nil // an acknowledged delete owns this key
	}
	if _, dup := t.index[id]; dup {
		t.mu.Unlock()
		return nil, fmt.Errorf("store: adoption of %s raced a local publish", id)
	}
	t.index[id] = &spillEntry{
		remote: true, bytes: size, kind: sess.Kind, createdAt: sess.CreatedAt,
		charged: sess.footprint, updates: env.updates, lastUsed: time.Now().UnixNano(),
	}
	t.mu.Unlock()
	ten := TenantOf(id)
	t.mem.adjustOwned(ten, 1, sess.footprint)
	t.mem.adjustSpill(ten, size)
	t.armWriteBehind(sess)
	t.restores.Add(1)
	t.mem.putRestored(sess)
	// Honor a Delete that raced the adoption (same discipline as restore).
	t.mu.Lock()
	_, still := t.index[id]
	t.mu.Unlock()
	if !still {
		t.mem.drop(id)
		return nil, nil
	}
	return sess, nil
}

// blobEnvelope reads just the spill-envelope header of a blob object.
func (t *Tiered) blobEnvelope(id string) (spillEnvelope, error) {
	var env spillEnvelope
	if err := t.faultAt("blob.get"); err != nil {
		return env, err
	}
	rc, _, err := t.blob.Get(id)
	if err != nil {
		return env, err
	}
	defer rc.Close()
	_, env, err = readSpillEnvelope(rc)
	return env, err
}

// syncBlob reconciles the freshly re-indexed local cache against the shared
// blob tier at boot, before the lifecycle manager starts (single-threaded; no
// locks needed). Newest wins, decided by the envelope's monotonic per-session
// update counter — the same dedupe rule the local reindex applies between
// duplicate files:
//
//   - blob-only sessions become remote-only index entries (adopted lazily on
//     first touch);
//   - a blob version newer than the local file means another replica advanced
//     the session while this node was down: the local file is a stale cache
//     and is dropped;
//   - a local file newer than (or absent from) the blob means this node
//     crashed before pushing: it is healed upward immediately.
//
// An unreachable blob tier fails the boot — a replica serving from a stale
// local cache would undo deletions other replicas honored.
func (t *Tiered) syncBlob() error {
	if t.blob == nil {
		return nil
	}
	infos, err := t.blob.List("")
	if err != nil {
		return fmt.Errorf("store: listing blob tier: %w", err)
	}
	for _, info := range infos {
		id := info.Key
		env, err := t.blobEnvelope(id)
		if err != nil {
			continue // unreadable object: never certify it as anything
		}
		e := t.index[id]
		switch {
		case e == nil:
			t.index[id] = &spillEntry{
				remote: true, bytes: info.Size, kind: env.kind, createdAt: env.createdAt,
				charged: info.Size, updates: env.updates, lastUsed: info.ModTime.UnixNano(),
			}
		case env.updates > e.updates:
			// Another replica advanced the session past our local file.
			_ = os.Remove(e.path)
			t.diskBytes -= e.bytes
			e.path, e.local = "", false
			e.remote = true
			e.bytes, e.charged = info.Size, info.Size
			e.kind, e.createdAt, e.updates = env.kind, env.createdAt, env.updates
		default:
			// Local file is the same version or newer; it stays authoritative.
			// Same version: the blob copy is current, keep the cache marked.
			// Newer: the heal pass below pushes it up.
			if env.updates == e.updates {
				e.remote = true
			}
		}
	}
	// Heal pass: local files the blob tier has never seen (or holds an older
	// version of) push up now, so a node that crashed between publishing a
	// spill and pushing it never strands the only copy on its own disk.
	for id, e := range t.index {
		if !e.local || e.remote {
			continue
		}
		f, err := os.Open(e.path)
		if err != nil {
			continue
		}
		err = t.blob.Put(id, f)
		f.Close()
		if err != nil {
			t.blobErrors.Add(1)
			continue // left for the GC heal pass
		}
		t.blobPuts.Add(1)
		e.remote = true
	}
	return nil
}

// blobMaintain is the GC sweep's blob pass: retry tombstoned deletes until
// they stick, and re-push local spill files whose upload previously failed.
func (t *Tiered) blobMaintain() {
	if t.blob == nil {
		return
	}
	t.mu.Lock()
	dels := make([]string, 0, len(t.pendingBlobDel))
	for id := range t.pendingBlobDel {
		if !t.blobPutting[id] {
			dels = append(dels, id)
		}
	}
	var heal []string
	for id, e := range t.index {
		if e.local && !e.remote && !t.pendingBlobDel[id] {
			heal = append(heal, id)
		}
	}
	t.mu.Unlock()
	for _, id := range dels {
		err := t.faultAt("blob.delete")
		if err == nil {
			err = t.blob.Delete(id)
		}
		if err != nil {
			t.blobErrors.Add(1)
			continue
		}
		t.blobDeletes.Add(1)
		t.mu.Lock()
		if !t.blobPutting[id] {
			delete(t.pendingBlobDel, id)
		}
		t.mu.Unlock()
	}
	for _, id := range heal {
		_ = t.blobPush(id)
	}
}

// ReleaseUnowned is the fleet handoff: for every session the provided
// ownership predicate disclaims, make sure the blob tier holds its current
// state, then forget it locally — resident copy, local cache file, index
// entry and tenant accounting all released. The new owner adopts the session
// lazily from the blob tier on its first touch (the read-through path).
// Sessions whose state cannot be certified in the blob tier (push failures,
// unspillable families) are kept — a handoff never trades a reachable
// session for a maybe. Returns how many sessions were released and the first
// error encountered.
func (t *Tiered) ReleaseUnowned(owns func(id string) bool) (int, error) {
	if t.blob == nil {
		return 0, fmt.Errorf("store: ReleaseUnowned needs a blob tier")
	}
	released := 0
	var firstErr error
	record := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	// Pass 1: resident sessions. Spill (certifying the blob copy), then drop
	// the resident copy under the same discipline the evictor uses.
	t.mem.Range(func(sess *Session) bool {
		if owns(sess.ID) {
			return true
		}
		for attempt := 0; attempt < 3; attempt++ {
			sess.Mu.Lock()
			if sess.gone {
				sess.Mu.Unlock()
				return true // an evictor or deleter won
			}
			if _, err := t.spillLocked(sess); err != nil {
				sess.Mu.Unlock()
				record(fmt.Errorf("store: handoff of %s: %w", sess.ID, err))
				return true
			}
			if !t.isRemote(sess.ID) {
				// The spill's push failed or is racing; one direct attempt.
				if err := t.blobPush(sess.ID); err != nil || !t.isRemote(sess.ID) {
					sess.Mu.Unlock()
					record(fmt.Errorf("store: handoff of %s: blob tier does not hold it", sess.ID))
					return true
				}
			}
			if sess.dirty.Load() {
				sess.Mu.Unlock()
				continue // mutated between spill and certification; re-spill
			}
			sess.gone = true
			sess.Mu.Unlock()
			sh := &t.mem.shards[ShardIndex(sess.ID)]
			sh.mu.Lock()
			if _, still := sh.sessions[sess.ID]; !still {
				sh.mu.Unlock()
				return true
			}
			delete(sh.sessions, sess.ID)
			sh.mu.Unlock()
			t.mem.curBytes.Add(-sess.footprint)
			t.mem.uncharge(sess, removalDrop, false)
			t.forgetLocal(sess.ID)
			released++
			return true
		}
		record(fmt.Errorf("store: handoff of %s: session kept mutating", sess.ID))
		return true
	})
	// Pass 2: cold index entries (local cache files and remote markers for
	// sessions this node no longer owns).
	t.mu.Lock()
	var cold []string
	for id, e := range t.index {
		if owns(id) || t.mem.has(id) {
			continue
		}
		if _, restoring := t.flights[id]; restoring {
			continue
		}
		_ = e
		cold = append(cold, id)
	}
	t.mu.Unlock()
	for _, id := range cold {
		if !t.isRemote(id) {
			if err := t.blobPush(id); err != nil || !t.isRemote(id) {
				record(fmt.Errorf("store: handoff of %s: blob tier does not hold it", id))
				continue
			}
		}
		if t.forgetLocal(id) {
			released++
		}
	}
	return released, firstErr
}

// forgetLocal removes a session's index entry, local cache file and tenant
// accounting without touching its blob object — the handoff's "it lives in
// the shared tier now" bookkeeping. Reports whether an entry was removed.
func (t *Tiered) forgetLocal(id string) bool {
	t.mu.Lock()
	e, ok := t.index[id]
	if !ok {
		t.mu.Unlock()
		return false
	}
	if _, restoring := t.flights[id]; restoring {
		t.mu.Unlock()
		return false // a reader is mid-restore; next ring change retries
	}
	delete(t.index, id)
	if e.local {
		t.diskBytes -= e.bytes
	}
	t.mu.Unlock()
	if e.local {
		t.removeSpillFile(e.path, e.bytes, "release.unlink")
	}
	ten := TenantOf(id)
	t.mem.adjustSpill(ten, -e.bytes)
	t.mem.adjustOwned(ten, -1, -e.charged)
	return true
}
