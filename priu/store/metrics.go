package store

import (
	"time"

	"repro/priu/obs"
)

// TierMetrics carries the observability histogram handles the tiered store
// records tier-operation latencies into. The store keeps its own counters
// (Stats()) as the source of truth for counts; histograms capture what
// counters cannot — the latency distribution of spills, fsyncs, restores and
// blob round-trips. All fields are optional; the server registers them and
// hands the struct in via WithMetrics.
type TierMetrics struct {
	SpillSeconds      *obs.Histogram // full spill publish: temp write + fsync + rename
	FsyncSeconds      *obs.Histogram // the fsync inside the spill temp write
	RestoreSeconds    *obs.Histogram // full restore: read + rebuild + publish
	CompactionSeconds *obs.Histogram // chain fold: splice + fsync + publish
	BlobPutSeconds    *obs.Histogram // blob upload round-trip
	BlobGetSeconds    *obs.Histogram // blob fetch round-trip (restore + adopt)
}

// NewTierMetrics registers the canonical tier-latency histogram families on
// reg and returns the handle set ready for WithMetrics. Spill/fsync/restore
// use the default sub-second buckets; blob round-trips get a wider ceiling
// because they cross the network.
func NewTierMetrics(reg *obs.Registry) *TierMetrics {
	blobBuckets := []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30}
	return &TierMetrics{
		SpillSeconds:      reg.Histogram("priu_store_spill_seconds", "Full spill publish duration: temp write, fsync and rename.", nil),
		FsyncSeconds:      reg.Histogram("priu_store_fsync_seconds", "Fsync duration inside the spill temp-file write.", nil),
		RestoreSeconds:    reg.Histogram("priu_store_restore_seconds", "Full restore duration: read, rebuild and publish.", nil),
		CompactionSeconds: reg.Histogram("priu_store_compaction_seconds", "Delta-chain compaction duration: splice, fsync and publish.", nil),
		BlobPutSeconds:    reg.Histogram("priu_blob_put_seconds", "Blob upload round-trip duration.", blobBuckets),
		BlobGetSeconds:    reg.Histogram("priu_blob_get_seconds", "Blob fetch round-trip duration (restore and adopt).", blobBuckets),
	}
}

// WithMetrics installs the latency histograms on a tiered store. Without it
// every recording site is a nil check and nothing more.
func WithMetrics(m *TierMetrics) TieredOption {
	return func(t *Tiered) { t.metrics = m }
}

// observeSince records elapsed seconds into h, tolerating a nil histogram
// (metrics not installed, or the field left unset).
func observeSince(h *obs.Histogram, start time.Time) {
	if h != nil {
		h.Observe(time.Since(start).Seconds())
	}
}
