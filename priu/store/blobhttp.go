package store

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// HTTPBlob is a BlobStore backed by a remote blob server (cmd/priublob, or
// anything speaking the same wire protocol):
//
//	PUT    /blob?key=K   store the request body under K (204)
//	GET    /blob?key=K   fetch K (200 with Content-Length, or 404)
//	DELETE /blob?key=K   remove K (204; missing keys are fine)
//	GET    /blobs?prefix=P  JSON listing {"blobs":[{key,size,mtime_unix_nano}]}
//	GET    /healthz      liveness probe
//
// Keys travel as query parameters (fully escaped), so namespaced session IDs
// containing "/" need no path gymnastics.
type HTTPBlob struct {
	base string
	hc   *http.Client
}

// NewHTTPBlob returns a BlobStore speaking to the blob server at base
// (e.g. "http://10.0.0.5:8090"). A nil client uses a default with a
// 30-second timeout on the control calls; Get streams are not bounded by it.
func NewHTTPBlob(base string, hc *http.Client) *HTTPBlob {
	if hc == nil {
		hc = &http.Client{Timeout: 0}
	}
	return &HTTPBlob{base: strings.TrimRight(base, "/"), hc: hc}
}

func (b *HTTPBlob) blobURL(key string) string {
	return b.base + "/blob?key=" + url.QueryEscape(key)
}

// httpBlobError decodes a non-2xx blob-server response into an error.
func httpBlobError(op, key string, resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	msg := strings.TrimSpace(string(body))
	if msg == "" {
		msg = resp.Status
	}
	return fmt.Errorf("store: blob %s %s: %s", op, key, msg)
}

// Put implements BlobStore.
func (b *HTTPBlob) Put(key string, r io.Reader) error {
	req, err := http.NewRequest(http.MethodPut, b.blobURL(key), r)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := b.hc.Do(req)
	if err != nil {
		return fmt.Errorf("store: blob put %s: %w", key, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return httpBlobError("put", key, resp)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// Get implements BlobStore. The returned body streams straight from the blob
// server; callers own closing it.
func (b *HTTPBlob) Get(key string) (io.ReadCloser, int64, error) {
	resp, err := b.hc.Get(b.blobURL(key))
	if err != nil {
		return nil, 0, fmt.Errorf("store: blob get %s: %w", key, err)
	}
	if resp.StatusCode == http.StatusNotFound {
		resp.Body.Close()
		return nil, 0, ErrBlobNotFound
	}
	if resp.StatusCode/100 != 2 {
		defer resp.Body.Close()
		return nil, 0, httpBlobError("get", key, resp)
	}
	return resp.Body, resp.ContentLength, nil
}

// Delete implements BlobStore.
func (b *HTTPBlob) Delete(key string) error {
	req, err := http.NewRequest(http.MethodDelete, b.blobURL(key), nil)
	if err != nil {
		return err
	}
	resp, err := b.hc.Do(req)
	if err != nil {
		return fmt.Errorf("store: blob delete %s: %w", key, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 && resp.StatusCode != http.StatusNotFound {
		return httpBlobError("delete", key, resp)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// blobListEntry is the wire form of one listed object.
type blobListEntry struct {
	Key           string `json:"key"`
	Size          int64  `json:"size"`
	MTimeUnixNano int64  `json:"mtime_unix_nano"`
}

// blobListResponse is the wire form of GET /blobs.
type blobListResponse struct {
	Blobs []blobListEntry `json:"blobs"`
}

// List implements BlobStore.
func (b *HTTPBlob) List(prefix string) ([]BlobInfo, error) {
	resp, err := b.hc.Get(b.base + "/blobs?prefix=" + url.QueryEscape(prefix))
	if err != nil {
		return nil, fmt.Errorf("store: blob list: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, httpBlobError("list", prefix, resp)
	}
	var lr blobListResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		return nil, fmt.Errorf("store: decoding blob listing: %w", err)
	}
	out := make([]BlobInfo, 0, len(lr.Blobs))
	for _, e := range lr.Blobs {
		out = append(out, BlobInfo{Key: e.Key, Size: e.Size, ModTime: time.Unix(0, e.MTimeUnixNano)})
	}
	return out, nil
}

// BlobHandler serves the HTTPBlob wire protocol over any BlobStore — the
// embeddable core of cmd/priublob (tests mount it on httptest servers).
func BlobHandler(bs BlobStore) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"status":"ok"}` + "\n"))
	})
	mux.HandleFunc("/blob", func(w http.ResponseWriter, r *http.Request) {
		key := r.URL.Query().Get("key")
		if key == "" {
			http.Error(w, "missing key", http.StatusBadRequest)
			return
		}
		switch r.Method {
		case http.MethodPut, http.MethodPost:
			if err := bs.Put(key, r.Body); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		case http.MethodGet, http.MethodHead:
			rc, size, err := bs.Get(key)
			if err != nil {
				if err == ErrBlobNotFound {
					http.Error(w, "not found", http.StatusNotFound)
				} else {
					http.Error(w, err.Error(), http.StatusInternalServerError)
				}
				return
			}
			defer rc.Close()
			w.Header().Set("Content-Type", "application/octet-stream")
			if size >= 0 {
				w.Header().Set("Content-Length", fmt.Sprint(size))
			}
			if r.Method == http.MethodHead {
				return
			}
			io.Copy(w, rc)
		case http.MethodDelete:
			if err := bs.Delete(key); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
	mux.HandleFunc("/blobs", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		infos, err := bs.List(r.URL.Query().Get("prefix"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		lr := blobListResponse{Blobs: make([]blobListEntry, 0, len(infos))}
		for _, info := range infos {
			lr.Blobs = append(lr.Blobs, blobListEntry{
				Key: info.Key, Size: info.Size, MTimeUnixNano: info.ModTime.UnixNano(),
			})
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(lr)
	})
	return mux
}
