package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/binio"
)

// Delta segments and chain compaction — the log-structured half of the disk
// tier. A delta segment is a tiny content-addressed file carrying only the
// deletion-log suffix one spill adds on top of a chain tip; compaction
// folds a base + delta chain back into a single v2 base by splicing bytes:
// the merged envelope (base log + every folded segment's entries, tip
// counters) followed by the base's embedded snapshot copied verbatim. No
// model is decoded at any point, so folding costs O(file bytes), not
// O(retraining state).

// deltaHeader is the decoded fixed-size prefix of one delta segment.
type deltaHeader struct {
	id          string
	fromLen     int64
	fromUpdates int64
	updates     int64
	lastUpd     float64
	entries     int64 // number of deletion-log entries that follow
}

// deltaData is a fully decoded delta segment.
type deltaData struct {
	id          string
	fromLen     int64
	fromUpdates int64
	updates     int64
	lastUpd     float64
	entries     []int
}

// writeDeltaSegment serializes one delta segment for the given cut.
func writeDeltaSegment(w io.Writer, cut *spillCut, entries []int) error {
	bw := binio.NewWriter(w)
	bw.Bytes([]byte(deltaMagic))
	bw.U64(deltaVersion)
	bw.Str(cut.id)
	bw.I64(cut.fromLen)
	bw.I64(cut.fromUpdates)
	bw.I64(cut.updates)
	bw.F64(cut.lastUpd)
	bw.U64(uint64(len(entries)))
	for _, v := range entries {
		bw.I64(int64(v))
	}
	return bw.Flush()
}

// readDeltaHeader decodes a delta segment's header, leaving the reader
// positioned at the entries.
func readDeltaHeader(br *binio.Reader) (deltaHeader, error) {
	var h deltaHeader
	if err := br.Magic(deltaMagic); err != nil {
		return h, fmt.Errorf("store: %w", err)
	}
	if v := br.U64(); br.Err == nil && v != deltaVersion {
		return h, fmt.Errorf("store: unsupported delta-segment version %d", v)
	}
	h.id = br.Str(maxSpillName)
	h.fromLen = br.I64()
	h.fromUpdates = br.I64()
	h.updates = br.I64()
	h.lastUpd = br.F64()
	n := br.U64()
	if br.Err == nil && n > uint64(binio.MaxElems) {
		return h, fmt.Errorf("store: delta segment claims %d entries", n)
	}
	h.entries = int64(n)
	if br.Err != nil {
		return h, br.Err
	}
	if h.id == "" || h.fromLen < 0 || h.entries < 0 {
		return h, fmt.Errorf("store: corrupt delta-segment header")
	}
	return h, nil
}

// readDelta decodes a whole delta segment from r.
func readDelta(r io.Reader) (deltaData, error) {
	var d deltaData
	br := binio.NewReader(r)
	h, err := readDeltaHeader(br)
	if err != nil {
		return d, err
	}
	d.id, d.fromLen, d.fromUpdates = h.id, h.fromLen, h.fromUpdates
	d.updates, d.lastUpd = h.updates, h.lastUpd
	d.entries = make([]int, 0, min(int(h.entries), 4096))
	for i := int64(0); i < h.entries; i++ {
		v := br.I64()
		if br.Err != nil {
			return d, br.Err
		}
		d.entries = append(d.entries, int(v))
	}
	return d, nil
}

// readDeltaFile decodes a whole delta segment from disk.
func readDeltaFile(path string) (deltaData, error) {
	f, err := os.Open(path)
	if err != nil {
		return deltaData{}, err
	}
	defer f.Close()
	return readDelta(f)
}

// readDeltaHeaderFile reads a delta segment's header AND verifies the
// entries actually follow in full — a truncated (torn) segment fails here,
// so reindex never chains a file that a restore could not replay.
func readDeltaHeaderFile(path string) (deltaHeader, error) {
	var h deltaHeader
	f, err := os.Open(path)
	if err != nil {
		return h, err
	}
	defer f.Close()
	br := binio.NewReader(f)
	h, err = readDeltaHeader(br)
	if err != nil {
		return h, err
	}
	for i := int64(0); i < h.entries; i++ {
		br.I64()
	}
	if br.Err != nil {
		return h, br.Err
	}
	return h, nil
}

// spliceChain folds a base file plus an ordered delta chain into one v2
// spill file written to w — merged envelope (base log + every segment's
// entries, tip counters) followed by the base's embedded snapshot copied
// byte for byte. The model is never decoded. Chain continuity is verified
// against the actual file contents, not just the index.
func spliceChain(w io.Writer, id, basePath string, segs []deltaSeg) error {
	f, err := os.Open(basePath)
	if err != nil {
		return err
	}
	defer f.Close()
	br, env, err := readSpillEnvelope(f)
	if err != nil {
		return err
	}
	if env.id != id {
		return fmt.Errorf("store: base %s holds session %s, want %s", basePath, env.id, id)
	}
	if env.version < 2 {
		return fmt.Errorf("store: cannot splice a version-%d base", env.version)
	}
	merged := append([]int(nil), env.deleted...)
	tipUpdates, tipLastUpd := env.updates, env.lastUpdateSeconds
	for _, sg := range segs {
		d, err := readDeltaFile(sg.path)
		if err != nil {
			return err
		}
		if d.id != id || d.fromLen != int64(len(merged)) || d.fromUpdates != tipUpdates {
			return fmt.Errorf("store: delta segment %s does not extend %s's chain", sg.path, id)
		}
		merged = append(merged, d.entries...)
		tipUpdates, tipLastUpd = d.updates, d.lastUpd
	}
	if err := writeSpillEnvelope(w, id, env.kind, env.createdAt, tipUpdates, tipLastUpd, merged); err != nil {
		return err
	}
	// The splice: the base's embedded snapshot, byte for byte. br.R is
	// positioned right past the envelope.
	_, err = io.Copy(w, br.R)
	return err
}

// scheduleCompact starts a background fold of id's chain unless one is
// already running or the lifecycle is shutting down. The compacting gate
// doubles as a pin: the disk-budget evictor skips gated ids.
func (t *Tiered) scheduleCompact(id string) {
	t.mu.Lock()
	if t.compacting[id] {
		t.mu.Unlock()
		return
	}
	t.compacting[id] = true
	t.mu.Unlock()
	t.qmu.Lock()
	if t.qClosed {
		t.qmu.Unlock()
		t.mu.Lock()
		delete(t.compacting, id)
		t.mu.Unlock()
		return
	}
	t.wg.Add(1)
	t.qmu.Unlock()
	go func() {
		defer t.wg.Done()
		t.compactOnce(id)
		t.mu.Lock()
		delete(t.compacting, id)
		t.mu.Unlock()
	}()
}

// compactOnce folds the session's current delta chain into a new v2 base.
// The whole read-and-splice runs without t.mu (and without any Session.Mu —
// compaction never touches resident state); publication re-verifies under
// t.mu that the folded prefix is exactly the chain that was read (segments
// appended meanwhile survive on top of the new base) and that no restore
// flight is mid-read, then renames and unlinks the folded files. A crash
// before the rename leaves a temp file (swept by GC) with the old chain
// authoritative; a crash after it leaves both the new base and the old
// chain, and the boot reindex deterministically picks the new base — same
// update counter, longer envelope log — and removes the rest.
func (t *Tiered) compactOnce(id string) {
	start := time.Now()
	t.mu.Lock()
	e := t.index[id]
	if e == nil || !e.local || len(e.deltas) == 0 || e.logLen < 0 {
		t.mu.Unlock()
		return
	}
	basePath, baseBytes := e.path, e.bytes
	segs := append([]deltaSeg(nil), e.deltas...)
	var foldedBytes int64
	for _, sg := range segs {
		foldedBytes += sg.bytes
	}
	t.mu.Unlock()

	if t.faultAt("compact.create-temp") != nil {
		return
	}
	tmp, err := os.CreateTemp(t.dir, spillTmp+"*")
	if err != nil {
		return
	}
	tmpName := tmp.Name()
	h := sha256.New()
	if err := spliceChain(io.MultiWriter(tmp, h), id, basePath, segs); err != nil {
		tmp.Close()
		_ = os.Remove(tmpName)
		return
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		_ = os.Remove(tmpName)
		return
	}
	if t.faultAt("compact.after-temp") != nil {
		// Simulated crash after the temp write: the old chain stays
		// authoritative; the temp is GC-swept.
		tmp.Close()
		return
	}
	size, err := tmp.Seek(0, io.SeekCurrent)
	if err != nil || tmp.Close() != nil {
		_ = os.Remove(tmpName)
		return
	}
	final := filepath.Join(t.dir, hex.EncodeToString(h.Sum(nil))[:32]+spillExt)

	t.mu.Lock()
	cur := t.index[id]
	stale := cur == nil || !cur.local || cur.path != basePath || len(cur.deltas) < len(segs)
	if !stale {
		for i := range segs {
			if cur.deltas[i].path != segs[i].path {
				stale = true
				break
			}
		}
	}
	if _, restoring := t.flights[id]; restoring {
		// A restore snapshotted the old chain and may be mid-read; folding
		// now would unlink files under it. Back off — the next delta spill
		// re-triggers compaction.
		stale = true
	}
	if stale {
		t.mu.Unlock()
		_ = os.Remove(tmpName)
		return
	}
	diskDelta := size - (baseBytes + foldedBytes)
	if ok, _ := t.reserveDiskLocked(diskDelta, id); !ok {
		t.mu.Unlock()
		_ = os.Remove(tmpName)
		return
	}
	if err := t.mem.reserveSpill(TenantOf(id), diskDelta); err != nil {
		t.diskBytes -= diskDelta
		t.mu.Unlock()
		_ = os.Remove(tmpName)
		return
	}
	if t.faultAt("compact.publish") != nil {
		// Simulated crash at the publish point, before the rename lands.
		t.diskBytes -= diskDelta
		t.mem.adjustSpill(TenantOf(id), -diskDelta)
		t.mu.Unlock()
		return
	}
	if err := os.Rename(tmpName, final); err != nil {
		t.diskBytes -= diskDelta
		t.mem.adjustSpill(TenantOf(id), -diskDelta)
		t.mu.Unlock()
		_ = os.Remove(tmpName)
		return
	}
	oldFiles := make([]pathBytes, 0, 1+len(segs))
	if basePath != final {
		// Identical content (possible when the chain carried only counter
		// echoes) means the rename already overwrote the base in place.
		oldFiles = append(oldFiles, pathBytes{basePath, baseBytes})
	}
	for _, sg := range segs {
		oldFiles = append(oldFiles, pathBytes{sg.path, sg.bytes})
	}
	cur.path = final
	cur.bytes = size
	cur.deltas = append([]deltaSeg(nil), cur.deltas[len(segs):]...)
	cur.spillCharged += diskDelta
	cur.lastUsed = time.Now().UnixNano()
	t.mu.Unlock()
	for _, pb := range oldFiles {
		t.removeSpillFile(pb.path, pb.bytes, "compact.unlink-old")
	}
	t.compactions.Add(1)
	if m := t.metrics; m != nil {
		observeSince(m.CompactionSeconds, start)
	}
}
