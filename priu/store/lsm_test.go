package store

import (
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

// LSM spill-tier suite: delta segments, chain compaction, the off-lock
// cut/serialize/publish split, the stale-cut generation guard, persistent
// tombstones across reboot, and the pinned-disk-budget refusal path.

// TestTieredDeltaChainCompactsAndSurvivesReboot is the end-to-end LSM
// lifecycle: a base spill, O(batch) delta spills on top, background
// compaction folding the chain into a new base once it crosses the
// threshold, and a kill/restart that restores the bitwise-identical model
// and deletion log from the folded file.
func TestTieredDeltaChainCompactsAndSurvivesReboot(t *testing.T) {
	dir := t.TempDir()
	ti := newTestTiered(t, dir, NewMemory(), WithCompaction(2))
	a := trainSession(t, "sess-1", 1)
	if err := ti.Put(a); err != nil {
		t.Fatal(err)
	}
	ti.Flush() // base
	applyDeletion(t, a, []int{3})
	ti.Flush() // delta 1
	wantVec := applyDeletion(t, a, []int{11})
	ti.Flush() // delta 2 -> chain hits the compaction threshold

	deadline := time.Now().Add(5 * time.Second)
	for ti.compactions.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("compaction never ran on a chain at the threshold")
		}
		time.Sleep(time.Millisecond)
	}
	st := ti.Stats()
	if st.DeltaSpills != 2 {
		t.Fatalf("DeltaSpills = %d, want 2 (mutation spills must be deltas)", st.DeltaSpills)
	}
	if st.Compactions == 0 || st.DeltaSegments != 0 {
		t.Fatalf("compaction left %d segments (Compactions=%d), want a folded chain", st.DeltaSegments, st.Compactions)
	}
	if deltas, _ := filepath.Glob(filepath.Join(dir, "*"+deltaExt)); len(deltas) != 0 {
		t.Fatalf("%d delta files on disk after compaction, want 0", len(deltas))
	}
	hardKill(ti)

	ti2 := newTestTiered(t, dir, NewMemory())
	got, ok := ti2.Get("sess-1")
	if !ok {
		t.Fatal("session lost across the compaction reboot")
	}
	vec, nDel, _ := sessionState(t, got)
	if nDel != 2 {
		t.Fatalf("restored %d deletions, want 2", nDel)
	}
	for i := range vec {
		if vec[i] != wantVec[i] {
			t.Fatalf("restored model differs at %d: folded chain is not bitwise-identical", i)
		}
	}
}

// TestSpillPublishRunsOffSessionLock asserts the tentpole locking contract:
// the write-behind path serializes the snapshot and performs the temp write
// + fsync WITHOUT holding Session.Mu — a mutation-heavy session never
// blocks its readers on spill IO. The fault hook fires inside serialization
// and right after the fsync; with no other goroutine touching the session,
// a failed TryLock there can only mean the spill path itself holds the
// lock.
func TestSpillPublishRunsOffSessionLock(t *testing.T) {
	ti := newTestTiered(t, t.TempDir(), NewMemory())
	a := trainSession(t, "sess-1", 1)
	var lockHeld atomic.Int64
	ti.fault = func(p string) error {
		if p == "spill.serialize" || p == "spill.after-temp" {
			if a.Mu.TryLock() {
				a.Mu.Unlock()
			} else {
				lockHeld.Add(1)
			}
		}
		return nil
	}
	if err := ti.Put(a); err != nil {
		t.Fatal(err)
	}
	ti.Flush() // base spill: the O(session) snapshot serialization
	applyDeletion(t, a, []int{2, 9})
	ti.Flush() // delta spill
	if ti.writeBehind.Load() < 2 {
		t.Fatalf("write-behind published %d spills, want 2", ti.writeBehind.Load())
	}
	if n := lockHeld.Load(); n != 0 {
		t.Fatalf("%d serialize/fsync points ran under Session.Mu, want 0", n)
	}
}

// TestSyncSpillFallbackUsesCurrentGeneration pins the write-behind drop
// accounting bug: when a synchronous spill overtakes a parked background
// publish, the sync path must cut from the session's CURRENT generation —
// and the overtaken background cut, now stale, must be discarded by the
// chain guard rather than masking the newer file.
func TestSyncSpillFallbackUsesCurrentGeneration(t *testing.T) {
	dir := t.TempDir()
	ti := newTestTiered(t, dir, NewMemory())
	a := trainSession(t, "sess-1", 1)
	if err := ti.Put(a); err != nil {
		t.Fatal(err)
	}
	ti.Flush() // base published, session clean

	// Park the background worker inside its next publish, after it cut the
	// first mutation but before anything reaches disk.
	var parked atomic.Bool
	entered := make(chan struct{})
	release := make(chan struct{})
	ti.fault = func(p string) error {
		if p == "spill.serialize" && parked.CompareAndSwap(false, true) {
			close(entered)
			<-release
		}
		return nil
	}
	applyDeletion(t, a, []int{1})
	ti.flushQuiet(time.Now().Add(time.Hour)) // promote past the debounce
	<-entered

	// Second mutation lands while the worker is parked; the sync fallback
	// (the eviction path) spills now and must capture BOTH mutations.
	wantVec := applyDeletion(t, a, []int{2})
	wantGen := a.gen.Load()
	a.Mu.Lock()
	wrote, err := ti.spillLocked(a)
	a.Mu.Unlock()
	if err != nil || !wrote {
		t.Fatalf("sync spill = (%v, %v), want a real write", wrote, err)
	}
	if got := a.persistedGen.Load(); got != wantGen {
		t.Fatalf("sync spill persisted generation %d, session is at %d — spilled a stale cut", got, wantGen)
	}

	// Unpark the worker: its cut extends a chain tip that no longer exists,
	// so the publish guard must discard it.
	close(release)
	ti.Flush()
	if ti.staleSpills.Load() == 0 {
		t.Fatal("overtaken background cut was installed instead of discarded")
	}
	if a.Dirty() {
		t.Fatal("stale discard moved the generation counter backwards")
	}

	hardKill(ti)
	ti2 := newTestTiered(t, dir, NewMemory())
	got, ok := ti2.Get("sess-1")
	if !ok {
		t.Fatal("session lost")
	}
	vec, nDel, _ := sessionState(t, got)
	if nDel != 2 {
		t.Fatalf("restored %d deletions, want both mutations", nDel)
	}
	for i := range vec {
		if vec[i] != wantVec[i] {
			t.Fatalf("restored model differs at %d from the newest generation", i)
		}
	}
}

// TestChaosTornDeltaSegmentDropped kills the store, tears the tail off a
// published delta segment (a crash mid-append at the filesystem level), and
// reboots: the torn segment must be detected and removed, with the intact
// chain prefix still serving.
func TestChaosTornDeltaSegmentDropped(t *testing.T) {
	dir := t.TempDir()
	ti := newTestTiered(t, dir, NewMemory())
	a := trainSession(t, "sess-1", 1)
	baseVec, _, _ := sessionState(t, a)
	if err := ti.Put(a); err != nil {
		t.Fatal(err)
	}
	ti.Flush()
	applyDeletion(t, a, []int{5, 9})
	ti.Flush()
	hardKill(ti)

	deltas, _ := filepath.Glob(filepath.Join(dir, "*"+deltaExt))
	if len(deltas) != 1 {
		t.Fatalf("%d delta files on disk, want 1", len(deltas))
	}
	info, err := os.Stat(deltas[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(deltas[0], info.Size()-4); err != nil {
		t.Fatal(err)
	}

	ti2 := newTestTiered(t, dir, NewMemory())
	got, ok := ti2.Get("sess-1")
	if !ok {
		t.Fatal("session lost: a torn delta must not poison its base")
	}
	vec, nDel, _ := sessionState(t, got)
	if nDel != 0 {
		t.Fatalf("restored %d deletions from a torn segment, want the base state", nDel)
	}
	for i := range vec {
		if vec[i] != baseVec[i] {
			t.Fatalf("restored model differs at %d from the base generation", i)
		}
	}
	if deltas, _ := filepath.Glob(filepath.Join(dir, "*"+deltaExt)); len(deltas) != 0 {
		t.Fatalf("reboot kept %d torn delta files, want 0", len(deltas))
	}
}

// TestChaosCrashMidCompactionOldChainAuthoritative crashes compaction after
// the folded temp file is written but before the rename: the old base +
// delta chain must stay authoritative across the reboot, the temp swept.
func TestChaosCrashMidCompactionOldChainAuthoritative(t *testing.T) {
	dir := t.TempDir()
	ti := newTestTiered(t, dir, NewMemory())
	a := trainSession(t, "sess-1", 1)
	if err := ti.Put(a); err != nil {
		t.Fatal(err)
	}
	ti.Flush()
	wantVec := applyDeletion(t, a, []int{7})
	ti.Flush()

	var armed atomic.Bool
	ti.fault = faultOn("compact.after-temp", &armed)
	armed.Store(true)
	ti.compactOnce("sess-1")
	armed.Store(false)
	if tmps, _ := filepath.Glob(filepath.Join(dir, spillTmp+"*")); len(tmps) != 1 {
		t.Fatalf("%d temp files after the mid-compaction crash, want the torn fold left behind", len(tmps))
	}
	hardKill(ti)

	ti2 := newTestTiered(t, dir, NewMemory())
	got, ok := ti2.Get("sess-1")
	if !ok {
		t.Fatal("session lost after mid-compaction crash")
	}
	vec, nDel, _ := sessionState(t, got)
	if nDel != 1 {
		t.Fatalf("restored %d deletions, want 1 — the old chain is authoritative", nDel)
	}
	for i := range vec {
		if vec[i] != wantVec[i] {
			t.Fatalf("restored model differs at %d", i)
		}
	}
	if tmps, _ := filepath.Glob(filepath.Join(dir, spillTmp+"*")); len(tmps) != 0 {
		t.Fatalf("reboot left torn compaction temps: %v", tmps)
	}
}

// TestChaosTombstoneSurvivesRebootBeforeBlobDeleteSticks is the regression
// for the resurrection hole this PR closes: kill the node BETWEEN the
// DELETE ack and the blob delete sticking, reboot on the same directory and
// blob tier, and the acknowledged 404 must stay a 404 — the persistent
// tombstone replays at boot, refuses re-adoption, and drives the blob
// delete until it lands.
func TestChaosTombstoneSurvivesRebootBeforeBlobDeleteSticks(t *testing.T) {
	bs := sharedBlob(t)
	dir := t.TempDir()
	ti := newTestTiered(t, dir, NewMemory(), WithBlobStore(bs))
	if err := ti.Put(trainSession(t, "acme/sess-1", 5)); err != nil {
		t.Fatal(err)
	}
	ti.Flush()
	if !ti.isRemote("acme/sess-1") {
		t.Fatal("setup: session never reached the blob tier")
	}

	var armed atomic.Bool
	ti.fault = faultOn("blob.delete", &armed)
	armed.Store(true)
	if !ti.Delete("acme/sess-1") {
		t.Fatal("delete reported the session missing")
	}
	if _, _, err := bs.Get("acme/sess-1"); err != nil {
		t.Fatalf("test premise broken: the blob delete should have failed (%v)", err)
	}
	// Kill RIGHT HERE — no retry sweep ran, the object is still in the
	// shared tier, and the only thing standing between it and resurrection
	// is the fsynced tombstone record.
	hardKill(ti)

	reboot := newTestTiered(t, dir, NewMemory(), WithBlobStore(bs))
	if _, ok := reboot.Get("acme/sess-1"); ok {
		t.Fatal("acknowledged deletion resurrected after reboot: tombstone did not persist")
	}
	// Boot reconciliation deletes (never adopts) tombstoned objects.
	if _, _, err := bs.Get("acme/sess-1"); err != ErrBlobNotFound {
		t.Fatalf("boot left the tombstoned object in the blob tier: %v", err)
	}
	if st := reboot.Stats(); st.PendingTombstones != 0 {
		t.Fatalf("%d tombstones still pending after both sides resolved, want 0", st.PendingTombstones)
	}
	// And the resolution is itself durable: a third boot starts clean.
	hardKill(reboot)
	again := newTestTiered(t, dir, NewMemory(), WithBlobStore(bs))
	if _, ok := again.Get("acme/sess-1"); ok {
		t.Fatal("deletion resurrected on the second reboot")
	}
}

// TestTieredPinnedDiskBudgetRefusesInsteadOfDropping is the admission
// regression: when the disk budget is fully occupied by pinned spill files
// (clean residents' only copies) and every resident is pinned or refuses to
// leave, registering a new session must fail with a typed *PressureError —
// never silently drop a dirty session that could not be preserved.
func TestTieredPinnedDiskBudgetRefusesInsteadOfDropping(t *testing.T) {
	fileSize := spillFileSize(t, "sess-1")
	ti := newTestTiered(t, t.TempDir(), NewMemory(WithMaxSessions(2)),
		WithSpillMaxBytes(fileSize+fileSize/2)) // room for exactly one base
	a := trainSession(t, "sess-1", 1)
	if err := ti.Put(a); err != nil {
		t.Fatal(err)
	}
	ti.Flush() // a: spilled, clean — its file is pinned by the clean resident
	b := trainSession(t, "sess-2", 2)
	if err := ti.Put(b); err != nil {
		t.Fatal(err)
	}
	applyDeletion(t, b, []int{4}) // b: dirty, nothing on disk
	ti.Flush()                    // b's write-behind spill cannot fit; b stays dirty

	// Pin a (a long-running read). Now the memory tier is full, a is
	// unevictable, and evicting b requires a sync spill the pinned disk
	// cannot admit.
	got, ok := ti.Get("sess-1")
	if !ok {
		t.Fatal("setup: sess-1 missing")
	}
	got.Pin()
	defer got.Unpin()

	err := ti.Put(trainSession(t, "sess-3", 3))
	var pe *PressureError
	if !errors.As(err, &pe) {
		t.Fatalf("Put under a fully pinned disk budget = %v, want *PressureError", err)
	}
	if pe.Pinned == 0 {
		t.Fatalf("PressureError = %+v, want a pinned count naming the blocage", pe)
	}
	// The refusal must not have cost b its state: still resident, still
	// dirty, nothing dropped.
	if _, ok := ti.Get("sess-2"); !ok {
		t.Fatal("pressure refusal silently dropped the dirty session")
	}
	if !b.Dirty() {
		t.Fatal("b should still be dirty — no spill could have landed")
	}
}
