package store

import (
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

// LSM spill-tier suite: delta segments, chain compaction, the off-lock
// cut/serialize/publish split, the stale-cut generation guard, persistent
// tombstones across reboot, and the pinned-disk-budget refusal path.

// TestTieredDeltaChainCompactsAndSurvivesReboot is the end-to-end LSM
// lifecycle: a base spill, O(batch) delta spills on top, background
// compaction folding the chain into a new base once it crosses the
// threshold, and a kill/restart that restores the bitwise-identical model
// and deletion log from the folded file.
func TestTieredDeltaChainCompactsAndSurvivesReboot(t *testing.T) {
	dir := t.TempDir()
	ti := newTestTiered(t, dir, NewMemory(), WithCompaction(2))
	a := trainSession(t, "sess-1", 1)
	if err := ti.Put(a); err != nil {
		t.Fatal(err)
	}
	ti.Flush() // base
	applyDeletion(t, a, []int{3})
	ti.Flush() // delta 1
	wantVec := applyDeletion(t, a, []int{11})
	ti.Flush() // delta 2 -> chain hits the compaction threshold

	deadline := time.Now().Add(5 * time.Second)
	for ti.compactions.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("compaction never ran on a chain at the threshold")
		}
		time.Sleep(time.Millisecond)
	}
	st := ti.Stats()
	if st.DeltaSpills != 2 {
		t.Fatalf("DeltaSpills = %d, want 2 (mutation spills must be deltas)", st.DeltaSpills)
	}
	if st.Compactions == 0 || st.DeltaSegments != 0 {
		t.Fatalf("compaction left %d segments (Compactions=%d), want a folded chain", st.DeltaSegments, st.Compactions)
	}
	if deltas, _ := filepath.Glob(filepath.Join(dir, "*"+deltaExt)); len(deltas) != 0 {
		t.Fatalf("%d delta files on disk after compaction, want 0", len(deltas))
	}
	hardKill(ti)

	ti2 := newTestTiered(t, dir, NewMemory())
	got, ok := ti2.Get("sess-1")
	if !ok {
		t.Fatal("session lost across the compaction reboot")
	}
	vec, nDel, _ := sessionState(t, got)
	if nDel != 2 {
		t.Fatalf("restored %d deletions, want 2", nDel)
	}
	for i := range vec {
		if vec[i] != wantVec[i] {
			t.Fatalf("restored model differs at %d: folded chain is not bitwise-identical", i)
		}
	}
}

// TestSpillPublishRunsOffSessionLock asserts the tentpole locking contract:
// the write-behind path serializes the snapshot and performs the temp write
// + fsync WITHOUT holding Session.Mu — a mutation-heavy session never
// blocks its readers on spill IO. The fault hook fires inside serialization
// and right after the fsync; with no other goroutine touching the session,
// a failed TryLock there can only mean the spill path itself holds the
// lock.
func TestSpillPublishRunsOffSessionLock(t *testing.T) {
	ti := newTestTiered(t, t.TempDir(), NewMemory())
	a := trainSession(t, "sess-1", 1)
	var lockHeld atomic.Int64
	ti.fault = func(p string) error {
		if p == "spill.serialize" || p == "spill.after-temp" {
			if a.Mu.TryLock() {
				a.Mu.Unlock()
			} else {
				lockHeld.Add(1)
			}
		}
		return nil
	}
	if err := ti.Put(a); err != nil {
		t.Fatal(err)
	}
	ti.Flush() // base spill: the O(session) snapshot serialization
	applyDeletion(t, a, []int{2, 9})
	ti.Flush() // delta spill
	if ti.writeBehind.Load() < 2 {
		t.Fatalf("write-behind published %d spills, want 2", ti.writeBehind.Load())
	}
	if n := lockHeld.Load(); n != 0 {
		t.Fatalf("%d serialize/fsync points ran under Session.Mu, want 0", n)
	}
}

// TestSyncSpillFallbackUsesCurrentGeneration pins the write-behind drop
// accounting bug: when a synchronous spill overtakes a parked background
// publish, the sync path must cut from the session's CURRENT generation —
// and the overtaken background cut, now stale, must be discarded by the
// chain guard rather than masking the newer file.
func TestSyncSpillFallbackUsesCurrentGeneration(t *testing.T) {
	dir := t.TempDir()
	ti := newTestTiered(t, dir, NewMemory())
	a := trainSession(t, "sess-1", 1)
	if err := ti.Put(a); err != nil {
		t.Fatal(err)
	}
	ti.Flush() // base published, session clean

	// Park the background worker inside its next publish, after it cut the
	// first mutation but before anything reaches disk.
	var parked atomic.Bool
	entered := make(chan struct{})
	release := make(chan struct{})
	ti.fault = func(p string) error {
		if p == "spill.serialize" && parked.CompareAndSwap(false, true) {
			close(entered)
			<-release
		}
		return nil
	}
	applyDeletion(t, a, []int{1})
	ti.flushQuiet(time.Now().Add(time.Hour)) // promote past the debounce
	<-entered

	// Second mutation lands while the worker is parked; the sync fallback
	// (the eviction path) spills now and must capture BOTH mutations.
	wantVec := applyDeletion(t, a, []int{2})
	wantGen := a.gen.Load()
	a.Mu.Lock()
	wrote, _, err := ti.spillLocked(a)
	a.Mu.Unlock()
	if err != nil || !wrote {
		t.Fatalf("sync spill = (%v, %v), want a real write", wrote, err)
	}
	if got := a.persistedGen.Load(); got != wantGen {
		t.Fatalf("sync spill persisted generation %d, session is at %d — spilled a stale cut", got, wantGen)
	}

	// Unpark the worker: its cut extends a chain tip that no longer exists,
	// so the publish guard must discard it.
	close(release)
	ti.Flush()
	if ti.staleSpills.Load() == 0 {
		t.Fatal("overtaken background cut was installed instead of discarded")
	}
	if a.Dirty() {
		t.Fatal("stale discard moved the generation counter backwards")
	}

	hardKill(ti)
	ti2 := newTestTiered(t, dir, NewMemory())
	got, ok := ti2.Get("sess-1")
	if !ok {
		t.Fatal("session lost")
	}
	vec, nDel, _ := sessionState(t, got)
	if nDel != 2 {
		t.Fatalf("restored %d deletions, want both mutations", nDel)
	}
	for i := range vec {
		if vec[i] != wantVec[i] {
			t.Fatalf("restored model differs at %d from the newest generation", i)
		}
	}
}

// TestChaosTornDeltaSegmentDropped kills the store, tears the tail off a
// published delta segment (a crash mid-append at the filesystem level), and
// reboots: the torn segment must be detected and removed, with the intact
// chain prefix still serving.
func TestChaosTornDeltaSegmentDropped(t *testing.T) {
	dir := t.TempDir()
	ti := newTestTiered(t, dir, NewMemory())
	a := trainSession(t, "sess-1", 1)
	baseVec, _, _ := sessionState(t, a)
	if err := ti.Put(a); err != nil {
		t.Fatal(err)
	}
	ti.Flush()
	applyDeletion(t, a, []int{5, 9})
	ti.Flush()
	hardKill(ti)

	deltas, _ := filepath.Glob(filepath.Join(dir, "*"+deltaExt))
	if len(deltas) != 1 {
		t.Fatalf("%d delta files on disk, want 1", len(deltas))
	}
	info, err := os.Stat(deltas[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(deltas[0], info.Size()-4); err != nil {
		t.Fatal(err)
	}

	ti2 := newTestTiered(t, dir, NewMemory())
	got, ok := ti2.Get("sess-1")
	if !ok {
		t.Fatal("session lost: a torn delta must not poison its base")
	}
	vec, nDel, _ := sessionState(t, got)
	if nDel != 0 {
		t.Fatalf("restored %d deletions from a torn segment, want the base state", nDel)
	}
	for i := range vec {
		if vec[i] != baseVec[i] {
			t.Fatalf("restored model differs at %d from the base generation", i)
		}
	}
	if deltas, _ := filepath.Glob(filepath.Join(dir, "*"+deltaExt)); len(deltas) != 0 {
		t.Fatalf("reboot kept %d torn delta files, want 0", len(deltas))
	}
}

// TestChaosCrashMidCompactionOldChainAuthoritative crashes compaction after
// the folded temp file is written but before the rename: the old base +
// delta chain must stay authoritative across the reboot, the temp swept.
func TestChaosCrashMidCompactionOldChainAuthoritative(t *testing.T) {
	dir := t.TempDir()
	ti := newTestTiered(t, dir, NewMemory())
	a := trainSession(t, "sess-1", 1)
	if err := ti.Put(a); err != nil {
		t.Fatal(err)
	}
	ti.Flush()
	wantVec := applyDeletion(t, a, []int{7})
	ti.Flush()

	var armed atomic.Bool
	ti.fault = faultOn("compact.after-temp", &armed)
	armed.Store(true)
	ti.compactOnce("sess-1")
	armed.Store(false)
	if tmps, _ := filepath.Glob(filepath.Join(dir, spillTmp+"*")); len(tmps) != 1 {
		t.Fatalf("%d temp files after the mid-compaction crash, want the torn fold left behind", len(tmps))
	}
	hardKill(ti)

	ti2 := newTestTiered(t, dir, NewMemory())
	got, ok := ti2.Get("sess-1")
	if !ok {
		t.Fatal("session lost after mid-compaction crash")
	}
	vec, nDel, _ := sessionState(t, got)
	if nDel != 1 {
		t.Fatalf("restored %d deletions, want 1 — the old chain is authoritative", nDel)
	}
	for i := range vec {
		if vec[i] != wantVec[i] {
			t.Fatalf("restored model differs at %d", i)
		}
	}
	if tmps, _ := filepath.Glob(filepath.Join(dir, spillTmp+"*")); len(tmps) != 0 {
		t.Fatalf("reboot left torn compaction temps: %v", tmps)
	}
}

// TestChaosTombstoneSurvivesRebootBeforeBlobDeleteSticks is the regression
// for the resurrection hole this PR closes: kill the node BETWEEN the
// DELETE ack and the blob delete sticking, reboot on the same directory and
// blob tier, and the acknowledged 404 must stay a 404 — the persistent
// tombstone replays at boot, refuses re-adoption, and drives the blob
// delete until it lands.
func TestChaosTombstoneSurvivesRebootBeforeBlobDeleteSticks(t *testing.T) {
	bs := sharedBlob(t)
	dir := t.TempDir()
	ti := newTestTiered(t, dir, NewMemory(), WithBlobStore(bs))
	if err := ti.Put(trainSession(t, "acme/sess-1", 5)); err != nil {
		t.Fatal(err)
	}
	ti.Flush()
	if !ti.isRemote("acme/sess-1") {
		t.Fatal("setup: session never reached the blob tier")
	}

	var armed atomic.Bool
	ti.fault = faultOn("blob.delete", &armed)
	armed.Store(true)
	if !ti.Delete("acme/sess-1") {
		t.Fatal("delete reported the session missing")
	}
	if _, _, err := bs.Get("acme/sess-1"); err != nil {
		t.Fatalf("test premise broken: the blob delete should have failed (%v)", err)
	}
	// Kill RIGHT HERE — no retry sweep ran, the object is still in the
	// shared tier, and the only thing standing between it and resurrection
	// is the fsynced tombstone record.
	hardKill(ti)

	reboot := newTestTiered(t, dir, NewMemory(), WithBlobStore(bs))
	if _, ok := reboot.Get("acme/sess-1"); ok {
		t.Fatal("acknowledged deletion resurrected after reboot: tombstone did not persist")
	}
	// Boot reconciliation deletes (never adopts) tombstoned objects.
	if _, _, err := bs.Get("acme/sess-1"); err != ErrBlobNotFound {
		t.Fatalf("boot left the tombstoned object in the blob tier: %v", err)
	}
	if st := reboot.Stats(); st.PendingTombstones != 0 {
		t.Fatalf("%d tombstones still pending after both sides resolved, want 0", st.PendingTombstones)
	}
	// And the resolution is itself durable: a third boot starts clean.
	hardKill(reboot)
	again := newTestTiered(t, dir, NewMemory(), WithBlobStore(bs))
	if _, ok := again.Get("acme/sess-1"); ok {
		t.Fatal("deletion resurrected on the second reboot")
	}
}

// TestChaosTornTombstoneLogTailTruncatedAtBoot pins the torn-tail repair:
// a crash mid-append leaves garbage at the end of tombstones.log, and boot
// must TRUNCATE it away — appendTombRecord reopens with O_APPEND, so
// records appended by the rebooted process would otherwise land after the
// garbage, unreadable at the following boot, silently losing pending
// tombstones for acknowledged DELETEs.
func TestChaosTornTombstoneLogTailTruncatedAtBoot(t *testing.T) {
	bs := sharedBlob(t)
	dir := t.TempDir()
	ti := newTestTiered(t, dir, NewMemory(), WithBlobStore(bs))
	if err := ti.Put(trainSession(t, "acme/s1", 1)); err != nil {
		t.Fatal(err)
	}
	if err := ti.Put(trainSession(t, "acme/s2", 2)); err != nil {
		t.Fatal(err)
	}
	ti.Flush()
	if !ti.isRemote("acme/s1") || !ti.isRemote("acme/s2") {
		t.Fatal("setup: sessions never reached the blob tier")
	}
	var armed atomic.Bool
	ti.fault = faultOn("blob.delete", &armed)
	armed.Store(true)
	if !ti.Delete("acme/s1") {
		t.Fatal("delete reported acme/s1 missing")
	}
	hardKill(ti) // s1's tombstone pending: its blob delete never stuck

	// Crash mid-append at the filesystem level: garbage after the last
	// whole record.
	logPath := filepath.Join(dir, tombstoneFile)
	f, err := os.OpenFile(logPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Reboot with the blob tier still refusing deletes, so s1 stays pending
	// and the log keeps accumulating. The DELETE this process acknowledges
	// must land where the NEXT boot can replay it — not after the garbage.
	var armed2 atomic.Bool
	armed2.Store(true)
	ti2 := newTestTiered(t, dir, NewMemory(), WithBlobStore(bs), func(ti *Tiered) {
		ti.fault = faultOn("blob.delete", &armed2)
	})
	if st := ti2.Stats(); st.PendingTombstones != 1 {
		t.Fatalf("%d tombstones pending after the torn-tail reboot, want s1's alone", st.PendingTombstones)
	}
	if !ti2.Delete("acme/s2") {
		t.Fatal("delete reported acme/s2 missing")
	}
	hardKill(ti2)

	// Third boot, blob deletes work again: BOTH pending tombstones must
	// replay — s2's object is deleted, never adopted.
	ti3 := newTestTiered(t, dir, NewMemory(), WithBlobStore(bs))
	if _, ok := ti3.Get("acme/s2"); ok {
		t.Fatal("acknowledged deletion resurrected: the torn tail swallowed s2's tombstone record")
	}
	if _, _, err := bs.Get("acme/s2"); err != ErrBlobNotFound {
		t.Fatalf("boot left the tombstoned object acme/s2 in the blob tier: %v", err)
	}
	if _, ok := ti3.Get("acme/s1"); ok {
		t.Fatal("acknowledged deletion of acme/s1 resurrected")
	}
}

// TestDeltaPublishDiscardedAfterDeleteAndReput pins the session-incarnation
// guard on the delta branch: a worker's delta cut taken just before a
// Delete + re-Put of the same id extends a chain tip that the NEW session's
// fresh base can reproduce exactly (logLen=0, updates=0), so the chain-tip
// guard alone would append the OLD incarnation's deletion entries to the
// new session's chain. The gone flag must discard the cut.
func TestDeltaPublishDiscardedAfterDeleteAndReput(t *testing.T) {
	dir := t.TempDir()
	ti := newTestTiered(t, dir, NewMemory())
	a := trainSession(t, "sess-1", 1)
	if err := ti.Put(a); err != nil {
		t.Fatal(err)
	}
	ti.Flush() // base A published: chain tip (logLen=0, updates=0)

	// Park the worker inside the publish of a's first deletion — it holds a
	// delta cut extending tip (0, 0).
	var parked atomic.Bool
	entered := make(chan struct{})
	release := make(chan struct{})
	ti.fault = func(p string) error {
		if p == "spill.serialize" && parked.CompareAndSwap(false, true) {
			close(entered)
			<-release
		}
		return nil
	}
	applyDeletion(t, a, []int{1})
	ti.flushQuiet(time.Now().Add(time.Hour)) // promote past the debounce
	<-entered

	// Delete the session and re-register the same id: the new session's
	// base lands on the exact same chain tip the parked delta extends.
	if !ti.Delete("sess-1") {
		t.Fatal("delete reported the session missing")
	}
	b := trainSession(t, "sess-1", 2)
	wantVec, _, _ := sessionState(t, b)
	if err := ti.Put(b); err != nil {
		t.Fatal(err)
	}
	b.Mu.Lock()
	wrote, _, err := ti.spillLocked(b)
	b.Mu.Unlock()
	if err != nil || !wrote {
		t.Fatalf("new incarnation's base spill = (%v, %v), want a real write", wrote, err)
	}

	// Unpark the old incarnation's delta publish: same tip, wrong session —
	// it must be discarded, not appended to b's chain.
	close(release)
	ti.Flush()
	if ti.staleSpills.Load() == 0 {
		t.Fatal("old incarnation's delta was installed on the new session's chain")
	}

	hardKill(ti)
	ti2 := newTestTiered(t, dir, NewMemory())
	got, ok := ti2.Get("sess-1")
	if !ok {
		t.Fatal("re-registered session lost")
	}
	vec, nDel, _ := sessionState(t, got)
	if nDel != 0 {
		t.Fatalf("restored %d deletions, want 0 — the old incarnation's delta leaked onto the new chain", nDel)
	}
	for i := range vec {
		if vec[i] != wantVec[i] {
			t.Fatalf("restored model differs at %d from the new incarnation", i)
		}
	}
}

// TestHealPushRunsOffSessionLock extends the off-lock contract to the heal
// path: when a clean session's chain is local-only because its blob upload
// previously failed, the write-behind worker re-pushes it — strictly after
// releasing Session.Mu. The blob.put fault point probes the lock exactly
// like TestSpillPublishRunsOffSessionLock does for serialization.
func TestHealPushRunsOffSessionLock(t *testing.T) {
	bs := sharedBlob(t)
	ti := newTestTiered(t, t.TempDir(), NewMemory(), WithBlobStore(bs))
	a := trainSession(t, "acme/s1", 1)
	var failPut atomic.Bool
	var lockHeld atomic.Int64
	ti.fault = func(p string) error {
		if p != "blob.put" {
			return nil
		}
		if failPut.Load() {
			return errFault
		}
		if a.Mu.TryLock() {
			a.Mu.Unlock()
		} else {
			lockHeld.Add(1)
		}
		return nil
	}
	failPut.Store(true)
	if err := ti.Put(a); err != nil {
		t.Fatal(err)
	}
	ti.Flush() // base lands locally; the push fails
	if ti.isRemote("acme/s1") {
		t.Fatal("setup: the first blob push should have failed")
	}
	failPut.Store(false)

	// Re-run the clean session through the worker: cutLocked signals the
	// heal, and the worker must push after dropping the lock.
	ti.enqueueSpill(a)
	ti.Flush()
	if !ti.isRemote("acme/s1") {
		t.Fatal("heal push never certified the blob copy")
	}
	if n := lockHeld.Load(); n != 0 {
		t.Fatalf("%d heal pushes ran under Session.Mu, want 0", n)
	}
}

// TestTieredEvictHealPushRunsInBackground covers the eviction flavor of the
// heal: the evictor's hook runs under the victim's Session.Mu AND a shard
// lock, so when its spill signals a needed blob push the upload must be
// handed to a background goroutine (scheduleHealPush) rather than run
// inline — and it must still land.
func TestTieredEvictHealPushRunsInBackground(t *testing.T) {
	bs := sharedBlob(t)
	ti := newTestTiered(t, t.TempDir(), NewMemory(WithMaxSessions(1)), WithBlobStore(bs))
	a := trainSession(t, "acme/s1", 1)
	var failPut atomic.Bool
	ti.fault = func(p string) error {
		if p == "blob.put" && failPut.Load() {
			return errFault
		}
		return nil
	}
	failPut.Store(true)
	if err := ti.Put(a); err != nil {
		t.Fatal(err)
	}
	ti.Flush() // base lands locally; the blob push fails — clean but uncertified
	if ti.isRemote("acme/s1") {
		t.Fatal("setup: the first blob push should have failed")
	}
	failPut.Store(false)

	// Registering a second session evicts a; the hook's spill finds a clean
	// + on-disk + not-remote and schedules the heal off-lock.
	if err := ti.Put(trainSession(t, "acme/s2", 2)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !ti.isRemote("acme/s1") {
		if time.Now().After(deadline) {
			t.Fatal("evict-path heal push never certified the blob copy")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTieredReputUnderPendingTombstoneRetiresItDurably pins tombstoneForget:
// a Put under an id whose tombstone is still pending (its blob delete never
// stuck) must retire the tombstone durably — the tombstone guarded the OLD
// state, and replaying it pending at the next boot would destroy the NEW
// session's files.
func TestTieredReputUnderPendingTombstoneRetiresItDurably(t *testing.T) {
	bs := sharedBlob(t)
	dir := t.TempDir()
	ti := newTestTiered(t, dir, NewMemory(), WithBlobStore(bs))
	if err := ti.Put(trainSession(t, "acme/s1", 1)); err != nil {
		t.Fatal(err)
	}
	ti.Flush()
	if !ti.isRemote("acme/s1") {
		t.Fatal("setup: session never reached the blob tier")
	}
	var armed atomic.Bool
	ti.fault = faultOn("blob.delete", &armed)
	armed.Store(true)
	if !ti.Delete("acme/s1") {
		t.Fatal("delete reported the session missing")
	}
	if st := ti.Stats(); st.PendingTombstones != 1 {
		t.Fatalf("%d tombstones pending after the faulted blob delete, want 1", st.PendingTombstones)
	}
	armed.Store(false)

	b := trainSession(t, "acme/s1", 2)
	if err := ti.Put(b); err != nil {
		t.Fatal(err)
	}
	if st := ti.Stats(); st.PendingTombstones != 0 {
		t.Fatalf("%d tombstones pending after the re-registration, want 0", st.PendingTombstones)
	}
	// The last tombstone retired, so the sidecar log is gone entirely.
	if _, err := os.Stat(filepath.Join(dir, tombstoneFile)); !os.IsNotExist(err) {
		t.Fatalf("tombstone log still present after the last tombstone retired (stat err=%v)", err)
	}
	wantVec, _, _ := sessionState(t, b)
	ti.Flush()
	hardKill(ti)

	ti2 := newTestTiered(t, dir, NewMemory(), WithBlobStore(bs))
	got, ok := ti2.Get("acme/s1")
	if !ok {
		t.Fatal("re-registered session lost after reboot: the retired tombstone replayed pending")
	}
	vec, _, _ := sessionState(t, got)
	for i := range vec {
		if vec[i] != wantVec[i] {
			t.Fatalf("restored model differs at %d — the old incarnation's state won", i)
		}
	}
}

// TestTieredPinnedDiskBudgetRefusesInsteadOfDropping is the admission
// regression: when the disk budget is fully occupied by pinned spill files
// (clean residents' only copies) and every resident is pinned or refuses to
// leave, registering a new session must fail with a typed *PressureError —
// never silently drop a dirty session that could not be preserved.
func TestTieredPinnedDiskBudgetRefusesInsteadOfDropping(t *testing.T) {
	fileSize := spillFileSize(t, "sess-1")
	ti := newTestTiered(t, t.TempDir(), NewMemory(WithMaxSessions(2)),
		WithSpillMaxBytes(fileSize+fileSize/2)) // room for exactly one base
	a := trainSession(t, "sess-1", 1)
	if err := ti.Put(a); err != nil {
		t.Fatal(err)
	}
	ti.Flush() // a: spilled, clean — its file is pinned by the clean resident
	b := trainSession(t, "sess-2", 2)
	if err := ti.Put(b); err != nil {
		t.Fatal(err)
	}
	applyDeletion(t, b, []int{4}) // b: dirty, nothing on disk
	ti.Flush()                    // b's write-behind spill cannot fit; b stays dirty

	// Pin a (a long-running read). Now the memory tier is full, a is
	// unevictable, and evicting b requires a sync spill the pinned disk
	// cannot admit.
	got, ok := ti.Get("sess-1")
	if !ok {
		t.Fatal("setup: sess-1 missing")
	}
	got.Pin()
	defer got.Unpin()

	err := ti.Put(trainSession(t, "sess-3", 3))
	var pe *PressureError
	if !errors.As(err, &pe) {
		t.Fatalf("Put under a fully pinned disk budget = %v, want *PressureError", err)
	}
	if pe.Pinned == 0 {
		t.Fatalf("PressureError = %+v, want a pinned count naming the blocage", pe)
	}
	// The refusal must not have cost b its state: still resident, still
	// dirty, nothing dropped.
	if _, ok := ti.Get("sess-2"); !ok {
		t.Fatal("pressure refusal silently dropped the dirty session")
	}
	if !b.Dirty() {
		t.Fatal("b should still be dirty — no spill could have landed")
	}
}
