package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/binio"
)

// Persistent deletion tombstones.
//
// When a session is forgotten (explicit Delete, or invalidation after a
// lossy eviction) the store must guarantee it can never resurrect — not
// from a leftover chain file the unlink missed, and not from the shared
// blob tier re-adopted by syncBlob after a reboot. The in-memory pending
// set alone cannot promise that: a crash between the DELETE ack and the
// blob delete sticking used to let the object come back on the next boot.
//
// So every forget appends a record to a durable sidecar log
// ("tombstones.log" in the spill directory, fsynced) BEFORE any unlink or
// blob delete runs, and appends a matching resolved record once both the
// local chain and the blob object are verifiably gone. Boot replays the
// log in order: ids whose last record is unresolved re-enter the pending
// set — reindex deletes their stray files instead of indexing them, read
// paths refuse the id, syncBlob deletes (never adopts) their objects, and
// the GC sweep keeps retrying until both sides stick. The log tolerates a
// torn tail (a crash mid-append truncates to the last whole record) and is
// compacted by the GC once resolved records dominate.
const (
	tombstoneFile = "tombstones.log"
	tombMagic     = "PRTS"
	tombVersion   = 1

	// Record flags.
	tombFlagResolved = 1 << 0
)

// tombSide names which half of a tombstone a caller is resolving.
type tombSide int

const (
	tombLocal tombSide = iota // every local chain file unlinked
	tombBlob                  // blob object deleted (or no blob tier)
)

// tombstone is one pending deletion: the id stays poisoned until both
// sides are clean. Guarded by Tiered.mu.
type tombstone struct {
	localClean bool
	blobClean  bool
}

// tombstoneAdd records id as deleted, durably, before the caller starts
// removing state. It returns only after the record is appended and fsynced
// (or the append failed — the in-memory tombstone still poisons the id for
// this process's lifetime; a crash after a failed append re-exposes only
// the pre-existing unlink/blob-delete race this log exists to close, never
// a new one). Idempotent: a second add for a pending id is a no-op that
// still waits for the first append's fsync.
func (t *Tiered) tombstoneAdd(id string) {
	t.tombMu.Lock()
	defer t.tombMu.Unlock()
	t.mu.Lock()
	if t.tombstones[id] != nil {
		t.mu.Unlock()
		return
	}
	t.tombstones[id] = &tombstone{blobClean: t.blob == nil}
	t.mu.Unlock()
	_ = t.appendTombRecord(id, 0)
}

// tombstoneResolve marks one side of id's tombstone clean; when both sides
// are, the tombstone retires with a durable resolved record. A crash before
// the resolved record lands just replays the tombstone pending — every
// retry path is idempotent.
//
// The map transition and the resolved append happen under one tombMu hold
// (same tombMu→mu order as tombstoneAdd): boot replay takes the LAST record
// per id, so a concurrent add for a re-registered-and-deleted-again id must
// never slot its pending record between this retirement's map delete and
// its resolved append — that interleaving would durably drop the NEW
// tombstone.
func (t *Tiered) tombstoneResolve(id string, side tombSide) {
	t.tombMu.Lock()
	defer t.tombMu.Unlock()
	t.mu.Lock()
	ts := t.tombstones[id]
	if ts == nil {
		t.mu.Unlock()
		return
	}
	switch side {
	case tombLocal:
		ts.localClean = true
	case tombBlob:
		ts.blobClean = true
	}
	done := ts.localClean && ts.blobClean
	if done {
		delete(t.tombstones, id)
	}
	t.mu.Unlock()
	if done {
		_ = t.appendTombRecord(id, tombFlagResolved)
		t.maybeClearTombLog()
	}
}

// tombstoneForget retires id's tombstone because the id has been legitimately
// re-registered (Put under a previously deleted id): the tombstone guarded
// the OLD state, and replaying it pending at the next boot would destroy the
// NEW session's files. The resolved record is therefore written durably —
// under one tombMu hold spanning the map delete, like tombstoneResolve, so
// a racing re-add's pending record can never be masked by this retirement.
func (t *Tiered) tombstoneForget(id string) {
	t.tombMu.Lock()
	defer t.tombMu.Unlock()
	t.mu.Lock()
	if t.tombstones[id] == nil {
		t.mu.Unlock()
		return
	}
	delete(t.tombstones, id)
	t.mu.Unlock()
	_ = t.appendTombRecord(id, tombFlagResolved)
	t.maybeClearTombLog()
}

// maybeClearTombLog removes the sidecar log outright when no tombstone is
// pending — the quiescent state leaves the spill directory holding exactly
// the chain files, nothing else. Safe because the resolved record that got
// us here was already fsynced (removal strictly follows it), and tombMu
// (held by the caller) serializes against a concurrent tombstoneAdd, which
// would recreate the file with a fresh header.
func (t *Tiered) maybeClearTombLog() {
	t.mu.Lock()
	pending := len(t.tombstones)
	t.mu.Unlock()
	if pending > 0 {
		return
	}
	if err := os.Remove(filepath.Join(t.dir, tombstoneFile)); err == nil || os.IsNotExist(err) {
		t.tombRecords = 0
	}
}

// appendTombRecord appends one record (id, flags) to the sidecar log and
// fsyncs it. Caller holds tombMu.
func (t *Tiered) appendTombRecord(id string, flags uint64) error {
	path := filepath.Join(t.dir, tombstoneFile)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	bw := binio.NewWriter(f)
	if info, err := f.Stat(); err == nil && info.Size() == 0 {
		bw.Bytes([]byte(tombMagic))
		bw.U64(tombVersion)
	}
	bw.Str(id)
	bw.U64(flags)
	if err := bw.Flush(); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	t.tombRecords++
	return nil
}

// loadTombstones replays the sidecar log at boot, seeding the pending set
// with every id whose last record is unresolved. A torn tail (crash
// mid-append) ends the replay at the last whole record — the half-written
// add it loses was for a forget whose removals had not started — and is
// then TRUNCATED away: appendTombRecord reopens with O_APPEND, so garbage
// left at the tail would swallow every record this process appends (the
// next boot's replay stops at the garbage), silently dropping pending
// tombstones for acknowledged DELETEs. Runs before reindex and syncBlob,
// single-threaded, from NewTiered.
func (t *Tiered) loadTombstones() error {
	path := filepath.Join(t.dir, tombstoneFile)
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: opening tombstone log: %w", err)
	}
	defer f.Close()
	br := binio.NewReader(f)
	// good tracks the byte offset just past the last whole record — the
	// replay horizon, and the truncation point for anything after it.
	var good int64
	records := 0
	if err := br.Magic(tombMagic); err != nil {
		if err != io.EOF && err != io.ErrUnexpectedEOF {
			return fmt.Errorf("store: tombstone log: %w", err)
		}
		// Empty or torn header: no records landed; truncate to empty below
		// so the next append rewrites a whole header.
	} else if v := br.U64(); br.Err != nil {
		// Torn between magic and version: same as a torn header.
	} else if v != tombVersion {
		return fmt.Errorf("store: unsupported tombstone-log version %d", v)
	} else {
		good = int64(len(tombMagic)) + 8
		for {
			id := br.Str(maxSpillName)
			flags := br.U64()
			if br.Err != nil {
				break
			}
			records++
			good += 8 + int64(len(id)) + 8
			if flags&tombFlagResolved != 0 {
				delete(t.tombstones, id)
			} else {
				// localClean is settled by reindex (which deletes any stray
				// files it finds for the id); blobClean by syncBlob/GC.
				t.tombstones[id] = &tombstone{blobClean: t.blob == nil}
			}
		}
	}
	t.tombRecords = records
	if info, err := f.Stat(); err == nil && info.Size() > good {
		if err := f.Truncate(good); err != nil {
			return fmt.Errorf("store: truncating torn tombstone-log tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			return fmt.Errorf("store: truncating torn tombstone-log tail: %w", err)
		}
	}
	return nil
}

// compactTombLog rewrites the sidecar log to just the currently pending
// tombstones, called from the GC sweep once retired records dominate. Uses
// the same temp + fsync + rename discipline as spill publishes.
func (t *Tiered) compactTombLog() {
	t.tombMu.Lock()
	defer t.tombMu.Unlock()
	t.mu.Lock()
	pending := make([]string, 0, len(t.tombstones))
	for id := range t.tombstones {
		pending = append(pending, id)
	}
	t.mu.Unlock()
	if t.tombRecords <= 4*len(pending)+16 {
		return // mostly live records; not worth a rewrite
	}
	path := filepath.Join(t.dir, tombstoneFile)
	if len(pending) == 0 {
		if err := os.Remove(path); err == nil || os.IsNotExist(err) {
			t.tombRecords = 0
		}
		return
	}
	tmp, err := os.CreateTemp(t.dir, spillTmp+"*")
	if err != nil {
		return
	}
	tmpName := tmp.Name()
	bw := binio.NewWriter(tmp)
	bw.Bytes([]byte(tombMagic))
	bw.U64(tombVersion)
	for _, id := range pending {
		bw.Str(id)
		bw.U64(0)
	}
	if bw.Flush() != nil || tmp.Sync() != nil || tmp.Close() != nil {
		tmp.Close()
		_ = os.Remove(tmpName)
		return
	}
	if err := os.Rename(tmpName, path); err != nil {
		_ = os.Remove(tmpName)
		return
	}
	t.tombRecords = len(pending)
}
