package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/priu"
)

// trainSession builds a resident session on a small deterministic dataset.
func trainSession(t testing.TB, id string, seed int64) *Session {
	t.Helper()
	d, err := priu.GenerateRegression("st-"+id, 60, 4, 0.05, seed)
	if err != nil {
		t.Fatal(err)
	}
	u, err := priu.Train("linear", d,
		priu.WithEta(0.01), priu.WithLambda(0.05), priu.WithBatchSize(15),
		priu.WithIterations(20), priu.WithSeed(seed), priu.WithFullCaches())
	if err != nil {
		t.Fatal(err)
	}
	return NewSession(id, "linear", d, u, nil, nil)
}

// applyDeletion mimics the service's mutation path: cumulative log + new
// model + dirty flag, under Mu.
func applyDeletion(t testing.TB, sess *Session, removed []int) []float64 {
	t.Helper()
	sess.Mu.Lock()
	defer sess.Mu.Unlock()
	all := append(append([]int(nil), sess.Deleted...), removed...)
	m, err := sess.Upd.Update(all)
	if err != nil {
		t.Fatal(err)
	}
	sess.Deleted = all
	sess.Model = m
	sess.Updates++
	sess.MarkDirtyLocked()
	return m.Vec()
}

func TestMemoryBudgetAndCounterSplit(t *testing.T) {
	m := NewMemory(WithMaxSessions(2))
	a, b, c := trainSession(t, "sess-1", 1), trainSession(t, "sess-2", 2), trainSession(t, "sess-3", 3)
	m.Put(a)
	m.Put(b)
	m.Touch("sess-1") // make sess-2 the LRU victim
	m.Put(c)

	if _, ok := m.Get("sess-2"); ok {
		t.Fatal("LRU session should be evicted")
	}
	if _, ok := m.Get("sess-1"); !ok {
		t.Fatal("touched session should survive")
	}
	if !m.Delete("sess-3") {
		t.Fatal("explicit delete should succeed")
	}
	if m.Delete("sess-3") {
		t.Fatal("second delete should report missing")
	}
	st := m.Stats()
	if st.BudgetEvictions != 1 || st.ExplicitDeletes != 1 {
		t.Fatalf("counter split wrong: budget=%d explicit=%d, want 1/1", st.BudgetEvictions, st.ExplicitDeletes)
	}
	if st.Resident != 1 {
		t.Fatalf("resident = %d, want 1", st.Resident)
	}
	var sum int64
	for _, sh := range st.Shards {
		sum += sh.BudgetEvictions + sh.ExplicitDeletes
	}
	if sum != 2 {
		t.Fatalf("per-shard counters sum to %d, want 2", sum)
	}
	// The evicted copy is flagged so a mutator holding it re-fetches.
	b.Mu.Lock()
	gone := b.GoneLocked()
	b.Mu.Unlock()
	if !gone {
		t.Fatal("evicted session should be marked gone")
	}
}

func TestTieredSpillRestoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ti, err := NewTiered(dir, NewMemory(WithMaxSessions(1)))
	if err != nil {
		t.Fatal(err)
	}
	a := trainSession(t, "sess-1", 11)
	wantVec := applyDeletion(t, a, []int{3, 9})
	ti.Put(a)
	ti.Put(trainSession(t, "sess-2", 12)) // evicts and spills sess-1

	st := ti.Stats()
	if st.Spilled != 1 || st.Spills != 1 || st.SpilledBytes <= 0 {
		t.Fatalf("spill stats %+v", st)
	}
	if len(st.SpilledSessions) != 1 || st.SpilledSessions[0].ID != "sess-1" {
		t.Fatalf("spilled listing %+v", st.SpilledSessions)
	}

	got, ok := ti.Get("sess-1")
	if !ok {
		t.Fatal("cold session should restore on touch")
	}
	if got == a {
		t.Fatal("restore should produce a fresh session object")
	}
	got.Mu.Lock()
	vec := got.Model.Vec()
	deleted := append([]int(nil), got.Deleted...)
	updates := got.Updates
	got.Mu.Unlock()
	if len(deleted) != 2 || deleted[0] != 3 || deleted[1] != 9 {
		t.Fatalf("restored deletion log %v", deleted)
	}
	if updates != 1 {
		t.Fatalf("restored updates counter %d, want 1", updates)
	}
	for i := range vec {
		if vec[i] != wantVec[i] {
			t.Fatalf("restored model differs at %d: %v vs %v", i, vec[i], wantVec[i])
		}
	}
	if ti.Stats().Restores != 1 {
		t.Fatalf("restores = %d, want 1", ti.Stats().Restores)
	}
}

// TestTieredConcurrentRestore hammers a cold session from many goroutines:
// the singleflight must run exactly one restore and hand every caller the
// same session object. Run under -race.
func TestTieredConcurrentRestore(t *testing.T) {
	dir := t.TempDir()
	ti, err := NewTiered(dir, NewMemory(WithMaxSessions(1)))
	if err != nil {
		t.Fatal(err)
	}
	a := trainSession(t, "sess-1", 21)
	applyDeletion(t, a, []int{1, 2})
	ti.Put(a)
	ti.Put(trainSession(t, "sess-2", 22)) // spill sess-1

	const touchers = 16
	got := make([]*Session, touchers)
	var wg sync.WaitGroup
	for g := 0; g < touchers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sess, ok := ti.Get("sess-1")
			if !ok {
				t.Errorf("toucher %d: restore failed", g)
				return
			}
			got[g] = sess
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for g := 1; g < touchers; g++ {
		if got[g] != got[0] {
			t.Fatalf("touchers %d and 0 got different session objects", g)
		}
	}
	if r := ti.Stats().Restores; r != 1 {
		t.Fatalf("concurrent touches triggered %d restores, want exactly 1", r)
	}
}

func TestTieredCloseDrainAndReboot(t *testing.T) {
	dir := t.TempDir()
	ti, err := NewTiered(dir, NewMemory())
	if err != nil {
		t.Fatal(err)
	}
	a := trainSession(t, "sess-1", 31)
	wantVec := applyDeletion(t, a, []int{5})
	ti.Put(a)
	// Never evicted — only the Close drain (the SIGTERM path) persists it.
	if err := ti.Close(); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Leave a torn temp file; reboot must clean it up and ignore it.
	if err := os.WriteFile(filepath.Join(dir, spillTmp+"dead"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	ti2, err := NewTiered(dir, NewMemory())
	if err != nil {
		t.Fatal(err)
	}
	st := ti2.Stats()
	if st.Spilled != 1 || st.Resident != 0 {
		t.Fatalf("reboot stats %+v", st)
	}
	got, ok := ti2.Get("sess-1")
	if !ok {
		t.Fatal("rebooted store should restore the drained session")
	}
	got.Mu.Lock()
	vec := got.Model.Vec()
	got.Mu.Unlock()
	for i := range vec {
		if vec[i] != wantVec[i] {
			t.Fatalf("rebooted model differs at %d", i)
		}
	}
	files, err := filepath.Glob(filepath.Join(dir, spillTmp+"*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 0 {
		t.Fatalf("temp files survived reboot: %v", files)
	}
}

func TestTieredDeleteRemovesBothTiers(t *testing.T) {
	dir := t.TempDir()
	ti, err := NewTiered(dir, NewMemory(WithMaxSessions(1)))
	if err != nil {
		t.Fatal(err)
	}
	ti.Put(trainSession(t, "sess-1", 41))
	ti.Put(trainSession(t, "sess-2", 42)) // spill sess-1
	if !ti.Delete("sess-1") {
		t.Fatal("delete of a spilled session should succeed")
	}
	if _, ok := ti.Get("sess-1"); ok {
		t.Fatal("deleted session must not restore")
	}
	files, err := filepath.Glob(filepath.Join(dir, "*"+spillExt))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(string(data), "sess-1") {
			t.Fatalf("spill file %s for deleted session survived", f)
		}
	}
	if st := ti.Stats(); st.ExplicitDeletes != 1 {
		t.Fatalf("explicit deletes = %d, want 1", st.ExplicitDeletes)
	}
}

func TestTieredCleanReSpillSkipsWrite(t *testing.T) {
	dir := t.TempDir()
	ti, err := NewTiered(dir, NewMemory(WithMaxSessions(1)))
	if err != nil {
		t.Fatal(err)
	}
	ti.Put(trainSession(t, "sess-1", 51))
	ti.Put(trainSession(t, "sess-2", 52)) // spill sess-1 (1 write)
	if _, ok := ti.Get("sess-1"); !ok {   // restore (clean), spills sess-2
		t.Fatal("restore failed")
	}
	if _, ok := ti.Get("sess-2"); !ok { // restore sess-2, re-evicts clean sess-1
		t.Fatal("restore failed")
	}
	st := ti.Stats()
	// sess-1 spilled once, sess-2 spilled once; the clean re-eviction of
	// sess-1 must not rewrite its unchanged file.
	if st.Spills != 2 {
		t.Fatalf("spills = %d, want 2 (clean re-eviction must skip the write)", st.Spills)
	}
}

func TestTieredStaleCopyNeverResurrects(t *testing.T) {
	// With spilling disabled (or a failed spill), evicting a session whose
	// state has moved past its disk copy must drop that copy: restoring it
	// would silently undo honored deletions.
	dir := t.TempDir()
	ti, err := NewTiered(dir, NewMemory(WithMaxSessions(1)), WithSpillOnEvict(false))
	if err != nil {
		t.Fatal(err)
	}
	a := trainSession(t, "sess-1", 61)
	ti.Put(a)
	if err := ti.Close(); err != nil { // drain: disk copy with 0 deletions
		t.Fatal(err)
	}
	applyDeletion(t, a, []int{2, 4})      // disk copy is now stale
	ti.Put(trainSession(t, "sess-2", 62)) // evicts dirty sess-1 without spilling

	if _, ok := ti.Get("sess-1"); ok {
		t.Fatal("stale disk copy resurrected a session past its persisted state")
	}
	if st := ti.Stats(); st.Spilled != 0 {
		t.Fatalf("stale entry still indexed: %+v", st.SpilledSessions)
	}

	// A clean eviction under -spill=false keeps the (current) disk copy.
	b := trainSession(t, "sess-3", 63)
	ti.Put(b)
	if err := ti.Close(); err != nil {
		t.Fatal(err)
	}
	ti.Put(trainSession(t, "sess-4", 64)) // evicts clean sess-3
	if _, ok := ti.Get("sess-3"); !ok {
		t.Fatal("clean eviction dropped a current disk copy")
	}
}

func TestSessionIDsNeverCollideAcrossBoots(t *testing.T) {
	// Guard the content-addressing assumption: two sessions with identical
	// payloads still produce distinct spill files because the envelope
	// carries the session ID.
	dir := t.TempDir()
	ti, err := NewTiered(dir, NewMemory(WithMaxSessions(1)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		ti.Put(trainSession(t, fmt.Sprintf("sess-%d", i), 7)) // same seed → same payload
	}
	if err := ti.Close(); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*"+spillExt))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 3 {
		t.Fatalf("%d spill files for 3 identical-payload sessions, want 3", len(files))
	}
}
