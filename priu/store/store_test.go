package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/priu"
)

// newTestTiered builds a tiered store whose lifecycle (write-behind workers,
// GC) is stopped when the test ends, so background spills never race the
// TempDir cleanup.
func newTestTiered(t testing.TB, dir string, mem *Memory, opts ...TieredOption) *Tiered {
	t.Helper()
	ti, err := NewTiered(dir, mem, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ti.stopLifecycle)
	return ti
}

// trainSession builds a resident session on a small deterministic dataset.
func trainSession(t testing.TB, id string, seed int64) *Session {
	t.Helper()
	d, err := priu.GenerateRegression("st-"+id, 60, 4, 0.05, seed)
	if err != nil {
		t.Fatal(err)
	}
	u, err := priu.Train("linear", d,
		priu.WithEta(0.01), priu.WithLambda(0.05), priu.WithBatchSize(15),
		priu.WithIterations(20), priu.WithSeed(seed), priu.WithFullCaches())
	if err != nil {
		t.Fatal(err)
	}
	return NewSession(id, "linear", d, u, nil, nil)
}

// applyDeletion mimics the service's mutation path: cumulative log + new
// model + dirty flag, under Mu.
func applyDeletion(t testing.TB, sess *Session, removed []int) []float64 {
	t.Helper()
	sess.Mu.Lock()
	defer sess.Mu.Unlock()
	all := append(append([]int(nil), sess.Deleted...), removed...)
	m, err := sess.Upd.Update(all)
	if err != nil {
		t.Fatal(err)
	}
	sess.Deleted = all
	sess.Model = m
	sess.Updates++
	sess.MarkDirtyLocked()
	return m.Vec()
}

func TestMemoryBudgetAndCounterSplit(t *testing.T) {
	m := NewMemory(WithMaxSessions(2))
	a, b, c := trainSession(t, "sess-1", 1), trainSession(t, "sess-2", 2), trainSession(t, "sess-3", 3)
	m.Put(a)
	m.Put(b)
	m.Touch("sess-1") // make sess-2 the LRU victim
	m.Put(c)

	if _, ok := m.Get("sess-2"); ok {
		t.Fatal("LRU session should be evicted")
	}
	if _, ok := m.Get("sess-1"); !ok {
		t.Fatal("touched session should survive")
	}
	if !m.Delete("sess-3") {
		t.Fatal("explicit delete should succeed")
	}
	if m.Delete("sess-3") {
		t.Fatal("second delete should report missing")
	}
	st := m.Stats()
	if st.BudgetEvictions != 1 || st.ExplicitDeletes != 1 {
		t.Fatalf("counter split wrong: budget=%d explicit=%d, want 1/1", st.BudgetEvictions, st.ExplicitDeletes)
	}
	if st.Resident != 1 {
		t.Fatalf("resident = %d, want 1", st.Resident)
	}
	var sum int64
	for _, sh := range st.Shards {
		sum += sh.BudgetEvictions + sh.ExplicitDeletes
	}
	if sum != 2 {
		t.Fatalf("per-shard counters sum to %d, want 2", sum)
	}
	// The evicted copy is flagged so a mutator holding it re-fetches.
	b.Mu.Lock()
	gone := b.GoneLocked()
	b.Mu.Unlock()
	if !gone {
		t.Fatal("evicted session should be marked gone")
	}
}

func TestTieredSpillRestoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	// Synchronous spills keep the exact Spills count deterministic; the
	// write-behind path has its own tests below.
	ti := newTestTiered(t, dir, NewMemory(WithMaxSessions(1)), WithWriteBehind(0, 0))
	a := trainSession(t, "sess-1", 11)
	wantVec := applyDeletion(t, a, []int{3, 9})
	ti.Put(a)
	ti.Put(trainSession(t, "sess-2", 12)) // evicts and spills sess-1

	st := ti.Stats()
	if st.Spilled != 1 || st.Spills != 1 || st.SpilledBytes <= 0 {
		t.Fatalf("spill stats %+v", st)
	}
	if len(st.SpilledSessions) != 1 || st.SpilledSessions[0].ID != "sess-1" {
		t.Fatalf("spilled listing %+v", st.SpilledSessions)
	}

	got, ok := ti.Get("sess-1")
	if !ok {
		t.Fatal("cold session should restore on touch")
	}
	if got == a {
		t.Fatal("restore should produce a fresh session object")
	}
	got.Mu.Lock()
	vec := got.Model.Vec()
	deleted := append([]int(nil), got.Deleted...)
	updates := got.Updates
	got.Mu.Unlock()
	if len(deleted) != 2 || deleted[0] != 3 || deleted[1] != 9 {
		t.Fatalf("restored deletion log %v", deleted)
	}
	if updates != 1 {
		t.Fatalf("restored updates counter %d, want 1", updates)
	}
	for i := range vec {
		if vec[i] != wantVec[i] {
			t.Fatalf("restored model differs at %d: %v vs %v", i, vec[i], wantVec[i])
		}
	}
	if ti.Stats().Restores != 1 {
		t.Fatalf("restores = %d, want 1", ti.Stats().Restores)
	}
}

// TestTieredConcurrentRestore hammers a cold session from many goroutines:
// the singleflight must run exactly one restore and hand every caller the
// same session object. Run under -race.
func TestTieredConcurrentRestore(t *testing.T) {
	dir := t.TempDir()
	ti := newTestTiered(t, dir, NewMemory(WithMaxSessions(1)))
	a := trainSession(t, "sess-1", 21)
	applyDeletion(t, a, []int{1, 2})
	ti.Put(a)
	ti.Put(trainSession(t, "sess-2", 22)) // spill sess-1

	const touchers = 16
	got := make([]*Session, touchers)
	var wg sync.WaitGroup
	for g := 0; g < touchers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sess, ok := ti.Get("sess-1")
			if !ok {
				t.Errorf("toucher %d: restore failed", g)
				return
			}
			got[g] = sess
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for g := 1; g < touchers; g++ {
		if got[g] != got[0] {
			t.Fatalf("touchers %d and 0 got different session objects", g)
		}
	}
	if r := ti.Stats().Restores; r != 1 {
		t.Fatalf("concurrent touches triggered %d restores, want exactly 1", r)
	}
}

func TestTieredCloseDrainAndReboot(t *testing.T) {
	dir := t.TempDir()
	ti := newTestTiered(t, dir, NewMemory())
	a := trainSession(t, "sess-1", 31)
	wantVec := applyDeletion(t, a, []int{5})
	ti.Put(a)
	// Never evicted — only the Close drain (the SIGTERM path) persists it.
	if err := ti.Close(); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Leave a torn temp file; reboot must clean it up and ignore it.
	if err := os.WriteFile(filepath.Join(dir, spillTmp+"dead"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	ti2 := newTestTiered(t, dir, NewMemory())
	st := ti2.Stats()
	if st.Spilled != 1 || st.Resident != 0 {
		t.Fatalf("reboot stats %+v", st)
	}
	got, ok := ti2.Get("sess-1")
	if !ok {
		t.Fatal("rebooted store should restore the drained session")
	}
	got.Mu.Lock()
	vec := got.Model.Vec()
	got.Mu.Unlock()
	for i := range vec {
		if vec[i] != wantVec[i] {
			t.Fatalf("rebooted model differs at %d", i)
		}
	}
	files, err := filepath.Glob(filepath.Join(dir, spillTmp+"*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 0 {
		t.Fatalf("temp files survived reboot: %v", files)
	}
}

func TestTieredDeleteRemovesBothTiers(t *testing.T) {
	dir := t.TempDir()
	ti := newTestTiered(t, dir, NewMemory(WithMaxSessions(1)))
	ti.Put(trainSession(t, "sess-1", 41))
	ti.Put(trainSession(t, "sess-2", 42)) // spill sess-1
	if !ti.Delete("sess-1") {
		t.Fatal("delete of a spilled session should succeed")
	}
	if _, ok := ti.Get("sess-1"); ok {
		t.Fatal("deleted session must not restore")
	}
	files, err := filepath.Glob(filepath.Join(dir, "*"+spillExt))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(string(data), "sess-1") {
			t.Fatalf("spill file %s for deleted session survived", f)
		}
	}
	if st := ti.Stats(); st.ExplicitDeletes != 1 {
		t.Fatalf("explicit deletes = %d, want 1", st.ExplicitDeletes)
	}
}

func TestTieredCleanReSpillSkipsWrite(t *testing.T) {
	dir := t.TempDir()
	ti := newTestTiered(t, dir, NewMemory(WithMaxSessions(1)))
	ti.Put(trainSession(t, "sess-1", 51))
	ti.Put(trainSession(t, "sess-2", 52)) // spill sess-1 (1 write)
	if _, ok := ti.Get("sess-1"); !ok {   // restore (clean), spills sess-2
		t.Fatal("restore failed")
	}
	if _, ok := ti.Get("sess-2"); !ok { // restore sess-2, re-evicts clean sess-1
		t.Fatal("restore failed")
	}
	st := ti.Stats()
	// sess-1 spilled once, sess-2 spilled once; the clean re-eviction of
	// sess-1 must not rewrite its unchanged file.
	if st.Spills != 2 {
		t.Fatalf("spills = %d, want 2 (clean re-eviction must skip the write)", st.Spills)
	}
}

func TestTieredStaleCopyNeverResurrects(t *testing.T) {
	// With spilling disabled (or a failed spill), evicting a session whose
	// state has moved past its disk copy must drop that copy: restoring it
	// would silently undo honored deletions.
	dir := t.TempDir()
	ti := newTestTiered(t, dir, NewMemory(WithMaxSessions(1)), WithSpillOnEvict(false))
	a := trainSession(t, "sess-1", 61)
	ti.Put(a)
	if err := ti.Close(); err != nil { // drain: disk copy with 0 deletions
		t.Fatal(err)
	}
	applyDeletion(t, a, []int{2, 4})      // disk copy is now stale
	ti.Put(trainSession(t, "sess-2", 62)) // evicts dirty sess-1 without spilling

	if _, ok := ti.Get("sess-1"); ok {
		t.Fatal("stale disk copy resurrected a session past its persisted state")
	}
	if st := ti.Stats(); st.Spilled != 0 {
		t.Fatalf("stale entry still indexed: %+v", st.SpilledSessions)
	}

	// A clean eviction under -spill=false keeps the (current) disk copy.
	b := trainSession(t, "sess-3", 63)
	ti.Put(b)
	if err := ti.Close(); err != nil {
		t.Fatal(err)
	}
	ti.Put(trainSession(t, "sess-4", 64)) // evicts clean sess-3
	if _, ok := ti.Get("sess-3"); !ok {
		t.Fatal("clean eviction dropped a current disk copy")
	}
}

func TestSessionIDsNeverCollideAcrossBoots(t *testing.T) {
	// Guard the content-addressing assumption: two sessions with identical
	// payloads still produce distinct spill files because the envelope
	// carries the session ID.
	dir := t.TempDir()
	ti := newTestTiered(t, dir, NewMemory(WithMaxSessions(1)))
	for i := 1; i <= 3; i++ {
		ti.Put(trainSession(t, fmt.Sprintf("sess-%d", i), 7)) // same seed → same payload
	}
	if err := ti.Close(); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*"+spillExt))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 3 {
		t.Fatalf("%d spill files for 3 identical-payload sessions, want 3", len(files))
	}
}

func TestTenantHelpers(t *testing.T) {
	cases := []struct{ id, tenant, local string }{
		{"sess-1", "", "sess-1"},
		{"acme/sess-2", "acme", "sess-2"},
		{"a/b/sess-3", "a/b", "sess-3"}, // defensive: last separator wins
	}
	for _, c := range cases {
		if got := TenantOf(c.id); got != c.tenant {
			t.Fatalf("TenantOf(%q) = %q, want %q", c.id, got, c.tenant)
		}
		if got := LocalID(c.id); got != c.local {
			t.Fatalf("LocalID(%q) = %q, want %q", c.id, got, c.local)
		}
	}
}

// limitsMap is a static LimitsFunc for tests.
func limitsMap(m map[string]TenantLimits) LimitsFunc {
	return func(tenant string) TenantLimits { return m[tenant] }
}

func TestMemoryTenantQuota(t *testing.T) {
	m := NewMemory(WithTenantLimits(limitsMap(map[string]TenantLimits{
		"acme": {MaxSessions: 2},
	})))
	if err := m.Put(trainSession(t, "acme/sess-1", 1)); err != nil {
		t.Fatal(err)
	}
	if err := m.Put(trainSession(t, "acme/sess-2", 2)); err != nil {
		t.Fatal(err)
	}
	err := m.Put(trainSession(t, "acme/sess-3", 3))
	qe, ok := err.(*QuotaError)
	if !ok {
		t.Fatalf("third Put error = %v, want *QuotaError", err)
	}
	if qe.Tenant != "acme" || qe.Dimension != "sessions" || qe.Limit != 2 {
		t.Fatalf("quota error %+v", qe)
	}
	// Other tenants (and the anonymous namespace) are unaffected.
	if err := m.Put(trainSession(t, "rival/sess-4", 4)); err != nil {
		t.Fatal(err)
	}
	if err := m.Put(trainSession(t, "sess-5", 5)); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if ts := st.Tenants["acme"]; ts.Resident != 2 || ts.QuotaRejections != 1 {
		t.Fatalf("acme tenant stats %+v", ts)
	}
	if ts := st.Tenants["rival"]; ts.Resident != 1 {
		t.Fatalf("rival tenant stats %+v", ts)
	}
	// An explicit delete frees quota.
	if !m.Delete("acme/sess-1") {
		t.Fatal("delete failed")
	}
	if err := m.Put(trainSession(t, "acme/sess-6", 6)); err != nil {
		t.Fatalf("Put after freeing quota: %v", err)
	}
	if u := m.TenantUsage("acme"); u.Resident != 2 || u.ResidentBytes <= 0 {
		t.Fatalf("acme usage %+v", u)
	}
}

func TestMemoryTenantByteQuota(t *testing.T) {
	one := trainSession(t, "probe/sess-0", 9)
	fp := one.Footprint()
	m := NewMemory(WithTenantLimits(limitsMap(map[string]TenantLimits{
		"acme": {MaxBytes: fp + fp/2}, // room for one session, not two
	})))
	if err := m.Put(trainSession(t, "acme/sess-1", 1)); err != nil {
		t.Fatal(err)
	}
	err := m.Put(trainSession(t, "acme/sess-2", 2))
	qe, ok := err.(*QuotaError)
	if !ok || qe.Dimension != "bytes" {
		t.Fatalf("byte-quota Put error = %v, want bytes *QuotaError", err)
	}
}

func TestMemoryEvictionChargedToOwningTenant(t *testing.T) {
	m := NewMemory(WithMaxSessions(1))
	if err := m.Put(trainSession(t, "acme/sess-1", 1)); err != nil {
		t.Fatal(err)
	}
	if err := m.Put(trainSession(t, "rival/sess-2", 2)); err != nil {
		t.Fatal(err) // evicts acme's LRU session
	}
	st := m.Stats()
	if ts := st.Tenants["acme"]; ts.Resident != 0 || ts.BudgetEvictions != 1 {
		t.Fatalf("acme stats after cross-tenant eviction %+v", ts)
	}
	if ts := st.Tenants["rival"]; ts.Resident != 1 || ts.BudgetEvictions != 0 {
		t.Fatalf("rival stats %+v", ts)
	}
}

func TestTieredTenantQuotaCountsSpilled(t *testing.T) {
	dir := t.TempDir()
	ti := newTestTiered(t, dir, NewMemory(
		WithMaxSessions(1),
		WithTenantLimits(limitsMap(map[string]TenantLimits{"acme": {MaxSessions: 2}})),
	))
	if err := ti.Put(trainSession(t, "acme/sess-1", 1)); err != nil {
		t.Fatal(err)
	}
	if err := ti.Put(trainSession(t, "acme/sess-2", 2)); err != nil {
		t.Fatal(err) // spills sess-1; acme still owns both
	}
	if u := ti.TenantUsage("acme"); u.Resident != 1 || u.Spilled != 1 || u.SpilledBytes <= 0 {
		t.Fatalf("acme usage across tiers %+v", u)
	}
	if _, ok := ti.Put(trainSession(t, "acme/sess-3", 3)).(*QuotaError); !ok {
		t.Fatal("spilled sessions must count against the tenant quota")
	}
	// Restores bypass the quota: the session already counts.
	if _, ok := ti.Get("acme/sess-1"); !ok {
		t.Fatal("restore failed")
	}
	// Deleting a spilled session frees quota.
	if _, ok := ti.Get("acme/sess-2"); !ok { // make sess-2 resident, sess-1 spills
		t.Fatal("restore failed")
	}
	if !ti.Delete("acme/sess-1") {
		t.Fatal("delete failed")
	}
	if err := ti.Put(trainSession(t, "acme/sess-3", 3)); err != nil {
		t.Fatalf("Put after delete freed quota: %v", err)
	}
	st := ti.Stats()
	if ts := st.Tenants["acme"]; ts.ExplicitDeletes != 1 {
		t.Fatalf("acme stats %+v", ts)
	}
}

// readDirBytes is the ground-truth directory scan the maintained
// spill_dir_bytes counter replaced: the cross-check oracle.
func readDirBytes(t testing.TB, dir string) int64 {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, de := range entries {
		if de.IsDir() {
			continue
		}
		info, err := de.Info()
		if err != nil {
			t.Fatal(err)
		}
		total += info.Size()
	}
	return total
}

func TestTieredSpillDirBytesGauge(t *testing.T) {
	dir := t.TempDir()
	ti := newTestTiered(t, dir, NewMemory(WithMaxSessions(1)))
	if ti.Stats().SpillDirBytes != 0 {
		t.Fatal("empty spill dir should gauge 0")
	}
	if err := ti.Put(trainSession(t, "sess-1", 71)); err != nil {
		t.Fatal(err)
	}
	if err := ti.Put(trainSession(t, "sess-2", 72)); err != nil {
		t.Fatal(err) // evicts sess-1
	}
	ti.Flush() // both sessions eagerly snapshotted
	st := ti.Stats()
	if st.SpillDirBytes <= 0 || st.SpillDirBytes < st.SpilledBytes {
		t.Fatalf("spill dir gauge %d vs spilled bytes %d", st.SpillDirBytes, st.SpilledBytes)
	}
	// The maintained counter must agree with a real directory walk (the
	// cross-check for the per-request ReadDir it replaced).
	if scan := readDirBytes(t, dir); st.SpillDirBytes != scan {
		t.Fatalf("maintained gauge %d != directory scan %d", st.SpillDirBytes, scan)
	}
	// Explicit deletes of both sessions empty the directory and the gauge.
	if !ti.Delete("sess-1") || !ti.Delete("sess-2") {
		t.Fatal("delete failed")
	}
	if got := ti.Stats().SpillDirBytes; got != 0 {
		t.Fatalf("spill dir gauge %d after deleting every session, want 0", got)
	}
	if scan := readDirBytes(t, dir); scan != 0 {
		t.Fatalf("directory scan %d after deleting every session, want 0", scan)
	}
}

// TestTieredRebootSeedsGaugeFromScan covers the boot-time seed: a fresh
// process must serve spill_dir_bytes from what the reindex scan found —
// including unreadable orphans it refuses to index.
func TestTieredRebootSeedsGaugeFromScan(t *testing.T) {
	dir := t.TempDir()
	ti := newTestTiered(t, dir, NewMemory())
	ti.Put(trainSession(t, "sess-1", 73))
	if err := ti.Close(); err != nil {
		t.Fatal(err)
	}
	// An orphan the reindex cannot parse still occupies disk.
	orphan := []byte("not a spill file, but bytes on disk all the same")
	if err := os.WriteFile(filepath.Join(dir, "junk"+spillExt), orphan, 0o644); err != nil {
		t.Fatal(err)
	}
	ti2 := newTestTiered(t, dir, NewMemory())
	if got, scan := ti2.Stats().SpillDirBytes, readDirBytes(t, dir); got != scan {
		t.Fatalf("rebooted gauge %d != directory scan %d", got, scan)
	}
}

func TestTieredRebootSeedsTenantOwnership(t *testing.T) {
	// Spill files left by a previous process must count against their
	// tenant's quota from boot, before any restore.
	dir := t.TempDir()
	lim := limitsMap(map[string]TenantLimits{"acme": {MaxSessions: 2}})
	ti := newTestTiered(t, dir, NewMemory(WithTenantLimits(lim)))
	if err := ti.Put(trainSession(t, "acme/sess-1", 1)); err != nil {
		t.Fatal(err)
	}
	if err := ti.Close(); err != nil { // drain sess-1 to disk
		t.Fatal(err)
	}

	ti2 := newTestTiered(t, dir, NewMemory(WithTenantLimits(lim)))
	if u := ti2.TenantUsage("acme"); u.Sessions() != 1 || u.SpilledBytes <= 0 {
		t.Fatalf("rebooted usage %+v, want 1 owned spilled session", u)
	}
	if err := ti2.Put(trainSession(t, "acme/sess-2", 2)); err != nil {
		t.Fatal(err)
	}
	if _, ok := ti2.Put(trainSession(t, "acme/sess-3", 3)).(*QuotaError); !ok {
		t.Fatal("rebooted spill file must count against the tenant quota")
	}
	// Restoring the rebooted session settles the byte charge to the true
	// footprint without changing the session count.
	if _, ok := ti2.Get("acme/sess-1"); !ok {
		t.Fatal("restore failed")
	}
	fp := trainSession(t, "probe/sess-0", 1).Footprint()
	if u := ti2.TenantUsage("acme"); u.Sessions() != 2 || u.Bytes() != 2*fp {
		t.Fatalf("post-restore usage %+v, want 2 sessions / %d bytes", u, 2*fp)
	}
}

// TestTieredConcurrentQuotaNeverOvershoots churns one tenant at its quota
// with concurrent registrations while evictions spill its residents: the
// ownership counters are the quota source of truth, so no interleaving of
// Put and spill may admit more sessions than the quota. Run under -race.
func TestTieredConcurrentQuotaNeverOvershoots(t *testing.T) {
	const quota = 4
	dir := t.TempDir()
	ti := newTestTiered(t, dir, NewMemory(
		WithMaxSessions(1), // every Put evicts/spills the previous resident
		WithTenantLimits(limitsMap(map[string]TenantLimits{"acme": {MaxSessions: quota}})),
	))
	sessions := make([]*Session, 12)
	for i := range sessions {
		sessions[i] = trainSession(t, fmt.Sprintf("acme/sess-%d", i+1), int64(i+1))
	}
	var wg sync.WaitGroup
	var admitted atomic.Int64
	for _, sess := range sessions {
		wg.Add(1)
		go func(sess *Session) {
			defer wg.Done()
			if err := ti.Put(sess); err == nil {
				admitted.Add(1)
			} else if _, ok := err.(*QuotaError); !ok {
				t.Errorf("unexpected Put error: %v", err)
			}
		}(sess)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if got := admitted.Load(); got != quota {
		t.Fatalf("admitted %d sessions, want exactly %d", got, quota)
	}
	if u := ti.TenantUsage("acme"); u.Sessions() != quota {
		t.Fatalf("owned usage %+v, want %d sessions", u, quota)
	}
}
