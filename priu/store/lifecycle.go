package store

import (
	"os"
	"path/filepath"
	"strings"
	"time"
)

// The spill-tier lifecycle manager: the write-behind queue that snapshots
// dirty sessions eagerly (so evictions drop resident copies instead of
// paying file IO under the victim's lock), the disk-budget evictor that
// keeps the spill directory under -spill-max-bytes, and the age-based GC
// that sweeps orphaned leftovers. All state lives on Tiered; this file owns
// the background machinery.

// tmpFloor is the minimum age before the GC may touch a temp file: temps
// younger than this may be an in-flight spill.
const tmpFloor = time.Minute

// armWriteBehind installs the dirty-notification hook on a session before it
// is published, so every mutation (MarkDirtyLocked) schedules an eager
// background snapshot. Harmless when write-behind is disabled.
func (t *Tiered) armWriteBehind(sess *Session) {
	if t.spillOnEvict && t.queueLen > 0 {
		sess.notifyDirty = t.enqueueSpill
	}
}

// enqueueSpill schedules a background snapshot of the session. It never
// blocks (it is called under Session.Mu): when the queue is full the request
// is dropped and counted — backpressure — and the eviction path's
// synchronous fallback keeps the session safe. Duplicate requests for a
// session already queued coalesce.
func (t *Tiered) enqueueSpill(sess *Session) {
	if t.queue == nil {
		return
	}
	t.qmu.Lock()
	if t.qClosed || t.pending[sess.ID] {
		t.qmu.Unlock()
		return
	}
	select {
	case t.queue <- sess:
		t.pending[sess.ID] = true
		t.qmu.Unlock()
	default:
		t.qmu.Unlock()
		t.queueFull.Add(1)
	}
}

// queueDepth reports the write-behind backlog (queued + in-flight).
func (t *Tiered) queueDepth() int {
	t.qmu.Lock()
	n := len(t.pending)
	t.qmu.Unlock()
	return n + int(t.inflight.Load())
}

// startLifecycle launches the write-behind workers and, when configured, the
// GC sweep.
func (t *Tiered) startLifecycle() {
	if t.spillOnEvict && t.queueLen > 0 {
		t.queue = make(chan *Session, t.queueLen)
		for i := 0; i < t.workers; i++ {
			t.wg.Add(1)
			go t.spillWorker()
		}
	}
	if t.gcInterval > 0 {
		t.stopGC = make(chan struct{})
		t.wg.Add(1)
		go t.gcLoop(t.stopGC)
	}
}

// stopLifecycle stops the GC sweep and closes the queue, then waits for the
// workers to flush the remaining backlog — the drain ordering: everything
// the queue accepted is on disk before Close snapshots stragglers.
// Idempotent.
func (t *Tiered) stopLifecycle() {
	t.qmu.Lock()
	if !t.qClosed {
		t.qClosed = true
		if t.stopGC != nil {
			close(t.stopGC)
		}
		if t.queue != nil {
			close(t.queue)
		}
	}
	t.qmu.Unlock()
	t.wg.Wait()
}

// spillWorker drains the write-behind queue: each dequeued session is
// snapshotted under its own lock, off every request path. Sessions that
// left the store (evicted with a synchronous spill, or deleted) are skipped
// via the gone flag; clean sessions whose disk copy is current are a no-op
// inside spillLocked.
func (t *Tiered) spillWorker() {
	defer t.wg.Done()
	for sess := range t.queue {
		t.inflight.Add(1)
		t.qmu.Lock()
		delete(t.pending, sess.ID)
		t.qmu.Unlock()
		sess.Mu.Lock()
		if !sess.gone {
			if wrote, err := t.spillLocked(sess); err == nil && wrote {
				t.writeBehind.Add(1)
			}
		}
		sess.Mu.Unlock()
		t.inflight.Add(-1)
	}
}

// Flush blocks until the write-behind queue has drained and no background
// snapshot is in flight — a quiescence point for tests and for callers that
// want eager durability without closing the store (Close flushes
// implicitly).
func (t *Tiered) Flush() {
	for t.queueDepth() > 0 {
		time.Sleep(time.Millisecond)
	}
}

// reserveDiskLocked admits size new spill-file bytes under the disk budget,
// evicting least-recently-used spill files (never keepID's) until the new
// file fits. It reports false — charging nothing — when the directory
// cannot be shrunk enough. Callers hold t.mu.
func (t *Tiered) reserveDiskLocked(size int64, keepID string) bool {
	if t.maxDiskBytes > 0 {
		for t.diskBytes+t.orphanBytes+size > t.maxDiskBytes {
			if !t.evictSpillFileLocked(keepID) {
				return false
			}
		}
	}
	t.diskBytes += size
	return true
}

// evictSpillFileLocked removes one local spill file to reclaim disk, in
// preference order of what the drop costs:
//
//   - demotions first: files whose entry is blob-backed are pure cache drops
//     — the entry survives remote-only, nothing is lost;
//   - then warm backups of DIRTY resident sessions: their rewrite is already
//     owed, so dropping the stale file costs nothing;
//   - then disk-only files in LRU order, whose removal loses the session and
//     is charged to its tenant as a disk eviction.
//
// Clean residents' files WITHOUT blob backing are pinned — a concurrent
// eviction may at any moment decide "clean and spilled → drop the resident
// copy" on the strength of that file, so reclaiming it could strand the
// session in zero tiers (with blob backing the entry survives the demotion,
// so the same decision stays safe). Callers hold t.mu.
func (t *Tiered) evictSpillFileLocked(keepID string) bool {
	const (
		classDemote = iota // blob-backed: free cache drop
		classWarm          // dirty resident's stale backup: rewrite owed
		classLoss          // disk-only, no blob: the session dies with the file
	)
	var (
		victimID    string
		victim      *spillEntry
		victimClass int
	)
	for id, e := range t.index {
		if id == keepID || !e.local {
			continue
		}
		if _, restoring := t.flights[id]; restoring {
			continue // a restore is reading this file right now
		}
		class := classLoss
		if e.remote {
			class = classDemote
		} else {
			sess, resident := t.mem.peek(id)
			if resident {
				if !sess.dirty.Load() {
					continue // pinned: the eviction path relies on this file
				}
				class = classWarm
			}
		}
		better := victim == nil || class < victimClass ||
			(class == victimClass && e.lastUsed < victim.lastUsed)
		if better {
			victimID, victim, victimClass = id, e, class
		}
	}
	if victim == nil {
		return false
	}
	// Unlink BEFORE forgetting: if the disk refuses to give the bytes back
	// (EACCES/EIO), dropping the session would forget state without
	// reclaiming anything — and the caller's loop would then amplify one
	// sick filesystem into mass session loss. Report no progress instead;
	// the triggering spill fails and every session stays where it is. The
	// unlink runs under t.mu by design: the budget-vs-gauge invariant needs
	// the reclaim and the accounting to be one atomic step (a new restore
	// flight for this id also can't register without t.mu), and unlinks are
	// metadata ops — the full-file IO (snapshot writes) stays off this lock.
	if err := os.Remove(victim.path); err != nil && !os.IsNotExist(err) {
		return false
	}
	t.diskBytes -= victim.bytes
	if victimClass == classDemote {
		// Cache drop: the entry survives remote-only; restores fall through
		// to the blob tier. Tenant spill accounting keeps charging the blob
		// copy (same content), so nothing is released here.
		victim.path, victim.local = "", false
		t.blobDemotions.Add(1)
		return true
	}
	delete(t.index, victimID)
	ten := TenantOf(victimID)
	t.mem.adjustSpill(ten, -victim.bytes)
	if victimClass == classLoss {
		// The session existed only on disk: dropping its file forgets it.
		// Release the tenant's ownership charge and make the loss visible.
		t.mem.adjustOwned(ten, -1, -victim.charged)
		t.mem.chargeDiskEviction(ten)
		t.diskEvictions.Add(1)
		if t.onDiskEvict != nil {
			t.onDiskEvict(victimID)
		}
	}
	return true
}

// gcLoop runs gcOnce every gcInterval until stop closes.
func (t *Tiered) gcLoop(stop <-chan struct{}) {
	defer t.wg.Done()
	tick := time.NewTicker(t.gcInterval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			t.gcOnce()
		}
	}
}

// gcOnce is one age-based GC sweep: orphaned session files (unindexed —
// left by crashes, or by long-deleted sessions whose unlink failed) older
// than gcAge and stale temp files are removed, the orphan-byte share of the
// spill_dir_bytes gauge is refreshed from what remains, and the disk budget
// is re-enforced in case orphans pushed the gauge over it.
func (t *Tiered) gcOnce() {
	entries, err := os.ReadDir(t.dir)
	if err != nil {
		return
	}
	now := time.Now()
	tmpAge := t.gcAge
	if tmpAge < tmpFloor {
		tmpAge = tmpFloor
	}
	type fileInfo struct {
		name string
		size int64
		age  time.Duration
	}
	var files []fileInfo
	for _, de := range entries {
		if de.IsDir() || strings.HasPrefix(de.Name(), spillTmp) {
			// In-flight temps are fresh; stale ones are crash leftovers.
			// Temps are never part of the gauge either way.
			if !de.IsDir() {
				if info, err := de.Info(); err == nil && now.Sub(info.ModTime()) >= tmpAge {
					if t.faultAt("gc.unlink") == nil && os.Remove(filepath.Join(t.dir, de.Name())) == nil {
						t.gcRemovals.Add(1)
					}
				}
			}
			continue
		}
		if info, err := de.Info(); err == nil {
			files = append(files, fileInfo{de.Name(), info.Size(), now.Sub(info.ModTime())})
		}
	}
	// Classify against the index and refresh the orphan gauge in one
	// critical section, so a spill publishing concurrently is never treated
	// as an orphan of the same sweep that counts its index entry.
	t.mu.Lock()
	indexed := make(map[string]bool, len(t.index))
	for _, e := range t.index {
		if e.local {
			indexed[filepath.Base(e.path)] = true
		}
	}
	var orphanBytes int64
	var remove []string
	for _, fi := range files {
		if indexed[fi.name] {
			continue
		}
		if strings.HasSuffix(fi.name, spillExt) && fi.age >= t.gcAge {
			remove = append(remove, fi.name)
			continue
		}
		orphanBytes += fi.size
	}
	t.orphanBytes = orphanBytes
	if t.maxDiskBytes > 0 {
		for t.diskBytes+t.orphanBytes > t.maxDiskBytes {
			if !t.evictSpillFileLocked("") {
				break
			}
		}
	}
	t.mu.Unlock()
	for _, name := range remove {
		if t.faultAt("gc.unlink") == nil && os.Remove(filepath.Join(t.dir, name)) == nil {
			t.gcRemovals.Add(1)
		}
	}
	// Blob pass: retry tombstoned deletes until they stick and re-push local
	// files whose upload failed, so the shared tier converges on the truth.
	t.blobMaintain()
}
