package store

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// The spill-tier lifecycle manager: the write-behind queue that snapshots
// dirty sessions eagerly (so evictions drop resident copies instead of
// paying file IO under the victim's lock), the coalescing debounce that
// batches a dense mutation stream into one delta per N updates or quiet
// period, the disk-budget evictor that keeps the spill directory under
// -spill-max-bytes, and the age-based GC that sweeps orphaned leftovers.
// All state lives on Tiered; this file owns the background machinery.

// tmpFloor is the minimum age before the GC may touch a temp file: temps
// younger than this may be an in-flight spill.
const tmpFloor = time.Minute

// debEntry tracks one session sitting in the coalescing debounce: how many
// updates have accumulated since its last scheduled spill and when the most
// recent one arrived. Guarded by qmu.
type debEntry struct {
	sess  *Session
	count int
	last  time.Time
}

// armWriteBehind installs the dirty-notification hook on a session before it
// is published, so every mutation (MarkDirtyLocked) schedules an eager
// background snapshot. Harmless when write-behind is disabled.
func (t *Tiered) armWriteBehind(sess *Session) {
	if t.spillOnEvict && t.queueLen > 0 {
		sess.notifyDirty = t.enqueueSpill
	}
}

// enqueueSpill schedules a background snapshot of the session. It never
// blocks (it is called under Session.Mu): when the queue is full the request
// is dropped and counted — backpressure — and the eviction path's
// synchronous fallback keeps the session safe (it always cuts from the
// CURRENT generation, so a dropped enqueue can never surface stale state).
// With coalescing configured, a mutation parks in the debounce until n
// updates accumulate (the quiet sweep handles the time axis); duplicate
// requests for a session already queued coalesce for free, because the
// worker cuts whatever the session holds at dequeue time.
func (t *Tiered) enqueueSpill(sess *Session) {
	if t.queue == nil {
		return
	}
	t.qmu.Lock()
	if t.qClosed || t.pending[sess.ID] {
		t.qmu.Unlock()
		return
	}
	if t.coalesceN > 1 || t.coalesceQuiet > 0 {
		d := t.debounce[sess.ID]
		if d == nil {
			d = &debEntry{}
			t.debounce[sess.ID] = d
		}
		d.sess = sess
		d.count++
		d.last = time.Now()
		if d.count < t.coalesceN {
			t.qmu.Unlock()
			return
		}
		delete(t.debounce, sess.ID)
	}
	t.offerLocked(sess)
	t.qmu.Unlock()
}

// offerLocked makes the non-blocking queue send. Caller holds qmu and has
// already checked qClosed and pending.
func (t *Tiered) offerLocked(sess *Session) {
	select {
	case t.queue <- sess:
		t.pending[sess.ID] = true
	default:
		t.queueFull.Add(1)
	}
}

// requeue re-schedules a session whose background publish lost the chain
// race, bypassing the debounce (the batch already waited its turn once).
// Called under Session.Mu like enqueueSpill.
func (t *Tiered) requeue(sess *Session) {
	if t.queue == nil {
		return
	}
	t.qmu.Lock()
	if !t.qClosed && !t.pending[sess.ID] {
		t.offerLocked(sess)
	}
	t.qmu.Unlock()
}

// queueDepth reports the write-behind backlog (debounced + queued +
// in-flight).
func (t *Tiered) queueDepth() int {
	t.qmu.Lock()
	n := len(t.pending) + len(t.debounce)
	t.qmu.Unlock()
	return n + int(t.inflight.Load())
}

// startLifecycle launches the write-behind workers, the coalescing quiet
// sweep, and, when configured, the GC sweep.
func (t *Tiered) startLifecycle() {
	needQuiet := t.spillOnEvict && t.queueLen > 0 && t.coalesceQuiet > 0
	if t.gcInterval > 0 || needQuiet {
		t.stopBG = make(chan struct{})
	}
	if t.spillOnEvict && t.queueLen > 0 {
		t.queue = make(chan *Session, t.queueLen)
		for i := 0; i < t.workers; i++ {
			t.wg.Add(1)
			go t.spillWorker()
		}
		if needQuiet {
			t.wg.Add(1)
			go t.coalesceLoop(t.stopBG)
		}
	}
	if t.gcInterval > 0 {
		t.wg.Add(1)
		go t.gcLoop(t.stopBG)
	}
}

// stopLifecycle stops the background loops and closes the queue, then waits
// for the workers to flush the remaining backlog — the drain ordering:
// everything the queue accepted is on disk before Close snapshots
// stragglers (sessions still parked in the debounce are among those
// stragglers; Close's synchronous drain covers them). Idempotent.
func (t *Tiered) stopLifecycle() {
	t.qmu.Lock()
	if !t.qClosed {
		t.qClosed = true
		if t.stopBG != nil {
			close(t.stopBG)
		}
		if t.queue != nil {
			close(t.queue)
		}
	}
	t.qmu.Unlock()
	t.wg.Wait()
}

// spillWorker drains the write-behind queue. Each dequeued session is CUT —
// counters and the O(batch) deletion-log copy — under its own lock, but
// serialized and published (temp write, fsync, rename) strictly after the
// lock is released: a mutation-heavy session never blocks its readers and
// writers on snapshot serialization or disk IO. The generation
// captured at the cut makes the split safe — a publish that loses the chain
// race to a newer synchronous spill is discarded by the guard and the
// session is re-queued, so the background copy converges on the latest
// state without ever masking it. Sessions that left the store (evicted with
// a synchronous spill, or deleted) are skipped via the gone flag; clean
// sessions whose chain is current are a no-op inside cutLocked.
func (t *Tiered) spillWorker() {
	defer t.wg.Done()
	for sess := range t.queue {
		t.inflight.Add(1)
		t.qmu.Lock()
		delete(t.pending, sess.ID)
		t.qmu.Unlock()
		var cut *spillCut
		var needPush bool
		var err error
		sess.Mu.Lock()
		if !sess.gone.Load() {
			cut, needPush, err = t.cutLocked(sess)
		}
		sess.Mu.Unlock()
		if needPush {
			// Clean chain whose blob upload previously failed: heal it here,
			// strictly after releasing Session.Mu — the upload never runs
			// under the session lock.
			_ = t.blobPush(sess.ID)
		}
		if err == nil && cut != nil {
			wrote, perr := t.publishCut(cut)
			if perr == nil && wrote {
				t.writeBehind.Add(1)
			} else if errors.Is(perr, errStaleSpill) {
				sess.Mu.Lock()
				if !sess.gone.Load() && sess.Dirty() {
					t.requeue(sess)
				}
				sess.Mu.Unlock()
			}
		}
		t.inflight.Add(-1)
	}
}

// coalesceLoop periodically flushes debounced sessions whose quiet period
// elapsed without reaching the update threshold.
func (t *Tiered) coalesceLoop(stop <-chan struct{}) {
	defer t.wg.Done()
	period := t.coalesceQuiet / 2
	if period < 5*time.Millisecond {
		period = 5 * time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case now := <-tick.C:
			t.flushQuiet(now)
		}
	}
}

// flushQuiet promotes every debounced session that has been quiet for the
// configured period onto the spill queue.
func (t *Tiered) flushQuiet(now time.Time) {
	t.qmu.Lock()
	for id, d := range t.debounce {
		if now.Sub(d.last) < t.coalesceQuiet {
			continue
		}
		delete(t.debounce, id)
		if !t.qClosed && !t.pending[id] {
			t.offerLocked(d.sess)
		}
	}
	t.qmu.Unlock()
}

// Flush blocks until the write-behind queue has drained and no background
// snapshot is in flight — a quiescence point for tests and for callers that
// want eager durability without closing the store (Close flushes
// implicitly). Debounced sessions are promoted first so a flush cannot wait
// on a quiet timer.
func (t *Tiered) Flush() {
	t.qmu.Lock()
	for id, d := range t.debounce {
		delete(t.debounce, id)
		if !t.qClosed && !t.pending[id] {
			t.offerLocked(d.sess)
		}
	}
	t.qmu.Unlock()
	for t.queueDepth() > 0 {
		time.Sleep(time.Millisecond)
	}
}

// reserveDiskLocked admits size new spill-file bytes under the disk budget,
// evicting least-recently-used spill chains (never keepID's) until the new
// file fits. It reports false — charging nothing — when the directory
// cannot be shrunk enough; the second result distinguishes WHY: true means
// every remaining candidate is pinned (clean residents' only copies,
// in-flight restores or compactions) — transient pressure the caller can
// surface as a typed 503 — false means an unlink genuinely failed or only
// unreclaimable orphans remain. Callers hold t.mu.
func (t *Tiered) reserveDiskLocked(size int64, keepID string) (bool, bool) {
	if t.maxDiskBytes > 0 {
		for t.diskBytes+t.orphanBytes+size > t.maxDiskBytes {
			ok, pinned := t.evictSpillFileLocked(keepID)
			if !ok {
				return false, pinned
			}
		}
	}
	t.diskBytes += size
	return true, false
}

// evictSpillFileLocked removes one local spill chain (base + delta
// segments) to reclaim disk, in preference order of what the drop costs:
//
//   - demotions first: chains whose entry is blob-backed are pure cache
//     drops — the entry survives remote-only, nothing is lost;
//   - then warm backups of DIRTY resident sessions: their rewrite is already
//     owed, so dropping the stale chain costs nothing;
//   - then disk-only chains in LRU order, whose removal loses the session
//     and is charged to its tenant as a disk eviction.
//
// Clean residents' chains WITHOUT blob backing are pinned — a concurrent
// eviction may at any moment decide "clean and spilled → drop the resident
// copy" on the strength of that chain, so reclaiming it could strand the
// session in zero tiers (with blob backing the entry survives the demotion,
// so the same decision stays safe). Ids with an in-flight restore or
// compaction are skipped for the same reason. The second result reports
// whether the failure to find a victim was pinning (every candidate
// skipped) as opposed to an empty index or a failed unlink. Callers hold
// t.mu.
func (t *Tiered) evictSpillFileLocked(keepID string) (bool, bool) {
	const (
		classDemote = iota // blob-backed: free cache drop
		classWarm          // dirty resident's stale backup: rewrite owed
		classLoss          // disk-only, no blob: the session dies with the chain
	)
	var (
		victimID    string
		victim      *spillEntry
		victimClass int
		skipped     int
	)
	for id, e := range t.index {
		if id == keepID || !e.local {
			continue
		}
		if _, restoring := t.flights[id]; restoring {
			skipped++ // a restore is reading this chain right now
			continue
		}
		if t.compacting[id] {
			skipped++ // a compaction is splicing it; transient
			continue
		}
		class := classLoss
		if e.remote {
			class = classDemote
		} else {
			sess, resident := t.mem.peek(id)
			if resident {
				if !sess.Dirty() {
					skipped++ // pinned: the eviction path relies on this chain
					continue
				}
				class = classWarm
			}
		}
		better := victim == nil || class < victimClass ||
			(class == victimClass && e.lastUsed < victim.lastUsed)
		if better {
			victimID, victim, victimClass = id, e, class
		}
	}
	if victim == nil {
		return false, skipped > 0
	}
	// Unlink BEFORE forgetting: if the disk refuses to give the bytes back
	// (EACCES/EIO), dropping the session would forget state without
	// reclaiming anything — and the caller's loop would then amplify one
	// sick filesystem into mass session loss. Report no progress instead;
	// the triggering spill fails and every session stays where it is. The
	// unlink runs under t.mu by design: the budget-vs-gauge invariant needs
	// the reclaim and the accounting to be one atomic step (a new restore
	// flight for this id also can't register without t.mu), and unlinks are
	// metadata ops — the full-file IO (snapshot writes) stays off this lock.
	// The base anchors the chain, so it is unlinked first and aborts the
	// eviction on failure; a delta segment whose unlink fails afterwards is
	// already useless (its base is gone) and just moves to the orphan share
	// for the GC.
	if err := os.Remove(victim.path); err != nil && !os.IsNotExist(err) {
		return false, false
	}
	t.diskBytes -= victim.bytes
	for i := range victim.deltas {
		sg := &victim.deltas[i]
		t.diskBytes -= sg.bytes
		if err := os.Remove(sg.path); err != nil && !os.IsNotExist(err) {
			t.orphanBytes += sg.bytes
		}
	}
	if victimClass == classDemote {
		// Cache drop: the entry survives remote-only; restores fall through
		// to the blob tier. Tenant spill accounting keeps charging the blob
		// copy (same content), so nothing is released here.
		victim.path, victim.local, victim.deltas = "", false, nil
		t.blobDemotions.Add(1)
		return true, false
	}
	delete(t.index, victimID)
	ten := TenantOf(victimID)
	t.mem.adjustSpill(ten, -victim.spillCharged)
	if victimClass == classLoss {
		// The session existed only on disk: dropping its chain forgets it.
		// Release the tenant's ownership charge and make the loss visible.
		t.mem.adjustOwned(ten, -1, -victim.charged)
		t.mem.chargeDiskEviction(ten)
		t.diskEvictions.Add(1)
		if t.onDiskEvict != nil {
			t.onDiskEvict(victimID)
		}
	}
	return true, false
}

// gcLoop runs gcOnce every gcInterval until stop closes.
func (t *Tiered) gcLoop(stop <-chan struct{}) {
	defer t.wg.Done()
	tick := time.NewTicker(t.gcInterval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			t.gcOnce()
		}
	}
}

// gcOnce is one age-based GC sweep: orphaned session and delta files
// (unindexed — left by crashes, or by unlink failures) older than gcAge and
// stale temp files are removed, files belonging to tombstoned sessions are
// removed regardless of age (and the tombstone's local side resolved once
// none remain), the orphan-byte share of the spill_dir_bytes gauge is
// refreshed from what remains, and the disk budget is re-enforced in case
// orphans pushed the gauge over it. The sweep ends with tombstone-log
// compaction and the blob maintenance pass.
func (t *Tiered) gcOnce() {
	entries, err := os.ReadDir(t.dir)
	if err != nil {
		return
	}
	now := time.Now()
	tmpAge := t.gcAge
	if tmpAge < tmpFloor {
		tmpAge = tmpFloor
	}
	// Snapshot the tombstones whose local side is unresolved: their files
	// are swept on sight, and headers must be read (off-lock, below) to know
	// which files are theirs.
	t.mu.Lock()
	tombPending := make(map[string]bool)
	for id, ts := range t.tombstones {
		if !ts.localClean {
			tombPending[id] = true
		}
	}
	t.mu.Unlock()
	type fileInfo struct {
		name string
		size int64
		age  time.Duration
		id   string // session the file claims, when headers were read
	}
	var files []fileInfo
	for _, de := range entries {
		name := de.Name()
		if de.IsDir() || strings.HasPrefix(name, spillTmp) {
			// In-flight temps are fresh; stale ones are crash leftovers.
			// Temps are never part of the gauge either way.
			if !de.IsDir() {
				if info, err := de.Info(); err == nil && now.Sub(info.ModTime()) >= tmpAge {
					if t.faultAt("gc.unlink") == nil && os.Remove(filepath.Join(t.dir, name)) == nil {
						t.gcRemovals.Add(1)
					}
				}
			}
			continue
		}
		if name == tombstoneFile {
			continue // the sidecar log is never an orphan
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		fi := fileInfo{name: name, size: info.Size(), age: now.Sub(info.ModTime())}
		if len(tombPending) > 0 {
			path := filepath.Join(t.dir, name)
			switch {
			case strings.HasSuffix(name, spillExt):
				if f, err := os.Open(path); err == nil {
					if _, env, err := readSpillEnvelope(f); err == nil {
						fi.id = env.id
					}
					f.Close()
				}
			case strings.HasSuffix(name, deltaExt):
				if hdr, err := readDeltaHeaderFile(path); err == nil {
					fi.id = hdr.id
				}
			}
		}
		files = append(files, fi)
	}
	// Classify against the index and refresh the orphan gauge in one
	// critical section, so a spill publishing concurrently is never treated
	// as an orphan of the same sweep that counts its index entry.
	t.mu.Lock()
	indexed := make(map[string]bool, len(t.index))
	for _, e := range t.index {
		for _, pb := range e.localPaths() {
			indexed[filepath.Base(pb.path)] = true
		}
	}
	var orphanBytes int64
	var remove []string
	tombRemain := make(map[string]int) // files still on disk per pending tombstone
	var tombFiles []fileInfo
	for _, fi := range files {
		if indexed[fi.name] {
			continue
		}
		if fi.id != "" && tombPending[fi.id] {
			// Tombstoned session's leftover: sweep on sight, no age floor.
			tombRemain[fi.id]++
			tombFiles = append(tombFiles, fi)
			continue
		}
		sessFile := strings.HasSuffix(fi.name, spillExt) || strings.HasSuffix(fi.name, deltaExt)
		if sessFile && fi.age >= t.gcAge {
			remove = append(remove, fi.name)
			continue
		}
		orphanBytes += fi.size
	}
	t.orphanBytes = orphanBytes
	if t.maxDiskBytes > 0 {
		for t.diskBytes+t.orphanBytes > t.maxDiskBytes {
			if ok, _ := t.evictSpillFileLocked(""); !ok {
				break
			}
		}
	}
	t.mu.Unlock()
	for _, name := range remove {
		if t.faultAt("gc.unlink") == nil && os.Remove(filepath.Join(t.dir, name)) == nil {
			t.gcRemovals.Add(1)
		}
	}
	for _, fi := range tombFiles {
		if t.faultAt("gc.unlink") == nil && os.Remove(filepath.Join(t.dir, fi.name)) == nil {
			t.gcRemovals.Add(1)
			tombRemain[fi.id]--
		}
	}
	// A pending tombstone with no surviving local file is locally clean.
	for id := range tombPending {
		if tombRemain[id] == 0 {
			t.tombstoneResolve(id, tombLocal)
		}
	}
	t.compactTombLog()
	// Blob pass: retry tombstoned deletes until they stick and re-push local
	// files whose upload failed, so the shared tier converges on the truth.
	t.blobMaintain()
}
