package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestFairShareEviction(t *testing.T) {
	m := NewMemory(WithMaxSessions(4))
	// mouse's single session is the global LRU; hog then fills the tier.
	if err := m.Put(trainSession(t, "mouse/sess-1", 1)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(time.Millisecond) // strictly order the LRU clocks
	for i := 1; i <= 3; i++ {
		if err := m.Put(trainSession(t, fmt.Sprintf("hog/sess-%d", i), int64(i+1))); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	// The 5th registration must evict from hog (3/4 of the working set),
	// not mouse's globally-oldest session.
	if err := m.Put(trainSession(t, "hog/sess-4", 9)); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Get("mouse/sess-1"); !ok {
		t.Fatal("fair-share eviction took the small tenant's only session instead of the hot tenant's LRU")
	}
	if _, ok := m.Get("hog/sess-1"); ok {
		t.Fatal("hot tenant's LRU session should have been the victim")
	}
	st := m.Stats()
	if ts := st.Tenants["hog"]; ts.BudgetEvictions != 1 {
		t.Fatalf("hog stats %+v, want the eviction charged to it", ts)
	}
	if ts := st.Tenants["mouse"]; ts.BudgetEvictions != 0 {
		t.Fatalf("mouse stats %+v, want no evictions", ts)
	}
}

// spillFileSize measures one session's spill-file footprint. The probe ID
// must have the same length as the test's IDs: the envelope embeds it, so
// file sizes are uniform only for same-shape datasets AND same-length IDs.
func spillFileSize(t *testing.T, id string) int64 {
	t.Helper()
	ti := newTestTiered(t, t.TempDir(), NewMemory())
	if err := ti.Put(trainSession(t, id, 1)); err != nil {
		t.Fatal(err)
	}
	ti.Flush()
	size := ti.Stats().SpillDirBytes
	if size <= 0 {
		t.Fatal("probe spill produced no file")
	}
	return size
}

func TestTieredDiskBudgetEvictsLRUFiles(t *testing.T) {
	fs := spillFileSize(t, "sess-0")
	dir := t.TempDir()
	var dropped []string
	ti := newTestTiered(t, dir, NewMemory(WithMaxSessions(1)),
		WithSpillMaxBytes(fs*2+fs/2)) // room for two files, not three
	ti.onDiskEvict = func(id string) { dropped = append(dropped, id) }

	for i := 1; i <= 4; i++ {
		if err := ti.Put(trainSession(t, fmt.Sprintf("sess-%d", i), int64(i))); err != nil {
			t.Fatal(err)
		}
		ti.Flush()
		if got := ti.Stats().SpillDirBytes; got > fs*2+fs/2 {
			t.Fatalf("after session %d the spill dir holds %d bytes, budget %d", i, got, fs*2+fs/2)
		}
	}
	// Four sessions, room for two files + one resident: the two oldest
	// disk-only sessions were dropped, LRU first.
	st := ti.Stats()
	if st.DiskEvictions != 2 {
		t.Fatalf("disk evictions = %d, want 2 (dropped: %v)", st.DiskEvictions, dropped)
	}
	if len(dropped) != 2 || dropped[0] != "sess-1" || dropped[1] != "sess-2" {
		t.Fatalf("dropped %v, want [sess-1 sess-2] in LRU order", dropped)
	}
	if _, ok := ti.Get("sess-1"); ok {
		t.Fatal("disk-evicted session must be gone")
	}
	if _, ok := ti.Get("sess-3"); !ok {
		t.Fatal("surviving spill file must restore")
	}
	// The dropped sessions released their ownership: the anonymous tenant
	// owns exactly the two survivors plus the resident.
	if u := ti.TenantUsage(""); u.Sessions() != 2 {
		// sess-3 restored above evicted sess-4's resident copy (preserved on
		// disk); owned = sess-3 + sess-4.
		t.Fatalf("anonymous usage %+v, want 2 owned sessions", u)
	}
}

// TestTieredDiskBudgetPrefersWarmBackups: when the budget forces a file
// eviction, a warm backup (session also resident) goes before any disk-only
// session, because dropping it loses nothing.
func TestTieredDiskBudgetPrefersWarmBackups(t *testing.T) {
	fs := spillFileSize(t, "sess-0")
	dir := t.TempDir()
	var dropped []string
	ti := newTestTiered(t, dir, NewMemory(), WithSpillMaxBytes(fs*2+fs/2))
	ti.onDiskEvict = func(id string) { dropped = append(dropped, id) }

	// Three resident sessions, eagerly snapshotted: the third publish must
	// evict a warm backup (all are warm), not drop a session.
	for i := 1; i <= 3; i++ {
		if err := ti.Put(trainSession(t, fmt.Sprintf("sess-%d", i), int64(i))); err != nil {
			t.Fatal(err)
		}
		ti.Flush()
	}
	st := ti.Stats()
	if st.DiskEvictions != 0 || len(dropped) != 0 {
		t.Fatalf("warm-backup eviction dropped sessions: %v (stats %+v)", dropped, st)
	}
	if st.SpillDirBytes > fs*2+fs/2 {
		t.Fatalf("spill dir %d bytes over the %d budget", st.SpillDirBytes, fs*2+fs/2)
	}
	for i := 1; i <= 3; i++ {
		if _, ok := ti.Get(fmt.Sprintf("sess-%d", i)); !ok {
			t.Fatalf("sess-%d lost despite only warm backups being evicted", i)
		}
	}
}

func TestTieredPerTenantSpillCap(t *testing.T) {
	fs := spillFileSize(t, "acme/sess-0")
	limits := map[string]TenantLimits{"acme": {MaxSpillBytes: fs + fs/2}}
	dir := t.TempDir()
	ti := newTestTiered(t, dir, NewMemory(
		WithMaxSessions(1),
		WithTenantLimits(limitsMap(limits)),
	))
	if err := ti.Put(trainSession(t, "acme/sess-1", 1)); err != nil {
		t.Fatal(err)
	}
	ti.Flush() // acme now holds one spill file, under its cap
	if u := ti.TenantUsage("acme"); u.SpillFileBytes != fs {
		t.Fatalf("acme spill usage %d, want %d", u.SpillFileBytes, fs)
	}

	// A second session is admitted (usage under the cap) but its spill would
	// cross the cap: the write-behind attempt is rejected, and the eviction
	// that later needs to preserve it drops it instead of overshooting.
	if err := ti.Put(trainSession(t, "acme/sess-2", 2)); err != nil {
		t.Fatal(err)
	}
	ti.Flush()
	if u := ti.TenantUsage("acme"); u.SpillFileBytes > limits["acme"].MaxSpillBytes {
		t.Fatalf("acme spill usage %d exceeds its %d cap", u.SpillFileBytes, limits["acme"].MaxSpillBytes)
	}
	if err := ti.Put(trainSession(t, "acme/sess-3", 3)); err != nil {
		t.Fatal(err) // evicts sess-2, whose spill the cap rejects → dropped
	}
	if _, ok := ti.Get("acme/sess-2"); ok {
		t.Fatal("sess-2's spill was over the cap; the eviction should have dropped it")
	}
	if _, ok := ti.Get("acme/sess-1"); !ok {
		t.Fatal("sess-1's file is under the cap and must restore")
	}

	// Lowering the cap below current usage turns away new registrations
	// with the typed spill_bytes dimension (the service's 507).
	limits["acme"] = TenantLimits{MaxSpillBytes: fs / 2}
	err := ti.Put(trainSession(t, "acme/sess-4", 4))
	var qe *QuotaError
	if !errors.As(err, &qe) || qe.Dimension != DimensionSpillBytes {
		t.Fatalf("Put over the spill cap returned %v, want a %s *QuotaError", err, DimensionSpillBytes)
	}
}

// TestTieredWriteBehindEvictionDrops is the tentpole behavior: with the
// write-behind queue keeping snapshots current, evictions never pay spill IO
// — every spill in the run was performed by the background worker.
func TestTieredWriteBehindEvictionDrops(t *testing.T) {
	dir := t.TempDir()
	ti := newTestTiered(t, dir, NewMemory(WithMaxSessions(1)))
	a := trainSession(t, "sess-1", 1)
	wantVec := applyDeletion(t, a, []int{2, 4})
	if err := ti.Put(a); err != nil {
		t.Fatal(err)
	}
	ti.Flush() // eager snapshot, before any eviction pressure
	if err := ti.Put(trainSession(t, "sess-2", 2)); err != nil {
		t.Fatal(err) // evicts clean sess-1: a drop, not a write
	}
	ti.Flush()
	st := ti.Stats()
	if st.Spills != st.WriteBehindSpills {
		t.Fatalf("%d of %d spills ran synchronously on the eviction path; write-behind should cover all",
			st.Spills-st.WriteBehindSpills, st.Spills)
	}
	if st.Spills == 0 {
		t.Fatal("nothing was ever spilled")
	}
	got, ok := ti.Get("sess-1")
	if !ok {
		t.Fatal("dropped session must restore from its write-behind snapshot")
	}
	got.Mu.Lock()
	vec := got.Model.Vec()
	nDel := len(got.Deleted)
	got.Mu.Unlock()
	if nDel != 2 {
		t.Fatalf("restored deletion log has %d entries, want 2", nDel)
	}
	for i := range vec {
		if vec[i] != wantVec[i] {
			t.Fatalf("restored model differs at %d", i)
		}
	}
}

// TestTieredWriteBehindBackpressure gates the worker on a fault hook to fill
// the queue: overflowing enqueues are dropped and counted, the session stays
// safe (the Close drain snapshots it), and nothing deadlocks.
func TestTieredWriteBehindBackpressure(t *testing.T) {
	dir := t.TempDir()
	ti := newTestTiered(t, dir, NewMemory(), WithWriteBehind(1, 1))
	gate := make(chan struct{})
	ti.fault = func(point string) error {
		if point == "spill.create-temp" {
			<-gate // stall the worker inside its first spill
		}
		return nil
	}
	sessions := make([]*Session, 3)
	for i := range sessions {
		sessions[i] = trainSession(t, fmt.Sprintf("sess-%d", i+1), int64(i+1))
		if err := ti.Put(sessions[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Worker is stalled on the first session; the depth-1 queue holds the
	// second; the third enqueue must have been dropped by backpressure.
	deadline := time.Now().Add(5 * time.Second)
	for ti.queueFull.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("backpressure drop never happened")
		}
		time.Sleep(time.Millisecond)
	}
	close(gate) // the hook now falls through immediately; workers still read it
	if err := ti.Close(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// Every session — including the one whose enqueue was dropped — is on
	// disk after the drain.
	ti2 := newTestTiered(t, dir, NewMemory())
	for i := range sessions {
		if _, ok := ti2.Get(fmt.Sprintf("sess-%d", i+1)); !ok {
			t.Fatalf("sess-%d lost after backpressure + drain", i+1)
		}
	}
}

// TestTieredGCRemovesOrphans: unindexed session files and stale temps are
// swept once old enough, and the gauge self-heals to match the directory.
func TestTieredGCRemovesOrphans(t *testing.T) {
	dir := t.TempDir()
	ti := newTestTiered(t, dir, NewMemory(), WithSpillGC(50*time.Millisecond, 0))
	if err := ti.Put(trainSession(t, "sess-1", 1)); err != nil {
		t.Fatal(err)
	}
	ti.Flush()
	if err := os.WriteFile(filepath.Join(dir, "orphan"+spillExt), []byte("orphaned bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	ti.gcOnce()
	// Too young: counted in the gauge, not removed.
	st := ti.Stats()
	if st.GCRemovals != 0 {
		t.Fatalf("gc removed a too-young orphan (removals %d)", st.GCRemovals)
	}
	if scan := readDirBytes(t, dir); st.SpillDirBytes != scan {
		t.Fatalf("gauge %d != scan %d with an orphan present", st.SpillDirBytes, scan)
	}
	time.Sleep(60 * time.Millisecond)
	ti.gcOnce()
	st = ti.Stats()
	if st.GCRemovals != 1 {
		t.Fatalf("gc removals = %d, want 1", st.GCRemovals)
	}
	if scan := readDirBytes(t, dir); st.SpillDirBytes != scan {
		t.Fatalf("gauge %d != scan %d after the sweep", st.SpillDirBytes, scan)
	}
	// The indexed spill file was never touched.
	if _, ok := ti.Get("sess-1"); !ok {
		t.Fatal("gc removed an indexed spill file")
	}
}
