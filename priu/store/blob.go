package store

import (
	"errors"
	"fmt"
	"io"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// The blob tier: a third storage layer under Tiered speaking an S3/GCS-style
// object API. When a Tiered store is given a BlobStore (WithBlobStore), the
// local spill directory becomes a read-through/write-behind cache of the
// shared tier: every published spill file is pushed to the blob store, cold
// misses fall through to it, and the disk-budget evictor may demote a
// blob-backed local file to a pure cache drop instead of a session loss.
// Several priuserve replicas pointing at one blob store share every session
// — the durability substrate of the fleet (priu/cluster).

// ErrBlobNotFound is returned by BlobStore.Get for a key that does not exist.
var ErrBlobNotFound = errors.New("store: blob not found")

// BlobInfo describes one stored object.
type BlobInfo struct {
	Key     string
	Size    int64
	ModTime time.Time
}

// BlobStore is the object API of the shared spill tier. Keys are opaque
// strings (session storage IDs, which may contain "/"); values are spill-file
// envelopes. Put must be atomic: a reader never observes a torn object.
// Implementations must be safe for concurrent use.
type BlobStore interface {
	// Put stores the object under key, replacing any previous version.
	Put(key string, r io.Reader) error
	// Get opens the object for reading, returning its size. A missing key
	// returns ErrBlobNotFound.
	Get(key string) (io.ReadCloser, int64, error)
	// Delete removes the object. Deleting a missing key is not an error.
	Delete(key string) error
	// List returns the stored objects whose key starts with prefix
	// (prefix "" lists everything), in unspecified order.
	List(prefix string) ([]BlobInfo, error)
}

// FSBlob is a filesystem-backed BlobStore: one file per object in a flat
// directory, written as temp + rename so concurrent readers never see a torn
// object. Keys are query-escaped into file names, so namespaced session IDs
// ("tenant/sess-1") round-trip losslessly. It is the in-process
// implementation behind cmd/priublob and the single-machine fleet tests.
type FSBlob struct {
	dir string
}

// NewFSBlob opens (creating if needed) a filesystem-backed blob store rooted
// at dir.
func NewFSBlob(dir string) (*FSBlob, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating blob dir: %w", err)
	}
	return &FSBlob{dir: dir}, nil
}

// blobTmp prefixes in-flight temp files (skipped by List).
const blobTmp = "tmp-"

func (b *FSBlob) path(key string) string {
	return filepath.Join(b.dir, url.QueryEscape(key))
}

// Put implements BlobStore with the same temp-file + rename discipline as the
// local spill tier: a crash mid-put leaves an ignorable temp file, never a
// torn object.
func (b *FSBlob) Put(key string, r io.Reader) error {
	tmp, err := os.CreateTemp(b.dir, blobTmp+"*")
	if err != nil {
		return fmt.Errorf("store: creating blob temp file: %w", err)
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		_ = os.Remove(tmpName)
		return err
	}
	if _, err := io.Copy(tmp, r); err != nil {
		return fail(fmt.Errorf("store: writing blob %s: %w", key, err))
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, b.path(key)); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("store: publishing blob %s: %w", key, err)
	}
	return nil
}

// Get implements BlobStore.
func (b *FSBlob) Get(key string) (io.ReadCloser, int64, error) {
	f, err := os.Open(b.path(key))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, ErrBlobNotFound
		}
		return nil, 0, fmt.Errorf("store: opening blob %s: %w", key, err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	return f, info.Size(), nil
}

// Delete implements BlobStore.
func (b *FSBlob) Delete(key string) error {
	if err := os.Remove(b.path(key)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: deleting blob %s: %w", key, err)
	}
	return nil
}

// List implements BlobStore.
func (b *FSBlob) List(prefix string) ([]BlobInfo, error) {
	entries, err := os.ReadDir(b.dir)
	if err != nil {
		return nil, fmt.Errorf("store: listing blob dir: %w", err)
	}
	var out []BlobInfo
	for _, de := range entries {
		name := de.Name()
		if de.IsDir() || strings.HasPrefix(name, blobTmp) {
			continue
		}
		key, err := url.QueryUnescape(name)
		if err != nil || !strings.HasPrefix(key, prefix) {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		out = append(out, BlobInfo{Key: key, Size: info.Size(), ModTime: info.ModTime()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}
