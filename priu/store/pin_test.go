package store

import (
	"errors"
	"testing"
)

func TestPinnedSessionSurvivesBudgetEviction(t *testing.T) {
	m := NewMemory(WithMaxSessions(2))
	a, b, c := trainSession(t, "sess-1", 1), trainSession(t, "sess-2", 2), trainSession(t, "sess-3", 3)
	m.Put(a)
	m.Put(b)
	m.Touch("sess-1") // sess-2 would be the LRU victim...
	b.Pin()
	defer b.Unpin()
	m.Put(c) // ...but it is pinned, so sess-1 is evicted instead

	if _, ok := m.Get("sess-2"); !ok {
		t.Fatal("pinned session must survive budget eviction")
	}
	if _, ok := m.Get("sess-1"); ok {
		t.Fatal("unpinned LRU session should have been evicted instead")
	}

	// With everything pinned, enforcement rejects the registration with a
	// typed *PressureError (transient backpressure) rather than dropping
	// state under an active reader or growing the tier without bound.
	b2, _ := m.Get("sess-2")
	c2, _ := m.Get("sess-3")
	b2.Pin()
	c2.Pin()
	defer b2.Unpin()
	d := trainSession(t, "sess-4", 4)
	err := m.Put(d)
	var pe *PressureError
	if !errors.As(err, &pe) {
		t.Fatalf("Put with a fully pinned budget = %v, want *PressureError", err)
	}
	if pe.Dimension != "sessions" || pe.Pinned != 2 {
		t.Fatalf("PressureError = %+v, want sessions dimension with 2 pinned", pe)
	}
	for _, id := range []string{"sess-2", "sess-3"} {
		if _, ok := m.Get(id); !ok {
			t.Fatalf("session %s dropped while pinned", id)
		}
	}
	if _, ok := m.Get("sess-4"); ok {
		t.Fatal("rejected registration must not be admitted")
	}
	if got := m.Stats().Resident; got != 2 {
		t.Fatalf("resident = %d, want 2 (rejected Put fully undone)", got)
	}
	if got := m.TenantUsage("").Sessions(); got != 2 {
		// The undo must leave the ownership accounting balanced: the two
		// surviving pinned sessions, nothing from the rejected one.
		t.Fatalf("anonymous ownership = %d after undo, want 2", got)
	}

	// Once a pin releases, the same registration is admitted (the pressure
	// was transient).
	c2.Unpin()
	if err := m.Put(trainSession(t, "sess-4", 4)); err != nil {
		t.Fatalf("Put after unpin = %v, want success", err)
	}

	// An explicit Delete ignores pins: the client's instruction to forget
	// the session wins over an in-flight read.
	if !m.Delete("sess-2") {
		t.Fatal("explicit delete of a pinned session must succeed")
	}
	if _, ok := m.Get("sess-2"); ok {
		t.Fatal("deleted session should be gone despite the pin")
	}
}
