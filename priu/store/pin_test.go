package store

import "testing"

func TestPinnedSessionSurvivesBudgetEviction(t *testing.T) {
	m := NewMemory(WithMaxSessions(2))
	a, b, c := trainSession(t, "sess-1", 1), trainSession(t, "sess-2", 2), trainSession(t, "sess-3", 3)
	m.Put(a)
	m.Put(b)
	m.Touch("sess-1") // sess-2 would be the LRU victim...
	b.Pin()
	defer b.Unpin()
	m.Put(c) // ...but it is pinned, so sess-1 is evicted instead

	if _, ok := m.Get("sess-2"); !ok {
		t.Fatal("pinned session must survive budget eviction")
	}
	if _, ok := m.Get("sess-1"); ok {
		t.Fatal("unpinned LRU session should have been evicted instead")
	}

	// With everything pinned, enforcement gives up (budget temporarily
	// exceeded) rather than dropping state under an active reader.
	b2, _ := m.Get("sess-2")
	c2, _ := m.Get("sess-3")
	b2.Pin()
	c2.Pin()
	defer b2.Unpin()
	defer c2.Unpin()
	d := trainSession(t, "sess-4", 4)
	d.Pin()
	defer d.Unpin()
	if err := m.Put(d); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"sess-2", "sess-3", "sess-4"} {
		if _, ok := m.Get(id); !ok {
			t.Fatalf("session %s dropped while pinned", id)
		}
	}
	if got := m.Stats().Resident; got != 3 {
		t.Fatalf("resident = %d, want 3 (budget exceeded while pinned)", got)
	}

	// An explicit Delete ignores pins: the client's instruction to forget
	// the session wins over an in-flight read.
	if !m.Delete("sess-2") {
		t.Fatal("explicit delete of a pinned session must succeed")
	}
	if _, ok := m.Get("sess-2"); ok {
		t.Fatal("deleted session should be gone despite the pin")
	}
}
