// Package store is the session-storage layer of the PrIU deletion service:
// it owns where a serving session (training set + captured provenance +
// cumulative deletion log + current model) lives, while priu/service owns
// only the HTTP wire formats on top of it.
//
// Two implementations are provided:
//
//   - Memory: the hash-sharded in-memory tier with per-shard locks and an
//     optional LRU budget (max sessions / max resident bytes). Evictions
//     drop sessions.
//   - Tiered: wraps Memory with a log-structured disk tier. A session's
//     disk copy is a chain: one self-contained base snapshot plus ordered
//     delta segments, each carrying only the deletion-log suffix one spill
//     appended — so a mutation-heavy stream pays O(batch) bytes per spill,
//     and background compaction folds chains back into a single base by
//     byte splice. Every file lands content-addressed via an atomic
//     temp-file rename; restore replays base + deltas in one update call
//     — so honored deletions stay deleted — with singleflight so concurrent
//     touches of a cold session trigger exactly one restore. Forgotten
//     sessions leave persistent tombstones (a fsynced sidecar log replayed
//     at boot) so an acknowledged DELETE can never resurrect, even when
//     the crash beat the unlink or blob delete. Close snapshots every
//     dirty resident session, and NewTiered re-indexes the spill
//     directory, so a kill/restart loses nothing.
//
// Mutators (the service's deletion handlers) hold Session.Mu while applying
// an update and must re-fetch through Get when GoneLocked reports the copy
// they hold was evicted or deleted concurrently: the spill happened under the
// same lock, so the re-fetched (restored) session includes every previously
// honored deletion.
package store

import (
	"fmt"
	"hash/fnv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/priu"
)

// Sessions are namespaced per tenant: the storage ID of a tenant-owned
// session is "tenant/wire-id", while the anonymous tenant's sessions keep
// their bare wire ID — so stores (and spill directories) written before
// multi-tenancy remain valid, and the tenant of a session survives tier
// moves and restarts without any envelope change.

// TenantOf returns the tenant that owns a storage ID ("" for the anonymous
// namespace).
func TenantOf(id string) string {
	if i := strings.LastIndexByte(id, '/'); i >= 0 {
		return id[:i]
	}
	return ""
}

// LocalID strips the tenant namespace from a storage ID, returning the wire
// session ID the owning tenant sees.
func LocalID(id string) string {
	if i := strings.LastIndexByte(id, '/'); i >= 0 {
		return id[i+1:]
	}
	return id
}

// TenantLimits is one tenant's storage quota (0 = unlimited).
type TenantLimits struct {
	// MaxSessions bounds the tenant's owned sessions across every tier.
	MaxSessions int
	// MaxBytes bounds the tenant's owned session bytes across every tier.
	MaxBytes int64
	// MaxSpillBytes bounds the tenant's spill-file bytes on disk. A spill
	// that would take the tenant over the cap is rejected (the eviction
	// drops the session instead of writing), and while the tenant sits at
	// or over the cap new registrations are rejected with a "spill_bytes"
	// *QuotaError until it deletes sessions.
	MaxSpillBytes int64
}

// LimitsFunc resolves a tenant's current quota. It is consulted on every
// registration, so hot-reloaded key files take effect without a restart.
type LimitsFunc func(tenant string) TenantLimits

// QuotaError reports a Put rejected because the session's tenant is at its
// quota. Unlike a global budget (which evicts), a tenant quota is a hard
// admission limit: the tenant must delete sessions (or have its quota
// raised) before registering more.
type QuotaError struct {
	Tenant    string
	Dimension string // "sessions", "bytes" or "spill_bytes"
	Used      int64  // usage across all tiers, including the rejected session
	Limit     int64
}

// DimensionSpillBytes is the QuotaError dimension of the per-tenant spill
// byte cap — a disk-side limit, which services report as 507 Insufficient
// Storage rather than 429.
const DimensionSpillBytes = "spill_bytes"

func (e *QuotaError) Error() string {
	return fmt.Sprintf("store: tenant %q at its %s quota (%d of %d)", e.Tenant, e.Dimension, e.Used, e.Limit)
}

// PressureError reports a Put rejected because the resident tier is over its
// budget and every evictable session is pinned by a long-running read — the
// store cannot make room without dropping state under an active stream.
// Unlike a quota (the tenant's problem, permanent until it deletes sessions)
// this is transient backpressure: services surface it as 503 with Retry-After
// and the registration should simply be retried once streams settle.
type PressureError struct {
	// Dimension is the exhausted budget: "sessions" or "bytes".
	Dimension string
	// Pinned counts the resident sessions held by long-running reads at the
	// time of the rejection.
	Pinned int
}

func (e *PressureError) Error() string {
	return fmt.Sprintf("store: resident %s budget exhausted and all %d evictable sessions are pinned", e.Dimension, e.Pinned)
}

// Session is one registered model with its captured provenance — the unit of
// storage. HTTP-facing request counters stay in the service; everything here
// is serving state that must survive tier moves.
type Session struct {
	ID        string
	Kind      string // priu family name ("linear", "logistic", ...)
	CreatedAt time.Time

	// Mu guards the mutable serving state below.
	Mu      sync.Mutex
	DS      priu.TrainingSet
	Upd     priu.Updater
	Model   *priu.Model // current model (after the latest deletion)
	Deleted []int       // cumulative deletion log

	// Updates / LastUpdateSeconds are per-session stats counters (guarded by
	// Mu); they ride along in spill files so restarts don't zero them.
	Updates           int64
	LastUpdateSeconds float64

	// footprint is the session's resident-memory charge (training data +
	// provenance), fixed at registration.
	footprint int64
	// lastUsed is a unix-nano timestamp of the latest access (LRU clock).
	lastUsed atomic.Int64
	// gen counts mutations: MarkDirtyLocked increments it with Mu held, so a
	// generation names one consistent cut of the serving state. persistedGen
	// is the newest generation the disk tier covers; the session is dirty
	// exactly when they differ. Both are atomics so the disk-budget evictor
	// can classify files without taking session locks under the index lock,
	// and so a publish that raced a newer one can never move persistedGen
	// backwards (persistUpTo is a CAS-max).
	gen          atomic.Int64
	persistedGen atomic.Int64
	// gone marks a copy that was evicted or deleted from the store: mutators
	// holding a gone session must re-fetch through Get. It is an atomic so
	// an off-lock publish can check liveness without acquiring Mu — a base
	// publish racing a delete must observe the flag and discard its cut.
	gone atomic.Bool
	// pins counts long-running readers (what-if evaluations, snapshot
	// exports) holding the session in the resident tier: the budget evictor
	// skips pinned sessions, and residency in turn pins the session's clean
	// spill file against the disk-budget evictor — so neither tier drops
	// state under an active stream. Explicit Delete ignores pins: a client
	// instruction to forget the session wins over an in-flight read.
	pins atomic.Int32
	// notifyDirty, when set (by the tiered store before the session is
	// published), is called by MarkDirtyLocked with Mu held — the
	// write-behind hook that schedules an eager background snapshot. It must
	// never block.
	notifyDirty func(*Session)
}

// NewSession builds a resident session. A nil model defaults to the updater's
// initial model; a non-empty deletion log (snapshot restore) comes with the
// model that already reflects it. New sessions start dirty: no disk tier has
// seen them yet.
func NewSession(id, kind string, ds priu.TrainingSet, upd priu.Updater, model *priu.Model, deleted []int) *Session {
	if model == nil {
		model = upd.Model()
	}
	sess := &Session{
		ID:        id,
		Kind:      kind,
		CreatedAt: time.Now(),
		DS:        ds,
		Upd:       upd,
		Model:     model,
		Deleted:   deleted,
		footprint: TrainingSetBytes(ds) + upd.FootprintBytes(),
	}
	sess.gen.Store(1) // dirty: no disk tier has seen generation 1 yet
	sess.Touch()
	return sess
}

// Touch advances the session's LRU clock.
func (sess *Session) Touch() { sess.lastUsed.Store(time.Now().UnixNano()) }

// LastUsed returns the unix-nano timestamp of the latest access.
func (sess *Session) LastUsed() int64 { return sess.lastUsed.Load() }

// Footprint returns the session's resident-memory charge.
func (sess *Session) Footprint() int64 { return sess.footprint }

// MarkDirtyLocked advances the session's mutation generation (flagging
// serving state the disk tier hasn't seen) and, in a tiered store, schedules
// a write-behind snapshot so the next eviction can drop the resident copy
// instead of paying the spill IO. Callers hold Mu.
func (sess *Session) MarkDirtyLocked() {
	sess.gen.Add(1)
	if sess.notifyDirty != nil {
		sess.notifyDirty(sess)
	}
}

// Dirty reports whether the session carries mutations the disk tier has not
// persisted yet.
func (sess *Session) Dirty() bool {
	return sess.gen.Load() != sess.persistedGen.Load()
}

// persistUpTo records that the disk tier now covers generation g. It is a
// CAS-max: a stale publish (g older than what a racing spill already
// persisted) leaves the counter alone, so it can never mask a newer cut.
func (sess *Session) persistUpTo(g int64) {
	for {
		cur := sess.persistedGen.Load()
		if cur >= g || sess.persistedGen.CompareAndSwap(cur, g) {
			return
		}
	}
}

// GoneLocked reports whether this copy was evicted or deleted from the store.
// Callers hold Mu.
func (sess *Session) GoneLocked() bool { return sess.gone.Load() }

// Pin marks a long-running read in flight: the budget evictor will not pick
// the session while pinned. Pair every Pin with an Unpin (defer it).
func (sess *Session) Pin() { sess.pins.Add(1) }

// Unpin releases one Pin.
func (sess *Session) Unpin() { sess.pins.Add(-1) }

// Pinned reports whether any long-running read holds the session resident.
func (sess *Session) Pinned() bool { return sess.pins.Load() > 0 }

// TrainingSetBytes charges a training set's resident memory for eviction
// accounting.
func TrainingSetBytes(ds priu.TrainingSet) int64 {
	switch d := ds.(type) {
	case *dataset.Dataset:
		return int64(d.N())*int64(d.M())*8 + int64(d.N())*8
	case *dataset.SparseDataset:
		return d.X.FootprintBytes() + int64(d.N())*8
	default:
		return 0
	}
}

// NumShards is the in-memory tier's shard count. Shard selection hashes the
// session ID, so concurrent requests to different sessions rarely share a
// lock; 16 shards keep contention negligible well past hundreds of
// concurrent streams while the per-shard memory overhead stays trivial.
const NumShards = 16

// ShardIndex maps a session ID to its shard, exported so the service can
// align its per-shard request counters with the store's session placement.
func ShardIndex(id string) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(id))
	return int(h.Sum32() % NumShards)
}

// ShardStats is one in-memory shard's view within Stats.
type ShardStats struct {
	// Sessions counts the shard's resident sessions.
	Sessions int
	// BudgetEvictions counts LRU evictions forced by the session/byte budget.
	BudgetEvictions int64
	// ExplicitDeletes counts sessions dropped by Delete.
	ExplicitDeletes int64
}

// SpilledSession describes one disk-tier-only session (metadata comes from
// the spill-file envelope, so listing does not restore anything).
type SpilledSession struct {
	ID        string
	Kind      string
	CreatedAt time.Time
	Bytes     int64
	// Remote marks a session whose only spilled copy lives in the shared
	// blob tier (no local cache file).
	Remote bool
}

// TenantStats is one tenant's view within Stats. The anonymous namespace
// appears under the "" key.
type TenantStats struct {
	Resident        int
	ResidentBytes   int64
	Spilled         int
	SpilledBytes    int64
	BudgetEvictions int64
	ExplicitDeletes int64
	QuotaRejections int64
	// SpillFileBytes is the tenant's actual on-disk spill-file usage — the
	// quantity its MaxSpillBytes cap is checked against (file bytes, not the
	// resident footprint SpilledBytes approximates).
	SpillFileBytes int64
	// DiskEvictions counts the tenant's disk-only sessions dropped by the
	// global disk budget.
	DiskEvictions int64
}

// TenantUsage is a tenant's live storage charge across tiers — the quantity
// its quota is checked against.
type TenantUsage struct {
	Resident      int
	ResidentBytes int64
	Spilled       int
	SpilledBytes  int64
	// SpillFileBytes is the tenant's on-disk spill-file usage (the
	// MaxSpillBytes cap dimension).
	SpillFileBytes int64
}

// Sessions returns the tenant's owned session count across tiers.
func (u TenantUsage) Sessions() int { return u.Resident + u.Spilled }

// Bytes returns the tenant's owned session bytes across tiers.
func (u TenantUsage) Bytes() int64 { return u.ResidentBytes + u.SpilledBytes }

// Stats is a point-in-time view of the store, split per tier. Budget
// evictions and explicit deletes are separate counters: an eviction is a
// budget decision (and, in the tiered store, a spill), a delete is a client
// instruction to forget the session.
type Stats struct {
	// Resident / ResidentBytes describe the in-memory tier.
	Resident      int
	ResidentBytes int64
	// BudgetEvictions / ExplicitDeletes aggregate the per-shard counters.
	BudgetEvictions int64
	ExplicitDeletes int64
	// Disk-tier counters (zero for Memory).
	Spilled      int
	SpilledBytes int64
	Spills       int64
	Restores     int64
	Unspillable  int64
	// DeltaSpills counts spills written as delta segments (a subset of
	// Spills; the rest were full base snapshots). Compactions counts
	// background folds of a delta chain into a new base. DeltaSegments is
	// the current number of live delta files across all chains.
	DeltaSpills   int64
	Compactions   int64
	DeltaSegments int
	// StaleSpills counts publishes discarded because a newer cut reached the
	// index first (the generation/chain guard) — each one re-enqueues, so
	// this gauges write-behind churn, not data loss.
	StaleSpills int64
	// PendingTombstones is the number of deletion tombstones not yet fully
	// resolved (local files unlinked and the blob delete stuck). Pending
	// tombstones are replayed at boot so an acknowledged delete can never
	// resurrect.
	PendingTombstones int
	// SpillDirBytes is the on-disk size of the spill directory — indexed
	// spill files plus any orphaned leftovers — maintained incrementally by
	// the lifecycle manager (seeded by a boot-time scan, refreshed on GC
	// sweeps; in-flight temp files are excluded). Zero for Memory.
	SpillDirBytes int64
	// SpillMaxBytes echoes the configured disk budget (0 = unbounded).
	SpillMaxBytes int64
	// WriteBehindSpills counts spills performed by the background queue (a
	// subset of Spills); the rest were synchronous — eviction fallbacks or
	// the shutdown drain.
	WriteBehindSpills int64
	// SpillQueueDepth is the write-behind queue's current backlog
	// (pending + in-flight snapshots).
	SpillQueueDepth int
	// SpillQueueFull counts write-behind enqueues dropped by backpressure
	// (the eviction path falls back to a synchronous spill, so nothing is
	// lost — this gauges how often the queue is saturated).
	SpillQueueFull int64
	// DiskEvictions counts disk-only sessions dropped to keep the spill
	// directory under SpillMaxBytes.
	DiskEvictions int64
	// GCRemovals counts orphaned spill-directory files removed by the
	// age-based GC.
	GCRemovals int64
	// BlobTier reports whether a shared blob tier is configured; the Blob*
	// counters below are zero without one.
	BlobTier bool
	// BlobSessions / BlobBytes describe the index entries whose spill state
	// the shared blob tier holds (local cache files may also exist).
	BlobSessions int
	BlobBytes    int64
	// BlobPuts / BlobGets / BlobDeletes count completed blob operations;
	// BlobErrors counts failed ones (retried by the GC sweep where safe).
	BlobPuts    int64
	BlobGets    int64
	BlobDeletes int64
	BlobErrors  int64
	// BlobDemotions counts local cache files dropped by the disk budget
	// whose sessions survived remote-only in the blob tier (pure cache
	// drops — compare DiskEvictions, which lose the session).
	BlobDemotions int64
	// Shards is the per-shard breakdown of the in-memory tier.
	Shards [NumShards]ShardStats
	// SpilledSessions lists the disk-tier-only sessions.
	SpilledSessions []SpilledSession
	// Tenants is the per-tenant breakdown ("" = the anonymous namespace).
	Tenants map[string]TenantStats
}

// Store is the session-storage abstraction the service is built on.
type Store interface {
	// Put registers a session and enforces any budget (which may evict — and
	// in a tiered store spill — least-recently-used sessions, never sess
	// itself). When the session's tenant is at its quota the registration is
	// rejected with a *QuotaError and nothing is stored: a quota is a hard
	// admission limit, a budget is a cache boundary.
	Put(sess *Session) error
	// Get returns the session, restoring it from a colder tier if needed,
	// and bumps its LRU clock.
	Get(id string) (*Session, bool)
	// Delete forgets the session in every tier, reporting whether it existed.
	Delete(id string) bool
	// Touch bumps the session's LRU clock (restoring it if cold), reporting
	// whether it exists.
	Touch(id string) bool
	// Range calls fn for every resident session until fn returns false.
	Range(fn func(*Session) bool)
	// Stats returns a point-in-time view of every tier.
	Stats() Stats
	// TenantUsage returns one tenant's live storage charge across tiers —
	// cheaper than Stats when only an admission check is needed.
	TenantUsage(tenant string) TenantUsage
	// Close flushes whatever durability the store offers (the tiered store
	// snapshots all dirty resident sessions — the SIGTERM drain).
	Close() error
}
