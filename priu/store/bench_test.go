package store

import (
	"testing"
	"time"

	"repro/priu"
)

// BenchmarkSpillRestore measures one full disk-tier round trip — spill a
// dirty session (snapshot + atomic rename) and restore it (read, provenance
// load, deletion-log replay) — and reports capture-time / round-trip-time as
// a "speedup" metric: the factor by which restoring a session from the spill
// directory beats re-capturing it from scratch. benchguard baselines the
// metric, so a restore-latency regression of more than 20% fails CI.
func BenchmarkSpillRestore(b *testing.B) {
	d, err := priu.GenerateBinary("bench-spill", 400, 12, 0.8, 7)
	if err != nil {
		b.Fatal(err)
	}
	opts := []priu.Option{
		priu.WithEta(5e-3), priu.WithLambda(0.05), priu.WithBatchSize(50),
		priu.WithIterations(60), priu.WithSeed(7), priu.WithFullCaches(),
	}
	t0 := time.Now()
	u, err := priu.Train("logistic", d, opts...)
	if err != nil {
		b.Fatal(err)
	}
	captureNs := time.Since(t0).Nanoseconds()

	sess := NewSession("sess-bench", "logistic", d, u, nil, nil)
	// A non-empty deletion log makes restore pay the replay it pays in
	// production.
	sess.Mu.Lock()
	sess.Deleted = []int{3, 17, 91, 200}
	m, err := sess.Upd.Update(sess.Deleted)
	if err != nil {
		sess.Mu.Unlock()
		b.Fatal(err)
	}
	sess.Model = m
	sess.Mu.Unlock()

	ti, err := NewTiered(b.TempDir(), NewMemory())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess.Mu.Lock()
		sess.MarkDirtyLocked() // force a real rewrite each iteration
		err := ti.spillLocked(sess)
		sess.Mu.Unlock()
		if err != nil {
			b.Fatal(err)
		}
		ti.mu.Lock()
		e := ti.index[sess.ID]
		ti.mu.Unlock()
		if _, err := ti.restore(sess.ID, e); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if b.N > 0 {
		perOp := b.Elapsed().Nanoseconds() / int64(b.N)
		if perOp > 0 {
			b.ReportMetric(float64(captureNs)/float64(perOp), "speedup")
		}
	}
}
