package store

import (
	"fmt"
	"testing"
	"time"

	"repro/priu"
)

// BenchmarkSpillRestore measures one full disk-tier round trip — spill a
// dirty session (snapshot + atomic rename) and restore it (read, provenance
// load, deletion-log replay) — and reports capture-time / round-trip-time as
// a "speedup" metric: the factor by which restoring a session from the spill
// directory beats re-capturing it from scratch. benchguard baselines the
// metric, so a restore-latency regression of more than 20% fails CI.
func BenchmarkSpillRestore(b *testing.B) {
	d, err := priu.GenerateBinary("bench-spill", 400, 12, 0.8, 7)
	if err != nil {
		b.Fatal(err)
	}
	opts := []priu.Option{
		priu.WithEta(5e-3), priu.WithLambda(0.05), priu.WithBatchSize(50),
		priu.WithIterations(60), priu.WithSeed(7), priu.WithFullCaches(),
	}
	t0 := time.Now()
	u, err := priu.Train("logistic", d, opts...)
	if err != nil {
		b.Fatal(err)
	}
	captureNs := time.Since(t0).Nanoseconds()

	sess := NewSession("sess-bench", "logistic", d, u, nil, nil)
	// A non-empty deletion log makes restore pay the replay it pays in
	// production.
	sess.Mu.Lock()
	sess.Deleted = []int{3, 17, 91, 200}
	m, err := sess.Upd.Update(sess.Deleted)
	if err != nil {
		sess.Mu.Unlock()
		b.Fatal(err)
	}
	sess.Model = m
	sess.Mu.Unlock()

	// Write-behind off: this benchmark measures the raw spill/restore round
	// trip itself, not the queue.
	ti, err := NewTiered(b.TempDir(), NewMemory(), WithWriteBehind(0, 0))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess.Mu.Lock()
		sess.MarkDirtyLocked() // force a real rewrite each iteration
		_, _, err := ti.spillLocked(sess)
		sess.Mu.Unlock()
		if err != nil {
			b.Fatal(err)
		}
		ti.mu.Lock()
		e := ti.index[sess.ID]
		ti.mu.Unlock()
		if _, err := ti.restore(sess.ID, e); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if b.N > 0 {
		perOp := b.Elapsed().Nanoseconds() / int64(b.N)
		if perOp > 0 {
			b.ReportMetric(float64(captureNs)/float64(perOp), "speedup")
		}
	}
}

// BenchmarkEvictLatency measures the latency the EVICTING registration pays
// for its victim's preservation — the tentpole claim of the write-behind
// lifecycle. It self-measures a synchronous-spill baseline (the pre-lifecycle
// behavior: the victim's snapshot is written on the evicting goroutine, under
// the victim's lock) and then times evictions against a write-behind store
// whose victims are already snapshotted, so the eviction just drops the
// resident copy. The ratio is reported as a "speedup" metric and baselined by
// benchguard: if evictions start paying spill IO on the request path again,
// CI fails.
func BenchmarkEvictLatency(b *testing.B) {
	d, err := priu.GenerateRegression("bench-evict", 400, 8, 0.05, 3)
	if err != nil {
		b.Fatal(err)
	}
	u, err := priu.Train("linear", d,
		priu.WithEta(0.01), priu.WithLambda(0.05), priu.WithBatchSize(50),
		priu.WithIterations(40), priu.WithSeed(3), priu.WithFullCaches())
	if err != nil {
		b.Fatal(err)
	}
	session := func(id string) *Session { return NewSession(id, "linear", d, u, nil, nil) }

	// Baseline: synchronous spills. Every Put evicts the previous (dirty)
	// resident, paying the full snapshot write inline.
	sync, err := NewTiered(b.TempDir(), NewMemory(WithMaxSessions(1)), WithWriteBehind(0, 0))
	if err != nil {
		b.Fatal(err)
	}
	const warm = 2
	const syncOps = 8
	for i := 0; i < warm; i++ { // fault in code paths and page cache
		if err := sync.Put(session(fmt.Sprintf("warm-%03d", i))); err != nil {
			b.Fatal(err)
		}
	}
	t0 := time.Now()
	for i := 0; i < syncOps; i++ {
		if err := sync.Put(session(fmt.Sprintf("sync-%03d", i))); err != nil {
			b.Fatal(err)
		}
	}
	syncPerOp := time.Since(t0).Nanoseconds() / syncOps

	// Timed: write-behind. The queue snapshots each resident before the next
	// registration arrives (the flush is off the timer), so the eviction
	// inside Put is a drop.
	wb, err := NewTiered(b.TempDir(), NewMemory(WithMaxSessions(1)))
	if err != nil {
		b.Fatal(err)
	}
	defer wb.Close()
	if err := wb.Put(session("wb-seed")); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		wb.Flush() // victim clean + on disk before the clock runs
		b.StartTimer()
		if err := wb.Put(session(fmt.Sprintf("wb-%06d", i))); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if st := wb.Stats(); st.Spills != st.WriteBehindSpills {
		b.Fatalf("%d evictions paid a synchronous spill; the benchmark premise broke (%+v)",
			st.Spills-st.WriteBehindSpills, st)
	}
	if b.N > 0 {
		perOp := b.Elapsed().Nanoseconds() / int64(b.N)
		if perOp > 0 {
			b.ReportMetric(float64(syncPerOp)/float64(perOp), "speedup")
		}
	}
}

// BenchmarkDeltaSpill measures what a mutation-heavy deletion stream pays
// the durability layer per batch: each iteration appends a one-entry
// deletion batch and spills it. With the LSM tier the spill is a delta
// segment carrying only the log suffix, so the bytes written per spill are
// O(batch) instead of the full-snapshot O(session) rewrite the pre-LSM
// store paid. The ratio full-base-bytes / delta-bytes-per-spill is reported
// as a "speedup" metric and baselined by benchguard — the ISSUE floor is
// ≥5×, the measured ratio is orders of magnitude above it, and a regression
// past the guard's 20% tolerance fails CI. ns/op is the per-batch spill
// latency (cut + serialize + fsync + rename).
func BenchmarkDeltaSpill(b *testing.B) {
	d, err := priu.GenerateRegression("bench-delta", 2000, 24, 0.05, 7)
	if err != nil {
		b.Fatal(err)
	}
	u, err := priu.Train("linear", d,
		priu.WithEta(0.01), priu.WithLambda(0.05), priu.WithBatchSize(100),
		priu.WithIterations(40), priu.WithSeed(7), priu.WithFullCaches())
	if err != nil {
		b.Fatal(err)
	}
	sess := NewSession("sess-delta", "linear", d, u, nil, nil)
	// Write-behind off (measuring the spill itself, not the queue) and
	// compaction parked far beyond b.N so the chain never folds mid-run.
	ti, err := NewTiered(b.TempDir(), NewMemory(),
		WithWriteBehind(0, 0), WithCompaction(1<<30))
	if err != nil {
		b.Fatal(err)
	}
	sess.Mu.Lock()
	_, _, err = ti.spillLocked(sess)
	sess.Mu.Unlock()
	if err != nil {
		b.Fatal(err)
	}
	baseBytes := ti.Stats().SpillDirBytes
	if baseBytes <= 0 {
		b.Fatal("base spill produced no file")
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess.Mu.Lock()
		// The mutation path's storage-relevant effects only: the model
		// update itself is the paper's O(batch) contribution and is not
		// what this benchmark times.
		sess.Deleted = append(sess.Deleted, i)
		sess.Updates++
		sess.MarkDirtyLocked()
		wrote, _, err := ti.spillLocked(sess)
		sess.Mu.Unlock()
		if err != nil || !wrote {
			b.Fatalf("spill %d = (%v, %v)", i, wrote, err)
		}
	}
	b.StopTimer()
	st := ti.Stats()
	if int(st.DeltaSpills) != b.N {
		b.Fatalf("%d of %d spills were deltas; the benchmark premise broke", st.DeltaSpills, b.N)
	}
	deltaBytes := st.SpillDirBytes - baseBytes
	if b.N > 0 && deltaBytes > 0 {
		perSpill := float64(deltaBytes) / float64(b.N)
		b.ReportMetric(perSpill, "bytes/spill")
		b.ReportMetric(float64(baseBytes)/perSpill, "speedup")
	}
}
