package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/binio"
	"repro/priu"
)

// Spill-file envelope: a small header carrying the store-level identity,
// counters and (since version 2) the cumulative deletion log, followed by
// the self-contained snapshot (family + dataset + provenance; the embedded
// snapshot's own log section is empty in v2 files). Keeping the log in the
// envelope makes the disk tier log-structured: a spill of a mutated session
// appends a small delta segment carrying only the log suffix since the
// base, and compaction folds a chain into a new base by splicing — merged
// envelope plus the base's snapshot bytes copied verbatim, no model decode.
// Files are content-addressed — named by the SHA-256 of their bytes — and
// written as temp-file + fsync + rename, so a crash mid-spill leaves at
// worst an ignorable temp file, never a torn session or delta. Version 1
// files (log inside the snapshot) remain readable; they are opaque to
// splicing, so the first dirty spill on top of one rewrites a v2 base.
const (
	spillMagic   = "PRSP"
	spillVersion = 2
	spillExt     = ".sess"
	spillTmp     = "tmp-"

	// Delta segments: "<sha256>.delta" files appended to a v2 base. Each
	// carries the deletion-log suffix it adds, the (logLen, updates) tip it
	// extends — the chain guard — and the counters at its own tip.
	deltaMagic   = "PRDL"
	deltaVersion = 1
	deltaExt     = ".delta"

	// maxSpillName bounds decoded ID/family strings in envelopes.
	maxSpillName = 1 << 20
)

// deltaSeg is one published delta segment in a spill entry's chain.
type deltaSeg struct {
	path  string
	bytes int64
	// fromLen/fromUpdates name the chain tip this segment extends; a
	// segment chains iff they equal the previous element's tip exactly.
	fromLen     int64
	fromUpdates int64
	// entries is the number of deletion-log entries the segment appends;
	// updates/lastUpd are the session counters at the segment's tip.
	entries int64
	updates int64
	lastUpd float64
}

// spillEntry is the disk tier's index record for one session: a base
// snapshot plus an ordered delta-segment chain. At least one of
// local/remote is true: local means path names a base file (and deltas its
// chain) in the spill directory, remote means the shared blob tier holds
// the same logical tip (when both are set the local chain is a read cache
// of the blob object).
type spillEntry struct {
	path      string
	bytes     int64 // base file size; localBytes() for the whole chain
	deltas    []deltaSeg
	kind      string
	createdAt time.Time
	local     bool
	remote    bool
	// updates is the monotonic per-session update counter at the CHAIN TIP
	// — the newest-wins version used when deduplicating boot files and
	// reconciling against the blob tier.
	updates int64
	// logLen is the deletion-log length the chain tip covers — together
	// with updates it is the guard a delta publish must match. -1 marks a
	// version-1 base whose log lives inside the snapshot (unknown without
	// decoding): such chains take no deltas; the next dirty spill rewrites
	// a v2 base.
	logLen int64
	// charged is what the session's tenant ownership was billed for this
	// session (guarded by Tiered.mu): the resident footprint when spilled by
	// this process, the file size when seeded from a reboot reindex (the
	// footprint isn't known without restoring). Restores settle the drift.
	charged int64
	// spillCharged is the tenant's current spill-byte charge for this entry
	// (guarded by Tiered.mu); every transition adjusts by the delta against
	// it, so the books can never drift from the files.
	spillCharged int64
	// lastUsed is a unix-nano LRU clock for the disk-budget file evictor:
	// bumped when the chain is written and when the session restores from it
	// (mtime at boot). Guarded by Tiered.mu.
	lastUsed int64
}

// localBytes is the entry's on-disk footprint: base plus delta segments
// (zero when the entry is remote-only).
func (e *spillEntry) localBytes() int64 {
	if !e.local {
		return 0
	}
	n := e.bytes
	for i := range e.deltas {
		n += e.deltas[i].bytes
	}
	return n
}

// localPaths returns every file the entry owns (base first, then the chain).
func (e *spillEntry) localPaths() []pathBytes {
	if !e.local {
		return nil
	}
	out := make([]pathBytes, 0, 1+len(e.deltas))
	out = append(out, pathBytes{e.path, e.bytes})
	for i := range e.deltas {
		out = append(out, pathBytes{e.deltas[i].path, e.deltas[i].bytes})
	}
	return out
}

// pathBytes pairs a file path with its accounted size.
type pathBytes struct {
	path  string
	bytes int64
}

// flight is one in-progress restore; joiners wait on done.
type flight struct {
	done chan struct{}
	sess *Session
	ok   bool
}

// Tiered wraps the in-memory tier with a spill directory: evictions spill,
// touches of cold sessions restore (singleflight), Close drains dirty
// residents, and NewTiered re-indexes whatever a previous process left. Its
// lifecycle manager (lifecycle.go) keeps the disk tier bounded and off the
// hot path: a write-behind queue snapshots dirty sessions eagerly so most
// evictions just drop the resident copy, a disk budget evicts
// least-recently-used spill files, and an age-based GC sweeps orphaned
// leftovers.
type Tiered struct {
	mem *Memory
	dir string

	// blob, when set (WithBlobStore), is the shared tier the spill directory
	// caches; see tieredblob.go.
	blob BlobStore

	// Lifecycle configuration (fixed after NewTiered).
	spillOnEvict  bool
	maxDiskBytes  int64
	queueLen      int
	workers       int
	gcAge         time.Duration
	gcInterval    time.Duration
	coalesceN     int           // spill after this many updates (1 = every)
	coalesceQuiet time.Duration // ... or after this long with no new mutation
	compactAfter  int           // fold a chain once it holds this many deltas (0 = never)

	mu      sync.Mutex
	index   map[string]*spillEntry
	flights map[string]*flight
	// diskBytes is the total size of indexed spill files (bases + delta
	// chains); orphanBytes is what else the boot scan / GC sweeps found in
	// the directory (crash leftovers — in-flight temp files and the
	// tombstone sidecar are excluded). Their sum is the served
	// spill_dir_bytes gauge, and the disk budget bounds it. Both are
	// guarded by mu.
	diskBytes   int64
	orphanBytes int64
	// blobPutting gates blob uploads (one in flight per session);
	// compacting gates chain folds the same way. Guarded by mu.
	blobPutting map[string]bool
	compacting  map[string]bool
	// tombstones is the pending set of deletion tombstones (tombstone.go):
	// ids of acknowledged deletes whose local unlinks or blob delete have
	// not stuck yet. Read paths refuse tombstoned ids, boot replays the
	// sidecar log, and the GC sweep retries until resolution. Guarded by mu.
	tombstones map[string]*tombstone

	// Write-behind queue state (lifecycle.go).
	qmu      sync.Mutex
	queue    chan *Session
	pending  map[string]bool
	debounce map[string]*debEntry
	qClosed  bool
	inflight atomic.Int64
	// stopBG stops the background loops (GC sweep, coalescing quiet sweep).
	stopBG chan struct{}
	wg     sync.WaitGroup

	// tombMu serializes appends/rewrites of the tombstone sidecar log;
	// tombRecords counts records appended since the last rewrite (the GC
	// compacts the log when resolved records dominate). See tombstone.go.
	tombMu      sync.Mutex
	tombRecords int

	spills        atomic.Int64
	deltaSpills   atomic.Int64
	compactions   atomic.Int64
	staleSpills   atomic.Int64
	restores      atomic.Int64
	spillErrors   atomic.Int64
	restoreErrors atomic.Int64
	unspillable   atomic.Int64
	writeBehind   atomic.Int64
	queueFull     atomic.Int64
	diskEvictions atomic.Int64
	gcRemovals    atomic.Int64
	blobPuts      atomic.Int64
	blobGets      atomic.Int64
	blobDeletes   atomic.Int64
	blobErrors    atomic.Int64
	blobDemotions atomic.Int64

	// metrics, when set (WithMetrics), receives tier-operation latency
	// observations; nil means every recording site is a single nil check.
	metrics *TierMetrics

	// fault, when set (tests only), is consulted at named crash points
	// inside spill/GC/drain; a non-nil return aborts the operation exactly
	// where a crash would, leaving on-disk state as a kill there would.
	fault func(point string) error
	// onDiskEvict, when set (tests only), observes disk-budget drops of
	// disk-only sessions; onEvictLost observes evictions that could not
	// preserve their victim (spilling disabled or the spill failed). These
	// are the only paths that lose a session by design, and both fire
	// before the loss is observable through Get.
	onDiskEvict func(id string)
	onEvictLost func(id string)
}

// faultAt consults the injected crash-point hook (nil outside tests).
func (t *Tiered) faultAt(point string) error {
	if t.fault == nil {
		return nil
	}
	return t.fault(point)
}

// removeSpillFile unlinks a de-indexed spill file, keeping the disk gauge
// honest when the unlink fails (or a fault skips it): the file still
// occupies disk, so its bytes move to the orphan share — where the
// age-based GC will reclaim them — instead of vanishing from the books.
// Reports whether the file is actually gone. Callers must not hold t.mu.
func (t *Tiered) removeSpillFile(path string, bytes int64, faultPoint string) bool {
	if t.faultAt(faultPoint) == nil {
		if err := os.Remove(path); err == nil || os.IsNotExist(err) {
			return true
		}
	}
	t.mu.Lock()
	t.orphanBytes += bytes
	t.mu.Unlock()
	return false
}

// TieredOption configures NewTiered.
type TieredOption func(*Tiered)

// WithSpillOnEvict controls whether budget evictions spill to disk (default
// true). When disabled, evictions drop sessions as in the plain memory store
// (and the write-behind queue is idle) but Close still snapshots dirty
// residents, giving restart durability without an eviction disk tier.
func WithSpillOnEvict(enabled bool) TieredOption {
	return func(t *Tiered) { t.spillOnEvict = enabled }
}

// WithSpillMaxBytes bounds the spill directory (0 = unbounded): when a new
// spill would take the indexed-plus-orphaned file bytes over the budget,
// least-recently-used spill files are evicted first — warm backups of
// resident sessions before disk-only sessions, whose drop loses the session
// and is counted in DiskEvictions.
func WithSpillMaxBytes(b int64) TieredOption {
	return func(t *Tiered) { t.maxDiskBytes = b }
}

// WithWriteBehind sizes the eager-spill queue (default 256 deep, 1 worker).
// A zero queue length disables write-behind entirely: every spill happens
// synchronously on the evicting goroutine, the pre-lifecycle behavior.
func WithWriteBehind(queueLen, workers int) TieredOption {
	return func(t *Tiered) {
		t.queueLen = queueLen
		if workers > 0 {
			t.workers = workers
		}
	}
}

// WithSpillCoalesce debounces the write-behind queue: a mutated session is
// scheduled for a spill only after n updates since its last spill, or after
// quiet with no new mutation — so a dense deletion stream pays one delta
// segment per batch of n, not one per update. The defaults (1, 0) keep the
// eager pre-coalescing behavior: every mutation schedules a spill
// immediately. Eviction, drain and Flush are unaffected — they always
// persist the current state synchronously, so coalescing trades only how
// soon the background copy lands, never whether state survives.
func WithSpillCoalesce(n int, quiet time.Duration) TieredOption {
	return func(t *Tiered) {
		if n > 1 {
			t.coalesceN = n
		}
		if quiet > 0 {
			t.coalesceQuiet = quiet
		}
	}
}

// WithCompaction folds a session's delta chain into a new base snapshot in
// the background once it holds maxDeltas segments (default 8; <= 0 disables
// folding). Compaction is a byte splice — merged envelope plus the base's
// snapshot bytes copied verbatim — published with the same temp + fsync +
// rename discipline as spills: a crash at any point leaves either the old
// chain or the new base authoritative, never a mix.
func WithCompaction(maxDeltas int) TieredOption {
	return func(t *Tiered) { t.compactAfter = maxDeltas }
}

// WithSpillGC runs the age-based spill-directory GC every interval: orphaned
// session files (unindexed — typically left by crashes or failed unlinks of
// long-deleted sessions) and stale temp files older than age are removed,
// and the orphan-byte gauge is refreshed. A zero interval disables the
// background sweep (gcOnce can still be driven directly).
func WithSpillGC(age, interval time.Duration) TieredOption {
	return func(t *Tiered) {
		if age > 0 {
			t.gcAge = age
		}
		t.gcInterval = interval
	}
}

// NewTiered opens (creating if needed) the spill directory, re-indexes the
// session files a previous process left there, installs the spill hook on
// mem's evictions, and starts the lifecycle manager (write-behind workers
// and, when configured, the GC sweep). mem must be freshly constructed and
// not shared.
func NewTiered(dir string, mem *Memory, opts ...TieredOption) (*Tiered, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating spill dir: %w", err)
	}
	t := &Tiered{
		mem:          mem,
		dir:          dir,
		index:        make(map[string]*spillEntry),
		flights:      make(map[string]*flight),
		pending:      make(map[string]bool),
		debounce:     make(map[string]*debEntry),
		blobPutting:  make(map[string]bool),
		compacting:   make(map[string]bool),
		tombstones:   make(map[string]*tombstone),
		spillOnEvict: true,
		queueLen:     256,
		workers:      1,
		coalesceN:    1,
		compactAfter: 8,
		gcAge:        time.Hour,
	}
	for _, opt := range opts {
		opt(t)
	}
	// Tombstones load before anything else reads the directory or the blob
	// listing: reindex skips (and deletes) files of tombstoned sessions, and
	// syncBlob refuses to re-adopt their objects.
	if err := t.loadTombstones(); err != nil {
		return nil, err
	}
	if err := t.reindex(); err != nil {
		return nil, err
	}
	if err := t.syncBlob(); err != nil {
		return nil, err
	}
	// Seed the tenants' cross-tier ownership and spill-file usage with what
	// a previous process left on disk, so quotas and spill caps count
	// rebooted spill files from the first request. mem is freshly
	// constructed (see above), so nothing double counts.
	for id, e := range t.index {
		mem.adjustOwned(TenantOf(id), 1, e.charged)
		mem.adjustSpill(TenantOf(id), e.spillCharged)
	}
	mem.onEvictLocked = func(sess *Session) int {
		if t.spillOnEvict {
			// The write-behind queue usually got here first: a clean session
			// with a current disk copy is preserved by just dropping the
			// resident copy — no file IO under the victim's lock. The
			// synchronous spill is the fallback (dirty victim, queue
			// backlog, or write-behind disabled).
			_, needPush, err := t.spillLocked(sess)
			if err == nil {
				if needPush {
					// The chain's blob upload is owed, but the evictor holds
					// the victim's Mu (and a shard lock above it): heal from
					// a background goroutine, never under the locks.
					t.scheduleHealPush(sess.ID)
				}
				return evictPreserved // the spill chain holds this state
			}
			if errors.Is(err, errSpillDiskPinned) {
				// The disk budget is full of files that cannot be reclaimed
				// (pinned by clean residents, or mid-restore). Dropping the
				// victim would silently lose a session to make room for a
				// new one; refuse instead — the enforcer tries another
				// victim or rejects the registration with typed pressure.
				return evictRefused
			}
		} else if !sess.Dirty() {
			t.mu.Lock()
			_, onDisk := t.index[sess.ID]
			t.mu.Unlock()
			if onDisk {
				return evictPreserved // any disk copy is exactly this state
			}
		}
		// The session is leaving memory carrying state the disk tier does
		// not have (spilling disabled, or the spill failed for a reason
		// pressure cannot fix — tenant cap, IO error). A stale disk copy
		// must not resurrect on the next touch — that would silently undo
		// honored deletions — so drop it: the session is lost, exactly
		// like a memory-only eviction.
		if t.onEvictLost != nil {
			t.onEvictLost(sess.ID)
		}
		// Mark the copy gone BEFORE invalidating: a worker publish racing
		// this eviction must observe the flag (publishCut's liveness guard)
		// and discard its cut, never re-create an index entry for state the
		// store just declared lost.
		sess.gone.Store(true)
		t.invalidate(sess.ID)
		return evictLost
	}
	t.startLifecycle()
	return t, nil
}

// invalidate forgets a session's disk and blob copies (stale relative to
// state that was just lost with an eviction): a stale copy must not
// resurrect on the next touch — locally, through the read-through path, or
// after a reboot, which is why the forget is recorded as a durable
// tombstone before any unlink runs.
func (t *Tiered) invalidate(id string) {
	t.mu.Lock()
	e, ok := t.index[id]
	if ok {
		delete(t.index, id)
		if e.local {
			t.diskBytes -= e.localBytes()
		}
	}
	t.mu.Unlock()
	if ok {
		t.dropEntryFiles(id, e, "invalidate.unlink")
		t.mem.adjustSpill(TenantOf(id), -e.spillCharged)
	}
}

// dropEntryFiles tombstones id and removes the entry's local chain files and
// blob object. The tombstone lands (durably) BEFORE any unlink, so a crash
// anywhere in the removal cannot leave a resurrectable copy behind: boot
// replays the tombstone, skips the files and retries the blob delete. The
// caller has already de-indexed the entry and settled the disk gauge.
func (t *Tiered) dropEntryFiles(id string, e *spillEntry, faultPoint string) {
	t.tombstoneAdd(id)
	if e.local {
		clean := true
		for _, pb := range e.localPaths() {
			if !t.removeSpillFile(pb.path, pb.bytes, faultPoint) {
				clean = false
			}
		}
		if clean {
			t.tombstoneResolve(id, tombLocal)
		}
	} else {
		t.tombstoneResolve(id, tombLocal)
	}
	// Remove the blob object whenever a blob tier is configured, not just
	// when the entry is marked remote: a push may be in flight (the entry
	// not yet certified), and the tombstone covers that race.
	t.blobRemove(id)
}

// Spillable reports whether a session of this family/updater can be written
// as a session snapshot and restored later.
func Spillable(kind string, upd priu.Updater) bool {
	if _, ok := upd.(priu.Snapshotter); !ok {
		return false
	}
	f, ok := priu.Lookup(kind)
	return ok && f.Restore != nil
}

// Put implements Store. The memory tier's ownership counters already span
// both tiers (a spill moves a session out of resident but not out of
// owned), so the quota check is the same single atomic compare: eviction to
// disk never frees quota, only an explicit Delete does. The accepted session
// is scheduled for an eager write-behind snapshot so the eviction that later
// targets it can drop instead of write.
func (t *Tiered) Put(sess *Session) error {
	t.mu.Lock()
	_, tombstoned := t.tombstones[sess.ID]
	t.mu.Unlock()
	if tombstoned {
		// A re-registration under a tombstoned ID (the service seeds IDs to
		// avoid reuse, but the store stays correct without that): the
		// tombstone guarded the OLD state. Make one synchronous attempt to
		// clear the stale blob object, then retire the tombstone — the new
		// session's state owns the ID from here.
		t.blobRemove(sess.ID)
		t.tombstoneForget(sess.ID)
	}
	t.armWriteBehind(sess)
	if err := t.mem.Put(sess); err != nil {
		return err
	}
	t.enqueueSpill(sess)
	return nil
}

// TenantUsage implements Store.
func (t *Tiered) TenantUsage(tenant string) TenantUsage { return t.mem.TenantUsage(tenant) }

// Get implements Store: a resident hit is lock-free beyond the shard RLock;
// a cold session is restored from its spill file exactly once, no matter how
// many goroutines touch it concurrently.
func (t *Tiered) Get(id string) (*Session, bool) {
	if sess, ok := t.mem.Get(id); ok {
		return sess, true
	}
	t.mu.Lock()
	if f, inflight := t.flights[id]; inflight {
		t.mu.Unlock()
		<-f.done
		return f.sess, f.ok
	}
	e, spilled := t.index[id]
	if !spilled {
		if t.blob == nil || t.tombstones[id] != nil {
			t.mu.Unlock()
			// The session may have become resident between the miss and the
			// index check (a racing restore that just published). Tombstoned
			// keys belong to acknowledged deletes — never readopt them.
			return t.mem.Get(id)
		}
		// Read-through: the session has no local state at all, but the shared
		// blob tier may hold it (created by another replica, or handed off).
		// Same singleflight as a local restore.
		f := &flight{done: make(chan struct{})}
		t.flights[id] = f
		t.mu.Unlock()
		if sess, ok := t.mem.Get(id); ok {
			f.sess, f.ok = sess, true
		} else if sess, err := t.adopt(id); err != nil {
			t.restoreErrors.Add(1)
		} else if sess != nil {
			f.sess, f.ok = sess, true
		}
		t.mu.Lock()
		delete(t.flights, id)
		t.mu.Unlock()
		close(f.done)
		return f.sess, f.ok
	}
	f := &flight{done: make(chan struct{})}
	t.flights[id] = f
	// The file is about to be read: bump its LRU clock so the disk-budget
	// evictor (which also skips any id with an in-flight restore) treats it
	// as hot, not as the coldest file on disk.
	e.lastUsed = time.Now().UnixNano()
	t.mu.Unlock()

	// Leader path. Re-check residency first: a restore that completed
	// between our memory miss and the flight registration already published
	// the session (the index keeps its entry after a restore).
	if sess, ok := t.mem.Get(id); ok {
		f.sess, f.ok = sess, true
	} else if sess, err := t.restore(id, e); err != nil {
		t.restoreErrors.Add(1)
	} else {
		// A Delete (or disk-budget eviction) that raced the restore removed
		// the index entry; honor it instead of resurrecting the session.
		t.mu.Lock()
		_, still := t.index[id]
		t.mu.Unlock()
		if still {
			f.sess, f.ok = sess, true
		} else {
			t.mem.drop(id)
		}
	}
	t.mu.Lock()
	delete(t.flights, id)
	t.mu.Unlock()
	close(f.done)
	return f.sess, f.ok
}

// Delete implements Store: the session is forgotten in every tier. A
// durable tombstone is appended BEFORE any unlink or blob delete, so once
// this returns (and the service acks the DELETE) no crash can resurrect the
// session: boot replays pending tombstones, removing stray chain files and
// retrying the blob delete until both stick.
func (t *Tiered) Delete(id string) bool {
	resident := t.mem.Delete(id)
	t.mu.Lock()
	e, spilled := t.index[id]
	if spilled {
		delete(t.index, id)
		if e.local {
			t.diskBytes -= e.localBytes()
		}
	}
	t.mu.Unlock()
	if spilled {
		// Spill-file hygiene: an explicit DELETE forgets the session in
		// every tier, including its on-disk chain and blob object — even
		// when a resident copy also existed (the copies would otherwise
		// outlive the session until the age-based GC or the next boot
		// reindex, and a blob copy could resurrect through read-through).
		t.dropEntryFiles(id, e, "delete.unlink")
		t.mem.adjustSpill(TenantOf(id), -e.spillCharged)
		if !resident {
			// Count the disk-only delete on the same shard the session
			// would live on, keeping per-shard sums consistent, and release
			// the tenant's ownership charge (the resident path did this in
			// mem.Delete).
			t.mem.shards[ShardIndex(id)].explicitDeletes.Add(1)
			t.mem.chargeExplicitDelete(TenantOf(id))
			t.mem.adjustOwned(TenantOf(id), -1, -e.charged)
		}
	}
	return resident || spilled
}

// Touch implements Store: touching a cold session restores it ("the LRU
// budget is a cache tier, not a cliff").
func (t *Tiered) Touch(id string) bool {
	_, ok := t.Get(id)
	return ok
}

// Range implements Store (resident sessions only; spilled sessions are
// listed by Stats without being restored).
func (t *Tiered) Range(fn func(*Session) bool) { t.mem.Range(fn) }

// Stats implements Store. SpillDirBytes is served from the lifecycle
// manager's maintained counters (indexed files + scanned orphans) — no
// per-request directory walk; the boot reindex seeds it and GC sweeps
// refresh the orphan share.
func (t *Tiered) Stats() Stats {
	st := t.mem.Stats()
	st.Spills = t.spills.Load()
	st.DeltaSpills = t.deltaSpills.Load()
	st.Compactions = t.compactions.Load()
	st.StaleSpills = t.staleSpills.Load()
	st.Restores = t.restores.Load()
	st.Unspillable = t.unspillable.Load()
	st.SpillMaxBytes = t.maxDiskBytes
	st.WriteBehindSpills = t.writeBehind.Load()
	st.SpillQueueFull = t.queueFull.Load()
	st.DiskEvictions = t.diskEvictions.Load()
	st.GCRemovals = t.gcRemovals.Load()
	st.SpillQueueDepth = t.queueDepth()
	st.BlobTier = t.blob != nil
	st.BlobPuts = t.blobPuts.Load()
	st.BlobGets = t.blobGets.Load()
	st.BlobDeletes = t.blobDeletes.Load()
	st.BlobErrors = t.blobErrors.Load()
	st.BlobDemotions = t.blobDemotions.Load()
	t.mu.Lock()
	st.SpillDirBytes = t.diskBytes + t.orphanBytes
	st.PendingTombstones = len(t.tombstones)
	for id, e := range t.index {
		st.DeltaSegments += len(e.deltas)
		fileBytes := e.bytes
		if e.local {
			fileBytes = e.localBytes()
		}
		if e.remote {
			st.BlobSessions++
			st.BlobBytes += e.bytes
		}
		if t.mem.has(id) {
			continue // resident copy is authoritative; the file is a warm backup
		}
		st.Spilled++
		st.SpilledBytes += fileBytes
		st.SpilledSessions = append(st.SpilledSessions, SpilledSession{
			ID: id, Kind: e.kind, CreatedAt: e.createdAt, Bytes: fileBytes,
			Remote: e.remote && !e.local,
		})
		// Per-tenant spilled usage comes from the memory tier's ownership
		// counters (owned − resident), already in st.Tenants.
	}
	t.mu.Unlock()
	return st
}

// Close implements Store: the SIGTERM drain, ordered after the write-behind
// queue. The GC sweep stops, the queue is closed and its backlog flushed by
// the workers, and then every dirty resident session is snapshotted to the
// spill directory so the next process restores the exact pre-shutdown
// state. Unspillable sessions are counted and skipped.
func (t *Tiered) Close() error {
	t.stopLifecycle()
	var firstErr error
	t.mem.Range(func(sess *Session) bool {
		if t.faultAt("drain.session") != nil {
			return false // simulated crash mid-drain
		}
		sess.Mu.Lock()
		_, needPush, err := t.spillLocked(sess)
		if err != nil {
			// The session's current state could not be persisted (cap, full
			// disk, IO error). Any older disk copy is now stale relative to
			// honored deletions — the next boot must not resurrect it, so
			// drop it, exactly like the eviction path does. The session's
			// state dies with this process either way; losing it entirely
			// beats silently undoing acknowledged deletions.
			t.invalidate(sess.ID)
		}
		sess.Mu.Unlock()
		if needPush {
			// Shutdown heal: the chain's blob upload is owed; push it now,
			// off the lock (the lifecycle is stopped, so the background heal
			// would be refused). Best-effort — boot's syncBlob heal pass is
			// the backstop.
			_ = t.blobPush(sess.ID)
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
		return true
	})
	return firstErr
}

// Sentinel errors distinguishing why a publish could not land.
var (
	// errStaleSpill reports a publish discarded because the chain tip moved
	// between the cut and the rename (a racing publish won). The discarded
	// bytes never reach the index, so a stale publish can never mask a
	// newer one; callers re-cut from current state when durability is owed.
	errStaleSpill = errors.New("store: stale spill cut discarded")
	// errSpillDiskPinned reports a disk budget that could not admit the file
	// because nothing reclaimable remains (every candidate pinned by a clean
	// resident or mid-restore) — transient pressure, not an IO failure.
	errSpillDiskPinned = errors.New("store: disk budget exhausted and every spill file is pinned")
)

// spillCut is one consistent cut of a session's state, captured under
// Session.Mu (cutLocked) and serialized + published — temp file + fsync +
// atomic rename — after the lock is released (publishCut). The capture
// copies only the mutable fields (counters, the deletion-log slice); the
// training set and updater are immutable once captured (Update allocates
// its own scratch), so the expensive snapshot serialization reads them
// safely off-lock. payload holds the complete file bytes once serialized:
// a small delta segment carrying only the deletion-log suffix when the cut
// extends an existing chain, a full v2 base snapshot otherwise.
type spillCut struct {
	sess      *Session
	id        string
	kind      string
	createdAt time.Time
	// ds/upd are the immutable capture inputs a base cut serializes
	// off-lock; deleted is the full log copy for a base envelope, entries
	// the O(batch) suffix for a delta segment.
	ds      priu.TrainingSet
	upd     priu.Updater
	deleted []int
	entries []int
	// gen is sess.gen at the cut; a successful publish advances
	// persistedGen to it (CAS-max, so a stale publish cannot mask a newer
	// mutation's dirtiness).
	gen       int64
	updates   int64
	lastUpd   float64
	footprint int64
	payload   []byte
	sum       []byte
	isDelta   bool
	// fromLen/fromUpdates name the chain tip a delta cut extends — the
	// publish guard; toLen is the deletion-log length at the cut.
	fromLen     int64
	fromUpdates int64
	toLen       int64
}

// cutLocked captures a consistent cut of the session's state — the only
// part of a spill that must happen under sess.Mu, and it is O(batch): copy
// the counters and the deletion-log suffix (or, for a base, the log slice),
// no snapshot serialization and no IO — the no-IO-under-the-lock contract
// includes the blob tier, which is why the heal below is only signalled,
// never performed here. It returns a nil cut (no error) when there is
// nothing to write: the session is clean and its chain current. needPush
// reports a chain whose blob upload previously failed; the CALLER heals it
// (blobPush) after releasing sess.Mu — a network upload must never run
// under the session lock. When the indexed chain covers a prefix of the
// current deletion log, the cut is a delta segment — O(batch) bytes, not
// O(session) — otherwise a full v2 base.
func (t *Tiered) cutLocked(sess *Session) (cut *spillCut, needPush bool, err error) {
	if !sess.Dirty() {
		t.mu.Lock()
		e, onDisk := t.index[sess.ID]
		needPush = onDisk && t.blob != nil && e.local && !e.remote
		t.mu.Unlock()
		if onDisk {
			// Clean and already spilled: nothing to write. The disk-budget
			// evictor never reclaims a clean session's only copy (a clean
			// resident's chain without blob backing is pinned; a blob-backed
			// chain may be demoted but its entry survives), so the copy this
			// decision relies on cannot vanish underneath it.
			return nil, needPush, nil
		}
	}
	if !Spillable(sess.Kind, sess.Upd) {
		t.unspillable.Add(1)
		return nil, false, fmt.Errorf("store: session %s (family %q) cannot be snapshotted", sess.ID, sess.Kind)
	}
	cut = &spillCut{
		sess: sess, id: sess.ID, kind: sess.Kind, createdAt: sess.CreatedAt,
		gen: sess.gen.Load(), updates: sess.Updates, lastUpd: sess.LastUpdateSeconds,
		footprint: sess.footprint, toLen: int64(len(sess.Deleted)),
	}
	t.mu.Lock()
	if e := t.index[sess.ID]; e != nil && e.local && e.logLen >= 0 && e.logLen <= cut.toLen {
		// The chain covers a prefix of the current log (v1 bases report -1
		// and force a base rewrite): spill only the suffix. The deletion
		// log is append-only per session, so a prefix-length match means a
		// content match — the publish guard re-checks the tip under t.mu.
		cut.isDelta = true
		cut.fromLen = e.logLen
		cut.fromUpdates = e.updates
	}
	t.mu.Unlock()
	if cut.isDelta && cut.fromLen == cut.toLen && cut.fromUpdates == cut.updates {
		// Dirty by generation but the chain tip already matches the log and
		// counters exactly — the chain holds this logical state (deletion is
		// the only mutation, and it always moves the log or the counter).
		sess.persistUpTo(cut.gen)
		return nil, false, nil
	}
	if cut.isDelta {
		cut.entries = append([]int(nil), sess.Deleted[cut.fromLen:cut.toLen]...)
	} else {
		cut.ds, cut.upd = sess.DS, sess.Upd
		cut.deleted = append([]int(nil), sess.Deleted...)
	}
	return cut, false, nil
}

// serialize renders the cut's file bytes into the payload buffer. Called
// from publishCut, which write-behind workers reach after releasing the
// session lock — the capture copied every mutable input, and the training
// set and updater never mutate after capture, so even the O(session) base
// snapshot serializes without blocking readers.
func (cut *spillCut) serialize() error {
	var buf bytes.Buffer
	h := sha256.New()
	w := io.MultiWriter(&buf, h)
	if cut.isDelta {
		if err := writeDeltaSegment(w, cut, cut.entries); err != nil {
			return fmt.Errorf("store: cutting delta for %s: %w", cut.id, err)
		}
	} else {
		// v2 base: the deletion log lives in the envelope; the embedded
		// snapshot's own log section is written empty, which is what makes
		// compaction a byte splice.
		if err := writeSpillEnvelope(w, cut.id, cut.kind, cut.createdAt, cut.updates, cut.lastUpd, cut.deleted); err != nil {
			return err
		}
		if err := priu.WriteSessionSnapshot(w, cut.kind, cut.ds, cut.upd, nil); err != nil {
			return fmt.Errorf("store: snapshotting session %s: %w", cut.id, err)
		}
	}
	cut.payload = buf.Bytes()
	cut.sum = h.Sum(nil)
	return nil
}

// publishCut writes a cut's payload to a temp file, fsyncs, and publishes it
// with an atomic rename — all without holding the session's Mu (write-behind
// workers call it after releasing the lock; synchronous callers may still
// hold it). The rename happens under t.mu behind the chain guard: a delta
// lands only if the entry's tip still names exactly the (logLen, updates)
// the cut extends, and a base only if it is not older than the indexed tip —
// so a stale publish is discarded (errStaleSpill), never installed.
//
// Publishing enforces the storage bounds in order: the tenant's spill-byte
// cap (a *QuotaError rejection drops the write), then the global disk
// budget (evicting LRU spill files to make room), then the rename.
func (t *Tiered) publishCut(cut *spillCut) (bool, error) {
	spillStart := time.Now()
	if cut.payload == nil {
		if err := t.faultAt("spill.serialize"); err != nil {
			t.spillErrors.Add(1)
			return false, err
		}
		if err := cut.serialize(); err != nil {
			t.spillErrors.Add(1)
			return false, err
		}
	}
	tmpName, err := t.writeTempPayload(cut.payload)
	if err != nil {
		t.spillErrors.Add(1)
		return false, err
	}
	size := int64(len(cut.payload))
	ext := spillExt
	if cut.isDelta {
		ext = deltaExt
	}
	final := filepath.Join(t.dir, hex.EncodeToString(cut.sum)[:32]+ext)
	ten := TenantOf(cut.id)
	t.mu.Lock()
	e := t.index[cut.id]
	if cut.sess.gone.Load() {
		// The copy the cut came from has left the store — a Delete or lost
		// eviction landed between the cut and this publish. Installing the
		// cut now would resurrect state the caller was told is gone; worse,
		// if the id was re-registered meanwhile, any entry under it belongs
		// to the NEW session incarnation, whose chain tip can coincide with
		// the old one (both at logLen=0/updates=0 for fresh sessions), so
		// neither the delta chain guard nor the base version guard can tell
		// the incarnations apart — only this flag can. (Every removal path —
		// Delete, eviction, duplicate Put — marks the outgoing copy gone
		// before releasing t.mu, so the flag is authoritative here.)
		t.mu.Unlock()
		_ = os.Remove(tmpName)
		t.staleSpills.Add(1)
		return false, errStaleSpill
	}
	if cut.isDelta {
		if e == nil || !e.local || e.logLen != cut.fromLen || e.updates != cut.fromUpdates {
			t.mu.Unlock()
			_ = os.Remove(tmpName)
			t.staleSpills.Add(1)
			return false, errStaleSpill
		}
	} else if e != nil && (e.updates > cut.updates ||
		(e.updates == cut.updates && e.logLen > cut.toLen)) {
		t.mu.Unlock()
		_ = os.Remove(tmpName)
		t.staleSpills.Add(1)
		return false, errStaleSpill
	}
	// Reserve and publish in one critical section. A delta charges only its
	// own bytes on top of the chain; a base replaces the whole chain, so
	// both the tenant cap and the disk budget are charged the byte DELTA
	// against it — a same-size rewrite near the cap never spuriously fails
	// (the brief both-files window between the rename and the old-file
	// unlinks is tolerated like in-flight temps).
	var oldCharge int64
	if e != nil {
		oldCharge = e.spillCharged
	}
	newCharge := size
	if cut.isDelta {
		newCharge = oldCharge + size
	}
	if err := t.mem.reserveSpill(ten, newCharge-oldCharge); err != nil {
		t.mu.Unlock()
		_ = os.Remove(tmpName)
		t.spillErrors.Add(1)
		return false, err
	}
	// The disk gauge counts only local files: replacing a remote-only entry
	// (demoted cache, or adopted from the blob tier) charges the full new
	// file, not the delta against bytes that never lived here.
	diskDelta := size
	if !cut.isDelta && e != nil && e.local {
		diskDelta = size - e.localBytes()
	}
	ok, pinned := t.reserveDiskLocked(diskDelta, cut.id)
	if !ok {
		budget := t.maxDiskBytes
		t.mu.Unlock()
		t.mem.adjustSpill(ten, oldCharge-newCharge)
		_ = os.Remove(tmpName)
		t.spillErrors.Add(1)
		if pinned {
			return false, fmt.Errorf("store: spilling %s: %d bytes cannot fit the %d-byte disk budget: %w",
				cut.id, size, budget, errSpillDiskPinned)
		}
		return false, fmt.Errorf("store: spilling %s: %d bytes cannot fit the %d-byte disk budget", cut.id, size, budget)
	}
	if err := os.Rename(tmpName, final); err != nil {
		t.diskBytes -= diskDelta
		t.mu.Unlock()
		t.mem.adjustSpill(ten, oldCharge-newCharge)
		_ = os.Remove(tmpName)
		t.spillErrors.Add(1)
		return false, fmt.Errorf("store: publishing spill file: %w", err)
	}
	now := time.Now().UnixNano()
	var oldFiles []pathBytes
	chainLen := 0
	if cut.isDelta {
		e.deltas = append(e.deltas, deltaSeg{
			path: final, bytes: size, fromLen: cut.fromLen, fromUpdates: cut.fromUpdates,
			entries: cut.toLen - cut.fromLen, updates: cut.updates, lastUpd: cut.lastUpd,
		})
		e.logLen = cut.toLen
		e.updates = cut.updates
		e.spillCharged = newCharge
		// The blob object (if any) no longer holds the tip; the push below
		// (or the GC heal pass) re-certifies it from the spliced chain.
		e.remote = false
		e.lastUsed = now
		chainLen = len(e.deltas)
	} else {
		if e != nil && e.local {
			for _, pb := range e.localPaths() {
				// When the content hash (and so the path) is identical the
				// rename already overwrote the old base in place.
				if pb.path != final {
					oldFiles = append(oldFiles, pb)
				}
			}
		}
		t.index[cut.id] = &spillEntry{
			path: final, bytes: size, kind: cut.kind, createdAt: cut.createdAt,
			local: true, updates: cut.updates, logLen: cut.toLen,
			charged: cut.footprint, spillCharged: newCharge, lastUsed: now,
		}
	}
	// Advance persistedGen inside the same critical section that published
	// the entry: the disk-budget evictor classifies files by Dirty() under
	// t.mu, and must never observe the fresh chain still marked dirty — it
	// could reclaim it while a concurrent eviction concludes "preserved".
	// persistUpTo is a CAS-max, so if the session object was re-registered
	// or restored meanwhile this is a no-op, never a regression.
	cut.sess.persistUpTo(cut.gen)
	t.mu.Unlock()
	for _, pb := range oldFiles {
		t.removeSpillFile(pb.path, pb.bytes, "spill.unlink-old")
	}
	t.spills.Add(1)
	if cut.isDelta {
		t.deltaSpills.Add(1)
	}
	if m := t.metrics; m != nil {
		observeSince(m.SpillSeconds, spillStart)
	}
	// Write-behind to the shared tier: push the just-published tip up. A
	// failure leaves the entry local-only — restorable here, healed upward by
	// the GC sweep — and never fails the spill (local durability landed).
	if t.blob != nil {
		_ = t.blobPush(cut.id)
	}
	if cut.isDelta && t.compactAfter > 0 && chainLen >= t.compactAfter {
		t.scheduleCompact(cut.id)
	}
	return true, nil
}

// spillLocked writes the session's current state to the disk tier,
// reporting whether a file was actually written (clean sessions with a
// current chain are skipped). Callers hold sess.Mu, so the cut is
// consistent: any deletion applied after it will either be re-applied by a
// mutator that sees the gone flag or land in a later spill. A publish that
// loses the chain race to an OLDER in-flight background publish re-cuts
// from the (still locked, hence unchanged) current state and retries, so
// this never returns success for anything but the session's latest
// generation — the synchronous eviction fallback always persists the
// current state, never an enqueued stale buffer. needPush reports a clean
// chain whose blob upload is owed (see cutLocked); the caller heals it
// after releasing sess.Mu.
func (t *Tiered) spillLocked(sess *Session) (wrote bool, needPush bool, err error) {
	if sess.gone.Load() {
		// The copy already left the store (a concurrent Delete won the race
		// to sess.Mu before this caller): publishCut would discard every cut
		// as stale, so don't burn serialization attempts — there is nothing
		// of this copy left to persist.
		return false, false, nil
	}
	for attempt := 0; attempt < 8; attempt++ {
		cut, needPush, err := t.cutLocked(sess)
		if err != nil || cut == nil {
			return false, needPush, err
		}
		wrote, err := t.publishCut(cut)
		if errors.Is(err, errStaleSpill) {
			continue // an in-flight background publish moved the tip; re-cut
		}
		return wrote, false, err
	}
	return false, false, fmt.Errorf("store: spill of %s kept losing the publish race", sess.ID)
}

// writeTempPayload writes a serialized cut to a temp file in the spill
// directory and fsyncs it. The caller owns the temp file (rename or remove).
func (t *Tiered) writeTempPayload(payload []byte) (string, error) {
	if err := t.faultAt("spill.create-temp"); err != nil {
		return "", err
	}
	tmp, err := os.CreateTemp(t.dir, spillTmp+"*")
	if err != nil {
		return "", fmt.Errorf("store: creating spill temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(payload); err != nil {
		tmp.Close()
		_ = os.Remove(tmpName)
		return "", err
	}
	syncStart := time.Now()
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		_ = os.Remove(tmpName)
		return "", err
	}
	if m := t.metrics; m != nil {
		observeSince(m.FsyncSeconds, syncStart)
	}
	if err := t.faultAt("spill.after-temp"); err != nil {
		// Simulated crash after the temp write: the file stays behind, as a
		// real kill would leave it, for reindex/GC to clean up.
		tmp.Close()
		return "", err
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmpName)
		return "", err
	}
	return tmpName, nil
}

// spillEnvelope is the decoded header of one spill file.
type spillEnvelope struct {
	version           int
	id                string
	kind              string
	createdAt         time.Time
	updates           int64
	lastUpdateSeconds float64
	// deleted is the full deletion log — v2 envelopes carry it here, ahead
	// of the embedded snapshot, so compaction can splice logs without
	// decoding the model. v1 files keep the log inside the snapshot and
	// leave this nil.
	deleted []int
}

// logLen reports the envelope's deletion-log length for chain-tip purposes:
// v1 envelopes are opaque (-1) because their log is buried in the snapshot.
func (env *spillEnvelope) logLen() int64 {
	if env.version < 2 {
		return -1
	}
	return int64(len(env.deleted))
}

// readSpillEnvelope decodes a spill file's header (v1 or v2), returning the
// reader positioned at the embedded session snapshot.
func readSpillEnvelope(r io.Reader) (*binio.Reader, spillEnvelope, error) {
	br := binio.NewReader(r)
	var env spillEnvelope
	if err := br.Magic(spillMagic); err != nil {
		return nil, env, fmt.Errorf("store: %w", err)
	}
	v := br.U64()
	if br.Err == nil && v != 1 && v != spillVersion {
		return nil, env, fmt.Errorf("store: unsupported spill-file version %d", v)
	}
	env.version = int(v)
	env.id = br.Str(maxSpillName)
	env.kind = br.Str(maxSpillName)
	env.createdAt = time.Unix(0, br.I64())
	env.updates = br.I64()
	env.lastUpdateSeconds = br.F64()
	if env.version >= 2 {
		n := br.U64()
		if br.Err == nil && n > uint64(binio.MaxElems) {
			return nil, env, fmt.Errorf("store: spill deletion log claims %d entries", n)
		}
		// Grow incrementally so a torn length prefix can't force a huge
		// allocation before the short read surfaces.
		env.deleted = make([]int, 0, min(int(n), 4096))
		for i := uint64(0); i < n && br.Err == nil; i++ {
			env.deleted = append(env.deleted, int(br.I64()))
		}
	}
	if br.Err != nil {
		return nil, env, br.Err
	}
	if env.id == "" {
		return nil, env, fmt.Errorf("store: spill file has no session ID")
	}
	return br, env, nil
}

// writeSpillEnvelope writes a v2 spill-file header, including the full
// deletion log, leaving the writer positioned for the embedded snapshot
// (which is then written with a nil log).
func writeSpillEnvelope(w io.Writer, id, kind string, createdAt time.Time, updates int64, lastUpd float64, deleted []int) error {
	bw := binio.NewWriter(w)
	bw.Bytes([]byte(spillMagic))
	bw.U64(spillVersion)
	bw.Str(id)
	bw.Str(kind)
	bw.I64(createdAt.UnixNano())
	bw.I64(updates)
	bw.F64(lastUpd)
	bw.U64(uint64(len(deleted)))
	for _, v := range deleted {
		bw.I64(int64(v))
	}
	return bw.Flush()
}

// chainTail carries the deletion-log suffix and tip counters accumulated
// from a base's delta segments, to be replayed on top of it at restore.
type chainTail struct {
	entries []int
	updates int64
	lastUpd float64
}

// buildSession decodes a spill envelope and its embedded snapshot from r and
// rebuilds the session, replaying the full deletion log — the base's own log
// (envelope-carried for v2, snapshot-carried for v1) plus any delta-chain
// tail — in one Update call, so every honored deletion stays deleted in the
// restored model.
func (t *Tiered) buildSession(id string, r io.Reader, tail *chainTail) (*Session, spillEnvelope, error) {
	br, env, err := readSpillEnvelope(r)
	if err != nil {
		return nil, env, err
	}
	if env.id != id {
		return nil, env, fmt.Errorf("store: spill data holds session %s, want %s", env.id, id)
	}
	family, ds, upd, snapDeleted, err := priu.ReadSessionSnapshot(br.R)
	if err != nil {
		return nil, env, fmt.Errorf("store: restoring session %s: %w", id, err)
	}
	deleted := env.deleted
	if len(snapDeleted) > 0 {
		deleted = append(deleted, snapDeleted...)
	}
	updates, lastUpd := env.updates, env.lastUpdateSeconds
	if tail != nil && len(tail.entries) > 0 {
		deleted = append(append([]int(nil), deleted...), tail.entries...)
		updates, lastUpd = tail.updates, tail.lastUpd
	}
	model := upd.Model()
	if len(deleted) > 0 {
		model, err = upd.Update(deleted)
		if err != nil {
			return nil, env, fmt.Errorf("store: replaying deletion log of %s: %w", id, err)
		}
	}
	sess := &Session{
		ID:                id,
		Kind:              family,
		CreatedAt:         env.createdAt,
		DS:                ds,
		Upd:               upd,
		Model:             model,
		Deleted:           deleted,
		Updates:           updates,
		LastUpdateSeconds: lastUpd,
		footprint:         TrainingSetBytes(ds) + upd.FootprintBytes(),
		// gen == persistedGen == 0: the spilled chain is exactly this state.
	}
	sess.Touch()
	return sess, env, nil
}

// restore rebuilds a session from its spill entry — the local base + delta
// chain when one exists, the shared blob tier otherwise — and publishes it
// to the in-memory tier. The chain is snapshotted under t.mu so a racing
// publish cannot change it mid-read; compaction defers while a restore
// flight is registered, so the snapshotted files stay on disk.
func (t *Tiered) restore(id string, e *spillEntry) (*Session, error) {
	restoreStart := time.Now()
	t.mu.Lock()
	local := e.local
	base := e.path
	segs := append([]deltaSeg(nil), e.deltas...)
	t.mu.Unlock()
	var src io.ReadCloser
	var tail *chainTail
	if local {
		f, err := os.Open(base)
		if err != nil {
			return nil, fmt.Errorf("store: opening spill file for %s: %w", id, err)
		}
		src = f
		if len(segs) > 0 {
			tail = &chainTail{}
			for _, sg := range segs {
				d, err := readDeltaFile(sg.path)
				if err != nil {
					src.Close()
					return nil, fmt.Errorf("store: reading delta segment for %s: %w", id, err)
				}
				if d.id != id || d.fromLen != sg.fromLen || d.fromUpdates != sg.fromUpdates {
					src.Close()
					return nil, fmt.Errorf("store: delta segment %s does not extend %s's chain", sg.path, id)
				}
				tail.entries = append(tail.entries, d.entries...)
				tail.updates, tail.lastUpd = d.updates, d.lastUpd
			}
		}
	} else {
		if err := t.faultAt("blob.get"); err != nil {
			return nil, err
		}
		getStart := time.Now()
		rc, _, err := t.blob.Get(id)
		if err != nil {
			if err != ErrBlobNotFound {
				t.blobErrors.Add(1)
			}
			return nil, fmt.Errorf("store: fetching %s from blob tier: %w", id, err)
		}
		t.blobGets.Add(1)
		if m := t.metrics; m != nil {
			observeSince(m.BlobGetSeconds, getStart)
		}
		src = rc
	}
	defer src.Close()
	sess, _, err := t.buildSession(id, src, tail)
	if err != nil {
		return nil, err
	}
	t.armWriteBehind(sess)
	t.restores.Add(1)
	if m := t.metrics; m != nil {
		observeSince(m.RestoreSeconds, restoreStart)
	}
	// No quota check on a restore: the session already counts against its
	// tenant, only the resident-tier accounting moves. If the spill entry
	// was seeded from a reboot (billed at file size), settle the ownership
	// byte charge to the true resident footprint now that it is known.
	t.mu.Lock()
	if cur, ok := t.index[id]; ok && cur == e {
		if e.charged != sess.footprint {
			t.mem.adjustOwned(TenantOf(id), 0, sess.footprint-e.charged)
			e.charged = sess.footprint
		}
		e.lastUsed = time.Now().UnixNano()
	}
	t.mu.Unlock()
	t.mem.putRestored(sess)
	return sess, nil
}

// reindex scans the spill directory on boot: temp files from interrupted
// spills are removed, base files are indexed by the envelope header, and
// delta segments are re-attached to their base by (fromLen, fromUpdates)
// continuity. When several bases claim the same session (a crash between
// publishing a new base — spill or compaction — and unlinking the old
// chain) the newest wins, decided by the envelope's monotonic per-session
// update counter, then by deletion-log length (a just-compacted base ties
// its source chain's tip on updates), then file mtime. Files of tombstoned
// sessions are deleted, never indexed, so an acknowledged deletion cannot
// resurrect through a leftover chain. Torn delta segments (unreadable
// header or truncated entries) are dropped — the chain prefix before them
// remains authoritative. The scan also seeds the maintained
// spill_dir_bytes gauge (indexed files plus whatever unreadable leftovers
// remain for GC).
func (t *Tiered) reindex() error {
	entries, err := os.ReadDir(t.dir)
	if err != nil {
		return fmt.Errorf("store: reading spill dir: %w", err)
	}
	type baseFile struct {
		path   string
		size   int64
		mtime  time.Time
		env    spillEnvelope
		logLen int64
	}
	type deltaFile struct {
		path  string
		size  int64
		mtime time.Time
		hdr   deltaHeader
	}
	bases := make(map[string][]baseFile)
	deltas := make(map[string][]deltaFile)
	var orphanBytes int64
	tombSwept := make(map[string]bool) // tombstoned ids whose files all unlinked cleanly
	for id := range t.tombstones {
		tombSwept[id] = true
	}
	tombDrop := func(id, path string) bool {
		ts := t.tombstones[id]
		if ts == nil || ts.localClean {
			return false
		}
		if err := os.Remove(path); err != nil {
			tombSwept[id] = false
		}
		return true
	}
	for _, de := range entries {
		name := de.Name()
		path := filepath.Join(t.dir, name)
		if strings.HasPrefix(name, spillTmp) {
			_ = os.Remove(path)
			continue
		}
		if de.IsDir() || name == tombstoneFile {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		switch {
		case strings.HasSuffix(name, spillExt):
			f, err := os.Open(path)
			if err != nil {
				orphanBytes += info.Size()
				continue
			}
			_, env, err := readSpillEnvelope(f)
			f.Close()
			if err != nil {
				// Unreadable header: not one of ours (or torn by something
				// other than our atomic writes); don't index it — the
				// age-based GC will sweep it once it is old enough.
				orphanBytes += info.Size()
				continue
			}
			if tombDrop(env.id, path) {
				continue
			}
			bases[env.id] = append(bases[env.id], baseFile{
				path: path, size: info.Size(), mtime: info.ModTime(),
				env: env, logLen: env.logLen(),
			})
		case strings.HasSuffix(name, deltaExt):
			hdr, err := readDeltaHeaderFile(path)
			if err != nil {
				if hdr.id != "" {
					// The header decoded but the entries are torn: this is
					// one of our segments with a truncated body, and no
					// restore can ever replay it — remove it now so the
					// intact chain prefix serves without a poisoned tail.
					_ = os.Remove(path)
				} else {
					orphanBytes += info.Size()
				}
				continue
			}
			if tombDrop(hdr.id, path) {
				continue
			}
			deltas[hdr.id] = append(deltas[hdr.id], deltaFile{
				path: path, size: info.Size(), mtime: info.ModTime(), hdr: hdr,
			})
		default:
			orphanBytes += info.Size()
		}
	}
	for id, cands := range bases {
		best := 0
		for i := 1; i < len(cands); i++ {
			b, p := cands[i], cands[best]
			if b.env.updates > p.env.updates ||
				(b.env.updates == p.env.updates && b.logLen > p.logLen) ||
				(b.env.updates == p.env.updates && b.logLen == p.logLen && b.mtime.After(p.mtime)) {
				best = i
			}
		}
		for i, b := range cands {
			if i != best {
				_ = os.Remove(b.path)
			}
		}
		b := cands[best]
		e := &spillEntry{
			path: b.path, bytes: b.size, kind: b.env.kind, createdAt: b.env.createdAt,
			local: true, updates: b.env.updates, logLen: b.logLen,
			lastUsed: b.mtime.UnixNano(),
		}
		// Re-attach the delta chain by tip continuity. v1 bases (-1) are
		// opaque — no deltas can extend them. Segments that don't chain
		// (superseded by a compaction, or following a torn segment) are
		// unlinked: the indexed chain must replay without gaps.
		rest := deltas[id]
		delete(deltas, id)
		if e.logLen >= 0 {
			for {
				found := -1
				for i, d := range rest {
					if d.hdr.fromLen == e.logLen && d.hdr.fromUpdates == e.updates {
						found = i
						break
					}
				}
				if found < 0 {
					break
				}
				d := rest[found]
				rest = append(rest[:found], rest[found+1:]...)
				e.deltas = append(e.deltas, deltaSeg{
					path: d.path, bytes: d.size, fromLen: d.hdr.fromLen,
					fromUpdates: d.hdr.fromUpdates, entries: d.hdr.entries,
					updates: d.hdr.updates, lastUpd: d.hdr.lastUpd,
				})
				e.logLen = d.hdr.fromLen + d.hdr.entries
				e.updates = d.hdr.updates
				if ts := d.mtime.UnixNano(); ts > e.lastUsed {
					e.lastUsed = ts
				}
			}
		}
		for _, d := range rest {
			_ = os.Remove(d.path)
		}
		// The resident footprint isn't known without restoring; bill the
		// chain size until the first restore settles the difference.
		total := e.localBytes()
		e.charged = total
		e.spillCharged = total
		t.index[id] = e
		t.diskBytes += total
	}
	// Delta segments with no base at all (their base's publish never landed,
	// or it was superseded and swept): unusable, remove.
	for _, ds := range deltas {
		for _, d := range ds {
			_ = os.Remove(d.path)
		}
	}
	// Every local file of a tombstoned session has now been unlinked (or
	// none existed): resolve the local side of those tombstones.
	for id, clean := range tombSwept {
		if clean {
			t.tombstoneResolve(id, tombLocal)
		}
	}
	t.orphanBytes = orphanBytes
	return nil
}
