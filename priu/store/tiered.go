package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/binio"
	"repro/priu"
)

// Spill-file envelope: a small header carrying the store-level identity and
// counters that the priu session snapshot itself does not know about,
// followed by the self-contained snapshot (family + dataset + deletion log +
// provenance). Files are content-addressed — named by the SHA-256 of their
// bytes — and written as temp-file + rename, so a crash mid-spill leaves at
// worst an ignorable temp file, never a torn session.
const (
	spillMagic   = "PRSP"
	spillVersion = 1
	spillExt     = ".sess"
	spillTmp     = "tmp-"

	// maxSpillName bounds decoded ID/family strings in envelopes.
	maxSpillName = 1 << 20
)

// spillEntry is the disk tier's index record for one session. At least one
// of local/remote is true: local means path names a cache file in the spill
// directory, remote means the shared blob tier holds the same version (when
// both are set the local file is a read cache of the blob object).
type spillEntry struct {
	path      string
	bytes     int64
	kind      string
	createdAt time.Time
	local     bool
	remote    bool
	// updates is the envelope's monotonic per-session update counter at the
	// time this entry was published — the newest-wins version used when
	// reconciling the local cache against the blob tier.
	updates int64
	// charged is what the session's tenant ownership was billed for this
	// session (guarded by Tiered.mu): the resident footprint when spilled by
	// this process, the file size when seeded from a reboot reindex (the
	// footprint isn't known without restoring). Restores settle the drift.
	charged int64
	// lastUsed is a unix-nano LRU clock for the disk-budget file evictor:
	// bumped when the file is written and when the session restores from it
	// (mtime at boot). Guarded by Tiered.mu.
	lastUsed int64
}

// flight is one in-progress restore; joiners wait on done.
type flight struct {
	done chan struct{}
	sess *Session
	ok   bool
}

// Tiered wraps the in-memory tier with a spill directory: evictions spill,
// touches of cold sessions restore (singleflight), Close drains dirty
// residents, and NewTiered re-indexes whatever a previous process left. Its
// lifecycle manager (lifecycle.go) keeps the disk tier bounded and off the
// hot path: a write-behind queue snapshots dirty sessions eagerly so most
// evictions just drop the resident copy, a disk budget evicts
// least-recently-used spill files, and an age-based GC sweeps orphaned
// leftovers.
type Tiered struct {
	mem *Memory
	dir string

	// blob, when set (WithBlobStore), is the shared tier the spill directory
	// caches; see tieredblob.go.
	blob BlobStore

	// Lifecycle configuration (fixed after NewTiered).
	spillOnEvict bool
	maxDiskBytes int64
	queueLen     int
	workers      int
	gcAge        time.Duration
	gcInterval   time.Duration

	mu      sync.Mutex
	index   map[string]*spillEntry
	flights map[string]*flight
	// diskBytes is the total size of indexed spill files; orphanBytes is
	// what else the boot scan / GC sweeps found in the directory (crash
	// leftovers — in-flight temp files are excluded). Their sum is the
	// served spill_dir_bytes gauge, and the disk budget bounds it. Both are
	// guarded by mu.
	diskBytes   int64
	orphanBytes int64
	// blobPutting gates blob uploads (one in flight per session); guarded by
	// mu. pendingBlobDel tombstones blob keys of acknowledged deletes until
	// their removal sticks — the read-through path refuses tombstoned keys
	// and the GC sweep retries the deletes. Guarded by mu.
	blobPutting    map[string]bool
	pendingBlobDel map[string]bool

	// Write-behind queue state (lifecycle.go).
	qmu      sync.Mutex
	queue    chan *Session
	pending  map[string]bool
	qClosed  bool
	inflight atomic.Int64
	stopGC   chan struct{}
	wg       sync.WaitGroup

	spills        atomic.Int64
	restores      atomic.Int64
	spillErrors   atomic.Int64
	restoreErrors atomic.Int64
	unspillable   atomic.Int64
	writeBehind   atomic.Int64
	queueFull     atomic.Int64
	diskEvictions atomic.Int64
	gcRemovals    atomic.Int64
	blobPuts      atomic.Int64
	blobGets      atomic.Int64
	blobDeletes   atomic.Int64
	blobErrors    atomic.Int64
	blobDemotions atomic.Int64

	// metrics, when set (WithMetrics), receives tier-operation latency
	// observations; nil means every recording site is a single nil check.
	metrics *TierMetrics

	// fault, when set (tests only), is consulted at named crash points
	// inside spill/GC/drain; a non-nil return aborts the operation exactly
	// where a crash would, leaving on-disk state as a kill there would.
	fault func(point string) error
	// onDiskEvict, when set (tests only), observes disk-budget drops of
	// disk-only sessions; onEvictLost observes evictions that could not
	// preserve their victim (spilling disabled or the spill failed). These
	// are the only paths that lose a session by design, and both fire
	// before the loss is observable through Get.
	onDiskEvict func(id string)
	onEvictLost func(id string)
}

// faultAt consults the injected crash-point hook (nil outside tests).
func (t *Tiered) faultAt(point string) error {
	if t.fault == nil {
		return nil
	}
	return t.fault(point)
}

// removeSpillFile unlinks a de-indexed spill file, keeping the disk gauge
// honest when the unlink fails (or a fault skips it): the file still
// occupies disk, so its bytes move to the orphan share — where the
// age-based GC will reclaim them — instead of vanishing from the books.
// Callers must not hold t.mu.
func (t *Tiered) removeSpillFile(path string, bytes int64, faultPoint string) {
	if t.faultAt(faultPoint) == nil {
		if err := os.Remove(path); err == nil || os.IsNotExist(err) {
			return
		}
	}
	t.mu.Lock()
	t.orphanBytes += bytes
	t.mu.Unlock()
}

// TieredOption configures NewTiered.
type TieredOption func(*Tiered)

// WithSpillOnEvict controls whether budget evictions spill to disk (default
// true). When disabled, evictions drop sessions as in the plain memory store
// (and the write-behind queue is idle) but Close still snapshots dirty
// residents, giving restart durability without an eviction disk tier.
func WithSpillOnEvict(enabled bool) TieredOption {
	return func(t *Tiered) { t.spillOnEvict = enabled }
}

// WithSpillMaxBytes bounds the spill directory (0 = unbounded): when a new
// spill would take the indexed-plus-orphaned file bytes over the budget,
// least-recently-used spill files are evicted first — warm backups of
// resident sessions before disk-only sessions, whose drop loses the session
// and is counted in DiskEvictions.
func WithSpillMaxBytes(b int64) TieredOption {
	return func(t *Tiered) { t.maxDiskBytes = b }
}

// WithWriteBehind sizes the eager-spill queue (default 256 deep, 1 worker).
// A zero queue length disables write-behind entirely: every spill happens
// synchronously on the evicting goroutine, the pre-lifecycle behavior.
func WithWriteBehind(queueLen, workers int) TieredOption {
	return func(t *Tiered) {
		t.queueLen = queueLen
		if workers > 0 {
			t.workers = workers
		}
	}
}

// WithSpillGC runs the age-based spill-directory GC every interval: orphaned
// session files (unindexed — typically left by crashes or failed unlinks of
// long-deleted sessions) and stale temp files older than age are removed,
// and the orphan-byte gauge is refreshed. A zero interval disables the
// background sweep (gcOnce can still be driven directly).
func WithSpillGC(age, interval time.Duration) TieredOption {
	return func(t *Tiered) {
		if age > 0 {
			t.gcAge = age
		}
		t.gcInterval = interval
	}
}

// NewTiered opens (creating if needed) the spill directory, re-indexes the
// session files a previous process left there, installs the spill hook on
// mem's evictions, and starts the lifecycle manager (write-behind workers
// and, when configured, the GC sweep). mem must be freshly constructed and
// not shared.
func NewTiered(dir string, mem *Memory, opts ...TieredOption) (*Tiered, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating spill dir: %w", err)
	}
	t := &Tiered{
		mem:            mem,
		dir:            dir,
		index:          make(map[string]*spillEntry),
		flights:        make(map[string]*flight),
		pending:        make(map[string]bool),
		blobPutting:    make(map[string]bool),
		pendingBlobDel: make(map[string]bool),
		spillOnEvict:   true,
		queueLen:       256,
		workers:        1,
		gcAge:          time.Hour,
	}
	for _, opt := range opts {
		opt(t)
	}
	if err := t.reindex(); err != nil {
		return nil, err
	}
	if err := t.syncBlob(); err != nil {
		return nil, err
	}
	// Seed the tenants' cross-tier ownership and spill-file usage with what
	// a previous process left on disk, so quotas and spill caps count
	// rebooted spill files from the first request. mem is freshly
	// constructed (see above), so nothing double counts.
	for id, e := range t.index {
		mem.adjustOwned(TenantOf(id), 1, e.charged)
		mem.adjustSpill(TenantOf(id), e.bytes)
	}
	mem.onEvictLocked = func(sess *Session) bool {
		if t.spillOnEvict {
			// The write-behind queue usually got here first: a clean session
			// with a current disk copy is preserved by just dropping the
			// resident copy — no file IO under the victim's lock. The
			// synchronous spill is the fallback (dirty victim, queue
			// backlog, or write-behind disabled).
			if _, err := t.spillLocked(sess); err == nil {
				return true // preserved: the spill file holds this state
			}
		} else if !sess.dirty.Load() {
			t.mu.Lock()
			_, onDisk := t.index[sess.ID]
			t.mu.Unlock()
			if onDisk {
				return true // any disk copy is exactly this state; keep it restorable
			}
		}
		// The session is leaving memory carrying state the disk tier does
		// not have (spilling disabled, or the spill failed). A stale disk
		// copy must not resurrect on the next touch — that would silently
		// undo honored deletions — so drop it: the session is lost, exactly
		// like a memory-only eviction.
		if t.onEvictLost != nil {
			t.onEvictLost(sess.ID)
		}
		t.invalidate(sess.ID)
		return false
	}
	t.startLifecycle()
	return t, nil
}

// invalidate forgets a session's disk and blob copies (stale relative to
// state that was just lost with an eviction): a stale copy must not
// resurrect on the next touch — locally or through the read-through path.
func (t *Tiered) invalidate(id string) {
	t.mu.Lock()
	e, ok := t.index[id]
	if ok {
		delete(t.index, id)
		if e.local {
			t.diskBytes -= e.bytes
		}
	}
	t.mu.Unlock()
	if ok {
		if e.local {
			t.removeSpillFile(e.path, e.bytes, "invalidate.unlink")
		}
		if e.remote {
			t.blobRemove(id)
		}
		t.mem.adjustSpill(TenantOf(id), -e.bytes)
	}
}

// Spillable reports whether a session of this family/updater can be written
// as a session snapshot and restored later.
func Spillable(kind string, upd priu.Updater) bool {
	if _, ok := upd.(priu.Snapshotter); !ok {
		return false
	}
	f, ok := priu.Lookup(kind)
	return ok && f.Restore != nil
}

// Put implements Store. The memory tier's ownership counters already span
// both tiers (a spill moves a session out of resident but not out of
// owned), so the quota check is the same single atomic compare: eviction to
// disk never frees quota, only an explicit Delete does. The accepted session
// is scheduled for an eager write-behind snapshot so the eviction that later
// targets it can drop instead of write.
func (t *Tiered) Put(sess *Session) error {
	t.armWriteBehind(sess)
	if err := t.mem.Put(sess); err != nil {
		return err
	}
	t.enqueueSpill(sess)
	return nil
}

// TenantUsage implements Store.
func (t *Tiered) TenantUsage(tenant string) TenantUsage { return t.mem.TenantUsage(tenant) }

// Get implements Store: a resident hit is lock-free beyond the shard RLock;
// a cold session is restored from its spill file exactly once, no matter how
// many goroutines touch it concurrently.
func (t *Tiered) Get(id string) (*Session, bool) {
	if sess, ok := t.mem.Get(id); ok {
		return sess, true
	}
	t.mu.Lock()
	if f, inflight := t.flights[id]; inflight {
		t.mu.Unlock()
		<-f.done
		return f.sess, f.ok
	}
	e, spilled := t.index[id]
	if !spilled {
		if t.blob == nil || t.pendingBlobDel[id] {
			t.mu.Unlock()
			// The session may have become resident between the miss and the
			// index check (a racing restore that just published). Tombstoned
			// keys belong to acknowledged deletes — never readopt them.
			return t.mem.Get(id)
		}
		// Read-through: the session has no local state at all, but the shared
		// blob tier may hold it (created by another replica, or handed off).
		// Same singleflight as a local restore.
		f := &flight{done: make(chan struct{})}
		t.flights[id] = f
		t.mu.Unlock()
		if sess, ok := t.mem.Get(id); ok {
			f.sess, f.ok = sess, true
		} else if sess, err := t.adopt(id); err != nil {
			t.restoreErrors.Add(1)
		} else if sess != nil {
			f.sess, f.ok = sess, true
		}
		t.mu.Lock()
		delete(t.flights, id)
		t.mu.Unlock()
		close(f.done)
		return f.sess, f.ok
	}
	f := &flight{done: make(chan struct{})}
	t.flights[id] = f
	// The file is about to be read: bump its LRU clock so the disk-budget
	// evictor (which also skips any id with an in-flight restore) treats it
	// as hot, not as the coldest file on disk.
	e.lastUsed = time.Now().UnixNano()
	t.mu.Unlock()

	// Leader path. Re-check residency first: a restore that completed
	// between our memory miss and the flight registration already published
	// the session (the index keeps its entry after a restore).
	if sess, ok := t.mem.Get(id); ok {
		f.sess, f.ok = sess, true
	} else if sess, err := t.restore(id, e); err != nil {
		t.restoreErrors.Add(1)
	} else {
		// A Delete (or disk-budget eviction) that raced the restore removed
		// the index entry; honor it instead of resurrecting the session.
		t.mu.Lock()
		_, still := t.index[id]
		t.mu.Unlock()
		if still {
			f.sess, f.ok = sess, true
		} else {
			t.mem.drop(id)
		}
	}
	t.mu.Lock()
	delete(t.flights, id)
	t.mu.Unlock()
	close(f.done)
	return f.sess, f.ok
}

// Delete implements Store: the session is forgotten in both tiers.
func (t *Tiered) Delete(id string) bool {
	resident := t.mem.Delete(id)
	t.mu.Lock()
	e, spilled := t.index[id]
	if spilled {
		delete(t.index, id)
		if e.local {
			t.diskBytes -= e.bytes
		}
	}
	t.mu.Unlock()
	if spilled {
		// Spill-file hygiene: an explicit DELETE forgets the session in
		// every tier, including its on-disk snapshot and blob object — even
		// when a resident copy also existed (the copies would otherwise
		// outlive the session until the age-based GC or the next boot
		// reindex, and a blob copy could resurrect through read-through).
		if e.local {
			t.removeSpillFile(e.path, e.bytes, "delete.unlink")
		}
		// Remove the blob object whenever a blob tier is configured, not just
		// when the entry is marked remote: a push may be in flight (the entry
		// not yet certified), and blobRemove's tombstone covers that race.
		t.blobRemove(id)
		t.mem.adjustSpill(TenantOf(id), -e.bytes)
		if !resident {
			// Count the disk-only delete on the same shard the session
			// would live on, keeping per-shard sums consistent, and release
			// the tenant's ownership charge (the resident path did this in
			// mem.Delete).
			t.mem.shards[ShardIndex(id)].explicitDeletes.Add(1)
			t.mem.chargeExplicitDelete(TenantOf(id))
			t.mem.adjustOwned(TenantOf(id), -1, -e.charged)
		}
	}
	return resident || spilled
}

// Touch implements Store: touching a cold session restores it ("the LRU
// budget is a cache tier, not a cliff").
func (t *Tiered) Touch(id string) bool {
	_, ok := t.Get(id)
	return ok
}

// Range implements Store (resident sessions only; spilled sessions are
// listed by Stats without being restored).
func (t *Tiered) Range(fn func(*Session) bool) { t.mem.Range(fn) }

// Stats implements Store. SpillDirBytes is served from the lifecycle
// manager's maintained counters (indexed files + scanned orphans) — no
// per-request directory walk; the boot reindex seeds it and GC sweeps
// refresh the orphan share.
func (t *Tiered) Stats() Stats {
	st := t.mem.Stats()
	st.Spills = t.spills.Load()
	st.Restores = t.restores.Load()
	st.Unspillable = t.unspillable.Load()
	st.SpillMaxBytes = t.maxDiskBytes
	st.WriteBehindSpills = t.writeBehind.Load()
	st.SpillQueueFull = t.queueFull.Load()
	st.DiskEvictions = t.diskEvictions.Load()
	st.GCRemovals = t.gcRemovals.Load()
	st.SpillQueueDepth = t.queueDepth()
	st.BlobTier = t.blob != nil
	st.BlobPuts = t.blobPuts.Load()
	st.BlobGets = t.blobGets.Load()
	st.BlobDeletes = t.blobDeletes.Load()
	st.BlobErrors = t.blobErrors.Load()
	st.BlobDemotions = t.blobDemotions.Load()
	t.mu.Lock()
	st.SpillDirBytes = t.diskBytes + t.orphanBytes
	for id, e := range t.index {
		if e.remote {
			st.BlobSessions++
			st.BlobBytes += e.bytes
		}
		if t.mem.has(id) {
			continue // resident copy is authoritative; the file is a warm backup
		}
		st.Spilled++
		st.SpilledBytes += e.bytes
		st.SpilledSessions = append(st.SpilledSessions, SpilledSession{
			ID: id, Kind: e.kind, CreatedAt: e.createdAt, Bytes: e.bytes,
			Remote: e.remote && !e.local,
		})
		// Per-tenant spilled usage comes from the memory tier's ownership
		// counters (owned − resident), already in st.Tenants.
	}
	t.mu.Unlock()
	return st
}

// Close implements Store: the SIGTERM drain, ordered after the write-behind
// queue. The GC sweep stops, the queue is closed and its backlog flushed by
// the workers, and then every dirty resident session is snapshotted to the
// spill directory so the next process restores the exact pre-shutdown
// state. Unspillable sessions are counted and skipped.
func (t *Tiered) Close() error {
	t.stopLifecycle()
	var firstErr error
	t.mem.Range(func(sess *Session) bool {
		if t.faultAt("drain.session") != nil {
			return false // simulated crash mid-drain
		}
		sess.Mu.Lock()
		_, err := t.spillLocked(sess)
		if err != nil {
			// The session's current state could not be persisted (cap, full
			// disk, IO error). Any older disk copy is now stale relative to
			// honored deletions — the next boot must not resurrect it, so
			// drop it, exactly like the eviction path does. The session's
			// state dies with this process either way; losing it entirely
			// beats silently undoing acknowledged deletions.
			t.invalidate(sess.ID)
		}
		sess.Mu.Unlock()
		if err != nil && firstErr == nil {
			firstErr = err
		}
		return true
	})
	return firstErr
}

// spillLocked writes the session's current state to the disk tier,
// reporting whether a file was actually written (clean sessions with a
// current disk copy are skipped). Callers hold sess.Mu, so the snapshot is
// a consistent cut: any deletion applied after it will either be re-applied
// by a mutator that sees the gone flag or land in a later spill.
//
// Publishing enforces the storage bounds in order: the tenant's spill-byte
// cap (a *QuotaError rejection drops the write), then the global disk
// budget (evicting LRU spill files to make room), then the atomic rename.
func (t *Tiered) spillLocked(sess *Session) (bool, error) {
	if !sess.dirty.Load() {
		t.mu.Lock()
		e, onDisk := t.index[sess.ID]
		needPush := onDisk && t.blob != nil && e.local && !e.remote
		t.mu.Unlock()
		if onDisk {
			// Clean and already spilled: nothing to write. The disk-budget
			// evictor never reclaims a clean session's only copy (a clean
			// resident's file without blob backing is pinned; a blob-backed
			// file may be demoted but its entry survives), so the copy this
			// decision relies on cannot vanish underneath it. A file whose
			// blob upload previously failed is healed here.
			if needPush {
				_ = t.blobPush(sess.ID)
			}
			return false, nil
		}
	}
	if !Spillable(sess.Kind, sess.Upd) {
		t.unspillable.Add(1)
		return false, fmt.Errorf("store: session %s (family %q) cannot be snapshotted", sess.ID, sess.Kind)
	}
	spillStart := time.Now()
	tmpName, size, sum, err := t.writeSpillTemp(sess)
	if err != nil {
		t.spillErrors.Add(1)
		return false, err
	}
	ten := TenantOf(sess.ID)
	final := filepath.Join(t.dir, hex.EncodeToString(sum)[:32]+spillExt)
	// Reserve and publish in one critical section. The session's existing
	// file (if any) is replaced, so both the tenant cap and the disk budget
	// are charged the byte DELTA against it — a same-size rewrite near the
	// cap never spuriously fails (the brief both-files window between the
	// rename and the old-file unlink is tolerated like in-flight temps).
	t.mu.Lock()
	old := t.index[sess.ID]
	var oldBytes int64
	if old != nil {
		oldBytes = old.bytes
	}
	delta := size - oldBytes
	// The disk gauge counts only local cache files: replacing a remote-only
	// entry (demoted cache, or adopted from the blob tier) charges the full
	// new file, not the delta against bytes that never lived here.
	diskDelta := size
	if old != nil && old.local {
		diskDelta = size - old.bytes
	}
	if err := t.mem.reserveSpill(ten, delta); err != nil {
		t.mu.Unlock()
		_ = os.Remove(tmpName)
		t.spillErrors.Add(1)
		return false, err
	}
	if !t.reserveDiskLocked(diskDelta, sess.ID) {
		budget := t.maxDiskBytes
		t.mu.Unlock()
		t.mem.adjustSpill(ten, -delta)
		_ = os.Remove(tmpName)
		t.spillErrors.Add(1)
		return false, fmt.Errorf("store: spilling %s: %d bytes cannot fit the %d-byte disk budget", sess.ID, size, budget)
	}
	if err := os.Rename(tmpName, final); err != nil {
		t.diskBytes -= diskDelta
		t.mu.Unlock()
		t.mem.adjustSpill(ten, -delta)
		_ = os.Remove(tmpName)
		t.spillErrors.Add(1)
		return false, fmt.Errorf("store: publishing spill file: %w", err)
	}
	t.index[sess.ID] = &spillEntry{
		path: final, bytes: size, kind: sess.Kind, createdAt: sess.CreatedAt,
		local: true, updates: sess.Updates,
		charged: sess.footprint, lastUsed: time.Now().UnixNano(),
	}
	// Clear dirty inside the same critical section that published the entry:
	// the disk-budget evictor classifies files by this flag under t.mu, and
	// must never observe the fresh file still marked dirty — it could
	// reclaim it while a concurrent eviction concludes "preserved".
	sess.dirty.Store(false)
	t.mu.Unlock()
	if old != nil && old.local && old.path != final {
		// When the content hash (and so the path) is identical the rename
		// already overwrote the old file in place.
		t.removeSpillFile(old.path, oldBytes, "spill.unlink-old")
	}
	t.spills.Add(1)
	if m := t.metrics; m != nil {
		observeSince(m.SpillSeconds, spillStart)
	}
	// Write-behind to the shared tier: push the just-published file up. A
	// failure leaves the entry local-only — restorable here, healed upward by
	// the GC sweep — and never fails the spill (local durability landed).
	if t.blob != nil {
		_ = t.blobPush(sess.ID)
	}
	return true, nil
}

// writeSpillTemp serializes the session to a temp file in the spill
// directory, returning its path, size and content hash. The caller owns the
// temp file (rename or remove).
func (t *Tiered) writeSpillTemp(sess *Session) (string, int64, []byte, error) {
	if err := t.faultAt("spill.create-temp"); err != nil {
		return "", 0, nil, err
	}
	tmp, err := os.CreateTemp(t.dir, spillTmp+"*")
	if err != nil {
		return "", 0, nil, fmt.Errorf("store: creating spill temp file: %w", err)
	}
	tmpName := tmp.Name()
	fail := func(err error) (string, int64, []byte, error) {
		tmp.Close()
		_ = os.Remove(tmpName)
		return "", 0, nil, err
	}
	h := sha256.New()
	w := io.MultiWriter(tmp, h)
	bw := binio.NewWriter(w)
	bw.Bytes([]byte(spillMagic))
	bw.U64(spillVersion)
	bw.Str(sess.ID)
	bw.Str(sess.Kind)
	bw.I64(sess.CreatedAt.UnixNano())
	bw.I64(sess.Updates)
	bw.F64(sess.LastUpdateSeconds)
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	if err := priu.WriteSessionSnapshot(w, sess.Kind, sess.DS, sess.Upd, sess.Deleted); err != nil {
		return fail(fmt.Errorf("store: snapshotting session %s: %w", sess.ID, err))
	}
	syncStart := time.Now()
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if m := t.metrics; m != nil {
		observeSince(m.FsyncSeconds, syncStart)
	}
	size, err := tmp.Seek(0, io.SeekCurrent)
	if err != nil {
		return fail(err)
	}
	if err := t.faultAt("spill.after-temp"); err != nil {
		// Simulated crash after the temp write: the file stays behind, as a
		// real kill would leave it, for reindex/GC to clean up.
		tmp.Close()
		return "", 0, nil, err
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmpName)
		return "", 0, nil, err
	}
	return tmpName, size, h.Sum(nil), nil
}

// spillEnvelope is the decoded header of one spill file.
type spillEnvelope struct {
	id                string
	kind              string
	createdAt         time.Time
	updates           int64
	lastUpdateSeconds float64
}

// readSpillEnvelope decodes a spill file's header, returning the reader
// positioned at the embedded session snapshot.
func readSpillEnvelope(r io.Reader) (*binio.Reader, spillEnvelope, error) {
	br := binio.NewReader(r)
	var env spillEnvelope
	if err := br.Magic(spillMagic); err != nil {
		return nil, env, fmt.Errorf("store: %w", err)
	}
	if v := br.U64(); v != spillVersion {
		return nil, env, fmt.Errorf("store: unsupported spill-file version %d", v)
	}
	env.id = br.Str(maxSpillName)
	env.kind = br.Str(maxSpillName)
	env.createdAt = time.Unix(0, br.I64())
	env.updates = br.I64()
	env.lastUpdateSeconds = br.F64()
	if br.Err != nil {
		return nil, env, br.Err
	}
	if env.id == "" {
		return nil, env, fmt.Errorf("store: spill file has no session ID")
	}
	return br, env, nil
}

// buildSession decodes a spill envelope and its embedded snapshot from r and
// rebuilds the session, replaying the deletion log so every honored deletion
// stays deleted in the restored model.
func (t *Tiered) buildSession(id string, r io.Reader) (*Session, spillEnvelope, error) {
	br, env, err := readSpillEnvelope(r)
	if err != nil {
		return nil, env, err
	}
	if env.id != id {
		return nil, env, fmt.Errorf("store: spill data holds session %s, want %s", env.id, id)
	}
	family, ds, upd, deleted, err := priu.ReadSessionSnapshot(br.R)
	if err != nil {
		return nil, env, fmt.Errorf("store: restoring session %s: %w", id, err)
	}
	model := upd.Model()
	if len(deleted) > 0 {
		model, err = upd.Update(deleted)
		if err != nil {
			return nil, env, fmt.Errorf("store: replaying deletion log of %s: %w", id, err)
		}
	}
	sess := &Session{
		ID:                id,
		Kind:              family,
		CreatedAt:         env.createdAt,
		DS:                ds,
		Upd:               upd,
		Model:             model,
		Deleted:           deleted,
		Updates:           env.updates,
		LastUpdateSeconds: env.lastUpdateSeconds,
		footprint:         TrainingSetBytes(ds) + upd.FootprintBytes(),
		// Not dirty: the spilled copy is exactly this state.
	}
	sess.Touch()
	return sess, env, nil
}

// restore rebuilds a session from its spill entry — the local cache file
// when one exists, the shared blob tier otherwise — and publishes it to the
// in-memory tier.
func (t *Tiered) restore(id string, e *spillEntry) (*Session, error) {
	restoreStart := time.Now()
	var src io.ReadCloser
	if e.local {
		f, err := os.Open(e.path)
		if err != nil {
			return nil, fmt.Errorf("store: opening spill file for %s: %w", id, err)
		}
		src = f
	} else {
		if err := t.faultAt("blob.get"); err != nil {
			return nil, err
		}
		getStart := time.Now()
		rc, _, err := t.blob.Get(id)
		if err != nil {
			if err != ErrBlobNotFound {
				t.blobErrors.Add(1)
			}
			return nil, fmt.Errorf("store: fetching %s from blob tier: %w", id, err)
		}
		t.blobGets.Add(1)
		if m := t.metrics; m != nil {
			observeSince(m.BlobGetSeconds, getStart)
		}
		src = rc
	}
	defer src.Close()
	sess, _, err := t.buildSession(id, src)
	if err != nil {
		return nil, err
	}
	t.armWriteBehind(sess)
	t.restores.Add(1)
	if m := t.metrics; m != nil {
		observeSince(m.RestoreSeconds, restoreStart)
	}
	// No quota check on a restore: the session already counts against its
	// tenant, only the resident-tier accounting moves. If the spill entry
	// was seeded from a reboot (billed at file size), settle the ownership
	// byte charge to the true resident footprint now that it is known.
	t.mu.Lock()
	if cur, ok := t.index[id]; ok && cur == e {
		if e.charged != sess.footprint {
			t.mem.adjustOwned(TenantOf(id), 0, sess.footprint-e.charged)
			e.charged = sess.footprint
		}
		e.lastUsed = time.Now().UnixNano()
	}
	t.mu.Unlock()
	t.mem.putRestored(sess)
	return sess, nil
}

// reindex scans the spill directory on boot: temp files from interrupted
// spills are removed, session files are indexed by the envelope header, and
// when several files claim the same session (a crash between publishing a
// new spill and unlinking the old one) the newest wins — decided primarily
// by the envelope's monotonic per-session update counter, since file mtimes
// can tie on coarse-timestamp filesystems, with mtime as the tiebreak. The
// scan also seeds the maintained spill_dir_bytes gauge (indexed files plus
// whatever unreadable leftovers remain for GC).
func (t *Tiered) reindex() error {
	entries, err := os.ReadDir(t.dir)
	if err != nil {
		return fmt.Errorf("store: reading spill dir: %w", err)
	}
	type version struct {
		updates int64
		mtime   time.Time
	}
	newest := make(map[string]version)
	var orphanBytes int64
	for _, de := range entries {
		name := de.Name()
		path := filepath.Join(t.dir, name)
		if strings.HasPrefix(name, spillTmp) {
			_ = os.Remove(path)
			continue
		}
		if de.IsDir() {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		if !strings.HasSuffix(name, spillExt) {
			orphanBytes += info.Size()
			continue
		}
		f, err := os.Open(path)
		if err != nil {
			orphanBytes += info.Size()
			continue
		}
		_, env, err := readSpillEnvelope(f)
		f.Close()
		if err != nil {
			// Unreadable header: not one of ours (or torn by something other
			// than our atomic writes); don't index it — the age-based GC
			// will sweep it once it is old enough.
			orphanBytes += info.Size()
			continue
		}
		v := version{updates: env.updates, mtime: info.ModTime()}
		if prev, dup := t.index[env.id]; dup {
			pv := newest[env.id]
			older := v.updates < pv.updates ||
				(v.updates == pv.updates && !v.mtime.After(pv.mtime))
			if older {
				_ = os.Remove(path)
				continue
			}
			_ = os.Remove(prev.path)
			t.diskBytes -= prev.bytes
		}
		newest[env.id] = v
		t.index[env.id] = &spillEntry{
			path: path, bytes: info.Size(), kind: env.kind, createdAt: env.createdAt,
			local: true, updates: env.updates,
			// The resident footprint isn't known without restoring; bill the
			// file size until the first restore settles the difference.
			charged:  info.Size(),
			lastUsed: info.ModTime().UnixNano(),
		}
		t.diskBytes += info.Size()
	}
	t.orphanBytes = orphanBytes
	return nil
}
