package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/binio"
	"repro/priu"
)

// Spill-file envelope: a small header carrying the store-level identity and
// counters that the priu session snapshot itself does not know about,
// followed by the self-contained snapshot (family + dataset + deletion log +
// provenance). Files are content-addressed — named by the SHA-256 of their
// bytes — and written as temp-file + rename, so a crash mid-spill leaves at
// worst an ignorable temp file, never a torn session.
const (
	spillMagic   = "PRSP"
	spillVersion = 1
	spillExt     = ".sess"
	spillTmp     = "tmp-"

	// maxSpillName bounds decoded ID/family strings in envelopes.
	maxSpillName = 1 << 20
)

// spillEntry is the disk tier's index record for one session.
type spillEntry struct {
	path      string
	bytes     int64
	kind      string
	createdAt time.Time
	// charged is what the session's tenant ownership was billed for this
	// session (guarded by Tiered.mu): the resident footprint when spilled by
	// this process, the file size when seeded from a reboot reindex (the
	// footprint isn't known without restoring). Restores settle the drift.
	charged int64
}

// flight is one in-progress restore; joiners wait on done.
type flight struct {
	done chan struct{}
	sess *Session
	ok   bool
}

// Tiered wraps the in-memory tier with a spill directory: evictions spill,
// touches of cold sessions restore (singleflight), Close drains dirty
// residents, and NewTiered re-indexes whatever a previous process left.
type Tiered struct {
	mem *Memory
	dir string

	mu      sync.Mutex
	index   map[string]*spillEntry
	flights map[string]*flight

	spills        atomic.Int64
	restores      atomic.Int64
	spillErrors   atomic.Int64
	restoreErrors atomic.Int64
	unspillable   atomic.Int64
}

// NewTiered opens (creating if needed) the spill directory, re-indexes the
// session files a previous process left there, and installs the spill hook on
// mem's evictions. mem must be freshly constructed and not shared.
func NewTiered(dir string, mem *Memory, opts ...TieredOption) (*Tiered, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating spill dir: %w", err)
	}
	t := &Tiered{
		mem:     mem,
		dir:     dir,
		index:   make(map[string]*spillEntry),
		flights: make(map[string]*flight),
	}
	spill := true
	for _, opt := range opts {
		opt(t, &spill)
	}
	if err := t.reindex(); err != nil {
		return nil, err
	}
	// Seed the tenants' cross-tier ownership with what a previous process
	// left on disk, so quotas count rebooted spill files from the first
	// request. mem is freshly constructed (see above), so nothing double
	// counts.
	for id, e := range t.index {
		mem.adjustOwned(TenantOf(id), 1, e.charged)
	}
	mem.onEvictLocked = func(sess *Session) bool {
		if spill {
			if t.spillLocked(sess) == nil {
				return true // preserved: the spill file holds this state
			}
		} else if !sess.dirty {
			t.mu.Lock()
			_, onDisk := t.index[sess.ID]
			t.mu.Unlock()
			if onDisk {
				return true // any disk copy is exactly this state; keep it restorable
			}
		}
		// The session is leaving memory carrying state the disk tier does
		// not have (spilling disabled, or the spill failed). A stale disk
		// copy must not resurrect on the next touch — that would silently
		// undo honored deletions — so drop it: the session is lost, exactly
		// like a memory-only eviction.
		t.invalidate(sess.ID)
		return false
	}
	return t, nil
}

// invalidate forgets a session's disk copy (stale relative to state that was
// just lost with an eviction).
func (t *Tiered) invalidate(id string) {
	t.mu.Lock()
	e, ok := t.index[id]
	if ok {
		delete(t.index, id)
	}
	t.mu.Unlock()
	if ok {
		_ = os.Remove(e.path)
	}
}

// TieredOption configures NewTiered.
type TieredOption func(*Tiered, *bool)

// WithSpillOnEvict controls whether budget evictions spill to disk (default
// true). When disabled, evictions drop sessions as in the plain memory store
// but Close still snapshots dirty residents, giving restart durability
// without an eviction disk tier.
func WithSpillOnEvict(enabled bool) TieredOption {
	return func(_ *Tiered, spill *bool) { *spill = enabled }
}

// Spillable reports whether a session of this family/updater can be written
// as a session snapshot and restored later.
func Spillable(kind string, upd priu.Updater) bool {
	if _, ok := upd.(priu.Snapshotter); !ok {
		return false
	}
	f, ok := priu.Lookup(kind)
	return ok && f.Restore != nil
}

// Put implements Store. The memory tier's ownership counters already span
// both tiers (a spill moves a session out of resident but not out of
// owned), so the quota check is the same single atomic compare: eviction to
// disk never frees quota, only an explicit Delete does.
func (t *Tiered) Put(sess *Session) error { return t.mem.Put(sess) }

// TenantUsage implements Store.
func (t *Tiered) TenantUsage(tenant string) TenantUsage { return t.mem.TenantUsage(tenant) }

// Get implements Store: a resident hit is lock-free beyond the shard RLock;
// a cold session is restored from its spill file exactly once, no matter how
// many goroutines touch it concurrently.
func (t *Tiered) Get(id string) (*Session, bool) {
	if sess, ok := t.mem.Get(id); ok {
		return sess, true
	}
	t.mu.Lock()
	if f, inflight := t.flights[id]; inflight {
		t.mu.Unlock()
		<-f.done
		return f.sess, f.ok
	}
	e, spilled := t.index[id]
	if !spilled {
		t.mu.Unlock()
		// The session may have become resident between the miss and the
		// index check (a racing restore that just published).
		return t.mem.Get(id)
	}
	f := &flight{done: make(chan struct{})}
	t.flights[id] = f
	t.mu.Unlock()

	// Leader path. Re-check residency first: a restore that completed
	// between our memory miss and the flight registration already published
	// the session (the index keeps its entry after a restore).
	if sess, ok := t.mem.Get(id); ok {
		f.sess, f.ok = sess, true
	} else if sess, err := t.restore(id, e); err != nil {
		t.restoreErrors.Add(1)
	} else {
		// A Delete that raced the restore removed the index entry; honor it
		// instead of resurrecting the session.
		t.mu.Lock()
		_, still := t.index[id]
		t.mu.Unlock()
		if still {
			f.sess, f.ok = sess, true
		} else {
			t.mem.drop(id)
		}
	}
	t.mu.Lock()
	delete(t.flights, id)
	t.mu.Unlock()
	close(f.done)
	return f.sess, f.ok
}

// Delete implements Store: the session is forgotten in both tiers.
func (t *Tiered) Delete(id string) bool {
	resident := t.mem.Delete(id)
	t.mu.Lock()
	e, spilled := t.index[id]
	if spilled {
		delete(t.index, id)
	}
	t.mu.Unlock()
	if spilled {
		// Spill-file hygiene: an explicit DELETE forgets the session in
		// every tier, including its on-disk snapshot — even when a resident
		// copy also existed (the file would otherwise outlive the session
		// until the next boot reindex).
		_ = os.Remove(e.path)
		if !resident {
			// Count the disk-only delete on the same shard the session
			// would live on, keeping per-shard sums consistent, and release
			// the tenant's ownership charge (the resident path did this in
			// mem.Delete).
			t.mem.shards[ShardIndex(id)].explicitDeletes.Add(1)
			t.mem.chargeExplicitDelete(TenantOf(id))
			t.mem.adjustOwned(TenantOf(id), -1, -e.charged)
		}
	}
	return resident || spilled
}

// Touch implements Store: touching a cold session restores it ("the LRU
// budget is a cache tier, not a cliff").
func (t *Tiered) Touch(id string) bool {
	_, ok := t.Get(id)
	return ok
}

// Range implements Store (resident sessions only; spilled sessions are
// listed by Stats without being restored).
func (t *Tiered) Range(fn func(*Session) bool) { t.mem.Range(fn) }

// Stats implements Store.
func (t *Tiered) Stats() Stats {
	st := t.mem.Stats()
	st.Spills = t.spills.Load()
	st.Restores = t.restores.Load()
	st.Unspillable = t.unspillable.Load()
	t.mu.Lock()
	for id, e := range t.index {
		if t.mem.has(id) {
			continue // resident copy is authoritative; the file is a warm backup
		}
		st.Spilled++
		st.SpilledBytes += e.bytes
		st.SpilledSessions = append(st.SpilledSessions, SpilledSession{
			ID: id, Kind: e.kind, CreatedAt: e.createdAt, Bytes: e.bytes,
		})
		// Per-tenant spilled usage comes from the memory tier's ownership
		// counters (owned − resident), already in st.Tenants.
	}
	t.mu.Unlock()
	// The spill-dir gauge counts what is actually on disk (warm backups and
	// stray temp files included), so leaked files show up as growth even
	// when the index looks clean.
	if entries, err := os.ReadDir(t.dir); err == nil {
		for _, de := range entries {
			if de.IsDir() {
				continue
			}
			if info, err := de.Info(); err == nil {
				st.SpillDirBytes += info.Size()
			}
		}
	}
	return st
}

// Close implements Store: the SIGTERM drain. Every dirty resident session is
// snapshotted to the spill directory so the next process restores the exact
// pre-shutdown state. Unspillable sessions are counted and skipped.
func (t *Tiered) Close() error {
	var firstErr error
	t.mem.Range(func(sess *Session) bool {
		sess.Mu.Lock()
		err := t.spillLocked(sess)
		sess.Mu.Unlock()
		if err != nil && firstErr == nil {
			firstErr = err
		}
		return true
	})
	return firstErr
}

// spillLocked writes the session's current state to the disk tier. Callers
// hold sess.Mu, so the snapshot is a consistent cut: any deletion applied
// after it will either be re-applied by a mutator that sees the gone flag or
// land in a later spill.
func (t *Tiered) spillLocked(sess *Session) error {
	if !sess.dirty {
		t.mu.Lock()
		_, onDisk := t.index[sess.ID]
		t.mu.Unlock()
		if onDisk {
			return nil // clean and already on disk: nothing to write
		}
	}
	if !Spillable(sess.Kind, sess.Upd) {
		t.unspillable.Add(1)
		return fmt.Errorf("store: session %s (family %q) cannot be snapshotted", sess.ID, sess.Kind)
	}
	path, size, err := t.writeSpillFile(sess)
	if err != nil {
		t.spillErrors.Add(1)
		return err
	}
	t.spills.Add(1)
	sess.dirty = false
	t.mu.Lock()
	old := t.index[sess.ID]
	t.index[sess.ID] = &spillEntry{
		path: path, bytes: size, kind: sess.Kind, createdAt: sess.CreatedAt,
		charged: sess.footprint,
	}
	t.mu.Unlock()
	if old != nil && old.path != path {
		_ = os.Remove(old.path)
	}
	return nil
}

// writeSpillFile serializes the session to a temp file and renames it to its
// content hash, returning the final path and size.
func (t *Tiered) writeSpillFile(sess *Session) (string, int64, error) {
	tmp, err := os.CreateTemp(t.dir, spillTmp+"*")
	if err != nil {
		return "", 0, fmt.Errorf("store: creating spill temp file: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			_ = os.Remove(tmp.Name())
		}
	}()
	h := sha256.New()
	w := io.MultiWriter(tmp, h)
	bw := binio.NewWriter(w)
	bw.Bytes([]byte(spillMagic))
	bw.U64(spillVersion)
	bw.Str(sess.ID)
	bw.Str(sess.Kind)
	bw.I64(sess.CreatedAt.UnixNano())
	bw.I64(sess.Updates)
	bw.F64(sess.LastUpdateSeconds)
	if err := bw.Flush(); err != nil {
		return "", 0, err
	}
	if err := priu.WriteSessionSnapshot(w, sess.Kind, sess.DS, sess.Upd, sess.Deleted); err != nil {
		return "", 0, fmt.Errorf("store: snapshotting session %s: %w", sess.ID, err)
	}
	if err := tmp.Sync(); err != nil {
		return "", 0, err
	}
	size, err := tmp.Seek(0, io.SeekCurrent)
	if err != nil {
		return "", 0, err
	}
	tmpName := tmp.Name()
	if err := tmp.Close(); err != nil {
		tmp = nil
		_ = os.Remove(tmpName)
		return "", 0, err
	}
	tmp = nil
	final := filepath.Join(t.dir, hex.EncodeToString(h.Sum(nil))[:32]+spillExt)
	if err := os.Rename(tmpName, final); err != nil {
		_ = os.Remove(tmpName)
		return "", 0, fmt.Errorf("store: publishing spill file: %w", err)
	}
	return final, size, nil
}

// spillEnvelope is the decoded header of one spill file.
type spillEnvelope struct {
	id                string
	kind              string
	createdAt         time.Time
	updates           int64
	lastUpdateSeconds float64
}

// readSpillEnvelope decodes a spill file's header, returning the reader
// positioned at the embedded session snapshot.
func readSpillEnvelope(r io.Reader) (*binio.Reader, spillEnvelope, error) {
	br := binio.NewReader(r)
	var env spillEnvelope
	if err := br.Magic(spillMagic); err != nil {
		return nil, env, fmt.Errorf("store: %w", err)
	}
	if v := br.U64(); v != spillVersion {
		return nil, env, fmt.Errorf("store: unsupported spill-file version %d", v)
	}
	env.id = br.Str(maxSpillName)
	env.kind = br.Str(maxSpillName)
	env.createdAt = time.Unix(0, br.I64())
	env.updates = br.I64()
	env.lastUpdateSeconds = br.F64()
	if br.Err != nil {
		return nil, env, br.Err
	}
	if env.id == "" {
		return nil, env, fmt.Errorf("store: spill file has no session ID")
	}
	return br, env, nil
}

// restore rebuilds a session from its spill file and publishes it to the
// in-memory tier. The snapshot's deletion log is replayed, so every honored
// deletion stays deleted in the restored model.
func (t *Tiered) restore(id string, e *spillEntry) (*Session, error) {
	f, err := os.Open(e.path)
	if err != nil {
		return nil, fmt.Errorf("store: opening spill file for %s: %w", id, err)
	}
	defer f.Close()
	br, env, err := readSpillEnvelope(f)
	if err != nil {
		return nil, err
	}
	if env.id != id {
		return nil, fmt.Errorf("store: spill file %s holds session %s, want %s", e.path, env.id, id)
	}
	family, ds, upd, deleted, err := priu.ReadSessionSnapshot(br.R)
	if err != nil {
		return nil, fmt.Errorf("store: restoring session %s: %w", id, err)
	}
	model := upd.Model()
	if len(deleted) > 0 {
		model, err = upd.Update(deleted)
		if err != nil {
			return nil, fmt.Errorf("store: replaying deletion log of %s: %w", id, err)
		}
	}
	sess := &Session{
		ID:                id,
		Kind:              family,
		CreatedAt:         env.createdAt,
		DS:                ds,
		Upd:               upd,
		Model:             model,
		Deleted:           deleted,
		Updates:           env.updates,
		LastUpdateSeconds: env.lastUpdateSeconds,
		footprint:         TrainingSetBytes(ds) + upd.FootprintBytes(),
		// Not dirty: the disk copy is exactly this state.
	}
	sess.Touch()
	t.restores.Add(1)
	// No quota check on a restore: the session already counts against its
	// tenant, only the resident-tier accounting moves. If the spill entry
	// was seeded from a reboot (billed at file size), settle the ownership
	// byte charge to the true resident footprint now that it is known.
	t.mu.Lock()
	if cur, ok := t.index[id]; ok && cur == e && e.charged != sess.footprint {
		t.mem.adjustOwned(TenantOf(id), 0, sess.footprint-e.charged)
		e.charged = sess.footprint
	}
	t.mu.Unlock()
	t.mem.putRestored(sess)
	return sess, nil
}

// reindex scans the spill directory on boot: temp files from interrupted
// spills are removed, session files are indexed by the envelope header, and
// when several files claim the same session (a crash between publishing a
// new spill and unlinking the old one) the newest wins — decided primarily
// by the envelope's monotonic per-session update counter, since file mtimes
// can tie on coarse-timestamp filesystems, with mtime as the tiebreak.
func (t *Tiered) reindex() error {
	entries, err := os.ReadDir(t.dir)
	if err != nil {
		return fmt.Errorf("store: reading spill dir: %w", err)
	}
	type version struct {
		updates int64
		mtime   time.Time
	}
	newest := make(map[string]version)
	for _, de := range entries {
		name := de.Name()
		path := filepath.Join(t.dir, name)
		if strings.HasPrefix(name, spillTmp) {
			_ = os.Remove(path)
			continue
		}
		if de.IsDir() || !strings.HasSuffix(name, spillExt) {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		f, err := os.Open(path)
		if err != nil {
			continue
		}
		_, env, err := readSpillEnvelope(f)
		f.Close()
		if err != nil {
			// Unreadable header: not one of ours (or torn by something other
			// than our atomic writes); leave it alone but don't index it.
			continue
		}
		v := version{updates: env.updates, mtime: info.ModTime()}
		if prev, dup := t.index[env.id]; dup {
			pv := newest[env.id]
			older := v.updates < pv.updates ||
				(v.updates == pv.updates && !v.mtime.After(pv.mtime))
			if older {
				_ = os.Remove(path)
				continue
			}
			_ = os.Remove(prev.path)
		}
		newest[env.id] = v
		t.index[env.id] = &spillEntry{
			path: path, bytes: info.Size(), kind: env.kind, createdAt: env.createdAt,
			// The resident footprint isn't known without restoring; bill the
			// file size until the first restore settles the difference.
			charged: info.Size(),
		}
	}
	return nil
}
