package store

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync/atomic"
	"testing"
)

// Chaos crash-point suite: faults are injected at named points inside the
// spill, GC and drain paths via the Tiered.fault hook — each abort leaves
// the directory exactly as a kill at that instant would — and then the
// store is hard-killed (abandoned without Close) and rebooted on the same
// directory. Invariants: no session the disk tier preserved is lost, no
// deleted session resurrects, and the newest published state always wins.

// errFault is the sentinel the injected crash points return.
var errFault = errors.New("injected fault")

// faultOn returns a hook that fires the fault at one named crash point
// while armed; tests scope faults by arming them only around the operation
// under test.
func faultOn(point string, armed *atomic.Bool) func(string) error {
	return func(p string) error {
		if armed.Load() && p == point {
			return errFault
		}
		return nil
	}
}

// hardKill abandons the store without any drain, as a kill -9 would: only
// what already reached the directory survives. The background workers are
// stopped first purely so the test process doesn't leak goroutines — they
// are idle at every point the suite kills.
func hardKill(ti *Tiered) {
	ti.stopLifecycle()
}

func TestChaosCrashMidSpillLeavesPriorStateServable(t *testing.T) {
	dir := t.TempDir()
	ti := newTestTiered(t, dir, NewMemory())
	a := trainSession(t, "sess-1", 1)
	if err := ti.Put(a); err != nil {
		t.Fatal(err)
	}
	ti.Flush() // published state: no deletions
	var armed atomic.Bool
	ti.fault = faultOn("spill.after-temp", &armed)

	// Crash inside the re-spill the mutation schedules, after the temp file
	// is written but before the atomic publish.
	armed.Store(true)
	applyDeletion(t, a, []int{2, 7})
	ti.Flush()
	armed.Store(false)
	if ti.spillErrors.Load() == 0 {
		t.Fatal("fault point never fired")
	}
	tmps, _ := filepath.Glob(filepath.Join(dir, spillTmp+"*"))
	if len(tmps) == 0 {
		t.Fatal("simulated crash should leave the torn temp file behind")
	}
	hardKill(ti)

	// Reboot: the torn temp is cleaned, and the session serves its last
	// PUBLISHED state — the in-memory deletions died with the process, but
	// nothing is torn and nothing resurrects partial writes.
	ti2 := newTestTiered(t, dir, NewMemory())
	got, ok := ti2.Get("sess-1")
	if !ok {
		t.Fatal("session lost after mid-spill crash")
	}
	got.Mu.Lock()
	nDel := len(got.Deleted)
	got.Mu.Unlock()
	if nDel != 0 {
		t.Fatalf("restored %d deletions from a spill that never published", nDel)
	}
	if tmps, _ := filepath.Glob(filepath.Join(dir, spillTmp+"*")); len(tmps) != 0 {
		t.Fatalf("reboot left torn temp files: %v", tmps)
	}
}

func TestChaosCrashBetweenPublishAndUnlinkPicksNewest(t *testing.T) {
	dir := t.TempDir()
	ti := newTestTiered(t, dir, NewMemory())
	a := trainSession(t, "sess-1", 2)
	if err := ti.Put(a); err != nil {
		t.Fatal(err)
	}
	ti.Flush()
	wantVec := applyDeletion(t, a, []int{3, 11, 19})
	ti.Flush() // appends a delta segment on the base
	var armed atomic.Bool
	ti.fault = faultOn("compact.unlink-old", &armed)

	// Compact with the old-file unlink suppressed: the folded base publishes
	// but the pre-compaction base AND the folded delta stay in the
	// directory — exactly the crash window between rename and unlink.
	armed.Store(true)
	ti.compactOnce("sess-1")
	armed.Store(false)
	files, _ := filepath.Glob(filepath.Join(dir, "*"+spillExt))
	if len(files) != 2 {
		t.Fatalf("%d base files on disk, want both generations", len(files))
	}
	if deltas, _ := filepath.Glob(filepath.Join(dir, "*"+deltaExt)); len(deltas) != 1 {
		t.Fatalf("%d delta files on disk, want the folded segment kept", len(deltas))
	}
	hardKill(ti)

	// Reboot: newest-wins dedupe (same update counter, longer envelope log)
	// must restore the folded generation with the deletions and remove both
	// the stale base and the now-baseless delta segment.
	ti2 := newTestTiered(t, dir, NewMemory())
	got, ok := ti2.Get("sess-1")
	if !ok {
		t.Fatal("session lost after duplicate-file crash")
	}
	got.Mu.Lock()
	vec := got.Model.Vec()
	nDel := len(got.Deleted)
	got.Mu.Unlock()
	if nDel != 3 {
		t.Fatalf("restored stale generation: %d deletions, want 3", nDel)
	}
	for i := range vec {
		if vec[i] != wantVec[i] {
			t.Fatalf("restored model differs at %d from the newest generation", i)
		}
	}
	if files, _ := filepath.Glob(filepath.Join(dir, "*"+spillExt)); len(files) != 1 {
		t.Fatalf("reboot kept %d base files for one session, want the stale one removed", len(files))
	}
	if deltas, _ := filepath.Glob(filepath.Join(dir, "*"+deltaExt)); len(deltas) != 0 {
		t.Fatalf("reboot kept %d orphaned delta files, want 0", len(deltas))
	}
}

func TestChaosDeletedSessionNeverResurrects(t *testing.T) {
	dir := t.TempDir()
	ti := newTestTiered(t, dir, NewMemory())
	for i := 1; i <= 3; i++ {
		if err := ti.Put(trainSession(t, fmt.Sprintf("sess-%d", i), int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	ti.Flush()
	var armed atomic.Bool
	ti.fault = faultOn("delete.unlink", &armed)

	// sess-1 deletes cleanly; sess-2's delete crashes before the unlink —
	// its acknowledged delete leaves a stray file behind.
	if !ti.Delete("sess-1") {
		t.Fatal("delete failed")
	}
	armed.Store(true)
	if !ti.Delete("sess-2") {
		t.Fatal("delete failed")
	}
	armed.Store(false)

	// In-process: neither deleted session is reachable, stray file or not.
	if _, ok := ti.Get("sess-1"); ok {
		t.Fatal("cleanly deleted session resurrected")
	}
	if _, ok := ti.Get("sess-2"); ok {
		t.Fatal("deleted session resurrected from its stray file")
	}
	// The stray file is an orphan now; an age-based sweep collects it (age
	// zero here — "long ago" compressed for the test) so even a later
	// reboot cannot resurrect the session.
	ti.gcAge = 0
	ti.gcOnce()
	if ti.gcRemovals.Load() == 0 {
		t.Fatal("gc never collected the stray file of the deleted session")
	}
	hardKill(ti)

	ti2 := newTestTiered(t, dir, NewMemory())
	if _, ok := ti2.Get("sess-1"); ok {
		t.Fatal("deleted session resurrected across restart")
	}
	if _, ok := ti2.Get("sess-2"); ok {
		t.Fatal("deleted session resurrected across restart via its stray file")
	}
	if _, ok := ti2.Get("sess-3"); !ok {
		t.Fatal("surviving session lost")
	}
}

func TestChaosCrashMidDrainKeepsEveryPublishedSession(t *testing.T) {
	dir := t.TempDir()
	ti := newTestTiered(t, dir, NewMemory())
	var want []string
	for i := 1; i <= 4; i++ {
		id := fmt.Sprintf("sess-%d", i)
		if err := ti.Put(trainSession(t, id, int64(i))); err != nil {
			t.Fatal(err)
		}
		want = append(want, id)
	}
	// The write-behind queue published everything before the drain even
	// starts; a drain that crashes on its first session therefore loses
	// nothing.
	ti.Flush()
	var armed atomic.Bool
	armed.Store(true)
	ti.fault = faultOn("drain.session", &armed)
	_ = ti.Close() // aborts immediately at the injected crash point

	ti2 := newTestTiered(t, dir, NewMemory())
	for _, id := range want {
		if _, ok := ti2.Get(id); !ok {
			t.Fatalf("%s lost: the async queue had already published it before the drain crashed", id)
		}
	}
}

// TestChaosQueueCrashFallsBackToSyncSpill: a fault that permanently breaks
// the write-behind path must degrade to the synchronous eviction spill, not
// lose sessions.
func TestChaosQueueCrashFallsBackToSyncSpill(t *testing.T) {
	dir := t.TempDir()
	ti := newTestTiered(t, dir, NewMemory(WithMaxSessions(1)))
	// Every write-behind attempt fails at temp creation; the eviction-path
	// sync spill is exercised with the fault cleared per call count — here
	// we instead fail only the worker by keying on pending depth. Simpler
	// and deterministic: fail every spill while armed, evict while disarmed.
	var armed atomic.Bool
	armed.Store(true)
	ti.fault = faultOn("spill.create-temp", &armed)
	a := trainSession(t, "sess-1", 9)
	if err := ti.Put(a); err != nil {
		t.Fatal(err)
	}
	ti.Flush() // write-behind attempt fails
	if ti.spillErrors.Load() == 0 {
		t.Fatal("fault point never fired for the worker")
	}
	armed.Store(false)
	// The eviction finds a dirty victim with no disk copy and pays the
	// synchronous spill — the fallback that keeps the session in a tier.
	if err := ti.Put(trainSession(t, "sess-2", 10)); err != nil {
		t.Fatal(err)
	}
	if _, ok := ti.Get("sess-1"); !ok {
		t.Fatal("session lost although the sync fallback should have spilled it")
	}
	st := ti.Stats()
	if st.Spills == 0 || st.WriteBehindSpills == st.Spills {
		t.Fatalf("expected a synchronous fallback spill, got %+v", st)
	}
}
