package store

import (
	"bytes"
	"io"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

// Blob-tier suite: the BlobStore contract (filesystem and HTTP
// implementations against the same exercise), the local spill directory as a
// read-through/write-behind cache of the shared tier, newest-wins boot
// reconciliation, demotion as a cache drop, and the ReleaseUnowned handoff.

func blobPut(t *testing.T, bs BlobStore, key, body string) {
	t.Helper()
	if err := bs.Put(key, strings.NewReader(body)); err != nil {
		t.Fatalf("put %q: %v", key, err)
	}
}

func blobGetString(t *testing.T, bs BlobStore, key string) (string, int64) {
	t.Helper()
	rc, size, err := bs.Get(key)
	if err != nil {
		t.Fatalf("get %q: %v", key, err)
	}
	defer rc.Close()
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, rc); err != nil {
		t.Fatalf("read %q: %v", key, err)
	}
	return buf.String(), size
}

// exerciseBlobStore is the implementation-independent BlobStore contract:
// namespaced keys round-trip, Put replaces, Delete is idempotent, List
// filters by prefix and skips in-flight temp files.
func exerciseBlobStore(t *testing.T, bs BlobStore) {
	t.Helper()
	if _, _, err := bs.Get("acme/sess-1"); err != ErrBlobNotFound {
		t.Fatalf("missing key: err = %v, want ErrBlobNotFound", err)
	}
	blobPut(t, bs, "acme/sess-1", "first version")
	blobPut(t, bs, "acme/sess-2", "other session")
	blobPut(t, bs, "beta/sess-1", "other tenant")
	if got, size := blobGetString(t, bs, "acme/sess-1"); got != "first version" || size != int64(len(got)) {
		t.Fatalf("round-trip = %q (size %d)", got, size)
	}
	// Put replaces: the new content and size win, never a blend.
	blobPut(t, bs, "acme/sess-1", "second, longer version")
	if got, _ := blobGetString(t, bs, "acme/sess-1"); got != "second, longer version" {
		t.Fatalf("overwrite lost: %q", got)
	}
	infos, err := bs.List("acme/")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 || infos[0].Key != "acme/sess-1" || infos[1].Key != "acme/sess-2" {
		t.Fatalf("prefix listing = %+v", infos)
	}
	if infos[0].Size != int64(len("second, longer version")) {
		t.Fatalf("listed size = %d", infos[0].Size)
	}
	all, err := bs.List("")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("full listing has %d objects, want 3", len(all))
	}
	if err := bs.Delete("acme/sess-1"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := bs.Get("acme/sess-1"); err != ErrBlobNotFound {
		t.Fatalf("deleted key still readable: err = %v", err)
	}
	if err := bs.Delete("acme/sess-1"); err != nil {
		t.Fatalf("deleting a missing key should be a no-op, got %v", err)
	}
}

func TestFSBlobRoundTrip(t *testing.T) {
	bs, err := NewFSBlob(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	exerciseBlobStore(t, bs)
}

func TestHTTPBlobRoundTrip(t *testing.T) {
	backing, err := NewFSBlob(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(BlobHandler(backing))
	defer srv.Close()
	exerciseBlobStore(t, NewHTTPBlob(srv.URL, nil))
}

// sharedBlob builds the FSBlob every replica of a test fleet points at.
func sharedBlob(t *testing.T) *FSBlob {
	t.Helper()
	bs, err := NewFSBlob(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return bs
}

func sessionState(t *testing.T, sess *Session) (vec []float64, nDel int, updates int64) {
	t.Helper()
	sess.Mu.Lock()
	defer sess.Mu.Unlock()
	return append([]float64(nil), sess.Model.Vec()...), len(sess.Deleted), sess.Updates
}

func TestBlobWriteBehindAndCrossNodeAdopt(t *testing.T) {
	bs := sharedBlob(t)
	tiA := newTestTiered(t, t.TempDir(), NewMemory(), WithBlobStore(bs))

	a := trainSession(t, "acme/sess-1", 1)
	want := applyDeletion(t, a, []int{3, 5})
	if err := tiA.Put(a); err != nil {
		t.Fatal(err)
	}
	tiA.Flush()
	if !tiA.isRemote("acme/sess-1") {
		t.Fatal("write-behind spill never pushed to the blob tier")
	}
	st := tiA.Stats()
	if !st.BlobTier || st.BlobPuts == 0 || st.BlobSessions != 1 || st.BlobBytes == 0 {
		t.Fatalf("blob stats = tier=%v puts=%d sessions=%d bytes=%d",
			st.BlobTier, st.BlobPuts, st.BlobSessions, st.BlobBytes)
	}

	// A second node sharing the blob tier — booted while node A still runs,
	// so it has no local state at all — adopts the session on first touch:
	// the pure read-through path.
	tiB := newTestTiered(t, t.TempDir(), NewMemory(), WithBlobStore(bs))
	got, ok := tiB.Get("acme/sess-1")
	if !ok {
		t.Fatal("peer could not adopt the session from the blob tier")
	}
	vec, nDel, updates := sessionState(t, got)
	if nDel != 2 || updates != 1 {
		t.Fatalf("adopted state: %d deletions (updates %d), want 2 (1)", nDel, updates)
	}
	for i := range vec {
		if vec[i] != want[i] {
			t.Fatalf("adopted model differs at %d: %v vs %v", i, vec[i], want[i])
		}
	}
	if tiB.Stats().BlobGets == 0 {
		t.Fatal("adoption did not count a blob get")
	}
	// Adoption accounts ownership on the adopting node like a local session.
	if u := tiB.TenantUsage("acme"); u.Sessions() != 1 {
		t.Fatalf("adopting node charges %d sessions to the tenant, want 1", u.Sessions())
	}
	// Misses stay misses: a key nobody stored is a clean not-found, not an error.
	if _, ok := tiB.Get("acme/sess-404"); ok {
		t.Fatal("read-through invented a session")
	}
}

func TestBlobDemotionIsCacheDropNotLoss(t *testing.T) {
	// Measure one spill file first so the disk budget can be sized to hold
	// one file but not two.
	bs := sharedBlob(t)
	probe := newTestTiered(t, t.TempDir(), NewMemory(), WithBlobStore(bs))
	if err := probe.Put(trainSession(t, "sess-size", 1)); err != nil {
		t.Fatal(err)
	}
	probe.Flush()
	one := probe.Stats().SpillDirBytes
	if one == 0 {
		t.Fatal("probe spill produced no file")
	}

	bs2 := sharedBlob(t)
	dir := t.TempDir()
	ti := newTestTiered(t, dir, NewMemory(), WithBlobStore(bs2), WithSpillMaxBytes(one+one/2))
	if err := ti.Put(trainSession(t, "sess-1", 1)); err != nil {
		t.Fatal(err)
	}
	ti.Flush()
	if !ti.isRemote("sess-1") {
		t.Fatal("first spill never reached the blob tier")
	}
	// The second spill does not fit the budget next to the first: the
	// blob-backed first file is demoted — a cache drop, not a session loss.
	if err := ti.Put(trainSession(t, "sess-2", 2)); err != nil {
		t.Fatal(err)
	}
	ti.Flush()
	st := ti.Stats()
	if st.BlobDemotions == 0 {
		t.Fatalf("no demotion happened (disk %d/%d)", st.SpillDirBytes, st.SpillMaxBytes)
	}
	if st.DiskEvictions != 0 {
		t.Fatalf("demotion was charged as a session-losing disk eviction (%d)", st.DiskEvictions)
	}

	// Kill the node. Its local cache file for sess-1 is gone (demoted), but
	// the blob copy makes the reboot whole: both sessions restore.
	hardKill(ti)
	ti2 := newTestTiered(t, dir, NewMemory(), WithBlobStore(bs2))
	for _, id := range []string{"sess-1", "sess-2"} {
		if _, ok := ti2.Get(id); !ok {
			t.Fatalf("session %s lost across demotion + reboot", id)
		}
	}
}

func TestSyncBlobNewestWinsAcrossReplicas(t *testing.T) {
	bs := sharedBlob(t)
	dirA := t.TempDir()

	// Node A publishes the session at updates=0 and dies.
	tiA := newTestTiered(t, dirA, NewMemory(), WithBlobStore(bs))
	if err := tiA.Put(trainSession(t, "acme/sess-1", 7)); err != nil {
		t.Fatal(err)
	}
	tiA.Flush()
	hardKill(tiA)

	// Node B adopts the session and advances it past A's local cache.
	tiB := newTestTiered(t, t.TempDir(), NewMemory(), WithBlobStore(bs))
	sess, ok := tiB.Get("acme/sess-1")
	if !ok {
		t.Fatal("node B could not adopt the session")
	}
	want := applyDeletion(t, sess, []int{2, 9, 11})
	tiB.Flush()
	hardKill(tiB)

	// Node A reboots with a stale local cache file (updates=0) under a blob
	// object at updates=1: newest wins, the stale file is dropped, and the
	// session serves node B's state — the deletions another replica honored
	// can never be undone by a stale cache.
	tiA2 := newTestTiered(t, dirA, NewMemory(), WithBlobStore(bs))
	got, ok := tiA2.Get("acme/sess-1")
	if !ok {
		t.Fatal("session lost across the stale-cache reboot")
	}
	vec, nDel, updates := sessionState(t, got)
	if nDel != 3 || updates != 1 {
		t.Fatalf("rebooted node serves %d deletions (updates %d), want 3 (1)", nDel, updates)
	}
	for i := range vec {
		if vec[i] != want[i] {
			t.Fatalf("rebooted model differs at %d from the newest published state", i)
		}
	}
}

func TestSyncBlobHealsLocalOnlyFilesUpward(t *testing.T) {
	// A node that spilled locally WITHOUT a blob tier (or crashed before its
	// push) holds the only copy. Rebooting it with the blob tier attached
	// heals the file upward immediately, before traffic.
	dir := t.TempDir()
	ti := newTestTiered(t, dir, NewMemory())
	if err := ti.Put(trainSession(t, "acme/sess-1", 3)); err != nil {
		t.Fatal(err)
	}
	ti.Flush()
	hardKill(ti)

	bs := sharedBlob(t)
	ti2 := newTestTiered(t, dir, NewMemory(), WithBlobStore(bs))
	if ti2.Stats().BlobPuts == 0 {
		t.Fatal("boot sync never pushed the stranded local file")
	}
	if _, _, err := bs.Get("acme/sess-1"); err != nil {
		t.Fatalf("healed object unreadable: %v", err)
	}
	if !ti2.isRemote("acme/sess-1") {
		t.Fatal("healed entry not marked blob-backed")
	}
}

func TestReleaseUnownedHandsOffThroughBlob(t *testing.T) {
	bs := sharedBlob(t)
	ti := newTestTiered(t, t.TempDir(), NewMemory(), WithBlobStore(bs))
	keep := trainSession(t, "acme/sess-1", 1)
	lose := trainSession(t, "acme/sess-2", 2)
	want := applyDeletion(t, lose, []int{4})
	for _, s := range []*Session{keep, lose} {
		if err := ti.Put(s); err != nil {
			t.Fatal(err)
		}
	}

	// The ring reassigned sess-2 elsewhere: release certifies its blob copy
	// (including the un-flushed deletion) and forgets it locally.
	released, err := ti.ReleaseUnowned(func(id string) bool { return id == "acme/sess-1" })
	if err != nil {
		t.Fatal(err)
	}
	if released != 1 {
		t.Fatalf("released %d sessions, want 1", released)
	}
	var residents []string
	ti.Range(func(s *Session) bool { residents = append(residents, s.ID); return true })
	if len(residents) != 1 || residents[0] != "acme/sess-1" {
		t.Fatalf("residents after handoff = %v", residents)
	}
	if u := ti.TenantUsage("acme"); u.Sessions() != 1 {
		t.Fatalf("handed-off session still charged to the tenant (%d sessions)", u.Sessions())
	}

	// The new owner adopts the released session with the mutation intact.
	ti2 := newTestTiered(t, t.TempDir(), NewMemory(), WithBlobStore(bs))
	got, ok := ti2.Get("acme/sess-2")
	if !ok {
		t.Fatal("released session not adoptable by the new owner")
	}
	vec, nDel, _ := sessionState(t, got)
	if nDel != 1 {
		t.Fatalf("handoff lost the deletion log (%d entries)", nDel)
	}
	for i := range vec {
		if vec[i] != want[i] {
			t.Fatalf("handoff lost the un-flushed mutation (model differs at %d)", i)
		}
	}

	// The old owner can itself re-adopt if the ring flaps back.
	back, ok := ti.Get("acme/sess-2")
	if !ok {
		t.Fatal("old owner cannot re-adopt after a ring flap")
	}
	if _, nDel, _ := sessionState(t, back); nDel != 1 {
		t.Fatal("re-adopted session lost state")
	}
}

func TestReleaseUnownedWithoutBlobRefuses(t *testing.T) {
	ti := newTestTiered(t, t.TempDir(), NewMemory())
	if _, err := ti.ReleaseUnowned(func(string) bool { return false }); err == nil {
		t.Fatal("ReleaseUnowned without a blob tier must refuse")
	}
}

// stale local directory entries left by a released session must not linger.
func TestReleaseUnownedDropsColdCacheFiles(t *testing.T) {
	bs := sharedBlob(t)
	ti := newTestTiered(t, t.TempDir(), NewMemory(WithMaxSessions(1)), WithBlobStore(bs))
	a := trainSession(t, "acme/sess-1", 1)
	b := trainSession(t, "acme/sess-2", 2)
	if err := ti.Put(a); err != nil {
		t.Fatal(err)
	}
	ti.Flush()
	if err := ti.Put(b); err != nil { // evicts sess-1 to cold (spill-on-evict)
		t.Fatal(err)
	}
	ti.Flush()

	released, err := ti.ReleaseUnowned(func(id string) bool { return id == "acme/sess-2" })
	if err != nil {
		t.Fatal(err)
	}
	if released != 1 {
		t.Fatalf("released %d, want the one cold session", released)
	}
	if u := ti.TenantUsage("acme"); u.Sessions() != 1 {
		t.Fatalf("cold handoff left %d sessions charged, want 1", u.Sessions())
	}
	st := ti.Stats()
	if st.Spilled != 0 {
		t.Fatalf("cold entry survived the handoff: %+v", st.SpilledSessions)
	}
}

// --- chaos: blob-tier fault injection -----------------------------------

func TestChaosBlobPutFailureKeepsLocalAndHeals(t *testing.T) {
	bs := sharedBlob(t)
	ti := newTestTiered(t, t.TempDir(), NewMemory(), WithBlobStore(bs))
	var armed atomic.Bool
	ti.fault = faultOn("blob.put", &armed)

	armed.Store(true)
	if err := ti.Put(trainSession(t, "acme/sess-1", 1)); err != nil {
		t.Fatal(err)
	}
	ti.Flush()
	if ti.blobErrors.Load() == 0 {
		t.Fatal("blob.put fault never fired")
	}
	if ti.isRemote("acme/sess-1") {
		t.Fatal("failed push must not certify the blob copy")
	}
	if _, _, err := bs.Get("acme/sess-1"); err != ErrBlobNotFound {
		t.Fatalf("blob tier holds an object after a failed push: %v", err)
	}
	// Local durability is intact the whole time.
	if _, ok := ti.Get("acme/sess-1"); !ok {
		t.Fatal("session unreadable during blob outage")
	}

	// The GC sweep's heal pass re-pushes once the tier recovers.
	armed.Store(false)
	ti.blobMaintain()
	if !ti.isRemote("acme/sess-1") {
		t.Fatal("heal pass never re-pushed the local file")
	}
	if _, _, err := bs.Get("acme/sess-1"); err != nil {
		t.Fatalf("healed object unreadable: %v", err)
	}
}

func TestChaosBlobDeleteTombstoneBlocksResurrection(t *testing.T) {
	bs := sharedBlob(t)
	dir := t.TempDir()
	ti := newTestTiered(t, dir, NewMemory(), WithBlobStore(bs))
	if err := ti.Put(trainSession(t, "acme/sess-1", 5)); err != nil {
		t.Fatal(err)
	}
	ti.Flush()
	if !ti.isRemote("acme/sess-1") {
		t.Fatal("setup: session never reached the blob tier")
	}

	var armed atomic.Bool
	ti.fault = faultOn("blob.delete", &armed)
	armed.Store(true)
	if !ti.Delete("acme/sess-1") {
		t.Fatal("delete reported the session missing")
	}
	// The blob delete failed, so the object is still physically there...
	if _, _, err := bs.Get("acme/sess-1"); err != nil {
		t.Fatalf("test premise broken: blob delete should have failed (%v)", err)
	}
	// ...but the acknowledged deletion holds: the tombstone refuses the
	// read-through path, so the session does not resurrect on this node.
	if _, ok := ti.Get("acme/sess-1"); ok {
		t.Fatal("acknowledged deletion resurrected through the read-through path")
	}

	// The GC sweep retries tombstoned deletes until they stick.
	armed.Store(false)
	ti.blobMaintain()
	if _, _, err := bs.Get("acme/sess-1"); err != ErrBlobNotFound {
		t.Fatalf("tombstone retry never removed the object: %v", err)
	}

	// Node kill + blob-backed reboot, and a brand-new replica adopting from
	// the same tier: the deletion stays deleted everywhere.
	hardKill(ti)
	for _, bootDir := range []string{dir, t.TempDir()} {
		reboot := newTestTiered(t, bootDir, NewMemory(), WithBlobStore(bs))
		if _, ok := reboot.Get("acme/sess-1"); ok {
			t.Fatalf("acknowledged deletion resurrected after reboot from %s", bootDir)
		}
	}
}

func TestChaosBlobGetFailureIsAnErrorNotAMiss(t *testing.T) {
	bs := sharedBlob(t)
	tiA := newTestTiered(t, t.TempDir(), NewMemory(), WithBlobStore(bs))
	a := trainSession(t, "acme/sess-1", 2)
	want := applyDeletion(t, a, []int{1})
	if err := tiA.Put(a); err != nil {
		t.Fatal(err)
	}
	tiA.Flush()

	// Node B boots with the blob reachable (its boot sync indexes the
	// session remote-only), then the tier starts failing reads.
	tiB := newTestTiered(t, t.TempDir(), NewMemory(), WithBlobStore(bs))
	var armed atomic.Bool
	tiB.fault = faultOn("blob.get", &armed)
	armed.Store(true)
	if _, ok := tiB.Get("acme/sess-1"); ok {
		t.Fatal("a failing blob read must not fabricate a session")
	}
	if tiB.restoreErrors.Load() == 0 {
		t.Fatal("failed blob restore was not counted")
	}

	// Recovery: the same touch succeeds once the tier is back.
	armed.Store(false)
	got, ok := tiB.Get("acme/sess-1")
	if !ok {
		t.Fatal("session unreadable after the blob tier recovered")
	}
	vec, nDel, _ := sessionState(t, got)
	if nDel != 1 {
		t.Fatalf("recovered session has %d deletions, want 1", nDel)
	}
	for i := range vec {
		if vec[i] != want[i] {
			t.Fatalf("recovered model differs at %d", i)
		}
	}
}
