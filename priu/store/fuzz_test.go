package store

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/binio"
)

// fuzzSeedEnvelope serializes one valid v2 spill-file envelope header,
// including the envelope-carried deletion log.
func fuzzSeedEnvelope(id, kind string, updates int64, deleted []int) []byte {
	var buf bytes.Buffer
	bw := binio.NewWriter(&buf)
	bw.Bytes([]byte(spillMagic))
	bw.U64(spillVersion)
	bw.Str(id)
	bw.Str(kind)
	bw.I64(time.Unix(0, 0).UnixNano())
	bw.I64(updates)
	bw.F64(0.25)
	bw.U64(uint64(len(deleted)))
	for _, v := range deleted {
		bw.I64(int64(v))
	}
	_ = bw.Flush()
	return buf.Bytes()
}

// fuzzSeedV1Envelope serializes the legacy v1 envelope (no deletion log) —
// still accepted at boot so pre-LSM spill dirs restore.
func fuzzSeedV1Envelope(id, kind string, updates int64) []byte {
	var buf bytes.Buffer
	bw := binio.NewWriter(&buf)
	bw.Bytes([]byte(spillMagic))
	bw.U64(1)
	bw.Str(id)
	bw.Str(kind)
	bw.I64(time.Unix(0, 0).UnixNano())
	bw.I64(updates)
	bw.F64(0.25)
	_ = bw.Flush()
	return buf.Bytes()
}

// FuzzSpillEnvelope hammers the spill-file header decoder — the first thing
// the boot reindex runs against every file in the directory, hostile or
// torn. It must never panic, never allocate beyond the name bound, and only
// accept envelopes with a session ID. Seed corpus in
// testdata/fuzz/FuzzSpillEnvelope.
func FuzzSpillEnvelope(f *testing.F) {
	valid := fuzzSeedEnvelope("acme/sess-42", "linear", 7, []int{3, 1, 4})
	f.Add(valid)
	f.Add(valid[:9])                                      // truncated after magic+version
	f.Add(valid[:len(valid)-4])                           // torn inside the deletion log
	f.Add([]byte("PRSP"))                                 // bare magic
	f.Add([]byte{})                                       // empty
	f.Add(fuzzSeedEnvelope("", "linear", 0, nil))         // missing ID: must be rejected
	f.Add(fuzzSeedV1Envelope("acme/sess-42", "ridge", 3)) // legacy v1, still accepted
	// A length claim far past the stream (bounded-alloc check).
	var huge bytes.Buffer
	bw := binio.NewWriter(&huge)
	bw.Bytes([]byte(spillMagic))
	bw.U64(spillVersion)
	bw.U64(1 << 62) // absurd ID length
	_ = bw.Flush()
	f.Add(huge.Bytes())
	// A plausible header whose deletion-log count claims far more entries
	// than the stream holds (incremental-grow check).
	var hugeLog bytes.Buffer
	bw = binio.NewWriter(&hugeLog)
	bw.Bytes([]byte(spillMagic))
	bw.U64(spillVersion)
	bw.Str("acme/sess-42")
	bw.Str("linear")
	bw.I64(0)
	bw.I64(1)
	bw.F64(0.25)
	bw.U64(1 << 26) // claims 64M deletion entries, stream ends here
	_ = bw.Flush()
	f.Add(hugeLog.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		_, env, err := readSpillEnvelope(bytes.NewReader(data))
		if err != nil {
			return
		}
		if env.id == "" {
			t.Fatal("accepted envelope without a session ID")
		}
		if len(env.id) > maxSpillName || len(env.kind) > maxSpillName {
			t.Fatalf("accepted oversized strings: id=%d kind=%d", len(env.id), len(env.kind))
		}
	})
}

// fuzzSeedDelta serializes one valid delta segment.
func fuzzSeedDelta(id string, fromLen, fromUpdates int64, entries []int) []byte {
	var buf bytes.Buffer
	cut := &spillCut{id: id, fromLen: fromLen, fromUpdates: fromUpdates,
		updates: fromUpdates + int64(len(entries)), lastUpd: 0.25}
	_ = writeDeltaSegment(&buf, cut, entries)
	return buf.Bytes()
}

// FuzzDeltaSegment hammers the delta-segment decoder the same way boot
// reindex and restore do: header first (reindex), then the full body
// (restore, torn-tail detection). Accepted headers must carry a session ID
// and non-negative chain coordinates; an accepted body must hold exactly
// the entry count the header claims.
func FuzzDeltaSegment(f *testing.F) {
	valid := fuzzSeedDelta("acme/sess-42", 3, 7, []int{9, 2, 5})
	f.Add(valid)
	f.Add(valid[:9])                               // truncated after magic+version
	f.Add(valid[:len(valid)-4])                    // torn inside the entries
	f.Add([]byte(deltaMagic))                      // bare magic
	f.Add([]byte{})                                // empty
	f.Add(fuzzSeedDelta("", 0, 0, nil))            // missing ID: must be rejected
	f.Add(fuzzSeedDelta("acme/s", 0, 0, []int{1})) // minimal chain head
	// A header claiming far more entries than the stream holds.
	var hugeCount bytes.Buffer
	bw := binio.NewWriter(&hugeCount)
	bw.Bytes([]byte(deltaMagic))
	bw.U64(deltaVersion)
	bw.Str("acme/sess-42")
	bw.I64(0)
	bw.I64(0)
	bw.I64(1)
	bw.F64(0.25)
	bw.U64(1 << 26)
	_ = bw.Flush()
	f.Add(hugeCount.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := readDeltaHeader(binio.NewReader(bytes.NewReader(data)))
		if err == nil {
			if h.id == "" {
				t.Fatal("accepted delta header without a session ID")
			}
			if len(h.id) > maxSpillName {
				t.Fatalf("accepted oversized ID: %d bytes", len(h.id))
			}
			if h.fromLen < 0 || h.entries < 0 {
				t.Fatalf("accepted negative chain coordinates: fromLen=%d entries=%d", h.fromLen, h.entries)
			}
		}
		// The full-body path must agree: if it accepts, the entry slice
		// must match the header's claim exactly (torn tails rejected).
		d, derr := readDelta(bytes.NewReader(data))
		if derr != nil {
			return
		}
		if err != nil {
			t.Fatal("body decoder accepted a segment the header decoder rejected")
		}
		if int64(len(d.entries)) != h.entries {
			t.Fatalf("accepted torn body: %d entries decoded, header claims %d", len(d.entries), h.entries)
		}
	})
}
