package store

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/binio"
)

// fuzzSeedEnvelope serializes one valid spill-file envelope header.
func fuzzSeedEnvelope(id, kind string, updates int64) []byte {
	var buf bytes.Buffer
	bw := binio.NewWriter(&buf)
	bw.Bytes([]byte(spillMagic))
	bw.U64(spillVersion)
	bw.Str(id)
	bw.Str(kind)
	bw.I64(time.Unix(0, 0).UnixNano())
	bw.I64(updates)
	bw.F64(0.25)
	_ = bw.Flush()
	return buf.Bytes()
}

// FuzzSpillEnvelope hammers the spill-file header decoder — the first thing
// the boot reindex runs against every file in the directory, hostile or
// torn. It must never panic, never allocate beyond the name bound, and only
// accept envelopes with a session ID. Seed corpus in
// testdata/fuzz/FuzzSpillEnvelope.
func FuzzSpillEnvelope(f *testing.F) {
	valid := fuzzSeedEnvelope("acme/sess-42", "linear", 7)
	f.Add(valid)
	f.Add(valid[:9])                         // truncated after magic+version
	f.Add([]byte("PRSP"))                    // bare magic
	f.Add([]byte{})                          // empty
	f.Add(fuzzSeedEnvelope("", "linear", 0)) // missing ID: must be rejected
	// A length claim far past the stream (bounded-alloc check).
	var huge bytes.Buffer
	bw := binio.NewWriter(&huge)
	bw.Bytes([]byte(spillMagic))
	bw.U64(spillVersion)
	bw.U64(1 << 62) // absurd ID length
	_ = bw.Flush()
	f.Add(huge.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		_, env, err := readSpillEnvelope(bytes.NewReader(data))
		if err != nil {
			return
		}
		if env.id == "" {
			t.Fatal("accepted envelope without a session ID")
		}
		if len(env.id) > maxSpillName || len(env.kind) > maxSpillName {
			t.Fatalf("accepted oversized strings: id=%d kind=%d", len(env.id), len(env.kind))
		}
	})
}
