package store

import (
	"sync"
	"sync/atomic"
)

// memShard is one lock domain of the in-memory tier.
type memShard struct {
	mu       sync.RWMutex
	sessions map[string]*Session

	// Counters are lock-free so hot paths never take the shard lock just to
	// bump a metric.
	budgetEvictions atomic.Int64
	explicitDeletes atomic.Int64
}

// memTenant is one tenant's accounting entry (guarded by Memory.tmu).
// resident/residentBytes track the in-memory tier; owned/ownedBytes track
// the sessions the tenant owns across every tier — a spill moves a session
// out of resident but not out of owned, so the quota check is a single
// O(1) compare under one lock with no colder-tier scan (and no window where
// a concurrent eviction hides a session from both tiers' counts).
type memTenant struct {
	resident        int
	residentBytes   int64
	owned           int
	ownedBytes      int64
	budgetEvictions int64
	explicitDeletes int64
	quotaRejections int64
	// spillBytes is the tenant's on-disk spill-file usage, maintained by the
	// tiered store as files are published and unlinked — the MaxSpillBytes
	// cap dimension.
	spillBytes int64
	// diskEvictions counts the tenant's disk-only sessions dropped by the
	// global disk budget.
	diskEvictions int64
}

// Memory is the hash-sharded in-memory tier with an optional LRU budget.
// The zero value is not usable; call NewMemory.
type Memory struct {
	shards [NumShards]memShard

	// Eviction budgets (0 = unbounded) and accounting.
	maxSessions int
	maxBytes    int64
	curBytes    atomic.Int64

	// limits resolves per-tenant quotas (nil = no tenant quotas). tmu guards
	// the tenants map; quota check + reservation share one acquisition so
	// concurrent registrations can never jointly overshoot a quota.
	limits  LimitsFunc
	tmu     sync.Mutex
	tenants map[string]*memTenant

	// onEvictLocked, when set (by Tiered), is called with the victim's Mu
	// held before it is removed from the map or marked gone — the spill
	// hook. It runs outside all shard locks and reports the eviction
	// outcome: evictPreserved keeps the tenant's ownership charge (the
	// session survives in a colder tier), evictLost releases it (the
	// session is dropped), and evictRefused vetoes the eviction entirely —
	// the victim stays resident and the budget enforcer must pick another
	// (or report pressure), because dropping it would lose state the disk
	// tier cannot take right now.
	onEvictLocked func(*Session) int
}

// MemoryOption configures NewMemory.
type MemoryOption func(*Memory)

// WithMaxSessions bounds the number of resident sessions; the least recently
// used session is evicted when a registration exceeds the budget (0 =
// unbounded).
func WithMaxSessions(n int) MemoryOption { return func(m *Memory) { m.maxSessions = n } }

// WithMaxBytes bounds resident session memory (training data + provenance,
// as charged by priu.Updater.FootprintBytes); least recently used sessions
// are evicted when a registration exceeds the budget (0 = unbounded).
func WithMaxBytes(b int64) MemoryOption { return func(m *Memory) { m.maxBytes = b } }

// WithTenantLimits installs per-tenant quotas: Put rejects a registration
// (with *QuotaError) when it would take the session's tenant over its limit.
// The function is consulted on every registration, so hot-reloaded limits
// apply immediately. The anonymous namespace ("") is never quota-checked.
func WithTenantLimits(f LimitsFunc) MemoryOption { return func(m *Memory) { m.limits = f } }

// NewMemory returns an empty in-memory session store.
func NewMemory(opts ...MemoryOption) *Memory {
	m := &Memory{tenants: make(map[string]*memTenant)}
	for i := range m.shards {
		m.shards[i].sessions = make(map[string]*Session)
	}
	for _, opt := range opts {
		opt(m)
	}
	return m
}

// tenant returns (creating if needed) a tenant's accounting entry. Callers
// hold tmu.
func (m *Memory) tenant(name string) *memTenant {
	tu, ok := m.tenants[name]
	if !ok {
		tu = &memTenant{}
		m.tenants[name] = tu
	}
	return tu
}

// Put implements Store: the quota check and ownership reservation are one
// atomic step under tmu, so concurrent registrations (and concurrent spills,
// which never touch the owned counters) cannot jointly overshoot a quota.
func (m *Memory) Put(sess *Session) error {
	ten := TenantOf(sess.ID)
	m.tmu.Lock()
	tu := m.tenant(ten)
	if m.limits != nil && ten != "" {
		lim := m.limits(ten)
		if lim.MaxSessions > 0 && tu.owned+1 > lim.MaxSessions {
			tu.quotaRejections++
			m.tmu.Unlock()
			return &QuotaError{
				Tenant: ten, Dimension: "sessions",
				Used: int64(tu.owned + 1), Limit: int64(lim.MaxSessions),
			}
		}
		if lim.MaxBytes > 0 && tu.ownedBytes+sess.footprint > lim.MaxBytes {
			tu.quotaRejections++
			m.tmu.Unlock()
			return &QuotaError{
				Tenant: ten, Dimension: "bytes",
				Used: tu.ownedBytes + sess.footprint, Limit: lim.MaxBytes,
			}
		}
		// A tenant sitting at its spill-byte cap cannot register more
		// sessions: its disk usage must shrink (explicit deletes) before the
		// store takes on state it may be unable to preserve.
		if lim.MaxSpillBytes > 0 && tu.spillBytes >= lim.MaxSpillBytes {
			tu.quotaRejections++
			m.tmu.Unlock()
			return &QuotaError{
				Tenant: ten, Dimension: DimensionSpillBytes,
				Used: tu.spillBytes, Limit: lim.MaxSpillBytes,
			}
		}
	}
	tu.owned++
	tu.ownedBytes += sess.footprint
	tu.resident++
	tu.residentBytes += sess.footprint
	m.tmu.Unlock()
	if pe := m.insert(sess); pe != nil {
		// The resident tier is over budget and every evictable session is
		// pinned by an active stream: evicting would drop state under a
		// reader, and admitting without evicting would let pinned load grow
		// the tier without bound. Undo the registration and report the
		// transient pressure — the caller retries once streams settle.
		sh := &m.shards[ShardIndex(sess.ID)]
		sh.mu.Lock()
		delete(sh.sessions, sess.ID)
		sh.mu.Unlock()
		m.curBytes.Add(-sess.footprint)
		m.tmu.Lock()
		tu := m.tenant(ten)
		tu.owned--
		tu.ownedBytes -= sess.footprint
		tu.resident--
		tu.residentBytes -= sess.footprint
		m.tmu.Unlock()
		sess.Mu.Lock()
		sess.gone.Store(true)
		sess.Mu.Unlock()
		return pe
	}
	return nil
}

// putRestored publishes a session re-materialized from a colder tier. No
// quota check and no ownership charge: the session already counts against
// its tenant (it existed), only the resident-tier accounting moves.
func (m *Memory) putRestored(sess *Session) {
	ten := TenantOf(sess.ID)
	m.tmu.Lock()
	tu := m.tenant(ten)
	tu.resident++
	tu.residentBytes += sess.footprint
	m.tmu.Unlock()
	m.insert(sess)
}

// adjustOwned shifts a tenant's cross-tier ownership charge directly — the
// tiered store uses it to seed reboot-indexed spill files and to settle
// byte-charge drift on restores and disk-only deletes.
func (m *Memory) adjustOwned(tenant string, dSessions int, dBytes int64) {
	m.tmu.Lock()
	tu := m.tenant(tenant)
	tu.owned += dSessions
	tu.ownedBytes += dBytes
	m.tmu.Unlock()
}

// reserveSpill charges delta spill-file bytes against the tenant, enforcing
// its MaxSpillBytes cap: a charge that would cross the cap is rejected with
// a *QuotaError and nothing is charged. Negative deltas (file unlinks)
// always succeed. The anonymous namespace is never capped.
func (m *Memory) reserveSpill(tenant string, delta int64) error {
	m.tmu.Lock()
	defer m.tmu.Unlock()
	tu := m.tenant(tenant)
	if delta > 0 && m.limits != nil && tenant != "" {
		if lim := m.limits(tenant); lim.MaxSpillBytes > 0 && tu.spillBytes+delta > lim.MaxSpillBytes {
			return &QuotaError{
				Tenant: tenant, Dimension: DimensionSpillBytes,
				Used: tu.spillBytes + delta, Limit: lim.MaxSpillBytes,
			}
		}
	}
	tu.spillBytes += delta
	return nil
}

// adjustSpill shifts a tenant's spill-file usage without a cap check — the
// release path (unlinks) and the boot seed, which must account for what
// already exists on disk.
func (m *Memory) adjustSpill(tenant string, delta int64) {
	m.tmu.Lock()
	m.tenant(tenant).spillBytes += delta
	m.tmu.Unlock()
}

// chargeDiskEviction counts a disk-budget drop of one of the tenant's
// disk-only sessions.
func (m *Memory) chargeDiskEviction(tenant string) {
	m.tmu.Lock()
	m.tenant(tenant).diskEvictions++
	m.tmu.Unlock()
}

// insert publishes an already-accounted session and enforces the global
// budgets, reporting unresolvable resident pressure (every evictable session
// pinned). Put rejects on pressure; putRestored ignores it — a restore must
// succeed, the budget is temporarily exceeded instead.
func (m *Memory) insert(sess *Session) *PressureError {
	sh := &m.shards[ShardIndex(sess.ID)]
	sess.Touch()
	sh.mu.Lock()
	sh.sessions[sess.ID] = sess
	sh.mu.Unlock()
	m.curBytes.Add(sess.footprint)
	return m.enforceBudget(sess.ID)
}

// Eviction outcomes reported by onEvictLocked.
const (
	// evictPreserved: the victim's state survives in a colder tier; drop
	// the resident copy and keep the tenant's ownership charge.
	evictPreserved = iota
	// evictLost: the victim could not be preserved (spilling disabled, the
	// spill failed); the session is dropped and its ownership released.
	evictLost
	// evictRefused: the disk tier is under pressure it cannot relieve
	// (every reclaimable file pinned) — the victim must NOT be dropped.
	// The enforcer skips it and reports *PressureError if nothing else is
	// evictable.
	evictRefused
)

// Removal reasons for tenant accounting.
const (
	// removalEvict is a budget eviction; ownership is released only when the
	// session did not survive to a colder tier.
	removalEvict = iota
	// removalDelete is an explicit Delete: the session is gone everywhere.
	removalDelete
	// removalDrop undoes a restore that raced a Delete: the resident copy
	// leaves, but the ownership charge was already settled by the Delete.
	removalDrop
)

// uncharge updates the owning tenant's accounting when a session leaves the
// resident tier. preserved reports whether the session survives in a colder
// tier (only meaningful for removalEvict).
func (m *Memory) uncharge(sess *Session, reason int, preserved bool) {
	m.tmu.Lock()
	tu := m.tenant(TenantOf(sess.ID))
	tu.resident--
	tu.residentBytes -= sess.footprint
	switch reason {
	case removalEvict:
		tu.budgetEvictions++
		if !preserved {
			tu.owned--
			tu.ownedBytes -= sess.footprint
		}
	case removalDelete:
		tu.explicitDeletes++
		tu.owned--
		tu.ownedBytes -= sess.footprint
	}
	m.tmu.Unlock()
}

// chargeExplicitDelete counts an explicit delete that removed no resident
// copy (the tiered store's disk-only deletes) against the owning tenant.
func (m *Memory) chargeExplicitDelete(tenant string) {
	m.tmu.Lock()
	m.tenant(tenant).explicitDeletes++
	m.tmu.Unlock()
}

// Get implements Store.
func (m *Memory) Get(id string) (*Session, bool) {
	sh := &m.shards[ShardIndex(id)]
	sh.mu.RLock()
	sess, ok := sh.sessions[id]
	sh.mu.RUnlock()
	if ok {
		sess.Touch()
	}
	return sess, ok
}

// peek returns a resident session without touching the LRU clock (used by
// the tiered store's stats and disk-budget evictor).
func (m *Memory) peek(id string) (*Session, bool) {
	sh := &m.shards[ShardIndex(id)]
	sh.mu.RLock()
	sess, ok := sh.sessions[id]
	sh.mu.RUnlock()
	return sess, ok
}

// has reports residency without touching the LRU clock.
func (m *Memory) has(id string) bool {
	_, ok := m.peek(id)
	return ok
}

// Delete implements Store.
func (m *Memory) Delete(id string) bool {
	sh := &m.shards[ShardIndex(id)]
	sh.mu.Lock()
	sess, ok := sh.sessions[id]
	if ok {
		delete(sh.sessions, id)
	}
	sh.mu.Unlock()
	if !ok {
		return false
	}
	sh.explicitDeletes.Add(1)
	m.curBytes.Add(-sess.footprint)
	m.uncharge(sess, removalDelete, false)
	sess.Mu.Lock()
	sess.gone.Store(true)
	sess.Mu.Unlock()
	return true
}

// Touch implements Store.
func (m *Memory) Touch(id string) bool {
	_, ok := m.Get(id)
	return ok
}

// drop removes a session without touching the explicit-delete counter — used
// by the tiered store to undo a restore that raced a Delete.
func (m *Memory) drop(id string) {
	sh := &m.shards[ShardIndex(id)]
	sh.mu.Lock()
	sess, ok := sh.sessions[id]
	if ok {
		delete(sh.sessions, id)
	}
	sh.mu.Unlock()
	if !ok {
		return
	}
	m.curBytes.Add(-sess.footprint)
	m.uncharge(sess, removalDrop, false)
	sess.Mu.Lock()
	sess.gone.Store(true)
	sess.Mu.Unlock()
}

// Range implements Store. fn runs without any shard lock held, so it may
// lock Session.Mu.
func (m *Memory) Range(fn func(*Session) bool) {
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		sessions := make([]*Session, 0, len(sh.sessions))
		for _, sess := range sh.sessions {
			sessions = append(sessions, sess)
		}
		sh.mu.RUnlock()
		for _, sess := range sessions {
			if !fn(sess) {
				return
			}
		}
	}
}

// Stats implements Store.
func (m *Memory) Stats() Stats {
	st := Stats{ResidentBytes: m.curBytes.Load()}
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		st.Shards[i].Sessions = len(sh.sessions)
		sh.mu.RUnlock()
		st.Shards[i].BudgetEvictions = sh.budgetEvictions.Load()
		st.Shards[i].ExplicitDeletes = sh.explicitDeletes.Load()
		st.Resident += st.Shards[i].Sessions
		st.BudgetEvictions += st.Shards[i].BudgetEvictions
		st.ExplicitDeletes += st.Shards[i].ExplicitDeletes
	}
	m.tmu.Lock()
	st.Tenants = make(map[string]TenantStats, len(m.tenants))
	for name, tu := range m.tenants {
		st.Tenants[name] = TenantStats{
			Resident:        tu.resident,
			ResidentBytes:   tu.residentBytes,
			Spilled:         tu.owned - tu.resident,
			SpilledBytes:    tu.ownedBytes - tu.residentBytes,
			BudgetEvictions: tu.budgetEvictions,
			ExplicitDeletes: tu.explicitDeletes,
			QuotaRejections: tu.quotaRejections,
			SpillFileBytes:  tu.spillBytes,
			DiskEvictions:   tu.diskEvictions,
		}
	}
	m.tmu.Unlock()
	return st
}

// TenantUsage implements Store. Spilled usage is derived from the ownership
// counters (owned − resident), so the call is O(1) for both tiers.
func (m *Memory) TenantUsage(tenant string) TenantUsage {
	m.tmu.Lock()
	defer m.tmu.Unlock()
	tu, ok := m.tenants[tenant]
	if !ok {
		return TenantUsage{}
	}
	return TenantUsage{
		Resident:       tu.resident,
		ResidentBytes:  tu.residentBytes,
		Spilled:        tu.owned - tu.resident,
		SpilledBytes:   tu.ownedBytes - tu.residentBytes,
		SpillFileBytes: tu.spillBytes,
	}
}

// Close implements Store (the in-memory tier has nothing to flush).
func (m *Memory) Close() error { return nil }

// sessionCount returns the number of resident sessions.
func (m *Memory) sessionCount() int {
	total := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		total += len(sh.sessions)
		sh.mu.RUnlock()
	}
	return total
}

// enforceBudget evicts least-recently-used sessions until the store is back
// under the session-count and byte budgets. The session named keepID (the
// one that triggered enforcement) is never evicted, so a single oversized
// registration still lands. Evictions are charged to the victim's tenant.
// When the budget stays exceeded because every candidate is pinned by a
// long-running read, a *PressureError names the exhausted dimension; a
// budget exceeded with nothing else resident at all (one oversized
// registration) is not pressure.
func (m *Memory) enforceBudget(keepID string) *PressureError {
	if m.maxSessions <= 0 && m.maxBytes <= 0 {
		return nil
	}
	// refused collects victims the eviction hook vetoed this enforcement
	// (disk tier under unrelievable pressure): they are skipped like pinned
	// sessions instead of silently dropped, and count toward the pressure
	// report — the registration is rejected, not someone else's state.
	var refused map[string]bool
	for {
		over := (m.maxSessions > 0 && m.sessionCount() > m.maxSessions) ||
			(m.maxBytes > 0 && m.curBytes.Load() > m.maxBytes)
		if !over {
			return nil
		}
		victim, vShard, pinned := m.pickVictim(keepID, refused)
		if victim == nil {
			if pinned+len(refused) == 0 {
				return nil // nothing evictable left (oversized single session)
			}
			dim := "bytes"
			if m.maxSessions > 0 && m.sessionCount() > m.maxSessions {
				dim = "sessions"
			}
			return &PressureError{Dimension: dim, Pinned: pinned + len(refused)}
		}
		// Spill (if tiered) BEFORE removing the session from the resident
		// map, so a concurrent Get always finds it in at least one tier —
		// never a window where the session is in neither. Spill and the gone
		// flag share one Mu acquisition: an update serialized before the
		// flag flips is in the spill file, an update that loses the lock
		// race sees gone and re-fetches the restored copy — either way no
		// honored deletion is lost. Mutators that re-fetch while the session
		// is still briefly in the map just retry until the removal below
		// lands.
		victim.Mu.Lock()
		if victim.gone.Load() {
			victim.Mu.Unlock()
			continue // a concurrent evictor or deleter won
		}
		outcome := evictLost
		if m.onEvictLocked != nil {
			outcome = m.onEvictLocked(victim)
		}
		if outcome == evictRefused {
			victim.Mu.Unlock()
			if refused == nil {
				refused = make(map[string]bool)
			}
			refused[victim.ID] = true
			continue // victim stays resident; try the next candidate
		}
		preserved := outcome == evictPreserved
		victim.gone.Store(true)
		victim.Mu.Unlock()
		vShard.mu.Lock()
		// Re-check under the lock: a concurrent deleter may have won.
		if _, still := vShard.sessions[victim.ID]; !still {
			vShard.mu.Unlock()
			continue
		}
		delete(vShard.sessions, victim.ID)
		vShard.mu.Unlock()
		vShard.budgetEvictions.Add(1)
		m.curBytes.Add(-victim.footprint)
		m.uncharge(victim, removalEvict, preserved)
	}
}

// victimCand is one eviction candidate found by the shard scan.
type victimCand struct {
	sess  *Session
	shard *memShard
	lu    int64
}

// pickVictim chooses the session to evict: with a single tenant resident it
// is the plain global LRU session, with several it is fair-share — the
// victim comes from the tenant furthest over its equal share of resident
// bytes (LRU within that tenant), so one hot tenant churning registrations
// cannot monopolize the resident tier by aging out everyone else's
// sessions. The session named keepID is never picked, nor is any session
// pinned by a long-running read or in the caller's skip set (eviction
// refused this enforcement) — when everything evictable is pinned or
// refused, enforcement rejects the registration with a *PressureError
// rather than dropping state under an active stream. The pinned count of
// skipped sessions rides along so the caller can tell "all pinned"
// (transient pressure) from "nothing else resident" (an oversized single
// session).
func (m *Memory) pickVictim(keepID string, skip map[string]bool) (*Session, *memShard, int) {
	var global victimCand
	pinned := 0
	perTenant := map[string]victimCand{}
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		for _, sess := range sh.sessions {
			if sess.ID == keepID || skip[sess.ID] {
				continue
			}
			if sess.Pinned() {
				pinned++
				continue // a long-running read holds it resident
			}
			lu := sess.lastUsed.Load()
			if global.sess == nil || lu < global.lu {
				global = victimCand{sess, sh, lu}
			}
			ten := TenantOf(sess.ID)
			if c, ok := perTenant[ten]; !ok || lu < c.lu {
				perTenant[ten] = victimCand{sess, sh, lu}
			}
		}
		sh.mu.RUnlock()
	}
	if len(perTenant) <= 1 {
		return global.sess, global.shard, pinned
	}
	// Several tenants have evictable sessions: weight by resident working
	// set. Fair share is an equal split of the candidates' total resident
	// bytes; the tenant with the largest excess loses its LRU session, ties
	// (e.g. perfectly balanced tenants) falling back to the global LRU.
	m.tmu.Lock()
	resident := make(map[string]int64, len(perTenant))
	var total int64
	for ten := range perTenant {
		if tu, ok := m.tenants[ten]; ok {
			resident[ten] = tu.residentBytes
			total += tu.residentBytes
		}
	}
	m.tmu.Unlock()
	fair := total / int64(len(perTenant))
	var (
		best       victimCand
		bestExcess int64
	)
	for ten, c := range perTenant {
		excess := resident[ten] - fair
		if excess <= 0 {
			continue
		}
		if best.sess == nil || excess > bestExcess ||
			(excess == bestExcess && c.lu < best.lu) {
			best, bestExcess = c, excess
		}
	}
	if best.sess == nil {
		return global.sess, global.shard, pinned
	}
	return best.sess, best.shard, pinned
}
