package store

import (
	"sync"
	"sync/atomic"
)

// memShard is one lock domain of the in-memory tier.
type memShard struct {
	mu       sync.RWMutex
	sessions map[string]*Session

	// Counters are lock-free so hot paths never take the shard lock just to
	// bump a metric.
	budgetEvictions atomic.Int64
	explicitDeletes atomic.Int64
}

// Memory is the hash-sharded in-memory tier with an optional LRU budget.
// The zero value is not usable; call NewMemory.
type Memory struct {
	shards [NumShards]memShard

	// Eviction budgets (0 = unbounded) and accounting.
	maxSessions int
	maxBytes    int64
	curBytes    atomic.Int64

	// onEvictLocked, when set (by Tiered), is called with the victim's Mu
	// held after the victim left the map and before it is marked gone — the
	// spill hook. It runs outside all shard locks.
	onEvictLocked func(*Session)
}

// MemoryOption configures NewMemory.
type MemoryOption func(*Memory)

// WithMaxSessions bounds the number of resident sessions; the least recently
// used session is evicted when a registration exceeds the budget (0 =
// unbounded).
func WithMaxSessions(n int) MemoryOption { return func(m *Memory) { m.maxSessions = n } }

// WithMaxBytes bounds resident session memory (training data + provenance,
// as charged by priu.Updater.FootprintBytes); least recently used sessions
// are evicted when a registration exceeds the budget (0 = unbounded).
func WithMaxBytes(b int64) MemoryOption { return func(m *Memory) { m.maxBytes = b } }

// NewMemory returns an empty in-memory session store.
func NewMemory(opts ...MemoryOption) *Memory {
	m := &Memory{}
	for i := range m.shards {
		m.shards[i].sessions = make(map[string]*Session)
	}
	for _, opt := range opts {
		opt(m)
	}
	return m
}

// Put implements Store.
func (m *Memory) Put(sess *Session) {
	sh := &m.shards[ShardIndex(sess.ID)]
	sess.Touch()
	sh.mu.Lock()
	sh.sessions[sess.ID] = sess
	sh.mu.Unlock()
	m.curBytes.Add(sess.footprint)
	m.enforceBudget(sess.ID)
}

// Get implements Store.
func (m *Memory) Get(id string) (*Session, bool) {
	sh := &m.shards[ShardIndex(id)]
	sh.mu.RLock()
	sess, ok := sh.sessions[id]
	sh.mu.RUnlock()
	if ok {
		sess.Touch()
	}
	return sess, ok
}

// has reports residency without touching the LRU clock (used by the tiered
// store's stats).
func (m *Memory) has(id string) bool {
	sh := &m.shards[ShardIndex(id)]
	sh.mu.RLock()
	_, ok := sh.sessions[id]
	sh.mu.RUnlock()
	return ok
}

// Delete implements Store.
func (m *Memory) Delete(id string) bool {
	sh := &m.shards[ShardIndex(id)]
	sh.mu.Lock()
	sess, ok := sh.sessions[id]
	if ok {
		delete(sh.sessions, id)
	}
	sh.mu.Unlock()
	if !ok {
		return false
	}
	sh.explicitDeletes.Add(1)
	m.curBytes.Add(-sess.footprint)
	sess.Mu.Lock()
	sess.gone = true
	sess.Mu.Unlock()
	return true
}

// Touch implements Store.
func (m *Memory) Touch(id string) bool {
	_, ok := m.Get(id)
	return ok
}

// drop removes a session without touching the explicit-delete counter — used
// by the tiered store to undo a restore that raced a Delete.
func (m *Memory) drop(id string) {
	sh := &m.shards[ShardIndex(id)]
	sh.mu.Lock()
	sess, ok := sh.sessions[id]
	if ok {
		delete(sh.sessions, id)
	}
	sh.mu.Unlock()
	if !ok {
		return
	}
	m.curBytes.Add(-sess.footprint)
	sess.Mu.Lock()
	sess.gone = true
	sess.Mu.Unlock()
}

// Range implements Store. fn runs without any shard lock held, so it may
// lock Session.Mu.
func (m *Memory) Range(fn func(*Session) bool) {
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		sessions := make([]*Session, 0, len(sh.sessions))
		for _, sess := range sh.sessions {
			sessions = append(sessions, sess)
		}
		sh.mu.RUnlock()
		for _, sess := range sessions {
			if !fn(sess) {
				return
			}
		}
	}
}

// Stats implements Store.
func (m *Memory) Stats() Stats {
	st := Stats{ResidentBytes: m.curBytes.Load()}
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		st.Shards[i].Sessions = len(sh.sessions)
		sh.mu.RUnlock()
		st.Shards[i].BudgetEvictions = sh.budgetEvictions.Load()
		st.Shards[i].ExplicitDeletes = sh.explicitDeletes.Load()
		st.Resident += st.Shards[i].Sessions
		st.BudgetEvictions += st.Shards[i].BudgetEvictions
		st.ExplicitDeletes += st.Shards[i].ExplicitDeletes
	}
	return st
}

// Close implements Store (the in-memory tier has nothing to flush).
func (m *Memory) Close() error { return nil }

// sessionCount returns the number of resident sessions.
func (m *Memory) sessionCount() int {
	total := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		total += len(sh.sessions)
		sh.mu.RUnlock()
	}
	return total
}

// enforceBudget evicts least-recently-used sessions until the store is back
// under the session-count and byte budgets. The session named keepID (the
// one that triggered enforcement) is never evicted, so a single oversized
// registration still lands.
func (m *Memory) enforceBudget(keepID string) {
	if m.maxSessions <= 0 && m.maxBytes <= 0 {
		return
	}
	for {
		over := (m.maxSessions > 0 && m.sessionCount() > m.maxSessions) ||
			(m.maxBytes > 0 && m.curBytes.Load() > m.maxBytes)
		if !over {
			return
		}
		victim, vShard := m.lruSession(keepID)
		if victim == nil {
			return // nothing evictable left
		}
		// Spill (if tiered) BEFORE removing the session from the resident
		// map, so a concurrent Get always finds it in at least one tier —
		// never a window where the session is in neither. Spill and the gone
		// flag share one Mu acquisition: an update serialized before the
		// flag flips is in the spill file, an update that loses the lock
		// race sees gone and re-fetches the restored copy — either way no
		// honored deletion is lost. Mutators that re-fetch while the session
		// is still briefly in the map just retry until the removal below
		// lands.
		victim.Mu.Lock()
		if victim.gone {
			victim.Mu.Unlock()
			continue // a concurrent evictor or deleter won
		}
		if m.onEvictLocked != nil {
			m.onEvictLocked(victim)
		}
		victim.gone = true
		victim.Mu.Unlock()
		vShard.mu.Lock()
		// Re-check under the lock: a concurrent deleter may have won.
		if _, still := vShard.sessions[victim.ID]; !still {
			vShard.mu.Unlock()
			continue
		}
		delete(vShard.sessions, victim.ID)
		vShard.mu.Unlock()
		vShard.budgetEvictions.Add(1)
		m.curBytes.Add(-victim.footprint)
	}
}

// lruSession scans every shard for the least recently used session other
// than keepID.
func (m *Memory) lruSession(keepID string) (*Session, *memShard) {
	var (
		victim *Session
		vShard *memShard
		oldest int64
	)
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		for _, sess := range sh.sessions {
			if sess.ID == keepID {
				continue
			}
			if lu := sess.lastUsed.Load(); victim == nil || lu < oldest {
				victim, vShard, oldest = sess, sh, lu
			}
		}
		sh.mu.RUnlock()
	}
	return victim, vShard
}
