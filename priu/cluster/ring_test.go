package cluster

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestRingOwnerDeterministicAcrossNodeOrder(t *testing.T) {
	a := NewRing(1, []string{"http://n1", "http://n2", "http://n3"})
	b := NewRing(7, []string{"http://n3", "http://n1", "http://n2", "http://n2"})
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("acme/sess-%d", i)
		oa, oka := a.Owner(key)
		ob, okb := b.Owner(key)
		if !oka || !okb || oa != ob {
			t.Fatalf("owner(%q) differs across construction order: %q vs %q", key, oa, ob)
		}
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	if _, ok := NewRing(1, nil).Owner("k"); ok {
		t.Fatal("empty ring must report no owner")
	}
	one := NewRing(1, []string{"http://solo"})
	if o, ok := one.Owner("k"); !ok || o != "http://solo" {
		t.Fatalf("single-node ring owner = %q, %v", o, ok)
	}
}

func TestRingSpreadsKeys(t *testing.T) {
	nodes := []string{"http://n1", "http://n2", "http://n3"}
	r := NewRing(1, nodes)
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		o, _ := r.Owner(fmt.Sprintf("sess-%d", i))
		counts[o]++
	}
	for _, n := range nodes {
		// A grossly uneven split (outside [1/6, 1/2] for 3 nodes) means the
		// hash is broken, not unlucky.
		if counts[n] < keys/6 || counts[n] > keys/2 {
			t.Fatalf("unbalanced placement: %v", counts)
		}
	}
}

func TestRingMinimalDisruptionOnNodeLoss(t *testing.T) {
	full := NewRing(1, []string{"http://n1", "http://n2", "http://n3"})
	degraded := NewRing(2, []string{"http://n1", "http://n3"})
	moved := 0
	const keys = 2000
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("sess-%d", i)
		before, _ := full.Owner(key)
		after, _ := degraded.Owner(key)
		if before != "http://n2" && before != after {
			// Rendezvous: removing n2 must only reassign n2's keys.
			t.Fatalf("key %q moved %q -> %q though its owner survived", key, before, after)
		}
		if before != after {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("losing a node moved no keys at all")
	}
	if moved > 2*keys/3 {
		t.Fatalf("losing one of three nodes moved %d/%d keys", moved, keys)
	}
}

func TestMembershipReportFailureAndRecovery(t *testing.T) {
	var mu sync.Mutex
	up := map[string]bool{"http://n1": true, "http://n2": true}
	probe := func(_ context.Context, addr string) bool {
		mu.Lock()
		defer mu.Unlock()
		return up[addr]
	}
	changes := make(chan *Ring, 8)
	m, err := New(Config{
		Self:     "http://n1",
		Peers:    []string{"http://n1", "http://n2"},
		Probe:    probe,
		OnChange: func(r *Ring) { changes <- r },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	if got := m.Alive(); len(got) != 2 {
		t.Fatalf("initial alive = %v, want both presumed up", got)
	}
	if v := m.Ring().Version(); v != 1 {
		t.Fatalf("initial ring version = %d, want 1", v)
	}

	// A request-path failure demotes immediately and fires the hook.
	m.ReportFailure("http://n2")
	select {
	case r := <-changes:
		if len(r.Nodes()) != 1 || r.Nodes()[0] != "http://n1" {
			t.Fatalf("post-failure ring = %v", r.Nodes())
		}
		if r.Version() != 2 {
			t.Fatalf("post-failure ring version = %d, want 2", r.Version())
		}
	case <-time.After(time.Second):
		t.Fatal("ReportFailure never fired OnChange")
	}
	if addr, self := m.Owner("anything"); !self || addr != "http://n1" {
		t.Fatalf("sole survivor should own every key, got %q self=%v", addr, self)
	}
	// Redundant reports change nothing.
	m.ReportFailure("http://n2")
	select {
	case r := <-changes:
		t.Fatalf("repeated failure report rebuilt the ring: %v", r.Nodes())
	case <-time.After(50 * time.Millisecond):
	}
	// Self is never demoted.
	m.ReportFailure("http://n1")
	if got := m.Alive(); len(got) != 1 || got[0] != "http://n1" {
		t.Fatalf("self was demoted: %v", got)
	}

	// A probe round revives the peer.
	m.probeOnce()
	select {
	case r := <-changes:
		if len(r.Nodes()) != 2 {
			t.Fatalf("post-recovery ring = %v", r.Nodes())
		}
	case <-time.After(time.Second):
		t.Fatal("probe recovery never fired OnChange")
	}
}

func TestMembershipAddsSelfAndRequiresIt(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New without Self should fail")
	}
	m, err := New(Config{Self: "http://n1", Peers: []string{"http://n2"}})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	peers := m.Peers()
	if len(peers) != 2 {
		t.Fatalf("peers = %v, want self appended", peers)
	}
	// Unknown nodes are ignored, not adopted.
	m.setAlive("http://stranger", true)
	if got := m.Alive(); len(got) != 2 {
		t.Fatalf("alive = %v after stranger report", got)
	}
}

func TestMembershipSetOnChange(t *testing.T) {
	m, err := New(Config{Self: "http://n1", Peers: []string{"http://n2"}})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	fired := make(chan uint64, 1)
	m.SetOnChange(func(r *Ring) { fired <- r.Version() })
	m.ReportFailure("http://n2")
	select {
	case v := <-fired:
		if v != 2 {
			t.Fatalf("hook saw ring v%d, want v2", v)
		}
	case <-time.After(time.Second):
		t.Fatal("SetOnChange hook never fired")
	}
}
