// Package cluster is the fleet layer of the PrIU deletion service: N
// priuserve replicas with a static member list, consistent-hash session
// placement, and liveness-probe membership. Placement uses rendezvous
// (highest-random-weight) hashing over session storage IDs, so every node
// computes the same owner from the same alive set with no coordination, and
// a membership change moves only the sessions whose highest-weight node
// changed — the minimal-disruption property that makes peer handoff cheap.
//
// Durability is the store's job, not this package's: replicas share a blob
// spill tier (store.WithBlobStore), so ownership is purely a routing
// convention — any node CAN serve any session from the shared tier; the ring
// just makes exactly one node do so at a time.
package cluster

import (
	"hash/fnv"
	"sort"
)

// Ring is one immutable placement epoch: a version counter and the set of
// alive nodes. Build a new Ring on every membership change (Membership does
// this); never mutate one in place.
type Ring struct {
	version uint64
	nodes   []string
}

// NewRing builds a placement epoch over the given nodes (copied, sorted,
// deduplicated).
func NewRing(version uint64, nodes []string) *Ring {
	sorted := make([]string, 0, len(nodes))
	seen := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	return &Ring{version: version, nodes: sorted}
}

// Version returns the ring's epoch counter.
func (r *Ring) Version() uint64 { return r.version }

// Nodes returns the alive node set (sorted; callers must not mutate).
func (r *Ring) Nodes() []string { return r.nodes }

// weight is the rendezvous score of (node, key): a 64-bit FNV-1a over both
// (separator so ("ab","c") and ("a","bc") never collide) pushed through a
// 64-bit avalanche finalizer. The finalizer is load-bearing: raw FNV-1a
// keeps bytes written early in the high bits, so with a common key suffix
// the node prefix alone would decide the comparison and one node would win
// nearly every key.
func weight(node, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(node))
	h.Write([]byte{0})
	h.Write([]byte(key))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Owner returns the node that owns key — the highest-random-weight member —
// and false when the ring is empty. Deterministic: every node with the same
// alive set computes the same owner, and removing a node reassigns only the
// keys it owned (each key's other weights are untouched).
func (r *Ring) Owner(key string) (string, bool) {
	var (
		best  string
		bestW uint64
		found bool
	)
	for _, n := range r.nodes {
		w := weight(n, key)
		// Ties (astronomically rare) break toward the lexicographically
		// smaller node, which the sorted iteration order provides.
		if !found || w > bestW {
			best, bestW, found = n, w, true
		}
	}
	return best, found
}
