package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Config configures a Membership.
type Config struct {
	// Self is this node's advertised base URL (e.g. "http://10.0.0.7:8080").
	// It must appear in Peers (it is added if missing) and is always alive.
	Self string
	// Peers is the static member list: every replica's advertised base URL,
	// identical on every node (gossip membership is a follow-on; see
	// ROADMAP).
	Peers []string
	// ProbeInterval is how often dead-looking peers are probed and alive
	// ones re-checked. Zero disables the background prober (the ring then
	// only changes through ReportFailure).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one liveness probe (default 2s).
	ProbeTimeout time.Duration
	// Probe overrides the liveness check (tests). The default issues
	// GET <addr>/healthz and treats any HTTP response as alive.
	Probe func(ctx context.Context, addr string) bool
	// OnChange, when set, is called (on the prober goroutine, or the
	// ReportFailure caller) with each new ring after the alive set changes —
	// the server hooks its peer handoff here.
	OnChange func(*Ring)
}

// Membership tracks which peers are alive and exposes the current placement
// Ring. Liveness is local observation (probes + reported request failures),
// not consensus: two nodes may briefly disagree on the alive set, which the
// service's single-hop forwarding guard tolerates.
type Membership struct {
	self          string
	peers         []string
	probeInterval time.Duration
	probeTimeout  time.Duration
	probe         func(ctx context.Context, addr string) bool
	onChange      func(*Ring)

	mu      sync.RWMutex
	alive   map[string]bool
	ring    *Ring
	version uint64

	probes        atomic.Int64
	probeFailures atomic.Int64
	ringChanges   atomic.Int64

	stop chan struct{}
	wg   sync.WaitGroup
}

// Counters is a snapshot of the membership telemetry counters, read by the
// observability registry at scrape time.
type Counters struct {
	Probes        int64 // liveness probes issued
	ProbeFailures int64 // probes that found the peer unreachable
	RingChanges   int64 // placement ring rebuilds (alive-set transitions)
}

// Counters returns cumulative membership telemetry.
func (m *Membership) Counters() Counters {
	return Counters{
		Probes:        m.probes.Load(),
		ProbeFailures: m.probeFailures.Load(),
		RingChanges:   m.ringChanges.Load(),
	}
}

// New builds a Membership from the static member list and starts the
// background prober (when ProbeInterval > 0). All peers start presumed
// alive; the first probe round demotes unreachable ones.
func New(cfg Config) (*Membership, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: Config.Self is required")
	}
	peers := append([]string(nil), cfg.Peers...)
	hasSelf := false
	for _, p := range peers {
		if p == cfg.Self {
			hasSelf = true
			break
		}
	}
	if !hasSelf {
		peers = append(peers, cfg.Self)
	}
	sort.Strings(peers)
	m := &Membership{
		self:          cfg.Self,
		peers:         peers,
		probeInterval: cfg.ProbeInterval,
		probeTimeout:  cfg.ProbeTimeout,
		probe:         cfg.Probe,
		onChange:      cfg.OnChange,
		alive:         make(map[string]bool, len(peers)),
		stop:          make(chan struct{}),
	}
	if m.probeTimeout <= 0 {
		m.probeTimeout = 2 * time.Second
	}
	if m.probe == nil {
		m.probe = httpProbe
	}
	for _, p := range peers {
		m.alive[p] = true
	}
	m.version = 1
	m.ring = NewRing(m.version, peers)
	if m.probeInterval > 0 {
		m.wg.Add(1)
		go m.probeLoop()
	}
	return m, nil
}

// httpProbe is the default liveness check: any HTTP response from /healthz
// counts (the fleet only needs "process up and serving", not "healthy by its
// own standards").
func httpProbe(ctx context.Context, addr string) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return true
}

// Self returns this node's advertised base URL.
func (m *Membership) Self() string { return m.self }

// SetOnChange installs (or replaces) the membership-change hook after
// construction — the server wires its peer handoff here, since the server is
// built after the membership it joins.
func (m *Membership) SetOnChange(fn func(*Ring)) {
	m.mu.Lock()
	m.onChange = fn
	m.mu.Unlock()
}

// Peers returns the configured member list (alive or not).
func (m *Membership) Peers() []string { return m.peers }

// Ring returns the current placement epoch.
func (m *Membership) Ring() *Ring {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.ring
}

// Alive returns the currently-alive members (sorted).
func (m *Membership) Alive() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.ring.Nodes()
}

// Owner returns the alive node owning key and whether that node is this one.
func (m *Membership) Owner(key string) (addr string, self bool) {
	r := m.Ring()
	owner, ok := r.Owner(key)
	if !ok {
		return m.self, true
	}
	return owner, owner == m.self
}

// ReportFailure marks a peer dead immediately — the request path calls this
// when a forward to the peer fails at the transport level, so failover does
// not wait for the next probe tick. The prober re-adds the peer when it
// answers again.
func (m *Membership) ReportFailure(addr string) {
	if addr == m.self {
		return
	}
	m.setAlive(addr, false)
}

// setAlive records one observation, rebuilding the ring (and firing
// OnChange) when it changes the alive set.
func (m *Membership) setAlive(addr string, up bool) {
	m.mu.Lock()
	cur, known := m.alive[addr]
	if !known || cur == up {
		m.mu.Unlock()
		return
	}
	m.alive[addr] = up
	m.ringChanges.Add(1)
	m.version++
	nodes := make([]string, 0, len(m.alive))
	for p, ok := range m.alive {
		if ok {
			nodes = append(nodes, p)
		}
	}
	ring := NewRing(m.version, nodes)
	m.ring = ring
	onChange := m.onChange
	m.mu.Unlock()
	if onChange != nil {
		onChange(ring)
	}
}

// probeLoop re-checks every peer each interval.
func (m *Membership) probeLoop() {
	defer m.wg.Done()
	tick := time.NewTicker(m.probeInterval)
	defer tick.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-tick.C:
			m.probeOnce()
		}
	}
}

// probeOnce probes every peer (except self) once, concurrently.
func (m *Membership) probeOnce() {
	var wg sync.WaitGroup
	for _, p := range m.peers {
		if p == m.self {
			continue
		}
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), m.probeTimeout)
			defer cancel()
			up := m.probe(ctx, addr)
			m.probes.Add(1)
			if !up {
				m.probeFailures.Add(1)
			}
			m.setAlive(addr, up)
		}(p)
	}
	wg.Wait()
}

// Close stops the background prober.
func (m *Membership) Close() {
	select {
	case <-m.stop:
	default:
		close(m.stop)
	}
	m.wg.Wait()
}
