package priu

import (
	"repro/internal/core"
)

// CacheMode selects how per-iteration provenance matrices are stored; see
// the Mode* constants.
type CacheMode = core.CacheMode

// Cache-mode values (the paper's full-matrix vs truncated-SVD trade-off).
const (
	// ModeAuto stores full m×m matrices when m ≤ B and SVD factors
	// otherwise.
	ModeAuto = core.ModeAuto
	// ModeFull always stores full matrices.
	ModeFull = core.ModeFull
	// ModeSVD always stores truncated SVD factors.
	ModeSVD = core.ModeSVD
)

// Config is the fully resolved training-and-capture configuration shared by
// every family. Train starts from defaults and applies Options; TrainConfig
// consumes a Config verbatim. Custom families registered with Register
// receive the resolved Config in their Capture/Retrain hooks.
type Config struct {
	// Eta is the constant learning rate η.
	Eta float64
	// Lambda is the L2 regularization rate λ.
	Lambda float64
	// BatchSize is the mini-batch size B.
	BatchSize int
	// Iterations is the iteration count τ.
	Iterations int
	// Seed drives the deterministic batch schedule.
	Seed int64
	// Mode selects the provenance-cache representation.
	Mode CacheMode
	// Epsilon is the SVD coverage threshold ε (0 = the paper's 0.01).
	Epsilon float64
	// EarlyTermination is PrIU-opt's ts/τ fraction (0 = the paper's 0.7).
	EarlyTermination float64
	// LinearizerCells overrides the sigmoid interpolation grid resolution
	// for the logistic families (0 = the paper's 10⁶-cell default).
	LinearizerCells int
	// Workers resizes the shared kernel worker pool before capture
	// (0 = leave unchanged).
	Workers int
}

// defaultConfig returns the package defaults for a training set: a
// conservative hyperparameter profile that converges on the synthetic
// workloads, with the batch size clamped to the sample count.
func defaultConfig(ds TrainingSet) Config {
	b := 256
	if n := ds.N(); b > n {
		b = n
	}
	return Config{
		Eta:        1e-2,
		Lambda:     1e-2,
		BatchSize:  b,
		Iterations: 200,
		Seed:       1,
	}
}

// Option mutates a Config; build them with the With* constructors.
type Option func(*Config)

// WithEta sets the learning rate η.
func WithEta(eta float64) Option { return func(c *Config) { c.Eta = eta } }

// WithLambda sets the L2 regularization rate λ.
func WithLambda(lambda float64) Option { return func(c *Config) { c.Lambda = lambda } }

// WithBatchSize sets the mini-batch size B.
func WithBatchSize(b int) Option { return func(c *Config) { c.BatchSize = b } }

// WithIterations sets the iteration count τ.
func WithIterations(t int) Option { return func(c *Config) { c.Iterations = t } }

// WithSeed sets the batch-schedule seed.
func WithSeed(seed int64) Option { return func(c *Config) { c.Seed = seed } }

// WithSVD forces truncated-SVD provenance caches with the given coverage
// threshold ε (Theorems 6/8): the stored rank is the smallest whose
// singular-value mass reaches (1−ε) of the total. ε = 0 keeps the paper's
// default of 0.01.
func WithSVD(epsilon float64) Option {
	return func(c *Config) {
		c.Mode = ModeSVD
		c.Epsilon = epsilon
	}
}

// WithFullCaches forces full m×m provenance matrices.
func WithFullCaches() Option { return func(c *Config) { c.Mode = ModeFull } }

// WithEarlyTermination sets PrIU-opt's early-termination fraction ts/τ
// (Sec 5.4; 0 keeps the paper's 0.7).
func WithEarlyTermination(frac float64) Option {
	return func(c *Config) { c.EarlyTermination = frac }
}

// WithLinearizerCells sets the sigmoid interpolation grid resolution used by
// the logistic families (0 keeps the paper's 10⁶-cell default; smaller grids
// trade Theorem 4's O((Δx)²) error for faster capture).
func WithLinearizerCells(cells int) Option {
	return func(c *Config) { c.LinearizerCells = cells }
}

// WithWorkers resizes the shared kernel worker pool at Train time
// (0 = leave unchanged; the pool is global, like GOMAXPROCS).
func WithWorkers(n int) Option { return func(c *Config) { c.Workers = n } }
