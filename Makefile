GO ?= go
SHA ?= $(shell git rev-parse --short HEAD 2>/dev/null || echo local)

# Per-target fuzzing budget for fuzz-smoke (short on purpose: CI catches
# crashes and regressions against the committed corpora, long runs happen
# locally with FUZZTIME=5m etc.).
FUZZTIME ?= 10s

# Coverage watermarks (statement %). Set just under the measured coverage of
# the storage and service layers; drop below = deleted tests or significant
# untested code. Refresh deliberately when the floors move up.
STORE_COVER_MIN ?= 85
SERVICE_COVER_MIN ?= 81

.PHONY: all build test race bench bench-guard bench-baseline kernel-bench spill-smoke auth-smoke whatif-smoke fleet-smoke obs-smoke fuzz-smoke cover fmt fmt-check vet ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Benchmark smoke: one iteration of every benchmark, no tests.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Bench smoke + regression gate: archives the speedup metrics as
# BENCH_<sha>.json and fails if any metric regresses >20% vs the committed
# baseline (cmd/benchguard). The redirect-then-cat shape (not a tee pipe)
# keeps a panicking benchmark failing the target.
bench-guard:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./... > bench.out || (cat bench.out; exit 1)
	cat bench.out
	$(GO) run ./cmd/benchguard -in bench.out -json BENCH_$(SHA).json \
		-baseline BENCH_BASELINE.json -commit $(SHA)

# Kernel-speed gate: just the blocked/parallel compute-core benchmarks
# (GEMM, Gram, Jacobi eigensolver, capture) against the committed baseline.
# GEMM/Gram pin one worker and compare blocked vs scalar kernels, so the
# ≥1.5× floor holds even on a 1-core runner. Finishes in well under a minute.
kernel-bench:
	$(GO) test -bench='GEMMBlocked|GramBlocked|EigenSym|CaptureParallel' \
		-benchtime=2x -run='^$$' -timeout=300s . > kernel_bench.out || (cat kernel_bench.out; exit 1)
	cat kernel_bench.out
	$(GO) run ./cmd/benchguard -in kernel_bench.out \
		-baseline BENCH_BASELINE.json -commit $(SHA)

# Refresh the committed baseline from a fresh bench run on this machine.
bench-baseline:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./... > bench.out || (cat bench.out; exit 1)
	cat bench.out
	$(GO) run ./cmd/benchguard -in bench.out -json BENCH_BASELINE.json -commit $(SHA)

# Spill smoke: the tiered-store durability suite against a tmpdir store-dir —
# kill/restart round trip (all seven families, bitwise-identical models,
# deletion logs intact), the evict→touch→restore races, and the LSM chaos
# suite: kill/restart through a full base→delta→compaction cycle (bitwise-
# identical restores), torn delta segments, mid-compaction crashes,
# tombstone persistence across reboot, and the off-lock publish/stale-cut
# generation guards. Under -race.
spill-smoke:
	$(GO) test -race -count=1 \
		-run 'TestCrashRestartDurability|TestEvictTouchRestoreUnderLoad|TestTiered|TestChaos|RunsOffSessionLock|TestSyncSpillFallbackUsesCurrentGeneration|TestDeltaPublishDiscardedAfterDeleteAndReput|TestStorePropertyOracle' \
		./priu/service ./priu/store

# Fuzz smoke: each native fuzz target runs its committed seed corpus plus a
# short random budget. One `go test -fuzz` invocation per target (the flag
# must match exactly one fuzz function per package).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzReadSessionSnapshot$$' -fuzztime $(FUZZTIME) ./priu
	$(GO) test -run '^$$' -fuzz '^FuzzSpillEnvelope$$' -fuzztime $(FUZZTIME) ./priu/store
	$(GO) test -run '^$$' -fuzz '^FuzzDeltaSegment$$' -fuzztime $(FUZZTIME) ./priu/store
	$(GO) test -run '^$$' -fuzz '^FuzzCSRUpload$$' -fuzztime $(FUZZTIME) ./priu/service

# Coverage gate: the storage and service layers must stay above their
# watermarks (cmd/covergate computes statement coverage from the profiles).
cover:
	$(GO) test -count=1 -coverprofile=cover_store.out ./priu/store
	$(GO) test -count=1 -coverprofile=cover_service.out ./priu/service
	$(GO) run ./cmd/covergate -profile cover_store.out -name priu/store -min $(STORE_COVER_MIN)
	$(GO) run ./cmd/covergate -profile cover_service.out -name priu/service -min $(SERVICE_COVER_MIN)

# Auth smoke: builds the real priuserve/priutrain/examples-client binaries,
# starts an authenticated server (-auth required, tenant key file) and drives
# it through priu/client — 401 on missing/unknown keys, 200 train→stream→
# snapshot round trips from both CLIs, 429 on tenant quotas and stream rate
# limits (with Retry-After resume), and a SIGHUP key rotation.
auth-smoke:
	$(GO) test -race -count=1 -run 'TestAuthSmoke' ./priu/client

# What-if smoke: builds and starts the real priuserve, previews overlapping
# candidate deletion sets through the SDK (prefix-tree cache hits > 0), then
# commits one candidate on a snapshot clone and checks the committed digest is
# bitwise identical to the what-if prediction — live session untouched — and
# runs priutrain's -whatif preview-then-commit mode against the same server.
whatif-smoke:
	$(GO) test -race -count=1 -run 'TestWhatIfSmoke' ./priu/client

# Fleet smoke: builds the real priuserve/priublob binaries, starts one blob
# server plus three replicas wired into a fleet (-node/-peers/-blob), creates
# sessions and streams deletions through non-owner nodes (redirects/proxying),
# SIGKILLs one replica, and checks every session — including the dead node's —
# is served by the survivors with bitwise-identical parameters, acknowledged
# deletions stay deleted, and the degraded fleet still accepts new sessions.
fleet-smoke:
	$(GO) test -race -count=1 -run 'TestFleetSmoke' ./priu/client

# Observability smoke: builds the real priuserve, boots it with the operator
# listener (-admin-addr) and a 1ms slow-op threshold, drives a train/delete/
# what-if workload and asserts the /metrics scrape has every family present
# and monotone, a request trace is fetchable by ID, pprof answers, the
# slow-op log fires, and none of the admin surface leaks onto the tenant port.
obs-smoke:
	$(GO) test -race -count=1 -run 'TestObsSmoke' ./priu/client

fmt:
	gofmt -w .

# Fails (with the offending files listed) if anything is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Everything CI runs, in one target, for local parity.
ci: build vet fmt-check race spill-smoke auth-smoke whatif-smoke fleet-smoke obs-smoke fuzz-smoke cover bench
