GO ?= go

.PHONY: all build test race bench fmt fmt-check vet ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Benchmark smoke: one iteration of every benchmark, no tests.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

fmt:
	gofmt -w .

# Fails (with the offending files listed) if anything is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Everything CI runs, in one target, for local parity.
ci: build vet fmt-check race bench
