package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/mat"
	"repro/internal/sparse"
)

// Schema records the shape of one of the paper's datasets (Table 1). The
// generators below synthesize data matching the schema at a configurable
// sample count so experiments run at laptop scale; PaperN records the
// original size for documentation and scaling notes in EXPERIMENTS.md.
type Schema struct {
	Name     string
	Task     Task
	Features int
	Classes  int // 0 for regression
	PaperN   int
	Sparse   bool
}

// PaperSchemas lists the six datasets of Table 1 in the paper's order.
var PaperSchemas = []Schema{
	{Name: "SGEMM", Task: Regression, Features: 18, PaperN: 241_600},
	{Name: "Cov", Task: MultiClassification, Features: 54, Classes: 7, PaperN: 581_012},
	{Name: "HIGGS", Task: BinaryClassification, Features: 28, Classes: 2, PaperN: 11_000_000},
	{Name: "RCV1", Task: BinaryClassification, Features: 47_236, Classes: 2, PaperN: 23_149, Sparse: true},
	{Name: "Heartbeat", Task: MultiClassification, Features: 188, Classes: 7, PaperN: 87_553},
	{Name: "cifar10", Task: MultiClassification, Features: 3072, Classes: 10, PaperN: 50_000},
}

// SchemaByName returns the paper schema with the given name.
func SchemaByName(name string) (Schema, error) {
	for _, s := range PaperSchemas {
		if s.Name == name {
			return s, nil
		}
	}
	return Schema{}, fmt.Errorf("dataset: unknown schema %q", name)
}

// GenerateRegression synthesizes an SGEMM-like regression dataset: features
// drawn i.i.d. N(0,1), labels from a fixed ground-truth linear model plus
// Gaussian noise. Deterministic for a given seed.
func GenerateRegression(name string, n, m int, noise float64, seed int64) (*Dataset, error) {
	if n < 2 || m < 1 {
		return nil, fmt.Errorf("dataset: GenerateRegression n=%d m=%d", n, m)
	}
	rng := rand.New(rand.NewSource(seed))
	truth := make([]float64, m)
	for j := range truth {
		truth[j] = rng.NormFloat64()
	}
	x := mat.NewDense(n, m)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		y[i] = mat.Dot(row, truth) + noise*rng.NormFloat64()
	}
	return &Dataset{Name: name, Task: Regression, X: x, Y: y}, nil
}

// GenerateBinary synthesizes a HIGGS-like binary dataset: two Gaussian
// clusters at ±mu along a random direction, labels in {-1, +1}. The margin
// controls class separability (HIGGS is famously hard; use a small margin).
func GenerateBinary(name string, n, m int, margin float64, seed int64) (*Dataset, error) {
	if n < 2 || m < 1 {
		return nil, fmt.Errorf("dataset: GenerateBinary n=%d m=%d", n, m)
	}
	rng := rand.New(rand.NewSource(seed))
	dir := make([]float64, m)
	for j := range dir {
		dir[j] = rng.NormFloat64()
	}
	nrm := mat.Norm2(dir)
	for j := range dir {
		dir[j] /= nrm
	}
	x := mat.NewDense(n, m)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		label := 1.0
		if rng.Intn(2) == 0 {
			label = -1
		}
		row := x.Row(i)
		for j := range row {
			row[j] = rng.NormFloat64() + label*margin*dir[j]
		}
		y[i] = label
	}
	return &Dataset{Name: name, Task: BinaryClassification, Classes: 2, X: x, Y: y}, nil
}

// GenerateMulticlass synthesizes a Cov/Heartbeat/cifar10-like multiclass
// dataset: q Gaussian clusters with random centers of norm `margin`.
//
// Feature noise is drawn from a low-dimensional latent factor model
// (x = center + L·z + σ·ε with latent dimension ≈ min(m/4, 32)) rather than
// isotropically: real sensor/image features are strongly correlated, which
// is what gives per-batch Gram matrices the fast-decaying spectra PrIU's SVD
// truncation exploits (Sec 5.1). Isotropic noise would make every batch
// effectively full-rank and hide the phenomenon the paper measures.
func GenerateMulticlass(name string, n, m, q int, margin float64, seed int64) (*Dataset, error) {
	if n < q || m < 1 || q < 2 {
		return nil, fmt.Errorf("dataset: GenerateMulticlass n=%d m=%d q=%d", n, m, q)
	}
	rng := rand.New(rand.NewSource(seed))
	centers := mat.NewDense(q, m)
	for k := 0; k < q; k++ {
		row := centers.Row(k)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		nrm := mat.Norm2(row)
		for j := range row {
			row[j] = row[j] / nrm * margin
		}
	}
	latent := m / 4
	if latent > 32 {
		latent = 32
	}
	if latent < 1 {
		latent = 1
	}
	loadings := mat.NewDense(m, latent)
	scale := 1 / math.Sqrt(float64(latent))
	for i := range loadings.Data() {
		loadings.Data()[i] = rng.NormFloat64() * scale
	}
	const residual = 0.3
	x := mat.NewDense(n, m)
	y := make([]float64, n)
	z := make([]float64, latent)
	for i := 0; i < n; i++ {
		k := rng.Intn(q)
		c := centers.Row(k)
		for j := range z {
			z[j] = rng.NormFloat64()
		}
		row := x.Row(i)
		loadings.MulVecInto(row, z)
		for j := range row {
			row[j] += c[j] + residual*rng.NormFloat64()
		}
		y[i] = float64(k)
	}
	return &Dataset{Name: name, Task: MultiClassification, Classes: q, X: x, Y: y}, nil
}

// GenerateSparseBinary synthesizes an RCV1-like sparse binary dataset in CSR
// form: each row has ~nnzPerRow non-zeros at random columns, with a subset of
// "signal" columns whose sign correlates with the label. Density matches
// RCV1's ~0.1–0.2%.
func GenerateSparseBinary(name string, n, m, nnzPerRow int, seed int64) (*SparseDataset, error) {
	if n < 2 || m < 1 || nnzPerRow < 1 || nnzPerRow > m {
		return nil, fmt.Errorf("dataset: GenerateSparseBinary n=%d m=%d nnz=%d", n, m, nnzPerRow)
	}
	rng := rand.New(rand.NewSource(seed))
	nSignal := nnzPerRow / 2
	if nSignal < 1 {
		nSignal = 1
	}
	entries := make([]sparse.Triplet, 0, n*nnzPerRow)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		label := 1.0
		if rng.Intn(2) == 0 {
			label = -1
		}
		y[i] = label
		seen := make(map[int]bool, nnzPerRow)
		for k := 0; k < nnzPerRow; k++ {
			var col int
			for {
				col = rng.Intn(m)
				if !seen[col] {
					seen[col] = true
					break
				}
			}
			v := rng.NormFloat64()
			// Signal columns: the first nSignal draws lean toward the label.
			if k < nSignal {
				v = label * (0.5 + rng.Float64())
			}
			entries = append(entries, sparse.Triplet{Row: i, Col: col, Val: v})
		}
	}
	x, err := sparse.NewCSR(n, m, entries)
	if err != nil {
		return nil, err
	}
	return &SparseDataset{Name: name, Task: BinaryClassification, Classes: 2, X: x, Y: y}, nil
}

// ExtendFeatures implements the paper's SGEMM (extended) construction
// literally: append `extra` i.i.d. N(0,1) random features to every sample
// (the paper adds 1500). Random features make every mini-batch Gram matrix
// effectively full rank, which is exactly why plain PrIU gains little in
// this regime and PrIU-opt's eigen path is needed (Fig 1b's message).
func (d *Dataset) ExtendFeatures(extra int, seed int64) (*Dataset, error) {
	if extra < 1 {
		return nil, fmt.Errorf("dataset: ExtendFeatures extra=%d", extra)
	}
	rng := rand.New(rand.NewSource(seed))
	n, m := d.N(), d.M()
	x := mat.NewDense(n, m+extra)
	for i := 0; i < n; i++ {
		copy(x.Row(i)[:m], d.X.Row(i))
		row := x.Row(i)[m:]
		for j := range row {
			row[j] = rng.NormFloat64()
		}
	}
	return &Dataset{
		Name:    d.Name + " (extended)",
		Task:    d.Task,
		Classes: d.Classes,
		X:       x,
		Y:       mat.CloneVec(d.Y),
	}, nil
}

// GenerateFromSchema synthesizes a dataset matching a paper schema at the
// requested sample count. Sparse schemas must use GenerateSparseFromSchema.
func GenerateFromSchema(s Schema, n int, seed int64) (*Dataset, error) {
	if s.Sparse {
		return nil, fmt.Errorf("dataset: schema %q is sparse; use GenerateSparseFromSchema", s.Name)
	}
	switch s.Task {
	case Regression:
		return GenerateRegression(s.Name, n, s.Features, 0.1, seed)
	case BinaryClassification:
		return GenerateBinary(s.Name, n, s.Features, 0.8, seed)
	case MultiClassification:
		return GenerateMulticlass(s.Name, n, s.Features, s.Classes, 2.0, seed)
	default:
		return nil, fmt.Errorf("dataset: unknown task %v", s.Task)
	}
}

// GenerateSparseFromSchema synthesizes a sparse dataset for a sparse schema.
func GenerateSparseFromSchema(s Schema, n, nnzPerRow int, seed int64) (*SparseDataset, error) {
	if !s.Sparse {
		return nil, fmt.Errorf("dataset: schema %q is dense", s.Name)
	}
	return GenerateSparseBinary(s.Name, n, s.Features, nnzPerRow, seed)
}
