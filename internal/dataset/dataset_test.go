package dataset

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

func mustRegression(t *testing.T, n, m int, seed int64) *Dataset {
	t.Helper()
	d, err := GenerateRegression("test", n, m, 0.1, seed)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGenerateRegressionShapeAndDeterminism(t *testing.T) {
	d1 := mustRegression(t, 100, 5, 7)
	d2 := mustRegression(t, 100, 5, 7)
	if d1.N() != 100 || d1.M() != 5 {
		t.Fatalf("shape %dx%d", d1.N(), d1.M())
	}
	if !d1.X.Equal(d2.X, 0) {
		t.Fatal("same seed produced different features")
	}
	for i := range d1.Y {
		if d1.Y[i] != d2.Y[i] {
			t.Fatal("same seed produced different labels")
		}
	}
	d3 := mustRegression(t, 100, 5, 8)
	if d1.X.Equal(d3.X, 0) {
		t.Fatal("different seeds produced identical features")
	}
	if err := d1.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateRegressionLearnable(t *testing.T) {
	// Labels must be driven by the features: least squares on the generated
	// data should explain most of the variance.
	d := mustRegression(t, 500, 4, 1)
	g := d.X.Gram()
	for i := 0; i < 4; i++ {
		g.Add(i, i, 1e-8)
	}
	ch, err := mat.NewCholesky(g)
	if err != nil {
		t.Fatal(err)
	}
	w := ch.Solve(d.X.MulVecT(d.Y))
	pred := d.X.MulVec(w)
	var ssRes, ssTot, mean float64
	for _, y := range d.Y {
		mean += y
	}
	mean /= float64(len(d.Y))
	for i, y := range d.Y {
		ssRes += (y - pred[i]) * (y - pred[i])
		ssTot += (y - mean) * (y - mean)
	}
	r2 := 1 - ssRes/ssTot
	if r2 < 0.9 {
		t.Fatalf("R² = %v; generated regression data not learnable", r2)
	}
}

func TestGenerateBinaryLabelsAndSeparability(t *testing.T) {
	d, err := GenerateBinary("b", 400, 6, 1.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	var pos int
	for _, y := range d.Y {
		if y == 1 {
			pos++
		}
	}
	if pos < 100 || pos > 300 {
		t.Fatalf("class balance off: %d/400 positive", pos)
	}
	// The class-mean difference should be substantial (separable clusters).
	meanDiff := make([]float64, d.M())
	var nPos, nNeg float64
	for i := 0; i < d.N(); i++ {
		row := d.X.Row(i)
		if d.Y[i] == 1 {
			nPos++
			for j, v := range row {
				meanDiff[j] += v
			}
		} else {
			nNeg++
			for j, v := range row {
				meanDiff[j] -= v
			}
		}
	}
	for j := range meanDiff {
		meanDiff[j] = meanDiff[j] / nPos
	}
	if mat.Norm2(meanDiff) < 1 {
		t.Fatalf("class means not separated: ‖Δμ‖ = %v", mat.Norm2(meanDiff))
	}
}

func TestGenerateMulticlassValid(t *testing.T) {
	d, err := GenerateMulticlass("m", 300, 10, 7, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, y := range d.Y {
		seen[int(y)] = true
	}
	if len(seen) < 5 {
		t.Fatalf("only %d of 7 classes generated", len(seen))
	}
}

func TestGenerateSparseBinary(t *testing.T) {
	d, err := GenerateSparseBinary("s", 50, 1000, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 50 || d.M() != 1000 {
		t.Fatalf("shape %dx%d", d.N(), d.M())
	}
	if den := d.X.Density(); den > 0.02 {
		t.Fatalf("density %v too high", den)
	}
	for _, y := range d.Y {
		if y != 1 && y != -1 {
			t.Fatalf("bad sparse label %v", y)
		}
	}
}

func TestSplitSizesAndDisjoint(t *testing.T) {
	d := mustRegression(t, 200, 3, 5)
	train, valid, err := d.Split(0.9, 11)
	if err != nil {
		t.Fatal(err)
	}
	if train.N() != 180 || valid.N() != 20 {
		t.Fatalf("split sizes %d/%d", train.N(), valid.N())
	}
	// Same seed reproduces the split.
	train2, _, err := d.Split(0.9, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !train.X.Equal(train2.X, 0) {
		t.Fatal("split not deterministic")
	}
	if _, _, err := d.Split(1.5, 1); err == nil {
		t.Fatal("expected error for bad frac")
	}
}

func TestConcatExtended(t *testing.T) {
	d := mustRegression(t, 30, 4, 6)
	ext, err := d.Concat(3)
	if err != nil {
		t.Fatal(err)
	}
	if ext.N() != 90 || ext.M() != 4 {
		t.Fatalf("Concat shape %dx%d", ext.N(), ext.M())
	}
	for c := 0; c < 3; c++ {
		for i := 0; i < 30; i++ {
			if ext.Y[c*30+i] != d.Y[i] {
				t.Fatal("Concat labels wrong")
			}
		}
	}
	if _, err := d.Concat(0); err == nil {
		t.Fatal("expected error for zero copies")
	}
}

func TestRemove(t *testing.T) {
	d := mustRegression(t, 10, 2, 9)
	r, err := d.Remove([]int{0, 9, 5})
	if err != nil {
		t.Fatal(err)
	}
	if r.N() != 7 {
		t.Fatalf("Remove left %d rows", r.N())
	}
	// Surviving row order is preserved.
	wantRows := []int{1, 2, 3, 4, 6, 7, 8}
	for newI, i := range wantRows {
		if r.Y[newI] != d.Y[i] {
			t.Fatalf("row %d label mismatch", newI)
		}
	}
	if _, err := d.Remove([]int{99}); err == nil {
		t.Fatal("expected out-of-range error")
	}
	all := make([]int, 10)
	for i := range all {
		all[i] = i
	}
	if _, err := d.Remove(all); err == nil {
		t.Fatal("expected error removing everything")
	}
}

func TestInjectDirty(t *testing.T) {
	d := mustRegression(t, 50, 3, 10)
	dirty, ids, err := d.InjectDirty(5, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 5 {
		t.Fatalf("dirty ids %d", len(ids))
	}
	flagged := map[int]bool{}
	for _, i := range ids {
		flagged[i] = true
	}
	for i := 0; i < 50; i++ {
		same := true
		for j := 0; j < 3; j++ {
			if dirty.X.At(i, j) != d.X.At(i, j) {
				same = false
			}
		}
		if flagged[i] && same {
			t.Fatalf("row %d flagged dirty but unchanged", i)
		}
		if !flagged[i] && !same {
			t.Fatalf("row %d changed but not flagged", i)
		}
	}
	// Regression labels are rescaled too.
	if dirty.Y[ids[0]] != d.Y[ids[0]]*10 {
		t.Fatal("dirty regression label not rescaled")
	}
	if _, _, err := d.InjectDirty(50, 2, 1); err == nil {
		t.Fatal("expected error for count = n")
	}
}

func TestStandardize(t *testing.T) {
	d := mustRegression(t, 300, 4, 13)
	means, stds := d.Standardize()
	if len(means) != 4 || len(stds) != 4 {
		t.Fatal("bad standardization shapes")
	}
	for j := 0; j < 4; j++ {
		var mean, varr float64
		for i := 0; i < d.N(); i++ {
			mean += d.X.At(i, j)
		}
		mean /= float64(d.N())
		for i := 0; i < d.N(); i++ {
			dv := d.X.At(i, j) - mean
			varr += dv * dv
		}
		varr /= float64(d.N())
		if math.Abs(mean) > 1e-10 || math.Abs(varr-1) > 1e-8 {
			t.Fatalf("col %d: mean %v var %v after Standardize", j, mean, varr)
		}
	}
	// Apply to a clone reproduces the transform.
	d2 := mustRegression(t, 300, 4, 13)
	if err := d2.ApplyStandardization(means, stds); err != nil {
		t.Fatal(err)
	}
	if !d2.X.Equal(d.X, 1e-12) {
		t.Fatal("ApplyStandardization mismatch")
	}
	if err := d2.ApplyStandardization(means[:2], stds[:2]); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}

func TestSchemasMatchPaperTable1(t *testing.T) {
	want := map[string]struct {
		m, q   int
		sparse bool
	}{
		"SGEMM":     {18, 0, false},
		"Cov":       {54, 7, false},
		"HIGGS":     {28, 2, false},
		"RCV1":      {47236, 2, true},
		"Heartbeat": {188, 7, false},
		"cifar10":   {3072, 10, false},
	}
	if len(PaperSchemas) != len(want) {
		t.Fatalf("schema count %d", len(PaperSchemas))
	}
	for name, w := range want {
		s, err := SchemaByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if s.Features != w.m || s.Classes != w.q || s.Sparse != w.sparse {
			t.Fatalf("schema %s = %+v, want %+v", name, s, w)
		}
	}
	if _, err := SchemaByName("nope"); err == nil {
		t.Fatal("expected unknown-schema error")
	}
}

func TestGenerateFromSchema(t *testing.T) {
	for _, s := range PaperSchemas {
		if s.Sparse {
			sp, err := GenerateSparseFromSchema(s, 20, 5, 1)
			if err != nil {
				t.Fatalf("%s: %v", s.Name, err)
			}
			if sp.M() != s.Features {
				t.Fatalf("%s sparse features %d", s.Name, sp.M())
			}
			if _, err := GenerateFromSchema(s, 20, 1); err == nil {
				t.Fatalf("%s: dense generation should fail for sparse schema", s.Name)
			}
			continue
		}
		var n int
		if s.Features > 1000 {
			n = 30 // keep cifar10-scale generation fast in tests
		} else {
			n = 100
		}
		d, err := GenerateFromSchema(s, n, 1)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if d.M() != s.Features {
			t.Fatalf("%s features %d, want %d", s.Name, d.M(), s.Features)
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if _, err := GenerateSparseFromSchema(s, 20, 5, 1); err == nil {
			t.Fatalf("%s: sparse generation should fail for dense schema", s.Name)
		}
	}
}

func TestExtendFeatures(t *testing.T) {
	d := mustRegression(t, 40, 18, 3)
	ext, err := d.ExtendFeatures(10, 99)
	if err != nil {
		t.Fatal(err)
	}
	if ext.M() != 28 || ext.N() != 40 {
		t.Fatalf("ExtendFeatures shape %dx%d", ext.N(), ext.M())
	}
	// Original features preserved.
	for i := 0; i < 40; i++ {
		for j := 0; j < 18; j++ {
			if ext.X.At(i, j) != d.X.At(i, j) {
				t.Fatal("original features modified")
			}
		}
	}
	if _, err := d.ExtendFeatures(0, 1); err == nil {
		t.Fatal("expected error for extra=0")
	}
}

func TestValidateCatchesBadLabels(t *testing.T) {
	d := &Dataset{Name: "bad", Task: BinaryClassification, Classes: 2,
		X: mat.NewDense(2, 2), Y: []float64{1, 0.5}}
	if err := d.Validate(); err == nil {
		t.Fatal("expected binary-label error")
	}
	d2 := &Dataset{Name: "bad2", Task: MultiClassification, Classes: 3,
		X: mat.NewDense(2, 2), Y: []float64{0, 3}}
	if err := d2.Validate(); err == nil {
		t.Fatal("expected multiclass-label error")
	}
	d3 := &Dataset{Name: "bad3", Task: Regression, X: mat.NewDense(2, 2), Y: []float64{1}}
	if err := d3.Validate(); err == nil {
		t.Fatal("expected length error")
	}
}

func TestRemovePlusConcatProperty(t *testing.T) {
	// Removing k arbitrary valid rows always leaves n-k rows.
	f := func(seed int64) bool {
		n := 20
		d := &Dataset{Name: "p", Task: Regression, X: mat.NewDense(n, 2), Y: make([]float64, n)}
		k := int(uint64(seed)%uint64(n-1)) + 1
		rm := make([]int, k)
		for i := range rm {
			rm[i] = (i * 7) % n
		}
		r, err := d.Remove(rm)
		if err != nil {
			return false
		}
		uniq := map[int]bool{}
		for _, i := range rm {
			uniq[i] = true
		}
		return r.N() == n-len(uniq)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTaskString(t *testing.T) {
	if Regression.String() != "regression" || BinaryClassification.String() != "binary" ||
		MultiClassification.String() != "multiclass" || Task(99).String() == "" {
		t.Fatal("Task.String broken")
	}
}
