// Package dataset provides the training-data layer of the reproduction:
// dense and sparse datasets, deterministic synthetic generators matching the
// schemas of the six datasets in the paper's Table 1, dirty-sample injection
// (the cleaning scenario of Sec 6.2), train/validation splits, and dataset
// concatenation (the "extended" variants used for the repeated-deletion
// experiments).
//
// The original UCI/Kaggle corpora are not available offline, so each
// generator synthesizes data with the same shape — feature count, class
// count, dense/sparse layout, continuous-vs-categorical label — at a
// configurable scale. Update-time behaviour of PrIU and its baselines
// depends on these shape parameters, not on the raw values, so the
// substitution preserves the phenomena the experiments measure (see
// DESIGN.md, "Substitutions").
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/mat"
	"repro/internal/sparse"
)

// Task distinguishes regression from classification datasets.
type Task int

const (
	// Regression marks continuous labels (linear regression).
	Regression Task = iota
	// BinaryClassification marks labels in {-1, +1}.
	BinaryClassification
	// MultiClassification marks labels in {0..Classes-1}.
	MultiClassification
)

// String returns the task name.
func (t Task) String() string {
	switch t {
	case Regression:
		return "regression"
	case BinaryClassification:
		return "binary"
	case MultiClassification:
		return "multiclass"
	default:
		return fmt.Sprintf("Task(%d)", int(t))
	}
}

// Dataset is a dense training set: an n×m feature matrix with an n-vector of
// labels. Classification labels are stored as float64 (-1/+1 for binary,
// class index for multiclass).
type Dataset struct {
	Name    string
	Task    Task
	Classes int // number of classes for MultiClassification, 2 for binary
	X       *mat.Dense
	Y       []float64
}

// N returns the number of samples.
func (d *Dataset) N() int { return d.X.Rows() }

// M returns the number of features.
func (d *Dataset) M() int { return d.X.Cols() }

// Clone deep-copies the dataset.
func (d *Dataset) Clone() *Dataset {
	return &Dataset{
		Name:    d.Name,
		Task:    d.Task,
		Classes: d.Classes,
		X:       d.X.Clone(),
		Y:       mat.CloneVec(d.Y),
	}
}

// Validate checks internal consistency.
func (d *Dataset) Validate() error {
	if d.X == nil {
		return fmt.Errorf("dataset %q: nil feature matrix", d.Name)
	}
	if len(d.Y) != d.X.Rows() {
		return fmt.Errorf("dataset %q: %d labels for %d rows", d.Name, len(d.Y), d.X.Rows())
	}
	switch d.Task {
	case BinaryClassification:
		for i, y := range d.Y {
			if y != 1 && y != -1 {
				return fmt.Errorf("dataset %q: binary label %v at row %d", d.Name, y, i)
			}
		}
	case MultiClassification:
		if d.Classes < 2 {
			return fmt.Errorf("dataset %q: multiclass with %d classes", d.Name, d.Classes)
		}
		for i, y := range d.Y {
			k := int(y)
			if float64(k) != y || k < 0 || k >= d.Classes {
				return fmt.Errorf("dataset %q: class label %v at row %d", d.Name, y, i)
			}
		}
	}
	return nil
}

// Split partitions the dataset into train (first trainFrac of a deterministic
// shuffle) and validation subsets, mirroring the paper's 90/10 protocol.
func (d *Dataset) Split(trainFrac float64, seed int64) (train, valid *Dataset, err error) {
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, nil, fmt.Errorf("dataset: trainFrac %v out of (0,1)", trainFrac)
	}
	n := d.N()
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	nTrain := int(math.Round(float64(n) * trainFrac))
	if nTrain < 1 || nTrain >= n {
		return nil, nil, fmt.Errorf("dataset: split of %d samples at %v leaves an empty side", n, trainFrac)
	}
	take := func(idx []int) *Dataset {
		x := mat.NewDense(len(idx), d.M())
		y := make([]float64, len(idx))
		for newI, i := range idx {
			copy(x.Row(newI), d.X.Row(i))
			y[newI] = d.Y[i]
		}
		return &Dataset{Name: d.Name, Task: d.Task, Classes: d.Classes, X: x, Y: y}
	}
	return take(perm[:nTrain]), take(perm[nTrain:]), nil
}

// Concat returns the dataset repeated `copies` times — the construction the
// paper uses for Cov (extended), HIGGS (extended) and Heartbeat (extended).
func (d *Dataset) Concat(copies int) (*Dataset, error) {
	if copies < 1 {
		return nil, fmt.Errorf("dataset: Concat copies = %d", copies)
	}
	n, m := d.N(), d.M()
	x := mat.NewDense(n*copies, m)
	y := make([]float64, n*copies)
	for c := 0; c < copies; c++ {
		copy(x.Data()[c*n*m:(c+1)*n*m], d.X.Data())
		copy(y[c*n:(c+1)*n], d.Y)
	}
	return &Dataset{
		Name:    d.Name + " (extended)",
		Task:    d.Task,
		Classes: d.Classes,
		X:       x,
		Y:       y,
	}, nil
}

// Remove returns a copy of the dataset without the rows in removed.
func (d *Dataset) Remove(removed []int) (*Dataset, error) {
	drop := make(map[int]bool, len(removed))
	for _, r := range removed {
		if r < 0 || r >= d.N() {
			return nil, fmt.Errorf("dataset: removal index %d out of range [0,%d)", r, d.N())
		}
		drop[r] = true
	}
	keep := make([]int, 0, d.N()-len(drop))
	for i := 0; i < d.N(); i++ {
		if !drop[i] {
			keep = append(keep, i)
		}
	}
	if len(keep) == 0 {
		return nil, fmt.Errorf("dataset: removal would delete every sample")
	}
	x := mat.NewDense(len(keep), d.M())
	y := make([]float64, len(keep))
	for newI, i := range keep {
		copy(x.Row(newI), d.X.Row(i))
		y[newI] = d.Y[i]
	}
	return &Dataset{Name: d.Name, Task: d.Task, Classes: d.Classes, X: x, Y: y}, nil
}

// SparseDataset is the CSR analogue of Dataset (RCV1-style workloads).
type SparseDataset struct {
	Name    string
	Task    Task
	Classes int
	X       *sparse.CSR
	Y       []float64
}

// N returns the number of samples.
func (d *SparseDataset) N() int { r, _ := d.X.Dims(); return r }

// M returns the number of features.
func (d *SparseDataset) M() int { _, c := d.X.Dims(); return c }

// InjectDirty implements the cleaning-scenario corruption of Sec 6.2: a
// deterministic subset of `count` rows is rescaled by `scale` (features and,
// for regression, labels), producing T_dirty. It returns the corrupted copy
// and the indices of the dirty rows (the set removed in the update phase).
func (d *Dataset) InjectDirty(count int, scale float64, seed int64) (*Dataset, []int, error) {
	if count < 0 || count >= d.N() {
		return nil, nil, fmt.Errorf("dataset: dirty count %d out of range for n=%d", count, d.N())
	}
	out := d.Clone()
	out.Name = d.Name + " (dirty)"
	perm := rand.New(rand.NewSource(seed)).Perm(d.N())
	dirty := make([]int, count)
	copy(dirty, perm[:count])
	for _, i := range dirty {
		row := out.X.Row(i)
		for j := range row {
			row[j] *= scale
		}
		if d.Task == Regression {
			out.Y[i] *= scale
		}
	}
	return out, dirty, nil
}

// Standardize rescales every feature column to zero mean and unit variance
// in place (constant columns are left centered). Returns the per-column
// means and standard deviations so validation data can be transformed
// consistently.
func (d *Dataset) Standardize() (means, stds []float64) {
	n, m := d.N(), d.M()
	means = make([]float64, m)
	stds = make([]float64, m)
	for i := 0; i < n; i++ {
		row := d.X.Row(i)
		for j, v := range row {
			means[j] += v
		}
	}
	for j := range means {
		means[j] /= float64(n)
	}
	for i := 0; i < n; i++ {
		row := d.X.Row(i)
		for j, v := range row {
			dlt := v - means[j]
			stds[j] += dlt * dlt
		}
	}
	for j := range stds {
		stds[j] = math.Sqrt(stds[j] / float64(n))
	}
	for i := 0; i < n; i++ {
		row := d.X.Row(i)
		for j := range row {
			row[j] -= means[j]
			if stds[j] > 0 {
				row[j] /= stds[j]
			}
		}
	}
	return means, stds
}

// ApplyStandardization transforms the dataset with previously computed
// means/stds (for validation splits).
func (d *Dataset) ApplyStandardization(means, stds []float64) error {
	if len(means) != d.M() || len(stds) != d.M() {
		return fmt.Errorf("dataset: standardization length mismatch")
	}
	for i := 0; i < d.N(); i++ {
		row := d.X.Row(i)
		for j := range row {
			row[j] -= means[j]
			if stds[j] > 0 {
				row[j] /= stds[j]
			}
		}
	}
	return nil
}
