package closedform

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/gbm"
	"repro/internal/mat"
)

func TestViewUpdateMatchesDirectSolve(t *testing.T) {
	// The view update must be identical to solving the normal equations over
	// the physically reduced dataset.
	d, err := dataset.GenerateRegression("cf", 200, 6, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewView(d, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	removed := rand.New(rand.NewSource(2)).Perm(200)[:15]
	got, err := v.Update(removed)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := d.Remove(removed)
	if err != nil {
		t.Fatal(err)
	}
	g := sub.X.Gram().Scale(2.0 / float64(sub.N()))
	for j := 0; j < 6; j++ {
		g.Add(j, j, 0.1)
	}
	ch, err := mat.NewCholesky(g)
	if err != nil {
		t.Fatal(err)
	}
	rhs := sub.X.MulVecT(sub.Y)
	mat.ScaleVec(rhs, 2.0/float64(sub.N()))
	want := ch.Solve(rhs)
	if mat.Distance(got.Vec(), want) > 1e-8*(1+mat.Norm2(want)) {
		t.Fatalf("view update differs from direct solve by %v", mat.Distance(got.Vec(), want))
	}
}

func TestViewUpdateCloseToGBMBaseline(t *testing.T) {
	// The ridge solution and a converged GD run minimize the same objective.
	d, err := dataset.GenerateRegression("cf2", 150, 4, 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := gbm.Config{Eta: 0.02, Lambda: 0.1, BatchSize: 150, Iterations: 3000, Seed: 4}
	sched, err := gbm.NewSchedule(150, cfg)
	if err != nil {
		t.Fatal(err)
	}
	removed := []int{3, 77, 120}
	rm, _ := gbm.RemovalSet(150, removed)
	gd, err := gbm.TrainLinear(d, cfg, sched, rm)
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewView(d, cfg.Lambda)
	if err != nil {
		t.Fatal(err)
	}
	got, err := v.Update(removed)
	if err != nil {
		t.Fatal(err)
	}
	if cos := mat.CosineSimilarity(got.Vec(), gd.Vec()); cos < 0.9999 {
		t.Fatalf("closed form vs converged GD cosine %v", cos)
	}
}

func TestViewValidation(t *testing.T) {
	bin, err := dataset.GenerateBinary("b", 20, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewView(bin, 0.1); err == nil {
		t.Fatal("expected task error")
	}
	reg, err := dataset.GenerateRegression("r", 20, 3, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewView(reg, -1); err == nil {
		t.Fatal("expected lambda error")
	}
	v, err := NewView(reg, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Update([]int{25}); err == nil {
		t.Fatal("expected range error")
	}
	all := make([]int, 20)
	for i := range all {
		all[i] = i
	}
	if _, err := v.Update(all); err == nil {
		t.Fatal("expected empty-remainder error")
	}
	if v.FootprintBytes() != 3*3*8+3*8 {
		t.Fatalf("FootprintBytes = %d", v.FootprintBytes())
	}
}
