// Package closedform implements the "Closed-form" baseline of Sec 6.2: the
// incremental-view-maintenance approach of MauveDB/LINVIEW and related
// systems for linear regression. The intermediate linear aggregates
// M = XᵀX and N = XᵀY are materialized as views; deleting the rows ΔX/ΔY
// updates them by subtraction, and the model parameters are recomputed by
// solving the ridge normal equations
//
//	(2/(n−Δn)·M' + λI)·w = 2/(n−Δn)·N'
//
// which involves the matrix inversion (here: Cholesky solve) the view cannot
// absorb. PrIU-opt's advantage over this baseline (Fig 1) comes from
// replacing the O(m³) solve with the O(min{Δn,m}·m² + τm) eigen path.
package closedform

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/gbm"
	"repro/internal/mat"
)

// View materializes the linear-regression aggregates M = XᵀX and N = XᵀY.
type View struct {
	data   *dataset.Dataset
	lambda float64
	m      *mat.Dense
	n      []float64
}

// NewView builds the materialized view (the offline phase).
func NewView(d *dataset.Dataset, lambda float64) (*View, error) {
	if d.Task != dataset.Regression {
		return nil, fmt.Errorf("closedform: requires regression data, got %v", d.Task)
	}
	if lambda < 0 {
		return nil, fmt.Errorf("closedform: negative lambda %v", lambda)
	}
	return &View{data: d, lambda: lambda, m: d.X.Gram(), n: d.X.MulVecT(d.Y)}, nil
}

// Update applies the deletion to the views and solves the normal equations
// for the updated parameters.
func (v *View) Update(removed []int) (*gbm.Model, error) {
	if v.m == nil {
		return nil, fmt.Errorf("closedform: view not initialized")
	}
	rm, err := gbm.RemovalSet(v.data.N(), removed)
	if err != nil {
		return nil, err
	}
	nEff := v.data.N() - len(rm)
	if nEff <= 0 {
		return nil, fmt.Errorf("closedform: removal leaves no samples")
	}
	mDim := v.data.M()
	// M' = M − ΔXᵀΔX, N' = N − ΔXᵀΔY (view subtraction).
	mPrime := v.m.Clone()
	nPrime := mat.CloneVec(v.n)
	for i := 0; i < v.data.N(); i++ {
		if !rm[i] {
			continue
		}
		xi := v.data.X.Row(i)
		mat.AddOuter(mPrime, xi, xi, -1)
		mat.Axpy(nPrime, -v.data.Y[i], xi)
	}
	// Solve (2/n'·M' + λI)·w = 2/n'·N'.
	scale := 2.0 / float64(nEff)
	mPrime.Scale(scale)
	for j := 0; j < mDim; j++ {
		mPrime.Add(j, j, v.lambda)
	}
	mat.ScaleVec(nPrime, scale)
	ch, err := mat.NewCholesky(mPrime)
	if err != nil {
		return nil, fmt.Errorf("closedform: normal equations not SPD: %w", err)
	}
	w := ch.Solve(nPrime)
	return &gbm.Model{Task: dataset.Regression, W: mat.NewDenseData(1, mDim, w)}, nil
}

// FootprintBytes returns the view's memory: O(m²) for M plus O(m) for N.
func (v *View) FootprintBytes() int64 {
	r, c := v.m.Dims()
	return int64(r)*int64(c)*8 + int64(len(v.n))*8
}
