// Package service exposes PrIU as an HTTP deletion service: a data-cleaning
// pipeline (the integration point the paper's introduction describes) trains
// and registers models, then issues deletion requests and receives updated
// parameters without retraining. Sessions hold the captured provenance.
//
// The session store is hash-sharded: each shard owns an independent mutex and
// session map plus its own atomic request counters, so traffic on different
// sessions never contends on a global lock. POST /v1/delete additionally
// accepts a batch of deletions spanning several sessions and executes the
// independent sessions' updates concurrently on the internal/par worker pool.
//
// Endpoints:
//
//	POST /v1/train     register data + hyperparameters, train with capture
//	POST /v1/delete    incrementally remove samples (single session or batch)
//	GET  /v1/model/ID  fetch a session's current parameters
//	GET  /v1/sessions  list sessions
//	GET  /v1/stats     per-shard and per-session counters
package service

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/gbm"
	"repro/internal/mat"
	"repro/internal/metrics"
	"repro/internal/par"
)

// updater abstracts the per-family PrIU state a session holds.
type updater interface {
	Update(removed []int) (*gbm.Model, error)
	FootprintBytes() int64
}

// Session is one registered model with its captured provenance.
type Session struct {
	ID        string
	Kind      string // "linear" | "logistic" | "multinomial"
	CreatedAt time.Time

	mu      sync.Mutex
	data    *dataset.Dataset
	cfg     gbm.Config
	upd     updater
	model   *gbm.Model // current model (after the latest deletion)
	deleted []int      // cumulative deletion log

	// Counters (guarded by mu) surfaced by /v1/stats.
	updates           int64
	lastUpdateSeconds float64
}

// numShards is the session-store shard count. Shard selection hashes the
// session ID, so concurrent requests to different sessions rarely share a
// lock; 16 shards keep contention negligible well past hundreds of
// concurrent streams while the per-shard memory overhead stays trivial.
const numShards = 16

// shard is one lock domain of the session store.
type shard struct {
	mu       sync.RWMutex
	sessions map[string]*Session

	// Request counters: lock-free so the hot paths never take the shard
	// lock just to bump a metric.
	trains       atomic.Int64
	deletes      atomic.Int64
	deleteErrors atomic.Int64
}

// Server is the HTTP deletion service. The zero value is not usable; call
// NewServer.
type Server struct {
	shards [numShards]shard
	nextID atomic.Int64
	start  time.Time
}

// NewServer returns an empty deletion service.
func NewServer() *Server {
	s := &Server{start: time.Now()}
	for i := range s.shards {
		s.shards[i].sessions = make(map[string]*Session)
	}
	return s
}

// sessionIDLess orders generated "sess-N" IDs numerically (shorter numeric
// suffix first) so listings don't interleave sess-10 between sess-1 and
// sess-2 once the store passes nine sessions.
func sessionIDLess(a, b string) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	return a < b
}

// shardFor maps a session ID to its shard.
func (s *Server) shardFor(id string) *shard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(id))
	return &s.shards[h.Sum32()%numShards]
}

// TrainRequest registers a training job. Features is row-major n×m.
type TrainRequest struct {
	Kind       string      `json:"kind"` // linear | logistic | multinomial
	Features   [][]float64 `json:"features"`
	Labels     []float64   `json:"labels"`
	Classes    int         `json:"classes,omitempty"`
	Eta        float64     `json:"eta"`
	Lambda     float64     `json:"lambda"`
	BatchSize  int         `json:"batch_size"`
	Iterations int         `json:"iterations"`
	Seed       int64       `json:"seed"`
}

// TrainResponse reports the new session.
type TrainResponse struct {
	SessionID      string    `json:"session_id"`
	Parameters     []float64 `json:"parameters"`
	ProvenanceMB   float64   `json:"provenance_mb"`
	CaptureSeconds float64   `json:"capture_seconds"`
}

// DeleteItem is one session's removal set within a batched delete.
type DeleteItem struct {
	SessionID string `json:"session_id"`
	Removed   []int  `json:"removed"`
}

// DeleteRequest removes training samples. Either the single-session fields
// (SessionID + Removed) or Batch must be set, not both. Batch items for
// different sessions execute concurrently.
type DeleteRequest struct {
	SessionID string       `json:"session_id,omitempty"`
	Removed   []int        `json:"removed,omitempty"`
	Batch     []DeleteItem `json:"batch,omitempty"`
}

// DeleteResponse reports the incrementally updated model.
type DeleteResponse struct {
	SessionID     string    `json:"session_id"`
	Parameters    []float64 `json:"parameters"`
	UpdateSeconds float64   `json:"update_seconds"`
	TotalDeleted  int       `json:"total_deleted"`
	CosineVsPrev  float64   `json:"cosine_vs_previous"`
}

// BatchDeleteResult is one item's outcome within a batched delete: either the
// update result or the item's error.
type BatchDeleteResult struct {
	SessionID string          `json:"session_id"`
	Error     string          `json:"error,omitempty"`
	Result    *DeleteResponse `json:"result,omitempty"`
}

// BatchDeleteResponse reports all outcomes of a batched delete, in request
// order. Per-item failures do not fail the batch.
type BatchDeleteResponse struct {
	Results []BatchDeleteResult `json:"results"`
}

// ModelResponse reports a session's current model.
type ModelResponse struct {
	SessionID    string    `json:"session_id"`
	Kind         string    `json:"kind"`
	Parameters   []float64 `json:"parameters"`
	TotalDeleted int       `json:"total_deleted"`
}

// SessionStats is one session's counters within /v1/stats.
type SessionStats struct {
	SessionID         string    `json:"session_id"`
	Kind              string    `json:"kind"`
	CreatedAt         time.Time `json:"created_at"`
	Updates           int64     `json:"updates"`
	TotalDeleted      int       `json:"total_deleted"`
	LastUpdateSeconds float64   `json:"last_update_seconds"`
}

// ShardStats is one shard's counters within /v1/stats.
type ShardStats struct {
	Shard        int            `json:"shard"`
	Sessions     int            `json:"sessions"`
	Trains       int64          `json:"trains"`
	Deletes      int64          `json:"deletes"`
	DeleteErrors int64          `json:"delete_errors"`
	SessionStats []SessionStats `json:"session_stats,omitempty"`
}

// StatsResponse is the /v1/stats payload.
type StatsResponse struct {
	UptimeSeconds float64      `json:"uptime_seconds"`
	Workers       int          `json:"workers"`
	Sessions      int          `json:"sessions"`
	Trains        int64        `json:"trains"`
	Deletes       int64        `json:"deletes"`
	DeleteErrors  int64        `json:"delete_errors"`
	Shards        []ShardStats `json:"shards"`
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/train", s.handleTrain)
	mux.HandleFunc("/v1/delete", s.handleDelete)
	mux.HandleFunc("/v1/model/", s.handleModel)
	mux.HandleFunc("/v1/sessions", s.handleSessions)
	mux.HandleFunc("/v1/stats", s.handleStats)
	return mux
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleTrain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req TrainRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	d, err := datasetFromRequest(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	cfg := gbm.Config{
		Eta: req.Eta, Lambda: req.Lambda,
		BatchSize: req.BatchSize, Iterations: req.Iterations, Seed: req.Seed,
	}
	sched, err := gbm.NewSchedule(d.N(), cfg)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	start := time.Now()
	var upd updater
	var model *gbm.Model
	switch req.Kind {
	case "linear":
		lp, err := core.CaptureLinear(d, cfg, sched, core.Options{})
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		upd, model = lp, lp.Model()
	case "logistic":
		lp, err := core.CaptureLogistic(d, cfg, sched, nil, core.Options{})
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		upd, model = lp, lp.Model()
	case "multinomial":
		mp, err := core.CaptureMultinomial(d, cfg, sched, core.Options{})
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		upd, model = mp, mp.Model()
	default:
		writeError(w, http.StatusBadRequest, "unknown kind %q", req.Kind)
		return
	}
	sess := &Session{
		ID:        fmt.Sprintf("sess-%d", s.nextID.Add(1)),
		Kind:      req.Kind,
		CreatedAt: time.Now(),
		data:      d,
		cfg:       cfg,
		upd:       upd,
		model:     model,
	}
	sh := s.shardFor(sess.ID)
	sh.mu.Lock()
	sh.sessions[sess.ID] = sess
	sh.mu.Unlock()
	sh.trains.Add(1)
	writeJSON(w, TrainResponse{
		SessionID:      sess.ID,
		Parameters:     model.Vec(),
		ProvenanceMB:   float64(upd.FootprintBytes()) / (1 << 20),
		CaptureSeconds: time.Since(start).Seconds(),
	})
}

func datasetFromRequest(req *TrainRequest) (*dataset.Dataset, error) {
	n := len(req.Features)
	if n == 0 {
		return nil, fmt.Errorf("empty feature matrix")
	}
	m := len(req.Features[0])
	if m == 0 {
		return nil, fmt.Errorf("zero-width feature matrix")
	}
	if len(req.Labels) != n {
		return nil, fmt.Errorf("%d labels for %d rows", len(req.Labels), n)
	}
	x := make([]float64, 0, n*m)
	for i, row := range req.Features {
		if len(row) != m {
			return nil, fmt.Errorf("row %d has %d features, want %d", i, len(row), m)
		}
		x = append(x, row...)
	}
	var task dataset.Task
	classes := 0
	switch req.Kind {
	case "linear":
		task = dataset.Regression
	case "logistic":
		task = dataset.BinaryClassification
		classes = 2
	case "multinomial":
		task = dataset.MultiClassification
		classes = req.Classes
	default:
		return nil, fmt.Errorf("unknown kind %q", req.Kind)
	}
	d := &dataset.Dataset{
		Name:    "api",
		Task:    task,
		Classes: classes,
		X:       mat.NewDenseData(n, m, x),
		Y:       req.Labels,
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

func (s *Server) session(id string) (*Session, bool) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	sess, ok := sh.sessions[id]
	return sess, ok
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req DeleteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if req.SessionID == "" && len(req.Removed) == 0 && len(req.Batch) == 0 {
		writeError(w, http.StatusBadRequest, "empty delete request: set session_id/removed or batch")
		return
	}
	if len(req.Batch) > 0 {
		if req.SessionID != "" || len(req.Removed) > 0 {
			writeError(w, http.StatusBadRequest, "set either session_id/removed or batch, not both")
			return
		}
		s.handleBatchDelete(w, req.Batch)
		return
	}
	resp, status, err := s.deleteOne(req.SessionID, req.Removed)
	if err != nil {
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, resp)
}

// handleBatchDelete executes the items concurrently on the shared worker
// pool. Items targeting the same session serialize on that session's mutex;
// everything else proceeds independently. Results keep request order.
func (s *Server) handleBatchDelete(w http.ResponseWriter, batch []DeleteItem) {
	results := make([]BatchDeleteResult, len(batch))
	par.For(len(batch), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			item := batch[i]
			results[i].SessionID = item.SessionID
			resp, _, err := s.deleteOne(item.SessionID, item.Removed)
			if err != nil {
				results[i].Error = err.Error()
				continue
			}
			results[i].Result = &resp
		}
	})
	writeJSON(w, BatchDeleteResponse{Results: results})
}

// deleteOne applies one session's cumulative deletion and returns the
// response, or the HTTP status to report and the error.
func (s *Server) deleteOne(sessionID string, removed []int) (DeleteResponse, int, error) {
	sh := s.shardFor(sessionID)
	sh.deletes.Add(1)
	sess, ok := s.session(sessionID)
	if !ok {
		sh.deleteErrors.Add(1)
		return DeleteResponse{}, http.StatusNotFound, fmt.Errorf("unknown session %q", sessionID)
	}
	if len(removed) == 0 {
		sh.deleteErrors.Add(1)
		return DeleteResponse{}, http.StatusBadRequest, fmt.Errorf("empty removal set")
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	// Deletions are cumulative within a session.
	all := append(append([]int(nil), sess.deleted...), removed...)
	start := time.Now()
	updated, err := sess.upd.Update(all)
	if err != nil {
		sh.deleteErrors.Add(1)
		return DeleteResponse{}, http.StatusBadRequest, err
	}
	dt := time.Since(start)
	cmp, err := metrics.Compare(updated, sess.model)
	if err != nil {
		sh.deleteErrors.Add(1)
		return DeleteResponse{}, http.StatusInternalServerError, err
	}
	sess.deleted = all
	sess.model = updated
	sess.updates++
	sess.lastUpdateSeconds = dt.Seconds()
	return DeleteResponse{
		SessionID:     sess.ID,
		Parameters:    updated.Vec(),
		UpdateSeconds: dt.Seconds(),
		TotalDeleted:  len(all),
		CosineVsPrev:  cmp.Cosine,
	}, http.StatusOK, nil
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/model/")
	sess, ok := s.session(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session %q", id)
		return
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	writeJSON(w, ModelResponse{
		SessionID:    sess.ID,
		Kind:         sess.Kind,
		Parameters:   sess.model.Vec(),
		TotalDeleted: len(sess.deleted),
	})
}

func (s *Server) handleSessions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	type row struct {
		ID        string    `json:"id"`
		Kind      string    `json:"kind"`
		CreatedAt time.Time `json:"created_at"`
	}
	var out []row
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, sess := range sh.sessions {
			out = append(out, row{ID: sess.ID, Kind: sess.Kind, CreatedAt: sess.CreatedAt})
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return sessionIDLess(out[i].ID, out[j].ID) })
	if out == nil {
		out = []row{}
	}
	writeJSON(w, out)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	resp := StatsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Workers:       par.Workers(),
	}
	for i := range s.shards {
		sh := &s.shards[i]
		ss := ShardStats{
			Shard:        i,
			Trains:       sh.trains.Load(),
			Deletes:      sh.deletes.Load(),
			DeleteErrors: sh.deleteErrors.Load(),
		}
		sh.mu.RLock()
		ss.Sessions = len(sh.sessions)
		sessions := make([]*Session, 0, len(sh.sessions))
		for _, sess := range sh.sessions {
			sessions = append(sessions, sess)
		}
		sh.mu.RUnlock()
		for _, sess := range sessions {
			sess.mu.Lock()
			ss.SessionStats = append(ss.SessionStats, SessionStats{
				SessionID:         sess.ID,
				Kind:              sess.Kind,
				CreatedAt:         sess.CreatedAt,
				Updates:           sess.updates,
				TotalDeleted:      len(sess.deleted),
				LastUpdateSeconds: sess.lastUpdateSeconds,
			})
			sess.mu.Unlock()
		}
		sort.Slice(ss.SessionStats, func(a, b int) bool {
			return sessionIDLess(ss.SessionStats[a].SessionID, ss.SessionStats[b].SessionID)
		})
		resp.Sessions += ss.Sessions
		resp.Trains += ss.Trains
		resp.Deletes += ss.Deletes
		resp.DeleteErrors += ss.DeleteErrors
		resp.Shards = append(resp.Shards, ss)
	}
	writeJSON(w, resp)
}
